(* The paper's Section 5 client/server study (Figures 8 and 9): HTTP
   requests against a Tomcat server serving JSP pages, with and without
   the servlet-cache optimisation.

     dune exec examples/web_server.exe

   State diagrams are the UML input here, and the reflected measure is
   the steady-state probability of each state; the derived engineering
   number is the client's mean waiting delay, with and without the
   optimisation. *)

let show_study title study =
  print_string (Choreographer.Report.section title);
  let analysis = study.Scenarios.Tomcat.analysis in
  Format.printf "%a@." Choreographer.Results.pp analysis.Choreographer.Workbench.results;
  (* Steady-state probabilities per chart, the Figure 8/9 annotations. *)
  List.iter
    (fun (chart, leaf) ->
      Format.printf "%s state probabilities:@." chart;
      List.iter
        (fun (label, p) -> Format.printf "  %-28s %.6f@." label p)
        (Choreographer.Workbench.local_probabilities analysis ~leaf))
    study.Scenarios.Tomcat.extraction.Extract.Sc_to_pepa.chart_leaf;
  Format.printf "client waiting delay: %.4f s (P(wait) %.4f / throughput %.4f)@.@."
    study.Scenarios.Tomcat.waiting_delay study.Scenarios.Tomcat.waiting_probability
    study.Scenarios.Tomcat.request_throughput

let reflect_into_xmi study =
  print_string (Choreographer.Report.section "Reflection into the state diagrams");
  let charts = [ Scenarios.Tomcat.client (); Scenarios.Tomcat.server_jsp () ] in
  let probabilities =
    List.concat_map
      (fun (_, leaf) ->
        Choreographer.Workbench.local_probabilities study.Scenarios.Tomcat.analysis ~leaf)
      study.Scenarios.Tomcat.extraction.Extract.Sc_to_pepa.chart_leaf
  in
  let reflected =
    Extract.Reflector.reflect_statecharts study.Scenarios.Tomcat.extraction ~probabilities
      charts
  in
  let doc = Uml.Xmi_write.statecharts_to_xml reflected in
  let round_tripped = Uml.Xmi_read.statecharts_of_xml doc in
  List.iter
    (fun chart ->
      List.iter
        (fun (s : Uml.Statechart.state) ->
          match
            Uml.Statechart.annotation chart ~state_id:s.Uml.Statechart.state_id
              ~tag:Extract.Reflector.probability_tag
          with
          | Some v ->
              Printf.printf "  %s.%s  steadyStateProbability = %s\n"
                chart.Uml.Statechart.chart_name s.Uml.Statechart.state_name v
          | None -> ())
        chart.Uml.Statechart.states)
    round_tripped

(* Response-time distribution: the passage from issuing a request to
   receiving the response, computed on the derived CTMC (the
   passage-time analysis the paper attributes to the Imperial PEPA
   Compiler). *)
let response_time_distribution study =
  print_string (Choreographer.Report.section "Response-time distribution (passage analysis)");
  let space = study.Scenarios.Tomcat.analysis.Choreographer.Workbench.space in
  let chain = Pepa.Statespace.ctmc space in
  let sources =
    (* states the client enters by performing request *)
    List.filter_map
      (fun tr ->
        if Pepa.Action.equal tr.Pepa.Statespace.action (Pepa.Action.act "request") then
          Some (tr.Pepa.Statespace.dst, 1.0)
        else None)
      (Pepa.Statespace.transitions space)
  in
  let targets =
    List.filter_map
      (fun tr ->
        if Pepa.Action.equal tr.Pepa.Statespace.action (Pepa.Action.act "response") then
          Some tr.Pepa.Statespace.dst
        else None)
      (Pepa.Statespace.transitions space)
    |> List.sort_uniq compare
  in
  Printf.printf "mean response time: %.4f s\n" (Markov.Passage.mean chain ~sources ~targets);
  List.iter
    (fun (t, p) -> Printf.printf "  P(response within %4.2f s) = %.4f\n" t p)
    (Markov.Passage.cdf_curve chain ~sources ~targets
       ~times:[ 0.25; 0.5; 1.0; 2.0; 4.0 ]);
  Printf.printf "  90th percentile: %.4f s\n\n"
    (Markov.Passage.quantile chain ~sources ~targets ~p:0.9 ~epsilon:1e-4)

let () =
  let without = Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_jsp ()) in
  let with_opt = Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_cached ()) in
  show_study "Without the servlet cache (Figure 9 as drawn)" without;
  show_study "With direct servlet lookup (the Tomcat optimisation)" with_opt;
  Printf.printf "the optimisation reduces the client's waiting delay %.1f-fold\n\n"
    (without.Scenarios.Tomcat.waiting_delay /. with_opt.Scenarios.Tomcat.waiting_delay);
  response_time_distribution without;
  reflect_into_xmi without
