examples/instant_message.mli:
