examples/file_protocol.mli:
