examples/quickstart.mli:
