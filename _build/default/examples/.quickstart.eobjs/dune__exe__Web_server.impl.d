examples/web_server.ml: Choreographer Extract Format List Markov Pepa Printf Scenarios Uml
