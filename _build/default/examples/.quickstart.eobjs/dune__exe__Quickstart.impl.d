examples/quickstart.ml: Choreographer Format List Pepa Pepanet
