examples/roaming_agents.ml: Choreographer Format Fun List Markov Pepanet Printf Scenarios
