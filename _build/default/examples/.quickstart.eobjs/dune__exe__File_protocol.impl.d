examples/file_protocol.ml: Choreographer Extract Format Option Pepa Pepanet Scenarios
