examples/code_mobility.ml: Choreographer List Pepanet Printf Scenarios
