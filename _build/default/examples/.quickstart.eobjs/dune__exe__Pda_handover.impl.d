examples/pda_handover.ml: Choreographer Extract Filename Format List Option Out_channel Pepanet Printf Scenarios Sys Uml Xml_kit
