examples/code_mobility.mli:
