examples/instant_message.ml: Choreographer Extract Format List Option Pepanet Scenarios
