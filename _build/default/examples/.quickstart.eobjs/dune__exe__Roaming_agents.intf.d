examples/roaming_agents.mli:
