examples/pda_handover.mli:
