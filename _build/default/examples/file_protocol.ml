(* The paper's running example (Figure 1 and Section 2.2): activities on
   a text file, with no mobility.

     dune exec examples/file_protocol.exe

   The example derives the PEPA net from the activity diagram, checks the
   qualitative protocol properties the paper derives from the PEPA
   component ("it is not possible to write to a closed file", "read and
   write operations cannot be interleaved"), and compares throughput of
   the extracted model with the hand-written Section 2.2 PEPA model. *)

let qualitative_properties () =
  print_string (Choreographer.Report.section "Protocol properties (Section 2.2)");
  let space = Pepa.Statespace.of_string Scenarios.File_protocol.pepa_source in
  Format.printf "%a@." Pepa.Analysis.pp_report space;
  let check description holds =
    Format.printf "  %-55s %s@." description (if holds then "holds" else "VIOLATED")
  in
  (* Writing is only possible in OutStream: after close it needs a fresh
     openwrite.  "Never follows" captures the immediate-interleaving
     prohibitions. *)
  check "read never immediately follows write"
    (Pepa.Analysis.never_follows space ~first:"write" ~then_:"read");
  check "write never immediately follows read"
    (Pepa.Analysis.never_follows space ~first:"read" ~then_:"write");
  check "write never immediately follows close"
    (Pepa.Analysis.never_follows space ~first:"close" ~then_:"write");
  check "read never immediately follows close"
    (Pepa.Analysis.never_follows space ~first:"close" ~then_:"read");
  check "the model is deadlock-free" (Pepa.Analysis.deadlock_free space)

let extracted_model () =
  print_string (Choreographer.Report.section "Extraction from the activity diagram");
  let extraction = Scenarios.File_protocol.extraction () in
  print_string (Pepanet.Net_printer.net_to_string extraction.Extract.Ad_to_pepanet.net);
  let analysis =
    Choreographer.Workbench.analyse_net ~name:"FileActivities"
      extraction.Extract.Ad_to_pepanet.net
  in
  Format.printf "%a@." Choreographer.Results.pp analysis.Choreographer.Workbench.net_results;
  analysis

let () =
  qualitative_properties ();
  print_newline ();
  let analysis = extracted_model () in
  (* Flow balance: each session opens exactly once and closes exactly
     once, so throughput(close) = throughput(openread) + throughput(openwrite). *)
  let results = analysis.Choreographer.Workbench.net_results in
  let t name = Option.value ~default:0.0 (Choreographer.Results.throughput results name) in
  Format.printf "flow balance: close %.6f = openread %.6f + openwrite %.6f (%s)@."
    (t "close") (t "openread") (t "openwrite")
    (if abs_float (t "close" -. (t "openread" +. t "openwrite")) < 1e-9 then "ok" else "BROKEN")
