(* Quickstart: the fastest route from a PEPA model to performance
   numbers, and from a PEPA net to mobility-aware numbers.

     dune exec examples/quickstart.exe

   Part 1 solves a two-component PEPA model directly.  Part 2 solves a
   two-place PEPA net in which a token is moved by a firing.  Part 3
   shows the one-call Workbench API that the Choreographer pipeline uses
   internally. *)

let part_1_plain_pepa () =
  print_string (Choreographer.Report.section "Part 1: a PEPA model");
  (* A processor serving jobs handed over by a queue of two slots. *)
  let model =
    Pepa.Parser.model_of_string
      {|
        arrive = 2.0;
        serve = 3.0;
        Queue0 = (arrive, arrive).Queue1;
        Queue1 = (arrive, arrive).Queue2 + (serve, infty).Queue0;
        Queue2 = (serve, infty).Queue1;
        Cpu = (serve, serve).Cpu;
        System = Queue0 <serve> Cpu;
        system System;
      |}
  in
  let space = Pepa.Statespace.build (Pepa.Compile.of_model model) in
  Format.printf "state space: %a@." Pepa.Statespace.pp_summary space;
  let pi = Pepa.Statespace.steady_state space in
  List.iter
    (fun (action, value) -> Format.printf "  throughput(%s) = %.6f@." action value)
    (Pepa.Statespace.throughputs space pi);
  (* Utilisation of the queue positions. *)
  List.iter
    (fun label ->
      Format.printf "  P(queue = %s) = %.6f@." label
        (Pepa.Statespace.local_state_probability space pi ~leaf:0 ~label))
    [ "Queue0"; "Queue1"; "Queue2" ]

let part_2_pepa_net () =
  print_string (Choreographer.Report.section "Part 2: a PEPA net");
  let space =
    Pepanet.Net_statespace.of_string
      {|
        work = 4.0;
        go = 1.0;
        back = 2.0;
        Agent = (work, work).Ready;
        Ready = (go, go).Away;
        Away = (back, back).Agent;

        token Agent;

        place Home = Agent[Agent];
        place Abroad = Agent[_];

        trans t_go = (go, go) from Home to Abroad;
        trans t_back = (back, back) from Abroad to Home;
      |}
  in
  Format.printf "markings: %a@." Pepanet.Net_statespace.pp_summary space;
  let pi = Pepanet.Net_statespace.steady_state space in
  List.iter
    (fun (action, value) -> Format.printf "  throughput(%s) = %.6f@." action value)
    (Pepanet.Net_measures.throughputs space pi);
  List.iter
    (fun (place, p) -> Format.printf "  P(agent at %s) = %.6f@." place p)
    (Pepanet.Net_measures.token_location_probabilities space pi ~token:0)

let part_3_workbench () =
  print_string (Choreographer.Report.section "Part 3: the Workbench API");
  let analysis =
    Choreographer.Workbench.analyse_pepa_string ~name:"quickstart"
      {|
        think = 1.0;
        use = 5.0;
        User = (think, think).(use, use).User;
        Resource = (use, infty).Resource;
        system User <use> Resource;
      |}
  in
  Format.printf "%a@." Choreographer.Results.pp analysis.Choreographer.Workbench.results

let () =
  part_1_plain_pepa ();
  print_newline ();
  part_2_pepa_net ();
  print_newline ();
  part_3_workbench ()
