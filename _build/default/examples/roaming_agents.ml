(* Mobile agents patrolling a ring of hosts — the class of application
   the paper's introduction motivates ("a mobile software agent moving
   from one network host to another").

     dune exec examples/roaming_agents.exe

   Two agent tokens share three places; every place hosts a static
   monitor that the agents probe; hops are net-level firings.  Besides
   steady-state measures, the example computes first-passage times (how
   long until an agent first reaches the far host), the response-time
   style of analysis the paper attributes to ipc. *)

let () =
  print_string (Choreographer.Report.section "The net");
  print_string Scenarios.Roaming.pepanet_source;
  print_newline ();

  let space = Scenarios.Roaming.space () in
  Format.printf "%a@.@." Pepanet.Net_statespace.pp_summary space;

  print_string (Choreographer.Report.section "Steady-state measures");
  let throughputs, locations, occupancy = Scenarios.Roaming.patrol_report () in
  List.iter (fun (a, v) -> Printf.printf "  throughput(%s) = %.6f\n" a v) throughputs;
  List.iter (fun (p, v) -> Printf.printf "  P(agent#1 at %s) = %.6f\n" p v) locations;
  List.iter (fun (p, v) -> Printf.printf "  E[agents at %s] = %.6f\n" p v) occupancy;
  print_newline ();

  print_string (Choreographer.Report.section "First-passage times (ipc-style analysis)");
  List.iter
    (fun place ->
      Printf.printf "  mean time for agent#1 to first reach %s: %.4f\n" place
        (Scenarios.Roaming.time_to_reach ~place ~token:0))
    [ "HostB"; "HostC" ];
  (* CDF of the passage to HostC. *)
  let compiled = Pepanet.Net_statespace.compiled space in
  let host_c = Pepanet.Net_compile.place_index compiled "HostC" in
  let targets =
    List.filter
      (fun i ->
        Pepanet.Marking.token_place compiled (Pepanet.Net_statespace.marking space i) 0
        = Some host_c)
      (List.init (Pepanet.Net_statespace.n_markings space) Fun.id)
  in
  let chain = Pepanet.Net_statespace.ctmc space in
  let sources = [ (Pepanet.Net_statespace.initial_index space, 1.0) ] in
  List.iter
    (fun (t, p) -> Printf.printf "  P(reached HostC by %4.1f s) = %.4f\n" t p)
    (Markov.Passage.cdf_curve chain ~sources ~targets ~times:[ 1.0; 2.0; 4.0; 8.0; 16.0 ]);
  Printf.printf "  median: %.4f s\n"
    (Markov.Passage.quantile chain ~sources ~targets ~p:0.5 ~epsilon:1e-4)
