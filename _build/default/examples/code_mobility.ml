(* Should the computation move to the data, or the data to the
   computation?  The design question of the paper's introduction as a
   quantitative study.

     dune exec examples/code_mobility.exe

   Two PEPA-net designs for the same job are solved across a bandwidth
   sweep; the crossover bandwidth tells the designer when a mobile-agent
   architecture pays off. *)

let () =
  print_string (Choreographer.Report.section "Mobile agent vs client-server");
  let p = Scenarios.Code_mobility.default_parameters in
  Printf.printf
    "job: fetch %g data units (or move %g code units + %g result units),\n\
     compute at %g jobs/s locally or %g jobs/s on the data host\n\n"
    p.Scenarios.Code_mobility.data_size p.Scenarios.Code_mobility.code_size
    p.Scenarios.Code_mobility.result_size p.Scenarios.Code_mobility.local_compute
    p.Scenarios.Code_mobility.remote_compute;
  let rows =
    List.map
      (fun bandwidth ->
        let c = Scenarios.Code_mobility.compare_at ~bandwidth () in
        let winner =
          if c.Scenarios.Code_mobility.mobile_agent_jobs
             > c.Scenarios.Code_mobility.client_server_jobs
          then "mobile agent"
          else "client-server"
        in
        [
          Printf.sprintf "%.0f" bandwidth;
          Printf.sprintf "%.4f" c.Scenarios.Code_mobility.client_server_jobs;
          Printf.sprintf "%.4f" c.Scenarios.Code_mobility.mobile_agent_jobs;
          winner;
        ])
      [ 1.0; 5.0; 10.0; 25.0; 50.0; 75.0; 100.0; 200.0; 400.0 ]
  in
  print_string
    (Choreographer.Report.table
       ~header:[ "bandwidth"; "client-server jobs/s"; "mobile-agent jobs/s"; "winner" ]
       rows);
  Printf.printf "\ncrossover bandwidth: %.2f units/s\n"
    (Scenarios.Code_mobility.crossover_bandwidth ~lo:10.0 ~hi:200.0 ());
  print_newline ();
  print_string (Choreographer.Report.section "The mobile-agent net");
  print_string
    (Pepanet.Net_printer.net_to_string (Scenarios.Code_mobility.mobile_agent_net p))
