(* The paper's Section 5 evaluation scenario end to end (Figures 5-7):
   a PDA user on a moving train whose connection is handed over between
   transmitters.

     dune exec examples/pda_handover.exe

   The example simulates the complete designer workflow of Figure 4:

     1. a Poseidon project file is produced (XMI + layout data);
     2. Choreographer strips the layout, validates the model in the
        metadata repository, extracts a PEPA net, solves the CTMC and
        reflects throughput annotations back into the XMI;
     3. the postprocessor re-attaches the original layout;
     4. the annotated diagram is displayed (the Figure 7 view).

   Artefacts are written to _artefacts/ for inspection. *)

let artefact name = Filename.concat "_artefacts" name

let () = if not (Sys.file_exists "_artefacts") then Sys.mkdir "_artefacts" 0o755

let () =
  print_string (Choreographer.Report.section "1. The Poseidon project (Figure 5)");
  let project = Scenarios.Pda.poseidon_project () in
  Xml_kit.Minixml.write_file (artefact "pda.xmi") project;
  Printf.printf "wrote %s (%d layout entries)\n\n" (artefact "pda.xmi")
    (match Uml.Poseidon.layout_of project with
    | [ layout ] -> List.length (Xml_kit.Minixml.children layout)
    | _ -> 0);

  print_string (Choreographer.Report.section "2. Extraction and analysis");
  let options = { Choreographer.Pipeline.default_options with rates = Scenarios.Pda.rates } in
  let outcome =
    Choreographer.Pipeline.process_file ~options ~input:(artefact "pda.xmi")
      ~output:(artefact "pda_reflected.xmi") ()
  in
  (* The intermediate .pepanet artefact of Figure 4. *)
  (match outcome.Choreographer.Pipeline.extracted_nets with
  | (name, net) :: _ ->
      let path = artefact "pda.pepanet" in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Pepanet.Net_printer.net_to_string net));
      Printf.printf "wrote %s (extracted from diagram %s)\n" path name
  | [] -> ());
  List.iter
    (fun results -> Format.printf "%a@." Choreographer.Results.pp results)
    outcome.Choreographer.Pipeline.results;

  print_string (Choreographer.Report.section "3. The annotated diagram (Figure 7)");
  let reflected = Xml_kit.Minixml.parse_file (artefact "pda_reflected.xmi") in
  let diagram = Uml.Xmi_read.activity_of_xml reflected in
  let rows =
    List.filter_map
      (fun (node : Uml.Activity.node) ->
        match node.Uml.Activity.kind with
        | Uml.Activity.Action { name; move } ->
            let throughput =
              Option.value ~default:"-"
                (Uml.Activity.annotation diagram ~node_id:node.Uml.Activity.node_id
                   ~tag:Extract.Reflector.throughput_tag)
            in
            Some [ name; (if move then "<<move>>" else ""); throughput ]
        | _ -> None)
      diagram.Uml.Activity.nodes
  in
  print_string
    (Choreographer.Report.table ~header:[ "activity"; "stereotype"; "throughput" ] rows);
  Printf.printf "\nlayout data preserved through reflection: %b\n"
    (Uml.Poseidon.layout_of reflected <> []);

  (* The 50/50 handover outcome of the paper: abort and continue each see
     half the handover throughput. *)
  let results = List.hd outcome.Choreographer.Pipeline.results in
  let t name = Option.value ~default:0.0 (Choreographer.Results.throughput results name) in
  Printf.printf "\nhandover %.6f = abort %.6f + continue %.6f; abort/continue = %.3f\n"
    (t "handover") (t "abort_download") (t "continue_download")
    (t "abort_download" /. t "continue_download")
