(* The paper's Figure 2 example: an instant message written at one
   location, transmitted (a <<move>> activity) and read at another.

     dune exec examples/instant_message.exe

   Both routes of the paper are exercised: the hand-written PEPA net of
   Section 2.2 and the net extracted automatically from the mobile
   activity diagram; their steady-state measures agree on the shared
   activities. *)

let analyse_source () =
  print_string (Choreographer.Report.section "Hand-written PEPA net (Section 2.2)");
  let space = Pepanet.Net_statespace.of_string Scenarios.Instant_message.pepanet_source in
  Format.printf "%a@." Pepanet.Net_statespace.pp_summary space;
  let pi = Pepanet.Net_statespace.steady_state space in
  List.iter
    (fun (a, v) -> Format.printf "  throughput(%s) = %.6f@." a v)
    (Pepanet.Net_measures.throughputs space pi);
  List.iter
    (fun (p, v) -> Format.printf "  P(message at %s) = %.6f@." p v)
    (Pepanet.Net_measures.token_location_probabilities space pi ~token:0);
  (space, pi)

let analyse_extracted () =
  print_string (Choreographer.Report.section "Extracted from the activity diagram (Figure 2)");
  let extraction = Scenarios.Instant_message.extraction () in
  print_string (Pepanet.Net_printer.net_to_string extraction.Extract.Ad_to_pepanet.net);
  let analysis =
    Choreographer.Workbench.analyse_net ~name:"InstantMessage"
      extraction.Extract.Ad_to_pepanet.net
  in
  Format.printf "%a@." Choreographer.Results.pp analysis.Choreographer.Workbench.net_results;
  analysis

let () =
  let space, pi = analyse_source () in
  print_newline ();
  let analysis = analyse_extracted () in
  (* The transmit firing is the message's journey; in both models every
     cycle transmits exactly once, so the throughput of transmit equals
     the throughput of the (single) close-after-read. *)
  let hand = Pepanet.Net_measures.throughput space pi "transmit" in
  let extracted =
    Option.value ~default:0.0
      (Choreographer.Results.throughput analysis.Choreographer.Workbench.net_results "transmit")
  in
  Format.printf "transmit throughput: hand-written %.6f, extracted %.6f (%s)@." hand extracted
    (if abs_float (hand -. extracted) < 1e-9 then "agree"
     else "differ: the return rates of the two models were chosen differently")
