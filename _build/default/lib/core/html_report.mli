(** A self-contained HTML report of a pipeline run — the stand-in for
    viewing the annotated model inside the drawing tool (the paper's
    Figure 7 screenshot).  The page shows, per analysed diagram, the
    annotated activity table, state probabilities, model statistics and
    the extracted net in both textual and Graphviz form. *)

val of_outcome : ?title:string -> Pipeline.outcome -> string
(** Render the report as a single HTML page (no external assets). *)

val write : ?title:string -> path:string -> Pipeline.outcome -> unit

val escape : string -> string
(** HTML-escape a string ([&], [<], [>], quotes). *)
