lib/core/results.ml: Format List Option Printf Xml_kit
