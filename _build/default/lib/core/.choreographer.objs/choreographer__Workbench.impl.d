lib/core/workbench.ml: Array Filename Format List Markov Pepa Pepanet Printf Results String
