lib/core/workbench.mli: Markov Pepa Pepanet Results
