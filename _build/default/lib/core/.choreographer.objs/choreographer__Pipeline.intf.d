lib/core/pipeline.mli: Markov Pepa Pepanet Results Uml Xml_kit
