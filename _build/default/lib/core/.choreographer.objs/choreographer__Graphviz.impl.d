lib/core/graphviz.ml: Buffer List Option Pepa Pepanet Printf String
