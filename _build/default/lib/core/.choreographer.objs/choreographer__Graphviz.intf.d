lib/core/graphviz.mli: Pepa Pepanet
