lib/core/results.mli: Format Xml_kit
