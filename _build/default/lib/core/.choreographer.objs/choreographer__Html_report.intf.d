lib/core/html_report.mli: Pipeline
