lib/core/report.mli:
