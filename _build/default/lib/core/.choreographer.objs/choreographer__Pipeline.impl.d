lib/core/pipeline.ml: Extract Format List Markov Option Pepa Pepanet Results String Uml Workbench Xml_kit
