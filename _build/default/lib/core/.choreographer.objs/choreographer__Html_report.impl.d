lib/core/html_report.ml: Buffer Fun Graphviz List Option Pepanet Pipeline Printf Results String Uml
