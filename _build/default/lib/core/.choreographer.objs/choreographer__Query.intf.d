lib/core/query.mli: Workbench
