lib/core/query.ml: Array Format List Markov Option Pepa Pepanet Printf Results String Workbench
