let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pepa_statespace space =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph derivation_graph {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n";
  for i = 0 to Pepa.Statespace.n_states space - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  s%d [label=\"%s\"%s];\n" i
         (escape (Pepa.Statespace.state_label space i))
         (if i = Pepa.Statespace.initial_index space then ", peripheries=2" else ""))
  done;
  List.iter
    (fun tr ->
      Buffer.add_string buf
        (Printf.sprintf "  s%d -> s%d [label=\"%s/%.3g\"];\n" tr.Pepa.Statespace.src
           tr.Pepa.Statespace.dst
           (escape (Pepa.Action.to_string tr.Pepa.Statespace.action))
           tr.Pepa.Statespace.rate))
    (Pepa.Statespace.transitions space);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let net_statespace space =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph marking_graph {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n";
  for i = 0 to Pepanet.Net_statespace.n_markings space - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  m%d [label=\"%s\"%s];\n" i
         (escape (Pepanet.Net_statespace.marking_label space i))
         (if i = Pepanet.Net_statespace.initial_index space then ", peripheries=2" else ""))
  done;
  List.iter
    (fun tr ->
      let label, style =
        match tr.Pepanet.Net_statespace.label with
        | Pepanet.Net_semantics.Local action -> (Pepa.Action.to_string action, "")
        | Pepanet.Net_semantics.Fire { action; transition } ->
            (Printf.sprintf "%s!%s" action transition, ", style=bold")
      in
      Buffer.add_string buf
        (Printf.sprintf "  m%d -> m%d [label=\"%s/%.3g\"%s];\n" tr.Pepanet.Net_statespace.src
           tr.Pepanet.Net_statespace.dst (escape label) tr.Pepanet.Net_statespace.rate style))
    (Pepanet.Net_statespace.transitions space);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let net_structure (net : Pepanet.Net.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph pepa_net {\n";
  Buffer.add_string buf "  rankdir=LR;\n";
  List.iter
    (fun (p : Pepanet.Net.place) ->
      let cells = Pepanet.Net.cells_of_context p.Pepanet.Net.context in
      let statics = Pepanet.Net.statics_of_context p.Pepanet.Net.context in
      let cell_text =
        String.concat ", "
          (List.map
             (fun (c : Pepanet.Net.cell) ->
               Printf.sprintf "%s[%s]" c.Pepanet.Net.cell_type
                 (Option.value ~default:"_" c.Pepanet.Net.initial_token))
             cells)
      in
      let static_text = match statics with [] -> "" | s -> "\\n" ^ String.concat ", " s in
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=circle, label=\"%s\\n%s%s\"];\n" p.Pepanet.Net.place_name
           (escape p.Pepanet.Net.place_name) (escape cell_text) (escape static_text)))
    net.Pepanet.Net.places;
  List.iter
    (fun (t : Pepanet.Net.transition) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=box, style=filled, fillcolor=gray85, label=\"%s\\n(%s)\"];\n"
           t.Pepanet.Net.transition_name
           (escape t.Pepanet.Net.transition_name)
           (escape t.Pepanet.Net.firing_action));
      List.iter
        (fun input ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s;\n" input t.Pepanet.Net.transition_name))
        t.Pepanet.Net.inputs;
      List.iter
        (fun output ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s;\n" t.Pepanet.Net.transition_name output))
        t.Pepanet.Net.outputs)
    net.Pepanet.Net.transitions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
