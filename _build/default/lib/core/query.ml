type passage_measure = Mean | Median | Completion | Cdf of float

type t =
  | Throughput of string
  | Utilisation of string
  | Located of string * string
  | Passage of string * string * passage_measure
  | Num of float
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

exception Query_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Query_error msg)) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Arrow
  | Plus
  | Minus
  | Star
  | Slash
  | Eof

let tokenize src =
  let tokens = ref [] in
  let pos = ref 0 in
  let n = String.length src in
  let peek k = if !pos + k < n then src.[!pos + k] else '\000' in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
    || c = '.'
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '-' && peek 1 = '>' then begin
      tokens := Arrow :: !tokens;
      pos := !pos + 2
    end
    else if (c >= '0' && c <= '9') || (c = '.' && peek 1 >= '0' && peek 1 <= '9') then begin
      let start = !pos in
      while
        !pos < n
        && ((src.[!pos] >= '0' && src.[!pos] <= '9') || src.[!pos] = '.' || src.[!pos] = 'e'
           || src.[!pos] = 'E'
           || ((src.[!pos] = '+' || src.[!pos] = '-')
              && !pos > start
              && (src.[!pos - 1] = 'e' || src.[!pos - 1] = 'E')))
      do
        incr pos
      done;
      match float_of_string_opt (String.sub src start (!pos - start)) with
      | Some v -> tokens := Number v :: !tokens
      | None -> fail "malformed number %S" (String.sub src start (!pos - start))
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !pos in
      while !pos < n && is_ident src.[!pos] do
        incr pos
      done;
      (* A trailing '.' belongs to the passage-measure selector, not the
         identifier. *)
      let stop = ref !pos in
      while !stop > start && src.[!stop - 1] = '.' do
        decr stop;
        decr pos
      done;
      tokens := Ident (String.sub src start (!stop - start)) :: !tokens
    end
    else begin
      (match c with
      | '(' -> tokens := Lparen :: !tokens
      | ')' -> tokens := Rparen :: !tokens
      | ',' -> tokens := Comma :: !tokens
      | '.' -> tokens := Dot :: !tokens
      | '+' -> tokens := Plus :: !tokens
      | '-' -> tokens := Minus :: !tokens
      | '*' -> tokens := Star :: !tokens
      | '/' -> tokens := Slash :: !tokens
      | c -> fail "unexpected character %C" c);
      incr pos
    end
  done;
  Array.of_list (List.rev (Eof :: !tokens))

type state = { tokens : token array; mutable index : int }

let peek st = st.tokens.(st.index)
let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let token_name = function
  | Ident s -> Printf.sprintf "%S" s
  | Number v -> Printf.sprintf "%g" v
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Arrow -> "'->'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Eof -> "end of input"

let expect st token =
  if peek st = token then advance st
  else fail "expected %s but found %s" (token_name token) (token_name (peek st))

let ident st =
  match peek st with
  | Ident s ->
      advance st;
      s
  | t -> fail "expected a name but found %s" (token_name t)

let rec parse_expr st =
  let left = ref (parse_term st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Plus ->
        advance st;
        left := Add (!left, parse_term st)
    | Minus ->
        advance st;
        left := Sub (!left, parse_term st)
    | _ -> continue := false
  done;
  !left

and parse_term st =
  let left = ref (parse_atom st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Star ->
        advance st;
        left := Mul (!left, parse_atom st)
    | Slash ->
        advance st;
        left := Div (!left, parse_atom st)
    | _ -> continue := false
  done;
  !left

and parse_atom st =
  match peek st with
  | Number v ->
      advance st;
      Num v
  | Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Rparen;
      e
  | Ident "throughput" ->
      advance st;
      expect st Lparen;
      let name = ident st in
      expect st Rparen;
      Throughput name
  | Ident "utilisation" ->
      advance st;
      expect st Lparen;
      let name = ident st in
      expect st Rparen;
      Utilisation name
  | Ident "located" ->
      advance st;
      expect st Lparen;
      let token = ident st in
      expect st Comma;
      let place = ident st in
      expect st Rparen;
      Located (token, place)
  | Ident "passage" ->
      advance st;
      expect st Lparen;
      let source = ident st in
      expect st Arrow;
      let target = ident st in
      expect st Rparen;
      expect st Dot;
      let measure =
        match ident st with
        | "mean" -> Mean
        | "median" -> Median
        | "completion" -> Completion
        | "cdf" ->
            expect st Lparen;
            let t =
              match peek st with
              | Number v ->
                  advance st;
                  v
              | t -> fail "expected a time but found %s" (token_name t)
            in
            expect st Rparen;
            Cdf t
        | other -> fail "unknown passage measure %s" other
      in
      Passage (source, target, measure)
  | t -> fail "expected a query but found %s" (token_name t)

let parse src =
  let st = { tokens = tokenize src; index = 0 } in
  let q = parse_expr st in
  (match peek st with Eof -> () | t -> fail "trailing input: %s" (token_name t));
  q

let rec to_string = function
  | Throughput a -> Printf.sprintf "throughput(%s)" a
  | Utilisation s -> Printf.sprintf "utilisation(%s)" s
  | Located (tok, place) -> Printf.sprintf "located(%s, %s)" tok place
  | Passage (a, b, m) ->
      let measure =
        match m with
        | Mean -> "mean"
        | Median -> "median"
        | Completion -> "completion"
        | Cdf t -> Printf.sprintf "cdf(%g)" t
      in
      Printf.sprintf "passage(%s -> %s).%s" a b measure
  | Num v -> Printf.sprintf "%g" v
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_string a) (to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)
  | Div (a, b) -> Printf.sprintf "(%s / %s)" (to_string a) (to_string b)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type context = {
  chain : Markov.Ctmc.t;
  throughput : string -> float option;
  utilisation : string -> float option;
  located : string -> string -> float option;
  reached_by : string -> int list;  (* states entered by an action *)
}

let context_of_pepa (analysis : Workbench.pepa_analysis) =
  let space = analysis.Workbench.space in
  let results = analysis.Workbench.results in
  {
    chain = Pepa.Statespace.ctmc space;
    throughput =
      (fun a ->
        if List.mem a (Pepa.Statespace.action_names space) then
          Some (Pepa.Statespace.throughput space analysis.Workbench.distribution a)
        else None);
    utilisation = (fun name -> Results.probability results name);
    located = (fun _ _ -> None);
    reached_by =
      (fun a ->
        List.filter_map
          (fun tr ->
            if Pepa.Action.equal tr.Pepa.Statespace.action (Pepa.Action.act a) then
              Some tr.Pepa.Statespace.dst
            else None)
          (Pepa.Statespace.transitions space)
        |> List.sort_uniq compare);
  }

let context_of_net (analysis : Workbench.net_analysis) =
  let space = analysis.Workbench.net_space in
  let pi = analysis.Workbench.net_distribution in
  let compiled = Pepanet.Net_statespace.compiled space in
  let token_id name =
    let rec scan i =
      if i >= Pepanet.Net_compile.n_tokens compiled then None
      else if Pepanet.Net_compile.token_name compiled i = name then Some i
      else scan (i + 1)
    in
    scan 0
  in
  let labelled a tr =
    match tr.Pepanet.Net_statespace.label with
    | Pepanet.Net_semantics.Local action -> Pepa.Action.name action = Some a
    | Pepanet.Net_semantics.Fire { action; _ } -> action = a
  in
  {
    chain = Pepanet.Net_statespace.ctmc space;
    throughput =
      (fun a ->
        if List.mem a (Pepanet.Net_statespace.action_names space) then
          Some (Pepanet.Net_measures.throughput space pi a)
        else None);
    utilisation = (fun _ -> None);
    located =
      (fun token place ->
        Option.map
          (fun id ->
            Option.value ~default:0.0
              (List.assoc_opt place
                 (Pepanet.Net_measures.token_location_probabilities space pi ~token:id)))
          (token_id token));
    reached_by =
      (fun a ->
        List.filter_map
          (fun tr ->
            if labelled a tr then Some tr.Pepanet.Net_statespace.dst else None)
          (Pepanet.Net_statespace.transitions space)
        |> List.sort_uniq compare);
  }

let rec eval context = function
  | Num v -> v
  | Add (a, b) -> eval context a +. eval context b
  | Sub (a, b) -> eval context a -. eval context b
  | Mul (a, b) -> eval context a *. eval context b
  | Div (a, b) -> eval context a /. eval context b
  | Throughput a -> (
      match context.throughput a with
      | Some v -> v
      | None -> fail "no action type %s in the model" a)
  | Utilisation name -> (
      match context.utilisation name with
      | Some v -> v
      | None -> fail "no component state %s in the model" name)
  | Located (token, place) -> (
      match context.located token place with
      | Some v -> v
      | None -> fail "no token %s (or located() used on a plain PEPA model)" token)
  | Passage (a, b, measure) -> (
      let sources = List.map (fun s -> (s, 1.0)) (context.reached_by a) in
      let targets = context.reached_by b in
      if sources = [] then fail "no %s activity to start the passage from" a;
      if targets = [] then fail "no %s activity to end the passage at" b;
      match measure with
      | Mean -> Markov.Passage.mean context.chain ~sources ~targets
      | Completion -> Markov.Passage.completion_probability context.chain ~sources ~targets
      | Median -> Markov.Passage.quantile context.chain ~sources ~targets ~p:0.5 ~epsilon:1e-6
      | Cdf t -> Markov.Passage.cdf context.chain ~sources ~targets ~t)

let eval_string context src = eval context (parse src)
