(** Graphviz (dot) rendering of the objects the tool chain manipulates:
    derivation graphs, marking graphs and the net structure itself (the
    paper draws its nets as places, transition bars and tokens — this is
    the programmatic equivalent). *)

val pepa_statespace : Pepa.Statespace.t -> string
(** The derivation graph: one node per state (labelled with its
    component vector), one edge per activity, labelled [action/rate].
    The initial state is drawn with a double circle. *)

val net_statespace : Pepanet.Net_statespace.t -> string
(** The marking graph; firing edges are drawn bold. *)

val net_structure : Pepanet.Net.t -> string
(** The net itself: places as circles (annotated with their cells and
    static components), net transitions as boxes, arcs from input places
    and to output places. *)

val escape : string -> string
(** Escape a string for use inside a dot label. *)
