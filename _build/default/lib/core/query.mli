(** A small measure-specification language over solved models, in the
    spirit of the property interfaces of the tools the paper wants
    tighter integration with (PRISM, ipc, Möbius).

    Grammar (usual precedence, ['%'] comments not supported — queries are
    one-liners):
    {v
      query ::= "throughput" "(" name ")"
              | "utilisation" "(" name ")"          % component state, e.g. Client.Client_WaitForResponse
              | "located" "(" token "," place ")"   % PEPA nets: token location probability
              | "passage" "(" name "->" name ")" "." passage-measure
              | query ("+" | "-" | "*" | "/") query
              | number | "(" query ")"
      passage-measure ::= "mean" | "median" | "completion" | "cdf" "(" number ")"
    v}

    A [passage(a -> b)] runs from the states just after an [a] activity
    to the states just after a [b] activity.  Example: the client's mean
    response time is [passage(request -> response).mean]; the relative
    benefit of an optimisation is a ratio of two such queries. *)

type t

exception Query_error of string

val parse : string -> t
(** Raises {!Query_error} on syntax errors. *)

val to_string : t -> string

(** The evaluation context: everything a query can observe about a
    solved model. *)
type context

val context_of_pepa : Workbench.pepa_analysis -> context
val context_of_net : Workbench.net_analysis -> context

val eval : context -> t -> float
(** Raises {!Query_error} when the query refers to an unknown action,
    state or token, or uses [located] on a plain PEPA model. *)

val eval_string : context -> string -> float
