let expectation pi reward =
  let s = ref 0.0 in
  Array.iteri (fun i p -> s := !s +. (p *. reward i)) pi;
  !s

let probability pi pred = expectation pi (fun i -> if pred i then 1.0 else 0.0)

let flow pi transitions select =
  List.fold_left
    (fun acc ((src, _, rate) as t) -> if select t then acc +. (pi.(src) *. rate) else acc)
    0.0 transitions

let mean_recurrence_time pi i = if pi.(i) <= 0.0 then infinity else 1.0 /. pi.(i)

let distribution_distance a b =
  if Array.length a <> Array.length b then
    invalid_arg "Measures.distribution_distance: dimension mismatch";
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := max !worst (abs_float (v -. b.(i)))) a;
  !worst
