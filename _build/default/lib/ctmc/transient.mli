(** Transient analysis of a CTMC by uniformisation.

    [pi(t) = sum_k Poisson(Lambda t; k) . pi(0) P^k] where
    [P = I + Q / Lambda] is the uniformised jump chain.  Poisson weights
    are computed by the standard stable recurrence outward from the mode
    with tail truncation, so large [Lambda t] values do not underflow. *)

val probabilities : Ctmc.t -> initial:float array -> t:float -> float array
(** State-probability vector at time [t >= 0] starting from the
    distribution [initial].  Raises [Invalid_argument] if [initial] has
    the wrong length, does not sum to (approximately) 1, or [t] is
    negative. *)

val point_probability : Ctmc.t -> initial:float array -> t:float -> state:int -> float

val expected_reward : Ctmc.t -> initial:float array -> rewards:float array -> t:float -> float
(** Instantaneous expected reward [sum_i pi_i(t) r_i]. *)

val poisson_weights : lambda_t:float -> epsilon:float -> int * float array
(** Exposed for testing: [(offset, weights)] such that [weights.(k)] is
    the probability of [offset + k] Poisson events, truncated so that
    the discarded tail mass is below [epsilon], and the retained weights
    are renormalised to sum to 1. *)
