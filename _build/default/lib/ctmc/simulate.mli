(** Discrete-event Monte-Carlo simulation of CTMCs.

    The paper contrasts its exact numerical solution with the simulation
    approach of UML-Psi: "approximate solutions require the calculation
    of confidence intervals, but large state-space size is tolerated" —
    and suggests the two complement each other.  This module provides
    that complement: trajectory sampling, long-run estimation with batch
    means and confidence intervals, and transient estimation by
    independent replications.

    All randomness comes from an explicit seeded generator (splitmix64),
    so simulations are reproducible. *)

module Rng : sig
  type t

  val create : seed:int64 -> t
  val uniform : t -> float
  (** Uniform on (0, 1). *)

  val exponential : t -> rate:float -> float
  val split : t -> t
  (** An independent stream (for replications). *)
end

type event = { time : float; state : int }
(** A jump: the chain entered [state] at [time]. *)

val trajectory : Ctmc.t -> rng:Rng.t -> initial:int -> horizon:float -> event list
(** One sample path from time 0 to [horizon]; the first event is
    [(0, initial)].  A path that reaches an absorbing state ends
    there. *)

type estimate = {
  mean : float;
  half_width : float;  (** of the 95% confidence interval *)
  samples : int;
}

val steady_state_estimate :
  Ctmc.t ->
  rng:Rng.t ->
  initial:int ->
  ?batches:int ->
  ?batch_time:float ->
  ?warmup:float ->
  reward:(int -> float) ->
  unit ->
  estimate
(** Long-run average of a state reward by the batch-means method:
    simulate [warmup] (discarded), then [batches] consecutive windows of
    [batch_time]; the batch averages give the mean and Student-t
    confidence interval.  Defaults: 20 batches of 50 time units after a
    warmup of 10. *)

val transient_estimate :
  Ctmc.t ->
  rng:Rng.t ->
  initial:int ->
  ?replications:int ->
  t:float ->
  reward:(int -> float) ->
  unit ->
  estimate
(** Mean instantaneous reward at time [t] over independent replications
    (default 1000). *)

val throughput_estimate :
  Ctmc.t ->
  rng:Rng.t ->
  initial:int ->
  ?batches:int ->
  ?batch_time:float ->
  ?warmup:float ->
  counts:(int -> int -> bool) ->
  unit ->
  estimate
(** Long-run rate of jumps selected by [counts src dst] (e.g. the jumps
    carrying a given action), by batch means over jump counts. *)
