type method_ = Direct | Jacobi | Gauss_seidel | Power

type options = { tolerance : float; max_iterations : int; direct_limit : int }

let default_options = { tolerance = 1e-12; max_iterations = 100_000; direct_limit = 3000 }

exception Did_not_converge of { iterations : int; residual : float }
exception Not_solvable of string

let method_name = function
  | Direct -> "direct"
  | Jacobi -> "jacobi"
  | Gauss_seidel -> "gauss-seidel"
  | Power -> "power"

let residual c pi =
  let qt = Ctmc.generator_transposed c in
  let defect = Sparse.mul_vec qt pi in
  Array.fold_left (fun acc v -> max acc (abs_float v)) 0.0 defect

let normalise pi =
  let total = Array.fold_left ( +. ) 0.0 pi in
  if total <= 0.0 then raise (Not_solvable "iteration collapsed to the zero vector");
  Array.map (fun v -> v /. total) pi

(* --------------------------------------------------------------- *)
(* Direct method                                                    *)
(* --------------------------------------------------------------- *)

let solve_direct options c =
  let n = Ctmc.n_states c in
  if n > options.direct_limit then
    raise
      (Not_solvable
         (Printf.sprintf "chain has %d states, above the direct solver limit of %d" n
            options.direct_limit));
  if n = 0 then [||]
  else begin
    (* Solve Q^T pi = 0 with the last equation replaced by sum pi = 1. *)
    let a = Sparse.to_dense (Ctmc.generator_transposed c) in
    let b = Array.make n 0.0 in
    for j = 0 to n - 1 do
      a.(n - 1).(j) <- 1.0
    done;
    b.(n - 1) <- 1.0;
    let pi =
      try Dense.lu_solve a b
      with Dense.Singular _ ->
        raise (Not_solvable "singular system: the chain has no unique steady state")
    in
    (* Clamp tiny negative values produced by rounding. *)
    normalise (Array.map (fun v -> if v < 0.0 && v > -1e-9 then 0.0 else v) pi)
  end

(* --------------------------------------------------------------- *)
(* Iterative methods on Q^T pi = 0                                  *)
(* --------------------------------------------------------------- *)

let check_no_absorbing c =
  for i = 0 to Ctmc.n_states c - 1 do
    if Ctmc.is_absorbing c i then
      raise
        (Not_solvable
           (Printf.sprintf "state %d is absorbing; use the direct method for reducible chains" i))
  done

let iterate ~options ~c ~update =
  let n = Ctmc.n_states c in
  let pi = ref (Array.make n (1.0 /. float_of_int n)) in
  let iterations = ref 0 in
  let res = ref (residual c !pi) in
  while !res > options.tolerance do
    if !iterations >= options.max_iterations then
      raise (Did_not_converge { iterations = !iterations; residual = !res });
    pi := normalise (update !pi);
    incr iterations;
    res := residual c !pi
  done;
  !pi

(* Damped (weighted) Jacobi: plain Jacobi oscillates on chains whose
   iteration matrix has eigenvalues on the unit circle (e.g. any 2-state
   chain), while the 1/2-damped variant converges whenever the plain
   iteration does not diverge. *)
let solve_jacobi options c =
  check_no_absorbing c;
  let qt = Ctmc.generator_transposed c in
  let n = Ctmc.n_states c in
  let omega = 0.5 in
  let update pi =
    let next = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let off = ref 0.0 in
      Sparse.iter_row qt i (fun j v -> if j <> i then off := !off +. (v *. pi.(j)));
      next.(i) <- ((1.0 -. omega) *. pi.(i)) +. (omega *. (!off /. Ctmc.exit_rate c i))
    done;
    next
  in
  iterate ~options ~c ~update

let solve_gauss_seidel options c =
  check_no_absorbing c;
  let qt = Ctmc.generator_transposed c in
  let n = Ctmc.n_states c in
  let update pi =
    let x = Array.copy pi in
    for i = 0 to n - 1 do
      let off = ref 0.0 in
      Sparse.iter_row qt i (fun j v -> if j <> i then off := !off +. (v *. x.(j)));
      x.(i) <- !off /. Ctmc.exit_rate c i
    done;
    x
  in
  iterate ~options ~c ~update

let solve_power options c =
  let n = Ctmc.n_states c in
  let lambda = (Ctmc.max_exit_rate c *. 1.02) +. 1e-9 in
  let qt = Ctmc.generator_transposed c in
  (* pi <- pi (I + Q / lambda), computed through the transpose. *)
  let update pi =
    let flow = Sparse.mul_vec qt pi in
    Array.init n (fun i -> pi.(i) +. (flow.(i) /. lambda))
  in
  iterate ~options ~c ~update

let solve ?method_ ?(options = default_options) c =
  if Ctmc.n_states c = 0 then [||]
  else
    match method_ with
    | Some Direct -> solve_direct options c
    | Some Jacobi -> solve_jacobi options c
    | Some Gauss_seidel -> solve_gauss_seidel options c
    | Some Power -> solve_power options c
    | None -> (
        (* Default policy: Gauss-Seidel, falling back to the direct solver
           for chains it cannot handle (absorbing states, slow mixing). *)
        let fallback () =
          if Ctmc.n_states c <= options.direct_limit then solve_direct options c
          else raise (Not_solvable "iteration failed and the chain is too large for LU")
        in
        try solve_gauss_seidel options c with
        | Not_solvable _ -> fallback ()
        | Did_not_converge _ -> fallback ())
