let poisson_weights ~lambda_t ~epsilon =
  if lambda_t < 0.0 then invalid_arg "Transient.poisson_weights: negative lambda_t";
  if lambda_t = 0.0 then (0, [| 1.0 |])
  else begin
    let mode = int_of_float (floor lambda_t) in
    (* Unnormalised weights by recurrence from the mode in both directions;
       stop when a weight falls below [cutoff] relative to the mode.  The
       Poisson mass concentrates within a few standard deviations of the
       mode, so bound both loops explicitly: without the bound the
       downward loop would be O(mode), which matters for huge horizons. *)
    let cutoff = 1e-30 in
    let spread = int_of_float ((12.0 *. sqrt lambda_t) +. 100.0) in
    let floor_k = max 0 (mode - spread) in
    let down = ref [] in
    let w = ref 1.0 in
    let k = ref mode in
    while !k > floor_k && !w > cutoff do
      (* w(k-1) = w(k) * k / lambda_t *)
      w := !w *. float_of_int !k /. lambda_t;
      decr k;
      down := !w :: !down
    done;
    let lowest = !k in
    let up = ref [] in
    let w = ref 1.0 in
    let k = ref mode in
    let continue = ref true in
    while !continue do
      (* w(k+1) = w(k) * lambda_t / (k+1) *)
      w := !w *. lambda_t /. float_of_int (!k + 1);
      incr k;
      if !w <= cutoff && float_of_int !k > lambda_t then continue := false
      else up := !w :: !up
    done;
    let weights = Array.of_list (!down @ [ 1.0 ] @ List.rev !up) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let weights = Array.map (fun v -> v /. total) weights in
    (* Trim the tails whose cumulative mass is below epsilon / 2 each. *)
    let n = Array.length weights in
    let lo = ref 0 and acc = ref 0.0 in
    while !acc +. weights.(!lo) < epsilon /. 2.0 && !lo < n - 1 do
      acc := !acc +. weights.(!lo);
      incr lo
    done;
    let hi = ref (n - 1) and acc = ref 0.0 in
    while !acc +. weights.(!hi) < epsilon /. 2.0 && !hi > !lo do
      acc := !acc +. weights.(!hi);
      decr hi
    done;
    let kept = Array.sub weights !lo (!hi - !lo + 1) in
    let total = Array.fold_left ( +. ) 0.0 kept in
    (lowest + !lo, Array.map (fun v -> v /. total) kept)
  end

let probabilities c ~initial ~t =
  let n = Ctmc.n_states c in
  if Array.length initial <> n then invalid_arg "Transient.probabilities: dimension mismatch";
  let total = Array.fold_left ( +. ) 0.0 initial in
  if abs_float (total -. 1.0) > 1e-6 then
    invalid_arg "Transient.probabilities: initial distribution does not sum to 1";
  if t < 0.0 then invalid_arg "Transient.probabilities: negative time";
  if t = 0.0 || n = 0 then Array.copy initial
  else begin
    let lambda = (Ctmc.max_exit_rate c *. 1.02) +. 1e-9 in
    let qt = Ctmc.generator_transposed c in
    let step pi =
      (* pi P = pi + (pi Q) / lambda, computed through Q^T. *)
      let flow = Sparse.mul_vec qt pi in
      Array.init n (fun i -> pi.(i) +. (flow.(i) /. lambda))
    in
    let offset, weights = poisson_weights ~lambda_t:(lambda *. t) ~epsilon:1e-12 in
    let result = Array.make n 0.0 in
    let pi = ref (Array.copy initial) in
    (* Advance to the first retained Poisson term. *)
    for _ = 1 to offset do
      pi := step !pi
    done;
    Array.iteri
      (fun k w ->
        if k > 0 then pi := step !pi;
        Array.iteri (fun i v -> result.(i) <- result.(i) +. (w *. v)) !pi)
      weights;
    result
  end

let point_probability c ~initial ~t ~state = (probabilities c ~initial ~t).(state)

let expected_reward c ~initial ~rewards ~t =
  let pi = probabilities c ~initial ~t in
  if Array.length rewards <> Array.length pi then
    invalid_arg "Transient.expected_reward: dimension mismatch";
  let s = ref 0.0 in
  Array.iteri (fun i v -> s := !s +. (v *. rewards.(i))) pi;
  !s
