(** First-passage-time analysis, in the spirit of the Imperial PEPA
    Compiler's passage-time computations (the paper's Section 6 points to
    ipc for "derivation of passage-time densities").

    A passage is specified by weighted source states and a set of target
    states.  The target states are made absorbing; the cumulative
    distribution of the passage time is then the transient probability of
    having been absorbed. *)

val cdf : Ctmc.t -> sources:(int * float) list -> targets:int list -> t:float -> float
(** [cdf c ~sources ~targets ~t] is the probability that a passage
    starting in the [sources] distribution (weights are normalised)
    reaches some target state within time [t].  Raises
    [Invalid_argument] on empty sources or targets, or weights summing
    to zero. *)

val cdf_curve :
  Ctmc.t -> sources:(int * float) list -> targets:int list -> times:float list -> (float * float) list
(** The CDF sampled at several time points, as [(t, F(t))] pairs. *)

val density :
  Ctmc.t -> sources:(int * float) list -> targets:int list -> times:float list -> (float * float) list
(** A finite-difference estimate of the passage-time density at the
    given (strictly increasing) time points. *)

val mean : Ctmc.t -> sources:(int * float) list -> targets:int list -> float
(** The mean first-passage time, computed exactly from the linear
    system of hitting times ([h = 0] on targets,
    [exit_i h_i - sum_j q_ij h_j = 1] elsewhere).  Returns [infinity]
    when a source cannot reach any target. *)

val completion_probability : Ctmc.t -> sources:(int * float) list -> targets:int list -> float
(** The probability that the passage ever completes, from the exact
    linear system of absorption probabilities. *)

val quantile :
  Ctmc.t -> sources:(int * float) list -> targets:int list -> p:float -> epsilon:float -> float
(** [quantile c ~sources ~targets ~p ~epsilon] is the time [t] (within
    absolute tolerance [epsilon]) at which the CDF reaches [p], found by
    bisection.  Raises [Invalid_argument] unless [0 < p < 1].  Returns
    [infinity] if the passage completes with probability below [p]. *)
