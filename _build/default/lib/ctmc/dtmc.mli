(** Discrete-time Markov chains.

    Used for the jump chain embedded in a CTMC and for the uniformised
    chain that drives the power method; also convenient in tests. *)

type t

val of_rows : (int * float) list array -> t
(** [of_rows rows] builds a DTMC where [rows.(i)] lists the outgoing
    probabilities of state [i].  Each non-empty row must sum to
    (approximately) 1; an empty row denotes an absorbing state, treated
    as a self-loop.  Raises [Invalid_argument] otherwise. *)

val embedded_of_ctmc : Ctmc.t -> t
(** The jump chain of a CTMC: transition probabilities proportional to
    rates; absorbing CTMC states become DTMC self-loops. *)

val uniformised_of_ctmc : ?factor:float -> Ctmc.t -> t
(** The uniformised chain [P = I + Q / Lambda] with
    [Lambda = factor * max exit rate] ([factor] defaults to [1.02]). *)

val n_states : t -> int

val step : t -> float array -> float array
(** One application of the transition matrix to a distribution. *)

val distribution_after : t -> initial:float array -> steps:int -> float array

val steady : ?tolerance:float -> ?max_iterations:int -> t -> float array
(** Power iteration to a fixed point; raises
    [Steady.Did_not_converge] when the cap is hit (e.g. on a periodic
    chain). *)
