(** Export of a CTMC in PRISM's explicit-state interchange format, the
    route to the "tighter integration with tools such as PRISM"
    the paper's Section 6 calls for.

    Three files make up an explicit PRISM model:
    - [.tra]: the transition matrix — a header line ["n m"] followed by
      one ["src dst rate"] line per transition;
    - [.sta]: state descriptors — ["(s)"] header and ["i:(i)"] lines (we
      export the state index as the single variable, with human-readable
      labels carried in the .lab file);
    - [.lab]: label declarations ["i=\"name\""] followed by
      ["state: i ..."] assignments; label 0 is always ["init"] and
      label 1 ["deadlock"], as PRISM expects. *)

val tra_string : Ctmc.t -> string

val sta_string : Ctmc.t -> string

val lab_string : ?labels:(string * int list) list -> initial:int -> Ctmc.t -> string
(** Extra labels map a label name to the states carrying it. *)

val export :
  ?labels:(string * int list) list -> initial:int -> basename:string -> Ctmc.t -> string list
(** Write [basename.tra], [basename.sta] and [basename.lab]; returns the
    paths written. *)
