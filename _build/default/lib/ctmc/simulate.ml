module Rng = struct
  (* splitmix64: tiny, fast, and good enough for Monte-Carlo use. *)
  type t = { mutable state : int64 }

  let create ~seed = { state = seed }

  let next_int64 rng =
    rng.state <- Int64.add rng.state 0x9E3779B97F4A7C15L;
    let z = rng.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let uniform rng =
    (* 53 random bits into (0, 1); never returns 0 (log safety). *)
    let bits = Int64.shift_right_logical (next_int64 rng) 11 in
    (Int64.to_float bits +. 1.0) /. 9007199254740994.0

  let exponential rng ~rate =
    if rate <= 0.0 then invalid_arg "Rng.exponential: non-positive rate";
    -.log (uniform rng) /. rate

  let split rng = { state = next_int64 rng }
end

type event = { time : float; state : int }

(* Sample the next jump from [state]: exponential holding time at the
   exit rate, then a target chosen with probability proportional to its
   rate. *)
let step c rng state =
  let exit = Ctmc.exit_rate c state in
  if exit = 0.0 then None
  else begin
    let holding = Rng.exponential rng ~rate:exit in
    let u = Rng.uniform rng *. exit in
    let rec pick acc = function
      | [] -> state (* numerically unreachable fallback *)
      | (j, r) :: rest -> if acc +. r >= u then j else pick (acc +. r) rest
    in
    Some (holding, pick 0.0 (Ctmc.successors c state))
  end

let trajectory c ~rng ~initial ~horizon =
  if initial < 0 || initial >= Ctmc.n_states c then invalid_arg "Simulate: initial out of range";
  if horizon < 0.0 then invalid_arg "Simulate: negative horizon";
  let rec go time state acc =
    match step c rng state with
    | None -> acc
    | Some (holding, target) ->
        let time = time +. holding in
        if time > horizon then acc else go time target ({ time; state = target } :: acc)
  in
  List.rev (go 0.0 initial [ { time = 0.0; state = initial } ])

type estimate = { mean : float; half_width : float; samples : int }

(* Two-sided 95% Student-t quantiles (degrees of freedom 1..30, then
   normal). *)
let t_quantile_95 df =
  let table =
    [|
      12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228; 2.201; 2.179;
      2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086; 2.080; 2.074; 2.069; 2.064;
      2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
    |]
  in
  if df <= 0 then infinity else if df <= 30 then table.(df - 1) else 1.96

let estimate_of_samples samples =
  let n = List.length samples in
  if n < 2 then invalid_arg "Simulate: need at least two samples";
  let nf = float_of_int n in
  let mean = List.fold_left ( +. ) 0.0 samples /. nf in
  let variance =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples /. (nf -. 1.0)
  in
  let half_width = t_quantile_95 (n - 1) *. sqrt (variance /. nf) in
  { mean; half_width; samples = n }

(* Run one simulation, folding a visitor over (state, holding-time spent
   in it, jump target option) triples until the horizon. *)
let fold_path c rng ~initial ~horizon ~init ~visit =
  let rec go time state acc =
    if time >= horizon then acc
    else
      match step c rng state with
      | None ->
          (* absorbed: the remaining time is spent here *)
          visit acc state (horizon -. time) None
      | Some (holding, target) ->
          let slice = Float.min holding (horizon -. time) in
          let acc =
            visit acc state slice (if time +. holding <= horizon then Some target else None)
          in
          go (time +. holding) target acc
  in
  go 0.0 initial init

let steady_state_estimate c ~rng ~initial ?(batches = 20) ?(batch_time = 50.0) ?(warmup = 10.0)
    ~reward () =
  if batches < 2 then invalid_arg "Simulate: need at least two batches";
  (* One long run; warmup discarded; batch boundaries by simulated time.
     Accumulate time-weighted reward per batch. *)
  let horizon = warmup +. (float_of_int batches *. batch_time) in
  let totals = Array.make batches 0.0 in
  let _ =
    fold_path c rng ~initial ~horizon ~init:0.0 ~visit:(fun clock state slice _target ->
        (* distribute [slice] across the batch windows it overlaps *)
        let rec spread t remaining =
          if remaining <= 1e-15 then ()
          else begin
            let batch = int_of_float ((t -. warmup) /. batch_time) in
            if t < warmup then begin
              let step = Float.min remaining (warmup -. t) in
              spread (t +. step) (remaining -. step)
            end
            else if batch >= batches then ()
            else begin
              let window_end = warmup +. (float_of_int (batch + 1) *. batch_time) in
              let step = Float.min remaining (window_end -. t) in
              totals.(batch) <- totals.(batch) +. (reward state *. step);
              spread (t +. step) (remaining -. step)
            end
          end
        in
        spread clock slice;
        clock +. slice)
  in
  estimate_of_samples (Array.to_list (Array.map (fun v -> v /. batch_time) totals))

let transient_estimate c ~rng ~initial ?(replications = 1000) ~t ~reward () =
  if replications < 2 then invalid_arg "Simulate: need at least two replications";
  let samples =
    List.init replications (fun _ ->
        let stream = Rng.split rng in
        (* state occupied at time t: last event before t *)
        let rec advance time state =
          match step c stream state with
          | None -> state
          | Some (holding, target) ->
              if time +. holding > t then state else advance (time +. holding) target
        in
        reward (advance 0.0 initial))
  in
  estimate_of_samples samples

let throughput_estimate c ~rng ~initial ?(batches = 20) ?(batch_time = 50.0) ?(warmup = 10.0)
    ~counts () =
  if batches < 2 then invalid_arg "Simulate: need at least two batches";
  let horizon = warmup +. (float_of_int batches *. batch_time) in
  let tallies = Array.make batches 0 in
  let _ =
    fold_path c rng ~initial ~horizon ~init:0.0 ~visit:(fun clock state slice target ->
        let jump_time = clock +. slice in
        (match target with
        | Some dst when jump_time >= warmup && counts state dst ->
            let batch =
              min (batches - 1) (int_of_float ((jump_time -. warmup) /. batch_time))
            in
            tallies.(batch) <- tallies.(batch) + 1
        | _ -> ());
        jump_time)
  in
  estimate_of_samples
    (Array.to_list (Array.map (fun k -> float_of_int k /. batch_time) tallies))
