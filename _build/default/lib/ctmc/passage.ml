let check_query c ~sources ~targets =
  let n = Ctmc.n_states c in
  if sources = [] then invalid_arg "Passage: no source state";
  if targets = [] then invalid_arg "Passage: no target state";
  List.iter
    (fun (i, w) ->
      if i < 0 || i >= n then invalid_arg "Passage: source out of range";
      if w < 0.0 then invalid_arg "Passage: negative source weight")
    sources;
  List.iter
    (fun i -> if i < 0 || i >= n then invalid_arg "Passage: target out of range")
    targets;
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 sources in
  if total <= 0.0 then invalid_arg "Passage: source weights sum to zero";
  total

(* The passage chain: target states become absorbing. *)
let absorbing_chain c ~targets =
  let is_target = Array.make (Ctmc.n_states c) false in
  List.iter (fun i -> is_target.(i) <- true) targets;
  let transitions = ref [] in
  for i = 0 to Ctmc.n_states c - 1 do
    if not is_target.(i) then
      List.iter (fun (j, r) -> transitions := (i, j, r) :: !transitions) (Ctmc.successors c i)
  done;
  (Ctmc.of_transitions ~n:(Ctmc.n_states c) !transitions, is_target)

let initial_distribution c ~sources ~total =
  let pi0 = Array.make (Ctmc.n_states c) 0.0 in
  List.iter (fun (i, w) -> pi0.(i) <- pi0.(i) +. (w /. total)) sources;
  pi0

(* States from which some target is reachable (reverse search). *)
let can_reach_targets c ~targets =
  let n = Ctmc.n_states c in
  let predecessors = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter (fun (j, _) -> predecessors.(j) <- i :: predecessors.(j)) (Ctmc.successors c i)
  done;
  let reach = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun t ->
      if not reach.(t) then begin
        reach.(t) <- true;
        Queue.add t queue
      end)
    targets;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    List.iter
      (fun i ->
        if not reach.(i) then begin
          reach.(i) <- true;
          Queue.add i queue
        end)
      predecessors.(j)
  done;
  reach

let cdf c ~sources ~targets ~t =
  let total = check_query c ~sources ~targets in
  (* A source that is already a target completes instantly. *)
  let chain, is_target = absorbing_chain c ~targets in
  let pi0 = initial_distribution c ~sources ~total in
  let pi = Transient.probabilities chain ~initial:pi0 ~t in
  let hit = ref 0.0 in
  Array.iteri (fun i p -> if is_target.(i) then hit := !hit +. p) pi;
  !hit

let cdf_curve c ~sources ~targets ~times =
  List.map (fun t -> (t, cdf c ~sources ~targets ~t)) times

let density c ~sources ~targets ~times =
  let curve = cdf_curve c ~sources ~targets ~times in
  let rec differentiate = function
    | (t1, f1) :: ((t2, f2) :: _ as rest) ->
        ((t1 +. t2) /. 2.0, (f2 -. f1) /. (t2 -. t1)) :: differentiate rest
    | [ _ ] | [] -> []
  in
  differentiate curve

let mean c ~sources ~targets =
  let total = check_query c ~sources ~targets in
  let n = Ctmc.n_states c in
  let is_target = Array.make n false in
  List.iter (fun i -> is_target.(i) <- true) targets;
  let reach = can_reach_targets c ~targets in
  (* A passage that may never complete has infinite mean. *)
  if List.exists (fun (i, w) -> w > 0.0 && not reach.(i)) sources then infinity
  else begin
    let leaks i =
      (* Mass escaping to never-reaching states makes the mean infinite
         too; detect it while filling the system. *)
      List.exists (fun (j, _) -> not reach.(j)) (Ctmc.successors c i)
    in
    (* Hitting-time system over non-target states that can reach:
       exit_i h_i - sum_{j not target} q_ij h_j = 1. *)
    let kept =
      List.filter (fun i -> (not is_target.(i)) && reach.(i)) (List.init n Fun.id)
    in
    if List.exists leaks kept then infinity
    else begin
      let index = Hashtbl.create 16 in
      List.iteri (fun k i -> Hashtbl.add index i k) kept;
      let m = List.length kept in
      if m = 0 then 0.0
      else begin
        let a = Array.make_matrix m m 0.0 in
        let b = Array.make m 1.0 in
        List.iteri
          (fun k i ->
            a.(k).(k) <- Ctmc.exit_rate c i;
            List.iter
              (fun (j, r) ->
                if not is_target.(j) then begin
                  let kj = Hashtbl.find index j in
                  a.(k).(kj) <- a.(k).(kj) -. r
                end)
              (Ctmc.successors c i))
          kept;
        match Dense.lu_solve a b with
        | exception Dense.Singular _ -> infinity
        | h ->
            List.fold_left
              (fun acc (i, w) ->
                let hi = if is_target.(i) then 0.0 else h.(Hashtbl.find index i) in
                acc +. (w /. total *. hi))
              0.0 sources
      end
    end
  end

(* Probability of ever completing the passage, from the linear system of
   absorption probabilities (a = 1 on targets; a_i = 0 on non-target
   absorbing states; balance elsewhere). *)
let completion_probability c ~sources ~targets =
  let total = check_query c ~sources ~targets in
  let n = Ctmc.n_states c in
  let is_target = Array.make n false in
  List.iter (fun i -> is_target.(i) <- true) targets;
  (* States from which the targets are unreachable have absorption
     probability 0; excluding them up front keeps the linear system
     non-singular (closed classes away from the targets would otherwise
     make it degenerate). *)
  let reach = can_reach_targets c ~targets in
  let kept =
    List.filter (fun i -> (not is_target.(i)) && reach.(i)) (List.init n Fun.id)
  in
  let index = Hashtbl.create 16 in
  List.iteri (fun k i -> Hashtbl.add index i k) kept;
  let m = List.length kept in
  let a = Array.make_matrix m m 0.0 in
  let b = Array.make m 0.0 in
  List.iteri
    (fun k i ->
      a.(k).(k) <- Ctmc.exit_rate c i;
      List.iter
        (fun (j, r) ->
          if is_target.(j) then b.(k) <- b.(k) +. r
          else if reach.(j) then begin
            let kj = Hashtbl.find index j in
            a.(k).(kj) <- a.(k).(kj) -. r
          end)
        (Ctmc.successors c i))
    kept;
  let solution = if m = 0 then [||] else Dense.lu_solve a b in
  List.fold_left
    (fun acc (i, w) ->
      let ai =
        if is_target.(i) then 1.0
        else if reach.(i) then solution.(Hashtbl.find index i)
        else 0.0
      in
      acc +. (w /. total *. ai))
    0.0 sources

let quantile c ~sources ~targets ~p ~epsilon =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Passage.quantile: p must lie in (0, 1)";
  if epsilon <= 0.0 then invalid_arg "Passage.quantile: epsilon must be positive";
  (* Passages that complete with probability below p have no finite
     p-quantile; decide that algebraically rather than by chasing the
     CDF towards an unreachable level. *)
  if completion_probability c ~sources ~targets <= p +. 1e-12 then infinity
  else begin
    let f t = cdf c ~sources ~targets ~t in
    let rec bracket hi attempts =
      if f hi >= p then Some hi
      else if attempts = 0 then None
      else bracket (hi *. 2.0) (attempts - 1)
    in
    (* The completion check guarantees a finite quantile; the cap only
       guards against pathological stiffness. *)
    match bracket 1.0 30 with
    | None -> infinity
    | Some hi ->
        let rec bisect lo hi =
          if hi -. lo <= epsilon then (lo +. hi) /. 2.0
          else
            let mid = (lo +. hi) /. 2.0 in
            if f mid >= p then bisect lo mid else bisect mid hi
        in
        bisect 0.0 hi
  end
