type t = {
  n : int;
  rates : Sparse.t;  (* off-diagonal rate matrix, row = source *)
  exit : float array;
  mutable transposed : Sparse.t option;
}

let of_transitions ~n transitions =
  List.iter
    (fun (i, j, r) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg (Printf.sprintf "Ctmc.of_transitions: state (%d, %d) out of range" i j);
      if r <= 0.0 || Float.is_nan r then
        invalid_arg (Printf.sprintf "Ctmc.of_transitions: non-positive rate %g on %d -> %d" r i j))
    transitions;
  let off_diagonal = List.filter (fun (i, j, _) -> i <> j) transitions in
  let rates = Sparse.of_triplets ~n_rows:n ~n_cols:n off_diagonal in
  let exit = Sparse.row_sums rates in
  { n; rates; exit; transposed = None }

let n_states c = c.n

let generator c =
  let triplets = ref [] in
  for i = 0 to c.n - 1 do
    if c.exit.(i) > 0.0 then triplets := (i, i, -.c.exit.(i)) :: !triplets;
    Sparse.iter_row c.rates i (fun j v -> triplets := (i, j, v) :: !triplets)
  done;
  Sparse.of_triplets ~n_rows:c.n ~n_cols:c.n !triplets

let generator_transposed c =
  match c.transposed with
  | Some m -> m
  | None ->
      let m = Sparse.transpose (generator c) in
      c.transposed <- Some m;
      m

let exit_rate c i = c.exit.(i)
let exit_rates c = Array.copy c.exit

let max_exit_rate c = Array.fold_left max 0.0 c.exit

let rate c i j = Sparse.get c.rates i j

let successors c i = List.rev (Sparse.fold_row c.rates i (fun acc j v -> (j, v) :: acc) [])

let is_absorbing c i = c.exit.(i) = 0.0

(* A finite CTMC is irreducible iff state 0 reaches every state and every
   state reaches state 0 (single strongly-connected component). *)
let is_irreducible c =
  if c.n = 0 then true
  else begin
    let reaches matrix =
      let seen = Array.make c.n false in
      let queue = Queue.create () in
      seen.(0) <- true;
      Queue.add 0 queue;
      while not (Queue.is_empty queue) do
        let i = Queue.pop queue in
        Sparse.iter_row matrix i (fun j _ ->
            if not seen.(j) then begin
              seen.(j) <- true;
              Queue.add j queue
            end)
      done;
      Array.for_all Fun.id seen
    in
    reaches c.rates && reaches (Sparse.transpose c.rates)
  end

let embedded_probabilities c i =
  let total = c.exit.(i) in
  if total = 0.0 then []
  else List.map (fun (j, r) -> (j, r /. total)) (successors c i)

let pp_stats fmt c =
  Format.fprintf fmt "%d states, %d transitions, max exit rate %g" c.n (Sparse.nnz c.rates)
    (max_exit_rate c)
