(** Reward-style measures over a probability distribution.

    The action-labelled measures used by the PEPA layers (throughput of
    an action type, utilisation of a component state) all reduce to the
    generic combinators here. *)

val expectation : float array -> (int -> float) -> float
(** [expectation pi reward] is [sum_i pi.(i) * reward i]. *)

val probability : float array -> (int -> bool) -> float
(** Total probability of the states satisfying the predicate. *)

val flow : float array -> (int * int * float) list -> ((int * int * float) -> bool) -> float
(** [flow pi transitions select] is the steady-state rate of occurrence
    of the selected transitions: [sum pi.(src) * rate] over transitions
    for which [select] holds.  Throughput of an action type is [flow]
    over that action's transitions. *)

val mean_recurrence_time : float array -> int -> float
(** [1 / pi.(i)] expressed in expected visits; [infinity] for an
    unvisited state. *)

val distribution_distance : float array -> float array -> float
(** Total-variation-style max-norm distance between two distributions. *)
