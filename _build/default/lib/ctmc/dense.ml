exception Singular of int

let mul_vec a x =
  Array.map
    (fun row ->
      let s = ref 0.0 in
      Array.iteri (fun j v -> s := !s +. (v *. x.(j))) row;
      !s)
    a

let identity n =
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0))

let lu_solve a b =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    if Array.length b <> n then invalid_arg "Dense.lu_solve: dimension mismatch";
    let m = Array.map Array.copy a in
    let x = Array.copy b in
    for k = 0 to n - 1 do
      (* Partial pivoting: bring the largest magnitude entry to the pivot. *)
      let pivot_row = ref k in
      for i = k + 1 to n - 1 do
        if abs_float m.(i).(k) > abs_float m.(!pivot_row).(k) then pivot_row := i
      done;
      if abs_float m.(!pivot_row).(k) < 1e-300 then raise (Singular k);
      if !pivot_row <> k then begin
        let tmp = m.(k) in
        m.(k) <- m.(!pivot_row);
        m.(!pivot_row) <- tmp;
        let t = x.(k) in
        x.(k) <- x.(!pivot_row);
        x.(!pivot_row) <- t
      end;
      let pivot = m.(k).(k) in
      for i = k + 1 to n - 1 do
        let factor = m.(i).(k) /. pivot in
        if factor <> 0.0 then begin
          m.(i).(k) <- 0.0;
          for j = k + 1 to n - 1 do
            m.(i).(j) <- m.(i).(j) -. (factor *. m.(k).(j))
          done;
          x.(i) <- x.(i) -. (factor *. x.(k))
        end
      done
    done;
    (* Back substitution. *)
    for i = n - 1 downto 0 do
      let s = ref x.(i) in
      for j = i + 1 to n - 1 do
        s := !s -. (m.(i).(j) *. x.(j))
      done;
      x.(i) <- !s /. m.(i).(i)
    done;
    x
  end

let residual_inf a x b =
  let ax = mul_vec a x in
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := max !worst (abs_float (v -. b.(i)))) ax;
  !worst
