(** Small dense linear-algebra kernel used by the direct steady-state
    solver.  Matrices are row-major [float array array]. *)

exception Singular of int
(** Raised by {!lu_solve} when elimination finds a pivot column with no
    usable pivot; the payload is the elimination step. *)

val lu_solve : float array array -> float array -> float array
(** [lu_solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  [a] and [b] are not modified.  Raises {!Singular} if [a]
    is (numerically) singular. *)

val mul_vec : float array array -> float array -> float array

val identity : int -> float array array

val residual_inf : float array array -> float array -> float array -> float
(** [residual_inf a x b] is [||a x - b||_inf]; useful for checking solver
    output in tests. *)
