type t = {
  n_rows : int;
  n_cols : int;
  row_ptr : int array;
  col_index : int array;
  values : float array;
}

let of_triplets ~n_rows ~n_cols triplets =
  List.iter
    (fun (i, j, _) ->
      if i < 0 || i >= n_rows || j < 0 || j >= n_cols then
        invalid_arg (Printf.sprintf "Sparse.of_triplets: index (%d, %d) out of range" i j))
    triplets;
  let sorted =
    List.sort
      (fun (i1, j1, _) (i2, j2, _) -> if i1 <> i2 then compare i1 i2 else compare j1 j2)
      triplets
  in
  (* Merge duplicates by summation. *)
  let merged =
    List.fold_left
      (fun acc (i, j, v) ->
        match acc with
        | (i', j', v') :: rest when i = i' && j = j' -> (i, j, v +. v') :: rest
        | _ -> (i, j, v) :: acc)
      [] sorted
    |> List.rev
  in
  let count = List.length merged in
  let row_ptr = Array.make (n_rows + 1) 0 in
  let col_index = Array.make count 0 in
  let values = Array.make count 0.0 in
  List.iteri
    (fun k (i, j, v) ->
      row_ptr.(i + 1) <- row_ptr.(i + 1) + 1;
      col_index.(k) <- j;
      values.(k) <- v)
    merged;
  for i = 1 to n_rows do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  { n_rows; n_cols; row_ptr; col_index; values }

let zero ~n_rows ~n_cols = of_triplets ~n_rows ~n_cols []

let nnz m = Array.length m.values

let get m i j =
  if i < 0 || i >= m.n_rows then invalid_arg "Sparse.get: row out of range";
  let rec bisect lo hi =
    if lo >= hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      let c = m.col_index.(mid) in
      if c = j then m.values.(mid) else if c < j then bisect (mid + 1) hi else bisect lo mid
  in
  bisect m.row_ptr.(i) m.row_ptr.(i + 1)

let iter_row m i f =
  for k = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
    f m.col_index.(k) m.values.(k)
  done

let fold_row m i f init =
  let acc = ref init in
  iter_row m i (fun j v -> acc := f !acc j v);
  !acc

let mul_vec m x =
  if Array.length x <> m.n_cols then invalid_arg "Sparse.mul_vec: dimension mismatch";
  let y = Array.make m.n_rows 0.0 in
  for i = 0 to m.n_rows - 1 do
    let s = ref 0.0 in
    iter_row m i (fun j v -> s := !s +. (v *. x.(j)));
    y.(i) <- !s
  done;
  y

let vec_mul x m =
  if Array.length x <> m.n_rows then invalid_arg "Sparse.vec_mul: dimension mismatch";
  let y = Array.make m.n_cols 0.0 in
  for i = 0 to m.n_rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then iter_row m i (fun j v -> y.(j) <- y.(j) +. (xi *. v))
  done;
  y

let transpose m =
  let triplets = ref [] in
  for i = 0 to m.n_rows - 1 do
    iter_row m i (fun j v -> triplets := (j, i, v) :: !triplets)
  done;
  of_triplets ~n_rows:m.n_cols ~n_cols:m.n_rows !triplets

let diagonal m =
  let n = min m.n_rows m.n_cols in
  Array.init n (fun i -> get m i i)

let to_dense m =
  let dense = Array.make_matrix m.n_rows m.n_cols 0.0 in
  for i = 0 to m.n_rows - 1 do
    iter_row m i (fun j v -> dense.(i).(j) <- dense.(i).(j) +. v)
  done;
  dense

let row_sums m =
  Array.init m.n_rows (fun i -> fold_row m i (fun acc _ v -> acc +. v) 0.0)
