let tra_string c =
  let buf = Buffer.create 1024 in
  let n = Ctmc.n_states c in
  let count = ref 0 in
  for i = 0 to n - 1 do
    count := !count + List.length (Ctmc.successors c i)
  done;
  Buffer.add_string buf (Printf.sprintf "%d %d\n" n !count);
  for i = 0 to n - 1 do
    List.iter
      (fun (j, r) -> Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" i j r))
      (Ctmc.successors c i)
  done;
  Buffer.contents buf

let sta_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "(s)\n";
  for i = 0 to Ctmc.n_states c - 1 do
    Buffer.add_string buf (Printf.sprintf "%d:(%d)\n" i i)
  done;
  Buffer.contents buf

let lab_string ?(labels = []) ~initial c =
  let buf = Buffer.create 1024 in
  let declarations =
    [ (0, "init"); (1, "deadlock") ]
    @ List.mapi (fun k (name, _) -> (k + 2, name)) labels
  in
  Buffer.add_string buf
    (String.concat " " (List.map (fun (i, name) -> Printf.sprintf "%d=\"%s\"" i name) declarations));
  Buffer.add_char buf '\n';
  let per_state = Hashtbl.create 16 in
  let mark state label =
    let existing = Option.value ~default:[] (Hashtbl.find_opt per_state state) in
    Hashtbl.replace per_state state (existing @ [ label ])
  in
  mark initial 0;
  for i = 0 to Ctmc.n_states c - 1 do
    if Ctmc.is_absorbing c i then mark i 1
  done;
  List.iteri (fun k (_, states) -> List.iter (fun s -> mark s (k + 2)) states) labels;
  List.sort compare (Hashtbl.fold (fun s ls acc -> (s, ls) :: acc) per_state [])
  |> List.iter (fun (s, ls) ->
         Buffer.add_string buf
           (Printf.sprintf "%d: %s\n" s (String.concat " " (List.map string_of_int ls))));
  Buffer.contents buf

let export ?labels ~initial ~basename c =
  let write suffix contents =
    let path = basename ^ suffix in
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc contents);
    path
  in
  [
    write ".tra" (tra_string c);
    write ".sta" (sta_string c);
    write ".lab" (lab_string ?labels ~initial c);
  ]
