lib/ctmc/prism.ml: Buffer Ctmc Fun Hashtbl List Option Printf String
