lib/ctmc/ctmc.ml: Array Float Format Fun List Printf Queue Sparse
