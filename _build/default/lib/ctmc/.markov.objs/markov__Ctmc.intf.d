lib/ctmc/ctmc.mli: Format Sparse
