lib/ctmc/prism.mli: Ctmc
