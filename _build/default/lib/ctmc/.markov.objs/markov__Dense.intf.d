lib/ctmc/dense.mli:
