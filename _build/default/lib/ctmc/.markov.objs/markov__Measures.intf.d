lib/ctmc/measures.mli:
