lib/ctmc/sparse.mli:
