lib/ctmc/simulate.ml: Array Ctmc Float Int64 List
