lib/ctmc/dtmc.mli: Ctmc
