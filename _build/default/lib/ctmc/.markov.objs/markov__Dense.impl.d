lib/ctmc/dense.ml: Array
