lib/ctmc/steady.mli: Ctmc
