lib/ctmc/steady.ml: Array Ctmc Dense Printf Sparse
