lib/ctmc/sparse.ml: Array List Printf
