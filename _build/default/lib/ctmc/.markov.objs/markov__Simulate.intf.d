lib/ctmc/simulate.mli: Ctmc
