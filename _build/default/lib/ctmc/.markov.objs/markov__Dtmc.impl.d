lib/ctmc/dtmc.ml: Array Ctmc List Printf Sparse Steady
