lib/ctmc/passage.mli: Ctmc
