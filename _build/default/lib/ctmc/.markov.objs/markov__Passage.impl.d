lib/ctmc/passage.ml: Array Ctmc Dense Fun Hashtbl List Queue Transient
