lib/ctmc/measures.ml: Array List
