(** Steady-state solution of a CTMC: the probability vector [pi] with
    [pi Q = 0] and [sum pi = 1].

    Four solution methods are provided, mirroring the PEPA Workbench:
    a direct dense LU solver (exact up to rounding, limited to small
    chains), Jacobi and Gauss–Seidel iterations on the normal equations,
    and the power method on the uniformised jump chain. *)

type method_ =
  | Direct       (** dense Gaussian elimination on [Q^T] with the
                     normalisation condition replacing one equation *)
  | Jacobi
  | Gauss_seidel
  | Power        (** power iteration on [P = I + Q / Lambda] *)

type options = {
  tolerance : float;      (** convergence threshold on the residual
                              [||pi Q||_inf] (default [1e-12]) *)
  max_iterations : int;   (** iteration cap (default [100_000]) *)
  direct_limit : int;     (** largest chain the direct method accepts
                              (default [3000]) *)
}

val default_options : options

exception Did_not_converge of { iterations : int; residual : float }

exception Not_solvable of string
(** Raised when the chain has no unique steady-state distribution that
    the requested method can find (e.g. an iterative method applied to a
    chain with an absorbing state, or a reducible chain given to the
    direct solver). *)

val solve : ?method_:method_ -> ?options:options -> Ctmc.t -> float array
(** Compute the steady-state distribution.  The default method is
    {!Gauss_seidel} with a fallback to {!Direct} for chains within
    [direct_limit] when iteration fails to converge. *)

val residual : Ctmc.t -> float array -> float
(** [residual c pi] is [||pi Q||_inf], the defect of a candidate
    solution. *)

val method_name : method_ -> string
