lib/extract/ad_to_pepanet.mli: Pepanet Uml
