lib/extract/sc_to_pepa.mli: Pepa Uml
