lib/extract/reflector.ml: Ad_to_pepanet List Printf Sc_to_pepa Uml
