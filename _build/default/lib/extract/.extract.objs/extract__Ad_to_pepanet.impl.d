lib/extract/ad_to_pepanet.ml: Format Hashtbl List Names Option Pepa Pepanet Printf Uml
