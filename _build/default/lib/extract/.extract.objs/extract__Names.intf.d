lib/extract/names.mli:
