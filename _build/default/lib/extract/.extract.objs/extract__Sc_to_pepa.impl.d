lib/extract/sc_to_pepa.ml: Format List Names Option Pepa Printf Uml
