lib/extract/reflector.mli: Ad_to_pepanet Sc_to_pepa Uml
