lib/extract/names.ml: Buffer Char Hashtbl Printf String
