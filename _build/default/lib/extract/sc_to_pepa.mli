(** Mapping of UML state diagrams to a PEPA model (the paper's Section 5
    client/server analysis).

    Each state diagram becomes one sequential PEPA component whose
    derivative states are the diagram's states; each transition becomes
    an activity named after its trigger.  Diagrams are composed with
    cooperation over the action types they share pairwise — the
    request/response pattern of Figures 8 and 9.

    Rates come from the transition's own [rate] tag when present, then
    from the rates file; a shared activity left unrated on one side
    becomes passive there (it inherits the rate of the active
    partner), matching PEPA modelling practice for client/server
    cooperation. *)

type extraction = {
  model : Pepa.Syntax.model;
  constant_of_state : (string * (string * string) list) list;
      (** chart name -> (state id -> PEPA constant) *)
  chart_leaf : (string * int) list;
      (** chart name -> leaf index in the compiled model *)
  shared_actions : string list;
}

exception Extraction_error of string

val extract : ?rates:Uml.Rates_file.t -> Uml.Statechart.t list -> extraction
