(** Identifier mangling between the UML world (free-form names such as
    ["download file"] or ["Transmitter 1"]) and the PEPA world, where
    action types and rate parameters are lower-case identifiers and
    process constants are upper-case identifiers. *)

val action_name : string -> string
(** Lower-case identifier from a free-form activity name:
    ["download file"] becomes ["download_file"]. *)

val constant_name : string -> string
(** Upper-case identifier: ["transmitter 1"] becomes ["Transmitter_1"]. *)

val rate_name : string -> string
(** The conventional rate parameter for an action: ["r_" ^ action]. *)

module Allocator : sig
  (** Injective renaming: repeated requests for the same source string
      return the same identifier, distinct sources never collide (a
      numeric suffix is appended on clashes). *)

  type t

  val create : (string -> string) -> t
  val get : t -> string -> string
end
