(** The Extractor: the Section 3 mapping from mobility-annotated UML
    activity diagrams to PEPA nets.

    Following the paper's summary table:
    - every location appearing in an [atloc] tag becomes a net-level
      place (a diagram with no locations gets the single implicit place
      [Global], making the result an ordinary PEPA model in net
      clothing);
    - every [<<move>>] activity becomes a net-level transition whose
      input/output places come from the locations of the object
      occurrences flowing in/out of it;
    - every object becomes a PEPA token; its behaviour strings together
      the activities associated with that object — prefix for sequential
      composition, choice for decision diamonds or multiple outgoing
      control edges;
    - activities with no associated object become activities of a static
      component placed at the last location a move was made to;
    - each place gets one cell per object that ever exhibits its
      location; cells (and static components) cooperate on shared
      activities;
    - the first recorded location of each object determines the initial
      marking.

    {b Recurrence.}  The diagrams of the paper terminate, yet the tool
    reports steady-state throughputs, so the extractor closes each
    token's behaviour into a cycle: reaching a final node performs a
    synthetic [reset_<object>] activity returning the token to its first
    activity.  When the final and initial locations differ the reset is
    itself a net transition (the object travels back); otherwise it is a
    local activity.  Pass [~restart:`Absorb] to keep the literal
    terminating behaviour instead (useful for transient analysis). *)

type extraction = {
  net : Pepanet.Net.t;
  action_of_node : (string * string) list;
      (** activity node id -> PEPA action name *)
  token_of_object : (string * string) list;
      (** object name -> token family root constant *)
  place_of_location : (string * string) list;
      (** [atloc] location -> place name *)
}

exception Extraction_error of string

val extract :
  ?rates:Uml.Rates_file.t ->
  ?restart:[ `Cycle | `Absorb ] ->
  ?interactions:Uml.Interaction.t list ->
  Uml.Activity.t ->
  extraction
(** When [interactions] are supplied (the Section 6 extension of basing
    extraction on more than one diagram type), two objects cooperate on
    a shared activity only if some interaction carries a message with
    that name between them; without interactions every shared activity
    is a cooperation, as in the paper's tool.

    Raises {!Extraction_error} on diagrams outside the supported subset
    (the restrictions the paper's Section 6 acknowledges): a [<<move>>]
    activity with no object flow, an object occurrence without a
    location when the diagram is mobile, or conflicting locations for an
    object-less activity. *)

val action_rate : Uml.Rates_file.t -> string -> float
(** Rate assigned to a mangled action name: the rates file binding for
    the mangled name, falling back to its default. *)
