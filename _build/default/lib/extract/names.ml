let sanitise s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | ' ' | '-' | '.' | ':' | '/' -> Buffer.add_char buf '_'
      | _ -> ())
    s;
  let out = Buffer.contents buf in
  if out = "" then "x" else out

let action_name s =
  let s = sanitise s in
  match s.[0] with
  | 'A' .. 'Z' -> String.make 1 (Char.lowercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)
  | '0' .. '9' | '_' -> "a" ^ s
  | _ -> s

let constant_name s =
  let s = sanitise s in
  match s.[0] with
  | 'a' .. 'z' -> String.make 1 (Char.uppercase_ascii s.[0]) ^ String.sub s 1 (String.length s - 1)
  | '0' .. '9' | '_' -> "C" ^ s
  | _ -> s

let rate_name action = "r_" ^ action_name action

module Allocator = struct
  type t = {
    mangle : string -> string;
    assigned : (string, string) Hashtbl.t;  (* source -> identifier *)
    taken : (string, unit) Hashtbl.t;
  }

  let create mangle = { mangle; assigned = Hashtbl.create 16; taken = Hashtbl.create 16 }

  let get t source =
    match Hashtbl.find_opt t.assigned source with
    | Some id -> id
    | None ->
        let base = t.mangle source in
        let rec pick candidate k =
          if Hashtbl.mem t.taken candidate then pick (Printf.sprintf "%s_%d" base k) (k + 1)
          else candidate
        in
        let id = pick base 2 in
        Hashtbl.add t.assigned source id;
        Hashtbl.add t.taken id ();
        id
end
