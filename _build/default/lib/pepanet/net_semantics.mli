(** The two-level operational semantics of PEPA nets.

    {b Transitions} (local moves) are ordinary PEPA activities within a
    single place: the place context evolves under Hillston's cooperation
    rule, with occupied cells contributing their token's activities
    (except those of firing type — firing actions only occur at the net
    level) and vacant cells contributing nothing.

    {b Firings} implement Definitions 2–6 of the paper:
    - an {e enabling} selects, for each input place of a transition, an
      occupied cell whose token has a one-step derivative of the firing
      type (each available derivative is a distinct enabling instance);
    - an {e output} selects a vacant, family-compatible cell of each
      output place, in the current marking;
    - {e concession} requires a type-preserving bijection φ between the
      selected tokens and output cells;
    - the {e enabling rule} suppresses firings when another transition of
      strictly higher priority has concession;
    - the {e firing rule} moves each token's derivative into its φ-cell;
      when several φ exist for an enabling they are equally likely, so
      the enabling's rate is split uniformly among them.

    The rate of an enabling follows PEPA's apparent rates and bounded
    capacity: the net transition's label and each input place act as
    cooperation participants; each place's apparent rate is the sum over
    its candidate derivative moves, each enabling takes its proportional
    share, and the total is bounded by the slowest participant. *)

type label =
  | Local of Pepa.Action.t
  | Fire of { action : string; transition : string }

type update = Set_cell of int * Marking.cell_state | Set_static of int * int

type move = { label : label; rate : Pepa.Rate.t; updates : update list }

val local_moves : Net_compile.t -> Marking.t -> move list
(** Local PEPA activities of every place. *)

val firings : Net_compile.t -> Marking.t -> move list
(** Enabled firings after priority filtering. *)

val firings_with_concession : Net_compile.t -> Marking.t -> (Net_compile.transition * move list) list
(** All transitions with concession and their firing moves, before the
    priority-based enabling rule (exposed for tests). *)

val moves : Net_compile.t -> Marking.t -> move list
(** [local_moves @ firings]. *)

val apply : Marking.t -> update list -> Marking.t

val apparent_local_rate : Net_compile.t -> Marking.t -> place:int -> string -> Pepa.Rate.t
(** Apparent rate of a named (non-firing) action within one place. *)
