module P = Pepa.Parser
module String_set = Pepa.Syntax.String_set

exception Parse_error of { line : int; col : int; message : string }

(* ------------------------------------------------------------------ *)
(* Context expressions                                                 *)
(* ------------------------------------------------------------------ *)

let rec parse_context st =
  let left = ref (parse_context_atom st) in
  while P.stream_peek st = P.Langle do
    P.stream_advance st;
    let set = P.parse_action_set_at st in
    P.stream_expect st P.Rangle "'>'";
    let right = parse_context_atom st in
    left := Net.Ctx_coop (!left, set, right)
  done;
  !left

and parse_context_atom st =
  match P.stream_peek st with
  | P.Lparen ->
      P.stream_advance st;
      let ctx = parse_context st in
      P.stream_expect st P.Rparen "')'";
      ctx
  | P.Uident name -> (
      P.stream_advance st;
      match P.stream_peek st with
      | P.Lbracket ->
          P.stream_advance st;
          let initial_token =
            match P.stream_peek st with
            | P.Uident token ->
                P.stream_advance st;
                Some token
            | P.Lident "_" ->
                P.stream_advance st;
                None
            | _ -> P.stream_error st "expected a token name or '_' inside the cell"
          in
          P.stream_expect st P.Rbracket "']'";
          Net.Cell { cell_type = name; initial_token }
      | _ -> Net.Static name)
  | t ->
      P.stream_error st
        (Printf.sprintf "expected a place context but found %s" (P.token_to_string t))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_place_list st =
  let rec loop acc =
    match P.stream_peek st with
    | P.Uident name ->
        P.stream_advance st;
        if P.stream_peek st = P.Comma then begin
          P.stream_advance st;
          loop (name :: acc)
        end
        else List.rev (name :: acc)
    | t ->
        P.stream_error st
          (Printf.sprintf "expected a place name but found %s" (P.token_to_string t))
  in
  loop []

let parse_transition st name =
  P.stream_expect st P.Equals "'='";
  P.stream_expect st P.Lparen "'('";
  let firing_action =
    match P.stream_peek st with
    | P.Lident action ->
        P.stream_advance st;
        action
    | t ->
        P.stream_error st
          (Printf.sprintf "expected a firing action name but found %s" (P.token_to_string t))
  in
  P.stream_expect st P.Comma "','";
  let firing_rate = P.parse_rate_expr_at st in
  P.stream_expect st P.Rparen "')'";
  (match P.stream_peek st with
  | P.Lident "from" -> P.stream_advance st
  | t -> P.stream_error st (Printf.sprintf "expected 'from' but found %s" (P.token_to_string t)));
  let inputs = parse_place_list st in
  (match P.stream_peek st with
  | P.Lident "to" -> P.stream_advance st
  | t -> P.stream_error st (Printf.sprintf "expected 'to' but found %s" (P.token_to_string t)));
  let outputs = parse_place_list st in
  let priority =
    match P.stream_peek st with
    | P.Lident "priority" -> (
        P.stream_advance st;
        match P.stream_peek st with
        | P.Integer p when p >= 0 ->
            P.stream_advance st;
            p
        | _ -> P.stream_error st "expected a non-negative integer priority")
    | _ -> 1
  in
  P.stream_expect st P.Semicolon "';'";
  { Net.transition_name = name; firing_action; firing_rate; inputs; outputs; priority }

let parse_net st =
  let definitions = ref [] in
  let token_types = ref [] in
  let places = ref [] in
  let transitions = ref [] in
  let continue = ref true in
  while !continue do
    match (P.stream_peek st, P.stream_peek_at st 1) with
    | P.Eof, _ -> continue := false
    | P.Lident "token", P.Uident name ->
        P.stream_advance st;
        P.stream_advance st;
        P.stream_expect st P.Semicolon "';'";
        token_types := name :: !token_types
    | P.Lident "place", P.Uident name ->
        P.stream_advance st;
        P.stream_advance st;
        P.stream_expect st P.Equals "'='";
        let context = parse_context st in
        P.stream_expect st P.Semicolon "';'";
        places := { Net.place_name = name; context } :: !places
    | P.Lident "trans", (P.Uident name | P.Lident name) ->
        P.stream_advance st;
        P.stream_advance st;
        transitions := parse_transition st name :: !transitions
    | P.Uident name, _ ->
        P.stream_advance st;
        P.stream_expect st P.Equals "'='";
        let body = P.parse_expr_at st in
        P.stream_expect st P.Semicolon "';'";
        definitions := Pepa.Syntax.Proc_def (name, body) :: !definitions
    | P.Lident name, _ ->
        P.stream_advance st;
        P.stream_expect st P.Equals "'='";
        let body = P.parse_rate_expr_at st in
        P.stream_expect st P.Semicolon "';'";
        definitions := Pepa.Syntax.Rate_def (name, body) :: !definitions
    | t, _ ->
        P.stream_error st
          (Printf.sprintf "expected a definition or net declaration but found %s"
             (P.token_to_string t))
  done;
  {
    Net.definitions = List.rev !definitions;
    token_types = List.rev !token_types;
    places = List.rev !places;
    transitions = List.rev !transitions;
  }

let net_of_string src =
  try
    let st = P.stream_of_string src in
    let net = parse_net st in
    (match P.stream_peek st with
    | P.Eof -> ()
    | t -> P.stream_error st (Printf.sprintf "trailing input: %s" (P.token_to_string t)));
    net
  with P.Parse_error { line; col; message } -> raise (Parse_error { line; col; message })

let net_of_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  net_of_string src
