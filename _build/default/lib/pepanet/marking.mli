(** Markings: the global states of a PEPA net.

    A marking assigns each cell either [Empty] or a token (with its
    identity and its current derivative state within its family), and
    each static component a local state.  Markings are immutable values
    usable as hash-table keys. *)

type cell_state = Empty | Tok of { token : int; state : int }

type t = { cells : cell_state array; statics : int array }

val initial : Net_compile.t -> t
val equal : t -> t -> bool
val set_cell : t -> int -> cell_state -> t
val set_static : t -> int -> int -> t

val token_cell : t -> int -> int option
(** The cell currently holding the given token, if any (a token absent
    from every cell is mid-firing, which never occurs in reachable
    markings). *)

val token_place : Net_compile.t -> t -> int -> int option
(** The place currently holding the given token. *)

val tokens_at : Net_compile.t -> t -> int -> int list
(** Token ids present in the given place. *)

val vacant_cells : Net_compile.t -> t -> place:int -> family:int -> int list
(** Vacant cells of the given place accepting the given family. *)

val token_count : t -> int
(** Number of occupied cells (conserved by every move: tested
    invariant). *)

val pp : Net_compile.t -> Format.formatter -> t -> unit
val label : Net_compile.t -> t -> string
(** e.g. ["P1{IM:InstantMessage} P2{_} | FileReader"]. *)
