module String_set = Pepa.Syntax.String_set
module Rate = Pepa.Rate
module Action = Pepa.Action

type label =
  | Local of Action.t
  | Fire of { action : string; transition : string }

type update = Set_cell of int * Marking.cell_state | Set_static of int * int

type move = { label : label; rate : Rate.t; updates : update list }

let is_firing compiled action =
  match Action.name action with
  | Some n -> String_set.mem n compiled.Net_compile.firing_actions
  | None -> false

(* Activities of one leaf of a place context, excluding firing types for
   cells (those only participate in net-level firings). *)
let leaf_local_moves compiled (marking : Marking.t) leaf =
  match leaf with
  | Net_compile.Lcell { cell; family } -> (
      match marking.Marking.cells.(cell) with
      | Marking.Empty -> []
      | Marking.Tok { token; state } ->
          let component = compiled.Net_compile.families.(family).Net_compile.component in
          Array.to_list component.Pepa.Compile.local_moves.(state)
          |> List.filter_map (fun (action, rate, target) ->
                 if is_firing compiled action then None
                 else
                   Some
                     {
                       label = Local action;
                       rate;
                       updates = [ Set_cell (cell, Marking.Tok { token; state = target }) ];
                     }))
  | Net_compile.Lstatic { static; component } ->
      Array.to_list component.Pepa.Compile.local_moves.(marking.Marking.statics.(static))
      |> List.map (fun (action, rate, target) ->
             { label = Local action; rate; updates = [ Set_static (static, target) ] })

let rec structure_apparent compiled marking structure name =
  match structure with
  | Net_compile.Pleaf leaf ->
      List.fold_left
        (fun acc move ->
          match move.label with
          | Local (Action.Act n) when n = name -> Rate.sum acc move.rate
          | Local _ | Fire _ -> acc)
        Rate.zero
        (leaf_local_moves compiled marking leaf)
  | Net_compile.Pcoop (left, set, right) ->
      let ra_left = structure_apparent compiled marking left name in
      let ra_right = structure_apparent compiled marking right name in
      if String_set.mem name set then Rate.min_rate ra_left ra_right
      else Rate.sum ra_left ra_right

let rec structure_moves compiled marking structure =
  match structure with
  | Net_compile.Pleaf leaf -> leaf_local_moves compiled marking leaf
  | Net_compile.Pcoop (left, set, right) ->
      let left_moves = structure_moves compiled marking left in
      let right_moves = structure_moves compiled marking right in
      let shared = function
        | Local (Action.Act n) -> String_set.mem n set
        | Local Action.Tau | Fire _ -> false
      in
      let solo =
        List.filter (fun m -> not (shared m.label)) left_moves
        @ List.filter (fun m -> not (shared m.label)) right_moves
      in
      let synchronised =
        String_set.fold
          (fun name acc ->
            let matches m = m.label = Local (Action.Act name) in
            let lefts = List.filter matches left_moves in
            let rights = List.filter matches right_moves in
            if lefts = [] || rights = [] then acc
            else begin
              let apparent1 = structure_apparent compiled marking left name in
              let apparent2 = structure_apparent compiled marking right name in
              List.concat_map
                (fun ml ->
                  List.map
                    (fun mr ->
                      {
                        label = Local (Action.Act name);
                        rate = Rate.cooperation ml.rate ~apparent1 mr.rate ~apparent2;
                        updates = ml.updates @ mr.updates;
                      })
                    rights)
                lefts
              @ acc
            end)
          set []
      in
      solo @ synchronised

let local_moves compiled marking =
  Array.to_list compiled.Net_compile.places
  |> List.concat_map (fun place ->
         structure_moves compiled marking place.Net_compile.structure)

let apparent_local_rate compiled marking ~place name =
  structure_apparent compiled marking compiled.Net_compile.places.(place).Net_compile.structure
    name

(* ------------------------------------------------------------------ *)
(* Firings (Definitions 2-6)                                           *)
(* ------------------------------------------------------------------ *)

(* A candidate: an occupied cell of an input place whose token has an
   alpha-derivative, specialised to one such derivative move. *)
type candidate = { cand_cell : int; cand_token : int; cand_rate : Rate.t; cand_target : int }

let candidates_in compiled (marking : Marking.t) ~place ~action =
  Array.to_list compiled.Net_compile.places.(place).Net_compile.place_cells
  |> List.concat_map (fun cell ->
         match marking.Marking.cells.(cell) with
         | Marking.Empty -> []
         | Marking.Tok { token; state } ->
             let family = compiled.Net_compile.tokens.(token).Net_compile.token_family in
             let component = compiled.Net_compile.families.(family).Net_compile.component in
             Array.to_list component.Pepa.Compile.local_moves.(state)
             |> List.filter_map (fun (a, rate, target) ->
                    if Action.equal a (Action.Act action) then
                      Some { cand_cell = cell; cand_token = token; cand_rate = rate;
                             cand_target = target }
                    else None))

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun choice -> List.map (fun tail -> choice :: tail) tails) choices

(* All bijections pairing each moved token with a distinct output place
   (by index), returned as orderings of the output-place array. *)
let rec permutations = function
  | [] -> [ [] ]
  | items ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) items in
          List.map (fun perm -> x :: perm) (permutations rest))
        items

(* The phi mappings of Definition 4 for one enabling: assignments of each
   moved token to a vacant, family-compatible cell, with each output
   place receiving exactly one token. *)
let phi_mappings compiled marking ~outputs chosen =
  let k = List.length chosen in
  let indices = List.init k Fun.id in
  List.concat_map
    (fun perm ->
      (* perm.(i) gives the output-place slot of the i-th chosen token *)
      let per_token_cells =
        List.map2
          (fun cand slot ->
            let place = outputs.(slot) in
            let family = compiled.Net_compile.tokens.(cand.cand_token).Net_compile.token_family in
            let vacant = Marking.vacant_cells compiled marking ~place ~family in
            List.map (fun cell -> (cand, cell)) vacant)
          chosen perm
      in
      (* When a place occurs twice among the outputs, two tokens may be
         offered the same vacant cell; such assignments are not
         injective and are discarded. *)
      cartesian per_token_cells
      |> List.filter (fun assignment ->
             let cells = List.map snd assignment in
             List.length (List.sort_uniq compare cells) = List.length cells))
    (permutations indices)

let firing_moves_of compiled marking (transition : Net_compile.transition) =
  let action = transition.Net_compile.t_action in
  let inputs = Array.to_list transition.Net_compile.t_inputs in
  let per_place_candidates =
    List.map (fun place -> candidates_in compiled marking ~place ~action) inputs
  in
  if List.exists (fun cands -> cands = []) per_place_candidates then []
  else begin
    (* Apparent rate contributed by each input place: the sum over its
       candidate derivative moves. *)
    let place_apparents =
      List.map
        (fun cands ->
          List.fold_left (fun acc c -> Rate.sum acc c.cand_rate) Rate.zero cands)
        per_place_candidates
    in
    let label_rate = transition.Net_compile.t_rate in
    let bounded =
      List.fold_left Rate.min_rate label_rate place_apparents
    in
    (* When a place occurs twice among the inputs, an enabling must pick
       two distinct tokens from it: drop selections reusing a cell. *)
    let enablings =
      cartesian per_place_candidates
      |> List.filter (fun chosen ->
             let cells = List.map (fun c -> c.cand_cell) chosen in
             List.length (List.sort_uniq compare cells) = List.length cells)
    in
    List.concat_map
      (fun chosen ->
        let share =
          List.fold_left2
            (fun acc cand apparent -> acc *. Rate.share cand.cand_rate ~apparent)
            1.0 chosen place_apparents
        in
        let enabling_rate = Rate.scale share bounded in
        let phis =
          phi_mappings compiled marking ~outputs:transition.Net_compile.t_outputs chosen
        in
        match phis with
        | [] -> []
        | _ ->
            let per_phi = Rate.scale (1.0 /. float_of_int (List.length phis)) enabling_rate in
            List.map
              (fun phi ->
                let empties =
                  List.map (fun cand -> Set_cell (cand.cand_cell, Marking.Empty)) chosen
                in
                let fills =
                  List.map
                    (fun (cand, cell) ->
                      Set_cell
                        (cell, Marking.Tok { token = cand.cand_token; state = cand.cand_target }))
                    phi
                in
                {
                  label = Fire { action; transition = transition.Net_compile.t_name };
                  rate = per_phi;
                  updates = empties @ fills;
                })
              phis)
      enablings
  end

let firings_with_concession compiled marking =
  Array.to_list compiled.Net_compile.transitions
  |> List.filter_map (fun transition ->
         match firing_moves_of compiled marking transition with
         | [] -> None
         | moves -> Some (transition, moves))

let firings compiled marking =
  let with_concession = firings_with_concession compiled marking in
  match with_concession with
  | [] -> []
  | _ ->
      let top =
        List.fold_left
          (fun acc (t, _) -> max acc t.Net_compile.t_priority)
          min_int with_concession
      in
      List.concat_map
        (fun (t, moves) -> if t.Net_compile.t_priority = top then moves else [])
        with_concession

let moves compiled marking = local_moves compiled marking @ firings compiled marking

let apply marking updates =
  List.fold_left
    (fun m update ->
      match update with
      | Set_cell (cell, v) -> Marking.set_cell m cell v
      | Set_static (static, v) -> Marking.set_static m static v)
    marking updates
