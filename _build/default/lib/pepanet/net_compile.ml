module String_set = Pepa.Syntax.String_set

type family = {
  family_root : string;
  component : Pepa.Compile.component;
  constant_states : (string * int) list;
}

type leaf =
  | Lcell of { cell : int; family : int }
  | Lstatic of { static : int; component : Pepa.Compile.component }

type structure =
  | Pleaf of leaf
  | Pcoop of structure * String_set.t * structure

type place = {
  place_index : int;
  name : string;
  structure : structure;
  place_cells : int array;
}

type token = {
  token_id : int;
  token_name : string;
  token_family : int;
  initial_cell : int;
  initial_state : int;
}

type transition = {
  transition_index : int;
  t_name : string;
  t_action : string;
  t_rate : Pepa.Rate.t;
  t_inputs : int array;
  t_outputs : int array;
  t_priority : int;
}

type t = {
  net : Net.t;
  env : Pepa.Env.t;
  families : family array;
  places : place array;
  cell_place : int array;
  cell_family : int array;
  n_statics : int;
  static_components : Pepa.Compile.component array;
  tokens : token array;
  transitions : transition array;
  firing_actions : String_set.t;
  check_warnings : string list;
}

exception Net_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Net_error msg)) fmt

let check_distinct what names =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun name ->
      if Hashtbl.mem seen name then fail "duplicate %s %s" what name
      else Hashtbl.add seen name ())
    names

let component_action_names component =
  Array.fold_left
    (fun acc moves ->
      Array.fold_left
        (fun acc (action, _, _) ->
          match Pepa.Action.name action with
          | Some n -> String_set.add n acc
          | None -> acc)
        acc moves)
    String_set.empty component.Pepa.Compile.local_moves

let build_families env token_types =
  Array.of_list
    (List.map
       (fun root ->
         if not (Pepa.Env.is_sequential env root) then
           fail "token type %s must be a sequential component" root;
         let component =
           try Pepa.Compile.build_component env (Pepa.Compile.Lvar root)
           with Pepa.Compile.Compile_error msg -> fail "token type %s: %s" root msg
         in
         let constant_states =
           Array.to_list
             (Array.mapi
                (fun i state ->
                  match state with Pepa.Compile.Lvar name -> Some (name, i) | _ -> None)
                component.Pepa.Compile.states)
           |> List.filter_map Fun.id
         in
         { family_root = root; component; constant_states })
       token_types)

(* Resolve a constant name to (family index, state index): the name must
   denote a derivative state of exactly one declared family. *)
let resolve_family_state families name =
  let hits =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun f family ->
              match List.assoc_opt name family.constant_states with
              | Some s -> [ (f, s) ]
              | None -> [])
            families))
  in
  match hits with
  | [ hit ] -> hit
  | [] -> fail "%s is not a derivative of any declared token type" name
  | _ -> fail "%s belongs to more than one declared token family" name

let compile net =
  check_distinct "token type" net.Net.token_types;
  check_distinct "place" (Net.place_names net);
  check_distinct "net transition" (List.map (fun t -> t.Net.transition_name) net.Net.transitions);
  let env =
    try
      Pepa.Env.of_model { Pepa.Syntax.definitions = net.Net.definitions; system = Pepa.Syntax.Stop }
    with Pepa.Env.Semantic_error msg -> fail "%s" msg
  in
  let families = build_families env net.Net.token_types in
  let firing_actions = Net.firing_actions net in
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun msg -> warnings := msg :: !warnings) fmt in
  (* Firing actions must be performable by some token family. *)
  let family_alphabet =
    Array.fold_left
      (fun acc family -> String_set.union acc (component_action_names family.component))
      String_set.empty families
  in
  String_set.iter
    (fun action ->
      if not (String_set.mem action family_alphabet) then
        fail "firing action %s is not performed by any token type" action)
    firing_actions;
  (* Priorities must be a function of the action type. *)
  let priority_table = Hashtbl.create 8 in
  List.iter
    (fun tr ->
      match Hashtbl.find_opt priority_table tr.Net.firing_action with
      | None -> Hashtbl.add priority_table tr.Net.firing_action tr.Net.priority
      | Some p when p = tr.Net.priority -> ()
      | Some p ->
          fail "firing action %s is given priorities %d and %d by different transitions"
            tr.Net.firing_action p tr.Net.priority)
    net.Net.transitions;
  (* Compile places: assign global cell and static indices. *)
  let cell_place = ref [] and cell_family = ref [] in
  let n_cells = ref 0 and n_statics = ref 0 in
  let static_components = ref [] in
  let tokens = ref [] in
  let n_tokens = ref 0 in
  let token_name_counts = Hashtbl.create 8 in
  let places =
    Array.of_list
      (List.mapi
         (fun place_index { Net.place_name = name; context } ->
           let my_cells = ref [] in
           let rec build ctx =
             match ctx with
             | Net.Cell { cell_type; initial_token } ->
                 let family, _type_state = resolve_family_state families cell_type in
                 let cell = !n_cells in
                 incr n_cells;
                 cell_place := place_index :: !cell_place;
                 cell_family := family :: !cell_family;
                 my_cells := cell :: !my_cells;
                 (match initial_token with
                 | None -> ()
                 | Some token_constant ->
                     let tok_family, initial_state =
                       resolve_family_state families token_constant
                     in
                     if tok_family <> family then
                       fail "place %s: token %s does not belong to the %s cell's family" name
                         token_constant cell_type;
                     let base = token_constant in
                     let k =
                       1 + Option.value ~default:0 (Hashtbl.find_opt token_name_counts base)
                     in
                     Hashtbl.replace token_name_counts base k;
                     let token_name = if k = 1 then base else Printf.sprintf "%s#%d" base k in
                     let token_id = !n_tokens in
                     incr n_tokens;
                     tokens :=
                       { token_id; token_name; token_family = tok_family;
                         initial_cell = cell; initial_state }
                       :: !tokens);
                 Pleaf (Lcell { cell; family })
             | Net.Static constant ->
                 if not (Pepa.Env.is_sequential env constant) then
                   fail "place %s: static component %s must be sequential" name constant;
                 let component =
                   try Pepa.Compile.build_component env (Pepa.Compile.Lvar constant)
                   with Pepa.Compile.Compile_error msg ->
                     fail "place %s, static component %s: %s" name constant msg
                 in
                 let clash =
                   String_set.inter (component_action_names component) firing_actions
                 in
                 if not (String_set.is_empty clash) then
                   fail "place %s: static component %s performs firing action(s) %s" name
                     constant
                     (String.concat ", " (String_set.elements clash));
                 let static = !n_statics in
                 incr n_statics;
                 static_components := component :: !static_components;
                 Pleaf (Lstatic { static; component })
             | Net.Ctx_coop (a, set, b) ->
                 let clash = String_set.inter set firing_actions in
                 if not (String_set.is_empty clash) then
                   warn
                     "place %s: cooperation set mentions firing action(s) %s; firings are \
                      net-level and never synchronise inside a place"
                     name
                     (String.concat ", " (String_set.elements clash));
                 Pcoop (build a, set, build b)
           in
           let structure = build context in
           if !my_cells = [] then fail "place %s has no cell (every context needs at least one)" name;
           { place_index; name; structure; place_cells = Array.of_list (List.rev !my_cells) })
         net.Net.places)
  in
  let place_index_of name =
    match Array.to_list places |> List.find_opt (fun p -> p.name = name) with
    | Some p -> p.place_index
    | None -> fail "unknown place %s" name
  in
  let transitions =
    Array.of_list
      (List.mapi
         (fun transition_index tr ->
           if List.length tr.Net.inputs <> List.length tr.Net.outputs then
             fail "net transition %s is unbalanced: %d input place(s) but %d output place(s)"
               tr.Net.transition_name (List.length tr.Net.inputs)
               (List.length tr.Net.outputs);
           if tr.Net.inputs = [] then
             fail "net transition %s has no input place" tr.Net.transition_name;
           let t_rate =
             try Pepa.Env.eval_rate env tr.Net.firing_rate
             with Pepa.Env.Semantic_error msg ->
               fail "net transition %s: %s" tr.Net.transition_name msg
           in
           {
             transition_index;
             t_name = tr.Net.transition_name;
             t_action = tr.Net.firing_action;
             t_rate;
             t_inputs = Array.of_list (List.map place_index_of tr.Net.inputs);
             t_outputs = Array.of_list (List.map place_index_of tr.Net.outputs);
             t_priority = tr.Net.priority;
           })
         net.Net.transitions)
  in
  {
    net;
    env;
    families;
    places;
    cell_place = Array.of_list (List.rev !cell_place);
    cell_family = Array.of_list (List.rev !cell_family);
    n_statics = !n_statics;
    static_components = Array.of_list (List.rev !static_components);
    tokens = Array.of_list (List.rev !tokens);
    transitions;
    firing_actions;
    check_warnings = List.rev !warnings;
  }

let of_string src = compile (Net_parser.net_of_string src)
let of_file path = compile (Net_parser.net_of_file path)

let n_cells t = Array.length t.cell_place
let n_tokens t = Array.length t.tokens
let family_of_token t id = t.families.(t.tokens.(id).token_family)
let token_name t id = t.tokens.(id).token_name
let place_name t i = t.places.(i).name

let place_index t name =
  match Array.to_list t.places |> List.find_opt (fun p -> p.name = name) with
  | Some p -> p.place_index
  | None -> fail "unknown place %s" name

let warnings t = t.check_warnings
