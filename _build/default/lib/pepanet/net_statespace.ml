type transition = { src : int; label : Net_semantics.label; rate : float; dst : int }

type t = {
  compiled : Net_compile.t;
  markings : Marking.t array;
  transition_list : transition list;
  outgoing : transition list array;
  mutable chain : Markov.Ctmc.t option;
}

exception Too_many_markings of int
exception Passive_firing of { marking : string; label : string }

let label_string = function
  | Net_semantics.Local action -> Pepa.Action.to_string action
  | Net_semantics.Fire { action; transition } -> Printf.sprintf "%s!%s" action transition

let build ?(max_markings = 1_000_000) compiled =
  let index = Hashtbl.create 1024 in
  let markings = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern marking =
    match Hashtbl.find_opt index marking with
    | Some i -> i
    | None ->
        if !count >= max_markings then raise (Too_many_markings max_markings);
        let i = !count in
        Hashtbl.add index marking i;
        markings := marking :: !markings;
        incr count;
        Queue.add (i, marking) queue;
        i
  in
  ignore (intern (Marking.initial compiled));
  let transitions = ref [] in
  while not (Queue.is_empty queue) do
    let src, marking = Queue.pop queue in
    List.iter
      (fun move ->
        let rate =
          match move.Net_semantics.rate with
          | Pepa.Rate.Active r -> r
          | Pepa.Rate.Passive _ ->
              raise
                (Passive_firing
                   {
                     marking = Marking.label compiled marking;
                     label = label_string move.Net_semantics.label;
                   })
        in
        let dst = intern (Net_semantics.apply marking move.Net_semantics.updates) in
        transitions := { src; label = move.Net_semantics.label; rate; dst } :: !transitions)
      (Net_semantics.moves compiled marking)
  done;
  let markings = Array.of_list (List.rev !markings) in
  let transition_list = List.rev !transitions in
  let outgoing = Array.make (Array.length markings) [] in
  List.iter (fun t -> outgoing.(t.src) <- t :: outgoing.(t.src)) transition_list;
  Array.iteri (fun i ts -> outgoing.(i) <- List.rev ts) outgoing;
  { compiled; markings; transition_list; outgoing; chain = None }

let of_string ?max_markings src = build ?max_markings (Net_compile.of_string src)
let of_file ?max_markings path = build ?max_markings (Net_compile.of_file path)

let compiled t = t.compiled
let n_markings t = Array.length t.markings
let n_transitions t = List.length t.transition_list
let marking t i = t.markings.(i)
let marking_label t i = Marking.label t.compiled t.markings.(i)
let initial_index _ = 0
let transitions t = t.transition_list
let transitions_from t i = t.outgoing.(i)

let deadlocks t =
  let result = ref [] in
  Array.iteri (fun i out -> if out = [] then result := i :: !result) t.outgoing;
  List.rev !result

let ctmc t =
  match t.chain with
  | Some c -> c
  | None ->
      let triples = List.map (fun tr -> (tr.src, tr.dst, tr.rate)) t.transition_list in
      let c = Markov.Ctmc.of_transitions ~n:(n_markings t) triples in
      t.chain <- Some c;
      c

let steady_state ?method_ ?options t = Markov.Steady.solve ?method_ ?options (ctmc t)

let transient t ~time =
  let n = n_markings t in
  let initial = Array.make n 0.0 in
  initial.(0) <- 1.0;
  Markov.Transient.probabilities (ctmc t) ~initial ~t:time

let action_names t =
  List.sort_uniq String.compare
    (List.filter_map
       (fun tr ->
         match tr.label with
         | Net_semantics.Local action -> Pepa.Action.name action
         | Net_semantics.Fire { action; _ } -> Some action)
       t.transition_list)

let pp_summary fmt t =
  Format.fprintf fmt "%d markings, %d transitions, %d deadlock marking(s)" (n_markings t)
    (n_transitions t)
    (List.length (deadlocks t))
