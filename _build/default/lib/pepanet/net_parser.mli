(** Parser for the concrete PEPA nets syntax.

    A net file starts with ordinary PEPA definitions (rates and
    sequential components) and continues with net-level declarations:
    {v
      token  Uident ;                          token-family declaration
      place  Uident = context ;                one per place
      trans  Uident = "(" lident "," rate ")"
             from Uident,* to Uident,*
             [ priority int ] ;                one per net transition
      context ::= context "<" lident,* ">" context
                | Uident "[" (Uident | "_") "]"     a cell
                | Uident                             a static component
                | "(" context ")"
    v}
    The three declaration keywords ([token], [place], [trans], plus
    [from], [to], [priority]) are soft keywords: they remain usable as
    action or rate names inside PEPA expressions. *)

exception Parse_error of { line : int; col : int; message : string }
(** Re-raised from the PEPA lexer/parser with positions in the net
    file. *)

val net_of_string : string -> Net.t
val net_of_file : string -> Net.t
