module String_set = Pepa.Syntax.String_set

type cell = { cell_type : string; initial_token : string option }

type context =
  | Cell of cell
  | Static of string
  | Ctx_coop of context * String_set.t * context

type transition = {
  transition_name : string;
  firing_action : string;
  firing_rate : Pepa.Syntax.rate_expr;
  inputs : string list;
  outputs : string list;
  priority : int;
}

type place = { place_name : string; context : context }

type t = {
  definitions : Pepa.Syntax.definition list;
  token_types : string list;
  places : place list;
  transitions : transition list;
}

let rec cells_of_context = function
  | Cell c -> [ c ]
  | Static _ -> []
  | Ctx_coop (a, _, b) -> cells_of_context a @ cells_of_context b

let rec statics_of_context = function
  | Cell _ -> []
  | Static name -> [ name ]
  | Ctx_coop (a, _, b) -> statics_of_context a @ statics_of_context b

let place_names net = List.map (fun p -> p.place_name) net.places

let find_place net name = List.find_opt (fun p -> p.place_name = name) net.places

let firing_actions net =
  List.fold_left
    (fun acc t -> String_set.add t.firing_action acc)
    String_set.empty net.transitions

let priority_of_action net action =
  match List.find_opt (fun t -> t.firing_action = action) net.transitions with
  | Some t -> t.priority
  | None -> 1
