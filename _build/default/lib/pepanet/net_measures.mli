(** Performance measures over a solved PEPA net: the quantities
    Choreographer reflects back into UML models. *)

val throughput : Net_statespace.t -> float array -> string -> float
(** Steady-state throughput of a named action type, counting both local
    occurrences and net-level firings of that type. *)

val throughputs : Net_statespace.t -> float array -> (string * float) list
(** Throughput of every reachable action type, sorted by name. *)

val firing_throughput : Net_statespace.t -> float array -> string -> float
(** Throughput of one named net transition. *)

val token_location_probabilities :
  Net_statespace.t -> float array -> token:int -> (string * float) list
(** Distribution of a token over the places of the net:
    [(place name, probability)] for every place. *)

val expected_tokens_at : Net_statespace.t -> float array -> place:string -> float
(** Expected number of tokens present at the named place. *)

val marking_probabilities : Net_statespace.t -> float array -> (string * float) list
(** Per-marking steady-state probabilities with printable labels, in
    decreasing order of probability. *)

val token_state_probability :
  Net_statespace.t -> float array -> token:int -> state_label:string -> float
(** Probability that the given token currently sits in a derivative
    state carrying the given label (anywhere in the net). *)
