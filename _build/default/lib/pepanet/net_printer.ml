module String_set = Pepa.Syntax.String_set

let pp_action_set fmt set =
  Format.pp_print_string fmt (String.concat ", " (String_set.elements set))

let rec pp_context_prec prec fmt ctx =
  match ctx with
  | Net.Cell { cell_type; initial_token } ->
      Format.fprintf fmt "%s[%s]" cell_type (Option.value ~default:"_" initial_token)
  | Net.Static name -> Format.pp_print_string fmt name
  | Net.Ctx_coop (a, set, b) ->
      let body fmt =
        Format.fprintf fmt "%a <%a> %a" (pp_context_prec 1) a pp_action_set set
          (pp_context_prec 2) b
      in
      if prec > 1 then Format.fprintf fmt "(%t)" body else body fmt

let pp_context fmt ctx = pp_context_prec 0 fmt ctx

let pp_transition fmt t =
  Format.fprintf fmt "trans %s = (%s, %a) from %s to %s" t.Net.transition_name
    t.Net.firing_action Pepa.Printer.pp_rate_expr t.Net.firing_rate
    (String.concat ", " t.Net.inputs)
    (String.concat ", " t.Net.outputs);
  if t.Net.priority <> 1 then Format.fprintf fmt " priority %d" t.Net.priority;
  Format.pp_print_string fmt ";"

let pp_net fmt net =
  List.iter
    (fun def -> Format.fprintf fmt "%a@." Pepa.Printer.pp_definition def)
    net.Net.definitions;
  List.iter (fun name -> Format.fprintf fmt "token %s;@." name) net.Net.token_types;
  List.iter
    (fun p -> Format.fprintf fmt "place %s = %a;@." p.Net.place_name pp_context p.Net.context)
    net.Net.places;
  List.iter (fun t -> Format.fprintf fmt "%a@." pp_transition t) net.Net.transitions

let net_to_string net = Format.asprintf "%a" pp_net net
