(** Compilation of a PEPA net to its runtime representation, performing
    all static checks of Definition 1 along the way.

    Token families are compiled once to local labelled transition
    systems (including their firing-typed activities); place contexts
    become cooperation trees over {e cells} and {e static components};
    cells receive global indices so a marking is a flat assignment. *)

type family = {
  family_root : string;
  component : Pepa.Compile.component;
  constant_states : (string * int) list;
      (** derivative states that are named constants, e.g. the [File]
          derivative of the [InstantMessage] family *)
}

type leaf =
  | Lcell of { cell : int; family : int }
  | Lstatic of { static : int; component : Pepa.Compile.component }

type structure =
  | Pleaf of leaf
  | Pcoop of structure * Pepa.Syntax.String_set.t * structure

type place = {
  place_index : int;
  name : string;
  structure : structure;
  place_cells : int array;  (** global cell indices located here *)
}

type token = {
  token_id : int;
  token_name : string;
  token_family : int;
  initial_cell : int;
  initial_state : int;
}

type transition = {
  transition_index : int;
  t_name : string;
  t_action : string;
  t_rate : Pepa.Rate.t;
  t_inputs : int array;   (** place indices *)
  t_outputs : int array;
  t_priority : int;
}

type t = private {
  net : Net.t;
  env : Pepa.Env.t;
  families : family array;
  places : place array;
  cell_place : int array;     (** owning place per global cell *)
  cell_family : int array;    (** accepted family per global cell *)
  n_statics : int;
  static_components : Pepa.Compile.component array;
      (** indexed by global static index *)
  tokens : token array;
  transitions : transition array;
  firing_actions : Pepa.Syntax.String_set.t;
  check_warnings : string list;
}

exception Net_error of string

val compile : Net.t -> t
val of_string : string -> t
val of_file : string -> t

val n_cells : t -> int
val n_tokens : t -> int
val family_of_token : t -> int -> family
val token_name : t -> int -> string
val place_name : t -> int -> string
val place_index : t -> string -> int
(** Raises {!Net_error} for unknown places. *)

val warnings : t -> string list
