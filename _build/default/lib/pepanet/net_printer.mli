(** Pretty-printing of PEPA nets in the concrete syntax accepted by
    {!Net_parser} (round-trip tested). *)

val pp_context : Format.formatter -> Net.context -> unit
val pp_transition : Format.formatter -> Net.transition -> unit
val pp_net : Format.formatter -> Net.t -> unit
val net_to_string : Net.t -> string
