lib/pepanet/net_measures.mli: Net_statespace
