lib/pepanet/net_compile.ml: Array Format Fun Hashtbl List Net Net_parser Option Pepa Printf String
