lib/pepanet/net_statespace.ml: Array Format Hashtbl List Marking Markov Net_compile Net_semantics Pepa Printf Queue String
