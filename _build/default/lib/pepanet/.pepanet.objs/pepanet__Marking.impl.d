lib/pepanet/marking.ml: Array Format List Net_compile Option Pepa Printf String
