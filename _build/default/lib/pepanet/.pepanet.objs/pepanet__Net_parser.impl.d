lib/pepanet/net_parser.ml: Fun List Net Pepa Printf
