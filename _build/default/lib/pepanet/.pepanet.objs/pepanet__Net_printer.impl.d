lib/pepanet/net_printer.ml: Format List Net Option Pepa String
