lib/pepanet/net_statespace.mli: Format Marking Markov Net_compile Net_semantics
