lib/pepanet/net.ml: List Pepa
