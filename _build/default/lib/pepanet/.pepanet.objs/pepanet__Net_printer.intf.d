lib/pepanet/net_printer.mli: Format Net
