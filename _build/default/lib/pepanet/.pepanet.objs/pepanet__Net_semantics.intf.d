lib/pepanet/net_semantics.mli: Marking Net_compile Pepa
