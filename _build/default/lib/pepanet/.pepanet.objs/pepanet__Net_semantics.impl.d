lib/pepanet/net_semantics.ml: Array Fun List Marking Net_compile Pepa
