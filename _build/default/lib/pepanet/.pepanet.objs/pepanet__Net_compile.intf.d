lib/pepanet/net_compile.mli: Net Pepa
