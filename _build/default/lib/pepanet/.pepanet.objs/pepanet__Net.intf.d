lib/pepanet/net.mli: Pepa
