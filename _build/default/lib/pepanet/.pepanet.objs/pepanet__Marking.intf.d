lib/pepanet/marking.mli: Format Net_compile
