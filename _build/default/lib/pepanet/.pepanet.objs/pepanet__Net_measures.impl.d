lib/pepanet/net_measures.ml: Array Float List Marking Net_compile Net_semantics Net_statespace Pepa
