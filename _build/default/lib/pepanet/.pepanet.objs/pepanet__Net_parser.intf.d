lib/pepanet/net_parser.mli: Net
