type cell_state = Empty | Tok of { token : int; state : int }

type t = { cells : cell_state array; statics : int array }

let initial compiled =
  let cells = Array.make (Net_compile.n_cells compiled) Empty in
  Array.iter
    (fun tok ->
      cells.(tok.Net_compile.initial_cell) <-
        Tok { token = tok.Net_compile.token_id; state = tok.Net_compile.initial_state })
    compiled.Net_compile.tokens;
  (* Static components start in their defining state (index 0). *)
  { cells; statics = Array.make compiled.Net_compile.n_statics 0 }

let equal a b = a.cells = b.cells && a.statics = b.statics

let set_cell m i v =
  let cells = Array.copy m.cells in
  cells.(i) <- v;
  { m with cells }

let set_static m i v =
  let statics = Array.copy m.statics in
  statics.(i) <- v;
  { m with statics }

let token_cell m token =
  let found = ref None in
  Array.iteri
    (fun i cell ->
      match cell with
      | Tok { token = t; _ } when t = token -> found := Some i
      | Tok _ | Empty -> ())
    m.cells;
  !found

let token_place compiled m token =
  Option.map (fun cell -> compiled.Net_compile.cell_place.(cell)) (token_cell m token)

let tokens_at compiled m place =
  Array.to_list compiled.Net_compile.places.(place).Net_compile.place_cells
  |> List.filter_map (fun cell ->
         match m.cells.(cell) with Tok { token; _ } -> Some token | Empty -> None)

let vacant_cells compiled m ~place ~family =
  Array.to_list compiled.Net_compile.places.(place).Net_compile.place_cells
  |> List.filter (fun cell ->
         m.cells.(cell) = Empty && compiled.Net_compile.cell_family.(cell) = family)

let token_count m =
  Array.fold_left
    (fun acc cell -> match cell with Tok _ -> acc + 1 | Empty -> acc)
    0 m.cells

let pp compiled fmt m =
  let open Net_compile in
  Array.iteri
    (fun p place ->
      if p > 0 then Format.pp_print_string fmt " ";
      let contents =
        Array.to_list place.place_cells
        |> List.map (fun cell ->
               match m.cells.(cell) with
               | Empty -> "_"
               | Tok { token; state } ->
                   let family = family_of_token compiled token in
                   Printf.sprintf "%s:%s" (token_name compiled token)
                     family.component.Pepa.Compile.labels.(state))
      in
      Format.fprintf fmt "%s{%s}" place.name (String.concat ", " contents))
    compiled.places;
  if Array.length m.statics > 0 then begin
    Format.pp_print_string fmt " |";
    Array.iteri
      (fun i s ->
        Format.fprintf fmt " %s"
          compiled.Net_compile.static_components.(i).Pepa.Compile.labels.(s))
      m.statics
  end

let label compiled m = Format.asprintf "%a" (pp compiled) m
