(** Abstract syntax of PEPA nets (Definition 1 of the paper).

    A PEPA net is a set of PEPA definitions together with

    - declared {e token types}: names of sequential components whose
      derivative families provide the tokens of the net;
    - {e places}, each holding a PEPA context: a cooperation of cells
      (typed storage for one token) and immobile static components;
    - {e net transitions}, each labelled with a firing action type, a
      rate and a priority, connecting input places to output places.

    The net must be balanced: every transition has as many input places
    as output places, and tokens pass through transitions (one token
    leaves each input place, one token enters each output place). *)

type cell = {
  cell_type : string;
      (** a constant of some declared token family; the cell accepts any
          token of that family *)
  initial_token : string option;
      (** [Some c]: the cell initially holds a token in derivative state
          [c]; [None]: initially vacant *)
}

type context =
  | Cell of cell
  | Static of string  (** a sequential process constant *)
  | Ctx_coop of context * Pepa.Syntax.String_set.t * context

type transition = {
  transition_name : string;
  firing_action : string;
  firing_rate : Pepa.Syntax.rate_expr;
  inputs : string list;
  outputs : string list;
  priority : int;  (** higher fires preferentially; default 1 *)
}

type place = { place_name : string; context : context }

type t = {
  definitions : Pepa.Syntax.definition list;
  token_types : string list;
  places : place list;
  transitions : transition list;
}

val cells_of_context : context -> cell list
val statics_of_context : context -> string list
val place_names : t -> string list
val find_place : t -> string -> place option
val firing_actions : t -> Pepa.Syntax.String_set.t
val priority_of_action : t -> string -> int
(** The priority associated with a firing action type (Definition 1's
    priority function); transitions sharing an action type must agree on
    the priority (checked at compile time). *)
