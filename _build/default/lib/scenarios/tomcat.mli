(** The paper's Section 5 client/server study (Figures 8 and 9): a
    client generating HTTP requests against a Tomcat server that serves
    JSP pages through the locate–translate–compile–execute lifecycle,
    with and without the server's servlet-cache optimisation.

    The paper estimated rates by timing JSP pages on a real Tomcat
    server; here the rates are plausible stand-ins with the same shape
    (translation and compilation are an order of magnitude slower than
    servlet execution), and the benchmark sweeps them to show the
    conclusion is insensitive to the exact values. *)

val client : unit -> Uml.Statechart.t
(** Figure 8: GenerateRequest -> WaitForResponse -> ProcessResponse. *)

val server_jsp : ?translate:float -> ?compile:float -> unit -> Uml.Statechart.t
(** Figure 9: every request walks the full
    locatejsp/translate/compile/execute pipeline. *)

val server_cached : ?translate:float -> ?compile:float -> unit -> Uml.Statechart.t
(** The optimised server: the first request is compiled and the servlet
    stays resident, so subsequent requests go straight to the pre-loaded
    servlet (direct servlet lookup). *)

type study = {
  analysis : Choreographer.Workbench.pepa_analysis;
  extraction : Extract.Sc_to_pepa.extraction;
  request_throughput : float;
  waiting_probability : float;  (** client in WaitForResponse *)
  waiting_delay : float;
      (** mean response delay seen by the client, by Little's law:
          P(waiting) / throughput(request) *)
}

val study : server:Uml.Statechart.t -> study
(** Compose the client with a server variant, solve, and compute the
    waiting-delay measure the paper reports. *)
