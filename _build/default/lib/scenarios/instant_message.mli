(** The paper's Figure 2 / Section 2.2 instant-message example: the file
    is written at one location, transmitted ([<<move>>]) to another and
    read there — the smallest genuinely mobile model. *)

val diagram : unit -> Uml.Activity.t
(** Figure 2: openwrite -> write -> close -> transmit <<move>> ->
    openread -> read -> close, with the message object at location [p1]
    before the move and [p2] after. *)

val rates : Uml.Rates_file.t

val pepanet_source : string
(** The hand-written PEPA net of Section 2.2: an [InstantMessage] token
    moved by a [transmit] firing into a place where a static
    [FileReader] processes it, extended with a return transition so that
    the system is recurrent. *)

val extraction : unit -> Extract.Ad_to_pepanet.extraction
