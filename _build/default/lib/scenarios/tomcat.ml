let client () =
  Uml.Statechart.make ~name:"Client"
    ~states:[ "GenerateRequest"; "WaitForResponse"; "ProcessResponse" ]
    ~transitions:
      [
        ("GenerateRequest", "WaitForResponse", "request", Some 1.0);
        ("WaitForResponse", "ProcessResponse", "response", None);
        ("ProcessResponse", "GenerateRequest", "offlineprocessing", Some 2.0);
      ]
    ()

let server_jsp ?(translate = 2.0) ?(compile = 1.5) () =
  Uml.Statechart.make ~name:"Server"
    ~states:
      [
        "ServerIdle";
        "ProcessRequest";
        "AccessJSPFile";
        "GeneratedJavaCode";
        "CompiledJavaCode";
        "SendHTTPResponse";
      ]
    ~transitions:
      [
        ("ServerIdle", "ProcessRequest", "request", None);
        ("ProcessRequest", "AccessJSPFile", "locatejsp", Some 50.0);
        ("AccessJSPFile", "GeneratedJavaCode", "translate", Some translate);
        ("GeneratedJavaCode", "CompiledJavaCode", "compile", Some compile);
        ("CompiledJavaCode", "SendHTTPResponse", "execute", Some 100.0);
        ("SendHTTPResponse", "ServerIdle", "response", Some 50.0);
      ]
    ()

let server_cached ?(translate = 2.0) ?(compile = 1.5) () =
  Uml.Statechart.make ~name:"Server"
    ~states:
      [
        "ColdIdle";
        "ProcessRequest";
        "AccessJSPFile";
        "GeneratedJavaCode";
        "CompiledJavaCode";
        "SendFirstResponse";
        "ServletResident";
        "ServletLookup";
        "ServletReady";
        "SendHTTPResponse";
      ]
    ~transitions:
      [
        (* The first request pays the full translate-compile cycle... *)
        ("ColdIdle", "ProcessRequest", "request", None);
        ("ProcessRequest", "AccessJSPFile", "locatejsp", Some 50.0);
        ("AccessJSPFile", "GeneratedJavaCode", "translate", Some translate);
        ("GeneratedJavaCode", "CompiledJavaCode", "compile", Some compile);
        ("CompiledJavaCode", "SendFirstResponse", "execute", Some 100.0);
        ("SendFirstResponse", "ServletResident", "response", Some 50.0);
        (* ...after which the servlet remains resident in the Web
           container and requests bypass translation and compilation. *)
        ("ServletResident", "ServletLookup", "request", None);
        ("ServletLookup", "ServletReady", "locateservlet", Some 200.0);
        ("ServletReady", "SendHTTPResponse", "execute", Some 100.0);
        ("SendHTTPResponse", "ServletResident", "response", Some 50.0);
      ]
    ()

type study = {
  analysis : Choreographer.Workbench.pepa_analysis;
  extraction : Extract.Sc_to_pepa.extraction;
  request_throughput : float;
  waiting_probability : float;
  waiting_delay : float;
}

let study ~server =
  let charts = [ client (); server ] in
  let extraction = Extract.Sc_to_pepa.extract charts in
  let analysis =
    Choreographer.Workbench.analyse_pepa ~name:"Client+Server"
      extraction.Extract.Sc_to_pepa.model
  in
  let request_throughput =
    Option.value ~default:0.0
      (Choreographer.Results.throughput analysis.Choreographer.Workbench.results "request")
  in
  let client_leaf = List.assoc "Client" extraction.Extract.Sc_to_pepa.chart_leaf in
  let waiting_probability =
    Option.value ~default:0.0
      (List.assoc_opt "Client_WaitForResponse"
         (Choreographer.Workbench.local_probabilities analysis ~leaf:client_leaf))
  in
  let waiting_delay =
    if request_throughput = 0.0 then infinity else waiting_probability /. request_throughput
  in
  { analysis; extraction; request_throughput; waiting_probability; waiting_delay }
