lib/scenarios/pda.ml: Buffer Extract Printf Uml
