lib/scenarios/roaming.mli: Pepanet
