lib/scenarios/instant_message.ml: Extract Uml
