lib/scenarios/file_protocol.ml: Extract Hashtbl Uml
