lib/scenarios/tomcat.mli: Choreographer Extract Uml
