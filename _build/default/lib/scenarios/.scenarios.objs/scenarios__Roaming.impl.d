lib/scenarios/roaming.ml: Fun List Markov Pepanet
