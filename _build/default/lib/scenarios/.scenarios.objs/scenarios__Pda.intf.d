lib/scenarios/pda.mli: Extract Uml Xml_kit
