lib/scenarios/code_mobility.ml: Pepanet Printf
