lib/scenarios/file_protocol.mli: Extract Uml
