lib/scenarios/tomcat.ml: Choreographer Extract List Option Uml
