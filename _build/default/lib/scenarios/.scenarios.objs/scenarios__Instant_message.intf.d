lib/scenarios/instant_message.mli: Extract Uml
