lib/scenarios/code_mobility.mli: Pepanet
