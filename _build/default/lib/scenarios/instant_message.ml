module B = Uml.Activity.Build

let rates =
  Uml.Rates_file.of_string
    {|
      openwrite = 2.0
      write = 5.0
      close = 4.0
      transmit = 1.5
      openread = 2.0
      read = 10.0
      return_f = 8.0
      default = 1.0
    |}

let diagram () =
  let b = B.create "InstantMessage" in
  let i = B.initial b in
  let openwrite = B.action b "openwrite" in
  let write = B.action b "write" in
  let close_w = B.action b "close" in
  let transmit = B.action ~move:true b "transmit" in
  let openread = B.action b "openread" in
  let read = B.action b "read" in
  let close_r = B.action b "close" in
  let fin = B.final b in
  B.edge b i openwrite;
  B.edge b openwrite write;
  B.edge b write close_w;
  B.edge b close_w transmit;
  B.edge b transmit openread;
  B.edge b openread read;
  B.edge b read close_r;
  B.edge b close_r fin;
  let occ state loc = B.occurrence ~state ~loc b ~obj:"f" ~cls:"FILE" in
  let o1 = occ "new" "p1" in
  let o2 = occ "*" "p1" in
  let o3 = occ "**" "p1" in
  let o4 = occ "***" "p1" in
  let o5 = occ "'" "p2" in
  let o6 = occ "''" "p2" in
  let o7 = occ "'''" "p2" in
  let o8 = occ "''''" "p2" in
  B.flow_into b ~occ:o1 ~activity:openwrite;
  B.flow_out_of b ~activity:openwrite ~occ:o2;
  B.flow_into b ~occ:o2 ~activity:write;
  B.flow_out_of b ~activity:write ~occ:o3;
  B.flow_into b ~occ:o3 ~activity:close_w;
  B.flow_out_of b ~activity:close_w ~occ:o4;
  B.flow_into b ~occ:o4 ~activity:transmit;
  B.flow_out_of b ~activity:transmit ~occ:o5;
  B.flow_into b ~occ:o5 ~activity:openread;
  B.flow_out_of b ~activity:openread ~occ:o6;
  B.flow_into b ~occ:o6 ~activity:read;
  B.flow_out_of b ~activity:read ~occ:o7;
  B.flow_into b ~occ:o7 ~activity:close_r;
  B.flow_out_of b ~activity:close_r ~occ:o8;
  B.finish b

let pepanet_source =
  {|
    rt = 1.5;
    ro = 2.0;
    rw = 5.0;
    rr = 10.0;
    rc = 4.0;
    rback = 8.0;
    InstantMessage = (openwrite, ro).MsgOut;
    MsgOut = (write, rw).MsgWritten;
    MsgWritten = (close, rc).MsgReady;
    MsgReady = (transmit, rt).File;
    File = (openread, ro).InStream;
    InStream = (read, rr).InStream + (close, rc).MsgDone;
    MsgDone = (sendback, rback).InstantMessage;
    FileReader = (openread, infty).(read, infty).(close, infty).FileReader;

    token InstantMessage;

    place P1 = InstantMessage[InstantMessage];
    place P2 = InstantMessage[_] <openread, read, close> FileReader;

    trans t_transmit = (transmit, rt) from P1 to P2;
    trans t_sendback = (sendback, rback) from P2 to P1;
  |}

let extraction () = Extract.Ad_to_pepanet.extract ~rates (diagram ())
