(** The design question the paper's introduction motivates: when should
    computation move to the data rather than data to the computation?
    ("Mobile code applications ... may be expected to work with low
    bandwidth, intermittently unavailable network connections.")

    Two designs for the same job are compared as PEPA nets:

    - {b client-server}: the agent stays home and fetches the data over
      the network (a large transfer), then computes locally;
    - {b mobile agent}: the agent token moves to the data's host (a
      small code transfer), computes there on a somewhat slower
      machine, and ships the small result back.

    Both transfers scale with the available bandwidth, so sweeping the
    bandwidth exposes the crossover the design decision hinges on. *)

type parameters = {
  bandwidth : float;     (** network capacity, in data units per second *)
  data_size : float;     (** units moved by the client-server fetch *)
  code_size : float;     (** units moved when the agent travels *)
  result_size : float;   (** units moved when results return *)
  local_compute : float; (** jobs per second on the home machine *)
  remote_compute : float;(** jobs per second on the data host *)
}

val default_parameters : parameters
(** data 10, code 1, result 0.5, local compute 2, remote compute 1.5. *)

val client_server_net : parameters -> Pepanet.Net.t
(** A single-place net: request, transfer of the full data set, local
    computation. *)

val mobile_agent_net : parameters -> Pepanet.Net.t
(** A two-place net: the agent token moves to the data host (a firing
    whose rate is the code transfer), computes there, and returns with
    the result (a firing at the result-transfer rate). *)

type comparison = {
  params : parameters;
  client_server_jobs : float;  (** jobs completed per second *)
  mobile_agent_jobs : float;
}

val compare_at : ?params:parameters -> bandwidth:float -> unit -> comparison

val crossover_bandwidth : ?params:parameters -> lo:float -> hi:float -> unit -> float
(** The bandwidth at which the two designs break even, by bisection
    (raises [Invalid_argument] unless the designs order differently at
    the bracket ends). *)

val closed_form_jobs : parameters -> [ `Client_server | `Mobile_agent ] -> float
(** The cycle-time closed forms used to validate the nets in tests. *)
