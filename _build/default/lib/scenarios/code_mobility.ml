type parameters = {
  bandwidth : float;
  data_size : float;
  code_size : float;
  result_size : float;
  local_compute : float;
  remote_compute : float;
}

let default_parameters =
  {
    bandwidth = 10.0;
    data_size = 10.0;
    code_size = 1.0;
    result_size = 0.5;
    local_compute = 2.0;
    remote_compute = 1.5;
  }

(* Transfer of [size] units over [bandwidth] units/s is an exponential
   stage at rate bandwidth/size. *)
let transfer_rate p size = p.bandwidth /. size

let request_rate = 20.0

let client_server_net p =
  Pepanet.Net_parser.net_of_string
    (Printf.sprintf
       {|
         Agent = (request, %f).Fetching;
         Fetching = (transfer_data, %f).Computing;
         Computing = (compute, %f).Agent;
         token Agent;
         place Home = Agent[Agent];
       |}
       request_rate (transfer_rate p p.data_size) p.local_compute)

let mobile_agent_net p =
  Pepanet.Net_parser.net_of_string
    (Printf.sprintf
       {|
         Agent = (travel, %f).Arrived;
         Arrived = (compute, %f).Returning;
         Returning = (return_result, %f).Agent;
         token Agent;
         place Home = Agent[Agent];
         place DataHost = Agent[_];
         trans t_travel = (travel, %f) from Home to DataHost;
         trans t_return = (return_result, %f) from DataHost to Home;
       |}
       (transfer_rate p p.code_size) p.remote_compute (transfer_rate p p.result_size)
       (transfer_rate p p.code_size) (transfer_rate p p.result_size))

type comparison = {
  params : parameters;
  client_server_jobs : float;
  mobile_agent_jobs : float;
}

let jobs_of net action =
  let space = Pepanet.Net_statespace.build (Pepanet.Net_compile.compile net) in
  let pi = Pepanet.Net_statespace.steady_state space in
  Pepanet.Net_measures.throughput space pi action

let compare_at ?(params = default_parameters) ~bandwidth () =
  let params = { params with bandwidth } in
  {
    params;
    client_server_jobs = jobs_of (client_server_net params) "compute";
    mobile_agent_jobs = jobs_of (mobile_agent_net params) "compute";
  }

let closed_form_jobs p design =
  match design with
  | `Client_server ->
      1.0
      /. ((1.0 /. request_rate)
         +. (p.data_size /. p.bandwidth)
         +. (1.0 /. p.local_compute))
  | `Mobile_agent ->
      1.0
      /. ((p.code_size /. p.bandwidth)
         +. (1.0 /. p.remote_compute)
         +. (p.result_size /. p.bandwidth))

let crossover_bandwidth ?(params = default_parameters) ~lo ~hi () =
  let sign b =
    let c = compare_at ~params ~bandwidth:b () in
    compare c.mobile_agent_jobs c.client_server_jobs
  in
  if sign lo * sign hi >= 0 then
    invalid_arg "Code_mobility.crossover_bandwidth: no sign change in the bracket";
  let rec bisect lo hi k =
    if k = 0 || hi -. lo < 1e-3 then (lo +. hi) /. 2.0
    else
      let mid = (lo +. hi) /. 2.0 in
      if sign mid = sign lo then bisect mid hi (k - 1) else bisect lo mid (k - 1)
  in
  bisect lo hi 60
