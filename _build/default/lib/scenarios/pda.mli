(** The paper's Section 5 evaluation scenario (Figures 5–7): a PDA user
    on a moving train downloads dynamically generated content while the
    connection is handed over between track-side transmitters.  The
    handover is a [<<move>>] activity; it succeeds (download continues)
    or fails (download aborted) with equal probability. *)

val diagram : unit -> Uml.Activity.t

val rates : Uml.Rates_file.t
(** Plausible rates: downloads a few times per second relative to a slow
    handover; abort and continue share one rate, giving the paper's
    50/50 outcome split. *)

val rates_with_handover : float -> Uml.Rates_file.t
(** Same rate book with the handover rate replaced (for sweeps). *)

val extraction : unit -> Extract.Ad_to_pepanet.extraction

val poseidon_project : unit -> Xml_kit.Minixml.t
(** The diagram serialised to XMI with simulated Poseidon layout data,
    i.e. the artefact a designer would hand to Choreographer. *)

val activity_names : string list
(** The mangled PEPA action names of the six activities, in diagram
    order. *)

val diagram_with_transmitters : int -> Uml.Activity.t
(** A generalisation of Figure 5 to a journey past [k >= 2] transmitters:
    the train performs download/detect/search and a handover at each of
    the [k - 1] transmitter boundaries.  Used to study how the marking
    graph grows with the number of locations. *)

val rates_for_transmitters : int -> Uml.Rates_file.t
