module B = Uml.Activity.Build

let rates_text handover =
  Printf.sprintf
    {|
      download_file = 2.0
      detect_weak_signal = 10.0
      search_for_other_transmitters = 5.0
      handover = %g
      abort_download = 4.0
      continue_download = 4.0
      return_ua = 1.0
      default = 1.0
    |}
    handover

let rates_with_handover h = Uml.Rates_file.of_string (rates_text h)
let rates = rates_with_handover 0.5

let activity_names =
  [
    "download_file";
    "detect_weak_signal";
    "search_for_other_transmitters";
    "handover";
    "abort_download";
    "continue_download";
  ]

let diagram () =
  let b = B.create "PDA" in
  let i = B.initial b in
  let download = B.action b "download file" in
  let detect = B.action b "detect weak signal" in
  let search = B.action b "search for other transmitters" in
  let handover = B.action ~move:true b "handover" in
  let dec = B.decision b in
  let abort = B.action b "abort download" in
  let continue = B.action b "continue download" in
  let fin = B.final b in
  B.edge b i download;
  B.edge b download detect;
  B.edge b detect search;
  B.edge b search handover;
  B.edge b handover dec;
  B.edge b dec abort;
  B.edge b dec continue;
  B.edge b abort fin;
  B.edge b continue fin;
  let occ state loc = B.occurrence ~state ~loc b ~obj:"ua" ~cls:"UserAgent" in
  let o1 = occ "initial" "transmitter_1" in
  let o2 = occ "downloading" "transmitter_1" in
  let o3 = occ "weak" "transmitter_1" in
  let o4 = occ "searching" "transmitter_1" in
  let o5 = occ "handed_over" "transmitter_2" in
  let o6 = occ "done" "transmitter_2" in
  B.flow_into b ~occ:o1 ~activity:download;
  B.flow_out_of b ~activity:download ~occ:o2;
  B.flow_into b ~occ:o2 ~activity:detect;
  B.flow_out_of b ~activity:detect ~occ:o3;
  B.flow_into b ~occ:o3 ~activity:search;
  B.flow_out_of b ~activity:search ~occ:o4;
  B.flow_into b ~occ:o4 ~activity:handover;
  B.flow_out_of b ~activity:handover ~occ:o5;
  B.flow_into b ~occ:o5 ~activity:abort;
  B.flow_into b ~occ:o5 ~activity:continue;
  B.flow_out_of b ~activity:abort ~occ:o6;
  B.flow_out_of b ~activity:continue ~occ:o6;
  B.finish b

let extraction () = Extract.Ad_to_pepanet.extract ~rates (diagram ())

(* The k-transmitter journey: at each boundary the PDA downloads,
   notices the weakening signal, searches, and hands over to the next
   transmitter; after the final segment the session ends. *)
let diagram_with_transmitters k =
  if k < 2 then invalid_arg "Pda.diagram_with_transmitters: need at least two transmitters";
  let b = B.create (Printf.sprintf "PDA%d" k) in
  let i = B.initial b in
  let fin = B.final b in
  let loc n = Printf.sprintf "transmitter_%d" n in
  let previous = ref i in
  let occ_at = ref (B.occurrence ~state:"initial" ~loc:(loc 1) b ~obj:"ua" ~cls:"UserAgent") in
  for segment = 1 to k - 1 do
    let download = B.action b (Printf.sprintf "download %d" segment) in
    let detect = B.action b (Printf.sprintf "detect weak %d" segment) in
    let handover = B.action ~move:true b (Printf.sprintf "handover %d" segment) in
    B.edge b !previous download;
    B.edge b download detect;
    B.edge b detect handover;
    B.flow_into b ~occ:!occ_at ~activity:download;
    B.flow_into b ~occ:!occ_at ~activity:detect;
    B.flow_into b ~occ:!occ_at ~activity:handover;
    let arrived =
      B.occurrence ~state:(Printf.sprintf "seg%d" segment) ~loc:(loc (segment + 1)) b
        ~obj:"ua" ~cls:"UserAgent"
    in
    B.flow_out_of b ~activity:handover ~occ:arrived;
    occ_at := arrived;
    previous := handover
  done;
  let finish = B.action b "finish download" in
  B.edge b !previous finish;
  B.edge b finish fin;
  B.flow_into b ~occ:!occ_at ~activity:finish;
  B.finish b

let rates_for_transmitters k =
  let buf = Buffer.create 256 in
  for segment = 1 to k - 1 do
    Buffer.add_string buf (Printf.sprintf "download_%d = 2.0\n" segment);
    Buffer.add_string buf (Printf.sprintf "detect_weak_%d = 10.0\n" segment);
    Buffer.add_string buf (Printf.sprintf "handover_%d = 0.5\n" segment)
  done;
  Buffer.add_string buf "finish_download = 4.0\nreturn_ua = 1.0\ndefault = 1.0\n";
  Uml.Rates_file.of_string (Buffer.contents buf)

let poseidon_project () =
  Uml.Poseidon.add_layout (Uml.Xmi_write.activity_to_xml (diagram ()))
