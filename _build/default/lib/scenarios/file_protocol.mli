(** The paper's Figure 1 / Section 2.2 running example: a text file that
    may be opened for reading or writing, operated on, and closed — with
    no mobility.  Both the UML activity diagram and the hand-written
    PEPA component of Section 2.2 are provided, so tests can check that
    extraction agrees with the paper's own PEPA rendering. *)

val diagram : unit -> Uml.Activity.t
(** Figure 1: start -> decision -> (openread -> read | openwrite ->
    write) -> close -> final, all activities associated with the [f]
    object, no locations. *)

val rates : Uml.Rates_file.t
(** r_o = 2, r_r = 10, r_w = 5, r_c = 4 (the symbolic rates of Section
    2.2, given concrete plausible values). *)

val pepa_source : string
(** The Section 2.2 File/InStream/OutStream component with a
    sympathetic [Reader]/[Writer] environment closing the model, as a
    parsable PEPA model. *)

val extraction : unit -> Extract.Ad_to_pepanet.extraction
