module B = Uml.Activity.Build

let rates =
  Uml.Rates_file.of_string
    {|
      openread = 2.0
      openwrite = 2.0
      read = 10.0
      write = 5.0
      close = 4.0
      reset_f = 20.0
      default = 1.0
    |}

(* Figure 1.  The two branches share the "close" activity name, which the
   extractor maps to a single PEPA action type. *)
let diagram () =
  let b = B.create "FileActivities" in
  let i = B.initial b in
  let dec = B.decision b in
  let openread = B.action b "openread" in
  let openwrite = B.action b "openwrite" in
  let read = B.action b "read" in
  let write = B.action b "write" in
  let close_r = B.action b "close" in
  let close_w = B.action b "close" in
  let fin = B.final b in
  B.edge b i dec;
  B.edge b dec openread;
  B.edge b dec openwrite;
  B.edge b openread read;
  B.edge b read close_r;
  B.edge b openwrite write;
  B.edge b write close_w;
  B.edge b close_r fin;
  B.edge b close_w fin;
  (* The f object is required by every activity; decorations follow the
     figure (f, f*, f**, ...). *)
  let occs = Hashtbl.create 8 in
  let occ state =
    match Hashtbl.find_opt occs state with
    | Some o -> o
    | None ->
        let o =
          B.occurrence ?state:(if state = "" then None else Some state) b ~obj:"f" ~cls:"FILE"
        in
        Hashtbl.add occs state o;
        o
    in
  B.flow_into b ~occ:(occ "") ~activity:openread;
  B.flow_out_of b ~activity:openread ~occ:(occ "r");
  B.flow_into b ~occ:(occ "r") ~activity:read;
  B.flow_out_of b ~activity:read ~occ:(occ "r'");
  B.flow_into b ~occ:(occ "r'") ~activity:close_r;
  B.flow_out_of b ~activity:close_r ~occ:(occ "closed_r");
  B.flow_into b ~occ:(occ "") ~activity:openwrite;
  B.flow_out_of b ~activity:openwrite ~occ:(occ "w");
  B.flow_into b ~occ:(occ "w") ~activity:write;
  B.flow_out_of b ~activity:write ~occ:(occ "w'");
  B.flow_into b ~occ:(occ "w'") ~activity:close_w;
  B.flow_out_of b ~activity:close_w ~occ:(occ "closed_w");
  B.finish b

(* Section 2.2, closed with an environment that drives the file through
   complete open/operate/close sessions. *)
let pepa_source =
  {|
    r_o = 2.0;
    r_r = 10.0;
    r_w = 5.0;
    r_c = 4.0;
    File = (openread, r_o).InStream + (openwrite, r_o).OutStream;
    InStream = (read, r_r).InStream + (close, r_c).File;
    OutStream = (write, r_w).OutStream + (close, r_c).File;
    User = (openread, infty).(read, infty).(close, infty).User
         + (openwrite, infty).(write, infty).(close, infty).User;
    System = File <openread, openwrite, read, write, close> User;
    system System;
  |}

let extraction () = Extract.Ad_to_pepanet.extract ~rates (diagram ())
