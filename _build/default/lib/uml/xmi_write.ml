module X = Xml_kit.Minixml

let tagged_value (tag, value) =
  X.Element ("UML:TaggedValue", [ ("tag", tag); ("value", value) ], [])

let tagged_values pairs =
  if pairs = [] then []
  else [ X.Element ("UML:ModelElement.taggedValue", [], List.map tagged_value pairs) ]

let stereotype name =
  X.Element ("UML:ModelElement.stereotype", [], [ X.Element ("UML:Stereotype", [ ("name", name) ], []) ])

let activity_vertex (d : Activity.t) (node : Activity.node) =
  let annotations =
    Option.value ~default:[] (List.assoc_opt node.Activity.node_id d.Activity.annotations)
  in
  match node.Activity.kind with
  | Activity.Initial ->
      X.Element ("UML:Pseudostate", [ ("xmi.id", node.Activity.node_id); ("kind", "initial") ], [])
  | Activity.Final -> X.Element ("UML:FinalState", [ ("xmi.id", node.Activity.node_id) ], [])
  | Activity.Decision ->
      X.Element ("UML:Pseudostate", [ ("xmi.id", node.Activity.node_id); ("kind", "junction") ], [])
  | Activity.Fork ->
      X.Element ("UML:Pseudostate", [ ("xmi.id", node.Activity.node_id); ("kind", "fork") ], [])
  | Activity.Join ->
      X.Element ("UML:Pseudostate", [ ("xmi.id", node.Activity.node_id); ("kind", "join") ], [])
  | Activity.Action { name; move } ->
      let children =
        (if move then [ stereotype "move" ] else []) @ tagged_values annotations
      in
      X.Element ("UML:ActionState", [ ("xmi.id", node.Activity.node_id); ("name", name) ], children)

let occurrence_vertex (o : Activity.occurrence) =
  let tags =
    [ ("class", o.Activity.class_name) ]
    @ (match o.Activity.obj_state with Some s -> [ ("state", s) ] | None -> [])
    @ match o.Activity.atloc with Some l -> [ ("atloc", l) ] | None -> []
  in
  X.Element
    ( "UML:ObjectFlowState",
      [ ("xmi.id", o.Activity.occ_id); ("name", o.Activity.obj_name) ],
      tagged_values tags )

let transition_element ~id ~source ~target =
  X.Element ("UML:Transition", [ ("xmi.id", id); ("source", source); ("target", target) ], [])

let activity_graph (d : Activity.t) =
  let vertices =
    List.map (activity_vertex d) d.Activity.nodes
    @ List.map occurrence_vertex d.Activity.occurrences
  in
  let control_edges =
    List.map
      (fun (e : Activity.edge) ->
        transition_element ~id:e.Activity.edge_id ~source:e.Activity.source
          ~target:e.Activity.target)
      d.Activity.edges
  in
  let flow_edges =
    List.map
      (fun (f : Activity.flow) ->
        match f.Activity.direction with
        | Activity.Into ->
            transition_element ~id:f.Activity.flow_id ~source:f.Activity.occurrence
              ~target:f.Activity.activity
        | Activity.Out_of ->
            transition_element ~id:f.Activity.flow_id ~source:f.Activity.activity
              ~target:f.Activity.occurrence)
      d.Activity.flows
  in
  X.Element
    ( "UML:ActivityGraph",
      [ ("xmi.id", "ag_" ^ d.Activity.diagram_name); ("name", d.Activity.diagram_name) ],
      [
        X.Element
          ( "UML:StateMachine.top",
            [],
            [
              X.Element
                ( "UML:CompositeState",
                  [ ("xmi.id", "top_" ^ d.Activity.diagram_name) ],
                  [ X.Element ("UML:CompositeState.subvertex", [], vertices) ] );
            ] );
        X.Element ("UML:StateMachine.transitions", [], control_edges @ flow_edges);
      ] )

let statechart_machine (c : Statechart.t) =
  let initial_id = "init_" ^ c.Statechart.chart_name in
  let vertices =
    X.Element ("UML:Pseudostate", [ ("xmi.id", initial_id); ("kind", "initial") ], [])
    :: List.map
         (fun (s : Statechart.state) ->
           let annotations =
             Option.value ~default:[]
               (List.assoc_opt s.Statechart.state_id c.Statechart.state_annotations)
           in
           X.Element
             ( "UML:SimpleState",
               [ ("xmi.id", s.Statechart.state_id); ("name", s.Statechart.state_name) ],
               tagged_values annotations ))
         c.Statechart.states
  in
  let initial_edge =
    X.Element
      ( "UML:Transition",
        [
          ("xmi.id", "t_init_" ^ c.Statechart.chart_name);
          ("source", initial_id);
          ("target", c.Statechart.initial);
        ],
        [] )
  in
  let edges =
    List.map
      (fun (t : Statechart.transition) ->
        let trigger =
          X.Element
            ( "UML:Transition.trigger",
              [],
              [ X.Element ("UML:Event", [ ("name", t.Statechart.trigger) ], []) ] )
        in
        let rate_tag =
          match t.Statechart.rate with
          | Some r -> tagged_values [ ("rate", Printf.sprintf "%.17g" r) ]
          | None -> []
        in
        X.Element
          ( "UML:Transition",
            [
              ("xmi.id", t.Statechart.transition_id);
              ("source", t.Statechart.source);
              ("target", t.Statechart.target);
            ],
            trigger :: rate_tag ))
      c.Statechart.transitions
  in
  X.Element
    ( "UML:StateMachine",
      [ ("xmi.id", "sm_" ^ c.Statechart.chart_name); ("name", c.Statechart.chart_name) ],
      [
        X.Element
          ( "UML:StateMachine.top",
            [],
            [
              X.Element
                ( "UML:CompositeState",
                  [ ("xmi.id", "smtop_" ^ c.Statechart.chart_name) ],
                  [ X.Element ("UML:CompositeState.subvertex", [], vertices) ] );
            ] );
        X.Element ("UML:StateMachine.transitions", [], initial_edge :: edges);
      ] )

let collaboration (i : Interaction.t) =
  let messages =
    List.mapi
      (fun k (m : Interaction.message) ->
        X.Element
          ( "UML:Message",
            [
              ("xmi.id", Printf.sprintf "msg_%s_%d" i.Interaction.interaction_name (k + 1));
              ("name", m.Interaction.msg_action);
              ("sender", m.Interaction.sender);
              ("receiver", m.Interaction.receiver);
            ],
            [] ))
      i.Interaction.messages
  in
  X.Element
    ( "UML:Collaboration",
      [
        ("xmi.id", "col_" ^ i.Interaction.interaction_name);
        ("name", i.Interaction.interaction_name);
      ],
      [
        X.Element
          ( "UML:Collaboration.interaction",
            [],
            [
              X.Element
                ( "UML:Interaction",
                  [ ("xmi.id", "int_" ^ i.Interaction.interaction_name) ],
                  [ X.Element ("UML:Interaction.message", [], messages) ] );
            ] );
      ] )

let document ~model_name elements =
  X.Element
    ( "XMI",
      [ ("xmi.version", "1.2"); ("xmlns:UML", "org.omg.xmi.namespace.UML") ],
      [
        X.Element
          ( "XMI.header",
            [],
            [
              X.Element
                ( "XMI.documentation",
                  [],
                  [
                    X.Element
                      ("XMI.exporter", [], [ X.Text "Choreographer (OCaml reproduction)" ]);
                  ] );
            ] );
        X.Element
          ( "XMI.content",
            [],
            [
              X.Element
                ( "UML:Model",
                  [ ("xmi.id", "model_" ^ model_name); ("name", model_name) ],
                  [ X.Element ("UML:Namespace.ownedElement", [], elements) ] );
            ] );
      ] )

let document_to_xml ?(model_name = "model") ?(interactions = []) activities charts =
  document ~model_name
    (List.map activity_graph activities
    @ List.map statechart_machine charts
    @ List.map collaboration interactions)

let activity_to_xml d =
  document ~model_name:d.Activity.diagram_name [ activity_graph d ]

let statecharts_to_xml charts =
  let model_name =
    match charts with c :: _ -> c.Statechart.chart_name | [] -> "empty"
  in
  document ~model_name (List.map statechart_machine charts)

let activity_to_string d = X.to_string (activity_to_xml d)
let statecharts_to_string cs = X.to_string (statecharts_to_xml cs)
