(** UML activity diagrams with the Baumeister et al. mobility notation.

    The model mirrors what the paper's Figures 1, 2 and 5 draw:

    - control-flow {e nodes}: the initial marker, final markers, action
      states (optionally stereotyped [<<move>>]) and decision diamonds;
    - control-flow {e edges} between nodes;
    - {e object occurrences}: the boxes such as ["f*: FILE"] with an
      optional [atloc = ...] tag recording the object's location at that
      point of the behaviour;
    - {e object flows} connecting occurrences to the activities that
      require or produce them.

    Several occurrences with the same object name denote the same object
    at successive points ([f], [f*], [f**] in Figure 1 are all the
    object [f]). *)

type direction = Into | Out_of

type node_kind =
  | Initial
  | Final
  | Action of { name : string; move : bool }
  | Decision
  | Fork  (** parallel split (Section 6 extension) *)
  | Join  (** parallel synchronisation (Section 6 extension) *)

type node = { node_id : string; kind : node_kind }

type edge = { edge_id : string; source : string; target : string }

type occurrence = {
  occ_id : string;
  obj_name : string;       (** e.g. ["f"] *)
  class_name : string;     (** e.g. ["FILE"] *)
  obj_state : string option;  (** the decoration, e.g. ["*"] or a state name *)
  atloc : string option;   (** location tag, when the diagram is mobile *)
}

type flow = {
  flow_id : string;
  occurrence : string;  (** occurrence id *)
  activity : string;    (** action-state node id *)
  direction : direction;
}

type t = {
  diagram_name : string;
  nodes : node list;
  edges : edge list;
  occurrences : occurrence list;
  flows : flow list;
  annotations : (string * (string * string) list) list;
      (** reflected tagged values per node id, e.g.
          [("n2", \[("throughput", "0.25")\])] *)
}

exception Invalid_diagram of string

val validate : t -> unit
(** Checks referential integrity: unique ids, edges and flows referring
    to existing endpoints, exactly one initial node, flows attached to
    action states.  Raises {!Invalid_diagram}. *)

val find_node : t -> string -> node option
val action_nodes : t -> node list
val actions_of_object : t -> string -> string list
(** Ids of action states connected to any occurrence of the object. *)

val object_names : t -> string list
(** Distinct object names, in first-appearance order. *)

val locations : t -> string list
(** Distinct [atloc] values, in first-appearance order. *)

val objects_of_activity : t -> string -> direction -> occurrence list
(** Occurrences flowing into / out of the given action state. *)

val initial_node : t -> node
val successors : t -> string -> string list
val predecessors : t -> string -> string list

val annotate : t -> node_id:string -> tag:string -> value:string -> t
(** Add (or replace) a reflected tagged value on a node. *)

val annotation : t -> node_id:string -> tag:string -> string option

(** Imperative construction convenience used by examples and tests. *)
module Build : sig
  type diagram = t
  type b

  val create : string -> b
  val initial : b -> string
  val final : b -> string
  val action : ?move:bool -> b -> string -> string
  val decision : b -> string
  val fork : b -> string
  val join : b -> string
  val edge : b -> string -> string -> unit
  val occurrence :
    ?state:string -> ?loc:string -> b -> obj:string -> cls:string -> string
  val flow_into : b -> occ:string -> activity:string -> unit
  val flow_out_of : b -> activity:string -> occ:string -> unit
  val finish : b -> diagram
  (** Runs {!validate}. *)
end
