module X = Xml_kit.Minixml

let prefix = "Poseidon:"

let has_prefix ~prefix name =
  String.length name >= String.length prefix && String.sub name 0 (String.length prefix) = prefix

let strip ?(prefix = prefix) doc =
  X.filter_children
    (fun node ->
      match node with
      | X.Element (name, _, _) -> not (has_prefix ~prefix name)
      | _ -> true)
    doc

(* Collect outermost tool-prefixed elements: once a node matches, its
   children travel with it rather than being collected again. *)
let layout_of ?(prefix = prefix) doc =
  let rec collect node =
    match node with
    | X.Element (name, _, children) ->
        if has_prefix ~prefix name then [ node ] else List.concat_map collect children
    | _ -> []
  in
  match doc with X.Element (_, _, children) -> List.concat_map collect children | _ -> []

let ids_of doc =
  let table = Hashtbl.create 64 in
  List.iter
    (fun node ->
      match X.attribute "xmi.id" node with
      | Some id -> Hashtbl.replace table id ()
      | None -> ())
    (Xml_kit.Xpath_lite.descendants doc);
  table

let prune_layout ids node =
  match node with
  | X.Element (name, attrs, children) ->
      let children =
        List.filter
          (fun child ->
            match X.attribute "element" child with
            | Some id -> Hashtbl.mem ids id
            | None -> true)
          children
      in
      X.Element (name, attrs, children)
  | _ -> node

let append_to_content extra doc =
  match doc with
  | X.Element (tag, attrs, children) ->
      let appended = ref false in
      let children =
        List.map
          (fun child ->
            if X.name child = "XMI.content" then begin
              appended := true;
              List.fold_left (fun acc e -> X.add_child e acc) child extra
            end
            else child)
          children
      in
      if !appended then X.Element (tag, attrs, children)
      else X.Element (tag, attrs, children @ extra)
  | _ -> doc

let merge ?(prefix = prefix) ~original ~reflected () =
  let layout = layout_of ~prefix original in
  let ids = ids_of reflected in
  let kept = List.map (prune_layout ids) layout in
  append_to_content kept (strip ~prefix reflected)

(* A deterministic grid layout keyed by the document's element ids. *)
let synthesize_layout doc =
  let entries =
    Xml_kit.Xpath_lite.descendants doc
    |> List.filter_map (fun node -> X.attribute "xmi.id" node)
    |> List.mapi (fun i id ->
           X.Element
             ( "Poseidon:NodeLayout",
               [
                 ("element", id);
                 ("x", string_of_int (40 + (120 * (i mod 5))));
                 ("y", string_of_int (40 + (90 * (i / 5))));
                 ("width", "100");
                 ("height", "40");
               ],
               [] ))
  in
  X.Element
    ( "Poseidon:DiagramLayout",
      [ ("xmlns:Poseidon", "com.gentleware.poseidon.layout") ],
      entries )

let add_layout doc = append_to_content [ synthesize_layout doc ] doc
