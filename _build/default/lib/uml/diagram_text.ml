exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Str of string
  | Number of float
  | Arrow
  | Lbrace
  | Rbrace
  | Semi
  | Colon
  | At
  | Equals
  | Eof

type spanned = { token : token; line : int }

let token_to_string = function
  | Ident s -> Printf.sprintf "%S" s
  | Str s -> Printf.sprintf "\"%s\"" s
  | Number v -> Printf.sprintf "%g" v
  | Arrow -> "'->'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Semi -> "';'"
  | Colon -> "':'"
  | At -> "'@'"
  | Equals -> "'='"
  | Eof -> "end of input"

let tokenize src =
  let tokens = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let n = String.length src in
  let fail message = raise (Parse_error { line = !line; message }) in
  let peek k = if !pos + k < n then src.[!pos + k] else '\000' in
  let push token = tokens := { token; line = !line } :: !tokens in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '%' then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if c = '-' && peek 1 = '>' then begin
      push Arrow;
      pos := !pos + 2
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      while !pos < n && src.[!pos] <> '"' do
        if src.[!pos] = '\n' then fail "unterminated string";
        Buffer.add_char buf src.[!pos];
        incr pos
      done;
      if !pos >= n then fail "unterminated string";
      incr pos;
      push (Str (Buffer.contents buf))
    end
    else if (c >= '0' && c <= '9') || (c = '.' && peek 1 >= '0' && peek 1 <= '9') then begin
      let buf = Buffer.create 8 in
      while
        !pos < n
        && ((src.[!pos] >= '0' && src.[!pos] <= '9') || src.[!pos] = '.' || src.[!pos] = 'e'
           || src.[!pos] = 'E' || src.[!pos] = '-' && Buffer.length buf > 0
              && (let last = Buffer.nth buf (Buffer.length buf - 1) in
                  last = 'e' || last = 'E')
           || (src.[!pos] = '+'
              && Buffer.length buf > 0
              &&
              let last = Buffer.nth buf (Buffer.length buf - 1) in
              last = 'e' || last = 'E'))
      do
        Buffer.add_char buf src.[!pos];
        incr pos
      done;
      match float_of_string_opt (Buffer.contents buf) with
      | Some v -> push (Number v)
      | None -> fail (Printf.sprintf "malformed number %S" (Buffer.contents buf))
    end
    else if is_ident c then begin
      let buf = Buffer.create 16 in
      while !pos < n && is_ident src.[!pos] do
        Buffer.add_char buf src.[!pos];
        incr pos
      done;
      push (Ident (Buffer.contents buf))
    end
    else begin
      (match c with
      | '{' -> push Lbrace
      | '}' -> push Rbrace
      | ';' -> push Semi
      | ':' -> push Colon
      | '@' -> push At
      | '=' -> push Equals
      | c -> fail (Printf.sprintf "unexpected character %C" c));
      incr pos
    end
  done;
  push Eof;
  Array.of_list (List.rev !tokens)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type state = { tokens : spanned array; mutable index : int }

let current st = st.tokens.(st.index)
let peek st = (current st).token
let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let error st message = raise (Parse_error { line = (current st).line; message })

let expect st token =
  if peek st = token then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (token_to_string token)
         (token_to_string (peek st)))

let ident st =
  match peek st with
  | Ident s ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected an identifier but found %s" (token_to_string t))

type builder = {
  diagram_name : string;
  mutable nodes : Activity.node list;
  mutable edges : Activity.edge list;
  mutable occurrences : Activity.occurrence list;
  mutable flows : Activity.flow list;
  mutable classes : (string * string) list;  (* object name -> class *)
  mutable fresh : int;
}

let fresh b prefix =
  b.fresh <- b.fresh + 1;
  Printf.sprintf "%s%d" prefix b.fresh

let declare_node st b node_id kind =
  if List.exists (fun (n : Activity.node) -> n.Activity.node_id = node_id) b.nodes then
    error st (Printf.sprintf "duplicate node id %s" node_id);
  b.nodes <- b.nodes @ [ { Activity.node_id; kind } ]

let is_occurrence b id = List.exists (fun o -> o.Activity.occ_id = id) b.occurrences
let is_node b id = List.exists (fun (n : Activity.node) -> n.Activity.node_id = id) b.nodes

let add_link st b source target =
  match (is_occurrence b source, is_occurrence b target) with
  | true, true -> error st "a flow cannot connect two occurrences"
  | true, false ->
      if not (is_node b target) then error st (Printf.sprintf "unknown node %s" target);
      b.flows <-
        b.flows
        @ [ { Activity.flow_id = fresh b "f"; occurrence = source; activity = target;
              direction = Activity.Into } ]
  | false, true ->
      if not (is_node b source) then error st (Printf.sprintf "unknown node %s" source);
      b.flows <-
        b.flows
        @ [ { Activity.flow_id = fresh b "f"; occurrence = target; activity = source;
              direction = Activity.Out_of } ]
  | false, false ->
      if not (is_node b source) then error st (Printf.sprintf "unknown node %s" source);
      if not (is_node b target) then error st (Printf.sprintf "unknown node %s" target);
      b.edges <- b.edges @ [ { Activity.edge_id = fresh b "e"; source; target } ]

let parse_activity_statement st b =
  match peek st with
  | Ident "initial" ->
      advance st;
      declare_node st b (ident st) Activity.Initial;
      expect st Semi
  | Ident "final" ->
      advance st;
      declare_node st b (ident st) Activity.Final;
      expect st Semi
  | Ident "decision" ->
      advance st;
      declare_node st b (ident st) Activity.Decision;
      expect st Semi
  | Ident "fork" ->
      advance st;
      declare_node st b (ident st) Activity.Fork;
      expect st Semi
  | Ident "join" ->
      advance st;
      declare_node st b (ident st) Activity.Join;
      expect st Semi
  | Ident "action" ->
      advance st;
      let id = ident st in
      let name =
        match peek st with
        | Str s ->
            advance st;
            s
        | _ -> id
      in
      let move =
        match peek st with
        | Ident "move" ->
            advance st;
            true
        | _ -> false
      in
      declare_node st b id (Activity.Action { name; move });
      expect st Semi
  | Ident "edge" ->
      advance st;
      let first = ident st in
      let rec chain previous =
        expect st Arrow;
        let next = ident st in
        add_link st b previous next;
        match peek st with Arrow -> chain next | _ -> ()
      in
      chain first;
      expect st Semi
  | Ident "object" ->
      advance st;
      let name = ident st in
      expect st Colon;
      let cls = ident st in
      if List.mem_assoc name b.classes then
        error st (Printf.sprintf "duplicate object %s" name);
      b.classes <- b.classes @ [ (name, cls) ];
      expect st Semi
  | Ident "occ" ->
      advance st;
      let occ_id = ident st in
      if is_occurrence b occ_id || is_node b occ_id then
        error st (Printf.sprintf "duplicate identifier %s" occ_id);
      expect st Equals;
      let obj_name = ident st in
      let class_name =
        match List.assoc_opt obj_name b.classes with
        | Some c -> c
        | None -> error st (Printf.sprintf "undeclared object %s" obj_name)
      in
      let atloc =
        match peek st with
        | At ->
            advance st;
            Some (ident st)
        | _ -> None
      in
      let obj_state =
        match peek st with
        | Str s ->
            advance st;
            Some s
        | _ -> None
      in
      b.occurrences <-
        b.occurrences @ [ { Activity.occ_id; obj_name; class_name; obj_state; atloc } ];
      expect st Semi
  | Ident source ->
      advance st;
      expect st Arrow;
      let rec chain previous =
        let next = ident st in
        add_link st b previous next;
        match peek st with
        | Arrow ->
            advance st;
            chain next
        | _ -> ()
      in
      chain source;
      expect st Semi
  | t -> error st (Printf.sprintf "expected an activity statement but found %s" (token_to_string t))

let parse_activity st name =
  let b =
    { diagram_name = name; nodes = []; edges = []; occurrences = []; flows = [];
      classes = []; fresh = 0 }
  in
  expect st Lbrace;
  while peek st <> Rbrace do
    parse_activity_statement st b
  done;
  expect st Rbrace;
  let diagram =
    {
      Activity.diagram_name = b.diagram_name;
      nodes = b.nodes;
      edges = b.edges;
      occurrences = b.occurrences;
      flows = b.flows;
      annotations = [];
    }
  in
  (try Activity.validate diagram
   with Activity.Invalid_diagram msg ->
     raise (Parse_error { line = (current st).line; message = msg }));
  diagram

let parse_statechart st name =
  expect st Lbrace;
  let states = ref [] in
  let transitions = ref [] in
  let initial = ref None in
  while peek st <> Rbrace do
    match peek st with
    | Ident "initial" ->
        advance st;
        initial := Some (ident st);
        expect st Semi
    | Ident "state" ->
        advance st;
        states := ident st :: !states;
        expect st Semi
    | Ident source ->
        advance st;
        expect st Arrow;
        let target = ident st in
        expect st Colon;
        let trigger = ident st in
        let rate =
          match peek st with
          | At -> (
              advance st;
              match peek st with
              | Number v ->
                  advance st;
                  Some v
              | t -> error st (Printf.sprintf "expected a rate but found %s" (token_to_string t)))
          | _ -> None
        in
        transitions := (source, target, trigger, rate) :: !transitions;
        expect st Semi
    | t ->
        error st (Printf.sprintf "expected a statechart statement but found %s" (token_to_string t))
  done;
  expect st Rbrace;
  try
    Statechart.make ~name ~states:(List.rev !states) ~transitions:(List.rev !transitions)
      ?initial:!initial ()
  with Statechart.Invalid_chart msg ->
    raise (Parse_error { line = (current st).line; message = msg })

let parse_interaction st name =
  expect st Lbrace;
  let messages = ref [] in
  while peek st <> Rbrace do
    let sender = ident st in
    expect st Arrow;
    let receiver = ident st in
    expect st Colon;
    let action = ident st in
    expect st Semi;
    messages := (sender, receiver, action) :: !messages
  done;
  expect st Rbrace;
  try Interaction.make ~name ~messages:(List.rev !messages)
  with Interaction.Invalid_interaction msg ->
    raise (Parse_error { line = (current st).line; message = msg })

let parse_document src =
  let st = { tokens = tokenize src; index = 0 } in
  let activities = ref [] and charts = ref [] and interactions = ref [] in
  while peek st <> Eof do
    match peek st with
    | Ident "activity" ->
        advance st;
        let name = ident st in
        activities := parse_activity st name :: !activities
    | Ident "statechart" ->
        advance st;
        let name = ident st in
        charts := parse_statechart st name :: !charts
    | Ident "interaction" ->
        advance st;
        let name = ident st in
        interactions := parse_interaction st name :: !interactions
    | t ->
        error st
          (Printf.sprintf "expected 'activity', 'statechart' or 'interaction' but found %s"
             (token_to_string t))
  done;
  (List.rev !activities, List.rev !charts, List.rev !interactions)

let parse src =
  let activities, charts, _ = parse_document src in
  (activities, charts)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path = parse (read_file path)
let parse_document_file path = parse_document (read_file path)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let activity_to_string (d : Activity.t) =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n")) fmt in
  Buffer.add_string buf (Printf.sprintf "activity %s {\n" d.Activity.diagram_name);
  List.iter
    (fun (n : Activity.node) ->
      match n.Activity.kind with
      | Activity.Initial -> line "initial %s;" n.Activity.node_id
      | Activity.Final -> line "final %s;" n.Activity.node_id
      | Activity.Decision -> line "decision %s;" n.Activity.node_id
      | Activity.Fork -> line "fork %s;" n.Activity.node_id
      | Activity.Join -> line "join %s;" n.Activity.node_id
      | Activity.Action { name; move } ->
          line "action %s \"%s\"%s;" n.Activity.node_id name (if move then " move" else ""))
    d.Activity.nodes;
  let objects =
    List.fold_left
      (fun acc o ->
        if List.mem_assoc o.Activity.obj_name acc then acc
        else acc @ [ (o.Activity.obj_name, o.Activity.class_name) ])
      [] d.Activity.occurrences
  in
  List.iter (fun (name, cls) -> line "object %s : %s;" name cls) objects;
  List.iter
    (fun (o : Activity.occurrence) ->
      line "occ %s = %s%s%s;" o.Activity.occ_id o.Activity.obj_name
        (match o.Activity.atloc with Some l -> " @ " ^ l | None -> "")
        (match o.Activity.obj_state with Some s -> Printf.sprintf " \"%s\"" s | None -> ""))
    d.Activity.occurrences;
  List.iter
    (fun (e : Activity.edge) -> line "%s -> %s;" e.Activity.source e.Activity.target)
    d.Activity.edges;
  List.iter
    (fun (f : Activity.flow) ->
      match f.Activity.direction with
      | Activity.Into -> line "%s -> %s;" f.Activity.occurrence f.Activity.activity
      | Activity.Out_of -> line "%s -> %s;" f.Activity.activity f.Activity.occurrence)
    d.Activity.flows;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let statechart_to_string (c : Statechart.t) =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n")) fmt in
  Buffer.add_string buf (Printf.sprintf "statechart %s {\n" c.Statechart.chart_name);
  let name_of id =
    match List.find_opt (fun s -> s.Statechart.state_id = id) c.Statechart.states with
    | Some s -> s.Statechart.state_name
    | None -> id
  in
  line "initial %s;" (name_of c.Statechart.initial);
  List.iter (fun s -> line "state %s;" s.Statechart.state_name) c.Statechart.states;
  List.iter
    (fun (t : Statechart.transition) ->
      line "%s -> %s : %s%s;" (name_of t.Statechart.source) (name_of t.Statechart.target)
        t.Statechart.trigger
        (match t.Statechart.rate with Some r -> Printf.sprintf " @ %.12g" r | None -> ""))
    c.Statechart.transitions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let interaction_to_string (i : Interaction.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "interaction %s {\n" i.Interaction.interaction_name);
  List.iter
    (fun (m : Interaction.message) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s : %s;\n" m.Interaction.sender m.Interaction.receiver
           m.Interaction.msg_action))
    i.Interaction.messages;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let document_to_string ?(interactions = []) activities charts =
  String.concat "\n"
    (List.map activity_to_string activities
    @ List.map statechart_to_string charts
    @ List.map interaction_to_string interactions)
