lib/uml/rates_file.ml: Buffer Float Fun List Option Printf String
