lib/uml/poseidon.ml: Hashtbl List String Xml_kit
