lib/uml/xmi_read.ml: Activity Format Hashtbl Interaction List Option Statechart Xml_kit
