lib/uml/rates_file.mli:
