lib/uml/interaction.ml: Hashtbl List Printf
