lib/uml/activity.ml: Format Hashtbl List Option Printf String
