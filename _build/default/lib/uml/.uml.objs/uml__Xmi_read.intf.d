lib/uml/xmi_read.mli: Activity Interaction Statechart Xml_kit
