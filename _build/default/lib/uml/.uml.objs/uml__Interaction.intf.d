lib/uml/interaction.mli:
