lib/uml/activity.mli:
