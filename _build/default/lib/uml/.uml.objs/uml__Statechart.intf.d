lib/uml/statechart.mli:
