lib/uml/mdr.ml: Format Hashtbl List Printf String Xml_kit
