lib/uml/diagram_text.ml: Activity Array Buffer Fun Interaction List Printf Statechart String
