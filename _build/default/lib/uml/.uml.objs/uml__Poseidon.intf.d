lib/uml/poseidon.mli: Xml_kit
