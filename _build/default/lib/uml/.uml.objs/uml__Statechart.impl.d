lib/uml/statechart.ml: Format Hashtbl List Option Printf String
