lib/uml/xmi_write.ml: Activity Interaction List Option Printf Statechart Xml_kit
