lib/uml/mdr.mli: Xml_kit
