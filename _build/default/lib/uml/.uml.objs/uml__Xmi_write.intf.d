lib/uml/xmi_write.mli: Activity Interaction Statechart Xml_kit
