lib/uml/diagram_text.mli: Activity Interaction Statechart
