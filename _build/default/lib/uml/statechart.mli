(** UML state diagrams (the Harel-statechart variant of the paper's
    Figures 8 and 9): states connected by transitions labelled with the
    activity causing the transition, plus an activity rate.

    Choreographer maps each state diagram to one sequential PEPA
    component and composes the diagrams of cooperating classes over
    their shared action names; the steady-state probability of each
    state is the measure reflected back. *)

type state = { state_id : string; state_name : string }

type transition = {
  transition_id : string;
  source : string;
  target : string;
  trigger : string;          (** the activity name *)
  rate : float option;       (** [None]: taken from a rates file or the
                                 default *)
}

type t = {
  chart_name : string;  (** usually the class name, e.g. ["Client"] *)
  states : state list;
  transitions : transition list;
  initial : string;  (** id of the initial state *)
  state_annotations : (string * (string * string) list) list;
      (** reflected tagged values per state id *)
}

exception Invalid_chart of string

val validate : t -> unit

val make :
  name:string ->
  states:string list ->
  transitions:(string * string * string * float option) list ->
  ?initial:string ->
  unit ->
  t
(** [make ~name ~states ~transitions ()] builds a chart where states are
    given by name (ids are generated), transitions are
    [(source state name, target state name, trigger, rate)], and the
    initial state defaults to the first listed. *)

val state_names : t -> string list
val alphabet : t -> string list
(** Trigger names, sorted. *)

val find_state_by_name : t -> string -> state option

val annotate : t -> state_id:string -> tag:string -> value:string -> t
val annotation : t -> state_id:string -> tag:string -> string option
