type t = { bindings : (string * float) list; default : float }

exception Syntax_error of { line : int; message : string }

let empty = { bindings = []; default = 1.0 }

let of_string src =
  let lines = String.split_on_char '\n' src in
  let parse_line (acc, lineno) raw =
    let line =
      match String.index_opt raw '%' with
      | Some i -> String.sub raw 0 i
      | None -> raw
    in
    let line = String.trim line in
    if line = "" then (acc, lineno + 1)
    else
      match String.index_opt line '=' with
      | None -> raise (Syntax_error { line = lineno; message = "expected name = rate" })
      | Some i ->
          let name = String.trim (String.sub line 0 i) in
          let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          if name = "" then
            raise (Syntax_error { line = lineno; message = "missing activity name" });
          let rate =
            match float_of_string_opt value with
            | Some v when v > 0.0 && Float.is_finite v -> v
            | Some v ->
                raise
                  (Syntax_error
                     { line = lineno; message = Printf.sprintf "rate must be positive, got %g" v })
            | None ->
                raise
                  (Syntax_error
                     { line = lineno; message = Printf.sprintf "malformed rate %S" value })
          in
          ((name, rate) :: acc, lineno + 1)
  in
  let reversed, _ = List.fold_left parse_line ([], 1) lines in
  let bindings = List.rev reversed in
  let default = Option.value ~default:1.0 (List.assoc_opt "default" bindings) in
  { bindings = List.remove_assoc "default" bindings; default }

let of_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string src

let to_string t =
  let buf = Buffer.create 128 in
  List.iter (fun (name, rate) -> Buffer.add_string buf (Printf.sprintf "%s = %g\n" name rate))
    t.bindings;
  Buffer.add_string buf (Printf.sprintf "default = %g\n" t.default);
  Buffer.contents buf

let add t name rate = { t with bindings = (name, rate) :: List.remove_assoc name t.bindings }

let rate_opt t name = List.assoc_opt name t.bindings
let rate t name = Option.value ~default:t.default (rate_opt t name)
let bindings t = t.bindings
let with_default t default = { t with default }
