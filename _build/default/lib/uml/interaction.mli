(** Interaction (collaboration) diagrams, reduced to what the paper's
    Section 6 wants them for: "Interaction diagrams ... would permit
    explicit definition of which components cooperate with each other.
    This becomes particularly important if several mobile and static
    components are considered at one place."

    An interaction lists messages between objects; when interactions are
    supplied to the extractor, two tokens cooperate on a shared activity
    only if some interaction carries a message with that activity name
    between the two objects (in either direction). *)

type message = { sender : string; receiver : string; msg_action : string }

type t = { interaction_name : string; messages : message list }

exception Invalid_interaction of string

val make : name:string -> messages:(string * string * string) list -> t
(** [(sender, receiver, action)] triples; must be non-empty. *)

val allows : t list -> action:string -> string -> string -> bool
(** [allows interactions ~action o1 o2]: does some interaction carry a
    message named [action] between [o1] and [o2] (either direction)?
    With an empty interaction list, everything is allowed (the default
    behaviour of the paper's current tool). *)

val participants : t -> string list
(** Distinct object names, in first-appearance order. *)
