(** The ".rates" companion file of Figure 4: activity names mapped to
    exponential rates, supplied alongside the UML model because drawing
    tools have no native notion of a rate.

    Syntax (one binding per line):
    {v
      % comment
      download_file = 2.0
      handover = 0.5
      default = 1.0        % used for activities not listed
    v} *)

type t

exception Syntax_error of { line : int; message : string }

val empty : t
val of_string : string -> t
val of_file : string -> t
val to_string : t -> string

val add : t -> string -> float -> t
val rate : t -> string -> float
(** The bound rate, or the [default] binding, or [1.0]. *)

val rate_opt : t -> string -> float option
(** The explicitly bound rate only. *)

val bindings : t -> (string * float) list
val with_default : t -> float -> t
