type direction = Into | Out_of

type node_kind =
  | Initial
  | Final
  | Action of { name : string; move : bool }
  | Decision
  | Fork
  | Join

type node = { node_id : string; kind : node_kind }

type edge = { edge_id : string; source : string; target : string }

type occurrence = {
  occ_id : string;
  obj_name : string;
  class_name : string;
  obj_state : string option;
  atloc : string option;
}

type flow = { flow_id : string; occurrence : string; activity : string; direction : direction }

type t = {
  diagram_name : string;
  nodes : node list;
  edges : edge list;
  occurrences : occurrence list;
  flows : flow list;
  annotations : (string * (string * string) list) list;
}

exception Invalid_diagram of string

let fail fmt = Format.kasprintf (fun msg -> raise (Invalid_diagram msg)) fmt

let find_node d id = List.find_opt (fun n -> n.node_id = id) d.nodes

let validate d =
  let check_unique what ids =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun id ->
        if Hashtbl.mem seen id then fail "duplicate %s id %s" what id
        else Hashtbl.add seen id ())
      ids
  in
  check_unique "node" (List.map (fun n -> n.node_id) d.nodes);
  check_unique "edge" (List.map (fun e -> e.edge_id) d.edges);
  check_unique "occurrence" (List.map (fun o -> o.occ_id) d.occurrences);
  check_unique "flow" (List.map (fun f -> f.flow_id) d.flows);
  let node_exists id = find_node d id <> None in
  List.iter
    (fun e ->
      if not (node_exists e.source) then fail "edge %s has unknown source %s" e.edge_id e.source;
      if not (node_exists e.target) then fail "edge %s has unknown target %s" e.edge_id e.target)
    d.edges;
  let occurrence_exists id = List.exists (fun o -> o.occ_id = id) d.occurrences in
  List.iter
    (fun f ->
      if not (occurrence_exists f.occurrence) then
        fail "flow %s refers to unknown occurrence %s" f.flow_id f.occurrence;
      match find_node d f.activity with
      | Some { kind = Action _; _ } -> ()
      | Some _ -> fail "flow %s must attach to an action state (%s)" f.flow_id f.activity
      | None -> fail "flow %s refers to unknown node %s" f.flow_id f.activity)
    d.flows;
  match List.filter (fun n -> n.kind = Initial) d.nodes with
  | [ _ ] -> ()
  | [] -> fail "the diagram has no initial node"
  | _ -> fail "the diagram has more than one initial node"

let action_nodes d =
  List.filter (fun n -> match n.kind with Action _ -> true | _ -> false) d.nodes

let actions_of_object d obj =
  let occ_ids =
    List.filter_map (fun o -> if o.obj_name = obj then Some o.occ_id else None) d.occurrences
  in
  List.filter_map
    (fun f -> if List.mem f.occurrence occ_ids then Some f.activity else None)
    d.flows
  |> List.sort_uniq String.compare

let dedup_keep_order items =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    items

let object_names d = dedup_keep_order (List.map (fun o -> o.obj_name) d.occurrences)

let locations d = dedup_keep_order (List.filter_map (fun o -> o.atloc) d.occurrences)

let objects_of_activity d activity direction =
  List.filter_map
    (fun f ->
      if f.activity = activity && f.direction = direction then
        List.find_opt (fun o -> o.occ_id = f.occurrence) d.occurrences
      else None)
    d.flows

let initial_node d =
  match List.find_opt (fun n -> n.kind = Initial) d.nodes with
  | Some n -> n
  | None -> fail "the diagram has no initial node"

let successors d id =
  List.filter_map (fun e -> if e.source = id then Some e.target else None) d.edges

let predecessors d id =
  List.filter_map (fun e -> if e.target = id then Some e.source else None) d.edges

let annotate d ~node_id ~tag ~value =
  let existing = Option.value ~default:[] (List.assoc_opt node_id d.annotations) in
  let updated = (tag, value) :: List.remove_assoc tag existing in
  { d with annotations = (node_id, updated) :: List.remove_assoc node_id d.annotations }

let annotation d ~node_id ~tag =
  Option.bind (List.assoc_opt node_id d.annotations) (List.assoc_opt tag)

module Build = struct
  type diagram = t

  type b = {
    name : string;
    mutable fresh : int;
    mutable nodes : node list;
    mutable edges : edge list;
    mutable occurrences : occurrence list;
    mutable flows : flow list;
  }

  let create name = { name; fresh = 0; nodes = []; edges = []; occurrences = []; flows = [] }

  let next b prefix =
    b.fresh <- b.fresh + 1;
    Printf.sprintf "%s%d" prefix b.fresh

  let add_node b kind =
    let node_id = next b "n" in
    b.nodes <- { node_id; kind } :: b.nodes;
    node_id

  let initial b = add_node b Initial
  let final b = add_node b Final
  let action ?(move = false) b name = add_node b (Action { name; move })
  let decision b = add_node b Decision
  let fork b = add_node b Fork
  let join b = add_node b Join

  let edge b source target =
    b.edges <- { edge_id = next b "e"; source; target } :: b.edges

  let occurrence ?state ?loc b ~obj ~cls =
    let occ_id = next b "o" in
    b.occurrences <-
      { occ_id; obj_name = obj; class_name = cls; obj_state = state; atloc = loc }
      :: b.occurrences;
    occ_id

  let flow_into b ~occ ~activity =
    b.flows <-
      { flow_id = next b "f"; occurrence = occ; activity; direction = Into } :: b.flows

  let flow_out_of b ~activity ~occ =
    b.flows <-
      { flow_id = next b "f"; occurrence = occ; activity; direction = Out_of } :: b.flows

  let finish b =
    let d =
      {
        diagram_name = b.name;
        nodes = List.rev b.nodes;
        edges = List.rev b.edges;
        occurrences = List.rev b.occurrences;
        flows = List.rev b.flows;
        annotations = [];
      }
    in
    validate d;
    d
end
