module X = Xml_kit.Minixml

type element = {
  id : string;
  kind : string;
  attributes : (string * string) list;
  children : string list;
  parent : string option;
  text : string option;
  synthetic_id : bool;
}

type t = {
  table : (string, element) Hashtbl.t;
  mutable order : string list;  (* document order, reversed *)
  mutable root : string option;
  mutable fresh : int;
}

exception Metamodel_violation of string
exception Unknown_element of string

let fail fmt = Format.kasprintf (fun msg -> raise (Metamodel_violation msg)) fmt

(* ------------------------------------------------------------------ *)
(* The metamodel table: kind -> (required attributes, allowed children) *)
(* ------------------------------------------------------------------ *)

let metamodel : (string * (string list * string list)) list =
  [
    ("XMI", ([ "xmi.version" ], [ "XMI.header"; "XMI.content" ]));
    ("XMI.header", ([], [ "XMI.documentation" ]));
    ("XMI.documentation", ([], [ "XMI.exporter"; "XMI.exporterVersion" ]));
    ("XMI.exporter", ([], []));
    ("XMI.exporterVersion", ([], []));
    ("XMI.content", ([], [ "UML:Model" ]));
    ("UML:Model", ([ "name" ], [ "UML:Namespace.ownedElement" ]));
    ( "UML:Namespace.ownedElement",
      ([], [ "UML:ActivityGraph"; "UML:StateMachine"; "UML:Class"; "UML:Collaboration" ]) );
    ("UML:Collaboration", ([ "name" ], [ "UML:Collaboration.interaction" ]));
    ("UML:Collaboration.interaction", ([], [ "UML:Interaction" ]));
    ("UML:Interaction", ([], [ "UML:Interaction.message" ]));
    ("UML:Interaction.message", ([], [ "UML:Message" ]));
    ("UML:Message", ([ "name"; "sender"; "receiver" ], []));
    ("UML:Class", ([ "name" ], []));
    ("UML:ActivityGraph", ([ "name" ], [ "UML:StateMachine.top"; "UML:StateMachine.transitions" ]));
    ("UML:StateMachine", ([ "name" ], [ "UML:StateMachine.top"; "UML:StateMachine.transitions" ]));
    ("UML:StateMachine.top", ([], [ "UML:CompositeState" ]));
    ("UML:CompositeState", ([], [ "UML:CompositeState.subvertex" ]));
    ( "UML:CompositeState.subvertex",
      ( [],
        [
          "UML:Pseudostate";
          "UML:ActionState";
          "UML:FinalState";
          "UML:ObjectFlowState";
          "UML:SimpleState";
        ] ) );
    ("UML:Pseudostate", ([ "kind" ], []));
    ("UML:FinalState", ([], []));
    ( "UML:ActionState",
      ([ "name" ], [ "UML:ModelElement.stereotype"; "UML:ModelElement.taggedValue" ]) );
    ("UML:SimpleState", ([ "name" ], [ "UML:ModelElement.taggedValue" ]));
    ("UML:ObjectFlowState", ([ "name" ], [ "UML:ModelElement.taggedValue" ]));
    ("UML:StateMachine.transitions", ([], [ "UML:Transition" ]));
    ( "UML:Transition",
      ([ "source"; "target" ], [ "UML:Transition.trigger"; "UML:ModelElement.taggedValue" ]) );
    ("UML:Transition.trigger", ([], [ "UML:Event" ]));
    ("UML:Event", ([ "name" ], []));
    ("UML:ModelElement.stereotype", ([], [ "UML:Stereotype" ]));
    ("UML:Stereotype", ([ "name" ], []));
    ("UML:ModelElement.taggedValue", ([], [ "UML:TaggedValue" ]));
    ("UML:TaggedValue", ([ "tag"; "value" ], []));
  ]

let metamodel_entry kind =
  match List.assoc_opt kind metamodel with
  | Some entry -> entry
  | None -> fail "element kind %s is not part of the UML metamodel" kind

let create () = { table = Hashtbl.create 128; order = []; root = None; fresh = 0 }

let fresh_id repo =
  repo.fresh <- repo.fresh + 1;
  Printf.sprintf "_mdr%d" repo.fresh

let store repo element =
  if Hashtbl.mem repo.table element.id then fail "duplicate xmi.id %s" element.id;
  Hashtbl.add repo.table element.id element;
  repo.order <- element.id :: repo.order

(* ------------------------------------------------------------------ *)
(* Import                                                              *)
(* ------------------------------------------------------------------ *)

let import_xmi repo doc =
  if repo.root <> None then fail "the repository already holds a model";
  let rec import parent node =
    match node with
    | X.Element (kind, attrs, kids) ->
        let required, allowed_children = metamodel_entry kind in
        List.iter
          (fun key ->
            if not (List.mem_assoc key attrs) then
              fail "<%s> is missing the required attribute %s" kind key)
          required;
        let id, synthetic_id =
          match List.assoc_opt "xmi.id" attrs with
          | Some id -> (id, false)
          | None -> (fresh_id repo, true)
        in
        let attributes = List.filter (fun (k, _) -> k <> "xmi.id") attrs in
        let child_elements =
          List.filter (function X.Element _ -> true | _ -> false) kids
        in
        List.iter
          (fun child ->
            let child_kind = X.name child in
            if not (List.mem child_kind allowed_children) then
              fail "<%s> may not own <%s>" kind child_kind)
          child_elements;
        let text =
          match
            List.filter_map
              (function
                | X.Text s | X.Cdata s -> if String.trim s = "" then None else Some s
                | _ -> None)
              kids
          with
          | [] -> None
          | parts -> Some (String.concat "" parts)
        in
        let children = List.map (import (Some id)) child_elements in
        store repo { id; kind; attributes; children; parent; text; synthetic_id };
        id
    | _ -> fail "only elements can be imported"
  in
  match doc with
  | X.Element ("XMI", _, _) -> repo.root <- Some (import None doc)
  | X.Element (kind, _, _) -> fail "expected an <XMI> document, found <%s>" kind
  | _ -> fail "expected an <XMI> document"

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let find repo id =
  match Hashtbl.find_opt repo.table id with
  | Some e -> e
  | None -> raise (Unknown_element id)

let find_opt repo id = Hashtbl.find_opt repo.table id

let export_xmi repo =
  match repo.root with
  | None -> fail "the repository is empty"
  | Some root ->
      let rec export id =
        let e = find repo id in
        let attrs =
          if e.synthetic_id then e.attributes
          else
            (* Re-insert xmi.id after any namespace declarations, matching
               writer output. *)
            let rec insert = function
              | (k, v) :: rest when String.length k >= 6 && String.sub k 0 6 = "xmlns:" ->
                  (k, v) :: insert rest
              | rest -> ("xmi.id", e.id) :: rest
            in
            insert e.attributes
        in
        let text_children = match e.text with Some s -> [ X.Text s ] | None -> [] in
        X.Element (e.kind, attrs, text_children @ List.map export e.children)
      in
      export root

(* ------------------------------------------------------------------ *)
(* Reflective access                                                   *)
(* ------------------------------------------------------------------ *)

let elements_of_kind repo kind =
  List.rev repo.order
  |> List.filter_map (fun id ->
         let e = find repo id in
         if e.kind = kind then Some e else None)

let attribute repo ~id key = List.assoc_opt key (find repo id).attributes

let set_attribute repo ~id ~key ~value =
  let e = find repo id in
  let attributes =
    if List.mem_assoc key e.attributes then
      List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) e.attributes
    else e.attributes @ [ (key, value) ]
  in
  Hashtbl.replace repo.table id { e with attributes }

let add_child repo ~parent child_id =
  let e = find repo parent in
  Hashtbl.replace repo.table parent { e with children = e.children @ [ child_id ] }

let set_tagged_value repo ~id ~tag ~value =
  let e = find repo id in
  let _, allowed = metamodel_entry e.kind in
  if not (List.mem "UML:ModelElement.taggedValue" allowed) then
    fail "<%s> elements cannot carry tagged values" e.kind;
  let wrapper_id =
    match
      List.find_opt
        (fun cid -> (find repo cid).kind = "UML:ModelElement.taggedValue")
        e.children
    with
    | Some cid -> cid
    | None ->
        let wrapper_id = fresh_id repo in
        store repo
          {
            id = wrapper_id;
            kind = "UML:ModelElement.taggedValue";
            attributes = [];
            children = [];
            parent = Some id;
            text = None;
            synthetic_id = true;
          };
        add_child repo ~parent:id wrapper_id;
        wrapper_id
  in
  let wrapper = find repo wrapper_id in
  let existing =
    List.find_opt
      (fun cid ->
        let child = find repo cid in
        child.kind = "UML:TaggedValue" && List.assoc_opt "tag" child.attributes = Some tag)
      wrapper.children
  in
  match existing with
  | Some cid -> set_attribute repo ~id:cid ~key:"value" ~value
  | None ->
      let tv_id = fresh_id repo in
      store repo
        {
          id = tv_id;
          kind = "UML:TaggedValue";
          attributes = [ ("tag", tag); ("value", value) ];
          children = [];
          parent = Some wrapper_id;
          text = None;
          synthetic_id = true;
        };
      add_child repo ~parent:wrapper_id tv_id

let size repo = Hashtbl.length repo.table
