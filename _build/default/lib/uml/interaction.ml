type message = { sender : string; receiver : string; msg_action : string }

type t = { interaction_name : string; messages : message list }

exception Invalid_interaction of string

let make ~name ~messages =
  if messages = [] then
    raise (Invalid_interaction (Printf.sprintf "interaction %s has no message" name));
  {
    interaction_name = name;
    messages =
      List.map (fun (sender, receiver, msg_action) -> { sender; receiver; msg_action }) messages;
  }

let allows interactions ~action o1 o2 =
  match interactions with
  | [] -> true
  | _ ->
      List.exists
        (fun i ->
          List.exists
            (fun m ->
              m.msg_action = action
              && ((m.sender = o1 && m.receiver = o2) || (m.sender = o2 && m.receiver = o1)))
            i.messages)
        interactions

let participants t =
  let seen = Hashtbl.create 8 in
  List.concat_map (fun m -> [ m.sender; m.receiver ]) t.messages
  |> List.filter (fun name ->
         if Hashtbl.mem seen name then false
         else begin
           Hashtbl.add seen name ();
           true
         end)
