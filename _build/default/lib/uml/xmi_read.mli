(** Parsing of XMI documents into UML model values.

    Accepts the dialect produced by {!Xmi_write}: XMI 1.2 carrying the
    UML 1.4 metamodel subset (activity graphs with object flow states,
    state machines with triggered transitions).  Unknown elements inside
    the document (e.g. tool-specific layout data that escaped the
    Poseidon preprocessor) are ignored rather than rejected, matching the
    tolerant behaviour of a metamodel-driven reader. *)

exception Xmi_error of string

val activities_of_xml : Xml_kit.Minixml.t -> Activity.t list
(** All activity graphs of the document, validated. *)

val statecharts_of_xml : Xml_kit.Minixml.t -> Statechart.t list
(** All state machines of the document, validated. *)

val activity_of_xml : Xml_kit.Minixml.t -> Activity.t
(** The unique activity graph; raises {!Xmi_error} if there is not
    exactly one. *)

val interactions_of_xml : Xml_kit.Minixml.t -> Interaction.t list
(** All [UML:Collaboration] interactions of the document. *)

val activity_of_string : string -> Activity.t
val activity_of_file : string -> Activity.t
val statecharts_of_string : string -> Statechart.t list
val statecharts_of_file : string -> Statechart.t list
