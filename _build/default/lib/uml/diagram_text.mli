(** A plain-text notation for the UML subset, so that models can be
    written and versioned without a drawing tool.  The Choreographer CLI
    accepts these files alongside XMI; {!to_string} and {!parse} round
    trip (tested).

    Grammar (comments run from ['%'] to end of line):
    {v
      document   ::= diagram*
      diagram    ::= "activity" Name "{" a-stmt* "}"
                   | "statechart" Name "{" s-stmt* "}"
                   | "interaction" Name "{" (name "->" name ":" action ";")* "}"

      a-stmt     ::= "initial" id ";" | "final" id ";"
                   | "decision" id ";" | "fork" id ";" | "join" id ";"
                   | "action" id (string)? ("move")? ";"
                   | "edge" id ("->" id)+ ";"
                   | "object" name ":" Class ";"
                   | "occ" id "=" name ("@" loc)? (string)? ";"
                   | id "->" id ";"        (flow or control edge by kind)

      s-stmt     ::= "initial" Name ";"
                   | "state" Name ";"
                   | Name "->" Name ":" trigger ("@" number)? ";"
    v}

    In an activity diagram, an [id -> id] line whose endpoints are an
    occurrence and an action state declares an object flow (direction by
    position); between two control nodes it is a control edge.  An
    action state's display name defaults to its identifier; the optional
    string overrides it (e.g. ["download file"]).  The optional string of
    an occurrence is the object's state decoration. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Activity.t list * Statechart.t list
val parse_file : string -> Activity.t list * Statechart.t list

val parse_document :
  string -> Activity.t list * Statechart.t list * Interaction.t list

val parse_document_file :
  string -> Activity.t list * Statechart.t list * Interaction.t list

val activity_to_string : Activity.t -> string
val statechart_to_string : Statechart.t -> string
val interaction_to_string : Interaction.t -> string
val document_to_string :
  ?interactions:Interaction.t list -> Activity.t list -> Statechart.t list -> string
