(** A miniature metadata repository, standing in for NetBeans MDR.

    The repository stores a UML model as a graph of elements keyed by
    [xmi.id], validated on import against a metamodel table (element
    kinds, their allowed children and required attributes) for the UML
    1.4 subset this tool chain manipulates.  It supports the operations
    the paper relies on: import of an XMI document into a metamodel
    instance, reflective navigation and update, and export back to XMI.

    Unlike a DOM, the repository rejects structurally invalid documents
    at import time, which is what made the paper's extractor trustworthy:
    downstream code only ever sees metamodel-conformant data. *)

type t

type element = {
  id : string;
  kind : string;                       (** e.g. ["UML:ActionState"] *)
  attributes : (string * string) list; (** excluding [xmi.id] *)
  children : string list;              (** ids of owned elements *)
  parent : string option;
  text : string option;                (** character data, for leaf
                                           documentation elements *)
  synthetic_id : bool;                 (** the element had no [xmi.id] in
                                           the source document; the id was
                                           generated and is omitted on
                                           export *)
}

exception Metamodel_violation of string
exception Unknown_element of string

val create : unit -> t

val import_xmi : t -> Xml_kit.Minixml.t -> unit
(** Validate and load a document.  Raises {!Metamodel_violation} when an
    element kind is unknown to the metamodel, appears under a parent that
    may not own it, lacks a required attribute, or reuses an [xmi.id].
    Tool-specific elements (e.g. Poseidon layout) are rejected — run the
    preprocessor first. *)

val export_xmi : t -> Xml_kit.Minixml.t
(** Serialise the repository contents back to an XMI document.  For a
    document that was imported unchanged, export is the identity up to
    insignificant whitespace (tested). *)

val find : t -> string -> element
(** Raises {!Unknown_element}. *)

val find_opt : t -> string -> element option

val elements_of_kind : t -> string -> element list
(** In document order. *)

val attribute : t -> id:string -> string -> string option

val set_attribute : t -> id:string -> key:string -> value:string -> unit
(** Reflective update of an element's attribute. *)

val set_tagged_value : t -> id:string -> tag:string -> value:string -> unit
(** Attach (or update) a [UML:TaggedValue] under the element's
    [UML:ModelElement.taggedValue] wrapper, creating the wrapper when
    needed — this is how reflected performance results are stored. *)

val size : t -> int
(** Number of stored elements. *)
