(** The Poseidon pre- and postprocessor of the paper's Figure 4.

    Poseidon for UML stored diagram layout in additional elements of the
    XMI file that do not conform to the UML metamodel, so a
    metamodel-driven repository rejects or loses them.  The preprocessor
    separates the metamodel-conformant part from the tool-specific part;
    after reflection the postprocessor merges the new structural
    information with the old layout data, reusing the original layout
    wherever possible.

    Tool-specific content is recognised by its namespace prefix
    ([Poseidon:] by default), wherever it occurs in the document. *)

val prefix : string
(** ["Poseidon:"]. *)

val strip : ?prefix:string -> Xml_kit.Minixml.t -> Xml_kit.Minixml.t
(** The preprocessor: remove every element whose name carries the
    tool prefix.  The result is pure metamodel-conformant XMI. *)

val layout_of : ?prefix:string -> Xml_kit.Minixml.t -> Xml_kit.Minixml.t list
(** The tool-specific elements of a document, in document order. *)

val merge : ?prefix:string -> original:Xml_kit.Minixml.t -> reflected:Xml_kit.Minixml.t -> unit -> Xml_kit.Minixml.t
(** The postprocessor: re-attach the [original] document's layout
    elements to the [reflected] document (appending them to
    [XMI.content], where Poseidon keeps them).  Layout entries that
    reference elements no longer present in the reflected document are
    dropped. *)

val synthesize_layout : Xml_kit.Minixml.t -> Xml_kit.Minixml.t
(** Generate a deterministic fake Poseidon layout section for a document
    (a [Poseidon:DiagramLayout] with one node entry per [xmi.id]).  Used
    by examples and tests to simulate files saved by the drawing
    tool. *)

val add_layout : Xml_kit.Minixml.t -> Xml_kit.Minixml.t
(** [add_layout doc] appends {!synthesize_layout} output to the
    document's [XMI.content], producing a simulated Poseidon project
    file. *)
