(** Serialisation of UML models to XMI 1.2 documents conforming to the
    UML 1.4 metamodel subset used by the tool chain (activity graphs and
    state machines).  {!Xmi_read} parses exactly this dialect, and the
    round trip is the identity on the model types (tested). *)

val activity_to_xml : Activity.t -> Xml_kit.Minixml.t
(** An [<XMI>] document whose content is a [UML:Model] holding one
    [UML:ActivityGraph].  Mobility stereotypes, [atloc] tags and
    reflected annotations are emitted as [UML:Stereotype] /
    [UML:TaggedValue] elements. *)

val statecharts_to_xml : Statechart.t list -> Xml_kit.Minixml.t
(** One [UML:StateMachine] per chart under a shared [UML:Model]. *)

val document_to_xml :
  ?model_name:string ->
  ?interactions:Interaction.t list ->
  Activity.t list ->
  Statechart.t list ->
  Xml_kit.Minixml.t
(** A combined model: UML projects typically contain diagrams of several
    different types.  Interactions are emitted as [UML:Collaboration]
    elements carrying [UML:Message]s. *)

val activity_to_string : Activity.t -> string
val statecharts_to_string : Statechart.t list -> string
