type state = { state_id : string; state_name : string }

type transition = {
  transition_id : string;
  source : string;
  target : string;
  trigger : string;
  rate : float option;
}

type t = {
  chart_name : string;
  states : state list;
  transitions : transition list;
  initial : string;
  state_annotations : (string * (string * string) list) list;
}

exception Invalid_chart of string

let fail fmt = Format.kasprintf (fun msg -> raise (Invalid_chart msg)) fmt

let validate c =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.state_id then fail "duplicate state id %s" s.state_id
      else Hashtbl.add seen s.state_id ())
    c.states;
  let names = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem names s.state_name then fail "duplicate state name %s" s.state_name
      else Hashtbl.add names s.state_name ())
    c.states;
  let exists id = List.exists (fun s -> s.state_id = id) c.states in
  List.iter
    (fun t ->
      if not (exists t.source) then
        fail "transition %s has unknown source %s" t.transition_id t.source;
      if not (exists t.target) then
        fail "transition %s has unknown target %s" t.transition_id t.target)
    c.transitions;
  if not (exists c.initial) then fail "unknown initial state %s" c.initial;
  if c.states = [] then fail "chart %s has no state" c.chart_name

let make ~name ~states ~transitions ?initial () =
  let state_records =
    List.mapi (fun i n -> { state_id = Printf.sprintf "%s_s%d" name (i + 1); state_name = n }) states
  in
  let id_of n =
    match List.find_opt (fun s -> s.state_name = n) state_records with
    | Some s -> s.state_id
    | None -> fail "chart %s: unknown state %s" name n
  in
  let transition_records =
    List.mapi
      (fun i (src, dst, trigger, rate) ->
        {
          transition_id = Printf.sprintf "%s_t%d" name (i + 1);
          source = id_of src;
          target = id_of dst;
          trigger;
          rate;
        })
      transitions
  in
  let initial =
    match initial with
    | Some n -> id_of n
    | None -> (
        match state_records with
        | s :: _ -> s.state_id
        | [] -> fail "chart %s has no state" name)
  in
  let chart =
    {
      chart_name = name;
      states = state_records;
      transitions = transition_records;
      initial;
      state_annotations = [];
    }
  in
  validate chart;
  chart

let state_names c = List.map (fun s -> s.state_name) c.states

let alphabet c =
  List.sort_uniq String.compare (List.map (fun t -> t.trigger) c.transitions)

let find_state_by_name c name = List.find_opt (fun s -> s.state_name = name) c.states

let annotate c ~state_id ~tag ~value =
  let existing = Option.value ~default:[] (List.assoc_opt state_id c.state_annotations) in
  let updated = (tag, value) :: List.remove_assoc tag existing in
  {
    c with
    state_annotations = (state_id, updated) :: List.remove_assoc state_id c.state_annotations;
  }

let annotation c ~state_id ~tag =
  Option.bind (List.assoc_opt state_id c.state_annotations) (List.assoc_opt tag)
