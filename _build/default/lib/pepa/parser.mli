(** Parser for the concrete PEPA syntax.

    The accepted language (comments are [%]-to-end-of-line,
    [//]-to-end-of-line or [/* ... */]):
    {v
      model      ::= definition* ("system" expr ";")?
      definition ::= Uident "=" expr ";"        (process definition)
                   | lident "=" rate-expr ";"   (rate parameter)
      expr       ::= expr "<" lident,* ">" expr (cooperation, left assoc)
                   | expr "+" expr              (choice, left assoc)
                   | expr "/" "{" lident,* "}"  (hiding)
                   | expr "[" int "]"           (replication)
                   | "(" (lident|"tau") "," rate-expr ")" "." expr   (prefix)
                   | "(" expr ")" | Uident | "Stop"
      rate-expr  ::= usual arithmetic over numbers and lidents,
                     plus "infty" and "infty[" number "]"
    v}
    Process constants start with an upper-case letter, rate parameters
    and action types with a lower-case letter, following the classical
    PEPA convention.  If no [system] directive is present the last
    process definition is taken as the system equation. *)

exception Parse_error of { line : int; col : int; message : string }

val model_of_string : string -> Syntax.model
val model_of_file : string -> Syntax.model

val expr_of_string : string -> Syntax.expr
(** Parse a single process expression (for tests and embedding). *)

val rate_expr_of_string : string -> Syntax.rate_expr

(** {1 Token-stream interface}

    The PEPA nets parser extends this grammar with net-level constructs
    (places, cells, net transitions) and reuses the lexer and the
    expression sub-parsers through this interface. *)

type token =
  | Uident of string
  | Lident of string
  | Number of float
  | Integer of int
  | Kw_stop
  | Kw_tau
  | Kw_infty
  | Kw_system
  | Equals
  | Semicolon
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Langle
  | Rangle
  | Comma
  | Dot
  | Plus
  | Minus
  | Star
  | Slash
  | Eof

type stream

val token_to_string : token -> string
val stream_of_string : string -> stream
val stream_peek : stream -> token
val stream_peek_at : stream -> int -> token
val stream_advance : stream -> unit
val stream_expect : stream -> token -> string -> unit
val stream_error : stream -> string -> 'a
val parse_expr_at : stream -> Syntax.expr
val parse_rate_expr_at : stream -> Syntax.rate_expr
val parse_action_set_at : stream -> Syntax.String_set.t
(** Parse a comma-separated (possibly empty) action-name list; stops
    before the closing ['>'] or ['}']. *)
