(** Activity (action) types.

    PEPA activities carry an action type drawn from a countable set of
    names, plus the distinguished silent type [tau] produced by hiding.
    [tau] never appears in cooperation sets. *)

type t = Tau | Act of string

val tau : t
val act : string -> t
(** Raises [Invalid_argument] on the empty string or the reserved name
    ["tau"] (write {!tau} explicitly instead). *)

val is_tau : t -> bool
val name : t -> string option
(** The action-type name, [None] for [tau]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
