open Syntax

type move = { action : Action.t; rate : Rate.t; deltas : (int * int) list }

let leaf_moves compiled state leaf comp =
  let component = compiled.Compile.components.(comp) in
  Array.to_list component.Compile.local_moves.(state.(leaf))
  |> List.map (fun (action, rate, target) -> { action; rate; deltas = [ (leaf, target) ] })

(* Apparent rate of a named action in a subtree. *)
let rec apparent_in compiled state structure name =
  match structure with
  | Compile.Leaf { leaf; comp } ->
      let component = compiled.Compile.components.(comp) in
      Array.fold_left
        (fun acc (action, rate, _) ->
          match action with
          | Action.Act n when n = name -> Rate.sum acc rate
          | Action.Act _ | Action.Tau -> acc)
        Rate.zero
        component.Compile.local_moves.(state.(leaf))
  | Compile.Hide (inner, set) ->
      if String_set.mem name set then Rate.zero else apparent_in compiled state inner name
  | Compile.Coop (left, set, right) ->
      let ra_left = apparent_in compiled state left name in
      let ra_right = apparent_in compiled state right name in
      if String_set.mem name set then Rate.min_rate ra_left ra_right
      else Rate.sum ra_left ra_right

let rec structure_moves compiled state structure =
  match structure with
  | Compile.Leaf { leaf; comp } -> leaf_moves compiled state leaf comp
  | Compile.Hide (inner, set) ->
      List.map
        (fun move ->
          match move.action with
          | Action.Act n when String_set.mem n set -> { move with action = Action.Tau }
          | Action.Act _ | Action.Tau -> move)
        (structure_moves compiled state inner)
  | Compile.Coop (left, set, right) ->
      let left_moves = structure_moves compiled state left in
      let right_moves = structure_moves compiled state right in
      let shared action =
        match action with Action.Act n -> String_set.mem n set | Action.Tau -> false
      in
      let solo =
        List.filter (fun m -> not (shared m.action)) left_moves
        @ List.filter (fun m -> not (shared m.action)) right_moves
      in
      let synchronised =
        String_set.fold
          (fun name acc ->
            let lefts =
              List.filter (fun m -> Action.equal m.action (Action.Act name)) left_moves
            in
            let rights =
              List.filter (fun m -> Action.equal m.action (Action.Act name)) right_moves
            in
            if lefts = [] || rights = [] then acc
            else begin
              let apparent1 = apparent_in compiled state left name in
              let apparent2 = apparent_in compiled state right name in
              List.concat_map
                (fun ml ->
                  List.map
                    (fun mr ->
                      {
                        action = Action.Act name;
                        rate = Rate.cooperation ml.rate ~apparent1 mr.rate ~apparent2;
                        deltas = ml.deltas @ mr.deltas;
                      })
                    rights)
                lefts
              @ acc
            end)
          set []
      in
      solo @ synchronised

let moves compiled state = structure_moves compiled state compiled.Compile.structure

let apparent_rate compiled state name =
  apparent_in compiled state compiled.Compile.structure name

let apply state deltas =
  let next = Array.copy state in
  List.iter (fun (leaf, local) -> next.(leaf) <- local) deltas;
  next

let enabled_actions compiled state =
  List.fold_left
    (fun acc move -> Action.Set.add move.action acc)
    Action.Set.empty (moves compiled state)
