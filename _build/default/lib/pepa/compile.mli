(** Compilation of a checked model to the static-structure representation
    used by the semantics.

    The cooperation/hiding structure of a PEPA model never changes during
    evolution; only the sequential components at its leaves move between
    their derivatives.  Compilation therefore produces:

    - one {!component} (a local labelled transition system) per distinct
      sequential behaviour, shared between leaves with the same initial
      term;
    - a {!structure} tree of cooperation and hiding nodes over leaves;
    - the initial local state of every leaf.

    A global state of the model is an [int array] giving each leaf's
    current local state index. *)

(** Resolved sequential terms: rates are evaluated, constants are kept
    for naming but always resolvable. *)
type lterm =
  | Lstop
  | Lprefix of Action.t * Rate.t * lterm
  | Lchoice of lterm * lterm
  | Lvar of string

type component = {
  root_label : string;  (** printable name of the defining term *)
  states : lterm array;
  labels : string array;  (** printable name per local state *)
  local_moves : (Action.t * Rate.t * int) array array;
      (** [local_moves.(s)] lists the activities enabled in local state
          [s] with their target local state *)
}

type structure =
  | Leaf of { leaf : int; comp : int }
  | Coop of structure * Syntax.String_set.t * structure
  | Hide of structure * Syntax.String_set.t

type t = private {
  env : Env.t;
  components : component array;
  structure : structure;
  leaf_component : int array;  (** component index per leaf *)
  initial : int array;         (** initial local state per leaf *)
}

exception Compile_error of string
(** Unguarded recursion ([P = P + ...]) and similar construction-time
    failures. *)

val compile : Env.t -> t
val of_model : Syntax.model -> t
val of_string : string -> t
(** Parse, check and compile in one step. *)

val n_leaves : t -> int
val initial_state : t -> int array

val state_label : t -> int array -> string
(** Human-readable rendering of a global state, e.g.
    ["(File, FileReader)"]. *)

val local_label : t -> leaf:int -> local:int -> string

val leaf_labels : t -> string array
(** A short name per leaf (the root label of its component, disambiguated
    with an index when repeated). *)

val seq_term_of_expr : Env.t -> Syntax.expr -> lterm
(** Resolve a sequential expression (exposed for the PEPA nets layer,
    which compiles token behaviours with the same machinery). *)

val build_component : Env.t -> lterm -> component
(** Build the local LTS of a sequential term, raising {!Compile_error}
    on unguarded recursion. *)
