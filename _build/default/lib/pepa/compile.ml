open Syntax

type lterm =
  | Lstop
  | Lprefix of Action.t * Rate.t * lterm
  | Lchoice of lterm * lterm
  | Lvar of string

type component = {
  root_label : string;
  states : lterm array;
  labels : string array;
  local_moves : (Action.t * Rate.t * int) array array;
}

type structure =
  | Leaf of { leaf : int; comp : int }
  | Coop of structure * String_set.t * structure
  | Hide of structure * String_set.t

type t = {
  env : Env.t;
  components : component array;
  structure : structure;
  leaf_component : int array;
  initial : int array;
}

exception Compile_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Compile_error msg)) fmt

(* ------------------------------------------------------------------ *)
(* Sequential terms                                                    *)
(* ------------------------------------------------------------------ *)

let rec seq_term_of_expr env expr =
  match expr with
  | Stop -> Lstop
  | Var name ->
      if Env.is_sequential env name then Lvar name
      else fail "constant %s is model-level and cannot appear inside a sequential term" name
  | Prefix (action, rate, cont) ->
      Lprefix (action, Env.eval_rate env rate, seq_term_of_expr env cont)
  | Choice (a, b) -> Lchoice (seq_term_of_expr env a, seq_term_of_expr env b)
  | Coop _ | Hide _ | Array_rep _ ->
      fail "cooperation, hiding and replication cannot appear inside a sequential term"

let rec lterm_label = function
  | Lstop -> "Stop"
  | Lvar name -> name
  | Lprefix (action, rate, cont) ->
      Printf.sprintf "(%s, %s).%s" (Action.to_string action) (Rate.to_string rate)
        (lterm_label cont)
  | Lchoice (a, b) -> Printf.sprintf "%s + %s" (lterm_label a) (lterm_label b)

(* One-step derivatives of a sequential term.  Constants unfold on the
   fly; a cycle of constants with no intervening prefix is unguarded
   recursion. *)
let term_moves env term =
  let rec go visited = function
    | Lstop -> []
    | Lprefix (action, rate, cont) -> [ (action, rate, cont) ]
    | Lchoice (a, b) -> go visited a @ go visited b
    | Lvar name ->
        if String_set.mem name visited then
          fail "unguarded recursion through constant %s" name
        else go (String_set.add name visited) (seq_term_of_expr env (Env.lookup_process env name))
  in
  go String_set.empty term

let build_component env root =
  let states = Hashtbl.create 16 in
  let order = ref [] in
  let count = ref 0 in
  let intern term =
    match Hashtbl.find_opt states term with
    | Some index -> (index, false)
    | None ->
        let index = !count in
        Hashtbl.add states term index;
        order := term :: !order;
        incr count;
        (index, true)
  in
  let moves_table = Hashtbl.create 16 in
  let rec explore term =
    let index, fresh = intern term in
    if fresh then begin
      let moves =
        List.map
          (fun (action, rate, target) ->
            let target_index = explore target in
            (action, rate, target_index))
          (term_moves env term)
      in
      Hashtbl.replace moves_table index moves
    end;
    index
  in
  ignore (explore root);
  let states_arr = Array.of_list (List.rev !order) in
  let labels = Array.map lterm_label states_arr in
  let local_moves =
    Array.init (Array.length states_arr) (fun i ->
        Array.of_list (Hashtbl.find moves_table i))
  in
  { root_label = lterm_label root; states = states_arr; labels; local_moves }

(* ------------------------------------------------------------------ *)
(* Model structure                                                     *)
(* ------------------------------------------------------------------ *)

let compile env =
  let components = ref [] in
  let component_index = Hashtbl.create 8 in
  let n_components = ref 0 in
  let leaf_comps = ref [] in
  let initials = ref [] in
  let n_leaves = ref 0 in
  let add_leaf root =
    let comp =
      match Hashtbl.find_opt component_index root with
      | Some comp -> comp
      | None ->
          let comp = !n_components in
          Hashtbl.add component_index root comp;
          components := build_component env root :: !components;
          incr n_components;
          comp
    in
    let leaf = !n_leaves in
    incr n_leaves;
    leaf_comps := comp :: !leaf_comps;
    (* The root term is always interned first, so its index is 0. *)
    initials := 0 :: !initials;
    Leaf { leaf; comp }
  in
  (* Inline model-level constants; recursion through them was rejected by
     Env, so this terminates. *)
  let rec build expr =
    match expr with
    | Var name when not (Env.is_sequential env name) ->
        build (Env.lookup_process env name)
    | Var _ | Stop | Prefix _ | Choice _ -> add_leaf (seq_term_of_expr env expr)
    | Coop (a, set, b) ->
        let left = build a in
        let right = build b in
        Coop (left, set, right)
    | Hide (p, set) -> Hide (build p, set)
    | Array_rep (p, count) ->
        let rec replicate k =
          if k = 1 then build p else Coop (build p, String_set.empty, replicate (k - 1))
        in
        replicate count
  in
  let structure = build (Env.system env) in
  {
    env;
    components = Array.of_list (List.rev !components);
    structure;
    leaf_component = Array.of_list (List.rev !leaf_comps);
    initial = Array.of_list (List.rev !initials);
  }

let of_model model = compile (Env.of_model model)
let of_string src = of_model (Parser.model_of_string src)

let n_leaves t = Array.length t.initial
let initial_state t = Array.copy t.initial

let local_label t ~leaf ~local = t.components.(t.leaf_component.(leaf)).labels.(local)

let state_label t vec =
  let parts =
    Array.to_list (Array.mapi (fun leaf local -> local_label t ~leaf ~local) vec)
  in
  "(" ^ String.concat ", " parts ^ ")"

let leaf_labels t =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun comp ->
      let label = t.components.(comp).root_label in
      Hashtbl.replace counts label (1 + Option.value ~default:0 (Hashtbl.find_opt counts label)))
    t.leaf_component;
  let seen = Hashtbl.create 8 in
  Array.map
    (fun comp ->
      let label = t.components.(comp).root_label in
      if Hashtbl.find counts label = 1 then label
      else begin
        let k = 1 + Option.value ~default:0 (Hashtbl.find_opt seen label) in
        Hashtbl.replace seen label k;
        Printf.sprintf "%s#%d" label k
      end)
    t.leaf_component
