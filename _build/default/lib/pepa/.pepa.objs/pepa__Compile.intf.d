lib/pepa/compile.mli: Action Env Rate Syntax
