lib/pepa/statespace.mli: Action Compile Format Markov Syntax
