lib/pepa/parser.mli: Syntax
