lib/pepa/equivalence.mli: Action Markov Statespace
