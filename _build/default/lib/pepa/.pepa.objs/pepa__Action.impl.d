lib/pepa/action.ml: Format Set String
