lib/pepa/analysis.mli: Format Statespace
