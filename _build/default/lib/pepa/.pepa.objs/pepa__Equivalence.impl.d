lib/pepa/equivalence.ml: Action Array Float Hashtbl List Markov Option Statespace
