lib/pepa/statespace.ml: Action Array Compile Format Hashtbl List Markov Queue Rate Semantics String
