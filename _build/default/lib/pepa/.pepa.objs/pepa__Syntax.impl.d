lib/pepa/syntax.ml: Action List Set String
