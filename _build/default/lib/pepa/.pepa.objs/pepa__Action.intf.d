lib/pepa/action.mli: Format Set
