lib/pepa/semantics.mli: Action Compile Rate
