lib/pepa/syntax.mli: Action Set
