lib/pepa/printer.ml: Action Format List String String_set Syntax
