lib/pepa/rate.ml: Float Format Printf
