lib/pepa/compile.ml: Action Array Env Format Hashtbl List Option Parser Printf Rate String String_set Syntax
