lib/pepa/rate.mli: Format
