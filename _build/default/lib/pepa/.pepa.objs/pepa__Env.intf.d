lib/pepa/env.mli: Rate Syntax
