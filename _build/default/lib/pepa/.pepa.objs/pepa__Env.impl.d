lib/pepa/env.ml: Action Float Format List Map Printf Rate String String_set Syntax
