lib/pepa/parser.ml: Action Array Buffer Fun List Printf String String_set Syntax
