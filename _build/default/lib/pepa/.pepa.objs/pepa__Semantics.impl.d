lib/pepa/semantics.ml: Action Array Compile List Rate String_set Syntax
