lib/pepa/printer.mli: Format Syntax
