lib/pepa/analysis.ml: Action Array Format Hashtbl List Markov Queue Statespace String
