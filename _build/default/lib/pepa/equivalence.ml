type partition = { n_blocks : int; block_of_state : int array; representatives : int array }

(* Signature of a state under a candidate partition: the total rate to
   each (action, block) pair, sorted.  Rates are rounded to a fixed
   number of significant digits so that floating-point noise from rate
   arithmetic does not split genuinely equivalent states. *)
let round_rate r =
  if r = 0.0 then 0.0
  else
    let magnitude = 10.0 ** (12.0 -. Float.round (log10 (abs_float r))) in
    Float.round (r *. magnitude) /. magnitude

let signature space block_of_state s =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun tr ->
      let key = (tr.Statespace.action, block_of_state.(tr.Statespace.dst)) in
      let existing = Option.value ~default:0.0 (Hashtbl.find_opt totals key) in
      Hashtbl.replace totals key (existing +. tr.Statespace.rate))
    (Statespace.transitions_from space s);
  Hashtbl.fold (fun (action, block) rate acc -> (action, block, round_rate rate) :: acc) totals []
  |> List.sort compare

let refine space block_of_state =
  let n = Statespace.n_states space in
  let keys = Hashtbl.create n in
  let next = Array.make n (-1) in
  let count = ref 0 in
  for s = 0 to n - 1 do
    (* A state may only stay with states of its current block that also
       share its signature. *)
    let key = (block_of_state.(s), signature space block_of_state s) in
    match Hashtbl.find_opt keys key with
    | Some b -> next.(s) <- b
    | None ->
        Hashtbl.add keys key !count;
        next.(s) <- !count;
        incr count
  done;
  (next, !count)

let strong_equivalence space =
  let n = Statespace.n_states space in
  let block_of_state = ref (Array.make n 0) in
  let n_blocks = ref (min 1 n) in
  let changed = ref true in
  while !changed do
    let next, count = refine space !block_of_state in
    changed := count <> !n_blocks;
    block_of_state := next;
    n_blocks := count
  done;
  let representatives = Array.make !n_blocks (-1) in
  Array.iteri
    (fun s b -> if representatives.(b) = -1 then representatives.(b) <- s)
    !block_of_state;
  { n_blocks = !n_blocks; block_of_state = !block_of_state; representatives }

let initial_block partition = partition.block_of_state.(0)

type lumped = {
  partition : partition;
  transitions : (int * Action.t * float * int) list;
  chain : Markov.Ctmc.t;
}

let lump space =
  let partition = strong_equivalence space in
  let transitions =
    Array.to_list partition.representatives
    |> List.concat_map (fun representative ->
           let block = partition.block_of_state.(representative) in
           (* Aggregate the representative's moves per (action, block). *)
           let totals = Hashtbl.create 8 in
           List.iter
             (fun tr ->
               let key =
                 (tr.Statespace.action, partition.block_of_state.(tr.Statespace.dst))
               in
               let existing = Option.value ~default:0.0 (Hashtbl.find_opt totals key) in
               Hashtbl.replace totals key (existing +. tr.Statespace.rate))
             (Statespace.transitions_from space representative);
           Hashtbl.fold
             (fun (action, target) rate acc -> (block, action, rate, target) :: acc)
             totals [])
  in
  let chain =
    Markov.Ctmc.of_transitions ~n:partition.n_blocks
      (List.map (fun (b, _, r, b') -> (b, b', r)) transitions)
  in
  { partition; transitions; chain }

let lumped_steady_state ?method_ lumped = Markov.Steady.solve ?method_ lumped.chain

let lumped_throughput lumped pi name =
  List.fold_left
    (fun acc (block, action, rate, _) ->
      match action with
      | Action.Act n when n = name -> acc +. (pi.(block) *. rate)
      | Action.Act _ | Action.Tau -> acc)
    0.0 lumped.transitions

let block_probability_of_state lumped pi s = pi.(lumped.partition.block_of_state.(s))
