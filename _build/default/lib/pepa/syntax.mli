(** Abstract syntax of PEPA models.

    The grammar follows the PEPA Workbench:
    {v
      S ::= (alpha, r).S  |  S + S  |  I           sequential components
      P ::= P <L> P  |  P / {L}  |  P[n]  |  I  |  S    model components
    v}
    The parser produces a single [expr] type; classification into
    sequential and model-level terms happens in {!Env}. *)

module String_set : Set.S with type elt = string

(** Rate expressions: arithmetic over literals and named rate
    parameters, plus the passive rate. *)
type rate_expr =
  | Rnum of float
  | Rvar of string
  | Rpassive of float  (** passive with the given weight *)
  | Radd of rate_expr * rate_expr
  | Rsub of rate_expr * rate_expr
  | Rmul of rate_expr * rate_expr
  | Rdiv of rate_expr * rate_expr

type expr =
  | Stop                                   (** the deadlocked component *)
  | Var of string
  | Prefix of Action.t * rate_expr * expr
  | Choice of expr * expr
  | Coop of expr * String_set.t * expr     (** [P <L> Q]; empty set = parallel *)
  | Hide of expr * String_set.t
  | Array_rep of expr * int                (** [P\[n\]]: n independent copies *)

type definition = Rate_def of string * rate_expr | Proc_def of string * expr

type model = {
  definitions : definition list;
  system : expr;  (** the system equation to analyse *)
}

val rate_vars : rate_expr -> String_set.t
(** Named rate parameters referenced by a rate expression. *)

val free_vars : expr -> String_set.t
(** Process constants referenced by an expression. *)

val actions : expr -> Action.Set.t
(** Action types syntactically occurring in prefixes of an expression
    (not following constant references). *)

val is_sequential_shape : expr -> bool
(** Whether the expression uses only sequential operators (prefix,
    choice, constants, [Stop]); constant references are not chased. *)

val equal_expr : expr -> expr -> bool
(** Structural equality (action-set contents, not representation). *)

val equal_model : model -> model -> bool

val defined_names : model -> String_set.t
