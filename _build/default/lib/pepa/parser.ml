open Syntax

exception Parse_error of { line : int; col : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Uident of string
  | Lident of string
  | Number of float
  | Integer of int
  | Kw_stop
  | Kw_tau
  | Kw_infty
  | Kw_system
  | Equals
  | Semicolon
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Langle
  | Rangle
  | Comma
  | Dot
  | Plus
  | Minus
  | Star
  | Slash
  | Eof

type spanned = { token : token; line : int; col : int }

let token_to_string = function
  | Uident s | Lident s -> Printf.sprintf "%S" s
  | Number v -> Printf.sprintf "%g" v
  | Integer v -> string_of_int v
  | Kw_stop -> "Stop"
  | Kw_tau -> "tau"
  | Kw_infty -> "infty"
  | Kw_system -> "system"
  | Equals -> "'='"
  | Semicolon -> "';'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Langle -> "'<'"
  | Rangle -> "'>'"
  | Comma -> "','"
  | Dot -> "'.'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Eof -> "end of input"

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_char c = is_alpha c || is_digit c || c = '_' || c = '\''

let tokenize src =
  let tokens = ref [] in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let n = String.length src in
  let fail message = raise (Parse_error { line = !line; col = !col; message }) in
  let push token line col = tokens := { token; line; col } :: !tokens in
  let advance () =
    if !pos < n then begin
      if src.[!pos] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr pos
    end
  in
  let peek k = if !pos + k < n then src.[!pos + k] else '\000' in
  while !pos < n do
    let c = src.[!pos] in
    let tok_line = !line and tok_col = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '%' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = '/' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if c = '/' && peek 1 = '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while not !closed do
        if !pos >= n then fail "unterminated comment"
        else if src.[!pos] = '*' && peek 1 = '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done
    end
    else if is_digit c then begin
      let buf = Buffer.create 8 in
      let is_float = ref false in
      while is_digit (peek 0) do
        Buffer.add_char buf (peek 0);
        advance ()
      done;
      if peek 0 = '.' && is_digit (peek 1) then begin
        is_float := true;
        Buffer.add_char buf '.';
        advance ();
        while is_digit (peek 0) do
          Buffer.add_char buf (peek 0);
          advance ()
        done
      end;
      if peek 0 = 'e' || peek 0 = 'E' then begin
        is_float := true;
        Buffer.add_char buf 'e';
        advance ();
        if peek 0 = '+' || peek 0 = '-' then begin
          Buffer.add_char buf (peek 0);
          advance ()
        end;
        if not (is_digit (peek 0)) then fail "malformed exponent";
        while is_digit (peek 0) do
          Buffer.add_char buf (peek 0);
          advance ()
        done
      end;
      let text = Buffer.contents buf in
      if !is_float then push (Number (float_of_string text)) tok_line tok_col
      else push (Integer (int_of_string text)) tok_line tok_col
    end
    else if is_alpha c || c = '_' then begin
      let buf = Buffer.create 8 in
      while is_ident_char (peek 0) do
        Buffer.add_char buf (peek 0);
        advance ()
      done;
      let word = Buffer.contents buf in
      let token =
        match word with
        | "Stop" -> Kw_stop
        | "tau" -> Kw_tau
        | "infty" -> Kw_infty
        | "system" -> Kw_system
        | _ ->
            if (word.[0] >= 'A' && word.[0] <= 'Z') then Uident word else Lident word
      in
      push token tok_line tok_col
    end
    else begin
      let simple token =
        advance ();
        push token tok_line tok_col
      in
      match c with
      | '=' -> simple Equals
      | ';' -> simple Semicolon
      | '(' -> simple Lparen
      | ')' -> simple Rparen
      | '{' -> simple Lbrace
      | '}' -> simple Rbrace
      | '[' -> simple Lbracket
      | ']' -> simple Rbracket
      | '<' -> simple Langle
      | '>' -> simple Rangle
      | ',' -> simple Comma
      | '.' -> simple Dot
      | '+' -> simple Plus
      | '-' -> simple Minus
      | '*' -> simple Star
      | '/' -> simple Slash
      | c -> fail (Printf.sprintf "unexpected character %C" c)
    end
  done;
  push Eof !line !col;
  Array.of_list (List.rev !tokens)

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type state = { tokens : spanned array; mutable index : int }

let current st = st.tokens.(st.index)
let peek_token st = (current st).token

let peek_token_at st k =
  let i = min (st.index + k) (Array.length st.tokens - 1) in
  st.tokens.(i).token

let error st message =
  let { line; col; _ } = current st in
  raise (Parse_error { line; col; message })

let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let expect st token what =
  if peek_token st = token then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" what (token_to_string (peek_token st)))

(* ------------------------------------------------------------------ *)
(* Rate expressions                                                    *)
(* ------------------------------------------------------------------ *)

let rec parse_rate_expr st =
  let left = ref (parse_rate_term st) in
  let continue = ref true in
  while !continue do
    match peek_token st with
    | Plus ->
        advance st;
        left := Radd (!left, parse_rate_term st)
    | Minus ->
        advance st;
        left := Rsub (!left, parse_rate_term st)
    | _ -> continue := false
  done;
  !left

and parse_rate_term st =
  let left = ref (parse_rate_factor st) in
  let continue = ref true in
  while !continue do
    match peek_token st with
    | Star ->
        advance st;
        left := Rmul (!left, parse_rate_factor st)
    | Slash ->
        advance st;
        left := Rdiv (!left, parse_rate_factor st)
    | _ -> continue := false
  done;
  !left

and parse_rate_factor st =
  match peek_token st with
  | Number v ->
      advance st;
      Rnum v
  | Integer v ->
      advance st;
      Rnum (float_of_int v)
  | Lident name ->
      advance st;
      Rvar name
  | Kw_infty ->
      advance st;
      if peek_token st = Lbracket then begin
        advance st;
        let weight =
          match peek_token st with
          | Number v ->
              advance st;
              v
          | Integer v ->
              advance st;
              float_of_int v
          | _ -> error st "expected a numeric passive weight"
        in
        expect st Rbracket "']'";
        Rpassive weight
      end
      else Rpassive 1.0
  | Lparen ->
      advance st;
      let e = parse_rate_expr st in
      expect st Rparen "')'";
      e
  | t -> error st (Printf.sprintf "expected a rate expression but found %s" (token_to_string t))

(* ------------------------------------------------------------------ *)
(* Process expressions                                                 *)
(* ------------------------------------------------------------------ *)

let parse_action_name st =
  match peek_token st with
  | Lident name ->
      advance st;
      Action.act name
  | Kw_tau ->
      advance st;
      Action.tau
  | t -> error st (Printf.sprintf "expected an action name but found %s" (token_to_string t))

let parse_action_set st =
  let rec loop acc =
    match peek_token st with
    | Lident name ->
        advance st;
        let acc = String_set.add name acc in
        if peek_token st = Comma then begin
          advance st;
          loop acc
        end
        else acc
    | t -> error st (Printf.sprintf "expected an action name but found %s" (token_to_string t))
  in
  match peek_token st with
  | Rangle | Rbrace -> String_set.empty
  | _ -> loop String_set.empty

(* Cooperation (weakest) > choice > postfix (hiding, replication) > atom. *)
let rec parse_expr st =
  let left = ref (parse_choice st) in
  while peek_token st = Langle do
    advance st;
    let set = parse_action_set st in
    expect st Rangle "'>'";
    let right = parse_choice st in
    left := Coop (!left, set, right)
  done;
  !left

and parse_choice st =
  let left = ref (parse_postfix st) in
  while peek_token st = Plus do
    advance st;
    let right = parse_postfix st in
    left := Choice (!left, right)
  done;
  !left

and parse_postfix st =
  let e = ref (parse_atom st) in
  let continue = ref true in
  while !continue do
    match peek_token st with
    | Slash ->
        advance st;
        expect st Lbrace "'{'";
        let set = parse_action_set st in
        expect st Rbrace "'}'";
        e := Hide (!e, set)
    | Lbracket ->
        advance st;
        let count =
          match peek_token st with
          | Integer v when v > 0 ->
              advance st;
              v
          | _ -> error st "expected a positive replication count"
        in
        expect st Rbracket "']'";
        e := Array_rep (!e, count)
    | _ -> continue := false
  done;
  !e

and parse_atom st =
  match peek_token st with
  | Kw_stop ->
      advance st;
      Stop
  | Uident name ->
      advance st;
      Var name
  | Lparen -> (
      (* Distinguish an activity prefix "(a, r)." from grouping "(P)". *)
      match (peek_token_at st 1, peek_token_at st 2) with
      | (Lident _ | Kw_tau), Comma ->
          advance st;
          let action = parse_action_name st in
          expect st Comma "','";
          let rate = parse_rate_expr st in
          expect st Rparen "')'";
          expect st Dot "'.'";
          let cont = parse_postfix st in
          Prefix (action, rate, cont)
      | _ ->
          advance st;
          let e = parse_expr st in
          expect st Rparen "')'";
          e)
  | t -> error st (Printf.sprintf "expected a process expression but found %s" (token_to_string t))

(* ------------------------------------------------------------------ *)
(* Models                                                              *)
(* ------------------------------------------------------------------ *)

let parse_model st =
  let definitions = ref [] in
  let system = ref None in
  let continue = ref true in
  while !continue do
    match peek_token st with
    | Eof -> continue := false
    | Kw_system ->
        advance st;
        let e = parse_expr st in
        expect st Semicolon "';'";
        if !system <> None then error st "duplicate system directive";
        system := Some e
    | Uident name ->
        advance st;
        expect st Equals "'='";
        let body = parse_expr st in
        expect st Semicolon "';'";
        definitions := Proc_def (name, body) :: !definitions
    | Lident name ->
        advance st;
        expect st Equals "'='";
        let body = parse_rate_expr st in
        expect st Semicolon "';'";
        definitions := Rate_def (name, body) :: !definitions
    | t ->
        error st
          (Printf.sprintf "expected a definition or system directive but found %s"
             (token_to_string t))
  done;
  let definitions = List.rev !definitions in
  let system =
    match !system with
    | Some e -> e
    | None -> (
        let last_process =
          List.fold_left
            (fun acc def -> match def with Proc_def (name, _) -> Some name | Rate_def _ -> acc)
            None definitions
        in
        match last_process with
        | Some name -> Var name
        | None -> error st "the model defines no process")
  in
  { definitions; system }

let run parse src =
  let st = { tokens = tokenize src; index = 0 } in
  let result = parse st in
  (match peek_token st with
  | Eof -> ()
  | t -> error st (Printf.sprintf "trailing input: %s" (token_to_string t)));
  result

let model_of_string src = run parse_model src
let expr_of_string src = run parse_expr src
let rate_expr_of_string src = run parse_rate_expr src

type stream = state

let stream_of_string src = { tokens = tokenize src; index = 0 }
let stream_peek = peek_token
let stream_peek_at = peek_token_at
let stream_advance = advance
let stream_expect = expect
let stream_error st message = error st message
let parse_expr_at = parse_expr
let parse_rate_expr_at = parse_rate_expr
let parse_action_set_at = parse_action_set

let model_of_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  model_of_string src
