module String_set = Set.Make (String)

type rate_expr =
  | Rnum of float
  | Rvar of string
  | Rpassive of float
  | Radd of rate_expr * rate_expr
  | Rsub of rate_expr * rate_expr
  | Rmul of rate_expr * rate_expr
  | Rdiv of rate_expr * rate_expr

type expr =
  | Stop
  | Var of string
  | Prefix of Action.t * rate_expr * expr
  | Choice of expr * expr
  | Coop of expr * String_set.t * expr
  | Hide of expr * String_set.t
  | Array_rep of expr * int

type definition = Rate_def of string * rate_expr | Proc_def of string * expr

type model = { definitions : definition list; system : expr }

let rec rate_vars = function
  | Rnum _ | Rpassive _ -> String_set.empty
  | Rvar v -> String_set.singleton v
  | Radd (a, b) | Rsub (a, b) | Rmul (a, b) | Rdiv (a, b) ->
      String_set.union (rate_vars a) (rate_vars b)

let rec free_vars = function
  | Stop -> String_set.empty
  | Var v -> String_set.singleton v
  | Prefix (_, _, cont) -> free_vars cont
  | Choice (a, b) | Coop (a, _, b) -> String_set.union (free_vars a) (free_vars b)
  | Hide (p, _) | Array_rep (p, _) -> free_vars p

let rec actions = function
  | Stop | Var _ -> Action.Set.empty
  | Prefix (a, _, cont) -> Action.Set.add a (actions cont)
  | Choice (p, q) | Coop (p, _, q) -> Action.Set.union (actions p) (actions q)
  | Hide (p, _) | Array_rep (p, _) -> actions p

let rec is_sequential_shape = function
  | Stop | Var _ -> true
  | Prefix (_, _, cont) -> is_sequential_shape cont
  | Choice (a, b) -> is_sequential_shape a && is_sequential_shape b
  | Coop _ | Hide _ | Array_rep _ -> false

(* Plain [=] is wrong here: [String_set.t] values with equal contents can
   have different internal tree shapes. *)
let rec equal_expr a b =
  match (a, b) with
  | Stop, Stop -> true
  | Var x, Var y -> x = y
  | Prefix (a1, r1, c1), Prefix (a2, r2, c2) ->
      Action.equal a1 a2 && r1 = r2 && equal_expr c1 c2
  | Choice (a1, b1), Choice (a2, b2) -> equal_expr a1 a2 && equal_expr b1 b2
  | Coop (a1, s1, b1), Coop (a2, s2, b2) ->
      String_set.equal s1 s2 && equal_expr a1 a2 && equal_expr b1 b2
  | Hide (p1, s1), Hide (p2, s2) -> String_set.equal s1 s2 && equal_expr p1 p2
  | Array_rep (p1, n1), Array_rep (p2, n2) -> n1 = n2 && equal_expr p1 p2
  | (Stop | Var _ | Prefix _ | Choice _ | Coop _ | Hide _ | Array_rep _), _ -> false

let equal_definition a b =
  match (a, b) with
  | Rate_def (n1, e1), Rate_def (n2, e2) -> n1 = n2 && e1 = e2
  | Proc_def (n1, e1), Proc_def (n2, e2) -> n1 = n2 && equal_expr e1 e2
  | (Rate_def _ | Proc_def _), _ -> false

let equal_model m1 m2 =
  List.length m1.definitions = List.length m2.definitions
  && List.for_all2 equal_definition m1.definitions m2.definitions
  && equal_expr m1.system m2.system

let defined_names model =
  List.fold_left
    (fun acc def ->
      match def with
      | Rate_def (name, _) | Proc_def (name, _) -> String_set.add name acc)
    String_set.empty model.definitions
