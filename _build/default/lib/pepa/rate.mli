(** Activity rates and Hillston's apparent-rate algebra.

    A rate is either [Active r] with [r > 0] (the parameter of an
    exponential delay) or [Passive w]: the unbounded rate "T" ("top"),
    weighted so that several passive instances of the same action split
    the cooperation probability in proportion to their weights.

    Apparent rates are represented by the same type: the apparent rate of
    an action in a component is the {!sum} of the rates of its enabled
    instances.  Summing an active and a passive instance of the same
    action type is rejected ({!Mixed_rates}), as in the PEPA Workbench:
    such models have no well-defined apparent rate. *)

type t = Active of float | Passive of float

exception Mixed_rates
(** Raised when active and (non-trivially) passive rates meet where a
    single apparent rate is required. *)

val active : float -> t
(** Raises [Invalid_argument] unless the argument is finite and [> 0]. *)

val passive : t
(** The unweighted passive rate (weight 1). *)

val passive_weighted : float -> t
(** Raises [Invalid_argument] unless the weight is finite and [> 0]. *)

val zero : t
(** The identity of {!sum}: "no enabled instances".  Represented as
    [Active 0.]; {!is_zero} recognises it. *)

val is_passive : t -> bool
val is_zero : t -> bool

val sum : t -> t -> t
(** Apparent-rate addition.  [zero] is the identity; actives add their
    rates, passives add their weights; a mixed sum raises
    {!Mixed_rates}. *)

val min_rate : t -> t -> t
(** Apparent-rate minimum: passive is greater than every active rate;
    two passives compare by weight. *)

val cooperation : t -> apparent1:t -> t -> apparent2:t -> t
(** [cooperation r1 ~apparent1 r2 ~apparent2] is the rate of a shared
    activity built from an instance of rate [r1] (out of apparent rate
    [apparent1] on its side) and an instance of rate [r2] on the other:
    [(r1/ra1) * (r2/ra2) * min ra1 ra2], with the standard passive
    extensions.  Two active participants give an active result; one
    passive participant defers to the active side; two passives stay
    passive. *)

val share : t -> apparent:t -> float
(** The probability that this instance is the one chosen among all
    instances making up the apparent rate on its side: [r/ra] for
    actives, [w/wa] for passives.  Raises {!Mixed_rates} on a mixed
    pair, [Invalid_argument] on a zero apparent rate. *)

val scale : float -> t -> t
(** Multiply an active rate (or passive weight) by a positive factor. *)

val value_exn : t -> float
(** The float rate of an active rate; raises [Invalid_argument] on a
    passive rate (a passive rate at the top level of a model is a
    modelling error, reported upstream with context). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
