type transition = { src : int; action : Action.t; rate : float; dst : int }

type t = {
  compiled : Compile.t;
  states : int array array;
  transition_list : transition list;
  outgoing : transition list array;
  mutable chain : Markov.Ctmc.t option;
}

exception Too_many_states of int
exception Passive_transition of { state : string; action : string }

let build ?(max_states = 1_000_000) compiled =
  let index = Hashtbl.create 1024 in
  let states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern vec =
    match Hashtbl.find_opt index vec with
    | Some i -> i
    | None ->
        if !count >= max_states then raise (Too_many_states max_states);
        let i = !count in
        Hashtbl.add index vec i;
        states := vec :: !states;
        incr count;
        Queue.add (i, vec) queue;
        i
  in
  ignore (intern (Compile.initial_state compiled));
  let transitions = ref [] in
  while not (Queue.is_empty queue) do
    let src, vec = Queue.pop queue in
    let moves = Semantics.moves compiled vec in
    List.iter
      (fun move ->
        let rate =
          match move.Semantics.rate with
          | Rate.Active r -> r
          | Rate.Passive _ ->
              raise
                (Passive_transition
                   {
                     state = Compile.state_label compiled vec;
                     action = Action.to_string move.Semantics.action;
                   })
        in
        let dst = intern (Semantics.apply vec move.Semantics.deltas) in
        transitions := { src; action = move.Semantics.action; rate; dst } :: !transitions)
      moves
  done;
  let states = Array.of_list (List.rev !states) in
  let transition_list = List.rev !transitions in
  let outgoing = Array.make (Array.length states) [] in
  List.iter (fun t -> outgoing.(t.src) <- t :: outgoing.(t.src)) transition_list;
  Array.iteri (fun i ts -> outgoing.(i) <- List.rev ts) outgoing;
  { compiled; states; transition_list; outgoing; chain = None }

let of_model ?max_states model = build ?max_states (Compile.of_model model)
let of_string ?max_states src = build ?max_states (Compile.of_string src)

let compiled t = t.compiled
let n_states t = Array.length t.states
let n_transitions t = List.length t.transition_list
let state t i = Array.copy t.states.(i)
let state_label t i = Compile.state_label t.compiled t.states.(i)
let initial_index _ = 0
let transitions t = t.transition_list
let transitions_from t i = t.outgoing.(i)

let deadlocks t =
  let result = ref [] in
  Array.iteri (fun i out -> if out = [] then result := i :: !result) t.outgoing;
  List.rev !result

let action_names t =
  List.sort_uniq String.compare
    (List.filter_map (fun tr -> Action.name tr.action) t.transition_list)

let ctmc t =
  match t.chain with
  | Some c -> c
  | None ->
      let triples = List.map (fun tr -> (tr.src, tr.dst, tr.rate)) t.transition_list in
      let c = Markov.Ctmc.of_transitions ~n:(n_states t) triples in
      t.chain <- Some c;
      c

let steady_state ?method_ ?options t = Markov.Steady.solve ?method_ ?options (ctmc t)

let transient t ~time =
  let n = n_states t in
  let initial = Array.make n 0.0 in
  initial.(0) <- 1.0;
  Markov.Transient.probabilities (ctmc t) ~initial ~t:time

let throughput t pi name =
  List.fold_left
    (fun acc tr ->
      match tr.action with
      | Action.Act n when n = name -> acc +. (pi.(tr.src) *. tr.rate)
      | Action.Act _ | Action.Tau -> acc)
    0.0 t.transition_list

let throughputs t pi = List.map (fun name -> (name, throughput t pi name)) (action_names t)

let local_state_probability t pi ~leaf ~label =
  let total = ref 0.0 in
  Array.iteri
    (fun i vec ->
      if Compile.local_label t.compiled ~leaf ~local:vec.(leaf) = label then
        total := !total +. pi.(i))
    t.states;
  !total

let pp_summary fmt t =
  Format.fprintf fmt "%d states, %d transitions, %d deadlock state(s)" (n_states t)
    (n_transitions t)
    (List.length (deadlocks t))
