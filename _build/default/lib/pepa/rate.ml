type t = Active of float | Passive of float

exception Mixed_rates

let check_positive what v =
  if not (Float.is_finite v) || v <= 0.0 then
    invalid_arg (Printf.sprintf "Rate.%s: expected a finite positive value, got %g" what v)

let active r =
  check_positive "active" r;
  Active r

let passive = Passive 1.0

let passive_weighted w =
  check_positive "passive_weighted" w;
  Passive w

let zero = Active 0.0

let is_passive = function Passive _ -> true | Active _ -> false
let is_zero = function Active 0.0 -> true | _ -> false

let sum a b =
  match (a, b) with
  | Active 0.0, other | other, Active 0.0 -> other
  | Active r1, Active r2 -> Active (r1 +. r2)
  | Passive w1, Passive w2 -> Passive (w1 +. w2)
  | Active _, Passive _ | Passive _, Active _ -> raise Mixed_rates

let min_rate a b =
  match (a, b) with
  | Active r1, Active r2 -> Active (Float.min r1 r2)
  | Active r, Passive _ | Passive _, Active r -> Active r
  | Passive w1, Passive w2 -> Passive (Float.min w1 w2)

(* The probability that this particular instance is the one chosen among
   all enabled instances on its side of the cooperation. *)
let share instance apparent =
  match (instance, apparent) with
  | Active r, Active ra when ra > 0.0 -> r /. ra
  | Passive w, Passive wa when wa > 0.0 -> w /. wa
  | Active _, Active _ | Passive _, Passive _ ->
      invalid_arg "Rate.cooperation: zero apparent rate"
  | Active _, Passive _ | Passive _, Active _ -> raise Mixed_rates

let share instance ~apparent = share instance apparent

let cooperation r1 ~apparent1 r2 ~apparent2 =
  let q = share r1 ~apparent:apparent1 *. share r2 ~apparent:apparent2 in
  match min_rate apparent1 apparent2 with
  | Active m -> Active (q *. m)
  | Passive m -> Passive (q *. m)

let scale factor = function
  | Active r -> Active (factor *. r)
  | Passive w -> Passive (factor *. w)

let value_exn = function
  | Active r -> r
  | Passive _ -> invalid_arg "Rate.value_exn: passive rate"

let equal a b =
  match (a, b) with
  | Active r1, Active r2 | Passive r1, Passive r2 -> Float.equal r1 r2
  | Active _, Passive _ | Passive _, Active _ -> false

let compare a b =
  match (a, b) with
  | Active r1, Active r2 -> Float.compare r1 r2
  | Passive w1, Passive w2 -> Float.compare w1 w2
  | Active _, Passive _ -> -1
  | Passive _, Active _ -> 1

let pp fmt = function
  | Active r -> Format.fprintf fmt "%g" r
  | Passive 1.0 -> Format.pp_print_string fmt "infty"
  | Passive w -> Format.fprintf fmt "infty[%g]" w

let to_string r = Format.asprintf "%a" pp r
