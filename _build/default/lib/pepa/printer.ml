open Syntax

(* Precedence levels for rate expressions: additive 1, multiplicative 2,
   atoms 3.  Parenthesise when a child has lower precedence than its
   context requires. *)
let rec pp_rate_prec prec fmt e =
  let paren p body =
    if p < prec then Format.fprintf fmt "(%t)" body else body fmt
  in
  match e with
  | Rnum v -> Format.fprintf fmt "%g" v
  | Rvar v -> Format.pp_print_string fmt v
  | Rpassive 1.0 -> Format.pp_print_string fmt "infty"
  | Rpassive w -> Format.fprintf fmt "infty[%g]" w
  | Radd (a, b) ->
      paren 1 (fun fmt -> Format.fprintf fmt "%a + %a" (pp_rate_prec 1) a (pp_rate_prec 2) b)
  | Rsub (a, b) ->
      paren 1 (fun fmt -> Format.fprintf fmt "%a - %a" (pp_rate_prec 1) a (pp_rate_prec 2) b)
  | Rmul (a, b) ->
      paren 2 (fun fmt -> Format.fprintf fmt "%a * %a" (pp_rate_prec 2) a (pp_rate_prec 3) b)
  | Rdiv (a, b) ->
      paren 2 (fun fmt -> Format.fprintf fmt "%a / %a" (pp_rate_prec 2) a (pp_rate_prec 3) b)

let pp_rate_expr fmt e = pp_rate_prec 0 fmt e

let pp_action_set fmt set =
  Format.pp_print_string fmt (String.concat ", " (String_set.elements set))

(* Expression precedence, matching the parser: cooperation 1 < choice 2
   < prefix 3 < postfix operators (hiding, replication) 4.  A prefix term
   under a postfix operator must be parenthesised: in "(a, r).P / {x}"
   the hiding binds to the continuation, not to the whole prefix. *)
let rec pp_expr_prec prec fmt e =
  let paren p body =
    if p < prec then Format.fprintf fmt "(%t)" body else body fmt
  in
  match e with
  | Stop -> Format.pp_print_string fmt "Stop"
  | Var v -> Format.pp_print_string fmt v
  | Prefix (action, rate, cont) ->
      paren 3 (fun fmt ->
          Format.fprintf fmt "(%a, %a).%a" Action.pp action pp_rate_expr rate (pp_expr_prec 3)
            cont)
  | Choice (a, b) ->
      paren 2 (fun fmt ->
          Format.fprintf fmt "%a + %a" (pp_expr_prec 2) a (pp_expr_prec 3) b)
  | Coop (a, set, b) ->
      paren 1 (fun fmt ->
          Format.fprintf fmt "%a <%a> %a" (pp_expr_prec 1) a pp_action_set set (pp_expr_prec 2) b)
  | Hide (p, set) ->
      paren 4 (fun fmt ->
          Format.fprintf fmt "%a / {%a}" (pp_expr_prec 4) p pp_action_set set)
  | Array_rep (p, n) ->
      paren 4 (fun fmt -> Format.fprintf fmt "%a[%d]" (pp_expr_prec 4) p n)

let pp_expr fmt e = pp_expr_prec 0 fmt e

let pp_definition fmt = function
  | Rate_def (name, e) -> Format.fprintf fmt "%s = %a;" name pp_rate_expr e
  | Proc_def (name, e) -> Format.fprintf fmt "%s = %a;" name pp_expr e

let pp_model fmt model =
  List.iter (fun def -> Format.fprintf fmt "%a@." pp_definition def) model.definitions;
  Format.fprintf fmt "system %a;@." pp_expr model.system

let rate_expr_to_string e = Format.asprintf "%a" pp_rate_expr e
let expr_to_string e = Format.asprintf "%a" pp_expr e
let model_to_string m = Format.asprintf "%a" pp_model m
