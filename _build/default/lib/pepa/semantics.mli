(** The structured operational semantics of PEPA over compiled models.

    Global states are leaf-state vectors; {!moves} computes the enabled
    activities of a state with their rates, applying Hillston's
    apparent-rate cooperation rule at each [Coop] node and relabelling to
    [tau] at each [Hide] node. *)

type move = {
  action : Action.t;
  rate : Rate.t;
  deltas : (int * int) list;
      (** [(leaf, new_local_state)] updates; leaves not listed are
          unchanged *)
}

val moves : Compile.t -> int array -> move list
(** All activities enabled in the given global state.  Distinct
    derivations are distinct list elements (their rates are summed only
    when the CTMC is built). *)

val apparent_rate : Compile.t -> int array -> string -> Rate.t
(** The apparent rate of a named action type in a global state, i.e. the
    total rate at which the whole model can perform it.  Raises
    [Rate.Mixed_rates] if active and passive instances meet outside a
    cooperation that resolves them. *)

val apply : int array -> (int * int) list -> int array
(** [apply state deltas] is the successor state (a fresh array). *)

val enabled_actions : Compile.t -> int array -> Action.Set.t
