type t = Tau | Act of string

let tau = Tau

let act name =
  if name = "" then invalid_arg "Action.act: empty name";
  if name = "tau" then invalid_arg "Action.act: \"tau\" is reserved for the silent action";
  Act name

let is_tau = function Tau -> true | Act _ -> false
let name = function Tau -> None | Act n -> Some n

let equal a b =
  match (a, b) with Tau, Tau -> true | Act n1, Act n2 -> n1 = n2 | _, _ -> false

let compare a b =
  match (a, b) with
  | Tau, Tau -> 0
  | Tau, Act _ -> -1
  | Act _, Tau -> 1
  | Act n1, Act n2 -> String.compare n1 n2

let pp fmt = function
  | Tau -> Format.pp_print_string fmt "tau"
  | Act n -> Format.pp_print_string fmt n

let to_string a = Format.asprintf "%a" pp a

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
