(** Static checking and resolution of a parsed model.

    [of_model] checks the model once and produces an environment in which
    every rate parameter has a value, every process constant is classified
    as sequential or model-level, and the standard PEPA well-formedness
    conditions hold:

    - no duplicate or undefined names (rates and processes separately);
    - rate definitions evaluate to positive finite values, with no cycles
      and no passive rates inside arithmetic;
    - choice and prefix apply only to sequential terms;
    - no recursion through model-level constants (cooperation and hiding
      are static in PEPA: a constant defined through them may not be
      reached from its own body). *)

type t

exception Semantic_error of string

val of_model : Syntax.model -> t

val model : t -> Syntax.model
val system : t -> Syntax.expr

val rate_parameters : t -> (string * float) list
(** Resolved values of all named rate parameters, in definition order. *)

val eval_rate : t -> Syntax.rate_expr -> Rate.t
(** Evaluate a rate expression.  Raises {!Semantic_error} on reference to
    an unknown parameter, a non-positive value, or passive rates combined
    arithmetically. *)

val lookup_process : t -> string -> Syntax.expr
(** Raises {!Semantic_error} on unknown constants. *)

val is_sequential : t -> string -> bool

val process_names : t -> string list

val alphabet : t -> Syntax.expr -> Syntax.String_set.t
(** Named action types performable by an expression, chasing constant
    references to a fixpoint.  [tau] is not included. *)

val warnings : t -> string list
(** Non-fatal observations: cooperation sets mentioning actions outside
    both participants' alphabets, process definitions never referenced
    from the system equation, and the like. *)
