(** Pretty-printing of PEPA syntax in the concrete syntax accepted by
    {!Parser}, so that [parse (print m)] is the identity on abstract
    syntax (tested property). *)

val pp_rate_expr : Format.formatter -> Syntax.rate_expr -> unit
val pp_expr : Format.formatter -> Syntax.expr -> unit
val pp_definition : Format.formatter -> Syntax.definition -> unit
val pp_model : Format.formatter -> Syntax.model -> unit

val rate_expr_to_string : Syntax.rate_expr -> string
val expr_to_string : Syntax.expr -> string
val model_to_string : Syntax.model -> string
