(** Strong equivalence (Markovian bisimulation) and lumping.

    Two states of the derivation graph are strongly equivalent when, for
    every action type and every equivalence class, they reach that class
    by that action type at the same total rate (Hillston's strong
    equivalence, the PEPA analogue of ordinary lumpability).  The
    quotient of the CTMC by the coarsest such partition is a smaller
    chain with identical steady-state measures on class-invariant
    rewards — the classical remedy for the state-space explosion the
    paper's related-work section highlights.

    The partition is computed by signature-based refinement: states are
    split by their vector of (action, target class, total rate) until a
    fixpoint is reached. *)

type partition = private {
  n_blocks : int;
  block_of_state : int array;
  representatives : int array;  (** one state per block *)
}

val strong_equivalence : Statespace.t -> partition
(** The coarsest strong-equivalence partition of the reachable states. *)

val initial_block : partition -> int
(** The block containing the initial state. *)

type lumped = {
  partition : partition;
  transitions : (int * Action.t * float * int) list;
      (** [(block, action, rate, block)] *)
  chain : Markov.Ctmc.t;
}

val lump : Statespace.t -> lumped
(** The quotient chain.  By strong equivalence the conditional rates out
    of a block are well defined; they are read off the block's
    representative. *)

val lumped_steady_state : ?method_:Markov.Steady.method_ -> lumped -> float array
(** Steady-state distribution over blocks. *)

val lumped_throughput : lumped -> float array -> string -> float
(** Throughput of a named action computed on the quotient; equal to the
    full chain's throughput (tested). *)

val block_probability_of_state : lumped -> float array -> int -> float
(** [block_probability_of_state l pi s] is the probability of the block
    containing state [s]. *)
