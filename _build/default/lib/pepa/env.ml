open Syntax
module String_map = Map.Make (String)

exception Semantic_error of string

type t = {
  model : Syntax.model;
  rates : float String_map.t;
  rate_order : string list;
  procs : Syntax.expr String_map.t;
  sequential : String_set.t;
  warning_list : string list;
}

let fail fmt = Format.kasprintf (fun msg -> raise (Semantic_error msg)) fmt

(* ------------------------------------------------------------------ *)
(* Rate evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let eval_rate_with rates expr =
  let rec eval = function
    | Rnum v -> Rate.Active v
    | Rpassive w ->
        if w <= 0.0 || not (Float.is_finite w) then fail "passive weight must be positive";
        Rate.Passive w
    | Rvar name -> (
        match String_map.find_opt name rates with
        | Some v -> Rate.Active v
        | None -> fail "unknown rate parameter %s" name)
    | Radd (a, b) -> arith ( +. ) "+" a b
    | Rsub (a, b) -> arith ( -. ) "-" a b
    | Rmul (a, b) -> arith ( *. ) "*" a b
    | Rdiv (a, b) -> arith ( /. ) "/" a b
  and arith op symbol a b =
    match (eval a, eval b) with
    | Rate.Active x, Rate.Active y -> Rate.Active (op x y)
    | _ -> fail "passive rates cannot appear under the %s operator" symbol
  in
  match eval expr with
  | Rate.Active v when v <= 0.0 || not (Float.is_finite v) ->
      fail "rate expression evaluates to the non-positive value %g" v
  | rate -> rate

let resolve_rates definitions =
  (* Rate definitions may reference earlier rate definitions only, which
     rules out cycles by construction. *)
  List.fold_left
    (fun (rates, order) def ->
      match def with
      | Proc_def _ -> (rates, order)
      | Rate_def (name, body) ->
          if String_map.mem name rates then fail "duplicate rate definition %s" name;
          let value =
            match eval_rate_with rates body with
            | Rate.Active v -> v
            | Rate.Passive _ -> fail "rate parameter %s cannot be passive" name
          in
          (String_map.add name value rates, name :: order))
    (String_map.empty, []) definitions
  |> fun (rates, order) -> (rates, List.rev order)

(* ------------------------------------------------------------------ *)
(* Process classification                                              *)
(* ------------------------------------------------------------------ *)

let collect_procs definitions =
  List.fold_left
    (fun procs def ->
      match def with
      | Rate_def _ -> procs
      | Proc_def (name, body) ->
          if String_map.mem name procs then fail "duplicate process definition %s" name;
          String_map.add name body procs)
    String_map.empty definitions

let check_defined procs system =
  let check_expr context expr =
    String_set.iter
      (fun v ->
        if not (String_map.mem v procs) then
          fail "undefined process constant %s (referenced from %s)" v context)
      (free_vars expr)
  in
  String_map.iter (fun name body -> check_expr name body) procs;
  check_expr "the system equation" system

(* A name is model-level if its body uses cooperation, hiding or
   replication, or (transitively) references a model-level name. *)
let classify procs =
  let model_level = ref String_set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    String_map.iter
      (fun name body ->
        if not (String_set.mem name !model_level) then begin
          let refs_model =
            String_set.exists (fun v -> String_set.mem v !model_level) (free_vars body)
          in
          if (not (is_sequential_shape body)) || refs_model then begin
            model_level := String_set.add name !model_level;
            changed := true
          end
        end)
      procs
  done;
  String_map.fold
    (fun name _ acc -> if String_set.mem name !model_level then acc else String_set.add name acc)
    procs String_set.empty

(* Choice and prefix continuations must be sequential: their operands may
   only use sequential operators and sequential constants. *)
let check_operators sequential procs system =
  let check_sequential context expr =
    if not (is_sequential_shape expr) then
      fail "%s must be sequential but uses cooperation, hiding or replication" context;
    String_set.iter
      (fun v ->
        if not (String_set.mem v sequential) then
          fail "%s refers to the model-level constant %s" context v)
      (free_vars expr)
  in
  let rec walk context expr =
    match expr with
    | Stop | Var _ -> ()
    | Prefix (_, _, cont) ->
        check_sequential (Printf.sprintf "the continuation of a prefix in %s" context) cont
    | Choice (a, b) ->
        check_sequential (Printf.sprintf "the left operand of a choice in %s" context) a;
        check_sequential (Printf.sprintf "the right operand of a choice in %s" context) b
    | Coop (a, _, b) ->
        walk context a;
        walk context b
    | Hide (p, _) | Array_rep (p, _) -> walk context p
  in
  String_map.iter (fun name body -> walk (Printf.sprintf "definition %s" name) body) procs;
  walk "the system equation" system

(* Model-level recursion is illegal: inlining model-level constants must
   terminate. *)
let check_model_recursion sequential procs system =
  let rec visit trail name =
    if List.mem name trail then
      fail "recursion through the model-level constant %s (cycle: %s)" name
        (String.concat " -> " (List.rev (name :: trail)))
    else
      let body = String_map.find name procs in
      expand (name :: trail) body
  and expand trail expr =
    match expr with
    | Stop | Prefix _ | Choice _ -> ()
    | Var v -> if not (String_set.mem v sequential) then visit trail v
    | Coop (a, _, b) ->
        expand trail a;
        expand trail b
    | Hide (p, _) | Array_rep (p, _) -> expand trail p
  in
  expand [] system;
  String_map.iter
    (fun name body -> if not (String_set.mem name sequential) then expand [ name ] body)
    procs

(* ------------------------------------------------------------------ *)
(* Alphabets                                                           *)
(* ------------------------------------------------------------------ *)

let alphabets procs =
  (* Fixpoint: alphabet of a definition includes those of referenced
     definitions. *)
  let current = ref (String_map.map (fun _ -> String_set.empty) procs) in
  let alphabet_of_expr expr table =
    let direct =
      Action.Set.fold
        (fun a acc -> match Action.name a with Some n -> String_set.add n acc | None -> acc)
        (actions expr) String_set.empty
    in
    String_set.fold
      (fun v acc ->
        match String_map.find_opt v table with
        | Some set -> String_set.union set acc
        | None -> acc)
      (free_vars expr) direct
  in
  let changed = ref true in
  while !changed do
    changed := false;
    String_map.iter
      (fun name body ->
        let updated = alphabet_of_expr body !current in
        if not (String_set.equal updated (String_map.find name !current)) then begin
          current := String_map.add name updated !current;
          changed := true
        end)
      procs
  done;
  (!current, alphabet_of_expr)

(* ------------------------------------------------------------------ *)
(* Warnings                                                            *)
(* ------------------------------------------------------------------ *)

let compute_warnings procs system alphabet_table alphabet_of_expr =
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun msg -> warnings := msg :: !warnings) fmt in
  (* Cooperation sets should intersect both participants' alphabets. *)
  let rec scan context expr =
    match expr with
    | Stop | Var _ | Prefix _ | Choice _ -> ()
    | Coop (a, set, b) ->
        let alpha_a = alphabet_of_expr a alphabet_table in
        let alpha_b = alphabet_of_expr b alphabet_table in
        String_set.iter
          (fun action ->
            if not (String_set.mem action alpha_a) || not (String_set.mem action alpha_b) then
              warn
                "cooperation on %s in %s: the action is not in both participants' alphabets, \
                 so it can never occur"
                action context)
          set;
        scan context a;
        scan context b
    | Hide (p, _) | Array_rep (p, _) -> scan context p
  in
  String_map.iter (fun name body -> scan (Printf.sprintf "definition %s" name) body) procs;
  scan "the system equation" system;
  (* Unreferenced definitions. *)
  let reachable = ref (free_vars system) in
  let frontier = ref (free_vars system) in
  while not (String_set.is_empty !frontier) do
    let next =
      String_set.fold
        (fun name acc ->
          match String_map.find_opt name procs with
          | Some body -> String_set.union acc (String_set.diff (free_vars body) !reachable)
          | None -> acc)
        !frontier String_set.empty
    in
    reachable := String_set.union !reachable next;
    frontier := next
  done;
  String_map.iter
    (fun name _ ->
      if not (String_set.mem name !reachable) then
        warn "process %s is never reachable from the system equation" name)
    procs;
  List.rev !warnings

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let of_model model =
  let rates, rate_order = resolve_rates model.definitions in
  let procs = collect_procs model.definitions in
  check_defined procs model.system;
  let sequential = classify procs in
  check_operators sequential procs model.system;
  check_model_recursion sequential procs model.system;
  (* Force evaluation of every activity rate so errors surface here. *)
  let rec check_rates expr =
    match expr with
    | Stop | Var _ -> ()
    | Prefix (_, rate, cont) ->
        ignore (eval_rate_with rates rate);
        check_rates cont
    | Choice (a, b) | Coop (a, _, b) ->
        check_rates a;
        check_rates b
    | Hide (p, _) | Array_rep (p, _) -> check_rates p
  in
  String_map.iter (fun _ body -> check_rates body) procs;
  check_rates model.system;
  let alphabet_table, alphabet_of_expr = alphabets procs in
  let warning_list = compute_warnings procs model.system alphabet_table alphabet_of_expr in
  { model; rates; rate_order; procs; sequential; warning_list }

let model t = t.model
let system t = t.model.system

let rate_parameters t =
  List.map (fun name -> (name, String_map.find name t.rates)) t.rate_order

let eval_rate t expr = eval_rate_with t.rates expr

let lookup_process t name =
  match String_map.find_opt name t.procs with
  | Some body -> body
  | None -> fail "undefined process constant %s" name

let is_sequential t name = String_set.mem name t.sequential

let process_names t = List.map fst (String_map.bindings t.procs)

let alphabet t expr =
  let table, alphabet_of_expr = alphabets t.procs in
  alphabet_of_expr expr table

let warnings t = t.warning_list
