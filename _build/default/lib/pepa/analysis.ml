let deadlock_free space = Statespace.deadlocks space = []

let reachable_action space name =
  List.exists
    (fun tr -> Action.equal tr.Statespace.action (Action.Act name))
    (Statespace.transitions space)

let states_enabling space name =
  let enabled = Hashtbl.create 16 in
  List.iter
    (fun tr ->
      if Action.equal tr.Statespace.action (Action.Act name) then
        Hashtbl.replace enabled tr.Statespace.src ())
    (Statespace.transitions space);
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) enabled [])

let never_follows space ~first ~then_ =
  let after_first = Hashtbl.create 16 in
  List.iter
    (fun tr ->
      if Action.equal tr.Statespace.action (Action.Act first) then
        Hashtbl.replace after_first tr.Statespace.dst ())
    (Statespace.transitions space);
  not
    (List.exists
       (fun tr ->
         Action.equal tr.Statespace.action (Action.Act then_)
         && Hashtbl.mem after_first tr.Statespace.src)
       (Statespace.transitions space))

let eventually_reaches space ~from name =
  let n = Statespace.n_states space in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(from) <- true;
  Queue.add from queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun tr ->
        if Action.equal tr.Statespace.action (Action.Act name) then found := true;
        if not seen.(tr.Statespace.dst) then begin
          seen.(tr.Statespace.dst) <- true;
          Queue.add tr.Statespace.dst queue
        end)
      (Statespace.transitions_from space s)
  done;
  !found

let strongly_connected space = Markov.Ctmc.is_irreducible (Statespace.ctmc space)

let pp_report fmt space =
  Format.fprintf fmt "@[<v>%a@,deadlock-free: %b@,strongly connected: %b@,actions: %s@]"
    Statespace.pp_summary space (deadlock_free space) (strongly_connected space)
    (String.concat ", " (Statespace.action_names space))
