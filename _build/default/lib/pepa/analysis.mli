(** Behavioural analysis over the derivation graph: the qualitative
    checks the paper mentions alongside performance analysis (freedom
    from deadlock, protocol properties such as "it is not possible to
    write to a closed file"). *)

val deadlock_free : Statespace.t -> bool

val reachable_action : Statespace.t -> string -> bool
(** Whether the named action occurs on any reachable transition. *)

val states_enabling : Statespace.t -> string -> int list
(** Indices of states in which the named action is enabled. *)

val never_follows : Statespace.t -> first:string -> then_:string -> bool
(** [never_follows space ~first ~then_] holds when no reachable state
    has an incoming [first]-transition and an outgoing [then_]-transition,
    i.e. [then_] is never enabled immediately after [first].  This is the
    shape of protocol assertions like "read and write operations cannot
    be interleaved: the file must be closed and re-opened first". *)

val eventually_reaches : Statespace.t -> from:int -> string -> bool
(** Whether some sequence of transitions from state [from] contains the
    named action. *)

val strongly_connected : Statespace.t -> bool
(** Whether every state is reachable from every other state — the
    precondition for a unique steady-state distribution. *)

val pp_report : Format.formatter -> Statespace.t -> unit
(** A short qualitative report: state count, deadlocks, action
    alphabet. *)
