let rec descendants ?name node =
  let here kid =
    match (name, kid) with
    | None, Minixml.Element _ -> [ kid ]
    | Some n, Minixml.Element (tag, _, _) when tag = n -> [ kid ]
    | _ -> []
  in
  List.concat_map
    (fun kid -> here kid @ descendants ?name kid)
    (Minixml.children node)

let step_children name node =
  List.filter
    (fun kid -> name = "*" || Minixml.name kid = name)
    (Minixml.element_children node)

let select path node =
  let deep = String.length path >= 2 && String.sub path 0 2 = "//" in
  let path = if deep then String.sub path 2 (String.length path - 2) else path in
  let steps = String.split_on_char '/' path |> List.filter (fun s -> s <> "") in
  match steps with
  | [] -> []
  | first :: rest ->
      let start =
        if deep then
          descendants node
          |> List.filter (fun n -> first = "*" || Minixml.name n = first)
        else step_children first node
      in
      List.fold_left
        (fun nodes step -> List.concat_map (step_children step) nodes)
        start rest

let select_one path node = match select path node with [] -> None | hd :: _ -> Some hd

let find_by_attribute ~name ~key ~value node =
  List.find_opt
    (fun candidate -> Minixml.attribute key candidate = Some value)
    (descendants ~name node)
