lib/xml/minixml.ml: Buffer Char Fun List Printf String
