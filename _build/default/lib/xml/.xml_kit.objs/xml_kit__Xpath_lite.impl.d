lib/xml/xpath_lite.ml: List Minixml String
