lib/xml/xpath_lite.mli: Minixml
