lib/xml/minixml.mli:
