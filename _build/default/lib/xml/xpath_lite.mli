(** Tiny path-based selection helpers over {!Minixml.t} trees.

    This is not XPath; it is the small fragment the XMI reader needs:
    child and descendant selection by element name, attribute predicates,
    and a convenience string syntax ["a/b/c"] for nested child steps where
    each step matches an element name.  A leading ["//"] selects matching
    descendants at any depth. *)

val select : string -> Minixml.t -> Minixml.t list
(** [select path node] returns the elements reached from [node] by [path].
    [path] is a ['/']-separated list of element names; a step of ["*"]
    matches any element.  A path starting with ["//"] searches the whole
    subtree for the remainder.  The root node itself is never returned. *)

val select_one : string -> Minixml.t -> Minixml.t option
(** First result of {!select}, if any. *)

val descendants : ?name:string -> Minixml.t -> Minixml.t list
(** All descendant elements of [node], in document order, optionally
    filtered by element name. *)

val find_by_attribute : name:string -> key:string -> value:string -> Minixml.t -> Minixml.t option
(** [find_by_attribute ~name ~key ~value node] finds the first descendant
    element called [name] whose attribute [key] equals [value]. *)
