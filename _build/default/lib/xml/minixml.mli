(** A small, dependency-free XML 1.0 subset: parsing and printing.

    The subset covers everything XMI interchange files use in practice:
    the XML declaration, comments, processing instructions, elements with
    attributes (including namespace-prefixed names, treated lexically),
    character data, CDATA sections, and the five predefined entities plus
    decimal and hexadecimal character references.  DOCTYPE declarations are
    skipped without validation.  This is the DOM-like substrate on which the
    XMI reader/writer and the metadata repository are built. *)

(** Parsed XML node.  Attribute order is preserved. *)
type t =
  | Element of string * (string * string) list * t list
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of string * string

(** Parse error with 1-based line and column of the offending character. *)
exception Parse_error of { line : int; col : int; message : string }

val parse_string : string -> t
(** [parse_string s] parses the single root element of the document [s].
    Raises {!Parse_error} on malformed input. *)

val parse_file : string -> t
(** [parse_file path] reads and parses the document stored at [path]. *)

val parse_fragments : string -> t list
(** [parse_fragments s] parses a sequence of top-level nodes (elements,
    comments, processing instructions); useful for testing snippets that are
    not complete documents. *)

val to_string : ?decl:bool -> ?indent:int -> t -> string
(** [to_string t] renders [t].  With [decl] (default [true]) an XML
    declaration is emitted first.  [indent] (default [2]) controls pretty-
    printing; pass [0] for compact single-line output.  Mixed content
    (elements whose children include text) is never re-indented, so
    parse-print round trips preserve character data exactly. *)

val write_file : string -> t -> unit
(** [write_file path t] renders [t] with {!to_string} and stores it at
    [path]. *)

val escape_text : string -> string
(** Escape ['<'], ['>'], ['&'] for use as character data. *)

val escape_attribute : string -> string
(** Escape ['<'], ['>'], ['&'], ['"'] for use inside a double-quoted
    attribute value. *)

val equal : t -> t -> bool
(** Structural equality that normalises insignificant whitespace: pure-
    whitespace text children are dropped and comments are ignored before
    comparison.  Attribute order is significant (XMI writers are
    deterministic). *)

val name : t -> string
(** [name t] is the element name, or [""] for non-element nodes. *)

val attribute : string -> t -> string option
(** [attribute key t] looks up attribute [key] on element [t]. *)

val attribute_exn : string -> t -> string
(** Like {!attribute} but raises [Not_found]. *)

val children : t -> t list
(** Children of an element; [[]] for other node kinds. *)

val element_children : t -> t list
(** Children of [t] that are themselves elements. *)

val text_content : t -> string
(** Concatenated character data of [t] and its descendants. *)

val set_attribute : string -> string -> t -> t
(** [set_attribute key value t] returns [t] with attribute [key] bound to
    [value], replacing any previous binding and otherwise appending. *)

val remove_attribute : string -> t -> t

val add_child : t -> t -> t
(** [add_child child t] appends [child] to element [t]'s children. *)

val map_elements : (t -> t) -> t -> t
(** Bottom-up rewrite of every element in the tree. *)

val filter_children : (t -> bool) -> t -> t
(** Keep only the immediate children satisfying the predicate (recursively
    applied at every element). *)
