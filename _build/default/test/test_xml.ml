module X = Xml_kit.Minixml
module Xp = Xml_kit.Xpath_lite

let check_parse msg src expected = Alcotest.(check bool) msg true (X.equal (X.parse_string src) expected)

let test_element_basics () =
  check_parse "empty element" "<a/>" (X.Element ("a", [], []));
  check_parse "nested" "<a><b/><c/></a>"
    (X.Element ("a", [], [ X.Element ("b", [], []); X.Element ("c", [], []) ]));
  check_parse "attributes" {|<a x="1" y="two"/>|} (X.Element ("a", [ ("x", "1"); ("y", "two") ], []));
  check_parse "single quotes" "<a x='1'/>" (X.Element ("a", [ ("x", "1") ], []));
  check_parse "text" "<a>hello</a>" (X.Element ("a", [], [ X.Text "hello" ]));
  check_parse "namespaced names" "<UML:Model xmi.id=\"m1\"/>"
    (X.Element ("UML:Model", [ ("xmi.id", "m1") ], []))

let test_entities () =
  check_parse "predefined entities" "<a>&lt;&gt;&amp;&quot;&apos;</a>"
    (X.Element ("a", [], [ X.Text "<>&\"'" ]));
  check_parse "decimal reference" "<a>&#65;</a>" (X.Element ("a", [], [ X.Text "A" ]));
  check_parse "hex reference" "<a>&#x41;</a>" (X.Element ("a", [], [ X.Text "A" ]));
  check_parse "utf-8 encoding of big code point" "<a>&#955;</a>"
    (X.Element ("a", [], [ X.Text "\xce\xbb" ]));
  check_parse "entity in attribute" {|<a x="a&amp;b"/>|} (X.Element ("a", [ ("x", "a&b") ], []))

let test_misc_nodes () =
  check_parse "comment ignored by equal" "<a><!-- note --><b/></a>"
    (X.Element ("a", [], [ X.Element ("b", [], []) ]));
  check_parse "cdata" "<a><![CDATA[x < y & z]]></a>" (X.Element ("a", [], [ X.Cdata "x < y & z" ]));
  let doc = X.parse_string "<?xml version=\"1.0\"?><!DOCTYPE foo [<!ELEMENT a ANY>]><a/>" in
  Alcotest.(check string) "doctype skipped" "a" (X.name doc);
  let nodes = X.parse_fragments "<?pi body?><a/><!-- c -->" in
  Alcotest.(check int) "fragments" 3 (List.length nodes)

let expect_error msg src =
  match X.parse_string src with
  | exception X.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: expected a parse error" msg

let test_errors () =
  expect_error "mismatched closing tag" "<a></b>";
  expect_error "unterminated element" "<a><b></b>";
  expect_error "duplicate attribute" {|<a x="1" x="2"/>|};
  expect_error "unknown entity" "<a>&nope;</a>";
  expect_error "bad char reference" "<a>&#xZZ;</a>";
  expect_error "lt in attribute" {|<a x="<"/>|};
  expect_error "no root" "<!-- only a comment -->";
  expect_error "two roots" "<a/><b/>";
  expect_error "garbage" "hello";
  let position_is_reported =
    match X.parse_string "<a>\n  <b></c>\n</a>" with
    | exception X.Parse_error { line; _ } -> line = 2
    | _ -> false
  in
  Alcotest.(check bool) "error carries position" true position_is_reported

let test_print_round_trip () =
  let samples =
    [
      X.Element ("a", [], []);
      X.Element ("a", [ ("k", "v with \"quotes\" & <angles>") ], []);
      X.Element ("a", [], [ X.Text "x < y & z > w" ]);
      X.Element ("root", [], [ X.Element ("kid", [ ("n", "1") ], [ X.Text "t" ]); X.Cdata "raw" ]);
      X.Element ("mixed", [], [ X.Text "a"; X.Element ("b", [], []); X.Text "c" ]);
    ]
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "print/parse round trip" true (X.equal t (X.parse_string (X.to_string t)));
      Alcotest.(check bool) "compact round trip" true
        (X.equal t (X.parse_string (X.to_string ~indent:0 t))))
    samples

let test_mixed_content_exact () =
  (* Character data must survive the pretty-printer byte for byte. *)
  let t = X.Element ("a", [], [ X.Text "  spaced   text  " ]) in
  match X.parse_string (X.to_string t) with
  | X.Element ("a", [], [ X.Text s ]) -> Alcotest.(check string) "text preserved" "  spaced   text  " s
  | _ -> Alcotest.fail "unexpected shape"

let test_accessors () =
  let t = X.parse_string {|<a x="1"><b/><c k="v">text</c></a>|} in
  Alcotest.(check (option string)) "attribute" (Some "1") (X.attribute "x" t);
  Alcotest.(check (option string)) "missing attribute" None (X.attribute "nope" t);
  Alcotest.(check int) "element children" 2 (List.length (X.element_children t));
  Alcotest.(check string) "text content" "text" (X.text_content t);
  let t2 = X.set_attribute "x" "2" t in
  Alcotest.(check (option string)) "set replaces" (Some "2") (X.attribute "x" t2);
  let t3 = X.set_attribute "new" "n" t in
  Alcotest.(check (option string)) "set appends" (Some "n") (X.attribute "new" t3);
  let t4 = X.remove_attribute "x" t in
  Alcotest.(check (option string)) "removed" None (X.attribute "x" t4);
  let t5 = X.add_child (X.Element ("d", [], [])) t in
  Alcotest.(check int) "child added" 3 (List.length (X.element_children t5))

let test_rewriting () =
  let t = X.parse_string "<a><b/><c><b/></c></a>" in
  let renamed =
    X.map_elements
      (function X.Element ("b", a, k) -> X.Element ("B", a, k) | node -> node)
      t
  in
  Alcotest.(check int) "map_elements bottom-up" 2 (List.length (Xp.descendants ~name:"B" renamed));
  let filtered = X.filter_children (fun node -> X.name node <> "b") t in
  Alcotest.(check int) "filter_children recursive" 0
    (List.length (Xp.descendants ~name:"b" filtered))

let test_xpath () =
  let t = X.parse_string {|<r><a><b i="1"/><b i="2"/></a><c><b i="3"/></c></r>|} in
  Alcotest.(check int) "child path" 2 (List.length (Xp.select "a/b" t));
  Alcotest.(check int) "deep path" 3 (List.length (Xp.select "//b" t));
  Alcotest.(check int) "wildcard" 2 (List.length (Xp.select "*" t));
  Alcotest.(check bool) "select_one" true (Xp.select_one "c/b" t <> None);
  Alcotest.(check bool) "select_one miss" true (Xp.select_one "c/zz" t = None);
  (match Xp.find_by_attribute ~name:"b" ~key:"i" ~value:"3" t with
  | Some found -> Alcotest.(check (option string)) "found i=3" (Some "3") (X.attribute "i" found)
  | None -> Alcotest.fail "find_by_attribute missed");
  Alcotest.(check int) "descendants all" 5 (List.length (Xp.descendants t))

(* Random tree generator for the property test. *)
let gen_tree =
  let open QCheck2.Gen in
  let name = oneofl [ "a"; "b"; "node"; "UML:Thing"; "x1" ] in
  let attr = pair (oneofl [ "k"; "key"; "xmi.id" ]) (string_size ~gen:printable (0 -- 8)) in
  let dedup_attrs attrs =
    List.fold_left (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc) [] attrs
  in
  fix
    (fun self depth ->
      if depth = 0 then map2 (fun n attrs -> X.Element (n, dedup_attrs attrs, [])) name (list_size (0 -- 3) attr)
      else
        map3
          (fun n attrs kids -> X.Element (n, dedup_attrs attrs, kids))
          name (list_size (0 -- 3) attr)
          (list_size (0 -- 3)
             (oneof
                [
                  self (depth - 1);
                  map (fun s -> X.Text (if String.trim s = "" then "t" else s))
                    (string_size ~gen:printable (1 -- 10));
                ])))
    3

let prop_round_trip =
  QCheck2.Test.make ~name:"print/parse round-trips random trees" ~count:200 gen_tree (fun t ->
      X.equal t (X.parse_string (X.to_string t)))

let suite =
  [
    Alcotest.test_case "element basics" `Quick test_element_basics;
    Alcotest.test_case "entities" `Quick test_entities;
    Alcotest.test_case "comments, cdata, doctype, pi" `Quick test_misc_nodes;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "print round trip" `Quick test_print_round_trip;
    Alcotest.test_case "mixed content preserved exactly" `Quick test_mixed_content_exact;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "rewriting" `Quick test_rewriting;
    Alcotest.test_case "xpath-lite" `Quick test_xpath;
    QCheck_alcotest.to_alcotest prop_round_trip;
  ]
