module D = Uml.Diagram_text
module A = Uml.Activity

let pda_text =
  {|
    % the Section 5 scenario in the plain-text notation
    activity PDA {
      initial start;
      action download "download file";
      action detect "detect weak signal";
      action search "search for other transmitters";
      action handover move;
      decision d;
      action abort "abort download";
      action continue_dl "continue download";
      final stop;

      edge start -> download -> detect -> search -> handover -> d;
      d -> abort -> stop;
      d -> continue_dl -> stop;

      object ua : UserAgent;
      occ o1 = ua @ transmitter_1 "initial";
      occ o2 = ua @ transmitter_2 "after";

      o1 -> download;
      o1 -> detect;
      o1 -> search;
      o1 -> handover;
      handover -> o2;
      o2 -> abort;
      o2 -> continue_dl;
    }

    statechart Client {
      initial GenerateRequest;
      state GenerateRequest;
      state WaitForResponse;
      state ProcessResponse;
      GenerateRequest -> WaitForResponse : request @ 1.0;
      WaitForResponse -> ProcessResponse : response;
      ProcessResponse -> GenerateRequest : offlineprocessing @ 2.0;
    }
  |}

let test_parse_document () =
  let activities, charts = D.parse pda_text in
  Alcotest.(check int) "one activity" 1 (List.length activities);
  Alcotest.(check int) "one chart" 1 (List.length charts);
  let d = List.hd activities in
  Alcotest.(check string) "diagram name" "PDA" d.A.diagram_name;
  Alcotest.(check int) "nodes" 9 (List.length d.A.nodes);
  Alcotest.(check int) "edges" 9 (List.length d.A.edges);
  Alcotest.(check int) "flows" 7 (List.length d.A.flows);
  Alcotest.(check (list string)) "locations" [ "transmitter_1"; "transmitter_2" ]
    (A.locations d);
  (match A.find_node d "handover" with
  | Some { A.kind = A.Action { move = true; name }; _ } ->
      Alcotest.(check string) "name defaults to id" "handover" name
  | _ -> Alcotest.fail "handover should be a move action");
  let chart = List.hd charts in
  Alcotest.(check (list string)) "chart alphabet"
    [ "offlineprocessing"; "request"; "response" ]
    (Uml.Statechart.alphabet chart);
  Alcotest.(check bool) "unrated transition stays unrated" true
    (List.exists
       (fun (t : Uml.Statechart.transition) -> t.Uml.Statechart.rate = None)
       chart.Uml.Statechart.transitions)

let test_parsed_diagram_analyses () =
  (* The text form of the PDA scenario extracts and solves like the
     builder form. *)
  let activities, _ = D.parse pda_text in
  let ex = Extract.Ad_to_pepanet.extract ~rates:Scenarios.Pda.rates (List.hd activities) in
  let analysis = Choreographer.Workbench.analyse_net ~name:"pda" ex.Extract.Ad_to_pepanet.net in
  let t name =
    Option.get
      (Choreographer.Results.throughput analysis.Choreographer.Workbench.net_results name)
  in
  let cycle = 0.5 +. 0.1 +. 0.2 +. 2.0 +. 0.125 +. 1.0 in
  Alcotest.check (Alcotest.float 1e-9) "same throughput as the builder form" (1.0 /. cycle)
    (t "handover")

let test_print_parse_fixpoint () =
  let activities, charts = D.parse pda_text in
  let printed = D.document_to_string activities charts in
  let activities2, charts2 = D.parse printed in
  let printed2 = D.document_to_string activities2 charts2 in
  Alcotest.(check string) "printing reaches a fixpoint" printed printed2;
  Alcotest.(check int) "same structure" (List.length (List.hd activities).A.flows)
    (List.length (List.hd activities2).A.flows)

let test_builder_models_print () =
  (* Builder-produced scenario diagrams print and reparse. *)
  List.iter
    (fun d ->
      let printed = D.activity_to_string d in
      let activities, _ = D.parse printed in
      let d2 = List.hd activities in
      Alcotest.(check int) (d.A.diagram_name ^ " nodes") (List.length d.A.nodes)
        (List.length d2.A.nodes);
      Alcotest.(check int) (d.A.diagram_name ^ " flows") (List.length d.A.flows)
        (List.length d2.A.flows);
      Alcotest.(check (list string)) (d.A.diagram_name ^ " locations") (A.locations d)
        (A.locations d2))
    [ Scenarios.Pda.diagram (); Scenarios.Instant_message.diagram () ];
  let chart_text = D.statechart_to_string (Scenarios.Tomcat.server_jsp ()) in
  let _, charts = D.parse chart_text in
  Alcotest.(check (list string)) "chart states survive"
    (Uml.Statechart.state_names (Scenarios.Tomcat.server_jsp ()))
    (Uml.Statechart.state_names (List.hd charts))

let test_errors () =
  let reject msg src =
    match D.parse src with
    | exception D.Parse_error _ -> ()
    | _ -> Alcotest.failf "%s: accepted" msg
  in
  reject "unknown node in edge" "activity A { initial i; i -> nowhere; }";
  reject "two occurrences linked"
    "activity A { initial i; action a; object x : T; occ o1 = x; occ o2 = x; o1 -> o2; i -> a; o1 -> a; }";
  reject "duplicate node" "activity A { initial i; initial i; }";
  reject "undeclared object" "activity A { initial i; occ o = ghost; }";
  reject "unterminated string" "activity A { action a \"oops; }";
  reject "missing brace" "activity A { initial i;";
  reject "statechart bad rate" "statechart C { state S; S -> S : go @ fast; }";
  reject "no initial node"
    "activity A { action a; final f; a -> f; object x : T; occ o = x; o -> a; }";
  let line_reported =
    match D.parse "activity A {\n  initial i;\n  ??? }" with
    | exception D.Parse_error { line; _ } -> line = 3
    | _ -> false
  in
  Alcotest.(check bool) "line numbers" true line_reported

let test_interaction_blocks () =
  let src =
    {|
      interaction Calls {
        alice -> bob : sync;
        bob -> carol : notify;
      }
    |}
  in
  let activities, charts, interactions = D.parse_document src in
  Alcotest.(check int) "no diagrams" 0 (List.length activities + List.length charts);
  (match interactions with
  | [ i ] ->
      Alcotest.(check string) "name" "Calls" i.Uml.Interaction.interaction_name;
      Alcotest.(check int) "messages" 2 (List.length i.Uml.Interaction.messages);
      Alcotest.(check (list string)) "participants" [ "alice"; "bob"; "carol" ]
        (Uml.Interaction.participants i)
  | _ -> Alcotest.fail "expected one interaction");
  (* print/parse fixpoint including interactions *)
  let printed = D.document_to_string ~interactions [] [] in
  let _, _, reread = D.parse_document printed in
  Alcotest.(check bool) "interaction round trip" true (reread = interactions);
  (* empty interaction rejected *)
  match D.parse_document "interaction Empty { }" with
  | exception D.Parse_error _ -> ()
  | _ -> Alcotest.fail "empty interaction accepted"

let suite =
  [
    Alcotest.test_case "parse a document" `Quick test_parse_document;
    Alcotest.test_case "parsed diagrams analyse" `Quick test_parsed_diagram_analyses;
    Alcotest.test_case "print/parse fixpoint" `Quick test_print_parse_fixpoint;
    Alcotest.test_case "builder diagrams print" `Quick test_builder_models_print;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "interaction blocks" `Quick test_interaction_blocks;
  ]
