module Q = Choreographer.Query
module W = Choreographer.Workbench

let close = Alcotest.float 1e-9

let pepa_context () =
  Q.context_of_pepa (W.analyse_pepa_string "P = (a, 2.0).(b, 3.0).P; Q = (c, 1.0).Q; system P <> Q;")

let net_context () =
  Q.context_of_net (W.analyse_net_string Scenarios.Instant_message.pepanet_source)

let test_parse_and_print () =
  List.iter
    (fun src ->
      let q = Q.parse src in
      (* print/parse fixpoint *)
      Alcotest.(check string) src (Q.to_string q) (Q.to_string (Q.parse (Q.to_string q))))
    [
      "throughput(a)";
      "utilisation(P.P)";
      "located(IM, P2)";
      "passage(request -> response).mean";
      "passage(a -> b).cdf(2.5)";
      "passage(a -> b).median";
      "passage(a -> b).completion";
      "1 + 2 * throughput(a)";
      "(throughput(a) - 1) / 2";
    ]

let test_parse_errors () =
  List.iter
    (fun src ->
      match Q.parse src with
      | exception Q.Query_error _ -> ()
      | _ -> Alcotest.failf "%S: accepted" src)
    [
      "";
      "throughput";
      "throughput()";
      "passage(a).mean";
      "passage(a -> b).nonsense";
      "throughput(a) +";
      "located(a)";
      "1 $ 2";
      "throughput(a) trailing";
    ]

let test_eval_pepa () =
  let ctx = pepa_context () in
  Alcotest.check close "throughput" 1.2 (Q.eval_string ctx "throughput(a)");
  Alcotest.check close "utilisation" 0.6 (Q.eval_string ctx "utilisation(P.P)");
  Alcotest.check close "arithmetic" 2.4 (Q.eval_string ctx "2 * throughput(a)");
  Alcotest.check close "ratio" 1.0 (Q.eval_string ctx "throughput(a) / throughput(b)");
  (* passage from just-after-a to just-after-b: one exponential stage at
     rate 3. *)
  Alcotest.check close "passage mean" (1.0 /. 3.0)
    (Q.eval_string ctx "passage(a -> b).mean");
  Alcotest.check close "passage completion" 1.0
    (Q.eval_string ctx "passage(a -> b).completion");
  Alcotest.check close "passage cdf" (1.0 -. exp (-3.0))
    (Q.eval_string ctx "passage(a -> b).cdf(1)");
  Alcotest.(check bool) "median near ln2/3" true
    (abs_float (Q.eval_string ctx "passage(a -> b).median" -. (log 2.0 /. 3.0)) < 1e-4)

let test_eval_net () =
  let ctx = net_context () in
  Alcotest.check close "net throughput" 0.7717041800643087
    (Q.eval_string ctx "throughput(close)");
  (* in-place stage times after transmit up to sendback: 1/2 + 1/10 + 1/4 + 1/8 *)
  Alcotest.check close "net passage" 0.975
    (Q.eval_string ctx "passage(transmit -> sendback).mean");
  Alcotest.check close "location probability sums" 1.0
    (Q.eval_string ctx "located(InstantMessage, P1) + located(InstantMessage, P2)")

let test_eval_errors () =
  let ctx = pepa_context () in
  List.iter
    (fun src ->
      match Q.eval_string ctx src with
      | exception Q.Query_error _ -> ()
      | _ -> Alcotest.failf "%S: evaluated" src)
    [
      "throughput(zz)";
      "utilisation(Nope.Nope)";
      "located(IM, P1)" (* pepa model has no tokens *);
      "passage(zz -> a).mean";
      "passage(a -> zz).mean";
    ]

let test_cross_check_tomcat () =
  (* The paper's E4 measure expressed as one query. *)
  let study = Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_jsp ()) in
  let ctx = Q.context_of_pepa study.Scenarios.Tomcat.analysis in
  Alcotest.check close "response delay as a query" study.Scenarios.Tomcat.waiting_delay
    (Q.eval_string ctx "passage(request -> response).mean");
  Alcotest.check close "Little's law as a query" study.Scenarios.Tomcat.waiting_delay
    (Q.eval_string ctx "utilisation(Client_GenerateRequest.Client_WaitForResponse) / throughput(request)")

let suite =
  [
    Alcotest.test_case "parse and print" `Quick test_parse_and_print;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "evaluation on PEPA models" `Quick test_eval_pepa;
    Alcotest.test_case "evaluation on nets" `Quick test_eval_net;
    Alcotest.test_case "evaluation errors" `Quick test_eval_errors;
    Alcotest.test_case "Tomcat delay as queries" `Quick test_cross_check_tomcat;
  ]
