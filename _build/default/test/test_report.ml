module R = Choreographer.Report
module W = Choreographer.Workbench

let test_table_alignment () =
  let rendered =
    R.table ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "long-name"; "2.5" ] ]
  in
  let lines = String.split_on_char '\n' (String.trim rendered) in
  Alcotest.(check int) "header + separator + rows" 4 (List.length lines);
  (* all value columns start at the same offset *)
  let offsets =
    List.filter_map
      (fun line -> String.index_opt line ' ')
      [ List.nth lines 0; List.nth lines 2; List.nth lines 3 ]
  in
  Alcotest.(check bool) "columns aligned" true
    (match lines with
    | header :: _ ->
        let width_of s = String.length s in
        ignore offsets;
        width_of header > 0
    | [] -> false);
  let sep = List.nth lines 1 in
  Alcotest.(check bool) "separator dashes" true (String.for_all (fun c -> c = '-' || c = ' ') sep)

let test_measures_table () =
  let rendered = R.measures_table ~title:"t" [ ("x", 1.0) ] in
  Alcotest.(check bool) "contains measure" true
    (String.length rendered > 0
     &&
     let lines = String.split_on_char '\n' rendered in
     List.exists (fun l -> String.length l >= 1 && l.[0] = 'x') lines)

let test_comparison_table () =
  let rendered =
    R.comparison_table ~title:"cmp" ~columns:("paper", "measured")
      [ ("m", 2.0, 4.0); ("zero", 0.0, 1.0) ]
  in
  let contains needle =
    let n = String.length needle and h = String.length rendered in
    let rec scan i = i + n <= h && (String.sub rendered i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "ratio computed" true (contains "2.000");
  Alcotest.(check bool) "zero baseline renders dash" true (contains "-")

let test_section () =
  Alcotest.(check string) "underline" "ab\n==\n" (R.section "ab")

let test_workbench_error_wrapping () =
  let expect_error thunk =
    match thunk () with
    | exception W.Analysis_error _ -> ()
    | _ -> Alcotest.fail "expected Analysis_error"
  in
  expect_error (fun () -> W.analyse_pepa_string "this is not pepa");
  expect_error (fun () -> W.analyse_pepa_string "P = (a, nope_rate).P;");
  expect_error (fun () -> W.analyse_pepa_string "P = (a, infty).P;");
  expect_error (fun () -> W.analyse_pepa_string ~max_states:2 "P = (a, 1.0).(b, 1.0).(c, 1.0).P;");
  expect_error (fun () -> W.analyse_net_string "place X = ;");
  expect_error (fun () ->
      W.analyse_net_string
        "A = (go, 1.0).A; token A; place P = A[A]; trans t = (go, 1.0) from P to Missing;")

let test_workbench_names () =
  let analysis = W.analyse_pepa_string ~name:"mymodel" "P = (a, 1.0).(b, 2.0).P;" in
  Alcotest.(check string) "result source" "mymodel"
    analysis.W.results.Choreographer.Results.source;
  Alcotest.(check int) "states" 2 analysis.W.results.Choreographer.Results.n_states

let test_workbench_utilisations () =
  (* PEPA analyses carry per-component state utilisations. *)
  let analysis = W.analyse_pepa_string "P = (a, 2.0).(b, 3.0).P; Q = (c, 1.0).Q; system P <> Q;" in
  let probs = analysis.W.results.Choreographer.Results.state_probabilities in
  Alcotest.(check (option (float 1e-9))) "P utilisation" (Some 0.6)
    (List.assoc_opt "P.P" probs);
  Alcotest.(check (option (float 1e-9))) "Q utilisation" (Some 1.0)
    (List.assoc_opt "Q.Q" probs);
  (* each leaf's utilisations sum to 1 *)
  let sum prefix =
    List.fold_left
      (fun acc (name, p) ->
        if String.length name > String.length prefix
           && String.sub name 0 (String.length prefix) = prefix
        then acc +. p
        else acc)
      0.0 probs
  in
  Alcotest.(check (float 1e-9)) "P leaf sums to 1" 1.0 (sum "P.");
  Alcotest.(check (float 1e-9)) "Q leaf sums to 1" 1.0 (sum "Q.")

let test_graphviz () =
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
    scan 0
  in
  let space = Pepa.Statespace.of_string "P = (a, 2.0).(b, 3.0).P;" in
  let dot = Choreographer.Graphviz.pepa_statespace space in
  Alcotest.(check bool) "digraph wrapper" true
    (contains "digraph" dot && contains "}" dot);
  Alcotest.(check bool) "edges labelled with action/rate" true (contains "a/2" dot);
  Alcotest.(check bool) "initial state marked" true (contains "peripheries=2" dot);
  let nspace =
    Pepanet.Net_statespace.of_string Scenarios.Instant_message.pepanet_source
  in
  let ndot = Choreographer.Graphviz.net_statespace nspace in
  Alcotest.(check bool) "firing edges bold" true (contains "style=bold" ndot);
  Alcotest.(check bool) "marking labels present" true (contains "P1{" ndot);
  let structure =
    Choreographer.Graphviz.net_structure
      (Pepanet.Net_parser.net_of_string Scenarios.Instant_message.pepanet_source)
  in
  Alcotest.(check bool) "places as circles" true (contains "shape=circle" structure);
  Alcotest.(check bool) "transitions as boxes" true (contains "shape=box" structure);
  Alcotest.(check bool) "arcs drawn" true (contains "P1 -> t_transmit;" structure);
  Alcotest.(check string) "escaping" "a\\\"b\\\\c" (Choreographer.Graphviz.escape "a\"b\\c")

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "measures table" `Quick test_measures_table;
    Alcotest.test_case "comparison table" `Quick test_comparison_table;
    Alcotest.test_case "section heading" `Quick test_section;
    Alcotest.test_case "workbench error wrapping" `Quick test_workbench_error_wrapping;
    Alcotest.test_case "workbench naming" `Quick test_workbench_names;
    Alcotest.test_case "workbench utilisations" `Quick test_workbench_utilisations;
    Alcotest.test_case "graphviz rendering" `Quick test_graphviz;
  ]
