module X = Xml_kit.Minixml
module P = Uml.Poseidon

let base_doc () = Uml.Xmi_write.activity_to_xml (Scenarios.Pda.diagram ())

let test_add_and_strip () =
  let doc = base_doc () in
  let project = P.add_layout doc in
  Alcotest.(check int) "layout section present" 1 (List.length (P.layout_of project));
  Alcotest.(check bool) "strip recovers the pure document" true (X.equal doc (P.strip project));
  Alcotest.(check int) "layout gone after strip" 0 (List.length (P.layout_of (P.strip project)));
  (* stripping a layout-free document is the identity *)
  Alcotest.(check bool) "strip is idempotent" true (X.equal doc (P.strip doc))

let test_layout_entries_reference_ids () =
  let project = P.add_layout (base_doc ()) in
  match P.layout_of project with
  | [ layout ] ->
      let entries = X.element_children layout in
      Alcotest.(check bool) "entries exist" true (List.length entries > 5);
      List.iter
        (fun entry ->
          Alcotest.(check bool) "entry has element ref" true (X.attribute "element" entry <> None);
          Alcotest.(check bool) "entry has coordinates" true (X.attribute "x" entry <> None))
        entries
  | _ -> Alcotest.fail "expected one layout section"

let test_merge_preserves_layout () =
  let original = P.add_layout (base_doc ()) in
  (* Simulate reflection: the structural part is rebuilt (same ids). *)
  let reflected_structural = P.strip original in
  let merged = P.merge ~original ~reflected:reflected_structural () in
  Alcotest.(check int) "layout restored" 1 (List.length (P.layout_of merged));
  Alcotest.(check bool) "structure intact" true
    (X.equal (P.strip merged) reflected_structural)

let test_merge_drops_stale_entries () =
  let original = P.add_layout (base_doc ()) in
  (* The reflected document lost one element (different diagram). *)
  let tiny =
    Uml.Xmi_write.activity_to_xml
      (let b = Uml.Activity.Build.create "PDA" in
       let i = Uml.Activity.Build.initial b in
       let a = Uml.Activity.Build.action b "solo" in
       Uml.Activity.Build.edge b i a;
       let o = Uml.Activity.Build.occurrence b ~obj:"x" ~cls:"T" in
       Uml.Activity.Build.flow_into b ~occ:o ~activity:a;
       Uml.Activity.Build.finish b)
  in
  let merged = P.merge ~original ~reflected:tiny () in
  match P.layout_of merged with
  | [ layout ] ->
      let known_ids =
        Xml_kit.Xpath_lite.descendants merged
        |> List.filter_map (fun node -> X.attribute "xmi.id" node)
      in
      let stale =
        List.filter
          (fun entry ->
            match X.attribute "element" entry with
            | Some id -> not (List.mem id known_ids)
            | None -> false)
          (X.element_children layout)
      in
      Alcotest.(check int) "no stale layout entries" 0 (List.length stale);
      Alcotest.(check bool) "surviving entries kept" true (X.element_children layout <> [])
  | _ -> Alcotest.fail "expected one layout section"

let test_custom_prefix () =
  let doc = base_doc () in
  let foreign = X.Element ("OtherTool:Geometry", [], []) in
  let project =
    match doc with
    | X.Element (tag, attrs, children) -> X.Element (tag, attrs, children @ [ foreign ])
    | _ -> assert false
  in
  Alcotest.(check int) "custom prefix found" 1
    (List.length (P.layout_of ~prefix:"OtherTool:" project));
  Alcotest.(check bool) "custom prefix stripped" true
    (X.equal doc (P.strip ~prefix:"OtherTool:" project));
  (* default prefix does not touch it *)
  Alcotest.(check int) "default prefix blind to it" 0 (List.length (P.layout_of project))

let test_full_cycle_with_mdr () =
  (* The Figure 4 sequence: project -> strip -> MDR -> export -> merge. *)
  let project = P.add_layout (base_doc ()) in
  let repo = Uml.Mdr.create () in
  Uml.Mdr.import_xmi repo (P.strip project);
  let exported = Uml.Mdr.export_xmi repo in
  let merged = P.merge ~original:project ~reflected:exported () in
  Alcotest.(check int) "layout survives the full cycle" 1 (List.length (P.layout_of merged));
  Alcotest.(check bool) "structure survives the full cycle" true
    (X.equal (P.strip project) (P.strip merged))

let suite =
  [
    Alcotest.test_case "add and strip layout" `Quick test_add_and_strip;
    Alcotest.test_case "layout entries reference element ids" `Quick test_layout_entries_reference_ids;
    Alcotest.test_case "merge preserves layout" `Quick test_merge_preserves_layout;
    Alcotest.test_case "merge drops stale entries" `Quick test_merge_drops_stale_entries;
    Alcotest.test_case "custom tool prefixes" `Quick test_custom_prefix;
    Alcotest.test_case "full preprocessor/postprocessor cycle" `Quick test_full_cycle_with_mdr;
  ]
