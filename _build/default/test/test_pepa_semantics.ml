module S = Pepa.Syntax

let close = Alcotest.float 1e-9

let space_of = Pepa.Statespace.of_string

let test_local_lts () =
  (* The Section 2.2 File component has exactly three derivative states. *)
  let compiled =
    Pepa.Compile.of_string
      {|
        File = (openread, 2.0).InStream + (openwrite, 2.0).OutStream;
        InStream = (read, 10.0).InStream + (close, 4.0).File;
        OutStream = (write, 5.0).OutStream + (close, 4.0).File;
        system File;
      |}
  in
  Alcotest.(check int) "one leaf" 1 (Pepa.Compile.n_leaves compiled);
  Alcotest.(check int) "three derivatives" 3
    (Array.length compiled.Pepa.Compile.components.(0).Pepa.Compile.states);
  Alcotest.(check string) "initial label" "(File)"
    (Pepa.Compile.state_label compiled (Pepa.Compile.initial_state compiled))

let test_anonymous_derivatives () =
  let compiled = Pepa.Compile.of_string "P = (a, 1.0).(b, 2.0).(c, 3.0).P;" in
  Alcotest.(check int) "prefix chain states" 3
    (Array.length compiled.Pepa.Compile.components.(0).Pepa.Compile.states)

let test_unguarded_recursion () =
  (match Pepa.Compile.of_string "P = P + (a, 1.0).P;" with
  | exception Pepa.Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "unguarded recursion accepted");
  match Pepa.Compile.of_string "P = Q; Q = P; system P;" with
  | exception Pepa.Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "constant cycle accepted"

let test_model_level_recursion_rejected () =
  match Pepa.Env.of_model (Pepa.Parser.model_of_string "P = (a, 1).P; Sys = P <a> Sys; system Sys;") with
  | exception Pepa.Env.Semantic_error _ -> ()
  | _ -> Alcotest.fail "recursion through cooperation accepted"

let test_static_checks () =
  let reject src =
    match Pepa.Env.of_model (Pepa.Parser.model_of_string src) with
    | exception Pepa.Env.Semantic_error _ -> ()
    | _ -> Alcotest.failf "accepted: %s" src
  in
  reject "P = (a, 1).Q;";                       (* undefined constant *)
  reject "P = (a, 1).P; P = Stop;";             (* duplicate definition *)
  reject "r = 0.0; P = (a, r).P;";              (* non-positive rate *)
  reject "P = (a, unknown_rate).P;";            (* unknown rate parameter *)
  reject "r = infty; P = (a, r).P;";            (* passive rate parameter *)
  reject "P = (a, infty + 1).P;";               (* passive in arithmetic *)
  reject "P = (a, 1).P; Q = (b, 1).Q; R = (c,1).(P <a> Q);" (* model-level under prefix *);
  reject "P = (a, 1).P; Q = (b, 1).Q; S = (P <a> Q) + P;"   (* model-level in choice *)

let test_warnings () =
  let env =
    Pepa.Env.of_model
      (Pepa.Parser.model_of_string
         "P = (a, 1).P; Q = (b, 1).Q; Unused = (c, 1).Unused; system P <x> Q;")
  in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "impossible cooperation reported" true
    (List.exists (contains "cooperation on x") (Pepa.Env.warnings env));
  Alcotest.(check bool) "unused definition reported" true
    (List.exists (contains "Unused") (Pepa.Env.warnings env))

let test_interleaving_rates () =
  (* Independent parallel components interleave; total exit rate of the
     initial state is the sum of both. *)
  let space = space_of "P = (a, 2.0).Stop; Q = (b, 3.0).Stop; system P <> Q;" in
  Alcotest.(check int) "4 states" 4 (Pepa.Statespace.n_states space);
  let out = Pepa.Statespace.transitions_from space 0 in
  Alcotest.(check int) "two initial moves" 2 (List.length out);
  Alcotest.check close "total rate" 5.0
    (List.fold_left (fun acc t -> acc +. t.Pepa.Statespace.rate) 0.0 out)

let test_cooperation_rate_formula () =
  (* Hillston's formula on the canonical example: two left instances of
     a (apparent 3), one right instance (apparent 2): each derivation
     carries (r1/3)(2/2)min(3,2). *)
  let space =
    space_of
      {|
        P = (a, 1.0).P1 + (a, 2.0).P2;
        P1 = (done1, 1.0).P1;
        P2 = (done2, 1.0).P2;
        Q = (a, 2.0).Q1;
        Q1 = (done3, 1.0).Q1;
        system P <a> Q;
      |}
  in
  let out = Pepa.Statespace.transitions_from space 0 in
  Alcotest.(check int) "two shared derivations" 2 (List.length out);
  let rates = List.sort compare (List.map (fun t -> t.Pepa.Statespace.rate) out) in
  (match rates with
  | [ low; high ] ->
      Alcotest.check close "shares of min apparent" (2.0 /. 3.0) low;
      Alcotest.check close "shares of min apparent" (4.0 /. 3.0) high
  | _ -> Alcotest.fail "unexpected transitions");
  Alcotest.check close "apparent rate at top" 2.0
    (Pepa.Rate.value_exn (Pepa.Semantics.apparent_rate (Pepa.Statespace.compiled space)
                            (Pepa.Statespace.state space 0) "a"))

let test_passive_cooperation () =
  let space =
    space_of
      {|
        P = (a, 3.0).P;
        Q = (a, infty).(b, 1.0).Q;
        system P <a> Q;
      |}
  in
  let out = Pepa.Statespace.transitions_from space 0 in
  (match out with
  | [ t ] -> Alcotest.check close "passive inherits active rate" 3.0 t.Pepa.Statespace.rate
  | _ -> Alcotest.fail "expected one transition");
  (* Weighted passive: weights 1 and 2 split the active rate 3. *)
  let space2 =
    space_of
      {|
        P = (a, 3.0).P;
        Q = (a, infty).(b, 1.0).Q + (a, infty[2]).(c, 1.0).Q;
        system P <a> Q;
      |}
  in
  let rates =
    List.sort compare
      (List.map (fun t -> t.Pepa.Statespace.rate) (Pepa.Statespace.transitions_from space2 0))
  in
  match rates with
  | [ one; two ] ->
      Alcotest.check close "weight 1 share" 1.0 one;
      Alcotest.check close "weight 2 share" 2.0 two
  | _ -> Alcotest.fail "expected two transitions"

let test_passive_at_top_rejected () =
  match space_of "P = (a, infty).P;" with
  | exception Pepa.Statespace.Passive_transition _ -> ()
  | _ -> Alcotest.fail "passive top-level activity accepted"

let test_hiding () =
  let space = space_of "P = (a, 2.0).(b, 3.0).P; system P / {a};" in
  let actions =
    List.map (fun t -> t.Pepa.Statespace.action) (Pepa.Statespace.transitions space)
  in
  Alcotest.(check bool) "a became tau" true (List.mem Pepa.Action.Tau actions);
  Alcotest.(check bool) "b survives" true (List.mem (Pepa.Action.act "b") actions);
  Alcotest.(check (list string)) "action_names excludes tau" [ "b" ]
    (Pepa.Statespace.action_names space);
  (* Hiding an action inside a cooperation set elsewhere: hidden actions
     cannot synchronise. *)
  let blocked = space_of "P = (a, 2.0).P; Q = (a, infty).Q; system (P / {a}) <a> Q;" in
  let tau_only =
    List.for_all
      (fun t -> Pepa.Action.is_tau t.Pepa.Statespace.action)
      (Pepa.Statespace.transitions blocked)
  in
  Alcotest.(check bool) "hidden action does not synchronise" true tau_only

let test_cooperation_blocking_deadlock () =
  let space = space_of "P = (a, 1.0).P; Q = (b, 1.0).(a, 1.0).Q; system P <a, b> Q;" in
  (* P never offers b, so Q can never advance: complete deadlock. *)
  Alcotest.(check int) "single stuck state" 1 (Pepa.Statespace.n_states space);
  Alcotest.(check (list int)) "deadlock detected" [ 0 ] (Pepa.Statespace.deadlocks space)

let test_replication () =
  let space = space_of "P = (think, 1.0).(eat, 2.0).P; system P[3];" in
  Alcotest.(check int) "2^3 states" 8 (Pepa.Statespace.n_states space);
  let compiled = Pepa.Statespace.compiled space in
  Alcotest.(check int) "three leaves" 3 (Pepa.Compile.n_leaves compiled);
  Alcotest.(check int) "one shared component" 1 (Array.length compiled.Pepa.Compile.components)

let test_throughput_and_utilisation () =
  let space = space_of "P = (a, 2.0).(b, 3.0).P;" in
  let pi = Pepa.Statespace.steady_state space in
  (* Cycle: throughput = 1/(1/2 + 1/3) = 1.2 for both actions. *)
  Alcotest.check close "throughput a" 1.2 (Pepa.Statespace.throughput space pi "a");
  Alcotest.check close "throughput b" 1.2 (Pepa.Statespace.throughput space pi "b");
  Alcotest.check close "P(state P)" 0.6
    (Pepa.Statespace.local_state_probability space pi ~leaf:0 ~label:"P");
  Alcotest.check close "distribution sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 pi)

let test_analysis_helpers () =
  let space = space_of Scenarios.File_protocol.pepa_source in
  Alcotest.(check bool) "deadlock free" true (Pepa.Analysis.deadlock_free space);
  Alcotest.(check bool) "strongly connected" true (Pepa.Analysis.strongly_connected space);
  Alcotest.(check bool) "read reachable" true (Pepa.Analysis.reachable_action space "read");
  Alcotest.(check bool) "never write after read" true
    (Pepa.Analysis.never_follows space ~first:"read" ~then_:"write");
  Alcotest.(check bool) "write can follow openwrite" false
    (Pepa.Analysis.never_follows space ~first:"openwrite" ~then_:"write");
  Alcotest.(check bool) "eventually reads" true
    (Pepa.Analysis.eventually_reaches space ~from:0 "read");
  Alcotest.(check bool) "states enabling close nonempty" true
    (Pepa.Analysis.states_enabling space "close" <> [])

let test_max_states_bound () =
  match Pepa.Statespace.of_string ~max_states:4 "P = (a, 1.0).(b, 1.0).P; system P[5];" with
  | exception Pepa.Statespace.Too_many_states 4 -> ()
  | _ -> Alcotest.fail "state bound not enforced"

(* Consistency: the apparent rate of an action in a state equals the
   total rate of that action's outgoing transitions (for active-only
   models this must hold exactly). *)
let test_apparent_rate_consistency () =
  List.iter
    (fun src ->
      let space = space_of src in
      let compiled = Pepa.Statespace.compiled space in
      for s = 0 to Pepa.Statespace.n_states space - 1 do
        let vec = Pepa.Statespace.state space s in
        List.iter
          (fun action ->
            let from_transitions =
              List.fold_left
                (fun acc tr ->
                  if Pepa.Action.equal tr.Pepa.Statespace.action (Pepa.Action.act action) then
                    acc +. tr.Pepa.Statespace.rate
                  else acc)
                0.0
                (Pepa.Statespace.transitions_from space s)
            in
            let apparent =
              match Pepa.Semantics.apparent_rate compiled vec action with
              | Pepa.Rate.Active r -> r
              | Pepa.Rate.Passive _ -> Alcotest.fail "passive apparent rate in active model"
            in
            Alcotest.check close
              (Printf.sprintf "state %d action %s" s action)
              apparent from_transitions)
          (Pepa.Statespace.action_names space)
      done)
    [
      "P = (a, 2.0).(b, 3.0).P; Q = (a, 1.0).(c, 4.0).Q; system P <a> Q;";
      "P = (a, 1.0).P1 + (a, 2.0).P2; P1 = (d, 1.0).P; P2 = (d, 2.0).P; Q = (a, 2.0).(d, 1.0).Q; system P <a> Q;";
      "P = (a, 2.0).(b, 3.0).P; system P[3];";
    ]

let suite =
  [
    Alcotest.test_case "local derivation graphs" `Quick test_local_lts;
    Alcotest.test_case "anonymous derivatives" `Quick test_anonymous_derivatives;
    Alcotest.test_case "unguarded recursion rejected" `Quick test_unguarded_recursion;
    Alcotest.test_case "model-level recursion rejected" `Quick test_model_level_recursion_rejected;
    Alcotest.test_case "static checks" `Quick test_static_checks;
    Alcotest.test_case "warnings" `Quick test_warnings;
    Alcotest.test_case "interleaving" `Quick test_interleaving_rates;
    Alcotest.test_case "apparent-rate cooperation" `Quick test_cooperation_rate_formula;
    Alcotest.test_case "passive cooperation" `Quick test_passive_cooperation;
    Alcotest.test_case "passive at top rejected" `Quick test_passive_at_top_rejected;
    Alcotest.test_case "hiding" `Quick test_hiding;
    Alcotest.test_case "cooperation blocking" `Quick test_cooperation_blocking_deadlock;
    Alcotest.test_case "replication" `Quick test_replication;
    Alcotest.test_case "throughput and utilisation" `Quick test_throughput_and_utilisation;
    Alcotest.test_case "behavioural analysis" `Quick test_analysis_helpers;
    Alcotest.test_case "state bound" `Quick test_max_states_bound;
    Alcotest.test_case "apparent-rate consistency" `Quick test_apparent_rate_consistency;
  ]
