module S = Pepa.Syntax
module P = Pepa.Parser

let expr = Alcotest.testable (fun fmt e -> Pepa.Printer.pp_expr fmt e) S.equal_expr

let parse = P.expr_of_string

let act name = Pepa.Action.act name

let test_atoms () =
  Alcotest.check expr "constant" (S.Var "File") (parse "File");
  Alcotest.check expr "stop" S.Stop (parse "Stop");
  Alcotest.check expr "prefix" (S.Prefix (act "a", S.Rnum 1.0, S.Var "P")) (parse "(a, 1.0).P");
  Alcotest.check expr "tau prefix" (S.Prefix (Pepa.Action.tau, S.Rnum 1.0, S.Stop))
    (parse "(tau, 1).Stop");
  Alcotest.check expr "passive" (S.Prefix (act "a", S.Rpassive 1.0, S.Var "P")) (parse "(a, infty).P");
  Alcotest.check expr "weighted passive" (S.Prefix (act "a", S.Rpassive 2.0, S.Var "P"))
    (parse "(a, infty[2]).P")

let coop set a b = S.Coop (a, S.String_set.of_list set, b)

let test_operators () =
  Alcotest.check expr "choice"
    (S.Choice (S.Prefix (act "a", S.Rnum 1.0, S.Var "P"), S.Prefix (act "b", S.Rnum 2.0, S.Var "Q")))
    (parse "(a, 1).P + (b, 2).Q");
  Alcotest.check expr "cooperation" (coop [ "a"; "b" ] (S.Var "P") (S.Var "Q")) (parse "P <a, b> Q");
  Alcotest.check expr "parallel" (coop [] (S.Var "P") (S.Var "Q")) (parse "P <> Q");
  Alcotest.check expr "hiding" (S.Hide (S.Var "P", S.String_set.singleton "a")) (parse "P / {a}");
  Alcotest.check expr "replication" (S.Array_rep (S.Var "P", 3)) (parse "P[3]");
  Alcotest.check expr "coop is weakest"
    (coop [ "a" ] (S.Choice (S.Var "P", S.Var "Q")) (S.Var "R"))
    (parse "P + Q <a> R");
  Alcotest.check expr "hiding binds tighter than coop"
    (coop [ "a" ] (S.Var "P") (S.Hide (S.Var "Q", S.String_set.singleton "b")))
    (parse "P <a> Q / {b}");
  Alcotest.check expr "left-assoc coop"
    (coop [ "b" ] (coop [ "a" ] (S.Var "P") (S.Var "Q")) (S.Var "R"))
    (parse "P <a> Q <b> R");
  Alcotest.check expr "grouping parens"
    (coop [ "a" ] (S.Var "P") (coop [ "b" ] (S.Var "Q") (S.Var "R")))
    (parse "P <a> (Q <b> R)");
  Alcotest.check expr "prefix chains"
    (S.Prefix (act "a", S.Rnum 1.0, S.Prefix (act "b", S.Rnum 2.0, S.Var "P")))
    (parse "(a, 1).(b, 2).P")

let test_rate_expressions () =
  let r = P.rate_expr_of_string in
  Alcotest.(check bool) "precedence * over +" true
    (r "1 + 2 * x" = S.Radd (S.Rnum 1.0, S.Rmul (S.Rnum 2.0, S.Rvar "x")));
  Alcotest.(check bool) "parens" true (r "(1 + 2) * x" = S.Rmul (S.Radd (S.Rnum 1.0, S.Rnum 2.0), S.Rvar "x"));
  Alcotest.(check bool) "division/subtraction" true
    (r "a - b / 2" = S.Rsub (S.Rvar "a", S.Rdiv (S.Rvar "b", S.Rnum 2.0)));
  Alcotest.(check bool) "scientific notation" true (r "1.5e2" = S.Rnum 150.0)

let test_model_structure () =
  let m = P.model_of_string "r = 1.0; P = (a, r).P; system P;" in
  Alcotest.(check int) "two definitions" 2 (List.length m.S.definitions);
  Alcotest.check expr "explicit system" (S.Var "P") m.S.system;
  let m2 = P.model_of_string "P = (a, 1).P; Q = P <a> P;" in
  Alcotest.check expr "implicit system is last process" (S.Var "Q") m2.S.system;
  let m3 = P.model_of_string "% comment\nP = (a, 1).P; // another\n/* block\ncomment */ system P;" in
  Alcotest.check expr "comments" (S.Var "P") m3.S.system

let expect_error msg src =
  match P.model_of_string src with
  | exception P.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: expected a parse error" msg

let test_errors () =
  expect_error "missing semicolon" "P = (a, 1).P";
  expect_error "lowercase process" "P = (a, 1).q;";
  expect_error "rate on lhs of process def" "p = (a, 1).P;";
  expect_error "empty model" "   ";
  expect_error "trailing garbage" "P = (a, 1).P; )";
  expect_error "unterminated comment" "/* P = Stop;";
  expect_error "bad replication" "P = Q[0];";
  expect_error "missing rate" "P = (a).P;";
  let positioned =
    match P.model_of_string "P = (a, 1).P;\nQ = (b, ***).Q;" with
    | exception P.Parse_error { line; _ } -> line = 2
    | _ -> false
  in
  Alcotest.(check bool) "position reported" true positioned

let test_print_parse_hand_cases () =
  let sources =
    [
      "(a, 1.5).P + (b, infty).Q";
      "P <a, b, c> (Q <> R)";
      "(P + Q) / {a, b}";
      "((a, 2).Stop)[4]";
      "(a, r * 2 + 1).P";
      "(tau, 3).(a, infty[2.5]).Stop";
    ]
  in
  List.iter
    (fun src ->
      let e = parse src in
      Alcotest.check expr src e (parse (Pepa.Printer.expr_to_string e)))
    sources

(* Random expression generator: well-formed shapes only (choice and
   prefix stay sequential), so printing is always reparsable. *)
let gen_expr =
  let open QCheck2.Gen in
  let action = oneofl [ "a"; "b"; "work"; "go_home" ] in
  let rate =
    oneof
      [
        map (fun f -> S.Rnum (Float.of_int f +. 0.5)) (1 -- 9);
        return (S.Rpassive 1.0);
        return (S.Rvar "r");
        return (S.Radd (S.Rvar "r", S.Rnum 1.0));
      ]
  in
  let seq =
    fix
      (fun self depth ->
        if depth = 0 then oneof [ return S.Stop; map (fun v -> S.Var v) (oneofl [ "P"; "Q" ]) ]
        else
          oneof
            [
              map (fun v -> S.Var v) (oneofl [ "P"; "Q" ]);
              map3 (fun a r cont -> S.Prefix (Pepa.Action.act a, r, cont)) action rate
                (self (depth - 1));
              map2 (fun a b -> S.Choice (a, b)) (self (depth - 1)) (self (depth - 1));
            ])
      3
  in
  let actions_set = map S.String_set.of_list (list_size (0 -- 3) action) in
  fix
    (fun self depth ->
      if depth = 0 then seq
      else
        oneof
          [
            seq;
            map3 (fun a l b -> S.Coop (a, l, b)) (self (depth - 1)) actions_set (self (depth - 1));
            map2 (fun p l -> S.Hide (p, l)) (self (depth - 1)) actions_set;
            map2 (fun p n -> S.Array_rep (p, n)) (self (depth - 1)) (1 -- 4);
          ])
    3

let prop_round_trip =
  QCheck2.Test.make ~name:"print/parse round-trips random expressions" ~count:500 gen_expr
    (fun e -> S.equal_expr e (parse (Pepa.Printer.expr_to_string e)))

let suite =
  [
    Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "operators and precedence" `Quick test_operators;
    Alcotest.test_case "rate expressions" `Quick test_rate_expressions;
    Alcotest.test_case "model structure" `Quick test_model_structure;
    Alcotest.test_case "parse errors" `Quick test_errors;
    Alcotest.test_case "print/parse hand cases" `Quick test_print_parse_hand_cases;
    QCheck_alcotest.to_alcotest prop_round_trip;
  ]
