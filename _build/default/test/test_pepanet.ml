module N = Pepanet.Net
module NS = Pepanet.Net_semantics
module NSS = Pepanet.Net_statespace

let close = Alcotest.float 1e-9

let simple_net =
  {|
    work = 4.0;
    go = 1.0;
    back = 2.0;
    Agent = (work, work).Ready;
    Ready = (go, go).Away;
    Away = (back, back).Agent;
    token Agent;
    place Home = Agent[Agent];
    place Abroad = Agent[_];
    trans t_go = (go, go) from Home to Abroad;
    trans t_back = (back, back) from Abroad to Home;
  |}

let test_parser () =
  let net = Pepanet.Net_parser.net_of_string simple_net in
  Alcotest.(check int) "definitions" 6 (List.length net.N.definitions);
  Alcotest.(check (list string)) "token types" [ "Agent" ] net.N.token_types;
  Alcotest.(check (list string)) "places" [ "Home"; "Abroad" ] (N.place_names net);
  Alcotest.(check int) "transitions" 2 (List.length net.N.transitions);
  let t = List.hd net.N.transitions in
  Alcotest.(check string) "firing action" "go" t.N.firing_action;
  Alcotest.(check int) "default priority" 1 t.N.priority;
  Alcotest.(check bool) "firing actions" true
    (Pepa.Syntax.String_set.equal (N.firing_actions net)
       (Pepa.Syntax.String_set.of_list [ "go"; "back" ]))

let test_printer_round_trip () =
  let sources =
    [
      simple_net;
      Scenarios.Instant_message.pepanet_source;
      {|
        r = 1.0;
        A = (m, r).A;
        B = (s, 2.0).B;
        token A;
        place P = (A[A] <m> A[_]) <> B;
        trans t = (m, r) from P to P priority 3;
      |};
    ]
  in
  List.iter
    (fun src ->
      let net = Pepanet.Net_parser.net_of_string src in
      let printed = Pepanet.Net_printer.net_to_string net in
      let reparsed = Pepanet.Net_parser.net_of_string printed in
      Alcotest.(check string) "stable printing" printed
        (Pepanet.Net_printer.net_to_string reparsed))
    sources

let expect_net_error msg src =
  match Pepanet.Net_compile.of_string src with
  | exception Pepanet.Net_compile.Net_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Net_error" msg

let test_compile_checks () =
  expect_net_error "unbalanced transition"
    {|
      A = (go, 1.0).A;
      token A;
      place P = A[A];
      place Q = A[_];
      place R = A[_];
      trans t = (go, 1.0) from P to Q, R;
    |};
  expect_net_error "unknown place"
    "A = (go, 1.0).A; token A; place P = A[A]; trans t = (go, 1.0) from P to Nowhere;";
  expect_net_error "firing action unknown to tokens"
    "A = (work, 1.0).A; token A; place P = A[A]; place Q = A[_]; trans t = (jump, 1.0) from P to Q;";
  expect_net_error "token not in family"
    "A = (go, 1.0).A; B = (go, 1.0).B; token A; place P = A[B]; place Q = A[_]; trans t = (go, 1.0) from P to Q;";
  expect_net_error "place without cell"
    "A = (go, 1.0).A; S = (x, 1.0).S; token A; place P = A[A]; place Q = S; trans t = (go, 1.0) from P to Q;";
  expect_net_error "static with firing action"
    {|
      A = (go, 1.0).A;
      S = (go, 1.0).S;
      token A;
      place P = A[A] <> S;
      place Q = A[_];
      trans t = (go, 1.0) from P to Q;
    |};
  expect_net_error "inconsistent priorities"
    {|
      A = (go, 1.0).A;
      token A;
      place P = A[A];
      place Q = A[_];
      trans t1 = (go, 1.0) from P to Q priority 1;
      trans t2 = (go, 1.0) from Q to P priority 2;
    |};
  expect_net_error "duplicate place"
    "A = (go, 1.0).A; token A; place P = A[A]; place P = A[_]; trans t = (go, 1.0) from P to P;"

let test_marking_basics () =
  let compiled = Pepanet.Net_compile.of_string simple_net in
  let m = Pepanet.Marking.initial compiled in
  Alcotest.(check int) "one token" 1 (Pepanet.Marking.token_count m);
  Alcotest.(check (option int)) "token at Home" (Some 0) (Pepanet.Marking.token_place compiled m 0);
  Alcotest.(check (list int)) "tokens_at" [ 0 ] (Pepanet.Marking.tokens_at compiled m 0);
  Alcotest.(check (list int)) "vacancy abroad" [ 1 ]
    (Pepanet.Marking.vacant_cells compiled m ~place:1 ~family:0);
  Alcotest.(check (list int)) "no vacancy at home" []
    (Pepanet.Marking.vacant_cells compiled m ~place:0 ~family:0)

let test_firing_semantics () =
  let compiled = Pepanet.Net_compile.of_string simple_net in
  let m0 = Pepanet.Marking.initial compiled in
  (* Initially the token is in state Agent: only the local work move. *)
  let local = NS.local_moves compiled m0 in
  Alcotest.(check int) "one local move" 1 (List.length local);
  Alcotest.(check int) "no firing yet" 0 (List.length (NS.firings compiled m0));
  (* After work, the token is Ready: the go firing is enabled and the
     firing does not appear among local moves. *)
  let m1 = NS.apply m0 (List.hd local).NS.updates in
  Alcotest.(check int) "no local move in Ready" 0 (List.length (NS.local_moves compiled m1));
  (match NS.firings compiled m1 with
  | [ move ] ->
      Alcotest.(check bool) "firing label" true
        (match move.NS.label with NS.Fire { action = "go"; transition = "t_go" } -> true | _ -> false);
      Alcotest.check close "firing rate min(label, token)" 1.0 (Pepa.Rate.value_exn move.NS.rate);
      let m2 = NS.apply m1 move.NS.updates in
      Alcotest.(check (option int)) "token moved" (Some 1)
        (Pepanet.Marking.token_place compiled m2 0);
      Alcotest.(check int) "token conserved" 1 (Pepanet.Marking.token_count m2)
  | moves -> Alcotest.failf "expected one firing, got %d" (List.length moves))

let test_vacancy_blocks_firing () =
  (* Two tokens, single cell at the destination: only one can move; once
     there, the second firing has no vacant output cell. *)
  let src =
    {|
      A = (go, 1.0).Done;
      Done = (rest, 1.0).Done;
      token A;
      place P = A[A] <> A[A];
      place Q = A[_];
      trans t = (go, 1.0) from P to Q;
    |}
  in
  let space = NSS.of_string src in
  (* Reachable markings: both at P; one moved (x2 token identity); after
     that the remaining token is stuck (no vacancy). *)
  let compiled = NSS.compiled space in
  let stuck =
    List.init (NSS.n_markings space) (fun i -> NSS.marking space i)
    |> List.filter (fun m -> Pepanet.Marking.tokens_at compiled m 0 <> [])
    |> List.for_all (fun m ->
           (* a marking where Q is full cannot fire *)
           Pepanet.Marking.vacant_cells compiled m ~place:1 ~family:0 <> []
           || NS.firings compiled m = [])
  in
  Alcotest.(check bool) "no firing without vacancy" true stuck;
  Alcotest.(check int) "token count invariant" 2
    (List.fold_left
       (fun acc i -> max acc (Pepanet.Marking.token_count (NSS.marking space i)))
       0
       (List.init (NSS.n_markings space) Fun.id));
  Alcotest.(check bool) "both tokens can be the mover" true (NSS.n_markings space >= 3)

let test_enabling_instances_split_rate () =
  (* Two tokens both ready to go, one vacant destination cell: two
     enablings (one per token), each with one phi; total firing rate is
     bounded by the place's apparent rate and the label. *)
  let src =
    {|
      A = (go, 2.0).Done;
      Done = (rest, 1.0).Done;
      token A;
      place P = A[A] <> A[A];
      place Q = A[_];
      trans t = (go, 3.0) from P to Q;
    |}
  in
  let compiled = Pepanet.Net_compile.of_string src in
  let m0 = Pepanet.Marking.initial compiled in
  let firings = NS.firings compiled m0 in
  Alcotest.(check int) "two enablings" 2 (List.length firings);
  let total =
    List.fold_left (fun acc mv -> acc +. Pepa.Rate.value_exn mv.NS.rate) 0.0 firings
  in
  (* apparent place rate 4 (two tokens at 2), label 3: total = min = 3. *)
  Alcotest.check close "bounded total" 3.0 total

let test_phi_split () =
  (* One token, two vacant compatible destination cells: two phi mappings
     sharing the enabling's rate equally. *)
  let src =
    {|
      A = (go, 2.0).Done;
      Done = (rest, 1.0).Done;
      token A;
      place P = A[A];
      place Q = A[_] <> A[_];
      trans t = (go, 2.0) from P to Q;
    |}
  in
  let compiled = Pepanet.Net_compile.of_string src in
  let m0 = Pepanet.Marking.initial compiled in
  let firings = NS.firings compiled m0 in
  Alcotest.(check int) "two phi outcomes" 2 (List.length firings);
  List.iter
    (fun mv -> Alcotest.check close "half each" 1.0 (Pepa.Rate.value_exn mv.NS.rate))
    firings

let test_priorities () =
  let src =
    {|
      A = (fast, 1.0).A2 + (slow, 1.0).A3;
      A2 = (rest, 1.0).A2;
      A3 = (rest, 1.0).A3;
      token A;
      place P = A[A];
      place Q = A[_];
      place R = A[_];
      trans t1 = (slow, 1.0) from P to Q priority 1;
      trans t2 = (fast, 1.0) from P to R priority 2;
    |}
  in
  let compiled = Pepanet.Net_compile.of_string src in
  let m0 = Pepanet.Marking.initial compiled in
  Alcotest.(check int) "both have concession" 2
    (List.length (NS.firings_with_concession compiled m0));
  (match NS.firings compiled m0 with
  | [ move ] ->
      Alcotest.(check bool) "only the high-priority firing is enabled" true
        (match move.NS.label with NS.Fire { action = "fast"; _ } -> true | _ -> false)
  | moves -> Alcotest.failf "expected one enabled firing, got %d" (List.length moves))

let test_static_cooperation_in_place () =
  (* The instant-message net: the FileReader static component drives the
     token through exactly one read per visit. *)
  let space = NSS.of_string Scenarios.Instant_message.pepanet_source in
  Alcotest.(check int) "8 markings" 8 (NSS.n_markings space);
  Alcotest.(check (list int)) "deadlock-free" [] (NSS.deadlocks space);
  let pi = NSS.steady_state space in
  let t = Pepanet.Net_measures.throughput space pi in
  Alcotest.check close "transmit = read (one read per cycle)" (t "read") (t "transmit");
  Alcotest.check close "firing throughput by name" (t "transmit")
    (Pepanet.Net_measures.firing_throughput space pi "t_transmit")

let test_net_measures () =
  let space = NSS.of_string simple_net in
  let pi = NSS.steady_state space in
  let locations = Pepanet.Net_measures.token_location_probabilities space pi ~token:0 in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 locations in
  Alcotest.check close "location probabilities sum to 1" 1.0 total;
  (* Cycle 1/4 + 1 + 1/2 = 1.75 -> each action throughput 1/1.75. *)
  List.iter
    (fun action ->
      Alcotest.check close ("throughput " ^ action) (1.0 /. 1.75)
        (Pepanet.Net_measures.throughput space pi action))
    [ "work"; "go"; "back" ];
  Alcotest.check close "P(home)" ((0.25 +. 1.0) /. 1.75) (List.assoc "Home" locations);
  Alcotest.check close "expected tokens abroad" (0.5 /. 1.75)
    (Pepanet.Net_measures.expected_tokens_at space pi ~place:"Abroad");
  Alcotest.check close "token state probability Ready" (1.0 /. 1.75)
    (Pepanet.Net_measures.token_state_probability space pi ~token:0 ~state_label:"Ready");
  match Pepanet.Net_measures.marking_probabilities space pi with
  | (_, top) :: _ -> Alcotest.(check bool) "sorted descending" true (top >= 1.0 /. 1.75 -. 1e-9)
  | [] -> Alcotest.fail "no markings"

(* Invariant: every reachable marking of every scenario net conserves the
   token count, and each token occupies at most one cell. *)
let prop_token_conservation =
  let nets =
    [
      simple_net;
      Scenarios.Instant_message.pepanet_source;
    ]
  in
  QCheck2.Test.make ~name:"token conservation over reachable markings" ~count:2
    (QCheck2.Gen.oneofl nets)
    (fun src ->
      let space = NSS.of_string src in
      let compiled = NSS.compiled space in
      let expected = Pepanet.Marking.token_count (Pepanet.Marking.initial compiled) in
      List.for_all
        (fun i ->
          let m = NSS.marking space i in
          Pepanet.Marking.token_count m = expected
          && List.for_all
               (fun tok ->
                 Pepanet.Marking.token_cell m tok.Pepanet.Net_compile.token_id <> None)
               (Array.to_list compiled.Pepanet.Net_compile.tokens))
        (List.init (NSS.n_markings space) Fun.id))

let test_multi_input_firing () =
  (* A balanced two-input/two-output transition: both tokens move in a
     single synchronised firing (the rendezvous of two mobile agents). *)
  let src =
    {|
      A = (meet, 2.0).Moved;
      Moved = (rest, 1.0).Moved;
      token A;
      place P1 = A[A];
      place P2 = A[A];
      place Q1 = A[_];
      place Q2 = A[_];
      trans t = (meet, 2.0) from P1, P2 to Q1, Q2;
    |}
  in
  let compiled = Pepanet.Net_compile.of_string src in
  let m0 = Pepanet.Marking.initial compiled in
  let firings = NS.firings compiled m0 in
  (* One enabling (one candidate per input place); two phi mappings (the
     two token-to-output-place bijections), equally likely. *)
  Alcotest.(check int) "two phi outcomes" 2 (List.length firings);
  let total = List.fold_left (fun acc m -> acc +. Pepa.Rate.value_exn m.NS.rate) 0.0 firings in
  Alcotest.check close "synchronised rate bounded by all participants" 2.0 total;
  List.iter
    (fun move ->
      let m1 = NS.apply m0 move.NS.updates in
      Alcotest.(check int) "both tokens moved" 2
        (List.length
           (Pepanet.Marking.tokens_at compiled m1 2
           @ Pepanet.Marking.tokens_at compiled m1 3));
      Alcotest.(check int) "sources emptied" 0
        (List.length
           (Pepanet.Marking.tokens_at compiled m1 0
           @ Pepanet.Marking.tokens_at compiled m1 1)))
    firings;
  (* The whole space: initial + 2 outcomes. *)
  let space = NSS.of_string src in
  Alcotest.(check int) "three markings" 3 (NSS.n_markings space)

(* Parametric family: m tokens on a ring of k places with one hop
   transition per arc.  Tokens are conserved and, when there is spare
   capacity, the chain is irreducible. *)
let prop_ring_nets =
  let open QCheck2 in
  let gen = Gen.(pair (2 -- 4) (pair (1 -- 2) (float_range 0.5 5.0))) in
  Test.make ~name:"ring nets conserve tokens and stay live" ~count:15 gen
    (fun (k, (m, rate)) ->
      let places =
        List.init k (fun i ->
            Printf.sprintf "place P%d = Agent[%s];" i (if i < m then "Agent" else "_"))
      in
      let hops =
        List.init k (fun i ->
            Printf.sprintf "trans h%d = (hop, %f) from P%d to P%d;" i rate i ((i + 1) mod k))
      in
      let src =
        Printf.sprintf
          "Agent = (hop, %f).Agent;\ntoken Agent;\n%s\n%s" rate
          (String.concat "\n" places) (String.concat "\n" hops)
      in
      let space = NSS.of_string src in
      let conserved =
        List.for_all
          (fun i -> Pepanet.Marking.token_count (NSS.marking space i) = m)
          (List.init (NSS.n_markings space) Fun.id)
      in
      if m >= k then
        (* A full ring has no vacancy anywhere: the single marking is
           dead (the output rule needs a vacant cell). *)
        conserved && NSS.n_markings space = 1 && NSS.deadlocks space = [ 0 ]
      else
        conserved
        && Markov.Ctmc.is_irreducible (NSS.ctmc space)
        && NSS.deadlocks space = [])


(* Random small nets built at the AST level: the printer/parser pair
   reaches a fixpoint, compilation succeeds, and reachable markings
   conserve tokens. *)
let prop_random_nets =
  let open QCheck2 in
  let gen =
    Gen.(
      pair (2 -- 3)
        (pair (1 -- 2) (pair (float_range 0.5 4.0) (pair bool bool))))
  in
  Test.make ~name:"random nets: print fixpoint + conserved tokens" ~count:25 gen
    (fun (k, (m, (rate, (with_static, double_cells)))) ->
      let module Sx = Pepa.Syntax in
      let rnum v = Sx.Rnum v in
      let defs =
        [
          Sx.Proc_def
            ( "Agent",
              Sx.Prefix (Pepa.Action.act "work", rnum rate, Sx.Var "Ready") );
          Sx.Proc_def ("Ready", Sx.Prefix (Pepa.Action.act "go", rnum 1.0, Sx.Var "Agent"));
        ]
        @
        if with_static then
          [
            Sx.Proc_def
              ( "Watch",
                Sx.Prefix
                  (Pepa.Action.act "work", Sx.Rpassive 1.0,
                   Sx.Prefix (Pepa.Action.act "note", rnum 2.0, Sx.Var "Watch")) );
          ]
        else []
      in
      let place i =
        let cell full =
          N.Cell { N.cell_type = "Agent"; initial_token = (if full then Some "Agent" else None) }
        in
        let cells =
          if double_cells then
            N.Ctx_coop (cell (i < m), Pepa.Syntax.String_set.empty, cell false)
          else cell (i < m)
        in
        let context =
          if with_static then
            N.Ctx_coop (cells, Pepa.Syntax.String_set.singleton "work", N.Static "Watch")
          else cells
        in
        { N.place_name = Printf.sprintf "P%d" i; context }
      in
      let transitions =
        List.init k (fun i ->
            {
              N.transition_name = Printf.sprintf "h%d" i;
              firing_action = "go";
              firing_rate = rnum 1.0;
              inputs = [ Printf.sprintf "P%d" i ];
              outputs = [ Printf.sprintf "P%d" ((i + 1) mod k) ];
              priority = 1;
            })
      in
      let net =
        {
          N.definitions = defs;
          token_types = [ "Agent" ];
          places = List.init k place;
          transitions;
        }
      in
      (* printer/parser fixpoint *)
      let printed = Pepanet.Net_printer.net_to_string net in
      let reparsed = Pepanet.Net_parser.net_of_string printed in
      let fixpoint = Pepanet.Net_printer.net_to_string reparsed = printed in
      (* semantics invariants *)
      let space = NSS.build (Pepanet.Net_compile.compile net) in
      let conserved =
        List.for_all
          (fun i -> Pepanet.Marking.token_count (NSS.marking space i) = m)
          (List.init (NSS.n_markings space) Fun.id)
      in
      fixpoint && conserved)


let test_net_agrees_with_flat_pepa () =
  (* A net whose only place holds the token and a static component is an
     ordinary PEPA cooperation in net clothing: same state count, same
     measures. *)
  let net_space =
    NSS.of_string
      {|
        Job = (submit, 2.0).Running;
        Running = (finish, 3.0).Job;
        Server = (submit, infty).(finish, infty).Server;
        token Job;
        place Host = Job[Job] <submit, finish> Server;
      |}
  in
  let pepa_space =
    Pepa.Statespace.of_string
      {|
        Job = (submit, 2.0).Running;
        Running = (finish, 3.0).Job;
        Server = (submit, infty).(finish, infty).Server;
        system Job <submit, finish> Server;
      |}
  in
  Alcotest.(check int) "same state count" (Pepa.Statespace.n_states pepa_space)
    (NSS.n_markings net_space);
  let pi_net = NSS.steady_state net_space in
  let pi_pepa = Pepa.Statespace.steady_state pepa_space in
  List.iter
    (fun action ->
      Alcotest.check close ("throughput " ^ action)
        (Pepa.Statespace.throughput pepa_space pi_pepa action)
        (Pepanet.Net_measures.throughput net_space pi_net action))
    [ "submit"; "finish" ]

let test_alpha_choice_firing_split () =
  (* A token offering two go-derivatives: each is a separate enabling
     instance with its proportional share of the bounded rate. *)
  let src =
    {|
      A = (go, 1.0).B + (go, 3.0).C;
      B = (restb, 1.0).B;
      C = (restc, 1.0).C;
      token A;
      place P = A[A];
      place Q = A[_];
      trans t = (go, 4.0) from P to Q;
    |}
  in
  let compiled = Pepanet.Net_compile.of_string src in
  let m0 = Pepanet.Marking.initial compiled in
  let firings = NS.firings compiled m0 in
  Alcotest.(check int) "two derivative outcomes" 2 (List.length firings);
  let rates =
    List.sort compare (List.map (fun m -> Pepa.Rate.value_exn m.NS.rate) firings)
  in
  (match rates with
  | [ low; high ] ->
      Alcotest.check close "1:3 split, bounded by min(4,4)" 1.0 low;
      Alcotest.check close "1:3 split, bounded by min(4,4)" 3.0 high
  | _ -> Alcotest.fail "unexpected rates");
  (* both outcomes reachable and distinct *)
  let targets =
    List.map
      (fun m ->
        let m1 = NS.apply m0 m.NS.updates in
        Pepanet.Marking.label compiled m1)
      firings
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "distinct derivative states" 2 (List.length targets)


let test_duplicated_place_in_transition () =
  (* "from P, P to Q, Q": two distinct tokens must leave P and occupy two
     distinct cells of Q. *)
  let src =
    {|
      A = (go, 1.0).Done;
      Done = (rest, 1.0).Done;
      token A;
      place P = A[A] <> A[A];
      place Q = A[_] <> A[_];
      trans t = (go, 1.0) from P, P to Q, Q;
    |}
  in
  let compiled = Pepanet.Net_compile.of_string src in
  let m0 = Pepanet.Marking.initial compiled in
  let firings = NS.firings compiled m0 in
  Alcotest.(check bool) "firing enabled" true (firings <> []);
  List.iter
    (fun move ->
      let m1 = NS.apply m0 move.NS.updates in
      Alcotest.(check int) "both tokens moved to Q" 2
        (List.length (Pepanet.Marking.tokens_at compiled m1 1));
      Alcotest.(check int) "P emptied" 0
        (List.length (Pepanet.Marking.tokens_at compiled m1 0));
      Alcotest.(check int) "tokens conserved" 2 (Pepanet.Marking.token_count m1))
    firings;
  (* no self-pairing: every update list touches four distinct cells *)
  List.iter
    (fun move ->
      let touched =
        List.filter_map
          (fun u -> match u with NS.Set_cell (c, _) -> Some c | NS.Set_static _ -> None)
          move.NS.updates
      in
      Alcotest.(check int) "four distinct cells" 4
        (List.length (List.sort_uniq compare touched)))
    firings

let test_roaming_scenario () =
  let space = Scenarios.Roaming.space () in
  Alcotest.(check int) "marking count" 960 (NSS.n_markings space);
  Alcotest.(check (list int)) "deadlock-free" [] (NSS.deadlocks space);
  let throughputs, locations, occupancy = Scenarios.Roaming.patrol_report () in
  let t name = List.assoc name throughputs in
  Alcotest.check close "probe = hop (one probe per visit)" (t "probe") (t "hop");
  Alcotest.check close "log = probe (monitor follows)" (t "probe") (t "log");
  List.iter
    (fun (place, p) -> Alcotest.check close ("symmetry " ^ place) (1.0 /. 3.0) p)
    locations;
  List.iter
    (fun (place, e) -> Alcotest.check close ("occupancy " ^ place) (2.0 /. 3.0) e)
    occupancy;
  let to_b = Scenarios.Roaming.time_to_reach ~place:"HostB" ~token:0 in
  let to_c = Scenarios.Roaming.time_to_reach ~place:"HostC" ~token:0 in
  Alcotest.(check bool) "farther host takes longer" true (to_b < to_c);
  Alcotest.(check bool) "passage times positive" true (to_b > 0.5)

let suite =
  [
    Alcotest.test_case "net parser" `Quick test_parser;
    Alcotest.test_case "net printer round trip" `Quick test_printer_round_trip;
    Alcotest.test_case "compile-time checks" `Quick test_compile_checks;
    Alcotest.test_case "markings" `Quick test_marking_basics;
    Alcotest.test_case "firing semantics" `Quick test_firing_semantics;
    Alcotest.test_case "vacancy blocks firing" `Quick test_vacancy_blocks_firing;
    Alcotest.test_case "enabling instances split the rate" `Quick test_enabling_instances_split_rate;
    Alcotest.test_case "phi mappings are equiprobable" `Quick test_phi_split;
    Alcotest.test_case "priority-based enabling rule" `Quick test_priorities;
    Alcotest.test_case "static components cooperate in places" `Quick test_static_cooperation_in_place;
    Alcotest.test_case "net measures" `Quick test_net_measures;
    Alcotest.test_case "multi-input synchronised firing" `Quick test_multi_input_firing;
    Alcotest.test_case "net agrees with flat PEPA" `Quick test_net_agrees_with_flat_pepa;
    Alcotest.test_case "alpha-choice firing split" `Quick test_alpha_choice_firing_split;
    Alcotest.test_case "duplicated place in a transition" `Quick test_duplicated_place_in_transition;
    Alcotest.test_case "roaming agents scenario" `Quick test_roaming_scenario;
    QCheck_alcotest.to_alcotest prop_ring_nets;
    QCheck_alcotest.to_alcotest prop_random_nets;
    QCheck_alcotest.to_alcotest prop_token_conservation;
  ]
