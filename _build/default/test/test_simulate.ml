module C = Markov.Ctmc
module Sim = Markov.Simulate

let rng () = Sim.Rng.create ~seed:42L

let two_state lambda mu = C.of_transitions ~n:2 [ (0, 1, lambda); (1, 0, mu) ]

let test_rng () =
  let r = rng () in
  (* deterministic given a seed *)
  let a = Sim.Rng.uniform (Sim.Rng.create ~seed:7L) in
  let b = Sim.Rng.uniform (Sim.Rng.create ~seed:7L) in
  Alcotest.(check (float 0.0)) "reproducible" a b;
  (* in range, not constant *)
  let values = List.init 1000 (fun _ -> Sim.Rng.uniform r) in
  Alcotest.(check bool) "in (0,1)" true (List.for_all (fun v -> v > 0.0 && v < 1.0) values);
  let mean = List.fold_left ( +. ) 0.0 values /. 1000.0 in
  Alcotest.(check bool) "roughly centred" true (abs_float (mean -. 0.5) < 0.05);
  (* exponential sample mean approaches 1/rate *)
  let exps = List.init 2000 (fun _ -> Sim.Rng.exponential r ~rate:4.0) in
  let emean = List.fold_left ( +. ) 0.0 exps /. 2000.0 in
  Alcotest.(check bool) "exponential mean" true (abs_float (emean -. 0.25) < 0.02);
  match Sim.Rng.exponential r ~rate:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero rate accepted"

let test_trajectory () =
  let c = two_state 2.0 3.0 in
  let path = Sim.trajectory c ~rng:(rng ()) ~initial:0 ~horizon:100.0 in
  (match path with
  | { Sim.time = 0.0; state = 0 } :: _ -> ()
  | _ -> Alcotest.fail "path must start at (0, initial)");
  Alcotest.(check bool) "many jumps in 100 time units" true (List.length path > 50);
  (* times increase, states alternate on the two-state chain *)
  let rec check = function
    | { Sim.time = t1; state = s1 } :: ({ Sim.time = t2; state = s2 } :: _ as rest) ->
        t2 > t1 && s1 <> s2 && check rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone alternating path" true (check path);
  (* absorbing chains stop *)
  let absorbing = C.of_transitions ~n:2 [ (0, 1, 1.0) ] in
  let short = Sim.trajectory absorbing ~rng:(rng ()) ~initial:0 ~horizon:1000.0 in
  Alcotest.(check bool) "absorbed path is finite" true (List.length short <= 2)

let test_steady_state_estimate () =
  (* Estimated occupancy of state 1 brackets the exact value. *)
  let lambda = 2.0 and mu = 3.0 in
  let c = two_state lambda mu in
  let exact = lambda /. (lambda +. mu) in
  let est =
    Sim.steady_state_estimate c ~rng:(rng ()) ~initial:0 ~batches:20 ~batch_time:100.0
      ~warmup:20.0
      ~reward:(fun s -> if s = 1 then 1.0 else 0.0)
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "CI brackets the exact answer (%.4f in %.4f +/- %.4f)" exact est.Sim.mean
       est.Sim.half_width)
    true
    (abs_float (est.Sim.mean -. exact) < Float.max est.Sim.half_width 0.02);
  Alcotest.(check bool) "interval is informative" true (est.Sim.half_width < 0.1)

let test_throughput_estimate () =
  (* Jumps 0 -> 1 occur at the exact throughput lambda * pi_0. *)
  let lambda = 2.0 and mu = 3.0 in
  let c = two_state lambda mu in
  let exact = lambda *. (mu /. (lambda +. mu)) in
  let est =
    Sim.throughput_estimate c ~rng:(rng ()) ~initial:0 ~batches:20 ~batch_time:100.0
      ~warmup:10.0
      ~counts:(fun src dst -> src = 0 && dst = 1)
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "CI brackets the exact throughput (%.4f in %.4f +/- %.4f)" exact
       est.Sim.mean est.Sim.half_width)
    true
    (abs_float (est.Sim.mean -. exact) < Float.max (2.0 *. est.Sim.half_width) 0.05)

let test_transient_estimate () =
  (* Against the uniformisation answer on the two-state chain. *)
  let c = two_state 2.0 3.0 in
  let t = 0.4 in
  let exact =
    (Markov.Transient.probabilities c ~initial:[| 1.0; 0.0 |] ~t).(1)
  in
  let est =
    Sim.transient_estimate c ~rng:(rng ()) ~initial:0 ~replications:4000 ~t
      ~reward:(fun s -> if s = 1 then 1.0 else 0.0)
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "simulation agrees with uniformisation (%.4f vs %.4f +/- %.4f)" exact
       est.Sim.mean est.Sim.half_width)
    true
    (abs_float (est.Sim.mean -. exact) < Float.max (2.0 *. est.Sim.half_width) 0.03)

let test_simulation_vs_solver_on_scenario () =
  (* The paper's complementarity claim in action: simulate the PDA
     marking chain and compare with the numerical solution. *)
  let ex = Scenarios.Pda.extraction () in
  let space = Pepanet.Net_statespace.build (Pepanet.Net_compile.compile ex.Extract.Ad_to_pepanet.net) in
  let chain = Pepanet.Net_statespace.ctmc space in
  let pi = Pepanet.Net_statespace.steady_state space in
  let exact = Pepanet.Net_measures.throughput space pi "handover" in
  (* handover jumps: the transitions labelled with the firing *)
  let handover_jumps = Hashtbl.create 16 in
  List.iter
    (fun tr ->
      match tr.Pepanet.Net_statespace.label with
      | Pepanet.Net_semantics.Fire { action = "handover"; _ } ->
          Hashtbl.replace handover_jumps
            (tr.Pepanet.Net_statespace.src, tr.Pepanet.Net_statespace.dst) ()
      | _ -> ())
    (Pepanet.Net_statespace.transitions space);
  let est =
    Sim.throughput_estimate chain ~rng:(rng ()) ~initial:0 ~batches:20 ~batch_time:200.0
      ~warmup:20.0
      ~counts:(fun src dst -> Hashtbl.mem handover_jumps (src, dst))
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4f +/- %.4f vs exact %.4f" est.Sim.mean est.Sim.half_width
       exact)
    true
    (abs_float (est.Sim.mean -. exact) < Float.max (3.0 *. est.Sim.half_width) 0.02)

let test_guards () =
  let c = two_state 1.0 1.0 in
  (match Sim.trajectory c ~rng:(rng ()) ~initial:9 ~horizon:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad initial accepted");
  (match Sim.steady_state_estimate c ~rng:(rng ()) ~initial:0 ~batches:1 ~reward:(fun _ -> 1.0) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single batch accepted");
  match Sim.transient_estimate c ~rng:(rng ()) ~initial:0 ~replications:1 ~t:1.0 ~reward:(fun _ -> 1.0) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "single replication accepted"

let suite =
  [
    Alcotest.test_case "rng" `Quick test_rng;
    Alcotest.test_case "trajectories" `Quick test_trajectory;
    Alcotest.test_case "steady-state estimation" `Quick test_steady_state_estimate;
    Alcotest.test_case "throughput estimation" `Quick test_throughput_estimate;
    Alcotest.test_case "transient estimation" `Quick test_transient_estimate;
    Alcotest.test_case "simulation vs solver (PDA)" `Quick test_simulation_vs_solver_on_scenario;
    Alcotest.test_case "input guards" `Quick test_guards;
  ]
