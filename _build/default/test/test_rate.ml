module R = Pepa.Rate

let rate = Alcotest.testable (fun fmt r -> R.pp fmt r) R.equal

let test_constructors () =
  Alcotest.check rate "active" (R.Active 2.5) (R.active 2.5);
  Alcotest.check rate "passive" (R.Passive 1.0) R.passive;
  Alcotest.check rate "weighted passive" (R.Passive 3.0) (R.passive_weighted 3.0);
  Alcotest.(check bool) "zero is zero" true (R.is_zero R.zero);
  Alcotest.(check bool) "passive is passive" true (R.is_passive R.passive);
  Alcotest.check_raises "active rejects 0" (Invalid_argument "Rate.active: expected a finite positive value, got 0")
    (fun () -> ignore (R.active 0.0));
  (match R.active (-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative rate accepted");
  match R.active Float.infinity with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "infinite rate accepted"

let test_sum () =
  Alcotest.check rate "active sum" (R.Active 5.0) (R.sum (R.active 2.0) (R.active 3.0));
  Alcotest.check rate "passive sum adds weights" (R.Passive 3.0) (R.sum R.passive (R.passive_weighted 2.0));
  Alcotest.check rate "zero left identity" (R.Passive 2.0) (R.sum R.zero (R.passive_weighted 2.0));
  Alcotest.check rate "zero right identity" (R.Active 4.0) (R.sum (R.active 4.0) R.zero);
  Alcotest.check_raises "mixed sum rejected" R.Mixed_rates (fun () ->
      ignore (R.sum (R.active 1.0) R.passive))

let test_min () =
  Alcotest.check rate "active min" (R.Active 2.0) (R.min_rate (R.active 2.0) (R.active 3.0));
  Alcotest.check rate "passive beats active" (R.Active 7.0) (R.min_rate R.passive (R.active 7.0));
  Alcotest.check rate "active beats passive (sym)" (R.Active 7.0) (R.min_rate (R.active 7.0) R.passive);
  Alcotest.check rate "two passives: min weight" (R.Passive 2.0)
    (R.min_rate (R.passive_weighted 2.0) (R.passive_weighted 5.0))

let close = Alcotest.float 1e-12

let test_cooperation_active_active () =
  (* Single instance on each side: rate is min of the two. *)
  Alcotest.check rate "simple coop"
    (R.Active 2.0)
    (R.cooperation (R.active 2.0) ~apparent1:(R.active 2.0) (R.active 5.0)
       ~apparent2:(R.active 5.0));
  (* Two instances on the left (apparent 4), one contributing rate 1:
     it gets a quarter share of min(4, 2) = 2. *)
  Alcotest.check rate "shared apparent rate"
    (R.Active 0.5)
    (R.cooperation (R.active 1.0) ~apparent1:(R.active 4.0) (R.active 2.0)
       ~apparent2:(R.active 2.0))

let test_cooperation_passive () =
  (* Passive left defers entirely to the active right. *)
  Alcotest.check rate "passive/active"
    (R.Active 3.0)
    (R.cooperation R.passive ~apparent1:R.passive (R.active 3.0) ~apparent2:(R.active 3.0));
  (* Weighted passive splits the active rate. *)
  Alcotest.check rate "weight share"
    (R.Active 1.0)
    (R.cooperation (R.passive_weighted 1.0) ~apparent1:(R.passive_weighted 3.0) (R.active 3.0)
       ~apparent2:(R.active 3.0));
  (* Both passive stays passive. *)
  Alcotest.(check bool) "passive/passive stays passive" true
    (R.is_passive
       (R.cooperation R.passive ~apparent1:R.passive R.passive ~apparent2:R.passive))

let test_share_scale_value () =
  Alcotest.check close "share active" 0.25 (R.share (R.active 1.0) ~apparent:(R.active 4.0));
  Alcotest.check close "share passive" 0.5
    (R.share (R.passive_weighted 1.0) ~apparent:(R.passive_weighted 2.0));
  Alcotest.check rate "scale" (R.Active 6.0) (R.scale 3.0 (R.active 2.0));
  Alcotest.check close "value_exn" 2.0 (R.value_exn (R.active 2.0));
  match R.value_exn R.passive with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "value_exn accepted passive"

let test_ordering_printing () =
  Alcotest.(check int) "active < passive" (-1) (R.compare (R.active 100.0) R.passive);
  Alcotest.(check string) "pp active" "2.5" (R.to_string (R.active 2.5));
  Alcotest.(check string) "pp passive" "infty" (R.to_string R.passive);
  Alcotest.(check string) "pp weighted" "infty[2]" (R.to_string (R.passive_weighted 2.0))

(* Law: the cooperation rate never exceeds either apparent rate (bounded
   capacity). *)
let prop_bounded_capacity =
  let open QCheck2 in
  let pos = Gen.float_range 0.1 50.0 in
  Test.make ~name:"cooperation is bounded by both apparent rates" ~count:500
    Gen.(quad pos pos pos pos)
    (fun (r1, extra1, r2, extra2) ->
      let apparent1 = R.active (r1 +. extra1) and apparent2 = R.active (r2 +. extra2) in
      match R.cooperation (R.active r1) ~apparent1 (R.active r2) ~apparent2 with
      | R.Active r ->
          r <= R.value_exn apparent1 +. 1e-9 && r <= R.value_exn apparent2 +. 1e-9 && r > 0.0
      | R.Passive _ -> false)

(* Law: instances sharing an apparent rate split it exactly: summing the
   cooperation rate over all left instances gives min(ra1, ra2). *)
let prop_shares_partition =
  let open QCheck2 in
  let rates_gen = Gen.(list_size (1 -- 5) (float_range 0.1 10.0)) in
  Test.make ~name:"left instances partition the bounded rate" ~count:300
    Gen.(pair rates_gen (float_range 0.1 30.0))
    (fun (lefts, r2) ->
      let apparent1 = List.fold_left (fun acc r -> R.sum acc (R.active r)) R.zero lefts in
      let apparent2 = R.active r2 in
      let total =
        List.fold_left
          (fun acc r ->
            acc
            +. R.value_exn
                 (R.cooperation (R.active r) ~apparent1 (R.active r2) ~apparent2))
          0.0 lefts
      in
      let expected = Float.min (R.value_exn apparent1) r2 in
      abs_float (total -. expected) < 1e-9)

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "apparent-rate sum" `Quick test_sum;
    Alcotest.test_case "apparent-rate min" `Quick test_min;
    Alcotest.test_case "cooperation: active/active" `Quick test_cooperation_active_active;
    Alcotest.test_case "cooperation: passive" `Quick test_cooperation_passive;
    Alcotest.test_case "share, scale, value" `Quick test_share_scale_value;
    Alcotest.test_case "ordering and printing" `Quick test_ordering_printing;
    QCheck_alcotest.to_alcotest prop_bounded_capacity;
    QCheck_alcotest.to_alcotest prop_shares_partition;
  ]
