module C = Markov.Ctmc
module T = Markov.Transient

let close = Alcotest.float 1e-7

let test_poisson_weights () =
  List.iter
    (fun lambda_t ->
      let offset, weights = T.poisson_weights ~lambda_t ~epsilon:1e-12 in
      let total = Array.fold_left ( +. ) 0.0 weights in
      Alcotest.check close (Printf.sprintf "weights sum (lt=%g)" lambda_t) 1.0 total;
      let mean = ref 0.0 in
      Array.iteri (fun k w -> mean := !mean +. (w *. float_of_int (offset + k))) weights;
      Alcotest.(check bool)
        (Printf.sprintf "mean close to %g" lambda_t)
        true
        (abs_float (!mean -. lambda_t) < 1e-6 +. (lambda_t *. 1e-9)))
    [ 0.0; 0.3; 1.0; 7.5; 40.0; 400.0; 4000.0 ]

let two_state lambda mu = C.of_transitions ~n:2 [ (0, 1, lambda); (1, 0, mu) ]

(* Analytic transient of the two-state chain starting in state 0:
   p1(t) = l/(l+m) (1 - exp(-(l+m) t)). *)
let test_two_state_analytic () =
  let lambda = 2.0 and mu = 3.0 in
  let c = two_state lambda mu in
  List.iter
    (fun t ->
      let p = T.probabilities c ~initial:[| 1.0; 0.0 |] ~t in
      let expected = lambda /. (lambda +. mu) *. (1.0 -. exp (-.(lambda +. mu) *. t)) in
      Alcotest.check close (Printf.sprintf "p1(%g)" t) expected p.(1);
      Alcotest.check close "mass conserved" 1.0 (p.(0) +. p.(1)))
    [ 0.0; 0.01; 0.1; 0.5; 1.0; 3.0 ]

let test_convergence_to_steady_state () =
  let c = C.of_transitions ~n:3 [ (0, 1, 1.0); (1, 2, 2.0); (2, 0, 3.0); (1, 0, 0.5) ] in
  let steady = Markov.Steady.solve c in
  let initial = [| 1.0; 0.0; 0.0 |] in
  let late = T.probabilities c ~initial ~t:200.0 in
  Alcotest.(check bool) "t -> infinity approaches steady state" true
    (Markov.Measures.distribution_distance steady late < 1e-8)

let test_absorbing_transient () =
  (* Pure death chain: probability of absorption grows monotonically. *)
  let c = C.of_transitions ~n:2 [ (0, 1, 1.0) ] in
  let p t = (T.probabilities c ~initial:[| 1.0; 0.0 |] ~t).(1) in
  Alcotest.check close "p(1.0)" (1.0 -. exp (-1.0)) (p 1.0);
  Alcotest.(check bool) "monotone" true (p 0.5 < p 1.0 && p 1.0 < p 2.0)

let test_rewards_and_guards () =
  let c = two_state 1.0 1.0 in
  let reward = T.expected_reward c ~initial:[| 1.0; 0.0 |] ~rewards:[| 0.0; 10.0 |] ~t:100.0 in
  Alcotest.check close "expected reward at equilibrium" 5.0 reward;
  Alcotest.check close "point probability" 0.5
    (T.point_probability c ~initial:[| 1.0; 0.0 |] ~t:100.0 ~state:0);
  (match T.probabilities c ~initial:[| 0.5; 0.4 |] ~t:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unnormalised initial accepted");
  match T.probabilities c ~initial:[| 1.0; 0.0 |] ~t:(-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative time accepted"

let test_dtmc () =
  let d = Markov.Dtmc.of_rows [| [ (0, 0.5); (1, 0.5) ]; [ (0, 1.0) ] |] in
  let pi = Markov.Dtmc.steady d in
  Alcotest.check close "dtmc steady 0" (2.0 /. 3.0) pi.(0);
  let step = Markov.Dtmc.step d [| 1.0; 0.0 |] in
  Alcotest.check close "one step" 0.5 step.(1);
  let after = Markov.Dtmc.distribution_after d ~initial:[| 1.0; 0.0 |] ~steps:50 in
  Alcotest.(check bool) "iterated step converges" true
    (Markov.Measures.distribution_distance pi after < 1e-9);
  (* Uniformised chain of a CTMC has the same steady state. *)
  let c = two_state 2.0 3.0 in
  let u = Markov.Dtmc.uniformised_of_ctmc c in
  Alcotest.(check bool) "uniformised steady state matches" true
    (Markov.Measures.distribution_distance (Markov.Dtmc.steady u) (Markov.Steady.solve c) < 1e-8);
  (* Embedded jump chain of the two-state chain alternates: steady state
     of the jump chain is uniform regardless of rates. *)
  let e = Markov.Dtmc.embedded_of_ctmc c in
  let pe = Markov.Dtmc.distribution_after e ~initial:[| 1.0; 0.0 |] ~steps:101 in
  Alcotest.check close "embedded alternation" 1.0 pe.(1);
  match Markov.Dtmc.of_rows [| [ (0, 0.4) ] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unnormalised row accepted"

let test_measures () =
  let pi = [| 0.25; 0.25; 0.5 |] in
  Alcotest.check close "expectation" 1.25
    (Markov.Measures.expectation pi (fun i -> float_of_int i));
  Alcotest.check close "probability" 0.75 (Markov.Measures.probability pi (fun i -> i > 0));
  Alcotest.check close "flow" 1.0
    (Markov.Measures.flow pi [ (0, 1, 2.0); (2, 0, 1.0) ] (fun _ -> true));
  Alcotest.check close "mean recurrence" 4.0 (Markov.Measures.mean_recurrence_time pi 0);
  Alcotest.(check bool) "unvisited recurrence infinite" true
    (Markov.Measures.mean_recurrence_time [| 0.0; 1.0 |] 0 = infinity)

let suite =
  [
    Alcotest.test_case "poisson weights" `Quick test_poisson_weights;
    Alcotest.test_case "two-state analytic transient" `Quick test_two_state_analytic;
    Alcotest.test_case "convergence to steady state" `Quick test_convergence_to_steady_state;
    Alcotest.test_case "absorbing transient" `Quick test_absorbing_transient;
    Alcotest.test_case "rewards and input guards" `Quick test_rewards_and_guards;
    Alcotest.test_case "dtmc" `Quick test_dtmc;
    Alcotest.test_case "reward measures" `Quick test_measures;
  ]
