module A = Uml.Activity
module X = Xml_kit.Minixml

let activity_eq = Alcotest.testable (fun fmt d -> Format.fprintf fmt "%s" d.A.diagram_name) ( = )

let test_activity_round_trip () =
  List.iter
    (fun d ->
      let doc = Uml.Xmi_write.activity_to_xml d in
      let reread = Uml.Xmi_read.activity_of_xml doc in
      Alcotest.check activity_eq ("round trip " ^ d.A.diagram_name) d reread)
    [ Scenarios.Pda.diagram (); Scenarios.Instant_message.diagram (); Scenarios.File_protocol.diagram () ]

let test_stereotype_and_tags () =
  let d = Scenarios.Pda.diagram () in
  let doc = Uml.Xmi_write.activity_to_xml d in
  let reread = Uml.Xmi_read.activity_of_xml doc in
  let moves =
    List.filter
      (fun (n : A.node) -> match n.A.kind with A.Action { move = true; _ } -> true | _ -> false)
      reread.A.nodes
  in
  Alcotest.(check int) "one <<move>> survives" 1 (List.length moves);
  let locs = A.locations reread in
  Alcotest.(check (list string)) "atloc tags survive" [ "transmitter_1"; "transmitter_2" ] locs;
  let occ = List.hd reread.A.occurrences in
  Alcotest.(check string) "class survives" "UserAgent" occ.A.class_name;
  Alcotest.(check (option string)) "state survives" (Some "initial") occ.A.obj_state

let test_annotations_round_trip () =
  let d = Scenarios.Pda.diagram () in
  let act = (List.hd (A.action_nodes d)).A.node_id in
  let d = A.annotate d ~node_id:act ~tag:"throughput" ~value:"0.2548" in
  let reread = Uml.Xmi_read.activity_of_xml (Uml.Xmi_write.activity_to_xml d) in
  Alcotest.(check (option string)) "tagged value round trip" (Some "0.2548")
    (A.annotation reread ~node_id:act ~tag:"throughput")

let test_statechart_round_trip () =
  let charts = [ Scenarios.Tomcat.client (); Scenarios.Tomcat.server_jsp () ] in
  let doc = Uml.Xmi_write.statecharts_to_xml charts in
  let reread = Uml.Xmi_read.statecharts_of_xml doc in
  Alcotest.(check int) "two machines" 2 (List.length reread);
  Alcotest.(check bool) "identical" true (reread = charts)

let test_combined_document () =
  let doc =
    Uml.Xmi_write.document_to_xml ~model_name:"combined"
      [ Scenarios.Pda.diagram () ]
      [ Scenarios.Tomcat.client () ]
  in
  Alcotest.(check int) "one activity graph" 1 (List.length (Uml.Xmi_read.activities_of_xml doc));
  Alcotest.(check int) "one state machine" 1 (List.length (Uml.Xmi_read.statecharts_of_xml doc));
  (* document parses back from text form too *)
  let text = X.to_string doc in
  let reparsed = X.parse_string text in
  Alcotest.(check int) "after text round trip" 1
    (List.length (Uml.Xmi_read.activities_of_xml reparsed))

let test_fork_join_round_trip () =
  let b = Uml.Activity.Build.create "forked" in
  let i = Uml.Activity.Build.initial b in
  let fork = Uml.Activity.Build.fork b in
  let a1 = Uml.Activity.Build.action b "left" in
  let a2 = Uml.Activity.Build.action b "right" in
  let join = Uml.Activity.Build.join b in
  let fin = Uml.Activity.Build.final b in
  Uml.Activity.Build.edge b i fork;
  Uml.Activity.Build.edge b fork a1;
  Uml.Activity.Build.edge b fork a2;
  Uml.Activity.Build.edge b a1 join;
  Uml.Activity.Build.edge b a2 join;
  Uml.Activity.Build.edge b join fin;
  let o = Uml.Activity.Build.occurrence b ~obj:"x" ~cls:"T" in
  Uml.Activity.Build.flow_into b ~occ:o ~activity:a1;
  let d = Uml.Activity.Build.finish b in
  let reread = Uml.Xmi_read.activity_of_xml (Uml.Xmi_write.activity_to_xml d) in
  Alcotest.(check bool) "fork/join survive XMI" true (reread = d);
  Alcotest.(check int) "fork present" 1
    (List.length (List.filter (fun (n : A.node) -> n.A.kind = A.Fork) reread.A.nodes));
  Alcotest.(check int) "join present" 1
    (List.length (List.filter (fun (n : A.node) -> n.A.kind = A.Join) reread.A.nodes))

let test_reader_errors () =
  let reject msg src =
    match Uml.Xmi_read.activity_of_string src with
    | exception Uml.Xmi_read.Xmi_error _ -> ()
    | _ -> Alcotest.failf "%s: accepted" msg
  in
  reject "no graph" "<XMI xmi.version=\"1.2\"><XMI.content/></XMI>";
  reject "missing id"
    {|<XMI xmi.version="1.2"><XMI.content><UML:ActivityGraph name="g">
        <UML:StateMachine.top><UML:CompositeState xmi.id="t"><UML:CompositeState.subvertex>
          <UML:ActionState name="a"/>
        </UML:CompositeState.subvertex></UML:CompositeState></UML:StateMachine.top>
      </UML:ActivityGraph></XMI.content></XMI>|};
  reject "transition between object flows"
    {|<XMI xmi.version="1.2"><XMI.content><UML:ActivityGraph xmi.id="g" name="g">
        <UML:StateMachine.top><UML:CompositeState xmi.id="t"><UML:CompositeState.subvertex>
          <UML:Pseudostate xmi.id="i" kind="initial"/>
          <UML:ObjectFlowState xmi.id="o1" name="x"/>
          <UML:ObjectFlowState xmi.id="o2" name="y"/>
        </UML:CompositeState.subvertex></UML:CompositeState></UML:StateMachine.top>
        <UML:StateMachine.transitions>
          <UML:Transition xmi.id="t1" source="o1" target="o2"/>
        </UML:StateMachine.transitions>
      </UML:ActivityGraph></XMI.content></XMI>|}

let test_reader_tolerates_unknown_elements () =
  (* Elements outside the known vocabulary are skipped, mirroring a
     metamodel-driven reader. *)
  let d = Scenarios.Pda.diagram () in
  let doc = Uml.Xmi_write.activity_to_xml d in
  let noisy =
    X.map_elements
      (fun node ->
        if X.name node = "UML:CompositeState.subvertex" then
          X.add_child (X.Element ("Vendor:Widget", [ ("x", "1") ], [])) node
        else node)
      doc
  in
  let reread = Uml.Xmi_read.activity_of_xml noisy in
  Alcotest.(check int) "nodes unaffected" (List.length d.A.nodes) (List.length reread.A.nodes)

let suite =
  [
    Alcotest.test_case "activity diagram round trip" `Quick test_activity_round_trip;
    Alcotest.test_case "stereotypes and tagged values" `Quick test_stereotype_and_tags;
    Alcotest.test_case "annotations round trip" `Quick test_annotations_round_trip;
    Alcotest.test_case "state machine round trip" `Quick test_statechart_round_trip;
    Alcotest.test_case "combined documents" `Quick test_combined_document;
    Alcotest.test_case "fork/join round trip" `Quick test_fork_join_round_trip;
    Alcotest.test_case "reader errors" `Quick test_reader_errors;
    Alcotest.test_case "unknown elements tolerated" `Quick test_reader_tolerates_unknown_elements;
  ]
