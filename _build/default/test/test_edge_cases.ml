(* Edge cases cutting across modules: file round trips, degenerate
   models, passive firing labels, density/CDF consistency. *)

module X = Xml_kit.Minixml

let close = Alcotest.float 1e-9

let test_xml_file_io () =
  let path = Filename.temp_file "minixml" ".xml" in
  let doc = X.Element ("root", [ ("k", "v") ], [ X.Pi ("proc", "inst"); X.Element ("c", [], []) ]) in
  X.write_file path doc;
  let reread = X.parse_file path in
  Alcotest.(check bool) "file round trip" true (X.equal doc reread);
  (match reread with
  | X.Element (_, _, kids) ->
      Alcotest.(check bool) "PI preserved" true
        (List.exists (function X.Pi ("proc", "inst") -> true | _ -> false) kids)
  | _ -> Alcotest.fail "unexpected shape");
  Sys.remove path

let test_single_state_model () =
  let space = Pepa.Statespace.of_string "P = (a, 1.0).P;" in
  Alcotest.(check int) "one state" 1 (Pepa.Statespace.n_states space);
  let pi = Pepa.Statespace.steady_state space in
  Alcotest.check close "trivial distribution" 1.0 pi.(0);
  Alcotest.check close "self-loop throughput" 1.0 (Pepa.Statespace.throughput space pi "a")

let test_stop_model () =
  let space = Pepa.Statespace.of_string "P = Stop; system P;" in
  Alcotest.(check int) "one dead state" 1 (Pepa.Statespace.n_states space);
  Alcotest.(check (list int)) "dead" [ 0 ] (Pepa.Statespace.deadlocks space)

let test_analysis_negative_cases () =
  let space = Pepa.Statespace.of_string "P = (a, 1.0).(b, 1.0).P;" in
  Alcotest.(check bool) "unreachable action" false (Pepa.Analysis.reachable_action space "zz");
  Alcotest.(check bool) "eventually_reaches false for unknown" false
    (Pepa.Analysis.eventually_reaches space ~from:0 "zz");
  Alcotest.(check (list int)) "no state enables unknown" []
    (Pepa.Analysis.states_enabling space "zz")

let test_passive_firing_label () =
  (* A net transition labelled passive inherits the token's rate. *)
  let src =
    {|
      A = (go, 3.0).Done;
      Done = (rest, 1.0).Done;
      token A;
      place P = A[A];
      place Q = A[_];
      trans t = (go, infty) from P to Q;
    |}
  in
  let compiled = Pepanet.Net_compile.of_string src in
  let m0 = Pepanet.Marking.initial compiled in
  (match Pepanet.Net_semantics.firings compiled m0 with
  | [ move ] ->
      Alcotest.check close "rate from the token" 3.0
        (Pepa.Rate.value_exn move.Pepanet.Net_semantics.rate)
  | moves -> Alcotest.failf "expected one firing, got %d" (List.length moves));
  (* Both passive: no rate anywhere -> state-space failure. *)
  let both =
    {|
      A = (go, infty).Done;
      Done = (rest, 1.0).Done;
      token A;
      place P = A[A];
      place Q = A[_];
      trans t = (go, infty) from P to Q;
    |}
  in
  match Pepanet.Net_statespace.of_string both with
  | exception Pepanet.Net_statespace.Passive_firing _ -> ()
  | _ -> Alcotest.fail "fully passive firing accepted"

let test_statechart_self_loop () =
  let chart =
    Uml.Statechart.make ~name:"Beeper" ~states:[ "On" ]
      ~transitions:[ ("On", "On", "beep", Some 5.0) ]
      ()
  in
  let ex = Extract.Sc_to_pepa.extract [ chart ] in
  let analysis = Choreographer.Workbench.analyse_pepa ex.Extract.Sc_to_pepa.model in
  Alcotest.check close "self-loop throughput" 5.0
    (Option.get (Choreographer.Results.throughput analysis.Choreographer.Workbench.results "beep"))

let test_terminal_chart_state () =
  (* A state with no outgoing transitions maps to Stop: the composed
     model ends in an absorbing state; the direct solver handles it. *)
  let chart =
    Uml.Statechart.make ~name:"Oneshot" ~states:[ "Start"; "Finished" ]
      ~transitions:[ ("Start", "Finished", "fire", Some 2.0) ]
      ()
  in
  let ex = Extract.Sc_to_pepa.extract [ chart ] in
  let analysis = Choreographer.Workbench.analyse_pepa ex.Extract.Sc_to_pepa.model in
  let probabilities = Choreographer.Workbench.local_probabilities analysis ~leaf:0 in
  Alcotest.check close "all mass absorbed" 1.0 (List.assoc "Oneshot_Finished" probabilities)

let test_density_consistent_with_cdf () =
  let c = Markov.Ctmc.of_transitions ~n:2 [ (0, 1, 2.0) ] in
  let sources = [ (0, 1.0) ] and targets = [ 1 ] in
  let times = List.init 41 (fun i -> float_of_int i *. 0.05) in
  let density = Markov.Passage.density c ~sources ~targets ~times in
  (* Integrating the finite-difference density recovers the CDF change. *)
  let integral = List.fold_left (fun acc (_, d) -> acc +. (d *. 0.05)) 0.0 density in
  let expected =
    Markov.Passage.cdf c ~sources ~targets ~t:2.0 -. Markov.Passage.cdf c ~sources ~targets ~t:0.0
  in
  Alcotest.(check bool) "integral matches CDF" true (abs_float (integral -. expected) < 1e-6)

let test_mdr_export_stable () =
  let doc = Uml.Xmi_write.activity_to_xml (Scenarios.Pda.diagram ()) in
  let repo = Uml.Mdr.create () in
  Uml.Mdr.import_xmi repo doc;
  let exported = Uml.Mdr.export_xmi repo in
  (* import the export into a second repository: fixpoint *)
  let repo2 = Uml.Mdr.create () in
  Uml.Mdr.import_xmi repo2 exported;
  Alcotest.(check bool) "export o import is a fixpoint" true
    (X.equal exported (Uml.Mdr.export_xmi repo2))

let test_results_pp () =
  let results =
    Choreographer.Results.make ~source:"demo" ~kind:Choreographer.Results.Pepa_model ~n_states:4
      ~n_transitions:6 ~throughputs:[ ("a", 1.5) ] ~state_probabilities:[ ("S", 0.25) ]
      ~warnings:[ "w" ] ()
  in
  let text = Format.asprintf "%a" Choreographer.Results.pp results in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec scan i = i + n <= h && (String.sub text i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "shows source" true (contains "demo");
  Alcotest.(check bool) "shows throughput" true (contains "a");
  Alcotest.(check bool) "shows warnings" true (contains "warning: w")

let test_diagram_text_fork_join () =
  let src =
    {|
      activity F {
        initial i;
        fork f;
        action left;
        action right;
        join j;
        final z;
        edge i -> f;
        f -> left -> j;
        f -> right -> j;
        j -> z;
        object a : T;
        object b : T;
        occ oa = a;
        occ ob = b;
        oa -> left;
        ob -> right;
      }
    |}
  in
  let activities, _ = Uml.Diagram_text.parse src in
  let d = List.hd activities in
  Alcotest.(check int) "fork parsed" 1
    (List.length
       (List.filter (fun (n : Uml.Activity.node) -> n.Uml.Activity.kind = Uml.Activity.Fork)
          d.Uml.Activity.nodes));
  (* extraction works: both objects run their branch *)
  let ex = Extract.Ad_to_pepanet.extract d in
  let analysis = Choreographer.Workbench.analyse_net ex.Extract.Ad_to_pepanet.net in
  Alcotest.(check bool) "both branches measurable" true
    (Choreographer.Results.throughput analysis.Choreographer.Workbench.net_results "left"
     <> None)

let suite =
  [
    Alcotest.test_case "xml file io and PIs" `Quick test_xml_file_io;
    Alcotest.test_case "single-state model" `Quick test_single_state_model;
    Alcotest.test_case "stop model" `Quick test_stop_model;
    Alcotest.test_case "analysis negatives" `Quick test_analysis_negative_cases;
    Alcotest.test_case "passive firing labels" `Quick test_passive_firing_label;
    Alcotest.test_case "statechart self-loop" `Quick test_statechart_self_loop;
    Alcotest.test_case "terminal chart state" `Quick test_terminal_chart_state;
    Alcotest.test_case "density integrates to the CDF" `Quick test_density_consistent_with_cdf;
    Alcotest.test_case "mdr export fixpoint" `Quick test_mdr_export_stable;
    Alcotest.test_case "results pretty-printing" `Quick test_results_pp;
    Alcotest.test_case "fork/join through the text notation" `Quick test_diagram_text_fork_join;
  ]
