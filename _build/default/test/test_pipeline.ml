module X = Xml_kit.Minixml
module P = Choreographer.Pipeline
module R = Choreographer.Results

let close = Alcotest.float 1e-9

let pda_options = { P.default_options with P.rates = Scenarios.Pda.rates }

let test_full_pipeline_activity () =
  let project = Scenarios.Pda.poseidon_project () in
  let outcome = P.process_document ~options:pda_options project in
  Alcotest.(check int) "one result set" 1 (List.length outcome.P.results);
  let results = List.hd outcome.P.results in
  Alcotest.(check string) "named after the diagram" "PDA" results.R.source;
  Alcotest.(check int) "six markings" 6 results.R.n_states;
  (* The reflected document carries throughput annotations. *)
  let diagram = Uml.Xmi_read.activity_of_xml outcome.P.reflected in
  let annotated =
    List.filter
      (fun (n : Uml.Activity.node) ->
        Uml.Activity.annotation diagram ~node_id:n.Uml.Activity.node_id ~tag:"throughput" <> None)
      (Uml.Activity.action_nodes diagram)
  in
  Alcotest.(check int) "all six annotated" 6 (List.length annotated);
  (* Annotation values equal the direct analysis. *)
  let handover_node =
    List.find
      (fun (n : Uml.Activity.node) ->
        match n.Uml.Activity.kind with
        | Uml.Activity.Action { name; _ } -> name = "handover"
        | _ -> false)
      (Uml.Activity.action_nodes diagram)
  in
  Alcotest.(check (option string)) "reflected value matches direct analysis"
    (Some (Extract.Reflector.format_measure (Option.get (R.throughput results "handover"))))
    (Uml.Activity.annotation diagram ~node_id:handover_node.Uml.Activity.node_id ~tag:"throughput");
  (* Layout preserved. *)
  Alcotest.(check bool) "layout preserved" true
    (Uml.Poseidon.layout_of outcome.P.reflected <> []);
  (* The intermediate artefacts exist and are parsable. *)
  (match outcome.P.extracted_nets with
  | [ (name, net) ] ->
      Alcotest.(check string) "net per diagram" "PDA" name;
      let text = Pepanet.Net_printer.net_to_string net in
      ignore (Pepanet.Net_parser.net_of_string text)
  | _ -> Alcotest.fail "expected one extracted net")

let test_full_pipeline_statecharts () =
  let doc =
    Uml.Xmi_write.statecharts_to_xml [ Scenarios.Tomcat.client (); Scenarios.Tomcat.server_jsp () ]
  in
  let outcome = P.process_document doc in
  let results = List.hd outcome.P.results in
  Alcotest.(check bool) "state probabilities computed" true
    (results.R.state_probabilities <> []);
  let total_client =
    List.fold_left
      (fun acc (name, p) ->
        if String.length name >= 6 && String.sub name 0 6 = "Client" then acc +. p else acc)
      0.0 results.R.state_probabilities
  in
  Alcotest.check close "client probabilities sum to 1" 1.0 total_client;
  let charts = Uml.Xmi_read.statecharts_of_xml outcome.P.reflected in
  List.iter
    (fun (chart : Uml.Statechart.t) ->
      List.iter
        (fun (s : Uml.Statechart.state) ->
          Alcotest.(check bool) "state annotated" true
            (Uml.Statechart.annotation chart ~state_id:s.Uml.Statechart.state_id
               ~tag:"steadyStateProbability"
             <> None))
        chart.Uml.Statechart.states)
    charts

let test_combined_document () =
  let doc =
    Uml.Xmi_write.document_to_xml ~model_name:"combo"
      [ Scenarios.Pda.diagram () ]
      [ Scenarios.Tomcat.client (); Scenarios.Tomcat.server_jsp () ]
  in
  let outcome = P.process_document ~options:pda_options doc in
  Alcotest.(check int) "activity + chart results" 2 (List.length outcome.P.results);
  Alcotest.(check int) "one extracted net" 1 (List.length outcome.P.extracted_nets);
  Alcotest.(check int) "one extracted model" 1 (List.length outcome.P.extracted_models)

let test_file_round_trip () =
  let dir = Filename.temp_file "chor" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let input = Filename.concat dir "in.xmi" in
  let output = Filename.concat dir "out.xmi" in
  let rates_path = Filename.concat dir "model.rates" in
  X.write_file input (Scenarios.Pda.poseidon_project ());
  Out_channel.with_open_bin rates_path (fun oc ->
      Out_channel.output_string oc (Uml.Rates_file.to_string Scenarios.Pda.rates));
  let outcome = P.process_file ~rates_path ~input ~output () in
  Alcotest.(check bool) "output written" true (Sys.file_exists output);
  let reread = X.parse_file output in
  Alcotest.(check bool) "output equals in-memory document" true
    (X.equal reread outcome.P.reflected)

let test_pipeline_errors () =
  let empty =
    X.Element
      ( "XMI",
        [ ("xmi.version", "1.2") ],
        [ X.Element ("XMI.content", [], []) ] )
  in
  (match P.process_document empty with
  | exception P.Pipeline_error _ -> ()
  | _ -> Alcotest.fail "empty document accepted");
  (* Metamodel violations are reported as pipeline errors. *)
  let invalid =
    X.Element ("XMI", [ ("xmi.version", "1.2") ], [ X.Element ("Bogus", [], []) ])
  in
  match P.process_document invalid with
  | exception P.Pipeline_error _ -> ()
  | _ -> Alcotest.fail "invalid document accepted"

let test_results_xmltable () =
  let results =
    R.make ~source:"demo" ~kind:R.Pepa_net ~n_states:6 ~n_transitions:7
      ~throughputs:[ ("handover", 0.254777); ("abort", 0.1273885) ]
      ~state_probabilities:[ ("Client_Wait", 0.4479) ]
      ~warnings:[ "something mild" ] ()
  in
  let round = R.of_xmltable (R.to_xmltable results) in
  Alcotest.(check bool) "xmltable round trip" true (round = results);
  (* and through text *)
  let text = X.to_string (R.to_xmltable results) in
  let round2 = R.of_xmltable (X.parse_string text) in
  Alcotest.(check bool) "xmltable text round trip" true (round2 = results);
  Alcotest.(check (option (float 1e-12))) "accessors" (Some 0.254777)
    (R.throughput results "handover");
  match R.of_xmltable (X.Element ("nope", [], [])) with
  | exception R.Malformed_results _ -> ()
  | _ -> Alcotest.fail "malformed results accepted"

let test_html_report () =
  let outcome = P.process_document ~options:pda_options (Scenarios.Pda.poseidon_project ()) in
  let html = Choreographer.Html_report.of_outcome ~title:"PDA report" outcome in
  let contains needle =
    let n = String.length needle and h = String.length html in
    let rec scan i = i + n <= h && (String.sub html i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "doctype" true (contains "<!DOCTYPE html>");
  Alcotest.(check bool) "title" true (contains "PDA report");
  Alcotest.(check bool) "throughput table" true (contains "Throughput");
  Alcotest.(check bool) "annotated activity" true (contains "download file");
  Alcotest.(check bool) "move stereotype" true (contains "&laquo;move&raquo;");
  Alcotest.(check bool) "net text embedded" true (contains "trans t_handover");
  Alcotest.(check bool) "graphviz section" true (contains "digraph pepa_net");
  Alcotest.(check string) "escaping" "a&amp;b &lt;c&gt; &quot;d&quot;"
    (Choreographer.Html_report.escape "a&b <c> \"d\"");
  (* write-to-file wrapper *)
  let path = Filename.temp_file "report" ".html" in
  Choreographer.Html_report.write ~title:"PDA report" ~path outcome;
  Alcotest.(check bool) "file written" true
    (In_channel.with_open_bin path In_channel.input_all = html);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "full pipeline on an activity diagram" `Quick test_full_pipeline_activity;
    Alcotest.test_case "full pipeline on state diagrams" `Quick test_full_pipeline_statecharts;
    Alcotest.test_case "combined documents" `Quick test_combined_document;
    Alcotest.test_case "file-level round trip" `Quick test_file_round_trip;
    Alcotest.test_case "pipeline errors" `Quick test_pipeline_errors;
    Alcotest.test_case "xmltable results format" `Quick test_results_xmltable;
    Alcotest.test_case "html report" `Quick test_html_report;
  ]
