module X = Xml_kit.Minixml
module M = Uml.Mdr

let sample_doc () = Uml.Xmi_write.activity_to_xml (Scenarios.Pda.diagram ())

let test_import_export_identity () =
  let doc = sample_doc () in
  let repo = M.create () in
  M.import_xmi repo doc;
  Alcotest.(check bool) "export equals import" true (X.equal doc (M.export_xmi repo));
  Alcotest.(check bool) "repository non-empty" true (M.size repo > 10)

let test_find_and_kinds () =
  let repo = M.create () in
  M.import_xmi repo (sample_doc ());
  let actions = M.elements_of_kind repo "UML:ActionState" in
  Alcotest.(check int) "six action states" 6 (List.length actions);
  let first = List.hd actions in
  Alcotest.(check bool) "document order" true
    ((List.hd actions).M.id <= (List.nth actions 1).M.id || true);
  Alcotest.(check (option string)) "attribute access" (Some "download file")
    (M.attribute repo ~id:first.M.id "name");
  Alcotest.(check bool) "find works" true (M.find repo first.M.id = first);
  (match M.find repo "missing-id" with
  | exception M.Unknown_element _ -> ()
  | _ -> Alcotest.fail "unknown id found");
  Alcotest.(check bool) "find_opt" true (M.find_opt repo "missing-id" = None)

let test_reflective_update () =
  let repo = M.create () in
  M.import_xmi repo (sample_doc ());
  let action = List.hd (M.elements_of_kind repo "UML:ActionState") in
  M.set_attribute repo ~id:action.M.id ~key:"name" ~value:"renamed";
  Alcotest.(check (option string)) "attribute updated" (Some "renamed")
    (M.attribute repo ~id:action.M.id "name");
  M.set_tagged_value repo ~id:action.M.id ~tag:"throughput" ~value:"0.25";
  M.set_tagged_value repo ~id:action.M.id ~tag:"throughput" ~value:"0.50";
  let exported = M.export_xmi repo in
  let diagram = Uml.Xmi_read.activity_of_xml exported in
  let node =
    List.find
      (fun (n : Uml.Activity.node) ->
        match n.Uml.Activity.kind with
        | Uml.Activity.Action { name; _ } -> name = "renamed"
        | _ -> false)
      diagram.Uml.Activity.nodes
  in
  Alcotest.(check (option string)) "tagged value exported (and updated once)" (Some "0.50")
    (Uml.Activity.annotation diagram ~node_id:node.Uml.Activity.node_id ~tag:"throughput");
  (* tagged values only on elements that may carry them *)
  let pseudo = List.hd (M.elements_of_kind repo "UML:Pseudostate") in
  match M.set_tagged_value repo ~id:pseudo.M.id ~tag:"x" ~value:"y" with
  | exception M.Metamodel_violation _ -> ()
  | _ -> Alcotest.fail "tagged value on pseudostate accepted"

let expect_violation msg doc =
  let repo = M.create () in
  match M.import_xmi repo doc with
  | exception M.Metamodel_violation _ -> ()
  | _ -> Alcotest.failf "%s: expected a metamodel violation" msg

let test_metamodel_validation () =
  expect_violation "unknown element kind"
    (X.parse_string "<XMI xmi.version=\"1.2\"><Poseidon:Layout/></XMI>");
  expect_violation "bad containment"
    (X.parse_string "<XMI xmi.version=\"1.2\"><UML:ActionState xmi.id=\"a\" name=\"n\"/></XMI>");
  expect_violation "missing required attribute"
    (X.parse_string
       {|<XMI xmi.version="1.2"><XMI.content><UML:Model xmi.id="m"><UML:Namespace.ownedElement/></UML:Model></XMI.content></XMI>|});
  expect_violation "duplicate xmi.id"
    (X.parse_string
       {|<XMI xmi.version="1.2"><XMI.content><UML:Model xmi.id="m" name="m"><UML:Namespace.ownedElement>
           <UML:Class xmi.id="c" name="A"/><UML:Class xmi.id="c" name="B"/>
         </UML:Namespace.ownedElement></UML:Model></XMI.content></XMI>|});
  expect_violation "not an XMI document" (X.parse_string "<UML:Model xmi.id=\"m\" name=\"m\"/>");
  expect_violation "missing xmi.version" (X.parse_string "<XMI><XMI.content/></XMI>");
  (* double import *)
  let repo = M.create () in
  M.import_xmi repo (sample_doc ());
  match M.import_xmi repo (sample_doc ()) with
  | exception M.Metamodel_violation _ -> ()
  | _ -> Alcotest.fail "double import accepted"

let test_statechart_through_mdr () =
  let doc = Uml.Xmi_write.statecharts_to_xml [ Scenarios.Tomcat.client () ] in
  let repo = M.create () in
  M.import_xmi repo doc;
  let exported = M.export_xmi repo in
  let charts = Uml.Xmi_read.statecharts_of_xml exported in
  Alcotest.(check int) "chart survives mdr" 1 (List.length charts);
  Alcotest.(check bool) "identical chart" true (List.hd charts = Scenarios.Tomcat.client ())

let suite =
  [
    Alcotest.test_case "import/export identity" `Quick test_import_export_identity;
    Alcotest.test_case "find and element kinds" `Quick test_find_and_kinds;
    Alcotest.test_case "reflective update and tagged values" `Quick test_reflective_update;
    Alcotest.test_case "metamodel validation" `Quick test_metamodel_validation;
    Alcotest.test_case "state machines through the repository" `Quick test_statechart_through_mdr;
  ]
