module SC = Uml.Statechart
module E = Extract.Sc_to_pepa

let close = Alcotest.float 1e-9

let test_single_chart () =
  let chart =
    SC.make ~name:"Clock" ~states:[ "Tick"; "Tock" ]
      ~transitions:[ ("Tick", "Tock", "tick", Some 2.0); ("Tock", "Tick", "tock", Some 3.0) ]
      ()
  in
  let ex = E.extract [ chart ] in
  Alcotest.(check (list string)) "no shared actions" [] ex.E.shared_actions;
  let analysis = Choreographer.Workbench.analyse_pepa ~name:"clock" ex.E.model in
  let results = analysis.Choreographer.Workbench.results in
  Alcotest.check close "throughput tick" 1.2
    (Option.get (Choreographer.Results.throughput results "tick"));
  let probabilities = Choreographer.Workbench.local_probabilities analysis ~leaf:0 in
  Alcotest.check close "P(Tick)" 0.6 (List.assoc "Clock_Tick" probabilities);
  Alcotest.check close "P(Tock)" 0.4 (List.assoc "Clock_Tock" probabilities)

let test_client_server_sharing () =
  let ex = E.extract [ Scenarios.Tomcat.client (); Scenarios.Tomcat.server_jsp () ] in
  Alcotest.(check (list string)) "request/response shared" [ "request"; "response" ]
    ex.E.shared_actions;
  Alcotest.(check (list (pair string int))) "chart leaves in order"
    [ ("Client", 0); ("Server", 1) ] ex.E.chart_leaf;
  (* the unrated side of a shared action is passive: the model still
     solves (no passive at top). *)
  let analysis = Choreographer.Workbench.analyse_pepa ~name:"cs" ex.E.model in
  Alcotest.(check bool) "solved" true
    (analysis.Choreographer.Workbench.results.Choreographer.Results.n_states > 0)

let test_probabilities_sum_per_chart () =
  let study = Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_cached ()) in
  List.iter
    (fun (chart, leaf) ->
      let probabilities =
        Choreographer.Workbench.local_probabilities study.Scenarios.Tomcat.analysis ~leaf
      in
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 probabilities in
      Alcotest.check close (chart ^ " distribution sums to 1") 1.0 total)
    study.Scenarios.Tomcat.extraction.E.chart_leaf

let test_optimisation_shape () =
  (* The paper's conclusion: the servlet cache is "very profitable".
     The shape must hold across a parameter sweep of the slow phases. *)
  List.iter
    (fun (translate, compile) ->
      let without =
        Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_jsp ~translate ~compile ())
      in
      let with_opt =
        Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_cached ~translate ~compile ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "optimisation wins at translate=%g compile=%g" translate compile)
        true
        (with_opt.Scenarios.Tomcat.waiting_delay < without.Scenarios.Tomcat.waiting_delay /. 5.0);
      Alcotest.(check bool) "optimisation raises request throughput" true
        (with_opt.Scenarios.Tomcat.request_throughput
         > without.Scenarios.Tomcat.request_throughput))
    [ (2.0, 1.5); (1.0, 1.0); (5.0, 4.0) ]

let test_request_response_balance () =
  let study = Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_jsp ()) in
  let results = study.Scenarios.Tomcat.analysis.Choreographer.Workbench.results in
  let t name = Option.get (Choreographer.Results.throughput results name) in
  Alcotest.check close "every request is answered" (t "request") (t "response")

let test_chart_reflection () =
  let study = Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_jsp ()) in
  let probabilities =
    List.concat_map
      (fun (_, leaf) ->
        Choreographer.Workbench.local_probabilities study.Scenarios.Tomcat.analysis ~leaf)
      study.Scenarios.Tomcat.extraction.E.chart_leaf
  in
  let charts = [ Scenarios.Tomcat.client (); Scenarios.Tomcat.server_jsp () ] in
  let reflected =
    Extract.Reflector.reflect_statecharts study.Scenarios.Tomcat.extraction ~probabilities charts
  in
  List.iter
    (fun chart ->
      List.iter
        (fun (s : SC.state) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s annotated" chart.SC.chart_name s.SC.state_name)
            true
            (SC.annotation chart ~state_id:s.SC.state_id ~tag:Extract.Reflector.probability_tag
             <> None))
        chart.SC.states)
    reflected

let test_extract_errors () =
  (match E.extract [] with
  | exception E.Extraction_error _ -> ()
  | _ -> Alcotest.fail "empty chart list accepted");
  let c = Scenarios.Tomcat.client () in
  match E.extract [ c; c ] with
  | exception E.Extraction_error _ -> ()
  | _ -> Alcotest.fail "duplicate chart names accepted"

let suite =
  [
    Alcotest.test_case "single chart" `Quick test_single_chart;
    Alcotest.test_case "client/server action sharing" `Quick test_client_server_sharing;
    Alcotest.test_case "probabilities sum per chart" `Quick test_probabilities_sum_per_chart;
    Alcotest.test_case "servlet-cache optimisation shape" `Quick test_optimisation_shape;
    Alcotest.test_case "request/response flow balance" `Quick test_request_response_balance;
    Alcotest.test_case "reflection into charts" `Quick test_chart_reflection;
    Alcotest.test_case "extraction errors" `Quick test_extract_errors;
  ]
