module CM = Scenarios.Code_mobility

let close = Alcotest.float 1e-9

let test_nets_match_closed_forms () =
  List.iter
    (fun bandwidth ->
      let c = CM.compare_at ~bandwidth () in
      Alcotest.check close
        (Printf.sprintf "client-server at b=%g" bandwidth)
        (CM.closed_form_jobs c.CM.params `Client_server)
        c.CM.client_server_jobs;
      Alcotest.check close
        (Printf.sprintf "mobile agent at b=%g" bandwidth)
        (CM.closed_form_jobs c.CM.params `Mobile_agent)
        c.CM.mobile_agent_jobs)
    [ 1.0; 10.0; 72.9; 400.0 ]

let test_crossover () =
  (* Analytic crossover of the default parameters:
     0.05 + 10/b + 0.5 = 1/b + 1/1.5 + 0.5/b  =>  8.5/b = 7/60. *)
  let expected = 8.5 /. (7.0 /. 60.0) in
  let found = CM.crossover_bandwidth ~lo:10.0 ~hi:200.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "crossover %.3f close to analytic %.3f" found expected)
    true
    (abs_float (found -. expected) < 0.01);
  (* ordering on each side of the crossover *)
  let low = CM.compare_at ~bandwidth:(expected /. 2.0) () in
  Alcotest.(check bool) "mobile agent wins at low bandwidth" true
    (low.CM.mobile_agent_jobs > low.CM.client_server_jobs);
  let high = CM.compare_at ~bandwidth:(expected *. 2.0) () in
  Alcotest.(check bool) "client-server wins at high bandwidth" true
    (high.CM.client_server_jobs > high.CM.mobile_agent_jobs);
  (* no crossover in a one-sided bracket *)
  match CM.crossover_bandwidth ~lo:100.0 ~hi:200.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "one-sided bracket accepted"

let test_monotone_in_bandwidth () =
  let jobs design b =
    let c = CM.compare_at ~bandwidth:b () in
    match design with
    | `Cs -> c.CM.client_server_jobs
    | `Ma -> c.CM.mobile_agent_jobs
  in
  List.iter
    (fun design ->
      let values = List.map (jobs design) [ 1.0; 4.0; 16.0; 64.0; 256.0 ] in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | _ -> true
      in
      Alcotest.(check bool) "throughput grows with bandwidth" true (increasing values))
    [ `Cs; `Ma ];
  (* the mobile agent saturates at the remote compute rate *)
  let saturated = CM.compare_at ~bandwidth:1e6 () in
  Alcotest.(check bool) "remote compute bound" true
    (abs_float (saturated.CM.mobile_agent_jobs -. 1.5) < 0.01)

let test_remote_speed_shifts_crossover () =
  (* A faster data host moves the crossover towards higher bandwidths
     (mobile agents stay attractive longer). *)
  let faster = { CM.default_parameters with CM.remote_compute = 1.8 } in
  let base = CM.crossover_bandwidth ~lo:10.0 ~hi:500.0 () in
  let shifted = CM.crossover_bandwidth ~params:faster ~lo:10.0 ~hi:5000.0 () in
  Alcotest.(check bool)
    (Printf.sprintf "crossover moves right (%.1f -> %.1f)" base shifted)
    true (shifted > base)

let suite =
  [
    Alcotest.test_case "nets match closed forms" `Quick test_nets_match_closed_forms;
    Alcotest.test_case "crossover bandwidth" `Quick test_crossover;
    Alcotest.test_case "monotone in bandwidth" `Quick test_monotone_in_bandwidth;
    Alcotest.test_case "remote speed shifts the crossover" `Quick test_remote_speed_shifts_crossover;
  ]
