module A = Uml.Activity
module B = A.Build
module E = Extract.Ad_to_pepanet
module N = Pepanet.Net

let close = Alcotest.float 1e-9

let test_names () =
  Alcotest.(check string) "action mangling" "download_file" (Extract.Names.action_name "download file");
  Alcotest.(check string) "action lowercases" "handover" (Extract.Names.action_name "Handover");
  Alcotest.(check string) "constant mangling" "Transmitter_1" (Extract.Names.constant_name "transmitter 1");
  Alcotest.(check string) "rate name" "r_go_Fast" (Extract.Names.rate_name "Go Fast");
  let alloc = Extract.Names.Allocator.create Extract.Names.action_name in
  let a = Extract.Names.Allocator.get alloc "close" in
  let b = Extract.Names.Allocator.get alloc "close" in
  let c = Extract.Names.Allocator.get alloc "Close" in
  Alcotest.(check string) "stable" a b;
  Alcotest.(check bool) "injective" true (a <> c)

let test_pda_extraction_shape () =
  let ex = Scenarios.Pda.extraction () in
  let net = ex.E.net in
  Alcotest.(check (list string)) "places from locations" [ "Transmitter_1"; "Transmitter_2" ]
    (N.place_names net);
  Alcotest.(check (list string)) "one token type" [ "Tok_ua" ] net.N.token_types;
  let transition_actions =
    List.map (fun (t : N.transition) -> t.N.firing_action) net.N.transitions
  in
  Alcotest.(check (list string)) "move + synthetic return" [ "handover"; "return_ua" ]
    transition_actions;
  let handover = List.hd net.N.transitions in
  Alcotest.(check (list string)) "handover input" [ "Transmitter_1" ] handover.N.inputs;
  Alcotest.(check (list string)) "handover output" [ "Transmitter_2" ] handover.N.outputs;
  (* mapping tables *)
  Alcotest.(check int) "all six activities mapped" 6 (List.length ex.E.action_of_node);
  Alcotest.(check (list (pair string string))) "location map"
    [ ("transmitter_1", "Transmitter_1"); ("transmitter_2", "Transmitter_2") ]
    ex.E.place_of_location

let test_pda_numbers () =
  (* Whole-cycle throughput: 1/(1/2 + 1/10 + 1/5 + 1/0.5 + 1/8 + 1/1). *)
  let ex = Scenarios.Pda.extraction () in
  let analysis = Choreographer.Workbench.analyse_net ~name:"pda" ex.E.net in
  let results = analysis.Choreographer.Workbench.net_results in
  let t name = Option.get (Choreographer.Results.throughput results name) in
  let cycle = (1.0 /. 2.0) +. (1.0 /. 10.0) +. (1.0 /. 5.0) +. (1.0 /. 0.5) +. 0.125 +. 1.0 in
  Alcotest.check close "download throughput" (1.0 /. cycle) (t "download_file");
  Alcotest.check close "handover = download" (t "download_file") (t "handover");
  Alcotest.check close "abort is half of handover" (t "handover" /. 2.0) (t "abort_download");
  Alcotest.check close "continue = abort (50/50)" (t "abort_download") (t "continue_download")

let test_file_protocol_extraction () =
  let ex = Scenarios.File_protocol.extraction () in
  let net = ex.E.net in
  Alcotest.(check (list string)) "single implicit place" [ "Global" ] (N.place_names net);
  Alcotest.(check int) "no net transition (reset is local)" 0 (List.length net.N.transitions);
  (* The two close boxes share one action type. *)
  let actions = List.map snd ex.E.action_of_node |> List.sort_uniq String.compare in
  Alcotest.(check (list string)) "action set"
    [ "close"; "openread"; "openwrite"; "read"; "write" ] actions

let test_choice_probabilities () =
  (* Decision branch rates determine branch probabilities: abort rate 1,
     continue rate 3 gives a 1:3 split. *)
  let rates =
    Uml.Rates_file.of_string
      "abort_download = 1.0\ncontinue_download = 3.0\nhandover = 1.0\ndefault = 1.0"
  in
  let ex = Extract.Ad_to_pepanet.extract ~rates (Scenarios.Pda.diagram ()) in
  let analysis = Choreographer.Workbench.analyse_net ~name:"pda" ex.E.net in
  let results = analysis.Choreographer.Workbench.net_results in
  let t name = Option.get (Choreographer.Results.throughput results name) in
  Alcotest.check close "1:3 branch split" 3.0 (t "continue_download" /. t "abort_download")

let test_static_components () =
  (* An activity with no object flow becomes a static component at the
     last moved-to location, cooperating with the token on shared
     names... here it is independent (no shared activities). *)
  let b = B.create "with_static" in
  let i = B.initial b in
  let act = B.action b "carry" in
  let move = B.action ~move:true b "travel" in
  let beep = B.action b "beep" in
  let fin = B.final b in
  B.edge b i act;
  B.edge b act move;
  B.edge b move beep;
  B.edge b beep fin;
  let o1 = B.occurrence ~loc:"src" b ~obj:"bag" ~cls:"Bag" in
  let o2 = B.occurrence ~state:"moved" ~loc:"dst" b ~obj:"bag" ~cls:"Bag" in
  B.flow_into b ~occ:o1 ~activity:act;
  B.flow_into b ~occ:o1 ~activity:move;
  B.flow_out_of b ~activity:move ~occ:o2;
  let d = B.finish b in
  let ex = Extract.Ad_to_pepanet.extract d in
  let net = ex.E.net in
  (* beep has no object: it becomes a static component at dst (the last
     location moved to). *)
  let dst = List.find (fun (p : N.place) -> p.N.place_name = "Dst") net.N.places in
  Alcotest.(check (list string)) "static at dst" [ "St_dst" ] (N.statics_of_context dst.N.context);
  let src = List.find (fun (p : N.place) -> p.N.place_name = "Src") net.N.places in
  Alcotest.(check (list string)) "no static at src" [] (N.statics_of_context src.N.context);
  (* The net still analyses (static beeps forever at dst). *)
  let analysis = Choreographer.Workbench.analyse_net ~name:"static" ex.E.net in
  let t name =
    Option.value ~default:0.0
      (Choreographer.Results.throughput analysis.Choreographer.Workbench.net_results name)
  in
  Alcotest.(check bool) "beep runs" true (t "beep" > 0.0);
  Alcotest.(check bool) "token cycles" true (t "travel" > 0.0)

let test_cell_cooperation_on_shared_activities () =
  (* Two objects sharing an activity must cooperate in the place. *)
  let b = B.create "shared" in
  let i = B.initial b in
  let sync = B.action b "sync" in
  let fin = B.final b in
  B.edge b i sync;
  B.edge b sync fin;
  let oa = B.occurrence ~loc:"room" b ~obj:"alice" ~cls:"P" in
  let ob = B.occurrence ~loc:"room" b ~obj:"bob" ~cls:"P" in
  B.flow_into b ~occ:oa ~activity:sync;
  B.flow_into b ~occ:ob ~activity:sync;
  let d = B.finish b in
  let ex = Extract.Ad_to_pepanet.extract d in
  let place = List.hd ex.E.net.N.places in
  (match place.N.context with
  | N.Ctx_coop (_, set, _) ->
      Alcotest.(check bool) "cells cooperate on sync" true
        (Pepa.Syntax.String_set.mem "sync" set)
  | _ -> Alcotest.fail "expected a cooperation context");
  (* The shared activity happens simultaneously: equal throughput, one
     event for both. *)
  let analysis = Choreographer.Workbench.analyse_net ~name:"shared" ex.E.net in
  let t name =
    Option.value ~default:0.0
      (Choreographer.Results.throughput analysis.Choreographer.Workbench.net_results name)
  in
  Alcotest.(check bool) "sync happens" true (t "sync" > 0.0)

let test_absorb_mode () =
  let ex = Extract.Ad_to_pepanet.extract ~restart:`Absorb (Scenarios.Pda.diagram ()) in
  let compiled = Pepanet.Net_compile.compile ex.E.net in
  let space = Pepanet.Net_statespace.build compiled in
  Alcotest.(check bool) "terminating diagram deadlocks" true
    (Pepanet.Net_statespace.deadlocks space <> []);
  Alcotest.(check int) "no synthetic transitions" 1 (List.length ex.E.net.N.transitions)

let test_extraction_errors () =
  let reject msg build =
    match Extract.Ad_to_pepanet.extract (build ()) with
    | exception E.Extraction_error _ -> ()
    | _ -> Alcotest.failf "%s: accepted" msg
  in
  (* A <<move>> with no object flow. *)
  reject "move without flow" (fun () ->
      let b = B.create "bad" in
      let i = B.initial b in
      let m = B.action ~move:true b "teleport" in
      let a = B.action b "work" in
      let fin = B.final b in
      B.edge b i m;
      B.edge b m a;
      B.edge b a fin;
      let o = B.occurrence ~loc:"x" b ~obj:"v" ~cls:"V" in
      B.flow_into b ~occ:o ~activity:a;
      B.finish b);
  (* A mobile diagram where an object occurrence has no location. *)
  reject "mobile object without location" (fun () ->
      let b = B.create "bad2" in
      let i = B.initial b in
      let a = B.action b "work" in
      let fin = B.final b in
      B.edge b i a;
      B.edge b a fin;
      let o1 = B.occurrence ~loc:"x" b ~obj:"v" ~cls:"V" in
      let o2 = B.occurrence b ~obj:"w" ~cls:"W" in
      B.flow_into b ~occ:o1 ~activity:a;
      B.flow_into b ~occ:o2 ~activity:a;
      B.finish b);
  (* An object with occurrences but no flows. *)
  reject "object without activities" (fun () ->
      let b = B.create "bad3" in
      let i = B.initial b in
      let a = B.action b "work" in
      let fin = B.final b in
      B.edge b i a;
      B.edge b a fin;
      let o1 = B.occurrence ~loc:"x" b ~obj:"v" ~cls:"V" in
      B.flow_into b ~occ:o1 ~activity:a;
      ignore (B.occurrence ~loc:"x" b ~obj:"ghost" ~cls:"G");
      B.finish b)

let test_fork_join () =
  (* Two objects on separate branches of a fork proceed concurrently;
     the join synchronises control flow. *)
  let build_forked ~same_object =
    let b = B.create "forked" in
    let i = B.initial b in
    let fork = B.fork b in
    let left = B.action b "pack" in
    let right = B.action b "stamp" in
    let join = B.join b in
    let wrap = B.action b "wrap" in
    let fin = B.final b in
    B.edge b i fork;
    B.edge b fork left;
    B.edge b fork right;
    B.edge b left join;
    B.edge b right join;
    B.edge b join wrap;
    B.edge b wrap fin;
    let o1 = B.occurrence ~loc:"desk" b ~obj:"box" ~cls:"Box" in
    let o2 =
      B.occurrence ~loc:"desk" b ~obj:(if same_object then "box" else "label") ~cls:"Label"
    in
    B.flow_into b ~occ:o1 ~activity:left;
    B.flow_into b ~occ:o2 ~activity:right;
    B.flow_into b ~occ:o1 ~activity:wrap;
    B.flow_into b ~occ:o2 ~activity:wrap;
    B.finish b
  in
  let ex = Extract.Ad_to_pepanet.extract (build_forked ~same_object:false) in
  let analysis = Choreographer.Workbench.analyse_net ~name:"forked" ex.E.net in
  let t name =
    Option.value ~default:0.0
      (Choreographer.Results.throughput analysis.Choreographer.Workbench.net_results name)
  in
  Alcotest.(check bool) "both branches run" true (t "pack" > 0.0 && t "stamp" > 0.0);
  Alcotest.(check bool) "wrap synchronises both objects" true (t "wrap" > 0.0);
  (* The same object on both branches is outside the supported subset. *)
  match Extract.Ad_to_pepanet.extract (build_forked ~same_object:true) with
  | exception E.Extraction_error _ -> ()
  | _ -> Alcotest.fail "parallel branches of one object accepted"

let test_static_location_pinning () =
  (* An object-less activity pinned to a location by an atloc tag,
     overriding the walk-based assignment. *)
  let b = B.create "pinned" in
  let i = B.initial b in
  let act = B.action b "carry" in
  let move = B.action ~move:true b "travel" in
  let beep = B.action b "beep" in
  let fin = B.final b in
  B.edge b i act;
  B.edge b act move;
  B.edge b move beep;
  B.edge b beep fin;
  let o1 = B.occurrence ~loc:"src" b ~obj:"bag" ~cls:"Bag" in
  let o2 = B.occurrence ~state:"moved" ~loc:"dst" b ~obj:"bag" ~cls:"Bag" in
  B.flow_into b ~occ:o1 ~activity:act;
  B.flow_into b ~occ:o1 ~activity:move;
  B.flow_out_of b ~activity:move ~occ:o2;
  let d = B.finish b in
  (* The walk would place beep at dst; pin it to src instead. *)
  let beep_id =
    (List.find
       (fun (n : A.node) ->
         match n.A.kind with A.Action { name; _ } -> name = "beep" | _ -> false)
       (A.action_nodes d))
      .A.node_id
  in
  let d = A.annotate d ~node_id:beep_id ~tag:"atloc" ~value:"src" in
  let ex = Extract.Ad_to_pepanet.extract d in
  let src = List.find (fun (p : N.place) -> p.N.place_name = "Src") ex.E.net.N.places in
  Alcotest.(check (list string)) "static pinned to src" [ "St_src" ]
    (N.statics_of_context src.N.context);
  (* pinning to an unknown location is rejected *)
  let bad = A.annotate d ~node_id:beep_id ~tag:"atloc" ~value:"nowhere" in
  match Extract.Ad_to_pepanet.extract bad with
  | exception E.Extraction_error _ -> ()
  | _ -> Alcotest.fail "unknown pinned location accepted"

let test_parametric_transmitters () =
  List.iter
    (fun k ->
      let d = Scenarios.Pda.diagram_with_transmitters k in
      let rates = Scenarios.Pda.rates_for_transmitters k in
      let ex = Extract.Ad_to_pepanet.extract ~rates d in
      Alcotest.(check int) (Printf.sprintf "%d places" k) k
        (List.length ex.E.net.N.places);
      (* k-1 handover moves plus one return transition *)
      Alcotest.(check int) "transitions" k (List.length ex.E.net.N.transitions);
      let analysis = Choreographer.Workbench.analyse_net ~name:"pda_k" ex.E.net in
      let t name =
        Option.get
          (Choreographer.Results.throughput analysis.Choreographer.Workbench.net_results name)
      in
      (* journey rate: k-1 segments of 0.5+0.1+2 then finish 0.25 and
         return 1. *)
      let journey = (float_of_int (k - 1) *. 2.6) +. 0.25 +. 1.0 in
      Alcotest.check close (Printf.sprintf "journey rate (k=%d)" k) (1.0 /. journey)
        (t "finish_download"))
    [ 2; 3; 4 ]

let test_reflection () =
  let ex = Scenarios.Pda.extraction () in
  let analysis = Choreographer.Workbench.analyse_net ~name:"pda" ex.E.net in
  let throughputs = analysis.Choreographer.Workbench.net_results.Choreographer.Results.throughputs in
  let d = Extract.Reflector.reflect_activity ex ~throughputs (Scenarios.Pda.diagram ()) in
  let annotated =
    List.filter
      (fun (n : A.node) ->
        A.annotation d ~node_id:n.A.node_id ~tag:Extract.Reflector.throughput_tag <> None)
      (A.action_nodes d)
  in
  Alcotest.(check int) "every action annotated" 6 (List.length annotated);
  (* value formatting matches the computed number *)
  let handover =
    List.find
      (fun (n : A.node) ->
        match n.A.kind with A.Action { name; _ } -> name = "handover" | _ -> false)
      (A.action_nodes d)
  in
  let value = Option.get (A.annotation d ~node_id:handover.A.node_id ~tag:"throughput") in
  Alcotest.(check string) "formatted with 6 significant digits"
    (Extract.Reflector.format_measure (List.assoc "handover" throughputs))
    value

let suite =
  [
    Alcotest.test_case "identifier mangling" `Quick test_names;
    Alcotest.test_case "PDA extraction shape" `Quick test_pda_extraction_shape;
    Alcotest.test_case "PDA throughput numbers" `Quick test_pda_numbers;
    Alcotest.test_case "immobile diagram (file protocol)" `Quick test_file_protocol_extraction;
    Alcotest.test_case "decision probabilities from rates" `Quick test_choice_probabilities;
    Alcotest.test_case "static components" `Quick test_static_components;
    Alcotest.test_case "cells cooperate on shared activities" `Quick test_cell_cooperation_on_shared_activities;
    Alcotest.test_case "absorb mode" `Quick test_absorb_mode;
    Alcotest.test_case "extraction errors" `Quick test_extraction_errors;
    Alcotest.test_case "fork/join (Section 6 extension)" `Quick test_fork_join;
    Alcotest.test_case "static location pinning (Section 6 extension)" `Quick test_static_location_pinning;
    Alcotest.test_case "parametric transmitter journeys" `Quick test_parametric_transmitters;
    Alcotest.test_case "reflection" `Quick test_reflection;
  ]
