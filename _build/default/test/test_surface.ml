(* Coverage of smaller API surfaces not exercised elsewhere. *)

module X = Xml_kit.Minixml

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_model_print_round_trip () =
  List.iter
    (fun src ->
      let m = Pepa.Parser.model_of_string src in
      let printed = Pepa.Printer.model_to_string m in
      let m2 = Pepa.Parser.model_of_string printed in
      Alcotest.(check bool) src true (Pepa.Syntax.equal_model m m2))
    [
      Scenarios.File_protocol.pepa_source;
      "r = 1.0 + 2.0 * 3.0; P = (a, r).P; system P;";
      "P = (a, 1).P; Q = (b, infty[2]).Q; System = (P <a> Q) / {b}; system System[2];";
    ]

let test_syntax_helpers () =
  let m = Pepa.Parser.model_of_string "r = 1.0; P = (a, r).Q; Q = (b, 2.0).P; system P <a> Q;" in
  let names = Pepa.Syntax.defined_names m in
  Alcotest.(check bool) "defined names" true
    (Pepa.Syntax.String_set.equal names (Pepa.Syntax.String_set.of_list [ "r"; "P"; "Q" ]));
  let e = Pepa.Parser.expr_of_string "(a, r + s).P + (b, 1).Q" in
  Alcotest.(check bool) "rate_vars" true
    (Pepa.Syntax.String_set.equal
       (Pepa.Syntax.rate_vars (Pepa.Syntax.Radd (Pepa.Syntax.Rvar "r", Pepa.Syntax.Rvar "s")))
       (Pepa.Syntax.String_set.of_list [ "r"; "s" ]));
  Alcotest.(check bool) "free_vars" true
    (Pepa.Syntax.String_set.equal (Pepa.Syntax.free_vars e)
       (Pepa.Syntax.String_set.of_list [ "P"; "Q" ]));
  Alcotest.(check int) "actions" 2 (Pepa.Action.Set.cardinal (Pepa.Syntax.actions e));
  Alcotest.(check bool) "sequential shape" true (Pepa.Syntax.is_sequential_shape e);
  Alcotest.(check bool) "coop is not sequential" false
    (Pepa.Syntax.is_sequential_shape (Pepa.Parser.expr_of_string "P <a> Q"))

let test_env_accessors () =
  let env =
    Pepa.Env.of_model
      (Pepa.Parser.model_of_string
         "r = 2.0; s = r * 2; P = (a, s).Q; Q = (b, 1.0).P; system P;")
  in
  Alcotest.(check (list (pair string (float 1e-12)))) "rate parameters"
    [ ("r", 2.0); ("s", 4.0) ]
    (Pepa.Env.rate_parameters env);
  Alcotest.(check (list string)) "process names" [ "P"; "Q" ] (Pepa.Env.process_names env);
  Alcotest.(check bool) "sequential classification" true (Pepa.Env.is_sequential env "P");
  let alphabet = Pepa.Env.alphabet env (Pepa.Syntax.Var "P") in
  Alcotest.(check bool) "alphabet chases constants" true
    (Pepa.Syntax.String_set.equal alphabet (Pepa.Syntax.String_set.of_list [ "a"; "b" ]))

let test_pp_summaries () =
  let space = Pepa.Statespace.of_string "P = (a, 1.0).(b, 1.0).P;" in
  let text = Format.asprintf "%a" Pepa.Statespace.pp_summary space in
  Alcotest.(check bool) "statespace summary" true (contains "2 states" text);
  let chain = Pepa.Statespace.ctmc space in
  let stats = Format.asprintf "%a" Markov.Ctmc.pp_stats chain in
  Alcotest.(check bool) "ctmc stats" true (contains "2 states" stats);
  let nspace = Pepanet.Net_statespace.of_string Scenarios.Instant_message.pepanet_source in
  let ntext = Format.asprintf "%a" Pepanet.Net_statespace.pp_summary nspace in
  Alcotest.(check bool) "net summary" true (contains "8 markings" ntext)

let test_xml_escapes_and_fragments () =
  Alcotest.(check string) "escape_text" "a&amp;b&lt;c&gt;" (X.escape_text "a&b<c>");
  Alcotest.(check string) "escape_attribute keeps quotes escaped" "&quot;x&quot;"
    (X.escape_attribute "\"x\"");
  let fragments = X.parse_fragments "<a/><b><c/></b>" in
  Alcotest.(check (list string)) "fragment names" [ "a"; "b" ] (List.map X.name fragments);
  Alcotest.(check string) "text_content walks" "xy"
    (X.text_content (X.parse_string "<a>x<b>y</b></a>"))

let test_xpath_deep_path () =
  let doc = X.parse_string "<r><a><b><c i=\"1\"/></b></a><b><c i=\"2\"/></b></r>" in
  Alcotest.(check int) "// with trailing steps" 2
    (List.length (Xml_kit.Xpath_lite.select "//b/c" doc));
  Alcotest.(check int) "rooted path" 1 (List.length (Xml_kit.Xpath_lite.select "a/b/c" doc))

let test_dtmc_factor_and_rates_bindings () =
  let c = Markov.Ctmc.of_transitions ~n:2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  let u = Markov.Dtmc.uniformised_of_ctmc ~factor:2.0 c in
  (* self-loop probability 1 - 1/(2*1) = 0.5 *)
  let after = Markov.Dtmc.step u [| 1.0; 0.0 |] in
  Alcotest.(check (float 1e-6)) "uniformisation factor respected" 0.5 after.(0);
  let book = Uml.Rates_file.of_string "x = 1\ny = 2\n" in
  Alcotest.(check (list (pair string (float 0.0)))) "bindings in order"
    [ ("x", 1.0); ("y", 2.0) ]
    (Uml.Rates_file.bindings book)

let test_interaction_participants_dedup () =
  let i =
    Uml.Interaction.make ~name:"I"
      ~messages:[ ("a", "b", "m1"); ("b", "a", "m2"); ("a", "c", "m3") ]
  in
  Alcotest.(check (list string)) "dedup keeps order" [ "a"; "b"; "c" ]
    (Uml.Interaction.participants i)

let test_diagram_text_statechart_errors () =
  let reject src =
    match Uml.Diagram_text.parse src with
    | exception Uml.Diagram_text.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" src
  in
  reject "statechart C { initial Nowhere; state S; S -> S : go; }";
  reject "statechart C { }";
  reject "statechart C { state S; S -> S ; }"

let test_net_marking_label_statics () =
  let space = Pepanet.Net_statespace.of_string Scenarios.Instant_message.pepanet_source in
  (* marking labels include static component states after the bar *)
  let with_static =
    List.filter
      (fun i -> contains "|" (Pepanet.Net_statespace.marking_label space i))
      (List.init (Pepanet.Net_statespace.n_markings space) Fun.id)
  in
  Alcotest.(check int) "all labels show the static" (Pepanet.Net_statespace.n_markings space)
    (List.length with_static)

let suite =
  [
    Alcotest.test_case "model print round trip" `Quick test_model_print_round_trip;
    Alcotest.test_case "syntax helpers" `Quick test_syntax_helpers;
    Alcotest.test_case "env accessors" `Quick test_env_accessors;
    Alcotest.test_case "summaries" `Quick test_pp_summaries;
    Alcotest.test_case "xml escapes and fragments" `Quick test_xml_escapes_and_fragments;
    Alcotest.test_case "xpath deep paths" `Quick test_xpath_deep_path;
    Alcotest.test_case "dtmc factor, rates bindings" `Quick test_dtmc_factor_and_rates_bindings;
    Alcotest.test_case "interaction participants" `Quick test_interaction_participants_dedup;
    Alcotest.test_case "text statechart errors" `Quick test_diagram_text_statechart_errors;
    Alcotest.test_case "marking labels show statics" `Quick test_net_marking_label_statics;
  ]
