module C = Markov.Ctmc
module St = Markov.Steady

let close = Alcotest.float 1e-8

let two_state lambda mu = C.of_transitions ~n:2 [ (0, 1, lambda); (1, 0, mu) ]

let check_distribution msg expected actual =
  Alcotest.(check int) (msg ^ " length") (Array.length expected) (Array.length actual);
  Array.iteri (fun i v -> Alcotest.check close (Printf.sprintf "%s [%d]" msg i) v actual.(i)) expected

let test_sparse () =
  let m = Markov.Sparse.of_triplets ~n_rows:3 ~n_cols:3 [ (0, 1, 2.0); (0, 1, 1.0); (2, 0, 4.0); (1, 1, 5.0) ] in
  Alcotest.(check int) "duplicates merged" 3 (Markov.Sparse.nnz m);
  Alcotest.check close "get merged" 3.0 (Markov.Sparse.get m 0 1);
  Alcotest.check close "get missing" 0.0 (Markov.Sparse.get m 2 2);
  check_distribution "mul_vec" [| 3.0; 5.0; 4.0 |] (Markov.Sparse.mul_vec m [| 1.0; 1.0; 1.0 |]);
  check_distribution "vec_mul" [| 4.0; 8.0; 0.0 |] (Markov.Sparse.vec_mul [| 1.0; 1.0; 1.0 |] m);
  let mt = Markov.Sparse.transpose m in
  Alcotest.check close "transpose" 3.0 (Markov.Sparse.get mt 1 0);
  check_distribution "diagonal" [| 0.0; 5.0; 0.0 |] (Markov.Sparse.diagonal m);
  check_distribution "row sums" [| 3.0; 5.0; 4.0 |] (Markov.Sparse.row_sums m);
  let dense = Markov.Sparse.to_dense m in
  Alcotest.check close "to_dense" 4.0 dense.(2).(0)

let test_dense_lu () =
  let a = [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Markov.Dense.lu_solve a [| 5.0; 10.0 |] in
  check_distribution "2x2 solve" [| 1.0; 3.0 |] x;
  Alcotest.check close "residual" 0.0 (Markov.Dense.residual_inf a x [| 5.0; 10.0 |]);
  (* A permutation-needing system (zero pivot without pivoting). *)
  let b = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_distribution "pivoting" [| 2.0; 1.0 |] (Markov.Dense.lu_solve b [| 1.0; 2.0 |]);
  match Markov.Dense.lu_solve [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] [| 1.0; 2.0 |] with
  | exception Markov.Dense.Singular _ -> ()
  | _ -> Alcotest.fail "singular matrix accepted"

let test_ctmc_construction () =
  let c = two_state 2.0 3.0 in
  Alcotest.check close "exit 0" 2.0 (C.exit_rate c 0);
  Alcotest.check close "rate" 3.0 (C.rate c 1 0);
  Alcotest.(check bool) "irreducible" true (C.is_irreducible c);
  Alcotest.check close "generator diagonal" (-2.0) (Markov.Sparse.get (C.generator c) 0 0);
  (* Self loops are dropped. *)
  let with_loop = C.of_transitions ~n:2 [ (0, 1, 1.0); (1, 0, 1.0); (0, 0, 9.0) ] in
  Alcotest.check close "self loop ignored" 1.0 (C.exit_rate with_loop 0);
  (match C.of_transitions ~n:2 [ (0, 1, -1.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative rate accepted");
  (match C.of_transitions ~n:2 [ (0, 5, 1.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range state accepted");
  let absorbing = C.of_transitions ~n:2 [ (0, 1, 1.0) ] in
  Alcotest.(check bool) "absorbing state" true (C.is_absorbing absorbing 1);
  Alcotest.(check bool) "reducible" false (C.is_irreducible absorbing);
  match C.embedded_probabilities c 0 with
  | [ (1, p) ] -> Alcotest.check close "jump probability" 1.0 p
  | _ -> Alcotest.fail "unexpected jump distribution"

let all_methods = [ St.Direct; St.Jacobi; St.Gauss_seidel; St.Power ]

let test_two_state_closed_form () =
  let lambda = 2.0 and mu = 3.0 in
  let expected = [| mu /. (lambda +. mu); lambda /. (lambda +. mu) |] in
  List.iter
    (fun method_ ->
      let pi = St.solve ~method_ (two_state lambda mu) in
      check_distribution (St.method_name method_) expected pi)
    all_methods

let test_birth_death_closed_form () =
  (* M/M/1/K with arrival l, service m: pi_i proportional to (l/m)^i. *)
  let k = 5 and l = 1.5 and m = 2.0 in
  let transitions =
    List.concat
      (List.init k (fun i -> [ (i, i + 1, l); (i + 1, i, m) ]))
  in
  let c = C.of_transitions ~n:(k + 1) transitions in
  let rho = l /. m in
  let z = Array.init (k + 1) (fun i -> rho ** float_of_int i) in
  let total = Array.fold_left ( +. ) 0.0 z in
  let expected = Array.map (fun v -> v /. total) z in
  List.iter
    (fun method_ -> check_distribution (St.method_name method_) expected (St.solve ~method_ c))
    all_methods

let test_solver_guards () =
  let absorbing = C.of_transitions ~n:3 [ (0, 1, 1.0); (1, 2, 1.0) ] in
  (match St.solve ~method_:St.Gauss_seidel absorbing with
  | exception St.Not_solvable _ -> ()
  | _ -> Alcotest.fail "iterative method accepted an absorbing chain");
  (* The direct method solves the reducible chain: all mass absorbed. *)
  let pi = St.solve ~method_:St.Direct absorbing in
  check_distribution "absorbing mass" [| 0.0; 0.0; 1.0 |] pi;
  (* Default policy falls back to direct on the same chain. *)
  check_distribution "auto fallback" [| 0.0; 0.0; 1.0 |] (St.solve absorbing);
  let big_options = { St.default_options with St.direct_limit = 1 } in
  match St.solve ~method_:St.Direct ~options:big_options (two_state 1.0 1.0) with
  | exception St.Not_solvable _ -> ()
  | _ -> Alcotest.fail "direct limit not enforced"

let test_residual () =
  let c = two_state 2.0 3.0 in
  let pi = St.solve c in
  Alcotest.(check bool) "residual small" true (St.residual c pi < 1e-10);
  Alcotest.(check bool) "bad vector has residual" true (St.residual c [| 1.0; 0.0 |] > 0.1)

(* Random irreducible birth-death chains: all four methods agree. *)
let prop_solver_agreement =
  let open QCheck2 in
  let gen =
    Gen.(
      pair (2 -- 12) (pair (float_range 0.2 5.0) (float_range 0.2 5.0)))
  in
  Test.make ~name:"solvers agree on random birth-death chains" ~count:50 gen
    (fun (n, (l, m)) ->
      let transitions =
        List.concat (List.init (n - 1) (fun i -> [ (i, i + 1, l); (i + 1, i, m) ]))
      in
      let c = C.of_transitions ~n transitions in
      let reference = St.solve ~method_:St.Direct c in
      List.for_all
        (fun method_ ->
          let pi = St.solve ~method_ c in
          Markov.Measures.distribution_distance reference pi < 1e-6)
        [ St.Jacobi; St.Gauss_seidel; St.Power ])

let suite =
  [
    Alcotest.test_case "sparse matrices" `Quick test_sparse;
    Alcotest.test_case "dense LU" `Quick test_dense_lu;
    Alcotest.test_case "ctmc construction" `Quick test_ctmc_construction;
    Alcotest.test_case "two-state closed form (all methods)" `Quick test_two_state_closed_form;
    Alcotest.test_case "birth-death closed form (all methods)" `Quick test_birth_death_closed_form;
    Alcotest.test_case "solver guards" `Quick test_solver_guards;
    Alcotest.test_case "residual" `Quick test_residual;
    QCheck_alcotest.to_alcotest prop_solver_agreement;
  ]
