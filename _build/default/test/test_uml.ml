module A = Uml.Activity
module B = A.Build
module SC = Uml.Statechart

let tiny_diagram () =
  let b = B.create "tiny" in
  let i = B.initial b in
  let act = B.action b "work" in
  let fin = B.final b in
  B.edge b i act;
  B.edge b act fin;
  let o = B.occurrence ~loc:"here" b ~obj:"x" ~cls:"Thing" in
  B.flow_into b ~occ:o ~activity:act;
  B.finish b

let test_builder () =
  let d = tiny_diagram () in
  Alcotest.(check int) "nodes" 3 (List.length d.A.nodes);
  Alcotest.(check int) "edges" 2 (List.length d.A.edges);
  Alcotest.(check (list string)) "objects" [ "x" ] (A.object_names d);
  Alcotest.(check (list string)) "locations" [ "here" ] (A.locations d);
  Alcotest.(check bool) "initial found" true ((A.initial_node d).A.kind = A.Initial);
  Alcotest.(check int) "actions of object" 1 (List.length (A.actions_of_object d "x"))

let test_graph_queries () =
  let d = tiny_diagram () in
  let act = (List.hd (A.action_nodes d)).A.node_id in
  let init = (A.initial_node d).A.node_id in
  Alcotest.(check (list string)) "successors" [ act ] (A.successors d init);
  Alcotest.(check (list string)) "predecessors" [ init ] (A.predecessors d act);
  Alcotest.(check int) "objects into act" 1 (List.length (A.objects_of_activity d act A.Into));
  Alcotest.(check int) "objects out of act" 0 (List.length (A.objects_of_activity d act A.Out_of))

let test_annotations () =
  let d = tiny_diagram () in
  let act = (List.hd (A.action_nodes d)).A.node_id in
  let d = A.annotate d ~node_id:act ~tag:"throughput" ~value:"1.5" in
  Alcotest.(check (option string)) "annotation read back" (Some "1.5")
    (A.annotation d ~node_id:act ~tag:"throughput");
  let d = A.annotate d ~node_id:act ~tag:"throughput" ~value:"2.0" in
  Alcotest.(check (option string)) "annotation replaced" (Some "2.0")
    (A.annotation d ~node_id:act ~tag:"throughput");
  Alcotest.(check (option string)) "missing tag" None (A.annotation d ~node_id:act ~tag:"x")

let expect_invalid build =
  match A.validate (build ()) with
  | exception A.Invalid_diagram _ -> ()
  | _ -> Alcotest.fail "invalid diagram accepted"

let test_validation () =
  let base = tiny_diagram () in
  expect_invalid (fun () -> { base with A.nodes = List.tl base.A.nodes }) (* no initial *);
  expect_invalid (fun () ->
      { base with A.edges = { A.edge_id = "bogus"; source = "nope"; target = "n1" } :: base.A.edges });
  expect_invalid (fun () ->
      {
        base with
        A.flows =
          [ { A.flow_id = "f9"; occurrence = "missing"; activity = "n2"; direction = A.Into } ];
      });
  expect_invalid (fun () -> { base with A.nodes = base.A.nodes @ base.A.nodes }) (* dup ids *);
  (* flows must attach to action states *)
  expect_invalid (fun () ->
      let occ = List.hd base.A.occurrences in
      {
        base with
        A.flows =
          [
            {
              A.flow_id = "f9";
              occurrence = occ.A.occ_id;
              activity = (A.initial_node base).A.node_id;
              direction = A.Into;
            };
          ];
      })

let test_statechart_make () =
  let c =
    SC.make ~name:"Client"
      ~states:[ "A"; "B" ]
      ~transitions:[ ("A", "B", "go", Some 1.0); ("B", "A", "ret", None) ]
      ()
  in
  Alcotest.(check (list string)) "states" [ "A"; "B" ] (SC.state_names c);
  Alcotest.(check (list string)) "alphabet sorted" [ "go"; "ret" ] (SC.alphabet c);
  Alcotest.(check bool) "initial defaults to first" true
    (c.SC.initial = (List.hd c.SC.states).SC.state_id);
  let c2 =
    SC.make ~name:"C2" ~states:[ "A"; "B" ] ~transitions:[ ("A", "B", "go", None) ]
      ~initial:"B" ()
  in
  Alcotest.(check bool) "explicit initial" true
    (match SC.find_state_by_name c2 "B" with
    | Some s -> c2.SC.initial = s.SC.state_id
    | None -> false);
  (match SC.make ~name:"X" ~states:[ "A" ] ~transitions:[ ("A", "Zed", "go", None) ] () with
  | exception SC.Invalid_chart _ -> ()
  | _ -> Alcotest.fail "unknown target accepted");
  (match SC.make ~name:"X" ~states:[ "A"; "A" ] ~transitions:[] () with
  | exception SC.Invalid_chart _ -> ()
  | _ -> Alcotest.fail "duplicate state accepted");
  let c3 = SC.annotate c ~state_id:(List.hd c.SC.states).SC.state_id ~tag:"p" ~value:"0.5" in
  Alcotest.(check (option string)) "chart annotation" (Some "0.5")
    (SC.annotation c3 ~state_id:(List.hd c.SC.states).SC.state_id ~tag:"p")

let test_rates_file () =
  let r = Uml.Rates_file.of_string "a = 2.0\n% comment\nb=3 % inline\n\ndefault = 9\n" in
  Alcotest.(check (option (float 0.0))) "binding" (Some 2.0) (Uml.Rates_file.rate_opt r "a");
  Alcotest.(check (float 0.0)) "inline comment" 3.0 (Uml.Rates_file.rate r "b");
  Alcotest.(check (float 0.0)) "default" 9.0 (Uml.Rates_file.rate r "missing");
  Alcotest.(check (float 0.0)) "empty default is 1" 1.0 (Uml.Rates_file.rate Uml.Rates_file.empty "x");
  let r2 = Uml.Rates_file.add r "a" 5.0 in
  Alcotest.(check (float 0.0)) "add replaces" 5.0 (Uml.Rates_file.rate r2 "a");
  let r3 = Uml.Rates_file.with_default r 0.25 in
  Alcotest.(check (float 0.0)) "with_default" 0.25 (Uml.Rates_file.rate r3 "zzz");
  (* round trip *)
  let printed = Uml.Rates_file.to_string r in
  let reread = Uml.Rates_file.of_string printed in
  Alcotest.(check (float 0.0)) "round trip binding" 2.0 (Uml.Rates_file.rate reread "a");
  Alcotest.(check (float 0.0)) "round trip default" 9.0 (Uml.Rates_file.rate reread "qq");
  let reject src =
    match Uml.Rates_file.of_string src with
    | exception Uml.Rates_file.Syntax_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" src
  in
  reject "nonsense line";
  reject "a = -1";
  reject "a = abc";
  reject " = 2"

let suite =
  [
    Alcotest.test_case "activity builder" `Quick test_builder;
    Alcotest.test_case "graph queries" `Quick test_graph_queries;
    Alcotest.test_case "annotations" `Quick test_annotations;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "statecharts" `Quick test_statechart_make;
    Alcotest.test_case "rates files" `Quick test_rates_file;
  ]
