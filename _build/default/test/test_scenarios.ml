(* End-to-end numeric reproductions of the paper's worked examples, with
   closed-form expectations where the models are cyclic. *)

let close = Alcotest.float 1e-9

let throughput results name =
  Option.get (Choreographer.Results.throughput results name)

let test_e1_file_protocol () =
  (* Each session: open (two rate-2 alternatives racing: sojourn 1/4),
     one operation (read 1/10 or write 1/5 by branch), close 1/4,
     reset 1/20.  With the 50/50 branch split the mean cycle is 0.7. *)
  let ex = Scenarios.File_protocol.extraction () in
  let analysis = Choreographer.Workbench.analyse_net ~name:"file" ex.Extract.Ad_to_pepanet.net in
  let results = analysis.Choreographer.Workbench.net_results in
  Alcotest.check close "session rate" (1.0 /. 0.7) (throughput results "close");
  Alcotest.check close "branches split evenly" (throughput results "openread")
    (throughput results "openwrite");
  Alcotest.check close "reads equal read-branch visits" (throughput results "openread")
    (throughput results "read");
  (* The paper's qualitative claims on the hand-written model. *)
  let space = Pepa.Statespace.of_string Scenarios.File_protocol.pepa_source in
  Alcotest.(check bool) "cannot write to a closed file" true
    (Pepa.Analysis.never_follows space ~first:"close" ~then_:"write");
  Alcotest.(check bool) "reads and writes never interleave" true
    (Pepa.Analysis.never_follows space ~first:"read" ~then_:"write"
     && Pepa.Analysis.never_follows space ~first:"write" ~then_:"read")

let test_e2_instant_message () =
  (* Hand-written net: cycle time = 1/2 + 1/5 + 1/4 + 1/1.5 + 1/2 + 1/10
     + 1/4 + 1/8 = 2.59166...; all activities once per cycle. *)
  let space = Pepanet.Net_statespace.of_string Scenarios.Instant_message.pepanet_source in
  let pi = Pepanet.Net_statespace.steady_state space in
  let cycle =
    (1.0 /. 2.0) +. (1.0 /. 5.0) +. (1.0 /. 4.0) +. (1.0 /. 1.5) +. (1.0 /. 2.0)
    +. (1.0 /. 10.0) +. (1.0 /. 4.0) +. (1.0 /. 8.0)
  in
  List.iter
    (fun action ->
      Alcotest.check close ("throughput " ^ action) (1.0 /. cycle)
        (Pepanet.Net_measures.throughput space pi action))
    [ "openwrite"; "write"; "transmit"; "openread"; "read"; "sendback" ];
  (* Extracted variant agrees exactly (same rates, same structure). *)
  let ex = Scenarios.Instant_message.extraction () in
  let analysis = Choreographer.Workbench.analyse_net ~name:"im" ex.Extract.Ad_to_pepanet.net in
  Alcotest.check close "extraction agrees with the hand-written net" (1.0 /. cycle)
    (throughput analysis.Choreographer.Workbench.net_results "transmit")

let test_e3_pda () =
  let ex = Scenarios.Pda.extraction () in
  let analysis = Choreographer.Workbench.analyse_net ~name:"pda" ex.Extract.Ad_to_pepanet.net in
  let results = analysis.Choreographer.Workbench.net_results in
  let cycle = 0.5 +. 0.1 +. 0.2 +. 2.0 +. 0.125 +. 1.0 in
  Alcotest.check close "handover throughput" (1.0 /. cycle) (throughput results "handover");
  Alcotest.check close "50/50 outcome" 1.0
    (throughput results "abort_download" /. throughput results "continue_download");
  Alcotest.check close "outcomes partition the handovers"
    (throughput results "handover")
    (throughput results "abort_download" +. throughput results "continue_download");
  (* Faster handover shifts throughput up; the shape survives a sweep. *)
  let at_handover h =
    let rates = Scenarios.Pda.rates_with_handover h in
    let ex = Extract.Ad_to_pepanet.extract ~rates (Scenarios.Pda.diagram ()) in
    let analysis = Choreographer.Workbench.analyse_net ~name:"pda" ex.Extract.Ad_to_pepanet.net in
    throughput analysis.Choreographer.Workbench.net_results "download_file"
  in
  Alcotest.(check bool) "monotone in handover rate" true
    (at_handover 0.25 < at_handover 0.5 && at_handover 0.5 < at_handover 2.0)

let test_e4_tomcat () =
  let without = Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_jsp ()) in
  let with_opt = Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_cached ()) in
  (* Closed network of one client and one server: delay is the sum of the
     server-side stage delays. *)
  let expected_without = (1.0 /. 50.0) +. (1.0 /. 2.0) +. (1.0 /. 1.5) +. 0.01 +. 0.02 in
  Alcotest.check close "client waiting delay (full JSP lifecycle)" expected_without
    without.Scenarios.Tomcat.waiting_delay;
  let expected_with = (1.0 /. 200.0) +. 0.01 +. 0.02 in
  Alcotest.check close "client waiting delay (servlet cache)" expected_with
    with_opt.Scenarios.Tomcat.waiting_delay;
  Alcotest.(check bool) "more than an order of magnitude better" true
    (without.Scenarios.Tomcat.waiting_delay /. with_opt.Scenarios.Tomcat.waiting_delay > 10.0)

let test_e5_layout_preservation_is_bytewise () =
  (* The postprocessor must hand back the very layout entries Poseidon
     saved (Figure 4's "reuse the layout data of the original model"). *)
  let project = Scenarios.Pda.poseidon_project () in
  let options = { Choreographer.Pipeline.default_options with rates = Scenarios.Pda.rates } in
  let outcome = Choreographer.Pipeline.process_document ~options project in
  let original_layout =
    List.map Xml_kit.Minixml.to_string (Uml.Poseidon.layout_of project)
  in
  let reflected_layout =
    List.map Xml_kit.Minixml.to_string (Uml.Poseidon.layout_of outcome.Choreographer.Pipeline.reflected)
  in
  Alcotest.(check (list string)) "layout byte-identical" original_layout reflected_layout

let suite =
  [
    Alcotest.test_case "E1: file protocol (Figure 1)" `Quick test_e1_file_protocol;
    Alcotest.test_case "E2: instant message (Figure 2)" `Quick test_e2_instant_message;
    Alcotest.test_case "E3: PDA handover (Figures 5-7)" `Quick test_e3_pda;
    Alcotest.test_case "E4: Tomcat optimisation (Figures 8-9)" `Quick test_e4_tomcat;
    Alcotest.test_case "E5: layout preservation (Figure 4)" `Quick test_e5_layout_preservation_is_bytewise;
  ]
