(* Property tests over randomly generated inputs to the paper's core
   mapping: random mobile activity diagrams extract to live, token-
   conserving nets whose chain-shaped segments all run at the same
   throughput; random state diagrams extract to models whose local
   distributions are proper. *)

module B = Uml.Activity.Build

(* A random "journey" diagram: a chain of activities over [n_locs]
   locations, moving at randomly chosen points, optionally ending in a
   decision between two final activities. *)
let gen_journey =
  let open QCheck2.Gen in
  let* n_segments = 2 -- 5 in
  let* n_locs = 1 -- 3 in
  let* move_points = list_repeat n_segments (1 -- max 1 (n_locs - 1) >|= fun k -> k mod 2 = 0) in
  let* with_decision = bool in
  let* rates = list_repeat (n_segments + 4) (float_range 0.5 8.0) in
  return (n_segments, n_locs, move_points, with_decision, rates)

let build_journey (n_segments, n_locs, move_points, with_decision, rates) =
  let b = B.create "journey" in
  let i = B.initial b in
  let fin = B.final b in
  let loc k = Printf.sprintf "loc%d" (min k n_locs) in
  let current_loc = ref 1 in
  let occ = ref (B.occurrence ~loc:(loc 1) b ~obj:"traveller" ~cls:"T") in
  let previous = ref i in
  let rates_book = ref Uml.Rates_file.empty in
  let moves_used = ref 0 in
  List.iteri
    (fun k do_move ->
      let may_move = do_move && !current_loc < n_locs in
      let name = Printf.sprintf "step %d" (k + 1) in
      let act = B.action ~move:may_move b name in
      B.edge b !previous act;
      B.flow_into b ~occ:!occ ~activity:act;
      let rate = List.nth rates k in
      rates_book := Uml.Rates_file.add !rates_book (Extract.Names.action_name name) rate;
      if may_move then begin
        incr current_loc;
        incr moves_used;
        let next_occ =
          B.occurrence ~state:(Printf.sprintf "s%d" k) ~loc:(loc !current_loc) b
            ~obj:"traveller" ~cls:"T"
        in
        B.flow_out_of b ~activity:act ~occ:next_occ;
        occ := next_occ
      end;
      previous := act)
    move_points;
  (if with_decision then begin
     let d = B.decision b in
     B.edge b !previous d;
     let alt name rate =
       let act = B.action b name in
       B.edge b d act;
       B.edge b act fin;
       B.flow_into b ~occ:!occ ~activity:act;
       rates_book := Uml.Rates_file.add !rates_book (Extract.Names.action_name name) rate
     in
     alt "good end" (List.nth rates n_segments);
     alt "bad end" (List.nth rates (n_segments + 1))
   end
   else B.edge b !previous fin);
  let d = B.finish b in
  (d, Uml.Rates_file.add !rates_book "return_traveller" (List.nth rates (n_segments + 2)))

let prop_random_journeys =
  QCheck2.Test.make ~name:"random journey diagrams extract to live nets" ~count:60 gen_journey
    (fun spec ->
      let diagram, rates = build_journey spec in
      let ex = Extract.Ad_to_pepanet.extract ~rates diagram in
      let compiled = Pepanet.Net_compile.compile ex.Extract.Ad_to_pepanet.net in
      let space = Pepanet.Net_statespace.build compiled in
      let pi = Pepanet.Net_statespace.steady_state space in
      (* liveness and conservation *)
      Pepanet.Net_statespace.deadlocks space = []
      && List.for_all
           (fun i -> Pepanet.Marking.token_count (Pepanet.Net_statespace.marking space i) = 1)
           (List.init (Pepanet.Net_statespace.n_markings space) Fun.id)
      (* chain invariant: every step activity has the same throughput *)
      &&
      let steps =
        List.filter
          (fun (name, _) ->
            String.length name >= 5 && String.sub name 0 5 = "step_")
          (Pepanet.Net_measures.throughputs space pi)
      in
      (match steps with
      | [] -> false
      | (_, first) :: rest -> List.for_all (fun (_, v) -> abs_float (v -. first) < 1e-9) rest))

(* Random single statecharts: a ring of states with extra chords. *)
let gen_chart =
  let open QCheck2.Gen in
  let* n = 2 -- 6 in
  let* chords = list_size (0 -- 4) (pair (0 -- (n - 1)) (0 -- (n - 1))) in
  let* rates = list_repeat (n + 4) (float_range 0.5 6.0) in
  return (n, chords, rates)

let build_chart (n, chords, rates) =
  let state k = Printf.sprintf "S%d" k in
  let states = List.init n state in
  let ring =
    List.init n (fun k ->
        (state k, state ((k + 1) mod n), Printf.sprintf "ring%d" k, Some (List.nth rates k)))
  in
  let extra =
    List.mapi
      (fun i (a, b) ->
        (state a, state b, Printf.sprintf "chord%d" i, Some (List.nth rates (i mod (n + 4)))))
      chords
  in
  Uml.Statechart.make ~name:"Rand" ~states ~transitions:(ring @ extra) ()

let prop_random_charts =
  QCheck2.Test.make ~name:"random state diagrams extract to proper distributions" ~count:60
    gen_chart
    (fun spec ->
      let chart = build_chart spec in
      let ex = Extract.Sc_to_pepa.extract [ chart ] in
      let analysis = Choreographer.Workbench.analyse_pepa ex.Extract.Sc_to_pepa.model in
      let probabilities = Choreographer.Workbench.local_probabilities analysis ~leaf:0 in
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 probabilities in
      let pi_total =
        Array.fold_left ( +. ) 0.0 analysis.Choreographer.Workbench.distribution
      in
      abs_float (total -. 1.0) < 1e-8
      && abs_float (pi_total -. 1.0) < 1e-8
      && List.for_all (fun (_, p) -> p >= -1e-12) probabilities
      (* ring transitions all fire: the ring keeps the chain irreducible *)
      && List.for_all
           (fun (name, v) ->
             if String.length name >= 4 && String.sub name 0 4 = "ring" then v > 0.0 else true)
           analysis.Choreographer.Workbench.results.Choreographer.Results.throughputs)

(* Random rate books never change the structure of the extracted net,
   only its numbers: state counts are rate-independent. *)
let prop_rates_do_not_change_structure =
  let open QCheck2 in
  Test.make ~name:"rates never change the marking-graph structure" ~count:20
    Gen.(list_repeat 7 (float_range 0.1 20.0))
    (fun values ->
      let names = Scenarios.Pda.activity_names @ [ "return_ua" ] in
      let rates =
        List.fold_left2
          (fun acc name v -> Uml.Rates_file.add acc name v)
          Uml.Rates_file.empty names values
      in
      let ex = Extract.Ad_to_pepanet.extract ~rates (Scenarios.Pda.diagram ()) in
      let space =
        Pepanet.Net_statespace.build (Pepanet.Net_compile.compile ex.Extract.Ad_to_pepanet.net)
      in
      Pepanet.Net_statespace.n_markings space = 6
      && Pepanet.Net_statespace.n_transitions space = 7)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_random_journeys;
    QCheck_alcotest.to_alcotest prop_random_charts;
    QCheck_alcotest.to_alcotest prop_rates_do_not_change_structure;
  ]
