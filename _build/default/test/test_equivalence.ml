module Eq = Pepa.Equivalence

let close = Alcotest.float 1e-9

let test_replicated_lumping () =
  (* n identical independent components: 2^n states lump to n+1 blocks
     (count of components in the second phase). *)
  let space = Pepa.Statespace.of_string "P = (a, 2.0).(b, 3.0).P; system P[4];" in
  Alcotest.(check int) "full space" 16 (Pepa.Statespace.n_states space);
  let lumped = Eq.lump space in
  Alcotest.(check int) "binomial lumping" 5 lumped.Eq.partition.Eq.n_blocks;
  (* measures preserved *)
  let pi_full = Pepa.Statespace.steady_state space in
  let pi_lumped = Eq.lumped_steady_state lumped in
  Alcotest.check close "throughput preserved" (Pepa.Statespace.throughput space pi_full "a")
    (Eq.lumped_throughput lumped pi_lumped "a");
  (* block probabilities sum correctly: sum over states of a block of the
     full distribution equals the lumped distribution. *)
  let sums = Array.make lumped.Eq.partition.Eq.n_blocks 0.0 in
  Array.iteri
    (fun s p ->
      let b = lumped.Eq.partition.Eq.block_of_state.(s) in
      sums.(b) <- sums.(b) +. p)
    pi_full;
  Array.iteri
    (fun b total -> Alcotest.check close (Printf.sprintf "block %d" b) total pi_lumped.(b))
    sums

let test_distinct_states_not_merged () =
  (* A component whose two phases have different rates must not lump. *)
  let space = Pepa.Statespace.of_string "P = (a, 2.0).(b, 3.0).P;" in
  let partition = Eq.strong_equivalence space in
  Alcotest.(check int) "no spurious merging" 2 partition.Eq.n_blocks;
  (* And a symmetric choice does lump: the two branches are equivalent. *)
  let space2 =
    Pepa.Statespace.of_string
      "P = (a, 1.0).Q1 + (a, 1.0).Q2; Q1 = (b, 5.0).P; Q2 = (b, 5.0).P; system P;"
  in
  Alcotest.(check int) "3 states" 3 (Pepa.Statespace.n_states space2);
  let partition2 = Eq.strong_equivalence space2 in
  Alcotest.(check int) "symmetric branches merge" 2 partition2.Eq.n_blocks

let test_action_types_distinguish () =
  (* Same rates, different action types: not equivalent. *)
  let space =
    Pepa.Statespace.of_string
      "P = (a, 1.0).Q1 + (a, 1.0).Q2; Q1 = (b, 5.0).P; Q2 = (c, 5.0).P; system P;"
  in
  let partition = Eq.strong_equivalence space in
  Alcotest.(check int) "b and c differ" 3 partition.Eq.n_blocks

let test_scenario_lumping_preserves_measures () =
  (* The client/server model has no symmetry to exploit, so lumping is
     the identity — and must still preserve everything. *)
  let extraction =
    Extract.Sc_to_pepa.extract [ Scenarios.Tomcat.client (); Scenarios.Tomcat.server_jsp () ]
  in
  let analysis = Choreographer.Workbench.analyse_pepa extraction.Extract.Sc_to_pepa.model in
  let space = analysis.Choreographer.Workbench.space in
  let lumped = Eq.lump space in
  let pi_lumped = Eq.lumped_steady_state lumped in
  List.iter
    (fun action ->
      Alcotest.check close ("throughput " ^ action)
        (Pepa.Statespace.throughput space analysis.Choreographer.Workbench.distribution action)
        (Eq.lumped_throughput lumped pi_lumped action))
    (Pepa.Statespace.action_names space)

let test_representatives_consistent () =
  let space = Pepa.Statespace.of_string "P = (a, 2.0).(b, 3.0).P; system P[3];" in
  let partition = Eq.strong_equivalence space in
  Array.iteri
    (fun b s ->
      Alcotest.(check int)
        (Printf.sprintf "representative of block %d lies in it" b)
        b
        partition.Eq.block_of_state.(s))
    partition.Eq.representatives;
  Alcotest.(check int) "initial block defined" partition.Eq.block_of_state.(0)
    (Eq.initial_block partition)

(* Law: for random replicated chains, the lumped and full steady-state
   throughputs agree on every action. *)
let prop_lumping_preserves_throughput =
  let open QCheck2 in
  let gen = Gen.(pair (2 -- 5) (pair (float_range 0.5 4.0) (float_range 0.5 4.0))) in
  Test.make ~name:"lumping preserves throughput on replicated models" ~count:20 gen
    (fun (n, (r1, r2)) ->
      let src = Printf.sprintf "P = (a, %f).(b, %f).P; system P[%d];" r1 r2 n in
      let space = Pepa.Statespace.of_string src in
      let lumped = Eq.lump space in
      let pi_full = Pepa.Statespace.steady_state space in
      let pi_lumped = Eq.lumped_steady_state lumped in
      lumped.Eq.partition.Eq.n_blocks = n + 1
      && abs_float
           (Pepa.Statespace.throughput space pi_full "a"
           -. Eq.lumped_throughput lumped pi_lumped "a")
         < 1e-8)

let suite =
  [
    Alcotest.test_case "replicated components lump" `Quick test_replicated_lumping;
    Alcotest.test_case "distinct states stay distinct" `Quick test_distinct_states_not_merged;
    Alcotest.test_case "action types distinguish" `Quick test_action_types_distinguish;
    Alcotest.test_case "lumping preserves scenario measures" `Quick
      test_scenario_lumping_preserves_measures;
    Alcotest.test_case "representatives" `Quick test_representatives_consistent;
    QCheck_alcotest.to_alcotest prop_lumping_preserves_throughput;
  ]
