module I = Uml.Interaction
module B = Uml.Activity.Build
module N = Pepanet.Net

let close = Alcotest.float 1e-9

(* Three objects all touching a shared activity; the interaction says
   only alice and bob exchange it. *)
let shared_diagram () =
  let b = B.create "meeting" in
  let i = B.initial b in
  let sync = B.action b "sync" in
  let solo = B.action b "solo" in
  let fin = B.final b in
  B.edge b i sync;
  B.edge b sync solo;
  B.edge b solo fin;
  let oa = B.occurrence ~loc:"room" b ~obj:"alice" ~cls:"P" in
  let ob = B.occurrence ~loc:"room" b ~obj:"bob" ~cls:"P" in
  let oc = B.occurrence ~loc:"room" b ~obj:"carol" ~cls:"P" in
  B.flow_into b ~occ:oa ~activity:sync;
  B.flow_into b ~occ:ob ~activity:sync;
  B.flow_into b ~occ:oc ~activity:sync;
  B.flow_into b ~occ:oa ~activity:solo;
  B.finish b

let coop_sets_of net =
  let rec collect = function
    | N.Ctx_coop (a, set, b) -> Pepa.Syntax.String_set.elements set :: (collect a @ collect b)
    | N.Cell _ | N.Static _ -> []
  in
  List.concat_map (fun (p : N.place) -> collect p.N.context) net.N.places

let test_allows () =
  let i = I.make ~name:"calls" ~messages:[ ("alice", "bob", "sync") ] in
  Alcotest.(check bool) "declared pair" true (I.allows [ i ] ~action:"sync" "alice" "bob");
  Alcotest.(check bool) "symmetric" true (I.allows [ i ] ~action:"sync" "bob" "alice");
  Alcotest.(check bool) "other pair excluded" false (I.allows [ i ] ~action:"sync" "alice" "carol");
  Alcotest.(check bool) "other action excluded" false (I.allows [ i ] ~action:"ping" "alice" "bob");
  Alcotest.(check bool) "no interactions = allow all" true (I.allows [] ~action:"x" "p" "q");
  Alcotest.(check (list string)) "participants" [ "alice"; "bob" ] (I.participants i);
  match I.make ~name:"empty" ~messages:[] with
  | exception I.Invalid_interaction _ -> ()
  | _ -> Alcotest.fail "empty interaction accepted"

let test_extraction_without_interactions () =
  (* Default: all three objects synchronise on sync (ternary cooperation). *)
  let ex = Extract.Ad_to_pepanet.extract (shared_diagram ()) in
  let sets = coop_sets_of ex.Extract.Ad_to_pepanet.net in
  Alcotest.(check int) "two cooperation operators" 2 (List.length sets);
  Alcotest.(check bool) "both mention sync" true
    (List.for_all (fun set -> List.mem "sync" set) sets)

let test_extraction_with_interactions () =
  let interactions = [ I.make ~name:"calls" ~messages:[ ("alice", "bob", "sync") ] ] in
  let ex = Extract.Ad_to_pepanet.extract ~interactions (shared_diagram ()) in
  let sets = coop_sets_of ex.Extract.Ad_to_pepanet.net in
  (* alice-bob cooperate on sync; carol joins independently. *)
  let mentioning = List.filter (fun set -> List.mem "sync" set) sets in
  Alcotest.(check int) "only one cooperation carries sync" 1 (List.length mentioning);
  (* The restricted net still analyses, and carol's sync is independent:
     sync throughput exceeds the fully-synchronised variant. *)
  let analyse ex =
    let a = Choreographer.Workbench.analyse_net ~name:"m" ex.Extract.Ad_to_pepanet.net in
    Option.get
      (Choreographer.Results.throughput a.Choreographer.Workbench.net_results "sync")
  in
  let restricted = analyse ex in
  let full = analyse (Extract.Ad_to_pepanet.extract (shared_diagram ())) in
  Alcotest.(check bool) "independent carol raises sync throughput" true (restricted > full)

let test_xmi_round_trip () =
  let interactions =
    [
      I.make ~name:"calls"
        ~messages:[ ("alice", "bob", "sync"); ("bob", "carol", "notify") ];
    ]
  in
  let doc = Uml.Xmi_write.document_to_xml ~interactions [ shared_diagram () ] [] in
  let reread = Uml.Xmi_read.interactions_of_xml doc in
  Alcotest.(check bool) "interactions round trip" true (reread = interactions);
  (* and through the metadata repository *)
  let repo = Uml.Mdr.create () in
  Uml.Mdr.import_xmi repo doc;
  let reread2 = Uml.Xmi_read.interactions_of_xml (Uml.Mdr.export_xmi repo) in
  Alcotest.(check bool) "interactions survive MDR" true (reread2 = interactions)

let test_pipeline_uses_interactions () =
  let interactions = [ I.make ~name:"calls" ~messages:[ ("alice", "bob", "sync") ] ] in
  let doc = Uml.Xmi_write.document_to_xml ~interactions [ shared_diagram () ] [] in
  let outcome = Choreographer.Pipeline.process_document doc in
  (* The extracted net reflects the restriction. *)
  let net = snd (List.hd outcome.Choreographer.Pipeline.extracted_nets) in
  let mentioning = List.filter (fun set -> List.mem "sync" set) (coop_sets_of net) in
  Alcotest.(check int) "pipeline applied the interaction" 1 (List.length mentioning);
  (* and preserves the interaction in the reflected document *)
  Alcotest.(check bool) "interactions preserved in output" true
    (Uml.Xmi_read.interactions_of_xml outcome.Choreographer.Pipeline.reflected = interactions)

let suite =
  [
    Alcotest.test_case "allows" `Quick test_allows;
    Alcotest.test_case "default: full cooperation" `Quick test_extraction_without_interactions;
    Alcotest.test_case "interactions restrict cooperation" `Quick test_extraction_with_interactions;
    Alcotest.test_case "XMI and MDR round trip" `Quick test_xmi_round_trip;
    Alcotest.test_case "pipeline applies and preserves interactions" `Quick
      test_pipeline_uses_interactions;
  ]
