module C = Markov.Ctmc
module P = Markov.Passage

let close = Alcotest.float 1e-7

let test_single_exponential () =
  let c = C.of_transitions ~n:2 [ (0, 1, 2.0) ] in
  let sources = [ (0, 1.0) ] and targets = [ 1 ] in
  List.iter
    (fun t ->
      Alcotest.check close
        (Printf.sprintf "F(%g)" t)
        (1.0 -. exp (-2.0 *. t))
        (P.cdf c ~sources ~targets ~t))
    [ 0.1; 0.5; 1.0; 3.0 ];
  Alcotest.check close "mean" 0.5 (P.mean c ~sources ~targets);
  Alcotest.check (Alcotest.float 1e-3) "median" (log 2.0 /. 2.0)
    (P.quantile c ~sources ~targets ~p:0.5 ~epsilon:1e-5)

let test_erlang () =
  (* Two exponential hops at rate l: Erlang-2.
     F(t) = 1 - e^{-lt}(1 + lt); mean 2/l. *)
  let l = 3.0 in
  let c = C.of_transitions ~n:3 [ (0, 1, l); (1, 2, l) ] in
  let sources = [ (0, 1.0) ] and targets = [ 2 ] in
  List.iter
    (fun t ->
      Alcotest.check close
        (Printf.sprintf "Erlang F(%g)" t)
        (1.0 -. (exp (-.l *. t) *. (1.0 +. (l *. t))))
        (P.cdf c ~sources ~targets ~t))
    [ 0.05; 0.2; 0.7; 2.0 ];
  Alcotest.check close "Erlang mean" (2.0 /. l) (P.mean c ~sources ~targets)

let test_passage_through_cycles () =
  (* With a detour: 0 ->(1) 1 ->(1) 2 but 1 can fall back to 0 at rate 1.
     Hitting time closed form: h1 = 1/2 + (1/2)(1 + h1')... solve: from 1,
     exit 2: with prob 1/2 go to 2 (done), 1/2 back to 0.
     h0 = 1 + h1; h1 = 1/2 + (1/2) h0.  =>  h1 = 1/2 + 1/2(1 + h1) =>
     h1 = 2, h0 = 3. *)
  let c = C.of_transitions ~n:3 [ (0, 1, 1.0); (1, 2, 1.0); (1, 0, 1.0) ] in
  Alcotest.check close "cycle mean" 3.0 (P.mean c ~sources:[ (0, 1.0) ] ~targets:[ 2 ])

let test_source_is_target () =
  let c = C.of_transitions ~n:2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  Alcotest.check close "instant completion" 1.0 (P.cdf c ~sources:[ (0, 1.0) ] ~targets:[ 0 ] ~t:0.0);
  Alcotest.check close "zero mean" 0.0 (P.mean c ~sources:[ (0, 1.0) ] ~targets:[ 0 ])

let test_unreachable () =
  let c = C.of_transitions ~n:3 [ (0, 1, 1.0); (1, 0, 1.0); (2, 0, 1.0) ] in
  (* state 2 is unreachable from 0 *)
  Alcotest.check close "cdf stays 0" 0.0 (P.cdf c ~sources:[ (0, 1.0) ] ~targets:[ 2 ] ~t:50.0);
  Alcotest.(check bool) "mean infinite" true
    (P.mean c ~sources:[ (0, 1.0) ] ~targets:[ 2 ] = infinity);
  Alcotest.(check bool) "quantile infinite" true
    (P.quantile c ~sources:[ (0, 1.0) ] ~targets:[ 2 ] ~p:0.5 ~epsilon:1e-3 = infinity)

let test_weighted_sources_and_density () =
  let c = C.of_transitions ~n:3 [ (0, 2, 1.0); (1, 2, 4.0) ] in
  (* Half the mass starts fast, half slow: mean = (1 + 0.25) / 2. *)
  Alcotest.check close "weighted mean" 0.625
    (P.mean c ~sources:[ (0, 1.0); (1, 1.0) ] ~targets:[ 2 ]);
  let density =
    P.density c ~sources:[ (0, 1.0) ] ~targets:[ 2 ] ~times:[ 0.0; 0.01; 0.02 ]
  in
  Alcotest.(check int) "two density points" 2 (List.length density);
  let _, d0 = List.hd density in
  Alcotest.(check bool) "density near exp(0) = rate" true (abs_float (d0 -. 1.0) < 0.05)

let test_completion_probability () =
  (* 0 -> target 2 with rate 1, or 0 -> sink 1 with rate 3: completes
     with probability 1/4. *)
  let c = C.of_transitions ~n:3 [ (0, 2, 1.0); (0, 1, 3.0) ] in
  Alcotest.check close "split absorption" 0.25
    (P.completion_probability c ~sources:[ (0, 1.0) ] ~targets:[ 2 ]);
  Alcotest.check close "cdf saturates at the completion probability" 0.25
    (P.cdf c ~sources:[ (0, 1.0) ] ~targets:[ 2 ] ~t:60.0);
  Alcotest.(check bool) "quantile above the ceiling is infinite" true
    (P.quantile c ~sources:[ (0, 1.0) ] ~targets:[ 2 ] ~p:0.5 ~epsilon:1e-3 = infinity);
  Alcotest.(check bool) "quantile below the ceiling is finite" true
    (P.quantile c ~sources:[ (0, 1.0) ] ~targets:[ 2 ] ~p:0.2 ~epsilon:1e-3 < infinity);
  (* recurrent chain: completes surely *)
  let r = C.of_transitions ~n:2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  Alcotest.check close "recurrent completes" 1.0
    (P.completion_probability r ~sources:[ (0, 1.0) ] ~targets:[ 1 ])

let test_guards () =
  let c = C.of_transitions ~n:2 [ (0, 1, 1.0) ] in
  let expect_invalid thunk =
    match thunk () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> P.cdf c ~sources:[] ~targets:[ 1 ] ~t:1.0);
  expect_invalid (fun () -> P.cdf c ~sources:[ (0, 1.0) ] ~targets:[] ~t:1.0);
  expect_invalid (fun () -> P.cdf c ~sources:[ (0, -1.0) ] ~targets:[ 1 ] ~t:1.0);
  expect_invalid (fun () -> P.cdf c ~sources:[ (5, 1.0) ] ~targets:[ 1 ] ~t:1.0);
  expect_invalid (fun () -> P.quantile c ~sources:[ (0, 1.0) ] ~targets:[ 1 ] ~p:1.5 ~epsilon:1e-3)

let test_cross_check_with_littles_law () =
  (* The client's mean waiting delay from Little's law must equal the
     mean request-to-response passage time. *)
  let study = Scenarios.Tomcat.study ~server:(Scenarios.Tomcat.server_jsp ()) in
  let space = study.Scenarios.Tomcat.analysis.Choreographer.Workbench.space in
  let chain = Pepa.Statespace.ctmc space in
  let sources =
    List.filter_map
      (fun tr ->
        if Pepa.Action.equal tr.Pepa.Statespace.action (Pepa.Action.act "request") then
          Some (tr.Pepa.Statespace.dst, 1.0)
        else None)
      (Pepa.Statespace.transitions space)
  in
  let targets =
    List.filter_map
      (fun tr ->
        if Pepa.Action.equal tr.Pepa.Statespace.action (Pepa.Action.act "response") then
          Some tr.Pepa.Statespace.dst
        else None)
      (Pepa.Statespace.transitions space)
    |> List.sort_uniq compare
  in
  Alcotest.check close "Little's law agrees with passage analysis"
    study.Scenarios.Tomcat.waiting_delay
    (P.mean chain ~sources ~targets)

(* ------------------------------------------------------------------ *)
(* PRISM export                                                        *)
(* ------------------------------------------------------------------ *)

let test_prism_tra () =
  let c = C.of_transitions ~n:3 [ (0, 1, 2.0); (1, 2, 1.5); (2, 0, 3.0) ] in
  let tra = Markov.Prism.tra_string c in
  let lines = String.split_on_char '\n' (String.trim tra) in
  Alcotest.(check string) "header" "3 3" (List.hd lines);
  Alcotest.(check int) "one line per transition" 4 (List.length lines);
  Alcotest.(check bool) "rates present" true (List.mem "0 1 2" lines);
  let sta = Markov.Prism.sta_string c in
  Alcotest.(check bool) "sta rows" true
    (String.split_on_char '\n' (String.trim sta) = [ "(s)"; "0:(0)"; "1:(1)"; "2:(2)" ])

let test_prism_lab () =
  let c = C.of_transitions ~n:3 [ (0, 1, 1.0) ] in
  (* state 1 and 2 absorbing *)
  let lab = Markov.Prism.lab_string ~labels:[ ("busy", [ 0 ]) ] ~initial:0 c in
  let lines = String.split_on_char '\n' (String.trim lab) in
  Alcotest.(check string) "declarations" {|0="init" 1="deadlock" 2="busy"|} (List.hd lines);
  Alcotest.(check bool) "initial + busy state" true (List.mem "0: 0 2" lines);
  Alcotest.(check bool) "deadlock state" true (List.mem "1: 1" lines)

let test_prism_export_files () =
  let c = C.of_transitions ~n:2 [ (0, 1, 1.0); (1, 0, 2.0) ] in
  let dir = Filename.temp_file "prism" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let basename = Filename.concat dir "model" in
  let written = Markov.Prism.export ~initial:0 ~basename c in
  Alcotest.(check int) "three files" 3 (List.length written);
  List.iter (fun path -> Alcotest.(check bool) path true (Sys.file_exists path)) written;
  (* Reparse the .tra and rebuild an identical chain. *)
  let tra = In_channel.with_open_bin (basename ^ ".tra") In_channel.input_all in
  let lines = String.split_on_char '\n' (String.trim tra) in
  let transitions =
    List.tl lines
    |> List.map (fun line ->
           Scanf.sscanf line "%d %d %f" (fun a b r -> (a, b, r)))
  in
  let rebuilt = C.of_transitions ~n:2 transitions in
  Alcotest.check close "rates survive" (C.rate c 1 0) (C.rate rebuilt 1 0)

let suite =
  [
    Alcotest.test_case "single exponential passage" `Quick test_single_exponential;
    Alcotest.test_case "Erlang passage" `Quick test_erlang;
    Alcotest.test_case "passage through cycles" `Quick test_passage_through_cycles;
    Alcotest.test_case "source already at target" `Quick test_source_is_target;
    Alcotest.test_case "unreachable targets" `Quick test_unreachable;
    Alcotest.test_case "weighted sources and density" `Quick test_weighted_sources_and_density;
    Alcotest.test_case "completion probability" `Quick test_completion_probability;
    Alcotest.test_case "input guards" `Quick test_guards;
    Alcotest.test_case "Little's law cross-check" `Quick test_cross_check_with_littles_law;
    Alcotest.test_case "prism .tra/.sta" `Quick test_prism_tra;
    Alcotest.test_case "prism .lab" `Quick test_prism_lab;
    Alcotest.test_case "prism export files" `Quick test_prism_export_files;
  ]
