test/test_edge_cases.ml: Alcotest Array Choreographer Extract Filename Format List Markov Option Pepa Pepanet Scenarios String Sys Uml Xml_kit
