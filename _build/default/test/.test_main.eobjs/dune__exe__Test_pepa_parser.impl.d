test/test_pepa_parser.ml: Alcotest Float List Pepa QCheck2 QCheck_alcotest
