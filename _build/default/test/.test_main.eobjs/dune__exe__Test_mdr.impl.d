test/test_mdr.ml: Alcotest List Scenarios Uml Xml_kit
