test/test_sc_extract.ml: Alcotest Choreographer Extract List Option Printf Scenarios Uml
