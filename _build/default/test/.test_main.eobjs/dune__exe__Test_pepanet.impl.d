test/test_pepanet.ml: Alcotest Array Fun Gen List Markov Pepa Pepanet Printf QCheck2 QCheck_alcotest Scenarios String Test
