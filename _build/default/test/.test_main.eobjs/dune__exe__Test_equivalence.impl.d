test/test_equivalence.ml: Alcotest Array Choreographer Extract Gen List Pepa Printf QCheck2 QCheck_alcotest Scenarios Test
