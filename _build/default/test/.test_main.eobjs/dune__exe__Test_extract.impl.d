test/test_extract.ml: Alcotest Choreographer Extract List Option Pepa Pepanet Printf Scenarios String Uml
