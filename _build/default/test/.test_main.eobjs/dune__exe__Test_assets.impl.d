test/test_assets.ml: Alcotest Choreographer Extract Filename Float In_channel List Option Pepanet Sys Uml
