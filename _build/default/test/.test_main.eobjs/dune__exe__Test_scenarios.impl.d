test/test_scenarios.ml: Alcotest Choreographer Extract List Option Pepa Pepanet Scenarios Uml Xml_kit
