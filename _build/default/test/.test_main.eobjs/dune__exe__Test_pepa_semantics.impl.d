test/test_pepa_semantics.ml: Alcotest Array List Pepa Printf Scenarios String
