test/test_report.ml: Alcotest Choreographer List Pepa Pepanet Scenarios String
