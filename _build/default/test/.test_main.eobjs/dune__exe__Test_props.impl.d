test/test_props.ml: Array Choreographer Extract Fun Gen List Pepanet Printf QCheck2 QCheck_alcotest Scenarios String Test Uml
