test/test_uml.ml: Alcotest List Uml
