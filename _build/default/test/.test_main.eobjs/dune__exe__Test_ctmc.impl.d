test/test_ctmc.ml: Alcotest Array Gen List Markov Printf QCheck2 QCheck_alcotest Test
