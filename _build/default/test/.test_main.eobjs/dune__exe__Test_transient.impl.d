test/test_transient.ml: Alcotest Array List Markov Printf
