test/test_simulate.ml: Alcotest Array Extract Float Hashtbl List Markov Pepanet Printf Scenarios
