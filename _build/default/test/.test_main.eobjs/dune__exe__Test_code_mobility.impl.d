test/test_code_mobility.ml: Alcotest List Printf Scenarios
