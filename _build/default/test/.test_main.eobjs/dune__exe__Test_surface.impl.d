test/test_surface.ml: Alcotest Array Format Fun List Markov Pepa Pepanet Scenarios String Uml Xml_kit
