test/test_diagram_text.ml: Alcotest Choreographer Extract List Option Scenarios Uml
