test/test_passage.ml: Alcotest Choreographer Filename In_channel List Markov Pepa Printf Scanf Scenarios String Sys
