test/test_rate.ml: Alcotest Float Gen List Pepa QCheck2 QCheck_alcotest Test
