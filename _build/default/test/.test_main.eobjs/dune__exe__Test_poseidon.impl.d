test/test_poseidon.ml: Alcotest List Scenarios Uml Xml_kit
