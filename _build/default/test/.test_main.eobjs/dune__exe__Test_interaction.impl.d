test/test_interaction.ml: Alcotest Choreographer Extract List Option Pepa Pepanet Uml
