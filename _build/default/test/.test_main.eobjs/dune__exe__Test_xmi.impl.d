test/test_xmi.ml: Alcotest Format List Scenarios Uml Xml_kit
