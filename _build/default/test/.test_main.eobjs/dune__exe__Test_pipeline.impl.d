test/test_pipeline.ml: Alcotest Choreographer Extract Filename In_channel List Option Out_channel Pepanet Scenarios String Sys Uml Xml_kit
