test/test_query.ml: Alcotest Choreographer List Scenarios
