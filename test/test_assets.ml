(* The committed example assets stay analysable: these tests load them
   from disk exactly as the command-line tools would. *)

let asset name =
  (* Tests run in _build/default/test; the assets are declared as deps. *)
  let candidates = [ Filename.concat "../examples/assets" name; Filename.concat "examples/assets" name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "asset %s not found" name

let close = Alcotest.float 1e-9

let test_mm1k () =
  let analysis = Choreographer.Workbench.analyse_pepa_file (asset "mm1k.pepa") in
  let results = analysis.Choreographer.Workbench.results in
  Alcotest.(check int) "states" 4 results.Choreographer.Results.n_states;
  (* M/M/1/3 closed form: arrival throughput = l (1 - p3). *)
  let rho = 2.0 /. 3.0 in
  let z = 1.0 +. rho +. (rho ** 2.0) +. (rho ** 3.0) in
  let p3 = rho ** 3.0 /. z in
  Alcotest.check close "effective arrival rate" (2.0 *. (1.0 -. p3))
    (Option.get (Choreographer.Results.throughput results "arrive"));
  Alcotest.check close "flow balance"
    (Option.get (Choreographer.Results.throughput results "arrive"))
    (Option.get (Choreographer.Results.throughput results "serve"))

let test_instant_message_file () =
  let analysis = Choreographer.Workbench.analyse_net_file (asset "instant_message.pepanet") in
  let results = analysis.Choreographer.Workbench.net_results in
  Alcotest.(check int) "markings" 8 results.Choreographer.Results.n_states;
  Alcotest.check close "same number as the embedded scenario" 0.385852
    (Float.round (Option.get (Choreographer.Results.throughput results "transmit") *. 1e6)
    /. 1e6)

let test_pda_uml_asset () =
  let activities, charts = Uml.Diagram_text.parse_file (asset "pda.uml") in
  Alcotest.(check int) "one activity diagram" 1 (List.length activities);
  Alcotest.(check int) "no charts" 0 (List.length charts);
  let rates = Uml.Rates_file.of_file (asset "pda.rates") in
  let ex = Extract.Ad_to_pepanet.extract ~rates (List.hd activities) in
  let analysis =
    Choreographer.Workbench.analyse_net ~name:"pda" ex.Extract.Ad_to_pepanet.net
  in
  let cycle = 0.5 +. 0.1 +. 0.2 +. 2.0 +. 0.125 +. 1.0 in
  Alcotest.check close "asset matches the builder scenario" (1.0 /. cycle)
    (Option.get
       (Choreographer.Results.throughput analysis.Choreographer.Workbench.net_results
          "handover"))

let test_web_uml_asset () =
  let activities, charts = Uml.Diagram_text.parse_file (asset "web.uml") in
  Alcotest.(check int) "no activity diagrams" 0 (List.length activities);
  Alcotest.(check int) "two charts" 2 (List.length charts);
  let ex = Extract.Sc_to_pepa.extract charts in
  let analysis = Choreographer.Workbench.analyse_pepa ex.Extract.Sc_to_pepa.model in
  Alcotest.check close "request throughput matches the programmatic model" 0.368098
    (Float.round
       (Option.get
          (Choreographer.Results.throughput analysis.Choreographer.Workbench.results "request")
       *. 1e6)
    /. 1e6)

let test_extraction_golden () =
  (* The extractor's textual output for the committed pda.uml is itself
     committed; any change to the generated model is an intentional,
     reviewed change. *)
  let activities, _ = Uml.Diagram_text.parse_file (asset "pda.uml") in
  let rates = Uml.Rates_file.of_file (asset "pda.rates") in
  let ex = Extract.Ad_to_pepanet.extract ~rates (List.hd activities) in
  let produced = Pepanet.Net_printer.net_to_string ex.Extract.Ad_to_pepanet.net in
  let expected =
    In_channel.with_open_bin (asset "pda_expected.pepanet") In_channel.input_all
  in
  Alcotest.(check string) "golden extraction output" expected produced

(* The roaming asset used by the CI multicore smoke must stay in sync
   with the embedded scenario: same space, same measures. *)
let test_roaming_asset () =
  let from_file = Pepanet.Net_statespace.of_file (asset "roaming.pepanet") in
  let embedded = Scenarios.Roaming.space () in
  Alcotest.(check int) "same markings"
    (Pepanet.Net_statespace.n_markings embedded)
    (Pepanet.Net_statespace.n_markings from_file);
  Alcotest.(check int) "same transitions"
    (Pepanet.Net_statespace.n_transitions embedded)
    (Pepanet.Net_statespace.n_transitions from_file);
  let throughputs sp = Pepanet.Net_measures.throughputs sp (Pepanet.Net_statespace.steady_state sp) in
  List.iter2
    (fun (name_e, v_e) (name_f, v_f) ->
      Alcotest.(check string) "action name" name_e name_f;
      Alcotest.check close ("throughput of " ^ name_e) v_e v_f)
    (throughputs embedded) (throughputs from_file)

let suite =
  [
    Alcotest.test_case "mm1k.pepa" `Quick test_mm1k;
    Alcotest.test_case "instant_message.pepanet" `Quick test_instant_message_file;
    Alcotest.test_case "roaming.pepanet" `Quick test_roaming_asset;
    Alcotest.test_case "pda.uml + pda.rates" `Quick test_pda_uml_asset;
    Alcotest.test_case "web.uml" `Quick test_web_uml_asset;
    Alcotest.test_case "golden extraction output" `Quick test_extraction_golden;
  ]
