(* The multicore engine.  Two layers under test: the [Par] primitives
   (pool, parallel_for, deterministic sums, the frontier-parallel
   exploration engine) and the determinism contract of the pipeline
   built on them — at any job count the state space, the CTMC and the
   steady vector must reproduce the sequential results, state numbering
   and transition order included. *)

let jobs = 4

(* The process-wide default drives the phases whose APIs cannot take a
   per-call [?jobs] (CSR assembly); restore it so other suites stay on
   the sequential path. *)
let with_jobs n f =
  Par.set_jobs n;
  Fun.protect ~finally:(fun () -> Par.set_jobs 1) f

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Par primitives                                                      *)
(* ------------------------------------------------------------------ *)

let test_resolve () =
  Alcotest.(check int) "1 is sequential" 1 (Par.resolve 1);
  Alcotest.(check int) "explicit count" 5 (Par.resolve 5);
  Alcotest.(check bool) "0 auto-detects to a positive count" true (Par.resolve 0 >= 1);
  Alcotest.check_raises "negative job counts rejected"
    (Invalid_argument "Par.resolve: jobs must be >= 0") (fun () ->
      ignore (Par.resolve (-3)));
  Alcotest.(check bool) "a pool of one is no pool" true (Par.pool ~jobs:1 () = None);
  with_jobs 3 (fun () -> Alcotest.(check int) "set_jobs feeds the default" 3 (Par.jobs ()))

let require_pool n =
  match Par.pool ~jobs:n () with
  | Some p -> p
  | None -> Alcotest.failf "expected a pool of %d" n

let test_parallel_for () =
  let p = require_pool 3 in
  let n = 10_000 in
  let hits = Array.make n 0 in
  Par.parallel_for p ~chunk:7 ~lo:0 ~hi:n (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check bool) "every index covered exactly once" true
    (Array.for_all (( = ) 1) hits)

let test_parallel_chunks () =
  (* Every chunk ordinal runs exactly once — callers index per-chunk
     scratch by ordinal, so this holds even on a pool of one. *)
  List.iter
    (fun size ->
      let p = require_pool size in
      let seen = Array.make 64 0 in
      let n_chunks =
        Par.parallel_chunks p ~chunk:17 ~lo:0 ~hi:1000 (fun ~chunk lo hi ->
            seen.(chunk) <- seen.(chunk) + (hi - lo))
      in
      Alcotest.(check int) "chunk count covers the range" ((1000 + 16) / 17) n_chunks;
      let total = Array.fold_left ( + ) 0 seen in
      Alcotest.(check int) "chunks partition the range" 1000 total;
      for c = 0 to n_chunks - 1 do
        if seen.(c) = 0 then Alcotest.failf "chunk %d never ran" c
      done)
    [ 2; 3 ]

let test_sum_floats_deterministic () =
  let p = require_pool 4 in
  let partial lo hi =
    let s = ref 0.0 in
    for i = lo to hi - 1 do
      s := !s +. (1.0 /. float_of_int (i + 1))
    done;
    !s
  in
  let a = Par.sum_floats p ~lo:0 ~hi:100_000 partial in
  let b = Par.sum_floats p ~lo:0 ~hi:100_000 partial in
  Alcotest.(check bool) "repeated parallel sums bitwise equal" true (a = b);
  Alcotest.(check (float 1e-9)) "close to the sequential sum" (partial 0 100_000) a

let test_pool_exception () =
  let p = require_pool 3 in
  Alcotest.check_raises "a worker exception reaches the caller" Exit (fun () ->
      Par.parallel_for p ~chunk:1 ~lo:0 ~hi:100 (fun lo _ -> if lo = 57 then raise Exit));
  (* The pool survives a failed batch. *)
  let hits = Atomic.make 0 in
  Par.parallel_for p ~lo:0 ~hi:100 (fun lo hi -> ignore (Atomic.fetch_and_add hits (hi - lo)));
  Alcotest.(check int) "pool usable after the failure" 100 (Atomic.get hits)

(* ------------------------------------------------------------------ *)
(* The exploration engine against a sequential reference BFS           *)
(* ------------------------------------------------------------------ *)

(* A deterministic pseudo-random digraph on 0..996. *)
let toy_expand i =
  [
    ((i * 7) + 1) mod 997, Printf.sprintf "p%d" i;
    ((i * 31) + 5) mod 997, "q";
    (i + 1) mod 997, "r";
  ]

(* First-occurrence numbering over the breadth-first transition stream:
   exactly the order the sequential builders use. *)
let reference_bfs ~expand root =
  let index = Hashtbl.create 64 in
  let order = ref [ root ] in
  let queue = Queue.create () in
  Hashtbl.add index root 0;
  Queue.add root queue;
  let count = ref 1 in
  let edges = ref [] in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let src = Hashtbl.find index s in
    List.iter
      (fun (d, payload) ->
        let dst =
          match Hashtbl.find_opt index d with
          | Some i -> i
          | None ->
              let i = !count in
              incr count;
              Hashtbl.add index d i;
              order := d :: !order;
              Queue.add d queue;
              i
        in
        edges := (src, dst, payload) :: !edges)
      (expand s)
  done;
  (Array.of_list (List.rev !order), List.rev !edges)

let test_explore_matches_reference () =
  let ref_states, ref_edges = reference_bfs ~expand:toy_expand 0 in
  List.iter
    (fun size ->
      let p = require_pool size in
      let edges = ref [] in
      let result =
        Par.Explore.explore ~pool:p ~hash:Hashtbl.hash ~equal:( = ) ~expand:toy_expand
          ~emit:(fun ~src ~dst payload -> edges := (src, dst, payload) :: !edges)
          0
      in
      Alcotest.(check bool)
        (Printf.sprintf "states in sequential order (pool %d)" size)
        true
        (result.Par.Explore.states = ref_states);
      Alcotest.(check bool)
        (Printf.sprintf "transition stream in sequential order (pool %d)" size)
        true
        (List.rev !edges = ref_edges);
      Alcotest.(check int) "shard occupancy accounts for every state"
        (Array.length ref_states)
        (Array.fold_left ( + ) 0 result.Par.Explore.shard_states))
    [ 2; 4 ]

let test_explore_limit () =
  let p = require_pool 3 in
  Alcotest.check_raises "state cap raises Limit" Par.Explore.Limit (fun () ->
      ignore
        (Par.Explore.explore ~pool:p ~hash:Hashtbl.hash ~equal:( = ) ~expand:toy_expand
           ~emit:(fun ~src:_ ~dst:_ _ -> ())
           ~max_states:50 0))

(* ------------------------------------------------------------------ *)
(* Pipeline determinism: jobs = 4 must reproduce jobs = 1 exactly      *)
(* ------------------------------------------------------------------ *)

let max_abs_diff a b =
  Alcotest.(check int) "steady vectors same length" (Array.length a) (Array.length b);
  let d = ref 0.0 in
  Array.iteri (fun i v -> d := Float.max !d (Float.abs (v -. b.(i)))) a;
  !d

let generator_of space = Markov.Ctmc.generator (Pepa.Statespace.ctmc space)
let net_generator_of space = Markov.Ctmc.generator (Pepanet.Net_statespace.ctmc space)

let check_pepa_deterministic name source =
  List.iter
    (fun symmetry ->
      let tag = Printf.sprintf "%s%s" name (if symmetry then " (symmetry)" else "") in
      let seq = Pepa.Statespace.of_string ~symmetry source in
      let par = Pepa.Statespace.of_string ~symmetry ~jobs source in
      Alcotest.(check int)
        (tag ^ ": states") (Pepa.Statespace.n_states seq) (Pepa.Statespace.n_states par);
      Alcotest.(check int)
        (tag ^ ": transitions")
        (Pepa.Statespace.n_transitions seq)
        (Pepa.Statespace.n_transitions par);
      let labels sp =
        Array.init (Pepa.Statespace.n_states sp) (Pepa.Statespace.state_label sp)
      in
      Alcotest.(check bool) (tag ^ ": state numbering identical") true
        (labels seq = labels par);
      Alcotest.(check bool) (tag ^ ": transition list identical") true
        (Pepa.Statespace.transitions seq = Pepa.Statespace.transitions par);
      Alcotest.(check bool) (tag ^ ": generator bitwise identical") true
        (generator_of seq = with_jobs jobs (fun () -> generator_of par));
      let pi_seq = Pepa.Statespace.steady_state seq in
      let pi_par = Pepa.Statespace.steady_state ~jobs par in
      Alcotest.(check bool) (tag ^ ": steady vector within 1e-10") true
        (max_abs_diff pi_seq pi_par <= 1e-10);
      (* --aggregate both: symmetry orbits and lump respect keys are
         derived from the (identical) numbering, so the lumped solve
         must agree too. *)
      if symmetry then begin
        let pi_seq = Pepa.Statespace.steady_state ~lump:true seq in
        let pi_par = Pepa.Statespace.steady_state ~lump:true ~jobs par in
        Alcotest.(check bool) (tag ^ ": lumped steady vector within 1e-10") true
          (max_abs_diff pi_seq pi_par <= 1e-10)
      end)
    [ false; true ]

let check_net_deterministic name source =
  List.iter
    (fun symmetry ->
      let tag = Printf.sprintf "%s%s" name (if symmetry then " (symmetry)" else "") in
      let seq = Pepanet.Net_statespace.of_string ~symmetry source in
      let par = Pepanet.Net_statespace.of_string ~symmetry ~jobs source in
      Alcotest.(check int)
        (tag ^ ": markings")
        (Pepanet.Net_statespace.n_markings seq)
        (Pepanet.Net_statespace.n_markings par);
      let labels sp =
        Array.init
          (Pepanet.Net_statespace.n_markings sp)
          (Pepanet.Net_statespace.marking_label sp)
      in
      Alcotest.(check bool) (tag ^ ": marking numbering identical") true
        (labels seq = labels par);
      Alcotest.(check bool) (tag ^ ": transition list identical") true
        (Pepanet.Net_statespace.transitions seq = Pepanet.Net_statespace.transitions par);
      Alcotest.(check bool) (tag ^ ": generator bitwise identical") true
        (net_generator_of seq = with_jobs jobs (fun () -> net_generator_of par));
      let pi_seq = Pepanet.Net_statespace.steady_state seq in
      let pi_par = Pepanet.Net_statespace.steady_state ~jobs par in
      Alcotest.(check bool) (tag ^ ": steady vector within 1e-10") true
        (max_abs_diff pi_seq pi_par <= 1e-10);
      if symmetry then begin
        let pi_seq = Pepanet.Net_statespace.steady_state ~lump:true seq in
        let pi_par = Pepanet.Net_statespace.steady_state ~lump:true ~jobs par in
        Alcotest.(check bool) (tag ^ ": lumped steady vector within 1e-10") true
          (max_abs_diff pi_seq pi_par <= 1e-10)
      end)
    [ false; true ]

let e6 n =
  Printf.sprintf
    "Proc = (task, 1.0).(swap, 2.0).Proc;\n\
     Srv = (task, infty).(log, 5.0).Srv;\n\
     system (Proc[%d]) <task> Srv;"
    n

let test_scenarios_deterministic () =
  check_pepa_deterministic "roaming" (Scenarios.Roaming.pepa_source ~replicas:4);
  check_pepa_deterministic "file-protocol" Scenarios.File_protocol.pepa_source;
  check_pepa_deterministic "e6-9" (e6 9);
  check_net_deterministic "roaming-net" Scenarios.Roaming.pepanet_source;
  check_net_deterministic "instant-message" Scenarios.Instant_message.pepanet_source

let test_extracted_nets_deterministic () =
  (* Nets that only exist as compiled structures: the PDA handover and
     the code-mobility agent, through [build] directly. *)
  let check name compiled =
    let seq = Pepanet.Net_statespace.build compiled in
    let par = Pepanet.Net_statespace.build ~jobs compiled in
    let labels sp =
      Array.init
        (Pepanet.Net_statespace.n_markings sp)
        (Pepanet.Net_statespace.marking_label sp)
    in
    Alcotest.(check bool) (name ^ ": marking numbering identical") true
      (labels seq = labels par);
    Alcotest.(check bool) (name ^ ": transition list identical") true
      (Pepanet.Net_statespace.transitions seq = Pepanet.Net_statespace.transitions par)
  in
  let pda = Scenarios.Pda.extraction () in
  check "pda" (Pepanet.Net_compile.compile pda.Extract.Ad_to_pepanet.net);
  check "code-mobility"
    (Pepanet.Net_compile.compile
       (Scenarios.Code_mobility.mobile_agent_net Scenarios.Code_mobility.default_parameters))

(* A model big enough to cross every parallel threshold: 2^13 states,
   ~90k transitions (CSR assembly parallelises beyond 32k nonzeros, the
   solvers beyond 4096 states). *)
let test_large_model_parallel_paths () =
  let source = e6 12 in
  let seq = Pepa.Statespace.of_string source in
  let par = Pepa.Statespace.of_string ~jobs source in
  let chain_seq = Pepa.Statespace.ctmc seq in
  let chain_par = with_jobs jobs (fun () -> Pepa.Statespace.ctmc par) in
  let g_seq = Markov.Ctmc.generator chain_seq in
  let g_par = Markov.Ctmc.generator chain_par in
  Alcotest.(check bool) "parallel CSR assembly bitwise identical" true (g_seq = g_par);
  Alcotest.(check bool) "parallel transpose bitwise identical" true
    (Markov.Sparse.transpose g_seq = Markov.Sparse.transpose ~jobs g_seq);
  let check_method name method_ =
    let pi_seq = Markov.Steady.solve ~method_ chain_seq in
    let pi_par = Markov.Steady.solve ~method_ ~jobs chain_par in
    Alcotest.(check bool) (name ^ " parallel within 1e-10") true
      (max_abs_diff pi_seq pi_par <= 1e-10)
  in
  check_method "jacobi" Markov.Steady.Jacobi;
  check_method "power" Markov.Steady.Power;
  (* Gauss-Seidel stays sequential at any job count: bitwise equal. *)
  let pi_seq = Markov.Steady.solve ~method_:Markov.Steady.Gauss_seidel chain_seq in
  let pi_par = Markov.Steady.solve ~method_:Markov.Steady.Gauss_seidel ~jobs chain_par in
  Alcotest.(check bool) "gauss-seidel independent of jobs" true (pi_seq = pi_par)

(* ------------------------------------------------------------------ *)
(* Random small PEPA terms                                             *)
(* ------------------------------------------------------------------ *)

let gen_model =
  let open QCheck2.Gen in
  let action = oneofl [ "a"; "b"; "c" ] in
  let rate = 1 -- 40 >|= fun r -> float_of_int r /. 10.0 in
  let component name =
    list_size (1 -- 3) (pair action rate) >|= fun steps ->
    Printf.sprintf "%s = %s%s;" name
      (String.concat ""
         (List.map (fun (a, r) -> Printf.sprintf "(%s, %.1f)." a r) steps))
      name
  in
  let coop = oneofl [ "<>"; "<a>"; "<b>"; "<a, b>"; "<a, b, c>" ] in
  let replicas = 1 -- 3 in
  component "P" >>= fun p ->
  component "Q" >>= fun q ->
  coop >>= fun set ->
  replicas >>= fun np ->
  replicas >|= fun nq ->
  Printf.sprintf "%s\n%s\nsystem (P[%d]) %s (Q[%d]);" p q np set nq

let prop_random_terms_deterministic =
  QCheck2.Test.make ~name:"random PEPA terms explore identically at jobs = 3" ~count:60
    ~print:(fun s -> s)
    gen_model
    (fun source ->
      let seq = Pepa.Statespace.of_string source in
      let par = Pepa.Statespace.of_string ~jobs:3 source in
      let labels sp =
        Array.init (Pepa.Statespace.n_states sp) (Pepa.Statespace.state_label sp)
      in
      labels seq = labels par
      && Pepa.Statespace.transitions seq = Pepa.Statespace.transitions par
      && generator_of seq = generator_of par)

(* ------------------------------------------------------------------ *)
(* CLI validation                                                      *)
(* ------------------------------------------------------------------ *)

let test_jobs_cli_validation () =
  let cmd =
    Cmdliner.Cmd.v (Cmdliner.Cmd.info "probe")
      Cmdliner.Term.(const (fun _jobs -> ()) $ Cli_support.telemetry_term)
  in
  let eval argv = Cli_support.eval_cli ~argv cmd in
  Fun.protect
    ~finally:(fun () -> Par.set_jobs 1)
    (fun () ->
      Alcotest.(check int) "non-numeric --jobs exits 2" 2 (eval [| "probe"; "--jobs"; "banana" |]);
      Alcotest.(check int) "negative --jobs exits 2" 2 (eval [| "probe"; "--jobs=-3" |]);
      Alcotest.(check int) "--jobs 2 accepted" 0 (eval [| "probe"; "--jobs"; "2" |]);
      Alcotest.(check int) "resolved count installed" 2 (Par.jobs ());
      Alcotest.(check int) "--jobs 0 auto-detects" 0 (eval [| "probe"; "-j"; "0" |]);
      Alcotest.(check bool) "auto-detected count positive" true (Par.jobs () >= 1));
  match Cmdliner.Arg.conv_parser Cli_support.jobs_conv "banana" with
  | Error (`Msg m) ->
      Alcotest.(check bool) "parse error enumerates the valid forms" true
        (contains_sub m "valid:")
  | Ok _ -> Alcotest.fail "banana must not parse as a job count"

let suite =
  [
    Alcotest.test_case "resolve and defaults" `Quick test_resolve;
    Alcotest.test_case "parallel_for covers the range" `Quick test_parallel_for;
    Alcotest.test_case "parallel_chunks runs every ordinal" `Quick test_parallel_chunks;
    Alcotest.test_case "parallel sums are deterministic" `Quick test_sum_floats_deterministic;
    Alcotest.test_case "worker exceptions propagate" `Quick test_pool_exception;
    Alcotest.test_case "explore matches the sequential BFS" `Quick test_explore_matches_reference;
    Alcotest.test_case "explore honours the state cap" `Quick test_explore_limit;
    Alcotest.test_case "scenario pipelines are deterministic" `Slow test_scenarios_deterministic;
    Alcotest.test_case "extracted nets are deterministic" `Quick test_extracted_nets_deterministic;
    Alcotest.test_case "large-model parallel paths" `Slow test_large_model_parallel_paths;
    QCheck_alcotest.to_alcotest prop_random_terms_deterministic;
    Alcotest.test_case "--jobs validation" `Quick test_jobs_cli_validation;
  ]
