(* The telemetry layer: spans, metrics, sinks and the run report.

   Collection state is process-global, so every test starts from a
   clean slate and leaves collection disabled for the suites that run
   after it. *)

module J = Obs.Json
module Sp = Obs.Span
module M = Obs.Metrics

let fresh () =
  Obs.Config.disable ();
  Obs.Config.set_level Obs.Config.Quiet;
  Sp.clear_listeners ();
  Sp.reset ();
  M.reset ()

let with_collection f =
  fresh ();
  Obs.Config.enable ();
  Fun.protect ~finally:fresh f

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_collection (fun () ->
      Sp.with_ "outer" (fun _ ->
          Sp.with_ "inner_a" (fun _ -> ());
          Sp.with_ "inner_b" (fun sp -> Sp.add_int sp "k" 7));
      let spans = Sp.completed_spans () in
      Alcotest.(check int) "three spans" 3 (List.length spans);
      (* Completion order: children close before their parents. *)
      Alcotest.(check (list string))
        "completion order"
        [ "inner_a"; "inner_b"; "outer" ]
        (List.map (fun (s : Sp.completed) -> s.Sp.name) spans);
      let outer = List.nth spans 2 in
      let inner_a = List.nth spans 0 in
      let inner_b = List.nth spans 1 in
      Alcotest.(check int) "outer is a root" (-1) outer.Sp.parent;
      Alcotest.(check int) "inner_a under outer" outer.Sp.id inner_a.Sp.parent;
      Alcotest.(check int) "inner_b under outer" outer.Sp.id inner_b.Sp.parent;
      Alcotest.(check int) "outer depth" 0 outer.Sp.depth;
      Alcotest.(check int) "inner depth" 1 inner_a.Sp.depth;
      Alcotest.(check bool) "attribute recorded" true
        (List.mem_assoc "k" inner_b.Sp.attrs);
      Alcotest.(check bool)
        "parent spans its children"
        true
        (outer.Sp.duration_s +. 1e-9
        >= inner_a.Sp.duration_s +. inner_b.Sp.duration_s))

let test_span_exception_close () =
  with_collection (fun () ->
      (try Sp.with_ "failing" (fun _ -> failwith "boom") with Failure _ -> ());
      match Sp.completed_spans () with
      | [ s ] ->
          Alcotest.(check string) "name" "failing" s.Sp.name;
          Alcotest.(check bool) "error attribute" true (List.mem_assoc "error" s.Sp.attrs)
      | spans -> Alcotest.failf "expected one span, got %d" (List.length spans))

let test_timed_agrees () =
  with_collection (fun () ->
      let (), d = Sp.timed "t" (fun _ -> ()) in
      match Sp.completed_spans () with
      | [ s ] ->
          Alcotest.(check (float 1e-12)) "timed returns the span duration" s.Sp.duration_s d
      | _ -> Alcotest.fail "expected one span")

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_arithmetic () =
  with_collection (fun () ->
      let c = M.counter "test.counter" in
      Alcotest.(check int) "starts at zero" 0 (M.value c);
      M.incr c;
      M.add c 41;
      Alcotest.(check int) "incr + add" 42 (M.value c);
      Alcotest.(check int) "get-or-create shares state" 42 (M.value (M.counter "test.counter"));
      M.reset ();
      Alcotest.(check int) "reset zeroes but keeps the handle" 0 (M.value c))

let test_histogram_stats () =
  with_collection (fun () ->
      let h = M.histogram "test.histogram" in
      List.iter (M.observe h) [ 1.0; 2.0; 3.0; 10.0 ];
      let s = M.histogram_stats h in
      Alcotest.(check int) "count" 4 s.M.count;
      Alcotest.(check (float 1e-12)) "sum" 16.0 s.M.sum;
      Alcotest.(check (float 1e-12)) "min" 1.0 s.M.min;
      Alcotest.(check (float 1e-12)) "max" 10.0 s.M.max;
      Alcotest.(check (float 1e-12)) "mean" 4.0 s.M.mean)

let test_series_order () =
  with_collection (fun () ->
      let s = M.series "test.series" in
      M.push s ~x:0.0 ~y:1.0;
      M.push s ~x:8.0 ~y:0.5;
      M.push s ~x:16.0 ~y:0.25;
      Alcotest.(check (list (pair (float 0.0) (float 0.0))))
        "points in push order"
        [ (0.0, 1.0); (8.0, 0.5); (16.0, 0.25) ]
        (M.series_points s))

let test_disabled_is_noop () =
  fresh ();
  (* Collection off: spans vanish, metric mutations do not stick. *)
  Sp.with_ "ghost" (fun sp ->
      Sp.add_int sp "k" 1;
      Sp.with_ "nested_ghost" (fun _ -> ()));
  let c = M.counter "test.disabled.counter" in
  M.incr c;
  M.add c 100;
  let h = M.histogram "test.disabled.histogram" in
  M.observe h 5.0;
  Alcotest.(check int) "no spans recorded" 0 (List.length (Sp.completed_spans ()));
  Alcotest.(check int) "counter unmoved" 0 (M.value c);
  Alcotest.(check int) "histogram empty" 0 (M.histogram_stats h).M.count;
  let (), d = Sp.timed "ghost_timed" (fun _ -> ()) in
  Alcotest.(check bool) "timed still measures while disabled" true (d >= 0.0);
  Alcotest.(check int) "timed recorded nothing" 0 (List.length (Sp.completed_spans ()))

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_roundtrip () =
  with_collection (fun () ->
      Sp.with_ "root" (fun sp ->
          Sp.add_str sp "model" "pda";
          Sp.with_ "child" (fun _ -> ()));
      let doc = Obs.Sink.chrome_trace (Sp.completed_spans ()) in
      let reparsed = J.of_string (J.to_string doc) in
      let events = Option.value ~default:J.Null (J.member "traceEvents" reparsed) in
      let events = J.to_list events in
      Alcotest.(check int) "one event per span" 2 (List.length events);
      List.iter
        (fun e ->
          Alcotest.(check (option string))
            "complete event" (Some "X")
            (match J.member "ph" e with Some (J.Str s) -> Some s | _ -> None);
          Alcotest.(check bool) "ts present" true (J.member "ts" e <> None);
          Alcotest.(check bool) "dur present" true (J.member "dur" e <> None))
        events;
      let names =
        List.filter_map
          (fun e -> match J.member "name" e with Some (J.Str s) -> Some s | _ -> None)
          events
        |> List.sort compare
      in
      Alcotest.(check (list string)) "span names survive" [ "child"; "root" ] names;
      let root =
        List.find
          (fun e -> J.member "name" e = Some (J.Str "root"))
          events
      in
      let args = Option.value ~default:J.Null (J.member "args" root) in
      Alcotest.(check bool) "attributes land under args" true
        (J.member "model" args = Some (J.Str "pda")))

let test_metrics_json_roundtrip () =
  with_collection (fun () ->
      M.add (M.counter "test.json.counter") 3;
      M.set (M.gauge "test.json.gauge") 2.5;
      let doc = Obs.Sink.metrics_json (M.snapshot ()) in
      let reparsed = J.of_string (J.to_string ~pretty:true doc) in
      let counters = Option.value ~default:J.Null (J.member "counters" reparsed) in
      Alcotest.(check (option (float 0.0)))
        "counter value" (Some 3.0)
        (Option.bind (J.member "test.json.counter" counters) J.to_float);
      let gauges = Option.value ~default:J.Null (J.member "gauges" reparsed) in
      Alcotest.(check (option (float 0.0)))
        "gauge value" (Some 2.5)
        (Option.bind (J.member "test.json.gauge" gauges) J.to_float))

let test_json_parser_rejects_garbage () =
  Alcotest.check_raises "trailing garbage" (J.Parse_error "trailing garbage at offset 2")
    (fun () -> ignore (J.of_string "{}x"));
  (match J.of_string {|{"a": [1, 2.5, "sé", true, null]}|} with
  | J.Obj [ ("a", J.Arr [ J.Num 1.0; J.Num 2.5; J.Str "s\xc3\xa9"; J.Bool true; J.Null ]) ]
    -> ()
  | _ -> Alcotest.fail "unexpected parse");
  Alcotest.(check string)
    "non-finite numbers serialise as null" "[null,null]"
    (J.to_string (J.Arr [ J.Num nan; J.Num infinity ]))

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                                *)
(* ------------------------------------------------------------------ *)

let test_pipeline_metrics_agree () =
  with_collection (fun () ->
      let analysis =
        Choreographer.Workbench.analyse_pepa_string ~name:"obs"
          "P = (a, 1.0).(b, 2.0).P; Q = (a, infty).Q; system P <a> Q;"
      in
      let results = analysis.Choreographer.Workbench.results in
      Alcotest.(check int)
        "states_explored equals the reported state count"
        results.Choreographer.Results.n_states
        (M.value Pepa.Statespace.states_explored);
      Alcotest.(check int)
        "transitions_emitted equals the reported transition count"
        results.Choreographer.Results.n_transitions
        (M.value Pepa.Statespace.transitions_emitted);
      Alcotest.(check bool)
        "solver iterations recorded" true
        (M.value (M.counter "solver_iterations") > 0);
      let trajectory = M.series_points (M.series "solver.residual_trajectory") in
      Alcotest.(check bool) "residual trajectory recorded" true (List.length trajectory >= 2);
      let _, final_residual = List.nth trajectory (List.length trajectory - 1) in
      Alcotest.(check bool) "trajectory ends converged" true (final_residual <= 1e-9);
      let names = List.map (fun (s : Sp.completed) -> s.Sp.name) (Sp.completed_spans ()) in
      List.iter
        (fun expected ->
          Alcotest.(check bool) (expected ^ " span present") true (List.mem expected names))
        [ "workbench.analyse_pepa"; "statespace.build"; "ctmc.assemble"; "steady.solve" ])

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_report_capture () =
  with_collection (fun () ->
      Sp.with_ "alpha" (fun _ -> Sp.with_ "beta" (fun _ -> ()));
      M.add (M.counter "test.report.counter") 5;
      let report = Obs.Report.capture () in
      let text = Obs.Report.spans_text report in
      Alcotest.(check bool) "tree mentions the root" true (contains text "alpha");
      Alcotest.(check bool) "tree indents the child" true (contains text "beta");
      Alcotest.(check bool) "metric rows carry the counter" true
        (List.exists
           (fun (n, v) -> n = "test.report.counter" && v = "5")
           (Obs.Report.metric_rows report));
      (* The JSON form parses back. *)
      ignore (J.of_string (J.to_string (Obs.Report.to_json report))))

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "span closed on exception" `Quick test_span_exception_close;
    Alcotest.test_case "timed agrees with the span" `Quick test_timed_agrees;
    Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
    Alcotest.test_case "histogram statistics" `Quick test_histogram_stats;
    Alcotest.test_case "series keeps push order" `Quick test_series_order;
    Alcotest.test_case "disabled collection is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "chrome trace JSON round-trips" `Quick test_chrome_trace_roundtrip;
    Alcotest.test_case "metrics JSON round-trips" `Quick test_metrics_json_roundtrip;
    Alcotest.test_case "json parser edges" `Quick test_json_parser_rejects_garbage;
    Alcotest.test_case "pipeline metrics match results" `Quick test_pipeline_metrics_agree;
    Alcotest.test_case "run report capture" `Quick test_report_capture;
  ]
