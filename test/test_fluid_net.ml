(* The PEPA-net lowering onto the population IR: form shape, rejection
   of nets with no continuous interpretation, measures, and three-way
   agreement (lumped exact vs fluid vs simulation) on the roaming
   family. *)

module P = Choreographer.Pipeline
module R = Choreographer.Results
module W = Choreographer.Workbench

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let rel_err ~exact v = Float.abs (v -. exact) /. Float.max 1e-12 (Float.abs exact)

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Tests run in _build/default/test under [dune runtest] but in the
   workspace root under [dune exec]; the assets are declared as deps. *)
let asset =
  let candidates =
    [ "../examples/assets/roaming.pepanet"; "examples/assets/roaming.pepanet" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "examples/assets/roaming.pepanet"

let integrate nf =
  Fluid.Rk45.integrate
    ~f:(fun ~t:_ ~x ~dx -> Fluid.Net_form.derivative nf x dx)
    ~x0:(Fluid.Net_form.initial nf) ()

(* ------------------------------------------------------------------ *)
(* Form shape                                                          *)
(* ------------------------------------------------------------------ *)

let test_net_form_shape () =
  let nf = Fluid.Net_form.of_file asset in
  (* Three places, each pooling one Agent family block (2 derivatives)
     and one static Monitor block (2 derivatives): 12 coordinates. *)
  Alcotest.(check int) "dimension" 12 (Fluid.Net_form.dim nf);
  Alcotest.(check int) "blocks" 6 (Array.length (Fluid.Net_form.blocks nf));
  Alcotest.(check int) "transfers" 3
    (Fluid.Population.n_transfers (Fluid.Net_form.form nf));
  List.iter
    (fun label -> ignore (Fluid.Net_form.block_index nf ~label))
    [ "Agent@HostA"; "Agent@HostB"; "Agent@HostC"; "Monitor@HostA" ];
  (match Fluid.Net_form.block_index nf ~label:"Agent@Nowhere" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown block label accepted");
  let names = Fluid.Net_form.action_names nf in
  List.iter
    (fun a ->
      Alcotest.(check bool) (a ^ " is an action") true (List.mem a names))
    [ "probe"; "log"; "hop" ];
  (* Initial mass: two tokens at HostA plus one monitor per place. *)
  let x0 = Fluid.Net_form.initial nf in
  Alcotest.(check bool) "initial mass" true
    (close (Array.fold_left ( +. ) 0.0 x0) 5.0);
  Alcotest.(check bool) "tokens start at HostA" true
    (close (Fluid.Net_form.expected_tokens_at nf x0 ~place:"HostA") 2.0);
  Alcotest.(check bool) "HostB starts empty" true
    (close (Fluid.Net_form.expected_tokens_at nf x0 ~place:"HostB") 0.0)

let test_net_conservation () =
  (* Local moves conserve each block's mass; transfers only move token
     mass between places: the total derivative is identically zero. *)
  let nf = Fluid.Net_form.of_file asset in
  let dim = Fluid.Net_form.dim nf in
  let x = Array.init dim (fun i -> float_of_int ((i mod 3) + 1) *. 0.37) in
  let dx = Array.make dim 0.0 in
  Fluid.Net_form.derivative nf x dx;
  Alcotest.(check bool) "total mass conserved" true
    (close ~eps:1e-12 (Array.fold_left ( +. ) 0.0 dx) 0.0);
  (* Static blocks never exchange mass with other blocks: each
     monitor's block sums to zero on its own. *)
  Array.iter
    (fun blk ->
      if contains "Monitor" blk.Fluid.Population.b_label then begin
        let s = ref 0.0 in
        for i = 0 to blk.Fluid.Population.b_n_local - 1 do
          s := !s +. dx.(blk.Fluid.Population.b_offset + i)
        done;
        Alcotest.(check bool)
          (blk.Fluid.Population.b_label ^ " conserved")
          true
          (close ~eps:1e-12 !s 0.0)
      end)
    (Fluid.Net_form.blocks nf)

(* ------------------------------------------------------------------ *)
(* Rejection                                                           *)
(* ------------------------------------------------------------------ *)

let expect_unsupported name thunk =
  match thunk () with
  | _ -> Alcotest.fail (name ^ ": expected Unsupported")
  | exception Fluid.Net_form.Unsupported _ -> ()

let test_net_rejects () =
  (* A passive firing rate has no continuous flow. *)
  expect_unsupported "passive transition rate" (fun () ->
      Fluid.Net_form.of_string
        {|
          Agent = (go, 1.0).Agent;
          token Agent;
          place A = Agent[Agent];
          place B = Agent[_];
          trans t = (go, infty) from A to B;
        |});
  (* A passive local activity is rejected just as in plain PEPA. *)
  expect_unsupported "passive local rate" (fun () ->
      Fluid.Net_form.of_string
        {|
          Agent = (work, infty).(go, 1.0).Agent;
          token Agent;
          place A = Agent[Agent];
          place B = Agent[_];
          trans t = (go, 1.0) from A to B;
        |});
  (* Mixed priorities mean preemption, which has no fluid limit. *)
  expect_unsupported "mixed priorities" (fun () ->
      Fluid.Net_form.of_string
        {|
          Agent = (go, 1.0).(back, 1.0).Agent;
          token Agent;
          place A = Agent[Agent];
          place B = Agent[_];
          trans t = (go, 1.0) from A to B;
          trans u = (back, 1.0) from B to A priority 2;
        |})

(* ------------------------------------------------------------------ *)
(* The scaled roaming family and its lumped exact chain               *)
(* ------------------------------------------------------------------ *)

let test_family_matches_asset () =
  (* At two tokens the generated family instance coincides with the
     checked-in asset: same exact hop throughput. *)
  let space_asset = Pepanet.Net_statespace.of_file asset in
  let pi_asset = Pepanet.Net_statespace.steady_state space_asset in
  let hop_asset = Pepanet.Net_measures.throughput space_asset pi_asset "hop" in
  let space_fam =
    Pepanet.Net_statespace.of_string (Scenarios.Roaming.pepanet_family ~tokens:2)
  in
  let pi_fam = Pepanet.Net_statespace.steady_state space_fam in
  let hop_fam = Pepanet.Net_measures.throughput space_fam pi_fam "hop" in
  Alcotest.(check bool)
    (Printf.sprintf "asset %.8f = family %.8f" hop_asset hop_fam)
    true
    (close ~eps:1e-9 hop_asset hop_fam)

let test_lumped_family_agrees_with_marking_graph () =
  (* The hand-lumped population chain must reproduce the full marking
     graph exactly where the graph is still tractable. *)
  List.iter
    (fun n ->
      let space =
        Pepanet.Net_statespace.of_string (Scenarios.Roaming.pepanet_family ~tokens:n)
      in
      let pi = Pepanet.Net_statespace.steady_state space in
      let hop_mg = Pepanet.Net_measures.throughput space pi "hop" in
      let probe_mg = Pepanet.Net_measures.throughput space pi "probe" in
      let lf = Scenarios.Roaming.lumped_family ~tokens:n in
      let pil = Markov.Steady.solve lf.Scenarios.Roaming.lumped_ctmc in
      let hop_l = lf.Scenarios.Roaming.lumped_hop_throughput pil in
      let probe_l = lf.Scenarios.Roaming.lumped_probe_throughput pil in
      Alcotest.(check bool)
        (Printf.sprintf "hop at n=%d: %.10f vs %.10f" n hop_mg hop_l)
        true
        (close ~eps:1e-8 hop_mg hop_l);
      Alcotest.(check bool)
        (Printf.sprintf "probe at n=%d: %.10f vs %.10f" n probe_mg probe_l)
        true
        (close ~eps:1e-8 probe_mg probe_l))
    [ 2; 3 ]

let test_three_way_family () =
  (* Lumped exact solve, fluid net approximation, and Monte-Carlo
     simulation of the lumped chain agree on the hop throughput at 16
     tokens per family: the fluid error is under 5% and the simulation
     confidence interval brackets both values. *)
  let n = 16 in
  let lf = Scenarios.Roaming.lumped_family ~tokens:n in
  let pil = Markov.Steady.solve lf.Scenarios.Roaming.lumped_ctmc in
  let exact = lf.Scenarios.Roaming.lumped_hop_throughput pil in
  let nf = Fluid.Net_form.of_string (Scenarios.Roaming.pepanet_family ~tokens:n) in
  let x, stats = integrate nf in
  Alcotest.(check bool) "reached steady" true stats.Fluid.Rk45.reached_steady;
  let fluid = Fluid.Net_form.throughput nf x "hop" in
  Alcotest.(check bool)
    (Printf.sprintf "fluid %.4f within 5%% of exact %.4f" fluid exact)
    true
    (rel_err ~exact fluid < 0.05);
  (* The net-level firing flux and the action throughput agree: hop
     only occurs as a firing. *)
  Alcotest.(check bool) "hop throughput is firing flux" true
    (close ~eps:1e-9
       (Fluid.Net_form.firing_throughput nf x "hop_ab"
       +. Fluid.Net_form.firing_throughput nf x "hop_bc"
       +. Fluid.Net_form.firing_throughput nf x "hop_ca")
       fluid);
  let rng = Markov.Simulate.Rng.create ~seed:20260806L in
  let estimate =
    Markov.Simulate.throughput_estimate lf.Scenarios.Roaming.lumped_ctmc ~rng
      ~initial:lf.Scenarios.Roaming.lumped_initial ~batches:24 ~batch_time:8.0
      ~warmup:4.0
      ~counts:(fun src dst -> lf.Scenarios.Roaming.lumped_hop_jump ~src ~dst)
      ()
  in
  let lo = estimate.Markov.Simulate.mean -. estimate.Markov.Simulate.half_width in
  let hi = estimate.Markov.Simulate.mean +. estimate.Markov.Simulate.half_width in
  Alcotest.(check bool)
    (Printf.sprintf "CI [%.4f, %.4f] brackets exact %.4f" lo hi exact)
    true
    (lo <= exact && exact <= hi);
  Alcotest.(check bool)
    (Printf.sprintf "CI [%.4f, %.4f] brackets fluid %.4f" lo hi fluid)
    true
    (lo <= fluid && fluid <= hi)

(* ------------------------------------------------------------------ *)
(* Measures and re-parameterisation                                    *)
(* ------------------------------------------------------------------ *)

let test_net_measures () =
  let nf = Fluid.Net_form.of_file asset in
  let x, _ = integrate nf in
  (* The ring is symmetric at steady state: tokens spread evenly. *)
  List.iter
    (fun place ->
      Alcotest.(check bool)
        (Printf.sprintf "%s holds a third of the tokens" place)
        true
        (close ~eps:1e-3 (Fluid.Net_form.expected_tokens_at nf x ~place) (2.0 /. 3.0)))
    [ "HostA"; "HostB"; "HostC" ];
  let locations = Fluid.Net_form.token_location_proportions nf x ~family:"Agent" in
  Alcotest.(check int) "three locations" 3 (List.length locations);
  Alcotest.(check bool) "location proportions sum to 1" true
    (close ~eps:1e-9 (List.fold_left (fun acc (_, p) -> acc +. p) 0.0 locations) 1.0);
  (match Fluid.Net_form.token_location_proportions nf x ~family:"Ghost" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown family accepted");
  (* Per-block conditional distributions each sum to one. *)
  let by_block = Hashtbl.create 8 in
  List.iter
    (fun (label, p) ->
      let block = List.hd (String.split_on_char '.' label) in
      Hashtbl.replace by_block block
        (p +. Option.value ~default:0.0 (Hashtbl.find_opt by_block block)))
    (Fluid.Net_form.proportions nf x);
  Hashtbl.iter
    (fun block total ->
      Alcotest.(check bool) (block ^ " proportions sum to 1") true
        (close ~eps:1e-9 total 1.0))
    by_block

let test_net_with_count () =
  let nf = Fluid.Net_form.of_string (Scenarios.Roaming.pepanet_family ~tokens:4) in
  let block = Fluid.Net_form.block_index nf ~label:"Agent@HostA" in
  let scaled = Fluid.Net_form.with_count nf ~block ~count:12.0 in
  Alcotest.(check int) "dimension unchanged" (Fluid.Net_form.dim nf)
    (Fluid.Net_form.dim scaled);
  let mass x0 = Array.fold_left ( +. ) 0.0 x0 in
  Alcotest.(check bool) "mass re-parameterised" true
    (close
       (mass (Fluid.Net_form.initial scaled))
       (mass (Fluid.Net_form.initial nf) +. 8.0))

(* ------------------------------------------------------------------ *)
(* Workbench and pipeline wiring                                       *)
(* ------------------------------------------------------------------ *)

let test_workbench_net_fluid () =
  let analysis =
    W.analyse_net_fluid_string ~name:"roaming" Scenarios.Roaming.pepanet_source
  in
  let results = analysis.W.net_fluid_results in
  Alcotest.(check (option string)) "labelled fluid" (Some "fluid")
    results.R.approximation;
  Alcotest.(check bool) "net kind" true (results.R.kind = R.Pepa_net);
  Alcotest.(check bool) "no fallback warning" true
    (not (List.exists (contains "solved exactly") results.R.warnings));
  Alcotest.(check bool) "hop throughput reported" true
    (Option.is_some (R.throughput results "hop"));
  (* Unsupported nets surface as Analysis_error, the signal the
     pipeline's fallback listens for. *)
  match
    W.analyse_net_fluid_string ~name:"bad"
      {|
        Agent = (go, 1.0).Agent;
        token Agent;
        place A = Agent[Agent];
        place B = Agent[_];
        trans t = (go, infty) from A to B;
      |}
  with
  | _ -> Alcotest.fail "expected Analysis_error"
  | exception W.Analysis_error msg ->
      Alcotest.(check bool) "message names the reason" true
        (contains "fluid" msg)

let test_pipeline_net_fluid () =
  (* An activity diagram extracts to a PEPA net; with --fluid the
     pipeline now solves the net fluidly instead of falling back. *)
  let options =
    {
      P.default_options with
      P.rates = Scenarios.Pda.rates;
      P.fluid = Some Fluid.Rk45.default_tolerances;
    }
  in
  let outcome = P.process_document ~options (Scenarios.Pda.poseidon_project ()) in
  let results = List.hd outcome.P.results in
  Alcotest.(check (option string)) "net solved fluidly" (Some "fluid")
    results.R.approximation;
  Alcotest.(check bool) "no fallback warning" true
    (not (List.exists (contains "solved exactly") results.R.warnings));
  Alcotest.(check bool) "reflected XMI labels the method" true
    (contains "fluid approximation"
       (Xml_kit.Minixml.to_string outcome.P.reflected))

let suite =
  [
    Alcotest.test_case "net form shape" `Quick test_net_form_shape;
    Alcotest.test_case "token-mass conservation" `Quick test_net_conservation;
    Alcotest.test_case "unsupported nets rejected" `Quick test_net_rejects;
    Alcotest.test_case "family coincides with asset at n=2" `Quick
      test_family_matches_asset;
    Alcotest.test_case "lumped chain matches marking graph" `Quick
      test_lumped_family_agrees_with_marking_graph;
    Alcotest.test_case "three-way roaming family agreement" `Slow
      test_three_way_family;
    Alcotest.test_case "net measures" `Quick test_net_measures;
    Alcotest.test_case "with_count re-parameterisation" `Quick test_net_with_count;
    Alcotest.test_case "workbench net fluid analysis" `Quick
      test_workbench_net_fluid;
    Alcotest.test_case "pipeline solves nets fluidly" `Quick
      test_pipeline_net_fluid;
  ]
