(* The Krylov engine: BiCGStab agreement with the stationary methods
   on the example scenarios (plain, aggregated and on the domain pool),
   random irreducible chains against the direct solver, the
   non-convergence and fallback contracts, the CLI method converter,
   and the packed state-key codec behind the compressed builders. *)

module St = Markov.Steady
module K = Markov.Krylov
module Key = Pepa.Statekey

let distance = Markov.Measures.distribution_distance

let replicated_model n =
  Printf.sprintf
    {|
      Proc = (task, 1.0).(swap, 2.0).Proc;
      Srv = (task, infty).(log, 5.0).Srv;
      system (Proc[%d]) <task> Srv;
    |}
    n

let scenario_chains () =
  [
    ( "instant message",
      Pepanet.Net_statespace.ctmc
        (Pepanet.Net_statespace.of_string Scenarios.Instant_message.pepanet_source) );
    ( "pda handover",
      Pepanet.Net_statespace.ctmc
        (Pepanet.Net_statespace.build
           (Pepanet.Net_compile.compile
              (Scenarios.Pda.extraction ()).Extract.Ad_to_pepanet.net)) );
    ( "replicated processes (E6)",
      Pepa.Statespace.ctmc (Pepa.Statespace.of_string (replicated_model 6)) );
    ( "tandem queues",
      Pepa.Statespace.ctmc
        (Pepa.Statespace.of_string (Scenarios.Tandem.source ~stations:3 ~capacity:4)) );
  ]

let test_agrees_on_scenarios () =
  List.iter
    (fun (name, chain) ->
      let pi, stats = St.solve_stats ~method_:St.Bicgstab chain in
      Alcotest.(check string)
        (name ^ ": solved by the Krylov engine")
        "bicgstab"
        (St.method_name stats.St.method_used);
      List.iter
        (fun reference_method ->
          let reference = St.solve ~method_:reference_method chain in
          let d = distance reference pi in
          Alcotest.(check bool)
            (Printf.sprintf "%s: bicgstab within 1e-10 of %s (distance %.2e)" name
               (St.method_name reference_method) d)
            true (d < 1e-10))
        [ St.Gauss_seidel; St.Power ])
    (scenario_chains ())

let test_agrees_under_aggregation () =
  (* Symmetry reduction is exact, so the Krylov solve of the reduced
     chain must reproduce the plain chain's throughputs. *)
  let plain = Pepa.Statespace.of_string (replicated_model 6) in
  let reduced = Pepa.Statespace.of_string ~symmetry:true (replicated_model 6) in
  let pi_plain = St.solve ~method_:St.Bicgstab (Pepa.Statespace.ctmc plain) in
  let pi_reduced = St.solve ~method_:St.Bicgstab (Pepa.Statespace.ctmc reduced) in
  List.iter2
    (fun (action, t_plain) (action', t_reduced) ->
      Alcotest.(check string) "same action order" action action';
      Alcotest.(check bool)
        (Printf.sprintf "throughput of %s agrees (%.2e vs %.2e)" action t_plain t_reduced)
        true
        (Float.abs (t_plain -. t_reduced) < 1e-10))
    (Pepa.Statespace.throughputs plain pi_plain)
    (Pepa.Statespace.throughputs reduced pi_reduced)

let test_jobs_determinism () =
  (* 12 replicas give 8192 states — above the pool threshold, so the
     jobs=4 solve really runs on the pool; the fixed reduction grid
     makes it bitwise identical to the sequential result. *)
  let chain = Pepa.Statespace.ctmc (Pepa.Statespace.of_string (replicated_model 12)) in
  let pi_seq, stats_seq = St.solve_stats ~method_:St.Bicgstab ~jobs:1 chain in
  let pi_par, stats_par = St.solve_stats ~method_:St.Bicgstab ~jobs:4 chain in
  Alcotest.(check string) "sequential run is bicgstab" "bicgstab"
    (St.method_name stats_seq.St.method_used);
  Alcotest.(check string) "parallel run is bicgstab" "bicgstab"
    (St.method_name stats_par.St.method_used);
  Alcotest.(check int) "same sweep count" stats_seq.St.iterations stats_par.St.iterations;
  Alcotest.(check bool) "bitwise identical steady vectors" true (pi_seq = pi_par)

let test_unreachable_tolerance () =
  let chain = Pepa.Statespace.ctmc (Pepa.Statespace.of_string (replicated_model 4)) in
  (* The engine reports the cap honestly and still returns a usable
     clamped-and-normalised candidate. *)
  let r = K.bicgstab ~tolerance:(-1.0) ~max_iterations:5 chain in
  Alcotest.(check bool) "outcome is no-convergence" true (r.K.outcome = K.No_convergence);
  Alcotest.(check int) "exactly the cap" 5 r.K.iterations;
  let mass = Array.fold_left ( +. ) 0.0 r.K.pi in
  Alcotest.(check (float 1e-12)) "candidate has unit mass" 1.0 mass;
  Array.iter (fun p -> Alcotest.(check bool) "candidate non-negative" true (p >= 0.0)) r.K.pi;
  (* Steady surfaces the same situation as Did_not_converge, tagged
     with the method that gave up. *)
  let options = { St.default_options with St.tolerance = -1.0; max_iterations = 5 } in
  match St.solve ~method_:St.Bicgstab ~options chain with
  | exception St.Did_not_converge { method_used; iterations; _ } ->
      Alcotest.(check string) "reported as bicgstab" "bicgstab" (St.method_name method_used);
      Alcotest.(check int) "cap reported" 5 iterations
  | _ -> Alcotest.fail "negative tolerance converged"

let test_breakdown_fallback () =
  (* A reducible chain (two disconnected cycles) makes the replaced-row
     system rank-deficient: the Krylov scalars collapse, the restart
     budget runs out, and [Steady] must hand the candidate to the power
     method rather than crash or return garbage. *)
  let chain =
    Markov.Ctmc.of_transitions ~n:4
      [ (0, 1, 1.0); (1, 0, 2.0); (2, 3, 1.0); (3, 2, 2.0) ]
  in
  let r = K.bicgstab ~tolerance:1e-12 ~max_iterations:200 chain in
  (match r.K.outcome with
  | K.Breakdown _ -> ()
  | K.Converged ->
      (* A singular system can still be hit exactly; then the defect
         must genuinely be small. *)
      Alcotest.(check bool) "claimed convergence is real" true (r.K.residual <= 1e-12)
  | K.No_convergence -> Alcotest.fail "expected breakdown or convergence");
  let mass = Array.fold_left ( +. ) 0.0 r.K.pi in
  Alcotest.(check (float 1e-12)) "candidate has unit mass" 1.0 mass;
  (* Whatever the Krylov outcome, the Steady entry point must produce a
     steady vector of the chain. *)
  let pi, stats = St.solve_stats ~method_:St.Bicgstab chain in
  Alcotest.(check bool)
    (Printf.sprintf "fallback result is steady (residual %.2e)" (St.residual chain pi))
    true
    (St.residual chain pi <= 1e-9);
  Alcotest.(check bool) "answer attributed to a real method" true
    (List.mem (St.method_name stats.St.method_used) [ "bicgstab"; "power" ])

(* ------------------------------------------------------------------ *)
(* Random irreducible chains                                           *)
(* ------------------------------------------------------------------ *)

let chain_gen =
  let open QCheck2.Gen in
  2 -- 8 >>= fun n ->
  (* A full cycle guarantees irreducibility; the extra transitions vary
     the structure and the conditioning. *)
  let cycle = List.init n (fun i -> (i, (i + 1) mod n)) in
  list_size (0 -- 12) (pair (0 -- (n - 1)) (0 -- (n - 1))) >>= fun extra ->
  let edges = cycle @ List.filter (fun (i, j) -> i <> j) extra in
  list_size (return (List.length edges)) (float_range 0.05 10.0) >|= fun rates ->
  (n, List.map2 (fun (i, j) r -> (i, j, r)) edges rates)

let prop_agrees_with_direct_on_random_chains =
  QCheck2.Test.make ~name:"bicgstab agrees with the direct solver on random irreducible chains"
    ~count:200 chain_gen (fun (n, transitions) ->
      let chain = Markov.Ctmc.of_transitions ~n transitions in
      let reference = St.solve ~method_:St.Direct chain in
      let pi = St.solve ~method_:St.Bicgstab chain in
      distance reference pi < 1e-9)

(* ------------------------------------------------------------------ *)
(* CLI method selection                                                *)
(* ------------------------------------------------------------------ *)

let test_method_conv () =
  let parse = Cmdliner.Arg.conv_parser Cli_support.method_conv in
  (match parse "bicgstab" with
  | Ok (Some St.Bicgstab) -> ()
  | Ok _ -> Alcotest.fail "bicgstab parsed to another method"
  | Error (`Msg m) -> Alcotest.failf "bicgstab rejected: %s" m);
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
    scan 0
  in
  (match parse "banana" with
  | Error (`Msg m) ->
      Alcotest.(check bool) "error message lists bicgstab" true (contains m "bicgstab")
  | Ok _ -> Alcotest.fail "unknown method accepted");
  let print = Cmdliner.Arg.conv_printer Cli_support.method_conv in
  Alcotest.(check string)
    "round-trips through the printer" "bicgstab"
    (Format.asprintf "%a" print (Some St.Bicgstab))

(* ------------------------------------------------------------------ *)
(* Packed state keys                                                   *)
(* ------------------------------------------------------------------ *)

let vector_gen =
  let open QCheck2.Gen in
  list_size (1 -- 10) (1 -- 40) >>= fun cards ->
  let cards = Array.of_list cards in
  array_size (return (Array.length cards)) (0 -- 1_000_000) >|= fun raw ->
  (cards, Array.mapi (fun i v -> v mod cards.(i)) raw)

let prop_statekey_roundtrip =
  QCheck2.Test.make ~name:"packed state keys round-trip through the arena" ~count:500
    vector_gen (fun (cards, v) ->
      let codec = Key.of_cardinalities cards in
      let key = Key.pack codec v in
      (* Bijection on valid vectors. *)
      Key.unpack codec key = v
      && Key.equal key (Key.pack codec v)
      && Key.hash key = Key.hash (Key.pack codec v)
      &&
      (* Arena storage: write at a non-zero slot and read it back. *)
      let arena = Bytes.make (3 * max 1 (Key.size codec)) '\xff' in
      Key.blit_key codec key arena 1;
      Key.matches codec arena 1 key && Key.unpack_at codec arena 1 = v)

let prop_statekey_injective =
  QCheck2.Test.make ~name:"distinct vectors pack to distinct keys" ~count:500
    QCheck2.Gen.(
      vector_gen >>= fun (cards, v1) ->
      array_size (return (Array.length cards)) (0 -- 1_000_000) >|= fun raw ->
      (cards, v1, Array.mapi (fun i x -> x mod cards.(i)) raw))
    (fun (cards, v1, v2) ->
      let codec = Key.of_cardinalities cards in
      Key.equal (Key.pack codec v1) (Key.pack codec v2) = (v1 = v2))

let test_statekey_validation () =
  Alcotest.check_raises "non-positive cardinality"
    (Invalid_argument "Statekey.of_cardinalities: non-positive cardinality") (fun () ->
      ignore (Key.of_cardinalities [| 2; 0 |]));
  let codec = Key.of_cardinalities [| 3; 5 |] in
  (match Key.pack codec [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted");
  match Key.pack codec [| 1; 5 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range field accepted"

let suite =
  [
    Alcotest.test_case "bicgstab agrees on example scenarios" `Quick test_agrees_on_scenarios;
    Alcotest.test_case "bicgstab agrees under aggregation" `Quick test_agrees_under_aggregation;
    Alcotest.test_case "bitwise determinism across jobs" `Quick test_jobs_determinism;
    Alcotest.test_case "unreachable tolerance reported honestly" `Quick
      test_unreachable_tolerance;
    Alcotest.test_case "breakdown falls back to a usable solve" `Quick test_breakdown_fallback;
    QCheck_alcotest.to_alcotest prop_agrees_with_direct_on_random_chains;
    Alcotest.test_case "CLI method converter accepts bicgstab" `Quick test_method_conv;
    QCheck_alcotest.to_alcotest prop_statekey_roundtrip;
    QCheck_alcotest.to_alcotest prop_statekey_injective;
    Alcotest.test_case "packed-key validation" `Quick test_statekey_validation;
  ]
