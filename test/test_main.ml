let () =
  (* Some suites drive the real cmdliner commands in-process; keep them
     from appending flight records to the user's run ledger. *)
  Unix.putenv "CHOREOGRAPHER_NO_LEDGER" "1";
  Alcotest.run "choreographer"
    [
      ("obs", Test_obs.suite);
      ("ledger", Test_ledger.suite);
      ("xml", Test_xml.suite);
      ("rates", Test_rate.suite);
      ("pepa-parser", Test_pepa_parser.suite);
      ("pepa-semantics", Test_pepa_semantics.suite);
      ("equivalence", Test_equivalence.suite);
      ("ctmc", Test_ctmc.suite);
      ("perf-path", Test_perf_path.suite);
      ("krylov", Test_krylov.suite);
      ("transient", Test_transient.suite);
      ("passage", Test_passage.suite);
      ("simulate", Test_simulate.suite);
      ("pepanet", Test_pepanet.suite);
      ("uml", Test_uml.suite);
      ("diagram-text", Test_diagram_text.suite);
      ("interactions", Test_interaction.suite);
      ("xmi", Test_xmi.suite);
      ("mdr", Test_mdr.suite);
      ("poseidon", Test_poseidon.suite);
      ("extract", Test_extract.suite);
      ("statecharts", Test_sc_extract.suite);
      ("pipeline", Test_pipeline.suite);
      ("report", Test_report.suite);
      ("query", Test_query.suite);
      ("scenarios", Test_scenarios.suite);
      ("code-mobility", Test_code_mobility.suite);
      ("properties", Test_props.suite);
      ("aggregation", Test_aggregate.suite);
      ("parallel", Test_parallel.suite);
      ("fluid", Test_fluid.suite);
    ("fluid-net", Test_fluid_net.suite);
      ("assets", Test_assets.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("surface", Test_surface.suite);
      (* Last: Server.run flips the process-wide telemetry switch on. *)
      ("service", Test_service.suite);
    ]
