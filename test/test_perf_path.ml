(* The flat-array hot path: array-based CSR assembly checked against a
   list-based reference, transpose round-trips, allocation-free solver
   iteration semantics, and cross-method agreement on the example
   scenarios. *)

module Sp = Markov.Sparse
module St = Markov.Steady

let close = Alcotest.float 1e-9

(* The seed's list-based construction, kept verbatim as the reference
   the counting-sort path must match. *)
let reference_dense ~n_rows ~n_cols triplets =
  let dense = Array.make_matrix n_rows n_cols 0.0 in
  List.iter (fun (i, j, v) -> dense.(i).(j) <- dense.(i).(j) +. v) triplets;
  dense

let check_matrix msg expected m =
  let actual = Sp.to_dense m in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j v ->
          Alcotest.check close (Printf.sprintf "%s (%d,%d)" msg i j) v actual.(i).(j))
        row)
    expected;
  (* Canonical CSR: monotone row_ptr, strictly increasing columns per row. *)
  for i = 0 to m.Sp.n_rows - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "%s row_ptr monotone at %d" msg i)
      true
      (m.Sp.row_ptr.(i) <= m.Sp.row_ptr.(i + 1));
    for k = m.Sp.row_ptr.(i) to m.Sp.row_ptr.(i + 1) - 2 do
      Alcotest.(check bool)
        (Printf.sprintf "%s columns strictly increasing in row %d" msg i)
        true
        (m.Sp.col_index.(k) < m.Sp.col_index.(k + 1))
    done
  done

let arrays_of_triplets triplets =
  let n = List.length triplets in
  let rows = Array.make n 0 and cols = Array.make n 0 and values = Array.make n 0.0 in
  List.iteri
    (fun k (i, j, v) ->
      rows.(k) <- i;
      cols.(k) <- j;
      values.(k) <- v)
    triplets;
  (rows, cols, values)

let test_of_arrays_explicit () =
  (* Unsorted input with duplicate coordinates summed. *)
  let triplets = [ (2, 1, 1.0); (0, 2, 3.0); (2, 1, 0.5); (0, 0, -1.0); (1, 2, 2.0) ] in
  let rows, cols, values = arrays_of_triplets triplets in
  let m = Sp.of_arrays ~n_rows:3 ~n_cols:3 ~rows ~cols ~values in
  check_matrix "unsorted+duplicates" (reference_dense ~n_rows:3 ~n_cols:3 triplets) m;
  Alcotest.(check int) "duplicates merged" 4 (Sp.nnz m);
  (* The input arrays are not modified. *)
  let rows', cols', values' = arrays_of_triplets triplets in
  Alcotest.(check bool) "rows untouched" true (rows = rows');
  Alcotest.(check bool) "cols untouched" true (cols = cols');
  Alcotest.(check bool) "values untouched" true (values = values');
  (* Empty matrix. *)
  let empty = Sp.of_arrays ~n_rows:4 ~n_cols:2 ~rows:[||] ~cols:[||] ~values:[||] in
  Alcotest.(check int) "empty nnz" 0 (Sp.nnz empty);
  Alcotest.check close "empty get" 0.0 (Sp.get empty 3 1);
  (* Out-of-range and mismatched lengths are rejected. *)
  (match Sp.of_arrays ~n_rows:2 ~n_cols:2 ~rows:[| 2 |] ~cols:[| 0 |] ~values:[| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range row accepted");
  match Sp.of_arrays ~n_rows:2 ~n_cols:2 ~rows:[| 0 |] ~cols:[||] ~values:[| 1.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched lengths accepted"

let triplet_gen =
  let open QCheck2.Gen in
  pair (1 -- 8) (1 -- 8) >>= fun (n_rows, n_cols) ->
  list_size (0 -- 40)
    (triple (0 -- (n_rows - 1)) (0 -- (n_cols - 1)) (float_range (-2.0) 2.0))
  >|= fun triplets -> (n_rows, n_cols, triplets)

let prop_of_arrays_matches_reference =
  QCheck2.Test.make ~name:"array CSR assembly matches list-based reference" ~count:200
    triplet_gen (fun (n_rows, n_cols, triplets) ->
      let rows, cols, values = arrays_of_triplets triplets in
      let m = Sp.of_arrays ~n_rows ~n_cols ~rows ~cols ~values in
      let expected = reference_dense ~n_rows ~n_cols triplets in
      let actual = Sp.to_dense m in
      let ok = ref true in
      Array.iteri
        (fun i row ->
          Array.iteri (fun j v -> if abs_float (v -. actual.(i).(j)) > 1e-9 then ok := false) row)
        expected;
      (* of_triplets must agree with of_arrays on identical input. *)
      let via_list = Sp.of_triplets ~n_rows ~n_cols triplets in
      !ok
      && via_list.Sp.row_ptr = m.Sp.row_ptr
      && via_list.Sp.col_index = m.Sp.col_index
      && via_list.Sp.values = m.Sp.values)

let prop_transpose_round_trip =
  QCheck2.Test.make ~name:"transpose (transpose m) = m" ~count:200 triplet_gen
    (fun (n_rows, n_cols, triplets) ->
      let m = Sp.of_triplets ~n_rows ~n_cols triplets in
      let mtt = Sp.transpose (Sp.transpose m) in
      mtt.Sp.n_rows = m.Sp.n_rows
      && mtt.Sp.n_cols = m.Sp.n_cols
      && mtt.Sp.row_ptr = m.Sp.row_ptr
      && mtt.Sp.col_index = m.Sp.col_index
      && mtt.Sp.values = m.Sp.values)

(* ------------------------------------------------------------------ *)
(* Solver iteration semantics                                          *)
(* ------------------------------------------------------------------ *)

let test_exact_iteration_count () =
  (* An unreachable tolerance forces the cap; the reported count must be
     the exact number of sweeps even when the cap is not a multiple of
     the residual stride. *)
  let c = Markov.Ctmc.of_transitions ~n:2 [ (0, 1, 2.0); (1, 0, 3.0) ] in
  List.iter
    (fun (max_iterations, residual_stride) ->
      let options = { St.default_options with St.tolerance = -1.0; max_iterations; residual_stride } in
      match St.solve ~method_:St.Gauss_seidel ~options c with
      | exception St.Did_not_converge { iterations; _ } ->
          Alcotest.(check int)
            (Printf.sprintf "cap %d stride %d" max_iterations residual_stride)
            max_iterations iterations
      | _ -> Alcotest.fail "negative tolerance converged")
    [ (13, 8); (8, 8); (5, 8); (100, 7); (1, 4) ]

let test_first_check_decisive () =
  (* A tolerance admitting the uniform start vector must return without
     a single sweep. *)
  let c = Markov.Ctmc.of_transitions ~n:2 [ (0, 1, 1.0); (1, 0, 1.0) ] in
  let options = { St.default_options with St.tolerance = 10.0; St.max_iterations = 0 } in
  let pi, stats = St.solve_stats ~method_:St.Gauss_seidel ~options c in
  Alcotest.(check int) "no sweeps" 0 stats.St.iterations;
  Alcotest.check close "uniform" 0.5 pi.(0)

let test_sor () =
  let c = Markov.Ctmc.of_transitions ~n:2 [ (0, 1, 2.0); (1, 0, 3.0) ] in
  let reference = St.solve ~method_:St.Direct c in
  List.iter
    (fun omega ->
      let pi = St.solve ~method_:(St.Sor omega) c in
      Alcotest.(check bool)
        (Printf.sprintf "sor %.2f agrees" omega)
        true
        (Markov.Measures.distribution_distance reference pi < 1e-9))
    [ 0.8; 1.0; 1.2; 1.5 ];
  match St.solve ~method_:(St.Sor 2.5) c with
  | exception St.Not_solvable _ -> ()
  | _ -> Alcotest.fail "out-of-range relaxation accepted"

(* ------------------------------------------------------------------ *)
(* Cross-method agreement on the example scenarios                     *)
(* ------------------------------------------------------------------ *)

let replicated_model n =
  Printf.sprintf
    {|
      Proc = (task, 1.0).(swap, 2.0).Proc;
      Srv = (task, infty).(log, 5.0).Srv;
      system (Proc[%d]) <task> Srv;
    |}
    n

let scenario_chains () =
  [
    ( "file protocol",
      Pepanet.Net_statespace.ctmc
        (Pepanet.Net_statespace.build
           (Pepanet.Net_compile.compile
              (Scenarios.File_protocol.extraction ()).Extract.Ad_to_pepanet.net)) );
    ( "instant message",
      Pepanet.Net_statespace.ctmc
        (Pepanet.Net_statespace.of_string Scenarios.Instant_message.pepanet_source) );
    ( "pda handover",
      Pepanet.Net_statespace.ctmc
        (Pepanet.Net_statespace.build
           (Pepanet.Net_compile.compile
              (Scenarios.Pda.extraction ()).Extract.Ad_to_pepanet.net)) );
    ("replicated processes (E6)", Pepa.Statespace.ctmc (Pepa.Statespace.of_string (replicated_model 6)));
  ]

let test_methods_agree_on_scenarios () =
  List.iter
    (fun (name, chain) ->
      let reference = St.solve ~method_:St.Direct chain in
      List.iter
        (fun method_ ->
          let pi = St.solve ~method_ chain in
          let distance = Markov.Measures.distribution_distance reference pi in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s within 1e-9 of direct (distance %.2e)" name
               (St.method_name method_) distance)
            true (distance < 1e-9))
        (* Under-relaxed SOR: over-relaxation can diverge on strongly
           cyclic chains (it does on the instant-message ring). *)
        [ St.Jacobi; St.Gauss_seidel; St.Sor 0.9; St.Power ])
    (scenario_chains ())

(* ------------------------------------------------------------------ *)
(* Compatibility layer                                                 *)
(* ------------------------------------------------------------------ *)

let test_flat_columns_consistent () =
  let space = Pepa.Statespace.of_string (replicated_model 4) in
  Alcotest.(check int)
    "n_transitions is the column length"
    (List.length (Pepa.Statespace.transitions space))
    (Pepa.Statespace.n_transitions space);
  (* iter_transitions visits exactly the records of the list API. *)
  let via_iter = ref [] in
  Pepa.Statespace.iter_transitions space (fun ~src ~action ~rate ~dst ->
      via_iter := { Pepa.Statespace.src; action; rate; dst } :: !via_iter);
  Alcotest.(check bool)
    "iter matches list" true
    (List.rev !via_iter = Pepa.Statespace.transitions space);
  (* transitions_from agrees with filtering the full list. *)
  let all = Pepa.Statespace.transitions space in
  for s = 0 to Pepa.Statespace.n_states space - 1 do
    let expected = List.filter (fun t -> t.Pepa.Statespace.src = s) all in
    Alcotest.(check bool)
      (Printf.sprintf "outgoing of %d" s)
      true
      (expected = Pepa.Statespace.transitions_from space s)
  done;
  (* The net layer's flux table matches the record-based accounting. *)
  let net = Pepanet.Net_statespace.of_string Scenarios.Instant_message.pepanet_source in
  let pi = Pepanet.Net_statespace.steady_state net in
  let flux = Pepanet.Net_statespace.label_flux net pi in
  let labels = Pepanet.Net_statespace.labels net in
  Array.iteri
    (fun id label ->
      let expected =
        List.fold_left
          (fun acc tr ->
            if tr.Pepanet.Net_statespace.label = label then
              acc +. (pi.(tr.Pepanet.Net_statespace.src) *. tr.Pepanet.Net_statespace.rate)
            else acc)
          0.0
          (Pepanet.Net_statespace.transitions net)
      in
      Alcotest.check close (Printf.sprintf "flux of label %d" id) expected flux.(id))
    labels

let suite =
  [
    Alcotest.test_case "array CSR assembly" `Quick test_of_arrays_explicit;
    QCheck_alcotest.to_alcotest prop_of_arrays_matches_reference;
    QCheck_alcotest.to_alcotest prop_transpose_round_trip;
    Alcotest.test_case "exact iteration count under stride" `Quick test_exact_iteration_count;
    Alcotest.test_case "decisive first residual check" `Quick test_first_check_decisive;
    Alcotest.test_case "SOR" `Quick test_sor;
    Alcotest.test_case "methods agree on example scenarios" `Quick test_methods_agree_on_scenarios;
    Alcotest.test_case "flat columns and list API consistent" `Quick test_flat_columns_consistent;
  ]
