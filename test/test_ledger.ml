(* The flight recorder: run ledger round-trips, diffing, regression
   detection, the Prometheus sink, the monotonic clock, the background
   sampler and the domain safety of the metrics registry. *)

module J = Obs.Json
module L = Obs.Ledger
module M = Obs.Metrics

let fresh () =
  Obs.Config.disable ();
  Obs.Config.set_level Obs.Config.Quiet;
  Obs.Span.clear_listeners ();
  Obs.Span.reset ();
  M.reset ()

let with_collection f =
  fresh ();
  Obs.Config.enable ();
  Fun.protect ~finally:fresh f

let record ?(tool = "test") ?(stages = []) ?(counters = []) ?(gauges = []) () =
  {
    L.schema = L.schema_version;
    timestamp = 1e9;
    tool;
    model = "m.pepa";
    model_hash = "abc123";
    options = [ ("jobs", "1") ];
    stages;
    counters;
    gauges;
    gc_minor = 3;
    gc_major = 1;
    gc_peak_heap_words = 120_000;
    wall_s = 0.5;
    exit_status = "ok";
  }

(* ------------------------------------------------------------------ *)
(* Ledger records                                                      *)
(* ------------------------------------------------------------------ *)

let test_record_roundtrip () =
  let r =
    record
      ~stages:[ ("statespace.build", 0.25); ("steady.solve", 0.125) ]
      ~counters:[ ("states_explored", 1024); ("solver_iterations", 96) ]
      ~gauges:[ ("solver_residual", 1e-13) ]
      ()
  in
  let r' = L.of_json (J.of_string (J.to_string (L.to_json r))) in
  Alcotest.(check bool) "round-trips exactly" true (r = r')

let test_of_json_rejects_bad_schema () =
  let j =
    match L.to_json (record ()) with
    | J.Obj fields ->
        J.Obj (List.map (fun (k, v) -> if k = "schema" then (k, J.Num 99.0) else (k, v)) fields)
    | _ -> assert false
  in
  (match L.of_json j with
  | _ -> Alcotest.fail "schema 99 should be rejected"
  | exception L.Format_error _ -> ());
  match L.of_json (J.Obj [ ("schema", J.Num 1.0) ]) with
  | _ -> Alcotest.fail "record without a timestamp should be rejected"
  | exception L.Format_error _ -> ()

let test_append_load () =
  let dir = Filename.temp_file "ledger" "" in
  Sys.remove dir;
  (* [append] must create missing parent directories. *)
  let path = Filename.concat (Filename.concat dir "nested") "runs.jsonl" in
  Alcotest.(check (list pass)) "missing file is an empty ledger" [] (L.load ~path);
  let a = record ~tool:"a" ~stages:[ ("s", 1.0) ] () in
  let b = record ~tool:"b" ~stages:[ ("s", 2.0) ] () in
  L.append ~path a;
  L.append ~path b;
  (match L.load ~path with
  | [ a'; b' ] ->
      Alcotest.(check string) "file order" "a" a'.L.tool;
      Alcotest.(check string) "file order" "b" b'.L.tool
  | records -> Alcotest.failf "expected 2 records, got %d" (List.length records));
  Sys.remove path

let test_capture_from_telemetry () =
  with_collection (fun () ->
      Obs.Span.with_ "stage.one" (fun _ -> ());
      Obs.Span.with_ "stage.one" (fun _ -> ());
      Obs.Span.with_ "stage.two" (fun _ -> ());
      M.add (M.counter "test.capture.counter") 7;
      let r =
        L.capture ~tool:"test" ~model:"m" ~model_hash:"h" ~options:[ ("jobs", "2") ]
          ~exit_status:"ok" ()
      in
      Alcotest.(check int) "schema" L.schema_version r.L.schema;
      (* Repeated spans fold into one stage entry, durations summed. *)
      Alcotest.(check int) "two stages" 2 (List.length r.L.stages);
      let one = List.assoc "stage.one" r.L.stages in
      let d1, d2 =
        match
          List.filter (fun (c : Obs.Span.completed) -> c.Obs.Span.name = "stage.one")
            (Obs.Span.completed_spans ())
        with
        | [ a; b ] -> (a.Obs.Span.duration_s, b.Obs.Span.duration_s)
        | _ -> Alcotest.fail "expected two stage.one spans"
      in
      Alcotest.(check (float 1e-12)) "stage sums span durations" (d1 +. d2) one;
      Alcotest.(check bool) "counter captured" true
        (List.mem ("test.capture.counter", 7) r.L.counters);
      Alcotest.(check bool) "gc peak non-negative" true (r.L.gc_peak_heap_words >= 0))

(* ------------------------------------------------------------------ *)
(* Diffing and regression                                              *)
(* ------------------------------------------------------------------ *)

let test_diff_stages () =
  let a = record ~stages:[ ("build", 1.0); ("solve", 0.5); ("gone", 0.1) ] () in
  let b = record ~stages:[ ("build", 1.5); ("solve", 0.25); ("new", 0.2) ] () in
  let deltas = L.diff_stages a b in
  Alcotest.(check (list string))
    "union of stages, A's order first"
    [ "build"; "solve"; "gone"; "new" ]
    (List.map (fun d -> d.L.stage) deltas);
  let build = List.find (fun d -> d.L.stage = "build") deltas in
  Alcotest.(check (option (float 1e-9))) "delta" (Some 0.5) build.L.delta_s;
  Alcotest.(check (option (float 1e-9))) "pct" (Some 50.0) build.L.pct;
  let solve = List.find (fun d -> d.L.stage = "solve") deltas in
  Alcotest.(check (option (float 1e-9))) "negative pct" (Some (-50.0)) solve.L.pct;
  (* A stage missing on one side diffs without delta or pct. *)
  let gone = List.find (fun d -> d.L.stage = "gone") deltas in
  Alcotest.(check bool) "missing in B" true (gone.L.b_s = None && gone.L.delta_s = None);
  let fresh_stage = List.find (fun d -> d.L.stage = "new") deltas in
  Alcotest.(check bool) "missing in A" true
    (fresh_stage.L.a_s = None && fresh_stage.L.pct = None)

let test_diff_metrics () =
  let a = record ~counters:[ ("states", 100); ("same", 5) ] ~gauges:[ ("res", 1e-9) ] () in
  let b = record ~counters:[ ("states", 120); ("same", 5) ] ~gauges:[ ("res", 1e-12) ] () in
  let deltas = L.diff_metrics a b in
  Alcotest.(check (list string))
    "identical metrics omitted" [ "states"; "res" ]
    (List.map (fun d -> d.L.metric) deltas)

let test_regress () =
  let history =
    [
      record ~stages:[ ("build", 1.0); ("solve", 0.5) ] ();
      record ~stages:[ ("build", 1.2); ("solve", 0.5) ] ();
      record ~stages:[ ("build", 0.8); ("solve", 0.5) ] ();
    ]
  in
  (* build median 1.0, solve median 0.5. *)
  let latest = record ~stages:[ ("build", 1.6); ("solve", 0.55); ("new", 9.0) ] () in
  (match L.regress ~threshold:1.5 ~history latest with
  | [ r ] ->
      Alcotest.(check string) "only build regresses" "build" r.L.r_stage;
      Alcotest.(check (float 1e-9)) "ratio" 1.6 r.L.ratio;
      Alcotest.(check (float 1e-9)) "median" 1.0 r.L.median_s
  | rs -> Alcotest.failf "expected one regression, got %d" (List.length rs));
  Alcotest.(check (list pass)) "within threshold passes" []
    (L.regress ~threshold:2.0 ~history latest);
  Alcotest.check_raises "non-positive threshold"
    (Invalid_argument "Ledger.regress: threshold must be positive") (fun () ->
      ignore (L.regress ~threshold:0.0 ~history latest))

let test_regress_memory () =
  let history =
    [ record ~stages:[ ("build", 1.0) ] (); record ~stages:[ ("build", 1.0) ] () ]
  in
  (* The helper pins every record at 120k words; a 2x latest must trip
     the memory entry under the same threshold as the stages. *)
  let latest = { (record ~stages:[ ("build", 1.0) ] ()) with L.gc_peak_heap_words = 240_000 } in
  (match L.regress ~threshold:1.5 ~history latest with
  | [ r ] ->
      Alcotest.(check string) "synthetic stage name" "peak_heap_words" r.L.r_stage;
      Alcotest.(check bool) "flagged as memory" true r.L.r_memory;
      Alcotest.(check (float 1e-9)) "ratio" 2.0 r.L.ratio;
      Alcotest.(check (float 1e-9)) "median in words" 120_000.0 r.L.median_s
  | rs -> Alcotest.failf "expected one memory regression, got %d" (List.length rs));
  (* Records predating the field (peak 0) drop out of the median rather
     than dragging it to zero, and a zero latest never trips. *)
  let unversioned = { (record ()) with L.gc_peak_heap_words = 0 } in
  Alcotest.(check (list pass)) "history without the field is skipped" []
    (L.regress ~threshold:1.5 ~history:[ unversioned; unversioned ] latest);
  Alcotest.(check (list pass)) "zero latest never trips" []
    (L.regress ~threshold:1.5 ~history { latest with L.gc_peak_heap_words = 0 })

(* ------------------------------------------------------------------ *)
(* Prometheus sink                                                     *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_prometheus_format () =
  with_collection (fun () ->
      M.add (M.counter "states_explored") 42;
      M.set (M.gauge "statespace.shard_states") 17.0;
      M.observe (M.histogram "solver.sweep_s") 0.5;
      M.observe (M.histogram "solver.sweep_s") 1.5;
      let s = M.series "sampler.heap_words" in
      M.push s ~x:0.0 ~y:1000.0;
      M.push s ~x:1.0 ~y:2000.0;
      let text = Obs.Sink.prometheus (M.snapshot ()) in
      List.iter
        (fun line -> Alcotest.(check bool) ("contains " ^ line) true (contains text line))
        [
          "# TYPE choreographer_states_explored_total counter";
          "choreographer_states_explored_total 42";
          (* Dots sanitised to underscores. *)
          "# TYPE choreographer_statespace_shard_states gauge";
          "choreographer_statespace_shard_states 17";
          "# TYPE choreographer_solver_sweep_s summary";
          "choreographer_solver_sweep_s_count 2";
          "choreographer_solver_sweep_s_sum 2";
          (* A series exposes its latest point as a gauge. *)
          "choreographer_sampler_heap_words 2000";
        ];
      (* Every non-comment line is "name value" with a legal name. *)
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             if line <> "" && line.[0] <> '#' then
               match String.split_on_char ' ' line with
               | [ name; value ] ->
                   Alcotest.(check bool) ("value parses: " ^ line) true
                     (float_of_string_opt value <> None);
                   String.iter
                     (fun c ->
                       Alcotest.(check bool)
                         (Printf.sprintf "legal char %c in %s" c name)
                         true
                         (match c with
                         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
                         | _ -> false))
                     name
               | _ -> Alcotest.failf "malformed exposition line: %s" line))

let test_metrics_format_of_string () =
  Alcotest.(check bool) "json" true
    (Obs.Sink.metrics_format_of_string "json" = Some Obs.Sink.Json_format);
  Alcotest.(check bool) "prom" true
    (Obs.Sink.metrics_format_of_string "prom" = Some Obs.Sink.Prometheus_format);
  Alcotest.(check bool) "prometheus" true
    (Obs.Sink.metrics_format_of_string "prometheus" = Some Obs.Sink.Prometheus_format);
  Alcotest.(check bool) "garbage" true (Obs.Sink.metrics_format_of_string "xml" = None)

(* ------------------------------------------------------------------ *)
(* Monotonic clock                                                     *)
(* ------------------------------------------------------------------ *)

let test_clock_monotonic () =
  let a = Obs.Clock.now () in
  let b = Obs.Clock.now () in
  Alcotest.(check bool) "never goes backwards" true (b >= a);
  let x, d = Obs.Clock.time (fun () -> Sys.opaque_identity (List.init 1000 Fun.id)) in
  Alcotest.(check int) "payload returned" 1000 (List.length x);
  Alcotest.(check bool) "duration non-negative" true (d >= 0.0);
  Alcotest.(check bool) "since_origin advances" true
    (Obs.Clock.since_origin () >= 0.0);
  (* Wall time is a real epoch timestamp, not the monotonic counter. *)
  Alcotest.(check bool) "wall clock is epoch-scaled" true (Obs.Clock.wall_now () > 1e9)

(* ------------------------------------------------------------------ *)
(* Domain safety                                                       *)
(* ------------------------------------------------------------------ *)

let test_counters_across_domains () =
  with_collection (fun () ->
      let domains = 4 and per_domain = 25_000 in
      let c = M.counter "test.hammer.counter" in
      let g = M.gauge "test.hammer.peak" in
      let spawned =
        List.init domains (fun d ->
            Domain.spawn (fun () ->
                (* Hammer get-or-create as well as the mutations: every
                   handle lookup races the other domains' lookups. *)
                for i = 1 to per_domain do
                  M.incr (M.counter "test.hammer.counter");
                  M.add c 1;
                  M.set_max g (float_of_int ((d * per_domain) + i))
                done))
      in
      List.iter Domain.join spawned;
      Alcotest.(check int)
        "no increment lost across 4 domains"
        (2 * domains * per_domain)
        (M.value c);
      Alcotest.(check (float 0.0))
        "set_max kept the global peak"
        (float_of_int (domains * per_domain))
        (M.gauge_value g))

let test_series_across_domains () =
  with_collection (fun () ->
      let per_domain = 5_000 in
      let spawned =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                let s = M.series "test.hammer.series" in
                for i = 1 to per_domain do
                  M.push s ~x:(float_of_int d) ~y:(float_of_int i)
                done))
      in
      List.iter Domain.join spawned;
      Alcotest.(check int)
        "no point lost" (4 * per_domain)
        (List.length (M.series_points (M.series "test.hammer.series"))))

(* ------------------------------------------------------------------ *)
(* Background sampler                                                  *)
(* ------------------------------------------------------------------ *)

let test_sampler_records_series () =
  with_collection (fun () ->
      M.set (M.gauge "solver_residual") 0.25;
      let s = Obs.Sampler.start ~interval_s:0.002 () in
      (* Allocate while the sampler runs so the heap series moves. *)
      let junk = ref [] in
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < 0.05 do
        junk := Array.make 1000 0.0 :: !junk;
        if List.length !junk > 200 then junk := []
      done;
      Obs.Sampler.stop s;
      Obs.Sampler.stop s (* idempotent *);
      let heap = M.series_points (M.series "sampler.heap_words") in
      Alcotest.(check bool)
        (Printf.sprintf "heap series has >= 2 samples (got %d)" (List.length heap))
        true
        (List.length heap >= 2);
      List.iter
        (fun (x, y) ->
          Alcotest.(check bool) "x is monotonic-age seconds" true (x >= 0.0);
          Alcotest.(check bool) "heap sample positive" true (y > 0.0))
        heap;
      let residual = M.series_points (M.series "sampler.residual") in
      Alcotest.(check bool) "residual gauge probed" true (List.length residual >= 1);
      List.iter
        (fun (_, y) -> Alcotest.(check (float 0.0)) "probe reads the gauge" 0.25 y)
        residual;
      Alcotest.(check bool) "peak gauge set" true
        (M.gauge_value (M.gauge "sampler.peak_heap_words") > 0.0);
      Alcotest.check_raises "non-positive interval"
        (Invalid_argument "Sampler.start: interval must be positive") (fun () ->
          ignore (Obs.Sampler.start ~interval_s:0.0 ())))

let test_sampler_off_when_disabled () =
  fresh ();
  (* Collection off: the sampler domain runs but records nothing. *)
  let s = Obs.Sampler.start ~interval_s:0.002 () in
  Unix.sleepf 0.01;
  Obs.Sampler.stop s;
  Alcotest.(check int) "no samples recorded" 0
    (List.length (M.series_points (M.series "sampler.heap_words")))

let suite =
  [
    Alcotest.test_case "ledger record JSON round-trip" `Quick test_record_roundtrip;
    Alcotest.test_case "ledger rejects foreign schemas" `Quick test_of_json_rejects_bad_schema;
    Alcotest.test_case "ledger append and load" `Quick test_append_load;
    Alcotest.test_case "capture folds spans into stages" `Quick test_capture_from_telemetry;
    Alcotest.test_case "diff stages incl. missing stage" `Quick test_diff_stages;
    Alcotest.test_case "diff metrics omits identical" `Quick test_diff_metrics;
    Alcotest.test_case "regression against the median" `Quick test_regress;
    Alcotest.test_case "memory regression against the median" `Quick test_regress_memory;
    Alcotest.test_case "prometheus exposition format" `Quick test_prometheus_format;
    Alcotest.test_case "metrics format names" `Quick test_metrics_format_of_string;
    Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
    Alcotest.test_case "counters exact across 4 domains" `Quick test_counters_across_domains;
    Alcotest.test_case "series complete across 4 domains" `Quick test_series_across_domains;
    Alcotest.test_case "sampler records series" `Quick test_sampler_records_series;
    Alcotest.test_case "sampler is a no-op when disabled" `Quick test_sampler_off_when_disabled;
  ]
