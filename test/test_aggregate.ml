(* The aggregation engine: replica symmetry reduction at exploration
   time and ordinary-lumpability partition refinement before the solve.
   Both are exact — every test here checks an aggregated analysis
   against the unaggregated one, not against golden numbers. *)

let close = Alcotest.float 1e-9

(* The E6 replicated-server family: n interchangeable Procs cooperating
   with one Srv.  The full space is O(2^n); the symmetry-reduced one is
   O(n). *)
let e6 n =
  Printf.sprintf
    "Proc = (task, 1.0).(swap, 2.0).Proc;\n\
     Srv = (task, infty).(log, 5.0).Srv;\n\
     system (Proc[%d]) <task> Srv;"
    n

let check_throughputs_equal what expected actual =
  Alcotest.(check int) (what ^ ": same action count") (List.length expected) (List.length actual);
  List.iter2
    (fun (name_e, v_e) (name_a, v_a) ->
      Alcotest.(check string) (what ^ ": action name") name_e name_a;
      Alcotest.check close (what ^ ": throughput of " ^ name_e) v_e v_a)
    expected actual

let test_symmetry_collapses_replicas () =
  let full = Pepa.Statespace.of_string (e6 5) in
  let reduced = Pepa.Statespace.of_string ~symmetry:true (e6 5) in
  Alcotest.(check int) "full space is exponential" (2 * (1 lsl 5)) (Pepa.Statespace.n_states full);
  Alcotest.(check int) "reduced space is linear" (2 * (5 + 1)) (Pepa.Statespace.n_states reduced);
  Alcotest.(check bool) "symmetry detected" false
    (Pepa.Symmetry.is_trivial (Pepa.Statespace.symmetry reduced))

let test_symmetry_preserves_measures () =
  for n = 2 to 6 do
    let full = Pepa.Statespace.of_string (e6 n) in
    let reduced = Pepa.Statespace.of_string ~symmetry:true (e6 n) in
    let pi_full = Pepa.Statespace.steady_state full in
    let pi_red = Pepa.Statespace.steady_state reduced in
    check_throughputs_equal
      (Printf.sprintf "n=%d" n)
      (Pepa.Statespace.throughputs full pi_full)
      (Pepa.Statespace.throughputs reduced pi_red);
    (* Orbit-averaged local measures: every Proc replica leaf reports
       the same marginal as in the full space. *)
    let compiled = Pepa.Statespace.compiled full in
    for leaf = 0 to n do
      let label = Pepa.Compile.local_label compiled ~leaf ~local:0 in
      Alcotest.check close
        (Printf.sprintf "n=%d leaf %d utilisation" n leaf)
        (Pepa.Statespace.local_state_probability full pi_full ~leaf ~label)
        (Pepa.Statespace.local_state_probability reduced pi_red ~leaf ~label)
    done
  done

let test_lump_e6 () =
  let space = Pepa.Statespace.of_string (e6 4) in
  let part = Pepa.Statespace.lump_partition space in
  Alcotest.(check bool) "lumping compresses the replicated model" true
    (part.Markov.Lump.n_classes < Pepa.Statespace.n_states space);
  let pi = Pepa.Statespace.steady_state space in
  let pi_lumped = Pepa.Statespace.steady_state ~lump:true space in
  check_throughputs_equal "lump"
    (Pepa.Statespace.throughputs space pi)
    (Pepa.Statespace.throughputs space pi_lumped);
  (* The lumped solution aggregates the true one exactly, class by
     class. *)
  let agg_true = Markov.Lump.aggregate part pi in
  let agg_lumped = Markov.Lump.aggregate part pi_lumped in
  Array.iteri
    (fun c v -> Alcotest.check close (Printf.sprintf "class %d mass" c) v agg_lumped.(c))
    agg_true

(* Ordinarily lumpable but asymmetric: S1 and S2 share their exit
   signature (one [go] at rate 1 into S3) so plain refinement would
   merge them, yet their true probabilities differ (S3 feeds S1 at 2.0
   and S2 at 3.0: pi = 1/3, 1/2 vs 1/6).  The respect key must keep
   them apart so per-state and local-state measures survive uniform
   disaggregation exactly. *)
let asymmetric =
  "S1 = (go, 1.0).S3;\n\
   S2 = (go, 1.0).S3;\n\
   S3 = (left, 2.0).S1 + (right, 3.0).S2;\n\
   system S1;"

let test_lump_asymmetric () =
  let space = Pepa.Statespace.of_string asymmetric in
  let pi = Pepa.Statespace.steady_state space in
  let pi_lumped = Pepa.Statespace.steady_state ~lump:true space in
  Array.iteri
    (fun i v -> Alcotest.check close (Printf.sprintf "pi(%d)" i) v pi_lumped.(i))
    pi;
  let compiled = Pepa.Statespace.compiled space in
  for local = 0 to 2 do
    let label = Pepa.Compile.local_label compiled ~leaf:0 ~local in
    Alcotest.check close
      (Printf.sprintf "local probability of %s" label)
      (Pepa.Statespace.local_state_probability space pi ~leaf:0 ~label)
      (Pepa.Statespace.local_state_probability space pi_lumped ~leaf:0 ~label)
  done;
  (* The same model through the workbench: per-state measures reported
     under lump-only aggregation equal the unaggregated ones. *)
  let analyse aggregate = Choreographer.Workbench.analyse_pepa_string ~aggregate asymmetric in
  let plain = analyse Markov.Lump.No_agg in
  let lumped = analyse Markov.Lump.Lumping in
  List.iter2
    (fun (name_p, v_p) (name_l, v_l) ->
      Alcotest.(check string) "probability name" name_p name_l;
      Alcotest.check close ("workbench probability of " ^ name_p) v_p v_l)
    plain.Choreographer.Workbench.results.Choreographer.Results.state_probabilities
    lumped.Choreographer.Workbench.results.Choreographer.Results.state_probabilities

(* The respect key at the Markov level: the same chain as columns.
   Without it the signature merges states 0 and 1; with distinct keys
   they stay apart; with a shared key they may merge again. *)
let test_refine_respect () =
  let src = [| 0; 1; 2; 2 |] and dst = [| 2; 2; 0; 1 |] in
  let rate = [| 1.0; 1.0; 2.0; 3.0 |] and label = [| 0; 0; 1; 2 |] in
  let free = Markov.Lump.refine ~n:3 ~src ~dst ~rate ~label () in
  Alcotest.(check int) "signature alone merges" 2 free.Markov.Lump.n_classes;
  let kept = Markov.Lump.refine ~respect:[| 0; 1; 2 |] ~n:3 ~src ~dst ~rate ~label () in
  Alcotest.(check int) "distinct keys forbid the merge" 3 kept.Markov.Lump.n_classes;
  let shared = Markov.Lump.refine ~respect:[| 7; 7; 4 |] ~n:3 ~src ~dst ~rate ~label () in
  Alcotest.(check int) "shared keys allow the merge" 2 shared.Markov.Lump.n_classes;
  Alcotest.check_raises "wrong length rejected"
    (Invalid_argument "Lump.refine: respect array of the wrong length") (fun () ->
      ignore (Markov.Lump.refine ~respect:[| 0 |] ~n:3 ~src ~dst ~rate ~label ()))

let test_symmetry_then_lump () =
  let full = Pepa.Statespace.of_string (e6 5) in
  let reduced = Pepa.Statespace.of_string ~symmetry:true (e6 5) in
  let pi_full = Pepa.Statespace.steady_state full in
  let pi_both = Pepa.Statespace.steady_state ~lump:true reduced in
  check_throughputs_equal "both"
    (Pepa.Statespace.throughputs full pi_full)
    (Pepa.Statespace.throughputs reduced pi_both)

let test_warm_start () =
  let space = Pepa.Statespace.of_string (e6 4) in
  let c = Pepa.Statespace.ctmc space in
  (* Warm-starting from the disaggregated lumped solution converges to
     the same answer as the cold solve. *)
  let initial = Pepa.Statespace.steady_state ~lump:true space in
  let cold = Markov.Steady.solve ~method_:Markov.Steady.Gauss_seidel c in
  let warm, stats =
    Markov.Steady.solve_stats ~method_:Markov.Steady.Gauss_seidel ~initial c
  in
  Array.iteri (fun i v -> Alcotest.check close (Printf.sprintf "pi(%d)" i) v warm.(i)) cold;
  Alcotest.(check bool) "warm start converged" true
    (stats.Markov.Steady.residual <= Markov.Steady.default_options.Markov.Steady.tolerance);
  Alcotest.check_raises "dimension mismatch rejected"
    (Markov.Steady.Not_solvable "warm-start vector has the wrong dimension") (fun () ->
      ignore (Markov.Steady.solve ~method_:Markov.Steady.Gauss_seidel ~initial:[| 1.0 |] c));
  let zero = Array.make (Markov.Ctmc.n_states c) 0.0 in
  Alcotest.check_raises "massless warm start rejected"
    (Markov.Steady.Not_solvable "warm-start vector has no positive mass") (fun () ->
      ignore (Markov.Steady.solve ~method_:Markov.Steady.Gauss_seidel ~initial:zero c));
  Alcotest.check_raises "negative warm start rejected"
    (Markov.Steady.Not_solvable "warm-start vector has no positive mass") (fun () ->
      ignore
        (Markov.Steady.solve ~method_:Markov.Steady.Gauss_seidel
           ~initial:(Array.make (Markov.Ctmc.n_states c) (-1.0))
           c))

let test_modes () =
  let open Markov.Lump in
  List.iter
    (fun (s, m) -> Alcotest.(check bool) s true (mode_of_string s = Some m))
    [ ("none", No_agg); ("symmetry", Symmetry); ("lump", Lumping); ("both", Both) ];
  Alcotest.(check bool) "unknown rejected" true (mode_of_string "everything" = None);
  List.iter
    (fun m ->
      Alcotest.(check bool) (mode_to_string m) true (mode_of_string (mode_to_string m) = Some m))
    [ No_agg; Symmetry; Lumping; Both ]

(* ---------------------------------------------------------------- *)
(* End-to-end regression: the full pipeline under --aggregate both    *)
(* ---------------------------------------------------------------- *)

module P = Choreographer.Pipeline
module R = Choreographer.Results

let test_pipeline_aggregate_both () =
  let run aggregate =
    let options = { P.default_options with P.rates = Scenarios.Pda.rates; aggregate } in
    P.process_document ~options (Scenarios.Pda.poseidon_project ())
  in
  let plain = run Markov.Lump.No_agg in
  let both = run Markov.Lump.Both in
  let results_plain = List.hd plain.P.results in
  let results_both = List.hd both.P.results in
  check_throughputs_equal "pipeline" results_plain.R.throughputs results_both.R.throughputs;
  (* The reflected documents carry identical annotations: the measure
     strings are formatted from equal-to-tolerance values. *)
  let annotations outcome =
    let diagram = Uml.Xmi_read.activity_of_xml outcome.P.reflected in
    List.filter_map
      (fun (n : Uml.Activity.node) ->
        Uml.Activity.annotation diagram ~node_id:n.Uml.Activity.node_id ~tag:"throughput")
      (Uml.Activity.action_nodes diagram)
  in
  let plain_ann = annotations plain in
  Alcotest.(check bool) "reflected annotations present" true (plain_ann <> []);
  Alcotest.(check (list string)) "reflected annotations identical" plain_ann (annotations both)

let test_pipeline_aggregate_statecharts () =
  let doc =
    Uml.Xmi_write.statecharts_to_xml [ Scenarios.Tomcat.client (); Scenarios.Tomcat.server_jsp () ]
  in
  let run aggregate =
    P.process_document ~options:{ P.default_options with P.aggregate } doc
  in
  let plain = List.hd (run Markov.Lump.No_agg).P.results in
  let both = List.hd (run Markov.Lump.Both).P.results in
  check_throughputs_equal "charts" plain.R.throughputs both.R.throughputs;
  Alcotest.(check int) "same probability count"
    (List.length plain.R.state_probabilities)
    (List.length both.R.state_probabilities);
  List.iter2
    (fun (name_p, v_p) (name_b, v_b) ->
      Alcotest.(check string) "probability name" name_p name_b;
      Alcotest.check close ("probability of " ^ name_p) v_p v_b)
    plain.R.state_probabilities both.R.state_probabilities

let test_telemetry_records_aggregation () =
  Obs.Config.enable ();
  Obs.Metrics.reset ();
  let _ =
    Choreographer.Workbench.analyse_pepa_string ~aggregate:Markov.Lump.Both (e6 4)
  in
  let rendered = Choreographer.Report.telemetry_section () in
  Obs.Config.disable ();
  Obs.Metrics.reset ();
  let contains needle =
    let n = String.length needle and h = String.length rendered in
    let rec scan i = i + n <= h && (String.sub rendered i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "canonical hits recorded" true (contains "statespace.canonical_hits");
  Alcotest.(check bool) "lump classes recorded" true (contains "ctmc.lump.classes_after");
  Alcotest.(check bool) "lump time recorded" true (contains "ctmc.lump.seconds")

(* ---------------------------------------------------------------- *)
(* Random-chain properties                                           *)
(* ---------------------------------------------------------------- *)

(* A random labelled CTMC kept irreducible by a ring backbone; rates
   are drawn from a small set so that lumpable structure actually
   arises. *)
let gen_chain =
  let open QCheck2.Gen in
  let* n = 2 -- 7 in
  let* extras =
    list_size (0 -- (2 * n))
      (pair (pair (0 -- (n - 1)) (0 -- (n - 1))) (pair (oneofl [ 0.5; 1.0; 2.0 ]) (0 -- 1)))
  in
  return (n, extras)

let columns_of (n, extras) =
  let ring = List.init n (fun i -> ((i, (i + 1) mod n), (1.0, 0))) in
  let all = ring @ extras in
  let src = Array.of_list (List.map (fun ((s, _), _) -> s) all) in
  let dst = Array.of_list (List.map (fun ((_, d), _) -> d) all) in
  let rate = Array.of_list (List.map (fun (_, (r, _)) -> r) all) in
  let label = Array.of_list (List.map (fun (_, (_, l)) -> l) all) in
  (n, src, dst, rate, label)

(* The refined partition really is ordinarily lumpable: per label, the
   total rate from a state into any class depends only on the state's
   own class. *)
let prop_refinement_is_lumpable =
  QCheck2.Test.make ~name:"refined partition is ordinarily lumpable" ~count:100 gen_chain
    (fun input ->
      let n, src, dst, rate, label = columns_of input in
      let part = Markov.Lump.refine ~n ~src ~dst ~rate ~label () in
      let n_labels = 1 + Array.fold_left max 0 label in
      let weight s l d =
        let total = ref 0.0 in
        Array.iteri
          (fun k s' ->
            if
              s' = s && label.(k) = l
              && part.Markov.Lump.class_of.(dst.(k)) = d
              && dst.(k) <> s
            then total := !total +. rate.(k))
          src;
        !total
      in
      let ok = ref true in
      for s = 0 to n - 1 do
        let rep = part.Markov.Lump.representative.(part.Markov.Lump.class_of.(s)) in
        for l = 0 to n_labels - 1 do
          for d = 0 to part.Markov.Lump.n_classes - 1 do
            let ws = weight s l d and wr = weight rep l d in
            (* Class-internal flow may differ between members (it is a
               self-loop of the quotient); only cross-class flow must
               agree. *)
            if
              d <> part.Markov.Lump.class_of.(s)
              && abs_float (ws -. wr) > 1e-9 *. (1.0 +. abs_float ws +. abs_float wr)
            then ok := false
          done
        done
      done;
      !ok)

(* The lumped steady state is the exact aggregation of the full one,
   and the quotient preserves every class's total outflow. *)
let prop_lumped_solution_aggregates =
  QCheck2.Test.make ~name:"lumped steady state aggregates the full one" ~count:100 gen_chain
    (fun input ->
      let n, src, dst, rate, label = columns_of input in
      let c = Markov.Ctmc.of_arrays ~n ~src ~dst ~rate in
      let part = Markov.Lump.refine ~n ~src ~dst ~rate ~label () in
      let q = Markov.Lump.quotient_ctmc part ~src ~dst ~rate in
      let pi = Markov.Steady.solve c in
      let pi_hat = Markov.Steady.solve q in
      let agg = Markov.Lump.aggregate part pi in
      let ok = ref true in
      Array.iteri
        (fun cl v -> if abs_float (v -. pi_hat.(cl)) > 1e-9 then ok := false)
        agg;
      (* Per-class cross-class outflow is preserved by the quotient. *)
      for cl = 0 to part.Markov.Lump.n_classes - 1 do
        let rep = part.Markov.Lump.representative.(cl) in
        let out = ref 0.0 in
        Array.iteri
          (fun k s ->
            if s = rep && part.Markov.Lump.class_of.(dst.(k)) <> cl then
              out := !out +. rate.(k))
          src;
        if abs_float (!out -. Markov.Ctmc.exit_rate q cl) > 1e-9 *. (1.0 +. !out) then
          ok := false
      done;
      !ok)

(* Replica symmetry on random member counts: reduced and full analyses
   agree on every throughput. *)
let prop_symmetry_exact =
  QCheck2.Test.make ~name:"symmetry reduction preserves throughputs" ~count:20
    QCheck2.Gen.(2 -- 6)
    (fun n ->
      let full = Pepa.Statespace.of_string (e6 n) in
      let reduced = Pepa.Statespace.of_string ~symmetry:true (e6 n) in
      let th_full = Pepa.Statespace.throughputs full (Pepa.Statespace.steady_state full) in
      let th_red =
        Pepa.Statespace.throughputs reduced (Pepa.Statespace.steady_state reduced)
      in
      List.for_all2
        (fun (a, va) (b, vb) -> a = b && abs_float (va -. vb) <= 1e-9)
        th_full th_red)

let suite =
  [
    Alcotest.test_case "symmetry collapses replicas" `Quick test_symmetry_collapses_replicas;
    Alcotest.test_case "symmetry preserves measures" `Quick test_symmetry_preserves_measures;
    Alcotest.test_case "lumping the replicated model" `Quick test_lump_e6;
    Alcotest.test_case "asymmetric lumpable chain stays exact" `Quick test_lump_asymmetric;
    Alcotest.test_case "respect key constrains refinement" `Quick test_refine_respect;
    Alcotest.test_case "symmetry then lumping" `Quick test_symmetry_then_lump;
    Alcotest.test_case "warm-started solve" `Quick test_warm_start;
    Alcotest.test_case "aggregation modes" `Quick test_modes;
    Alcotest.test_case "pipeline under --aggregate both" `Quick test_pipeline_aggregate_both;
    Alcotest.test_case "statechart pipeline aggregated" `Quick
      test_pipeline_aggregate_statecharts;
    Alcotest.test_case "telemetry records aggregation" `Quick test_telemetry_records_aggregation;
    QCheck_alcotest.to_alcotest prop_refinement_is_lumpable;
    QCheck_alcotest.to_alcotest prop_lumped_solution_aggregates;
    QCheck_alcotest.to_alcotest prop_symmetry_exact;
  ]
