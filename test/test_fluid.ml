(* The fluid-flow engine: numerical vector form derivation, RK45
   integration, and agreement with the exact and simulated solutions. *)

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let rel_err ~exact v = Float.abs (v -. exact) /. Float.max 1e-12 (Float.abs exact)

(* A replicated processor pool cooperating with a replicated server
   pool, all rates active: the regime the approximation targets. *)
let pool_model n m =
  Printf.sprintf
    {|
      Proc = (task, 1.0).(swap, 2.0).Proc;
      Srv = (task, 2.0).(log, 5.0).Srv;
      system (Proc[%d]) <task> (Srv[%d]);
    |}
    n m

(* ------------------------------------------------------------------ *)
(* RK45                                                                *)
(* ------------------------------------------------------------------ *)

let test_rk45_relaxation () =
  (* x' = -(x - 1): steady state 1 from any start. *)
  let f ~t:_ ~x ~dx = dx.(0) <- -.(x.(0) -. 1.0) in
  let x, stats = Fluid.Rk45.integrate ~f ~x0:[| 5.0 |] () in
  Alcotest.(check bool) "reached steady" true stats.Fluid.Rk45.reached_steady;
  Alcotest.(check bool) "relaxed to 1" true (close ~eps:1e-4 x.(0) 1.0);
  Alcotest.(check bool) "took steps" true (stats.Fluid.Rk45.steps > 0)

let test_rk45_kinetics () =
  (* a <-> b with rates 3 and 1: mass 4 splits 1:3 at equilibrium. *)
  let f ~t:_ ~x ~dx =
    let flow = (3.0 *. x.(0)) -. (1.0 *. x.(1)) in
    dx.(0) <- -.flow;
    dx.(1) <- flow
  in
  let x, _ = Fluid.Rk45.integrate ~f ~x0:[| 4.0; 0.0 |] () in
  Alcotest.(check bool) "a" true (close ~eps:1e-4 x.(0) 1.0);
  Alcotest.(check bool) "b" true (close ~eps:1e-4 x.(1) 3.0)

let test_rk45_accuracy () =
  (* Integrate x' = -x down to the steady tolerance and compare the
     trajectory against e^{-t} at the reached time. *)
  let f ~t:_ ~x ~dx = dx.(0) <- -.x.(0) in
  let x, stats =
    Fluid.Rk45.integrate
      ~tolerances:{ Fluid.Rk45.rtol = 1e-10; atol = 1e-12 }
      ~steady_tol:1e-6 ~f ~x0:[| 1.0 |] ()
  in
  let expected = Float.exp (-.stats.Fluid.Rk45.t_end) in
  Alcotest.(check bool) "matches e^-t" true (close ~eps:1e-8 x.(0) expected)

let test_rk45_divergence () =
  (* x' = 1 never settles: the horizon must be reported, not looped
     forever. *)
  let f ~t:_ ~x:_ ~dx = dx.(0) <- 1.0 in
  match Fluid.Rk45.integrate ~t_max:10.0 ~f ~x0:[| 0.0 |] () with
  | _ -> Alcotest.fail "expected Did_not_reach_steady"
  | exception Fluid.Rk45.Did_not_reach_steady { t; _ } ->
      Alcotest.(check bool) "stopped at the horizon" true (t >= 10.0)

(* ------------------------------------------------------------------ *)
(* Vector form                                                         *)
(* ------------------------------------------------------------------ *)

let test_vector_form_shape () =
  let form = Fluid.Vector_form.of_string (pool_model 5 2) in
  let pops = Fluid.Vector_form.pops form in
  Alcotest.(check int) "two populations" 2 (Array.length pops);
  Alcotest.(check int) "dimension independent of counts" 4 (Fluid.Vector_form.dim form);
  let counts =
    Array.to_list pops
    |> List.map (fun p -> (p.Fluid.Vector_form.label, p.Fluid.Vector_form.count))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string (float 0.0))))
    "replica counts" [ ("Proc", 5.0); ("Srv", 2.0) ] counts;
  let x0 = Fluid.Vector_form.initial form in
  Alcotest.(check (float 0.0)) "mass conserved" 7.0 (Array.fold_left ( +. ) 0.0 x0);
  Alcotest.(check (list string))
    "visible actions" [ "log"; "swap"; "task" ]
    (Fluid.Vector_form.action_names form)

let test_vector_form_rejects_passive () =
  let model =
    {|
      Proc = (task, 1.0).Proc;
      Srv = (task, infty).Srv;
      system Proc <task> Srv;
    |}
  in
  match Fluid.Vector_form.of_string model with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Fluid.Vector_form.Unsupported msg ->
      let contains sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names the action" true (contains "task" msg)

let integrate_form ?steady_tol form =
  let f ~t:_ ~x ~dx = Fluid.Vector_form.derivative form x dx in
  Fluid.Rk45.integrate ?steady_tol ~f ~x0:(Fluid.Vector_form.initial form) ()

let test_fluid_conservation () =
  let form = Fluid.Vector_form.of_string (pool_model 16 4) in
  let x, stats = integrate_form form in
  Alcotest.(check bool) "steady" true stats.Fluid.Rk45.reached_steady;
  (* Replicas move between local states but never leave their
     population. *)
  Array.iter
    (fun p ->
      let total = ref 0.0 in
      for s = 0 to p.Fluid.Vector_form.n_local - 1 do
        total := !total +. x.(p.Fluid.Vector_form.offset + s)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "population %s conserved" p.Fluid.Vector_form.label)
        true
        (close ~eps:1e-6 !total p.Fluid.Vector_form.count))
    (Fluid.Vector_form.pops form)

let test_fluid_bounded_capacity () =
  (* The server pool bounds the flux: throughput can never exceed
     either side's capacity. *)
  let form = Fluid.Vector_form.of_string (pool_model 16 4) in
  let x, _ = integrate_form form in
  let task = Fluid.Vector_form.throughput form x "task" in
  Alcotest.(check bool) "positive flow" true (task > 0.1);
  Alcotest.(check bool) "below server capacity" true (task <= 4.0 *. 2.0 +. 1e-6);
  Alcotest.(check bool) "below processor capacity" true (task <= 16.0 *. 1.0 +. 1e-6)

let test_fluid_vs_exact_16 () =
  (* The acceptance gate's twin: at 16 replicas the fluid throughput is
     within 5% of the exact (aggregated) solve. *)
  let source = pool_model 16 4 in
  let space = Pepa.Statespace.of_string ~symmetry:true source in
  let pi = Pepa.Statespace.steady_state ~lump:true space in
  let form = Fluid.Vector_form.of_string source in
  let x, _ = integrate_form form in
  List.iter
    (fun (name, exact) ->
      let fluid = Fluid.Vector_form.throughput form x name in
      let err = rel_err ~exact fluid in
      if err > 0.05 then
        Alcotest.failf "throughput(%s): fluid %.6f vs exact %.6f (%.1f%% off)" name fluid
          exact (100.0 *. err))
    (Pepa.Statespace.throughputs space pi)

let test_fluid_hiding () =
  (* Hidden actions keep flowing internally but disappear from the
     visible measures. *)
  let source =
    {|
      Proc = (task, 1.0).(swap, 2.0).Proc;
      Srv = (task, 2.0).(log, 5.0).Srv;
      system ((Proc[4]) <task> (Srv[2])) / {task};
    |}
  in
  let form = Fluid.Vector_form.of_string source in
  Alcotest.(check (list string))
    "task is hidden" [ "log"; "swap" ]
    (Fluid.Vector_form.action_names form);
  let x, _ = integrate_form form in
  Alcotest.(check (float 0.0)) "hidden throughput reads 0" 0.0
    (Fluid.Vector_form.throughput form x "task");
  (* The internal task flow still drives the log cycle. *)
  Alcotest.(check bool) "log still flows" true
    (Fluid.Vector_form.throughput form x "log" > 0.1)

let test_with_count_scaling () =
  (* Re-parameterising the population does not change the ODE size, and
     the saturated throughput scales with the server pool, not the
     clients. *)
  let form = Fluid.Vector_form.of_string (pool_model 16 4) in
  let proc =
    let found = ref (-1) in
    Array.iteri
      (fun i p -> if p.Fluid.Vector_form.label = "Proc" then found := i)
      (Fluid.Vector_form.pops form);
    !found
  in
  let big = Fluid.Vector_form.with_count form ~pop:proc ~count:100000.0 in
  Alcotest.(check int) "same dimension" (Fluid.Vector_form.dim form)
    (Fluid.Vector_form.dim big);
  let x, stats = integrate_form big in
  Alcotest.(check bool) "steady at 1e5 replicas" true stats.Fluid.Rk45.reached_steady;
  let task = Fluid.Vector_form.throughput big x "task" in
  (* Servers saturate: flow pinned near the server pool's cycle
     capacity 2*4*5/(2+5). *)
  Alcotest.(check bool) "server-bound flow" true (rel_err ~exact:(40.0 /. 7.0) task < 0.01)

let test_leaf_proportions () =
  let form = Fluid.Vector_form.of_string (pool_model 8 2) in
  let x, _ = integrate_form form in
  (* Every leaf of the Proc group shares the population marginal. *)
  let p0 = Fluid.Vector_form.leaf_proportions form x ~leaf:0 in
  let p1 = Fluid.Vector_form.leaf_proportions form x ~leaf:1 in
  Alcotest.(check bool) "orbit leaves share the marginal" true (p0 = p1);
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 p0 in
  Alcotest.(check bool) "marginal sums to 1" true (close ~eps:1e-6 total 1.0)

(* ------------------------------------------------------------------ *)
(* Workbench, pipeline and interchange integration                     *)
(* ------------------------------------------------------------------ *)

module W = Choreographer.Workbench
module R = Choreographer.Results
module P = Choreographer.Pipeline

let test_workbench_fluid () =
  let analysis = W.analyse_pepa_fluid_string ~name:"pool" (pool_model 16 4) in
  let results = analysis.W.fluid_results in
  Alcotest.(check string) "named" "pool" results.R.source;
  Alcotest.(check (option string)) "labelled as fluid" (Some "fluid") results.R.approximation;
  Alcotest.(check int) "n_states is the ODE dimension" 4 results.R.n_states;
  (match R.throughput results "task" with
  | Some v -> Alcotest.(check bool) "task throughput present" true (v > 0.1)
  | None -> Alcotest.fail "no task throughput");
  (* Local-state proportions mirror the population marginals. *)
  let probs = W.fluid_local_probabilities analysis ~leaf:0 in
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 probs in
  Alcotest.(check bool) "leaf marginal sums to 1" true (close ~eps:1e-6 total 1.0);
  (* Passive models are wrapped into Analysis_error, not a raw
     Unsupported escape. *)
  match
    W.analyse_pepa_fluid_string "P = (a, 1.0).P; Q = (a, infty).Q; system P <a> Q;"
  with
  | _ -> Alcotest.fail "expected Analysis_error"
  | exception W.Analysis_error _ -> ()

let test_results_approximation_roundtrip () =
  let results =
    R.make ~source:"m" ~kind:R.Pepa_model ~n_states:4 ~n_transitions:6
      ~throughputs:[ ("task", 5.714286) ]
      ~state_probabilities:[ ("Proc.Proc", 0.4) ]
      ~approximation:"fluid" ()
  in
  let back = R.of_xmltable (R.to_xmltable results) in
  Alcotest.(check (option string)) "approximation survives the xmltable round trip"
    (Some "fluid") back.R.approximation;
  (* And its absence survives too. *)
  let exact = R.make ~source:"m" ~kind:R.Pepa_model ~n_states:4 ~n_transitions:6 () in
  let back = R.of_xmltable (R.to_xmltable exact) in
  Alcotest.(check (option string)) "exact stays unlabelled" None back.R.approximation

let test_pipeline_fluid () =
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let fluid_options =
    { P.default_options with P.fluid = Some Fluid.Rk45.default_tolerances }
  in
  (* A single all-active chart has a fluid interpretation: results are
     labelled and reflected with the solution-method annotation. *)
  let doc = Uml.Xmi_write.statecharts_to_xml [ Scenarios.Tomcat.client () ] in
  let outcome = P.process_document ~options:fluid_options doc in
  let results = List.hd outcome.P.results in
  Alcotest.(check (option string)) "fluid label" (Some "fluid") results.R.approximation;
  let probs_total =
    List.fold_left (fun acc (_, p) -> acc +. p) 0.0 results.R.state_probabilities
  in
  Alcotest.(check bool) "leaf probabilities reflected" true
    (close ~eps:1e-6 probs_total 1.0);
  let annotated =
    contains "fluid approximation" (Xml_kit.Minixml.to_string outcome.P.reflected)
  in
  Alcotest.(check bool) "reflected XMI labels the method" true annotated;
  (* Cooperating charts extract shared actions as passive: no fluid
     interpretation, so the pipeline falls back to the exact solve and
     says so. *)
  let doc =
    Uml.Xmi_write.statecharts_to_xml
      [ Scenarios.Tomcat.client (); Scenarios.Tomcat.server_jsp () ]
  in
  let outcome = P.process_document ~options:fluid_options doc in
  let results = List.hd outcome.P.results in
  Alcotest.(check (option string)) "fell back to exact" None results.R.approximation;
  Alcotest.(check bool) "warning explains the fallback" true
    (List.exists (contains "solved exactly") results.R.warnings)

(* ------------------------------------------------------------------ *)
(* Bit-identity of the lowering onto the population IR                 *)
(* ------------------------------------------------------------------ *)

(* Goldens captured from the pre-refactor vector form (before the
   {!Fluid.Population} IR split): derivative evaluations, RK45 steady
   points with their step counts, and throughputs, as IEEE-754 bit
   patterns.  The lowering must reproduce every float-operation order
   exactly, so these are checked bit for bit — any reordering of the
   flux arithmetic shows up here even when the values agree to 1e-15. *)
let test_bit_identity () =
  let hiding_model =
    {|
      Proc = (task, 1.0).(swap, 2.0).Proc;
      Srv = (task, 2.0).(log, 5.0).Srv;
      system ((Proc[4]) <task> (Srv[2])) / {task};
    |}
  in
  let check_bits label expected actual =
    Array.iteri
      (fun i bits ->
        Alcotest.(check int64)
          (Printf.sprintf "%s[%d]" label i)
          bits
          (Int64.bits_of_float actual.(i)))
      expected
  in
  let run name source ~ddt0 ~ddtp ~steps ~steady ~thr =
    let form = Fluid.Vector_form.of_string source in
    let dim = Fluid.Vector_form.dim form in
    Alcotest.(check int) (name ^ " dim") (Array.length ddt0) dim;
    let dx = Array.make dim 0.0 in
    Fluid.Vector_form.derivative form (Fluid.Vector_form.initial form) dx;
    check_bits (name ^ " d/dt at x0") ddt0 dx;
    let xp = Array.init dim (fun i -> float_of_int (((i * 7) mod 5) + 1) *. 0.61) in
    Fluid.Vector_form.derivative form xp dx;
    check_bits (name ^ " d/dt at probe") ddtp dx;
    let f ~t:_ ~x ~dx = Fluid.Vector_form.derivative form x dx in
    let x, stats = Fluid.Rk45.integrate ~f ~x0:(Fluid.Vector_form.initial form) () in
    Alcotest.(check int) (name ^ " step count") steps stats.Fluid.Rk45.steps;
    check_bits (name ^ " steady point") steady x;
    List.iter
      (fun (action, bits) ->
        Alcotest.(check int64)
          (Printf.sprintf "%s throughput %s" name action)
          bits
          (Int64.bits_of_float (Fluid.Vector_form.throughput form x action)))
      thr
  in
  run "pool16x4" (pool_model 16 4)
    ~ddt0:
      [| 0xc020000000000000L; 0x4020000000000000L; 0xc020000000000000L;
         0x4020000000000000L |]
    ~ddtp:
      [| 0x401fb851eb851eb9L; 0xc01fb851eb851eb9L; 0x3ff3851eb851eb85L;
         0xbff3851eb851eb85L |]
    ~steps:71
    ~steady:
      [| 0x4006db6db6db6db8L; 0x3ff2492492492493L; 0x402a4929a35e7c1cL;
         0x4006db5972860f7eL |]
    ~thr:
      [ ("log", 0x4016db6db6db6db8L); ("swap", 0x4016db5972860f7eL);
        ("task", 0x4016db6db6db6db8L) ];
  run "hidden4x2" hiding_model
    ~ddt0:
      [| 0xc010000000000000L; 0x4010000000000000L; 0xc010000000000000L;
         0x4010000000000000L |]
    ~ddtp:
      [| 0x401fb851eb851eb9L; 0xc01fb851eb851eb9L; 0x3ff3851eb851eb85L;
         0xbff3851eb851eb85L |]
    ~steps:74
    ~steady:
      [| 0x3ff777755305e00fL; 0x3fe1111559f43fdbL; 0x400555577a0e25fcL;
         0x3ff555510be3b3feL |]
    ~thr:[ ("log", 0x4005555ab0714fd2L); ("swap", 0x400555510be3b3feL) ];
  run "roaming16" (Scenarios.Roaming.pepa_source ~replicas:16)
    ~ddt0:
      [| 0xc030000000000000L; 0x4030000000000000L; 0xc030000000000000L;
         0x4030000000000000L; 0x0L |]
    ~ddtp:
      [| 0x4008666666666666L; 0xc008666666666666L; 0x4008666666666666L;
         0xc008666666666666L; 0x0L |]
    ~steps:79
    ~steady:
      [| 0x4003b13fec09afd3L; 0x4016276009fb2817L; 0x4024ec4ffb026bfaL;
         0x3ffd89dda812e594L; 0x400d89d13fecdd66L |]
    ~thr:
      [ ("connect", 0x401d89dfe20e87bcL); ("disconnect", 0x401d89d13fecdd66L);
        ("transmit", 0x401d89dda812e594L) ]

(* ------------------------------------------------------------------ *)
(* Three-way agreement on the roaming scenario                         *)
(* ------------------------------------------------------------------ *)

let test_three_way_roaming () =
  (* Exact (aggregated) solve, fluid approximation, and Monte-Carlo
     simulation must agree on the roaming users' throughput at 16
     replicas: the simulation confidence interval brackets both. *)
  let source = Scenarios.Roaming.pepa_source ~replicas:16 in
  let space = Pepa.Statespace.of_string ~symmetry:true source in
  let pi = Pepa.Statespace.steady_state ~lump:true space in
  let exact = Pepa.Statespace.throughput space pi "transmit" in
  let form = Fluid.Vector_form.of_string source in
  let x, _ = integrate_form form in
  let fluid = Fluid.Vector_form.throughput form x "transmit" in
  Alcotest.(check bool) "fluid within 5% of exact" true (rel_err ~exact fluid < 0.05);
  (* Jumps that carry transmit, for the simulation's counting reward.
     The pairs must identify the action uniquely. *)
  let pairs = Hashtbl.create 64 in
  Pepa.Statespace.iter_transitions space (fun ~src ~action ~rate:_ ~dst ->
      if Pepa.Action.equal action (Pepa.Action.act "transmit") then
        Hashtbl.replace pairs (src, dst) true);
  Pepa.Statespace.iter_transitions space (fun ~src ~action ~rate:_ ~dst ->
      if
        Hashtbl.mem pairs (src, dst)
        && not (Pepa.Action.equal action (Pepa.Action.act "transmit"))
      then Alcotest.fail "transmit jumps are not uniquely identified");
  let chain = Pepa.Statespace.ctmc space in
  let rng = Markov.Simulate.Rng.create ~seed:20260806L in
  let estimate =
    Markov.Simulate.throughput_estimate chain ~rng
      ~initial:(Pepa.Statespace.initial_index space)
      ~batches:24 ~batch_time:80.0 ~warmup:40.0
      ~counts:(fun src dst -> Hashtbl.mem pairs (src, dst))
      ()
  in
  let lo = estimate.Markov.Simulate.mean -. estimate.Markov.Simulate.half_width in
  let hi = estimate.Markov.Simulate.mean +. estimate.Markov.Simulate.half_width in
  Alcotest.(check bool)
    (Printf.sprintf "CI [%.4f, %.4f] brackets exact %.4f" lo hi exact)
    true
    (lo <= exact && exact <= hi);
  Alcotest.(check bool)
    (Printf.sprintf "CI [%.4f, %.4f] brackets fluid %.4f" lo hi fluid)
    true
    (lo <= fluid && fluid <= hi)

let suite =
  [
    Alcotest.test_case "rk45 relaxation" `Quick test_rk45_relaxation;
    Alcotest.test_case "rk45 kinetics equilibrium" `Quick test_rk45_kinetics;
    Alcotest.test_case "rk45 accuracy vs closed form" `Quick test_rk45_accuracy;
    Alcotest.test_case "rk45 reports divergence" `Quick test_rk45_divergence;
    Alcotest.test_case "vector form shape" `Quick test_vector_form_shape;
    Alcotest.test_case "passive rates rejected" `Quick test_vector_form_rejects_passive;
    Alcotest.test_case "population conservation" `Quick test_fluid_conservation;
    Alcotest.test_case "bounded-capacity flux" `Quick test_fluid_bounded_capacity;
    Alcotest.test_case "fluid vs exact at 16 replicas" `Quick test_fluid_vs_exact_16;
    Alcotest.test_case "hiding" `Quick test_fluid_hiding;
    Alcotest.test_case "with_count scaling" `Quick test_with_count_scaling;
    Alcotest.test_case "leaf proportions" `Quick test_leaf_proportions;
    Alcotest.test_case "workbench fluid analysis" `Quick test_workbench_fluid;
    Alcotest.test_case "approximation xmltable round trip" `Quick
      test_results_approximation_roundtrip;
    Alcotest.test_case "pipeline fluid mode and fallback" `Quick test_pipeline_fluid;
    Alcotest.test_case "bit-identity with the pre-IR vector form" `Quick test_bit_identity;
    Alcotest.test_case "three-way roaming agreement" `Slow test_three_way_roaming;
  ]
