(* The daemon service layer: wire framing, the protocol codec, the
   content-hash model cache, the engine's staged memoisation, sweep
   warm-starts, and a live daemon exercised over a real Unix socket —
   including the headline contract that a solve served by the daemon is
   byte-identical to the one-shot CLI's output. *)

let asset name =
  (* Tests run in _build/default/test; the assets are declared as deps. *)
  let candidates =
    [ Filename.concat "../examples/assets" name; Filename.concat "examples/assets" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> path
  | None -> Alcotest.failf "asset %s not found" name

let read_file path = In_channel.with_open_bin path In_channel.input_all
let mm1k () = read_file (asset "mm1k.pepa")
let has_prefix prefix s = String.starts_with ~prefix s

let has_infix needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* [replace_once old_ new_ s]: s with the first occurrence of [old_]
   swapped for [new_]; fails the test when [old_] is absent. *)
let replace_once old_ new_ s =
  let n = String.length s and no = String.length old_ in
  let rec find i = if i + no > n then None else if String.sub s i no = old_ then Some i else find (i + 1) in
  match find 0 with
  | Some i -> String.sub s 0 i ^ new_ ^ String.sub s (i + no) (n - i - no)
  | None -> Alcotest.failf "%S not found in source" old_

let default = Service.Protocol.default_options

let solve_request ?(options = default) ~name source =
  Service.Protocol.Solve { kind = Service.Protocol.Pepa; name; source; options }

let response_output = function
  | Service.Protocol.Ok_response { output; _ } -> output
  | Service.Protocol.Error_response { message; _ } ->
      Alcotest.failf "unexpected error response: %s" message

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = "{\"verb\":\"solve\",\"pad\":\"" ^ String.make 5000 'x' ^ "\"}" in
  Service.Frame.write a payload;
  Alcotest.(check (option string)) "round trip" (Some payload) (Service.Frame.read b);
  Unix.close a;
  Alcotest.(check (option string)) "clean close" None (Service.Frame.read b);
  Unix.close b

let test_frame_length_codec () =
  let payload = "hello frames" in
  let encoded = Service.Frame.encode payload in
  Alcotest.(check int) "prefix + payload"
    (4 + String.length payload)
    (String.length encoded);
  Alcotest.(check int) "declared length" (String.length payload)
    (Service.Frame.decode_length (String.sub encoded 0 4))

let test_frame_truncated () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let encoded = Service.Frame.encode (String.make 100 'y') in
  let cut = String.length encoded - 3 in
  assert (Unix.write_substring a encoded 0 cut = cut);
  Unix.close a;
  (match Service.Frame.read b with
  | exception Service.Frame.Frame_error msg ->
      Alcotest.(check bool) "mid-frame EOF named" true (has_infix "closed" msg)
  | Some _ | None -> Alcotest.fail "truncated frame not rejected");
  Unix.close b

let test_frame_oversized () =
  (* A length header beyond the cap is rejected before any allocation;
     an HTTP request line is exactly such a header, which is what lets
     the server share one socket between both protocols. *)
  let huge = "\xff\xff\xff\xff" in
  (match Service.Frame.decode_length huge with
  | exception Service.Frame.Frame_error _ -> ()
  | n -> Alcotest.failf "oversized header accepted as %d" n);
  match Service.Frame.decode_length "GET " with
  | exception Service.Frame.Frame_error _ -> ()
  | n -> Alcotest.failf "HTTP sniff: 'GET ' accepted as frame length %d" n

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)
(* ------------------------------------------------------------------ *)

let roundtrip_request request =
  Service.Protocol.request_of_json (Service.Protocol.request_to_json request)

let test_protocol_roundtrip () =
  let options =
    {
      Service.Protocol.method_ = Some (Markov.Steady.Sor 1.5);
      aggregate = Markov.Lump.Both;
      fluid = Some { Fluid.Rk45.rtol = 1e-6; atol = 1e-10 };
      jobs = 4;
      max_states = Some 100_000;
      restart = `Absorb;
    }
  in
  let requests =
    [
      solve_request ~options ~name:"m.pepa" "P = (a, 1.0).P;\nsystem P;";
      Service.Protocol.Query
        {
          kind = Service.Protocol.Net;
          name = "n.pepanet";
          source = "...";
          query = "throughput(serve)";
          options = default;
        };
      Service.Protocol.Pipeline
        { name = "doc"; document = "<XMI/>"; rates = Some "a = 1.0\n"; options };
      Service.Protocol.Reflect
        { name = "doc"; document = "activity A"; rates = None; options = default };
      Service.Protocol.Sweep
        {
          kind = Service.Protocol.Pepa;
          name = "m.pepa";
          source = "...";
          options = default;
          axes =
            [
              { Service.Protocol.target = `Rate "arrive"; values = [ 1.0; 2.0 ] };
              { Service.Protocol.target = `Replicas "Queue"; values = [ 2.0; 4.0; 8.0 ] };
            ];
          backend = Service.Protocol.Fluid_ode;
          warm_start = false;
        };
      Service.Protocol.Stats;
      Service.Protocol.Shutdown;
    ]
  in
  List.iter
    (fun request ->
      if roundtrip_request request <> request then
        Alcotest.failf "request did not round-trip: %s"
          (Obs.Json.to_string (Service.Protocol.request_to_json request)))
    requests;
  let responses =
    [
      Service.Protocol.Ok_response
        {
          output = "table\n";
          diagnostics = "solver: ...\n";
          data = Obs.Json.Obj [ ("k", Obs.Json.Num 1.0) ];
        };
      Service.Protocol.Error_response { code = 2; message = "error: no\nhint: yes\n" };
    ]
  in
  List.iter
    (fun response ->
      if
        Service.Protocol.response_of_json (Service.Protocol.response_to_json response)
        <> response
      then Alcotest.fail "response did not round-trip")
    responses

let test_protocol_rejects () =
  Alcotest.check_raises "unknown verb"
    (Service.Protocol.Protocol_error "unknown verb frobnicate") (fun () ->
      ignore
        (Service.Protocol.request_of_json
           (Obs.Json.Obj [ ("verb", Obs.Json.Str "frobnicate") ])));
  (match Service.Protocol.method_of_string "sor:2.5" with
  | exception Service.Protocol.Protocol_error _ -> ()
  | _ -> Alcotest.fail "sor:2.5 accepted");
  Alcotest.(check bool) "sor omega parses" true
    (Service.Protocol.method_of_string "sor:0.8" = Some (Markov.Steady.Sor 0.8))

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)
(* ------------------------------------------------------------------ *)

let test_cache_lru () =
  let cache = Service.Cache.create ~capacity:2 () in
  let build v () = v in
  Alcotest.(check int) "miss a" 1 (fst (Service.Cache.find_or_create cache ~key:"a" (build 1)));
  Alcotest.(check int) "miss b" 2 (fst (Service.Cache.find_or_create cache ~key:"b" (build 2)));
  (* Touch a so b is the least recently used, then overflow. *)
  (match Service.Cache.find_or_create cache ~key:"a" (build 99) with
  | 1, `Hit -> ()
  | v, _ -> Alcotest.failf "expected cached a=1 hit, got %d" v);
  ignore (Service.Cache.find_or_create cache ~key:"c" (build 3));
  Alcotest.(check int) "capacity held" 2 (Service.Cache.length cache);
  (match Service.Cache.find_or_create cache ~key:"a" (build 99) with
  | 1, `Hit -> ()
  | _ -> Alcotest.fail "a should have survived the eviction");
  (match Service.Cache.find_or_create cache ~key:"b" (build 42) with
  | 42, `Miss -> ()
  | _ -> Alcotest.fail "b should have been evicted");
  let hits, misses, evictions = Service.Cache.counts cache in
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "misses" 4 misses;
  (* b evicted by c, then c evicted when b was rebuilt. *)
  Alcotest.(check int) "evictions" 2 evictions

(* ------------------------------------------------------------------ *)
(* Engine: the staged model cache                                      *)
(* ------------------------------------------------------------------ *)

let stage_names (outcome : Service.Engine.outcome) = List.map fst outcome.Service.Engine.stages

let test_engine_stage_cache () =
  let engine = Service.Engine.create () in
  let source = mm1k () in
  let request = solve_request ~name:"mm1k.pepa" source in
  let first = Service.Engine.handle engine request in
  Alcotest.(check (list string))
    "cold run times every stage"
    [ "parse"; "compile"; "derive"; "solve" ]
    (stage_names first);
  let second = Service.Engine.handle engine request in
  Alcotest.(check (list string)) "repeat run times nothing" [] (stage_names second);
  Alcotest.(check bool) "responses identical" true
    (first.Service.Engine.response = second.Service.Engine.response);
  (* Changing only the method keeps parse/compile/derive cached. *)
  let direct =
    solve_request
      ~options:{ default with Service.Protocol.method_ = Some Markov.Steady.Direct }
      ~name:"mm1k.pepa" source
  in
  Alcotest.(check (list string))
    "method change re-runs only the solve" [ "solve" ]
    (stage_names (Service.Engine.handle engine direct));
  (* Changing the source is a different content hash: everything runs. *)
  let touched = solve_request ~name:"mm1k.pepa" (source ^ "\n% touched\n") in
  Alcotest.(check (list string))
    "source change re-runs everything"
    [ "parse"; "compile"; "derive"; "solve" ]
    (stage_names (Service.Engine.handle engine touched))

let test_engine_solve_matches_workbench () =
  let engine = Service.Engine.create () in
  let source = mm1k () in
  let output =
    response_output
      (Service.Engine.handle engine (solve_request ~name:"mm1k.pepa" source)).Service.Engine.response
  in
  let direct = Choreographer.Workbench.analyse_pepa_string ~name:"mm1k.pepa" source in
  Alcotest.(check string)
    "engine output = Render of a direct analysis"
    (Choreographer.Render.pepa_solve direct)
    output

let test_engine_query () =
  let engine = Service.Engine.create () in
  let source = mm1k () in
  let request =
    Service.Protocol.Query
      {
        kind = Service.Protocol.Pepa;
        name = "mm1k.pepa";
        source;
        query = "throughput(serve)";
        options = default;
      }
  in
  let output = response_output (Service.Engine.handle engine request).Service.Engine.response in
  let direct = Choreographer.Workbench.analyse_pepa_string ~name:"mm1k.pepa" source in
  let expected =
    Printf.sprintf "%.10g\n"
      (Choreographer.Query.eval_string
         (Choreographer.Query.context_of_pepa direct)
         "throughput(serve)")
  in
  Alcotest.(check string) "query value" expected output

let test_engine_error_contract () =
  let engine = Service.Engine.create () in
  let outcome =
    Service.Engine.handle engine (solve_request ~name:"bad.pepa" "P = (a, 1.0).Q;\nsystem P;")
  in
  match outcome.Service.Engine.response with
  | Service.Protocol.Error_response { code; message } ->
      Alcotest.(check int) "model error code" Service.Errors.model_error_code code;
      let expected =
        match
          Choreographer.Workbench.analyse_pepa_string ~name:"bad.pepa"
            "P = (a, 1.0).Q;\nsystem P;"
        with
        | exception Choreographer.Workbench.Analysis_error msg ->
            Printf.sprintf "error: %s\n" msg
        | _ -> Alcotest.fail "expected the model to be invalid"
      in
      Alcotest.(check string) "CLI stderr bytes" expected message
  | Service.Protocol.Ok_response _ -> Alcotest.fail "expected an error response"

(* ------------------------------------------------------------------ *)
(* Ingest                                                              *)
(* ------------------------------------------------------------------ *)

let test_ingest () =
  (match Choreographer.Ingest.document_of_string ~name:"d.xmi" "<unclosed" with
  | Error msg ->
      Alcotest.(check bool) "XML error labelled" true
        (String.length msg > 5 && String.sub msg 0 5 = "d.xmi")
  | Ok _ -> Alcotest.fail "malformed XML accepted");
  (match Choreographer.Ingest.rates_of_string ~name:"r.rates" "not a rate line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed rates accepted");
  (match Choreographer.Ingest.rates_of_file None with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "omitted rates file rejected: %s" msg);
  match Choreographer.Ingest.document_of_file (asset "pda.uml") with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let test_sweep_warm_equals_cold () =
  let model = Choreographer.Workbench.parse_pepa ~name:"mm1k.pepa" (mm1k ()) in
  let axes =
    [ { Service.Protocol.target = `Rate "arrive"; values = [ 1.0; 1.5; 2.0; 2.5 ] } ]
  in
  let run warm_start =
    Service.Sweep.run ~name:"mm1k.pepa" ~model ~options:default ~axes
      ~backend:Service.Protocol.Exact ~warm_start
  in
  let warm = run true and cold = run false in
  Alcotest.(check int) "same grid" (List.length cold.Service.Sweep.points)
    (List.length warm.Service.Sweep.points);
  List.iteri
    (fun i (w : Service.Sweep.point) ->
      let c = List.nth cold.Service.Sweep.points i in
      Alcotest.(check bool)
        (Printf.sprintf "point %d warm flag" i)
        (i > 0) w.Service.Sweep.warm;
      Alcotest.(check bool) "cold never warm" false c.Service.Sweep.warm;
      List.iter2
        (fun (wa, wv) (ca, cv) ->
          Alcotest.(check string) "same action" ca wa;
          if abs_float (wv -. cv) > 1e-10 then
            Alcotest.failf "point %d %s: warm %.15g vs cold %.15g" i wa wv cv)
        w.Service.Sweep.throughputs c.Service.Sweep.throughputs)
    warm.Service.Sweep.points

let test_sweep_axis_validation () =
  let model = Choreographer.Workbench.parse_pepa ~name:"mm1k.pepa" (mm1k ()) in
  let axes = [ { Service.Protocol.target = `Rate "no_such_rate"; values = [ 1.0 ] } ] in
  match
    Service.Sweep.run ~name:"mm1k.pepa" ~model ~options:default ~axes
      ~backend:Service.Protocol.Exact ~warm_start:true
  with
  | exception Choreographer.Workbench.Analysis_error msg ->
      Alcotest.(check bool) "names the axis" true
        (has_infix "no_such_rate" msg)
  | _ -> Alcotest.fail "unknown axis accepted"

(* ------------------------------------------------------------------ *)
(* Live daemon over a Unix socket                                      *)
(* ------------------------------------------------------------------ *)

let with_server ?(workers = 2) f =
  let socket_path = Filename.temp_file "choreographerd" ".sock" in
  let ledger = Filename.temp_file "choreographerd" ".jsonl" in
  Sys.remove ledger;
  let config =
    {
      Service.Server.socket_path;
      tcp = None;
      workers;
      cache_capacity = 8;
      ledger = Some ledger;
    }
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Service.Server.run ~on_ready:(fun () -> Atomic.set ready true) config)
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  if not (Atomic.get ready) then Alcotest.fail "server did not come up";
  Fun.protect
    ~finally:(fun () ->
      (try
         let conn = Service.Client.connect ~socket:socket_path () in
         ignore (Service.Client.request conn Service.Protocol.Shutdown);
         Service.Client.close conn
       with Service.Client.Connection_error _ -> ());
      Domain.join server;
      if Sys.file_exists ledger then Sys.remove ledger)
    (fun () -> f ~socket:socket_path ~ledger)

let request_over socket request =
  let conn = Service.Client.connect ~socket () in
  Fun.protect
    ~finally:(fun () -> Service.Client.close conn)
    (fun () -> Service.Client.request conn request)

let test_daemon_solve_byte_identical () =
  let source = mm1k () in
  let direct = Choreographer.Workbench.analyse_pepa_string ~name:"mm1k.pepa" source in
  let expected = Choreographer.Render.pepa_solve direct in
  with_server (fun ~socket ~ledger ->
      let request = solve_request ~name:"mm1k.pepa" source in
      (match request_over socket request with
      | Service.Protocol.Ok_response { output; diagnostics; _ } ->
          Alcotest.(check string) "stdout bytes" expected output;
          Alcotest.(check bool) "solver diagnostics line" true
            (has_prefix "solver: method=" diagnostics)
      | Service.Protocol.Error_response { message; _ } -> Alcotest.fail message);
      (* The repeat is served from cache — and still byte-identical. *)
      Alcotest.(check string) "repeat bytes" expected
        (response_output (request_over socket request));
      (match request_over socket Service.Protocol.Stats with
      | Service.Protocol.Ok_response { data; _ } ->
          let n field =
            Option.bind (Obs.Json.member "cache" data) (Obs.Json.member field)
            |> Fun.flip Option.bind Obs.Json.to_float
            |> Option.value ~default:(-1.0)
          in
          Alcotest.(check bool) "a cache hit was counted" true (n "hits" >= 1.0);
          Alcotest.(check bool) "one model cached" true (n "entries" = 1.0)
      | Service.Protocol.Error_response { message; _ } -> Alcotest.fail message);
      (* One ledger record per request, with explicit stage timings on
         the cold solve and none on the cached repeat. *)
      let records = Obs.Ledger.load ~path:ledger in
      let solves =
        List.filter
          (fun (r : Obs.Ledger.record) -> r.Obs.Ledger.tool = "choreographerd solve")
          records
      in
      match solves with
      | [ cold; cached ] ->
          Alcotest.(check bool) "cold run recorded stages" true
            (List.mem_assoc "solve" cold.Obs.Ledger.stages);
          Alcotest.(check (list (pair string (float 0.0))))
            "cached run skipped every stage" [] cached.Obs.Ledger.stages;
          Alcotest.(check bool) "model hash recorded" true
            (String.length cold.Obs.Ledger.model_hash = 32)
      | _ -> Alcotest.failf "expected 2 solve records, found %d" (List.length solves))

let test_daemon_concurrent_clients () =
  let source = mm1k () in
  let variant rate =
    replace_once "arrive = 2.0;" (Printf.sprintf "arrive = %.1f;" rate) source
  in
  let rates = [ 0.5; 1.0; 1.5; 2.5 ] in
  let expected =
    List.map
      (fun r ->
        Choreographer.Render.pepa_solve
          (Choreographer.Workbench.analyse_pepa_string ~name:"mm1k.pepa" (variant r)))
      rates
  in
  with_server ~workers:4 (fun ~socket ~ledger:_ ->
      let clients =
        List.map
          (fun r ->
            Domain.spawn (fun () ->
                response_output
                  (request_over socket (solve_request ~name:"mm1k.pepa" (variant r)))))
          rates
      in
      let outputs = List.map Domain.join clients in
      List.iteri
        (fun i (want, got) ->
          Alcotest.(check string) (Printf.sprintf "client %d deterministic" i) want got)
        (List.combine expected outputs))

let test_daemon_error_and_codes () =
  with_server (fun ~socket ~ledger:_ ->
      (match request_over socket (solve_request ~name:"bad.pepa" "P = nonsense") with
      | Service.Protocol.Error_response { code; message } ->
          Alcotest.(check int) "parse error exits 1" 1 code;
          Alcotest.(check bool) "error: prefix" true
            (has_prefix "error: " message)
      | Service.Protocol.Ok_response _ -> Alcotest.fail "garbage model accepted");
      (* A net-only feature on a PEPA request: sweep rejects nets. *)
      match
        request_over socket
          (Service.Protocol.Sweep
             {
               kind = Service.Protocol.Net;
               name = "x.pepanet";
               source = "...";
               options = default;
               axes = [ { Service.Protocol.target = `Rate "r"; values = [ 1.0 ] } ];
               backend = Service.Protocol.Exact;
               warm_start = true;
             })
      with
      | Service.Protocol.Error_response { code; message = _ } ->
          Alcotest.(check int) "analysis failure code" 2 code
      | Service.Protocol.Ok_response _ -> Alcotest.fail "net sweep accepted")

let test_daemon_http_metrics () =
  with_server (fun ~socket ~ledger:_ ->
      ignore (response_output (request_over socket (solve_request ~name:"mm1k.pepa" (mm1k ()))));
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let http_request = "GET /metrics HTTP/1.0\r\nHost: daemon\r\n\r\n" in
      assert (
        Unix.write_substring fd http_request 0 (String.length http_request)
        = String.length http_request);
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
      in
      drain ();
      Unix.close fd;
      let body = Buffer.contents buf in
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (has_infix needle body))
        [
          "200 OK";
          "choreographer_requests_total";
          "choreographer_cache_misses_total";
          "choreographer_cache_stage_hits_total";
        ])

let test_daemon_sweep_and_shutdown () =
  with_server (fun ~socket ~ledger:_ ->
      let sweep =
        Service.Protocol.Sweep
          {
            kind = Service.Protocol.Pepa;
            name = "mm1k.pepa";
            source = mm1k ();
            options = default;
            axes = [ { Service.Protocol.target = `Rate "arrive"; values = [ 1.0; 2.0; 3.0 ] } ];
            backend = Service.Protocol.Exact;
            warm_start = true;
          }
      in
      (match request_over socket sweep with
      | Service.Protocol.Ok_response { data; _ } ->
          let points =
            Option.value ~default:Obs.Json.Null (Obs.Json.member "points" data)
          in
          Alcotest.(check int) "grid size" 3 (List.length (Obs.Json.to_list points))
      | Service.Protocol.Error_response { message; _ } -> Alcotest.fail message);
      (* Clean shutdown: acknowledged, then the socket goes away. *)
      (match request_over socket Service.Protocol.Shutdown with
      | Service.Protocol.Ok_response _ -> ()
      | Service.Protocol.Error_response { message; _ } -> Alcotest.fail message);
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec gone () =
        match Service.Client.connect ~socket () with
        | conn ->
            Service.Client.close conn;
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "daemon still accepting after shutdown"
            else begin
              Unix.sleepf 0.05;
              gone ()
            end
        | exception Service.Client.Connection_error _ -> ()
      in
      gone ())

let suite =
  [
    Alcotest.test_case "frame round trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame length codec" `Quick test_frame_length_codec;
    Alcotest.test_case "frame truncated" `Quick test_frame_truncated;
    Alcotest.test_case "frame oversized and HTTP sniff" `Quick test_frame_oversized;
    Alcotest.test_case "protocol round trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol rejects" `Quick test_protocol_rejects;
    Alcotest.test_case "cache LRU" `Quick test_cache_lru;
    Alcotest.test_case "engine stage cache" `Quick test_engine_stage_cache;
    Alcotest.test_case "engine solve = workbench" `Quick test_engine_solve_matches_workbench;
    Alcotest.test_case "engine query" `Quick test_engine_query;
    Alcotest.test_case "engine error contract" `Quick test_engine_error_contract;
    Alcotest.test_case "ingest" `Quick test_ingest;
    Alcotest.test_case "sweep warm = cold" `Quick test_sweep_warm_equals_cold;
    Alcotest.test_case "sweep axis validation" `Quick test_sweep_axis_validation;
    Alcotest.test_case "daemon solve byte-identical" `Quick test_daemon_solve_byte_identical;
    Alcotest.test_case "daemon concurrent clients" `Quick test_daemon_concurrent_clients;
    Alcotest.test_case "daemon error codes" `Quick test_daemon_error_and_codes;
    Alcotest.test_case "daemon /metrics" `Quick test_daemon_http_metrics;
    Alcotest.test_case "daemon sweep and shutdown" `Quick test_daemon_sweep_and_shutdown;
  ]
