(* Command-line plumbing shared by the Choreographer and Workbench
   front ends: the steady-state method converter and the telemetry
   flags (--log-level, --trace, --metrics). *)

open Cmdliner

let method_conv =
  let parse = function
    | "direct" -> Ok (Some Markov.Steady.Direct)
    | "jacobi" -> Ok (Some Markov.Steady.Jacobi)
    | "gauss-seidel" | "gs" -> Ok (Some Markov.Steady.Gauss_seidel)
    | "power" -> Ok (Some Markov.Steady.Power)
    | "auto" -> Ok None
    | other -> (
        (* "sor" or "sor:<omega>", omega in (0, 2); plain "sor" uses a
           mild over-relaxation. *)
        match String.split_on_char ':' other with
        | [ "sor" ] -> Ok (Some (Markov.Steady.Sor 1.2))
        | [ "sor"; omega ] -> (
            match float_of_string_opt omega with
            | Some w when w > 0.0 && w < 2.0 -> Ok (Some (Markov.Steady.Sor w))
            | Some _ | None ->
                Error (`Msg (Printf.sprintf "SOR relaxation %s outside (0, 2)" omega)))
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown method %s (valid: auto, direct, jacobi, gauss-seidel, \
                    sor[:omega], power)"
                   other)))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with None -> "auto" | Some m -> Markov.Steady.method_name m)
  in
  Arg.conv (parse, print)

let method_arg =
  Arg.(
    value
    & opt method_conv None
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"Steady-state method: auto, direct, jacobi, gauss-seidel, sor[:omega] or power.")

let aggregate_conv =
  let parse s =
    match Markov.Lump.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown aggregation mode %s (valid: none, symmetry, lump, both)"
               s))
  in
  let print fmt m = Format.pp_print_string fmt (Markov.Lump.mode_to_string m) in
  Arg.conv (parse, print)

let aggregate_arg =
  Arg.(
    value
    & opt aggregate_conv Markov.Lump.No_agg
    & info [ "aggregate" ] ~docv:"MODE"
        ~doc:
          "Aggregation before the solve: $(b,none), $(b,symmetry) (collapse \
           permutation-equivalent states of replicated components while exploring), \
           $(b,lump) (solve the ordinarily-lumped quotient chain and disaggregate) or \
           $(b,both).  Every mode reports exactly the same measures: lumping only \
           merges states within one symmetry orbit or with identical local-state \
           labels, so aggregation only shrinks the chain the solver sees.")

(* ------------------------------------------------------------------ *)
(* Fluid approximation                                                 *)
(* ------------------------------------------------------------------ *)

let fluid_conv =
  let parse s =
    let bad () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid fluid tolerances %s (valid: RTOL or RTOL,ATOL with both positive, \
              e.g. 1e-8 or 1e-8,1e-12)"
             s))
    in
    let positive v = match float_of_string_opt v with Some f when f > 0.0 -> Some f | _ -> None in
    match String.split_on_char ',' s with
    | [ rtol ] -> (
        match positive rtol with
        | Some r -> Ok { Fluid.Rk45.default_tolerances with Fluid.Rk45.rtol = r }
        | None -> bad ())
    | [ rtol; atol ] -> (
        match (positive rtol, positive atol) with
        | Some r, Some a -> Ok { Fluid.Rk45.rtol = r; atol = a }
        | _ -> bad ())
    | _ -> bad ()
  in
  let print fmt t =
    Format.fprintf fmt "%g,%g" t.Fluid.Rk45.rtol t.Fluid.Rk45.atol
  in
  Arg.conv (parse, print)

let fluid_arg =
  Arg.(
    value
    & opt ~vopt:(Some Fluid.Rk45.default_tolerances) (some fluid_conv) None
    & info [ "fluid" ] ~docv:"RTOL[,ATOL]"
        ~doc:
          "Solve PEPA models by the fluid-flow ODE approximation (numerical vector form + \
           adaptive RK45) instead of a discrete solve, at a cost independent of replica \
           counts.  The optional value sets the integrator's relative (and absolute) \
           local-error tolerances, default $(b,1e-8,1e-12).  Results are the \
           deterministic population limit — asymptotically exact as populations grow, \
           not an exact solve — and are labelled as approximations everywhere they are \
           reported.  Models with passive cooperation have no fluid interpretation.")

(* ------------------------------------------------------------------ *)
(* Parallel execution                                                  *)
(* ------------------------------------------------------------------ *)

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ | None ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid job count %s (valid: 1 for the sequential solver, N >= 2 for N \
                domains, 0 to auto-detect)"
               s))
  in
  let print fmt n = Format.pp_print_int fmt n in
  Arg.conv (parse, print)

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of domains (OS threads) for state-space exploration, CSR assembly and \
           the parallel iterative solvers.  $(b,1) (the default) keeps every phase on \
           the exact sequential path; $(b,0) auto-detects the machine's core count.  \
           Results are deterministic at any job count: state numbering and transition \
           order are identical to the sequential run, and steady-state probabilities \
           agree to within the solver tolerance.")

let print_fluid_stats (stats : Fluid.Rk45.stats) =
  Printf.eprintf
    "fluid: steps=%d rejected=%d evaluations=%d t_end=%g dx_norm=%.3e\n%!"
    stats.Fluid.Rk45.steps stats.Fluid.Rk45.rejected stats.Fluid.Rk45.evaluations
    stats.Fluid.Rk45.t_end stats.Fluid.Rk45.dx_norm

(* ------------------------------------------------------------------ *)
(* Telemetry flags                                                     *)
(* ------------------------------------------------------------------ *)

let level_conv =
  let parse s =
    match Obs.Config.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown log level %s (quiet|info|debug)" s))
  in
  let print fmt l = Format.pp_print_string fmt (Obs.Config.level_to_string l) in
  Arg.conv (parse, print)

let log_level_arg =
  Arg.(
    value
    & opt (some level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Diagnostic verbosity: quiet, info or debug.  info and above echo closing \
              tracing spans and progress to stderr.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON file of the run (open in chrome://tracing \
              or Perfetto).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write collected metrics (counters, histograms, residual trajectory) as \
              JSON.")

(* Configure the process-global telemetry state.  File writers run
   [at_exit] so traces survive error exits too. *)
let setup_telemetry level trace metrics =
  (match level with Some l -> Obs.Config.set_level l | None -> ());
  if level <> None || trace <> None || metrics <> None then Obs.Config.enable ();
  if Obs.Config.at_least Obs.Config.Info then Obs.Sink.install_stderr ();
  (match trace with
  | Some path -> at_exit (fun () -> Obs.Sink.write_chrome_trace ~path)
  | None -> ());
  match metrics with
  | Some path -> at_exit (fun () -> Obs.Sink.write_metrics ~path)
  | None -> ()

(* Shared per-process setup: telemetry sinks plus the domain-pool
   default.  Evaluates to the resolved job count ([--jobs 0] becomes
   the detected core count) so subcommands can also thread it
   explicitly where an API takes [?jobs]. *)
let setup level trace metrics jobs =
  setup_telemetry level trace metrics;
  let jobs = Par.resolve jobs in
  Par.set_jobs jobs;
  jobs

let telemetry_term =
  Term.(const setup $ log_level_arg $ trace_arg $ metrics_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* Solver diagnostics                                                  *)
(* ------------------------------------------------------------------ *)

let print_solver_stats () =
  match Markov.Steady.last_stats () with
  | Some { Markov.Steady.method_used; iterations; residual } ->
      Printf.eprintf "solver: method=%s iterations=%d residual=%.3e\n%!"
        (Markov.Steady.method_name method_used)
        iterations residual
  | None -> ()

(* Non-convergence is distinguished from ordinary model errors (exit 1)
   so scripted callers can retry with another method or more
   iterations. *)
let exit_did_not_converge = 2

let report_did_not_converge ~method_used ~iterations ~residual =
  Printf.eprintf "error: %s solver did not converge after %d iterations (residual %g)\n%!"
    (Markov.Steady.method_name method_used)
    iterations residual;
  exit exit_did_not_converge

(* Invalid option values (unknown --method, --aggregate, --fluid forms,
   ...) exit 2 rather than cmdliner's default 124, so scripts can treat
   "the request was wrong" uniformly.  The converters above enumerate
   the valid choices in their error messages. *)
let eval_cli ?argv cmd =
  match Cmdliner.Cmd.eval_value ?argv cmd with
  | Ok (`Ok ()) | Ok `Version | Ok `Help -> 0
  | Error (`Parse | `Term) -> 2
  | Error `Exn -> 125

let report_did_not_reach_steady ~steps ~t ~dx_norm =
  Printf.eprintf
    "error: fluid integration did not reach steady state after %d steps (t=%g, \
     derivative norm %g)\n\
     %!"
    steps t dx_norm;
  exit exit_did_not_converge
