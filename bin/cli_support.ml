(* Command-line plumbing shared by the Choreographer and Workbench
   front ends: the steady-state method converter and the telemetry
   flags (--log-level, --trace, --metrics). *)

open Cmdliner

let method_conv =
  let parse = function
    | "direct" -> Ok (Some Markov.Steady.Direct)
    | "jacobi" -> Ok (Some Markov.Steady.Jacobi)
    | "gauss-seidel" | "gs" -> Ok (Some Markov.Steady.Gauss_seidel)
    | "power" -> Ok (Some Markov.Steady.Power)
    | "auto" -> Ok None
    | other -> (
        (* "sor" or "sor:<omega>", omega in (0, 2); plain "sor" uses a
           mild over-relaxation. *)
        match String.split_on_char ':' other with
        | [ "sor" ] -> Ok (Some (Markov.Steady.Sor 1.2))
        | [ "sor"; omega ] -> (
            match float_of_string_opt omega with
            | Some w when w > 0.0 && w < 2.0 -> Ok (Some (Markov.Steady.Sor w))
            | Some _ | None ->
                Error (`Msg (Printf.sprintf "SOR relaxation %s outside (0, 2)" omega)))
        | _ -> Error (`Msg (Printf.sprintf "unknown method %s" other)))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with None -> "auto" | Some m -> Markov.Steady.method_name m)
  in
  Arg.conv (parse, print)

let method_arg =
  Arg.(
    value
    & opt method_conv None
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"Steady-state method: auto, direct, jacobi, gauss-seidel, sor[:omega] or power.")

let aggregate_conv =
  let parse s =
    match Markov.Lump.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error (`Msg (Printf.sprintf "unknown aggregation mode %s (none|symmetry|lump|both)" s))
  in
  let print fmt m = Format.pp_print_string fmt (Markov.Lump.mode_to_string m) in
  Arg.conv (parse, print)

let aggregate_arg =
  Arg.(
    value
    & opt aggregate_conv Markov.Lump.No_agg
    & info [ "aggregate" ] ~docv:"MODE"
        ~doc:
          "Aggregation before the solve: $(b,none), $(b,symmetry) (collapse \
           permutation-equivalent states of replicated components while exploring), \
           $(b,lump) (solve the ordinarily-lumped quotient chain and disaggregate) or \
           $(b,both).  Every mode reports exactly the same measures: lumping only \
           merges states within one symmetry orbit or with identical local-state \
           labels, so aggregation only shrinks the chain the solver sees.")

(* ------------------------------------------------------------------ *)
(* Telemetry flags                                                     *)
(* ------------------------------------------------------------------ *)

let level_conv =
  let parse s =
    match Obs.Config.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown log level %s (quiet|info|debug)" s))
  in
  let print fmt l = Format.pp_print_string fmt (Obs.Config.level_to_string l) in
  Arg.conv (parse, print)

let log_level_arg =
  Arg.(
    value
    & opt (some level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Diagnostic verbosity: quiet, info or debug.  info and above echo closing \
              tracing spans and progress to stderr.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON file of the run (open in chrome://tracing \
              or Perfetto).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write collected metrics (counters, histograms, residual trajectory) as \
              JSON.")

(* Configure the process-global telemetry state.  File writers run
   [at_exit] so traces survive error exits too. *)
let setup_telemetry level trace metrics =
  (match level with Some l -> Obs.Config.set_level l | None -> ());
  if level <> None || trace <> None || metrics <> None then Obs.Config.enable ();
  if Obs.Config.at_least Obs.Config.Info then Obs.Sink.install_stderr ();
  (match trace with
  | Some path -> at_exit (fun () -> Obs.Sink.write_chrome_trace ~path)
  | None -> ());
  match metrics with
  | Some path -> at_exit (fun () -> Obs.Sink.write_metrics ~path)
  | None -> ()

let telemetry_term =
  Term.(const setup_telemetry $ log_level_arg $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* Solver diagnostics                                                  *)
(* ------------------------------------------------------------------ *)

let print_solver_stats () =
  match Markov.Steady.last_stats () with
  | Some { Markov.Steady.method_used; iterations; residual } ->
      Printf.eprintf "solver: method=%s iterations=%d residual=%.3e\n%!"
        (Markov.Steady.method_name method_used)
        iterations residual
  | None -> ()

(* Non-convergence is distinguished from ordinary model errors (exit 1)
   so scripted callers can retry with another method or more
   iterations. *)
let exit_did_not_converge = 2

let report_did_not_converge ~method_used ~iterations ~residual =
  Printf.eprintf "error: %s solver did not converge after %d iterations (residual %g)\n%!"
    (Markov.Steady.method_name method_used)
    iterations residual;
  exit exit_did_not_converge
