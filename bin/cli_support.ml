(* Command-line plumbing shared by the Choreographer and Workbench
   front ends: the steady-state method converter and the telemetry
   flags (--log-level, --trace, --metrics). *)

open Cmdliner

let method_conv =
  let parse = function
    | "direct" -> Ok (Some Markov.Steady.Direct)
    | "jacobi" -> Ok (Some Markov.Steady.Jacobi)
    | "gauss-seidel" | "gs" -> Ok (Some Markov.Steady.Gauss_seidel)
    | "power" -> Ok (Some Markov.Steady.Power)
    | "bicgstab" -> Ok (Some Markov.Steady.Bicgstab)
    | "auto" -> Ok None
    | other -> (
        (* "sor" or "sor:<omega>", omega in (0, 2); plain "sor" uses a
           mild over-relaxation. *)
        match String.split_on_char ':' other with
        | [ "sor" ] -> Ok (Some (Markov.Steady.Sor 1.2))
        | [ "sor"; omega ] -> (
            match float_of_string_opt omega with
            | Some w when w > 0.0 && w < 2.0 -> Ok (Some (Markov.Steady.Sor w))
            | Some _ | None ->
                Error (`Msg (Printf.sprintf "SOR relaxation %s outside (0, 2)" omega)))
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown method %s (valid: auto, direct, jacobi, gauss-seidel, \
                    sor[:omega], power, bicgstab)"
                   other)))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with None -> "auto" | Some m -> Markov.Steady.method_name m)
  in
  Arg.conv (parse, print)

let method_arg =
  Arg.(
    value
    & opt method_conv None
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:
          "Steady-state method: auto, direct, jacobi, gauss-seidel, sor[:omega], power or \
           bicgstab (preconditioned Krylov iteration — usually the fastest exact method \
           on large chains).")

let aggregate_conv =
  let parse s =
    match Markov.Lump.mode_of_string s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown aggregation mode %s (valid: none, symmetry, lump, both)"
               s))
  in
  let print fmt m = Format.pp_print_string fmt (Markov.Lump.mode_to_string m) in
  Arg.conv (parse, print)

let aggregate_arg =
  Arg.(
    value
    & opt aggregate_conv Markov.Lump.No_agg
    & info [ "aggregate" ] ~docv:"MODE"
        ~doc:
          "Aggregation before the solve: $(b,none), $(b,symmetry) (collapse \
           permutation-equivalent states of replicated components while exploring), \
           $(b,lump) (solve the ordinarily-lumped quotient chain and disaggregate) or \
           $(b,both).  Every mode reports exactly the same measures: lumping only \
           merges states within one symmetry orbit or with identical local-state \
           labels, so aggregation only shrinks the chain the solver sees.")

(* ------------------------------------------------------------------ *)
(* Fluid approximation                                                 *)
(* ------------------------------------------------------------------ *)

let fluid_conv =
  let parse s =
    let bad () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid fluid tolerances %s (valid: RTOL or RTOL,ATOL with both positive, \
              e.g. 1e-8 or 1e-8,1e-12)"
             s))
    in
    let positive v = match float_of_string_opt v with Some f when f > 0.0 -> Some f | _ -> None in
    match String.split_on_char ',' s with
    | [ rtol ] -> (
        match positive rtol with
        | Some r -> Ok { Fluid.Rk45.default_tolerances with Fluid.Rk45.rtol = r }
        | None -> bad ())
    | [ rtol; atol ] -> (
        match (positive rtol, positive atol) with
        | Some r, Some a -> Ok { Fluid.Rk45.rtol = r; atol = a }
        | _ -> bad ())
    | _ -> bad ()
  in
  let print fmt t =
    Format.fprintf fmt "%g,%g" t.Fluid.Rk45.rtol t.Fluid.Rk45.atol
  in
  Arg.conv (parse, print)

let fluid_arg =
  Arg.(
    value
    & opt ~vopt:(Some Fluid.Rk45.default_tolerances) (some fluid_conv) None
    & info [ "fluid" ] ~docv:"RTOL[,ATOL]"
        ~doc:
          "Solve PEPA models and PEPA nets by the fluid-flow ODE approximation \
           (population model + adaptive RK45) instead of a discrete solve, at a cost \
           independent of replica and token counts.  The optional value sets the \
           integrator's relative (and absolute) local-error tolerances, default \
           $(b,1e-8,1e-12).  Results are the deterministic population limit — \
           asymptotically exact as populations grow, not an exact solve — and are \
           labelled as approximations everywhere they are reported.  Models with \
           passive cooperation, and nets with mixed transition priorities, have no \
           fluid interpretation.")

(* ------------------------------------------------------------------ *)
(* Parallel execution                                                  *)
(* ------------------------------------------------------------------ *)

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ | None ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid job count %s (valid: 1 for the sequential solver, N >= 2 for N \
                domains, 0 to auto-detect)"
               s))
  in
  let print fmt n = Format.pp_print_int fmt n in
  Arg.conv (parse, print)

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of domains (OS threads) for state-space exploration, CSR assembly and \
           the parallel iterative solvers.  $(b,1) (the default) keeps every phase on \
           the exact sequential path; $(b,0) auto-detects the machine's core count.  \
           Results are deterministic at any job count: state numbering and transition \
           order are identical to the sequential run, and steady-state probabilities \
           agree to within the solver tolerance.")

let print_fluid_stats (stats : Fluid.Rk45.stats) =
  Printf.eprintf "%s%!" (Choreographer.Render.fluid_stats_line stats)

(* ------------------------------------------------------------------ *)
(* Telemetry flags                                                     *)
(* ------------------------------------------------------------------ *)

let level_conv =
  let parse s =
    match Obs.Config.level_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown log level %s (quiet|info|debug)" s))
  in
  let print fmt l = Format.pp_print_string fmt (Obs.Config.level_to_string l) in
  Arg.conv (parse, print)

let log_level_arg =
  Arg.(
    value
    & opt (some level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Diagnostic verbosity: quiet, info or debug.  info and above echo closing \
              tracing spans and progress to stderr.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON file of the run (open in chrome://tracing \
              or Perfetto).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write collected metrics (counters, histograms, residual trajectory) as \
              JSON or Prometheus text (see $(b,--metrics-format)).")

let metrics_format_conv =
  let parse s =
    match Obs.Sink.metrics_format_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown metrics format %s (json|prom)" s))
  in
  let print fmt f =
    Format.pp_print_string fmt
      (match f with Obs.Sink.Json_format -> "json" | Obs.Sink.Prometheus_format -> "prom")
  in
  Arg.conv (parse, print)

let metrics_format_arg =
  Arg.(
    value
    & opt metrics_format_conv Obs.Sink.Json_format
    & info [ "metrics-format" ] ~docv:"FORMAT"
        ~doc:"Format of the $(b,--metrics) dump: $(b,json) (pretty-printed, the default) \
              or $(b,prom) (Prometheus exposition text format).")

let ledger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:"Append this run's flight record to FILE instead of the default ledger \
              (\\$CHOREOGRAPHER_LEDGER or ~/.choreographer/runs.jsonl).  Inspect it \
              with $(b,choreographer obs).")

let no_ledger_arg =
  Arg.(
    value & flag
    & info [ "no-ledger" ]
        ~doc:"Do not record this run in the ledger.  Setting the \
              \\$CHOREOGRAPHER_NO_LEDGER environment variable has the same effect \
              (used by the test suite).")

let positive_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0.0 -> Ok v
    | Some _ | None -> Error (`Msg (Printf.sprintf "%s %s is not a positive number" what s))
  in
  (parse, fun fmt v -> Format.fprintf fmt "%g" v)

let sample_arg =
  Arg.(
    value
    & opt ~vopt:(Some Obs.Sampler.default_interval_s)
        (some (conv (positive_float_conv "sampling interval")))
        None
    & info [ "sample" ] ~docv:"SECONDS"
        ~doc:"Run a background sampler domain during the command: every SECONDS \
              (default $(b,0.01)) it records heap size, GC counts, the live solver \
              residual and the exploration frontier as time series, which the metrics \
              dump, the HTML report and the Chrome trace then chart.")

(* ------------------------------------------------------------------ *)
(* Run ledger plumbing                                                 *)
(* ------------------------------------------------------------------ *)

(* The ledger records one JSON line per run.  [setup] decides the
   destination; subcommands that analyse a model call [arm_ledger] with
   their identity, and the [at_exit] hook appends the record — so error
   exits are recorded too, with the status the error reporters left in
   [run_status]. *)
let ledger_path : string option ref = ref None
let ledger_armed : (string * string * string * (string * string) list) option ref = ref None
let run_status = ref "ok"
let set_run_status s = run_status := s

let model_hash path =
  match Digest.to_hex (Digest.file path) with
  | hash -> hash
  | exception Sys_error _ -> ""

(* Option stringifiers for ledger records — the same normalised forms
   the daemon uses in cache keys and its own ledger records. *)
let method_string = Service.Protocol.method_to_string
let fluid_string = Service.Protocol.fluid_to_string

let arm_ledger ~tool ~model ~options =
  if !ledger_path <> None then begin
    let hash = if model = "-" then "" else model_hash model in
    ledger_armed := Some (tool, model, hash, options)
  end

let append_ledger () =
  match (!ledger_path, !ledger_armed) with
  | Some path, Some (tool, model, hash, options) -> (
      let record =
        Obs.Ledger.capture ~tool ~model ~model_hash:hash ~options ~exit_status:!run_status ()
      in
      let warn msg =
        Printf.eprintf "warning: could not append to ledger %s: %s\n%!" path msg
      in
      try Obs.Ledger.append ~path record with
      | Sys_error msg -> warn msg
      | Unix.Unix_error (e, _, _) -> warn (Unix.error_message e))
  | _ -> ()

(* Where the daemon should append its per-request records: the
   destination the telemetry flags resolved to, or [None] when
   recording is off.  The daemon never uses the [at_exit] capture
   path — it emits one record per served request instead. *)
let daemon_ledger_path () = !ledger_path

let ledger_disabled_by_env () =
  match Sys.getenv_opt "CHOREOGRAPHER_NO_LEDGER" with
  | Some "" | None -> false
  | Some _ -> true

(* Configure the process-global telemetry state.  File writers run
   [at_exit] so traces survive error exits too; [at_exit] runs hooks in
   reverse registration order, so the sampler (registered last) stops
   first and the sinks and the ledger see its final samples. *)
let setup_telemetry level trace metrics metrics_format ledger no_ledger sample =
  (match level with Some l -> Obs.Config.set_level l | None -> ());
  let ledger_on = (not no_ledger) && not (ledger_disabled_by_env ()) in
  if ledger_on then
    ledger_path :=
      Some (match ledger with Some p -> p | None -> Obs.Ledger.default_path ());
  if level <> None || trace <> None || metrics <> None || sample <> None || ledger_on then
    Obs.Config.enable ();
  if Obs.Config.at_least Obs.Config.Info then Obs.Sink.install_stderr ();
  at_exit append_ledger;
  (match trace with
  | Some path -> at_exit (fun () -> Obs.Sink.write_chrome_trace ~path)
  | None -> ());
  (match metrics with
  | Some path -> at_exit (fun () -> Obs.Sink.write_metrics ~format:metrics_format ~path ())
  | None -> ());
  match sample with
  | Some interval_s ->
      let sampler = Obs.Sampler.start ~interval_s () in
      at_exit (fun () -> Obs.Sampler.stop sampler)
  | None -> ()

(* Shared per-process setup: telemetry sinks plus the domain-pool
   default.  Evaluates to the resolved job count ([--jobs 0] becomes
   the detected core count) so subcommands can also thread it
   explicitly where an API takes [?jobs]. *)
let setup level trace metrics metrics_format ledger no_ledger sample jobs =
  setup_telemetry level trace metrics metrics_format ledger no_ledger sample;
  let jobs = Par.resolve jobs in
  Par.set_jobs jobs;
  jobs

let telemetry_term =
  Term.(
    const setup $ log_level_arg $ trace_arg $ metrics_arg $ metrics_format_arg $ ledger_arg
    $ no_ledger_arg $ sample_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* Solver diagnostics                                                  *)
(* ------------------------------------------------------------------ *)

let print_solver_stats () =
  match Markov.Steady.last_stats () with
  | Some stats -> Printf.eprintf "%s%!" (Choreographer.Render.solver_stats_line stats)
  | None -> ()

(* Non-convergence is distinguished from ordinary model errors (exit 1)
   so scripted callers can retry with another method or more
   iterations.  The renderings live in [Service.Errors] so the daemon
   ships the exact same bytes and exit codes over the wire. *)
let exit_did_not_converge = Service.Errors.analysis_failure_code

let report_rendered (r : Service.Errors.rendered) =
  Printf.eprintf "%s%!" r.Service.Errors.message;
  set_run_status r.Service.Errors.status;
  exit r.Service.Errors.code

let report_did_not_converge ~method_used ~iterations ~residual =
  report_rendered (Service.Errors.did_not_converge ~method_used ~iterations ~residual)

(* Invalid option values (unknown --method, --aggregate, --fluid forms,
   ...) exit 2 rather than cmdliner's default 124, so scripts can treat
   "the request was wrong" uniformly.  The converters above enumerate
   the valid choices in their error messages. *)
let eval_cli ?argv cmd =
  match Cmdliner.Cmd.eval_value ?argv cmd with
  | Ok (`Ok ()) | Ok `Version | Ok `Help -> 0
  | Error (`Parse | `Term) -> 2
  | Error `Exn -> 125

let report_did_not_reach_steady ~steps ~t ~dx_norm =
  report_rendered (Service.Errors.did_not_reach_steady ~steps ~t ~dx_norm)

let report_step_budget_exhausted ~steps ~t ~error_estimate =
  report_rendered (Service.Errors.step_budget_exhausted ~steps ~t ~error_estimate)
