(* choreographerd: the Choreographer analysis daemon.

   Serves the framed-JSON protocol of [Service.Protocol] on a
   Unix-domain socket (and optionally TCP), with a content-hash model
   cache so repeat solves skip every clean stage, and a live
   [GET /metrics] Prometheus endpoint on the same socket.  Talk to it
   with [choreographer client ...]. *)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string (Service.Server.default_socket_path ())
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (default: \\$CHOREOGRAPHER_SOCKET or \
              ~/.choreographer/daemon.sock).  An existing socket file is replaced.")

let tcp_conv =
  let parse s =
    let bad () =
      Error (`Msg (Printf.sprintf "invalid TCP address %s (expected PORT or HOST:PORT)" s))
    in
    match String.rindex_opt s ':' with
    | None -> (
        match int_of_string_opt s with
        | Some port when port > 0 && port < 65536 -> Ok ("127.0.0.1", port)
        | _ -> bad ())
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some port when port > 0 && port < 65536 && host <> "" -> Ok (host, port)
        | _ -> bad ())
  in
  let print fmt (host, port) = Format.fprintf fmt "%s:%d" host port in
  Arg.conv (parse, print)

let tcp_arg =
  Arg.(
    value
    & opt (some tcp_conv) None
    & info [ "tcp" ] ~docv:"[HOST:]PORT"
        ~doc:"Also listen on TCP (default host 127.0.0.1) for remote clients.")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"N"
        ~doc:"Connection-serving domains: how many clients are served concurrently \
              (sequential solves run right on their worker; solves asking for \
              $(b,--jobs) above 1 funnel through the main domain, which owns the \
              domain pools).")

let cache_arg =
  Arg.(
    value & opt int 32
    & info [ "cache" ] ~docv:"N"
        ~doc:"Models kept in the content-hash cache, least recently used evicted \
              first.  Each entry retains the compiled artefacts of every stage \
              already run for that model.")

let run jobs socket tcp workers cache =
  if workers < 1 then begin
    Printf.eprintf "error: --workers must be at least 1\n";
    exit 2
  end;
  if cache < 1 then begin
    Printf.eprintf "error: --cache must be at least 1\n";
    exit 2
  end;
  ignore (jobs : int);
  (* The per-request ledger honours the one-shot CLIs' switches: --ledger
     PATH redirects, --no-ledger (or CHOREOGRAPHER_NO_LEDGER) disables.
     Unlike the CLIs there is no at_exit capture — the server emits one
     record per request instead. *)
  let ledger = Cli_support.daemon_ledger_path () in
  let config =
    {
      Service.Server.socket_path = socket;
      tcp;
      workers;
      cache_capacity = cache;
      ledger;
    }
  in
  let on_ready () =
    Printf.printf "choreographerd listening on %s%s (pid %d)\n%!" socket
      (match tcp with
      | Some (host, port) -> Printf.sprintf " and %s:%d" host port
      | None -> "")
      (Unix.getpid ())
  in
  Service.Server.run ~on_ready config

let () =
  let doc = "the Choreographer analysis daemon" in
  let info = Cmd.info "choreographerd" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const run $ Cli_support.telemetry_term $ socket_arg $ tcp_arg $ workers_arg
      $ cache_arg)
  in
  exit (Cli_support.eval_cli (Cmd.v info term))
