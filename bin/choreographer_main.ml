(* The Choreographer design platform, command-line edition.

   Subcommands mirror the design of Figure 4 of the paper:
     pipeline   full extract -> solve -> reflect round trip on an XMI file
     extract    produce the intermediate .pepanet (and .rates) artefacts
     info       list the analysable diagrams of a document
     strip      run only the Poseidon preprocessor *)

open Cmdliner

(* Inputs may be XMI documents or the plain-text notation of
   [Uml.Diagram_text]; the sniffing and conversion live in
   [Choreographer.Ingest], shared with the daemon.  The messages it
   returns are the exact bytes this front end always printed. *)
let read_document path =
  match Choreographer.Ingest.document_of_file path with
  | Ok doc -> doc
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let load_rates rates_path =
  match Choreographer.Ingest.rates_of_file rates_path with
  | Ok rates -> rates
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let input_arg =
  Arg.(required & opt (some file) None & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input XMI file.")

let rates_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "r"; "rates" ] ~docv:"FILE" ~doc:"Rates file (activity = rate lines).")

let method_arg = Cli_support.method_arg

let absorb_arg =
  Arg.(
    value & flag
    & info [ "absorb" ]
        ~doc:
          "Keep terminating behaviour instead of cycling tokens back to their initial activity.")

let options_of ~jobs rates_path method_ absorb aggregate fluid =
  {
    Choreographer.Pipeline.default_options with
    rates = load_rates rates_path;
    method_;
    restart = (if absorb then `Absorb else `Cycle);
    aggregate;
    fluid;
    jobs = Some jobs;
  }

let handle_errors f =
  try f () with
  | Choreographer.Pipeline.Pipeline_error msg
  | Choreographer.Workbench.Analysis_error msg ->
      Cli_support.set_run_status ("error: " ^ msg);
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Markov.Steady.Did_not_converge { method_used; iterations; residual } ->
      Cli_support.report_did_not_converge ~method_used ~iterations ~residual
  | Fluid.Rk45.Did_not_reach_steady { steps; t; dx_norm } ->
      Cli_support.report_did_not_reach_steady ~steps ~t ~dx_norm
  | Fluid.Rk45.Step_budget_exhausted { steps; t; error_estimate } ->
      Cli_support.report_step_budget_exhausted ~steps ~t ~error_estimate

(* ------------------------------------------------------------------ *)

let pipeline_cmd =
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Reflected XMI output file.")
  in
  let xmltable_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "xmltable" ] ~docv:"FILE" ~doc:"Also write results as an .xmltable document.")
  in
  let html_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:"Also write a self-contained HTML report (the Figure 7 view).")
  in
  let run jobs input output rates_path method_ absorb aggregate fluid xmltable html =
    handle_errors (fun () ->
        let options = options_of ~jobs rates_path method_ absorb aggregate fluid in
        Cli_support.arm_ledger ~tool:"choreographer pipeline" ~model:input
          ~options:
            [
              ("jobs", string_of_int jobs);
              ("method", Cli_support.method_string method_);
              ("aggregate", Markov.Lump.mode_to_string aggregate);
              ("fluid", Cli_support.fluid_string fluid);
              ("absorb", string_of_bool absorb);
            ];
        let doc = read_document input in
        let outcome = Choreographer.Pipeline.process_document ~options doc in
        Cli_support.print_solver_stats ();
        Xml_kit.Minixml.write_file output outcome.Choreographer.Pipeline.reflected;
        List.iter
          (fun results -> print_string (Choreographer.Render.results results))
          outcome.Choreographer.Pipeline.results;
        (match xmltable with
        | Some path ->
            let tables =
              List.map Choreographer.Results.to_xmltable
                outcome.Choreographer.Pipeline.results
            in
            Xml_kit.Minixml.write_file path
              (Xml_kit.Minixml.Element ("resultsets", [], tables))
        | None -> ());
        (match html with
        | Some path -> Choreographer.Html_report.write ~path outcome
        | None -> ());
        Printf.printf "reflected model written to %s\n" output)
  in
  Cmd.v
    (Cmd.info "pipeline" ~doc:"Extract, analyse and reflect a UML model (the full tool chain).")
    Term.(
      const run $ Cli_support.telemetry_term $ input_arg $ output_arg $ rates_arg $ method_arg
      $ absorb_arg $ Cli_support.aggregate_arg $ Cli_support.fluid_arg $ xmltable_arg
      $ html_arg)

let extract_cmd =
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the extracted .pepanet model here (default: stdout).")
  in
  let rates_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "rates-out" ] ~docv:"FILE"
          ~doc:"Also write the resolved activity rates as a .rates file (the second \
                artefact of the paper's Figure 4).")
  in
  let run _jobs input rates_path absorb output rates_out =
    handle_errors (fun () ->
        let doc = Uml.Poseidon.strip (read_document input) in
        let rates = load_rates rates_path in
        let restart = if absorb then `Absorb else `Cycle in
        let activities = Uml.Xmi_read.activities_of_xml doc in
        if activities = [] then begin
          Printf.eprintf "error: no activity graph in %s\n" input;
          exit 1
        end;
        List.iter
          (fun diagram ->
            let extraction = Extract.Ad_to_pepanet.extract ~rates ~restart diagram in
            let text = Pepanet.Net_printer.net_to_string extraction.Extract.Ad_to_pepanet.net in
            (match output with
            | Some path ->
                let oc = open_out path in
                output_string oc text;
                close_out oc;
                Printf.printf "extracted %s to %s\n" diagram.Uml.Activity.diagram_name path
            | None -> print_string text);
            (match rates_out with
            | Some path ->
                (* Recover name = value bindings from the generated rate
                   definitions (r_<action> = v). *)
                let resolved =
                  List.filter_map
                    (fun def ->
                      match def with
                      | Pepa.Syntax.Rate_def (name, Pepa.Syntax.Rnum v)
                        when String.length name > 2 && String.sub name 0 2 = "r_" ->
                          Some (String.sub name 2 (String.length name - 2), v)
                      | _ -> None)
                    extraction.Extract.Ad_to_pepanet.net.Pepanet.Net.definitions
                in
                let book =
                  List.fold_left
                    (fun acc (name, v) -> Uml.Rates_file.add acc name v)
                    Uml.Rates_file.empty resolved
                in
                Out_channel.with_open_bin path (fun oc ->
                    Out_channel.output_string oc (Uml.Rates_file.to_string book));
                Printf.printf "rates written to %s\n" path
            | None -> ()))
          activities)
  in
  Cmd.v
    (Cmd.info "extract" ~doc:"Extract the PEPA net from an activity diagram (no analysis).")
    Term.(
      const run $ Cli_support.telemetry_term $ input_arg $ rates_arg $ absorb_arg $ output_arg
      $ rates_out_arg)

let info_cmd =
  let run _jobs input =
    let doc = Uml.Poseidon.strip (read_document input) in
    let activities = Uml.Xmi_read.activities_of_xml doc in
    let charts = Uml.Xmi_read.statecharts_of_xml doc in
    List.iter
      (fun (d : Uml.Activity.t) ->
        Printf.printf "activity diagram %s: %d nodes, %d objects, %d locations\n"
          d.Uml.Activity.diagram_name
          (List.length d.Uml.Activity.nodes)
          (List.length (Uml.Activity.object_names d))
          (List.length (Uml.Activity.locations d)))
      activities;
    List.iter
      (fun (c : Uml.Statechart.t) ->
        Printf.printf "state diagram %s: %d states, %d transitions\n" c.Uml.Statechart.chart_name
          (List.length c.Uml.Statechart.states)
          (List.length c.Uml.Statechart.transitions))
      charts;
    if activities = [] && charts = [] then Printf.printf "no analysable diagram found\n"
  in
  Cmd.v
    (Cmd.info "info" ~doc:"List the diagrams in an XMI document.")
    Term.(const run $ Cli_support.telemetry_term $ input_arg)

let strip_cmd =
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Stripped XMI output file.")
  in
  let run _jobs input output =
    let doc = read_document input in
    Xml_kit.Minixml.write_file output (Uml.Poseidon.strip doc);
    Printf.printf "metamodel-conformant XMI written to %s\n" output
  in
  Cmd.v
    (Cmd.info "strip" ~doc:"Run the Poseidon preprocessor only (remove tool-specific layout).")
    Term.(const run $ Cli_support.telemetry_term $ input_arg $ output_arg)

(* ------------------------------------------------------------------ *)
(* The flight recorder front end: inspect the run ledger.              *)
(* ------------------------------------------------------------------ *)

let obs_cmd =
  let ledger_file_arg =
    Arg.(
      value
      & opt string (Obs.Ledger.default_path ())
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:"Ledger to inspect (default: \\$CHOREOGRAPHER_LEDGER or \
                ~/.choreographer/runs.jsonl).")
  in
  let load path =
    match Obs.Ledger.load ~path with
    | [] ->
        Printf.eprintf "ledger %s has no records\n" path;
        exit 1
    | records -> Array.of_list records
    | exception Obs.Ledger.Format_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
  in
  (* Runs are addressed by position in the file; negative indices count
     from the end, so [-1] is always the latest run. *)
  let resolve records i =
    let n = Array.length records in
    let k = if i < 0 then n + i else i in
    if k < 0 || k >= n then begin
      Printf.eprintf "error: run %d out of range (the ledger has %d records)\n" i n;
      exit 1
    end;
    k
  in
  let timestamp_string t =
    let tm = Unix.localtime t in
    Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
  in
  let ms v = Printf.sprintf "%.3f" (1e3 *. v) in
  let opt_ms = function Some v -> ms v | None -> "-" in
  let list_cmd =
    let run path =
      let records = load path in
      print_string
        (Choreographer.Report.table
           ~header:[ "run"; "timestamp"; "tool"; "model"; "wall ms"; "exit" ]
           (List.mapi
              (fun i (r : Obs.Ledger.record) ->
                [
                  string_of_int i;
                  timestamp_string r.Obs.Ledger.timestamp;
                  r.Obs.Ledger.tool;
                  r.Obs.Ledger.model;
                  ms r.Obs.Ledger.wall_s;
                  r.Obs.Ledger.exit_status;
                ])
              (Array.to_list records)))
    in
    Cmd.v
      (Cmd.info "list" ~doc:"List the recorded runs, oldest first.")
      Term.(const run $ ledger_file_arg)
  in
  let index_arg n doc = Arg.(required & pos n (some int) None & info [] ~docv:"RUN" ~doc) in
  let show_cmd =
    let run path i =
      let records = load path in
      let r = records.(resolve records i) in
      print_endline (Obs.Json.to_string ~pretty:true (Obs.Ledger.to_json r))
    in
    Cmd.v
      (Cmd.info "show" ~doc:"Print one recorded run as JSON.")
      Term.(const run $ ledger_file_arg $ index_arg 0 "Run index (negative = from the end).")
  in
  let diff_cmd =
    let run path a b =
      let records = load path in
      let ra = records.(resolve records a) and rb = records.(resolve records b) in
      print_string
        (Choreographer.Report.table
           ~header:[ "stage"; "A ms"; "B ms"; "delta ms"; "%" ]
           (List.map
              (fun (d : Obs.Ledger.stage_delta) ->
                [
                  d.Obs.Ledger.stage;
                  opt_ms d.Obs.Ledger.a_s;
                  opt_ms d.Obs.Ledger.b_s;
                  opt_ms d.Obs.Ledger.delta_s;
                  (match d.Obs.Ledger.pct with
                  | Some p -> Printf.sprintf "%+.1f" p
                  | None -> "-");
                ])
              (Obs.Ledger.diff_stages ra rb)));
      match Obs.Ledger.diff_metrics ra rb with
      | [] -> print_endline "metrics: identical"
      | deltas ->
          let num = function
            | Some v -> Printf.sprintf "%g" v
            | None -> "-"
          in
          print_string
            (Choreographer.Report.table
               ~header:[ "metric"; "A"; "B" ]
               (List.map
                  (fun (d : Obs.Ledger.metric_delta) ->
                    [ d.Obs.Ledger.metric; num d.Obs.Ledger.a_v; num d.Obs.Ledger.b_v ])
                  deltas))
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:"Per-stage timing and metric deltas between two recorded runs.")
      Term.(
        const run $ ledger_file_arg $ index_arg 0 "Baseline run index."
        $ index_arg 1 "Candidate run index.")
  in
  let regress_cmd =
    let threshold_arg =
      Arg.(
        value
        & opt float 1.25
        & info [ "threshold" ] ~docv:"RATIO"
            ~doc:"Flag stages slower than RATIO times their ledger median (default 1.25).")
    in
    let fail_arg =
      Arg.(
        value & flag
        & info [ "fail" ] ~doc:"Exit 3 when any stage regresses (for use as a CI gate).")
    in
    let run path threshold fail =
      if threshold <= 0.0 then begin
        Printf.eprintf "error: --threshold must be positive\n";
        exit 2
      end;
      let records = load path in
      let n = Array.length records in
      if n < 2 then begin
        Printf.eprintf "ledger %s has %d record(s); regression needs at least 2\n" path n;
        exit 1
      end;
      let latest = records.(n - 1) in
      let history = Array.to_list (Array.sub records 0 (n - 1)) in
      match Obs.Ledger.regress ~threshold ~history latest with
      | [] ->
          Printf.printf "no stage of run %d exceeds %.2fx its median over %d prior run(s)\n"
            (n - 1) threshold (n - 1)
      | regressions ->
          (* Time rows are in milliseconds; the synthetic memory row is
             in heap words and says so. *)
          let quantity (r : Obs.Ledger.regression) v =
            if r.Obs.Ledger.r_memory then Printf.sprintf "%.0f words" v else ms v
          in
          print_string
            (Choreographer.Report.table
               ~header:[ "stage"; "latest ms"; "median ms"; "ratio" ]
               (List.map
                  (fun (r : Obs.Ledger.regression) ->
                    [
                      r.Obs.Ledger.r_stage;
                      quantity r r.Obs.Ledger.latest_s;
                      quantity r r.Obs.Ledger.median_s;
                      Printf.sprintf "%.2fx" r.Obs.Ledger.ratio;
                    ])
                  regressions));
          if fail then exit 3
    in
    Cmd.v
      (Cmd.info "regress"
         ~doc:"Compare the latest run against the ledger median of every stage and of \
               its peak heap size.")
      Term.(const run $ ledger_file_arg $ threshold_arg $ fail_arg)
  in
  Cmd.group
    (Cmd.info "obs"
       ~doc:"Inspect the run ledger (the flight recorder written by pipeline and solve \
             runs).")
    [ list_cmd; show_cmd; diff_cmd; regress_cmd ]

(* ------------------------------------------------------------------ *)
(* The daemon client: the analysis verbs served by choreographerd.     *)
(*                                                                     *)
(* Files are read (and, for documents, validated) locally, so a bad    *)
(* input fails with the exact bytes and exit code of the one-shot      *)
(* tools before anything crosses the wire; the daemon then sees only   *)
(* model sources, never the client's filesystem.                       *)
(* ------------------------------------------------------------------ *)

let client_socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Daemon socket (default: \\$CHOREOGRAPHER_SOCKET or \
              ~/.choreographer/daemon.sock).")

let client_tcp_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some port when port > 0 && port < 65536 && host <> "" -> Ok (host, port)
        | _ -> Error (`Msg (Printf.sprintf "invalid TCP address %s (expected HOST:PORT)" s)))
    | None -> Error (`Msg (Printf.sprintf "invalid TCP address %s (expected HOST:PORT)" s))
  in
  Arg.conv (parse, fun fmt (h, p) -> Format.fprintf fmt "%s:%d" h p)

let client_tcp_arg =
  Arg.(
    value
    & opt (some client_tcp_conv) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect over TCP instead of the Unix socket.")

let with_conn socket tcp f =
  match Service.Client.connect ?socket ?tcp () with
  | exception Service.Client.Connection_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | conn ->
      Fun.protect ~finally:(fun () -> Service.Client.close conn) (fun () ->
          try f conn
          with Service.Client.Connection_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1)

(* Replay the daemon's answer with the one-shot CLI's contract: an
   error response carries the exact stderr bytes and exit code the
   local tool would have produced. *)
let ok_or_exit = function
  | Service.Protocol.Ok_response { output; diagnostics; data } -> (output, diagnostics, data)
  | Service.Protocol.Error_response { code; message } ->
      Printf.eprintf "%s%!" message;
      exit code

let read_source path =
  try In_channel.with_open_bin path In_channel.input_all
  with Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

let kind_of path explicit_net =
  if explicit_net || Filename.check_suffix path ".pepanet" then Service.Protocol.Net
  else Service.Protocol.Pepa

let net_flag_arg =
  Arg.(value & flag & info [ "net" ] ~doc:"Force PEPA net interpretation regardless of suffix.")

let model_pos_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL" ~doc:"A .pepa or .pepanet file.")

let client_options jobs method_ aggregate fluid absorb =
  {
    Service.Protocol.default_options with
    method_;
    aggregate;
    fluid;
    jobs;
    restart = (if absorb then `Absorb else `Cycle);
  }

let jobs_opt_arg =
  (* The client's --jobs asks the daemon, so it must not auto-resolve
     locally; 0 still means "auto" — on the daemon's machine. *)
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Domains the daemon should use for this request (0 auto-detects there).")

let client_solve_cmd =
  let run socket tcp jobs path net method_ aggregate fluid =
    let options = client_options jobs method_ aggregate fluid false in
    let request =
      Service.Protocol.Solve
        { kind = kind_of path net; name = Filename.basename path; source = read_source path; options }
    in
    with_conn socket tcp (fun conn ->
        let output, diagnostics, _ = ok_or_exit (Service.Client.request conn request) in
        print_string output;
        Printf.eprintf "%s%!" diagnostics)
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve a model on the daemon (same output as workbench solve).")
    Term.(
      const run $ client_socket_arg $ client_tcp_arg $ jobs_opt_arg $ model_pos_arg
      $ net_flag_arg $ method_arg $ Cli_support.aggregate_arg $ Cli_support.fluid_arg)

let client_query_cmd =
  let query_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY" ~doc:"Measure expression, e.g. 'throughput(request)'.")
  in
  let run socket tcp jobs path net query method_ aggregate =
    let options = client_options jobs method_ aggregate None false in
    let request =
      Service.Protocol.Query
        { kind = kind_of path net; name = Filename.basename path; source = read_source path; query; options }
    in
    with_conn socket tcp (fun conn ->
        let output, diagnostics, _ = ok_or_exit (Service.Client.request conn request) in
        print_string output;
        Printf.eprintf "%s%!" diagnostics)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a measure expression on the daemon.")
    Term.(
      const run $ client_socket_arg $ client_tcp_arg $ jobs_opt_arg $ model_pos_arg
      $ net_flag_arg $ query_arg $ method_arg $ Cli_support.aggregate_arg)

(* Document verbs ship the raw file contents after validating them
   locally (for path-labelled error bytes); [name] carries the
   basename-derived model name the CLI gives text-notation documents. *)
let read_document_source path =
  ignore (read_document path);
  (Filename.remove_extension (Filename.basename path), read_source path)

let read_rates_source rates_path =
  ignore (load_rates rates_path);
  Option.map read_source rates_path

let data_field field data =
  match Obs.Json.member field data with
  | Some (Obs.Json.Str s) -> s
  | _ ->
      Printf.eprintf "error: malformed daemon response (missing %s)\n" field;
      exit 125

let write_file_string path contents =
  try Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)
  with Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

let client_pipeline_cmd =
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Reflected XMI output file.")
  in
  let xmltable_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "xmltable" ] ~docv:"FILE" ~doc:"Also write results as an .xmltable document.")
  in
  let run socket tcp jobs input output rates_path method_ absorb aggregate fluid xmltable =
    let name, document = read_document_source input in
    let rates = read_rates_source rates_path in
    let options = client_options jobs method_ aggregate fluid absorb in
    let request = Service.Protocol.Pipeline { name; document; rates; options } in
    with_conn socket tcp (fun conn ->
        let out, diagnostics, data = ok_or_exit (Service.Client.request conn request) in
        Printf.eprintf "%s%!" diagnostics;
        write_file_string output (data_field "reflected" data);
        print_string out;
        (match xmltable with
        | Some path -> write_file_string path (data_field "xmltable" data)
        | None -> ());
        Printf.printf "reflected model written to %s\n" output)
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Run the full extract-analyse-reflect tool chain on the daemon.")
    Term.(
      const run $ client_socket_arg $ client_tcp_arg $ jobs_opt_arg $ input_arg $ output_arg
      $ rates_arg $ method_arg $ absorb_arg $ Cli_support.aggregate_arg
      $ Cli_support.fluid_arg $ xmltable_arg)

let client_reflect_cmd =
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Reflected XMI output file.")
  in
  let run socket tcp jobs input output rates_path method_ absorb aggregate fluid =
    let name, document = read_document_source input in
    let rates = read_rates_source rates_path in
    let options = client_options jobs method_ aggregate fluid absorb in
    let request = Service.Protocol.Reflect { name; document; rates; options } in
    with_conn socket tcp (fun conn ->
        let _, diagnostics, data = ok_or_exit (Service.Client.request conn request) in
        Printf.eprintf "%s%!" diagnostics;
        write_file_string output (data_field "reflected" data);
        Printf.printf "reflected model written to %s\n" output)
  in
  Cmd.v
    (Cmd.info "reflect"
       ~doc:"Analyse a UML document on the daemon and write only the reflected XMI.")
    Term.(
      const run $ client_socket_arg $ client_tcp_arg $ jobs_opt_arg $ input_arg $ output_arg
      $ rates_arg $ method_arg $ absorb_arg $ Cli_support.aggregate_arg
      $ Cli_support.fluid_arg)

(* Sweep axes: NAME=V1,V2,... or NAME=LO:HI:N (N evenly spaced points,
   endpoints included). *)
let axis_values_of_spec spec =
  let positive_int s = match int_of_string_opt s with Some n when n >= 2 -> Some n | _ -> None in
  match String.split_on_char ':' spec with
  | [ lo; hi; n ] -> (
      match (float_of_string_opt lo, float_of_string_opt hi, positive_int n) with
      | Some lo, Some hi, Some n ->
          Some (List.init n (fun i -> lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1))))
      | _ -> None)
  | [ _ ] -> (
      let parts = String.split_on_char ',' spec in
      let values = List.filter_map float_of_string_opt parts in
      if List.length values = List.length parts && values <> [] then Some values else None)
  | _ -> None

let axis_conv target =
  let parse s =
    match String.index_opt s '=' with
    | Some i -> (
        let name = String.sub s 0 i in
        let spec = String.sub s (i + 1) (String.length s - i - 1) in
        match axis_values_of_spec spec with
        | Some values when name <> "" ->
            Ok { Service.Protocol.target = target name; values }
        | _ ->
            Error
              (`Msg
                (Printf.sprintf
                   "invalid axis %s (expected NAME=V1,V2,... or NAME=LO:HI:N with N >= 2)" s)))
    | None ->
        Error (`Msg (Printf.sprintf "invalid axis %s (expected NAME=VALUES)" s))
  in
  let print fmt (axis : Service.Protocol.axis) =
    Format.fprintf fmt "%s=%s"
      (match axis.Service.Protocol.target with `Rate n | `Replicas n -> n)
      (String.concat "," (List.map (Printf.sprintf "%g") axis.Service.Protocol.values))
  in
  Arg.conv (parse, print)

let client_sweep_cmd =
  let rate_axes_arg =
    Arg.(
      value
      & opt_all (axis_conv (fun n -> `Rate n)) []
      & info [ "rate" ] ~docv:"NAME=VALUES"
          ~doc:"Sweep the rate constant NAME over VALUES (V1,V2,... or LO:HI:N).  \
                Repeatable; the grid is the cartesian product of all axes.")
  in
  let replica_axes_arg =
    Arg.(
      value
      & opt_all (axis_conv (fun n -> `Replicas n)) []
      & info [ "replicas" ] ~docv:"NAME=VALUES"
          ~doc:"Sweep the replica count of component array NAME over VALUES.  Repeatable.")
  in
  let backend_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("exact", Service.Protocol.Exact);
               ("lump", Service.Protocol.Lump);
               ("fluid", Service.Protocol.Fluid_ode);
             ])
          Service.Protocol.Exact
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Per-point solver: $(b,exact), $(b,lump) or $(b,fluid).")
  in
  let cold_arg =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:"Solve every grid point from scratch instead of warm-starting each \
                point from its predecessor's solution.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the sweep JSON here (default: stdout).")
  in
  let run socket tcp jobs path net method_ aggregate fluid rates replicas backend cold out =
    let axes = rates @ replicas in
    if axes = [] then begin
      Printf.eprintf "error: sweep needs at least one --rate or --replicas axis\n";
      exit 2
    end;
    let options = client_options jobs method_ aggregate fluid false in
    let request =
      Service.Protocol.Sweep
        {
          kind = kind_of path net;
          name = Filename.basename path;
          source = read_source path;
          options;
          axes;
          backend;
          warm_start = not cold;
        }
    in
    with_conn socket tcp (fun conn ->
        let _, diagnostics, data = ok_or_exit (Service.Client.request conn request) in
        Printf.eprintf "%s%!" diagnostics;
        let text = Obs.Json.to_string ~pretty:true data ^ "\n" in
        match out with
        | Some path ->
            write_file_string path text;
            Printf.printf "sweep results written to %s\n" path
        | None -> print_string text)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Solve a model over a parameter grid on the daemon, warm-starting \
             successive points.")
    Term.(
      const run $ client_socket_arg $ client_tcp_arg $ jobs_opt_arg $ model_pos_arg
      $ net_flag_arg $ method_arg $ Cli_support.aggregate_arg $ Cli_support.fluid_arg
      $ rate_axes_arg $ replica_axes_arg $ backend_arg $ cold_arg $ out_arg)

let client_stats_cmd =
  let run socket tcp =
    with_conn socket tcp (fun conn ->
        let _, _, data = ok_or_exit (Service.Client.request conn Service.Protocol.Stats) in
        print_endline (Obs.Json.to_string ~pretty:true data))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the daemon's uptime, request and cache statistics.")
    Term.(const run $ client_socket_arg $ client_tcp_arg)

let client_shutdown_cmd =
  let run socket tcp =
    with_conn socket tcp (fun conn ->
        let _ = ok_or_exit (Service.Client.request conn Service.Protocol.Shutdown) in
        print_endline "daemon stopped")
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Stop the daemon cleanly.")
    Term.(const run $ client_socket_arg $ client_tcp_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:"Talk to a running choreographerd: the analysis verbs with one-shot CLI \
             output and exit codes, served from the daemon's model cache.")
    [
      client_solve_cmd;
      client_query_cmd;
      client_pipeline_cmd;
      client_reflect_cmd;
      client_sweep_cmd;
      client_stats_cmd;
      client_shutdown_cmd;
    ]

let () =
  let doc = "performance analysis of mobile UML designs via PEPA nets" in
  let info = Cmd.info "choreographer" ~version:"1.0.0" ~doc in
  exit
    (Cli_support.eval_cli
       (Cmd.group info [ pipeline_cmd; extract_cmd; info_cmd; strip_cmd; obs_cmd; client_cmd ]))
