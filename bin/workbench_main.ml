(* The PEPA Workbench for PEPA nets, command-line edition: parse, derive
   the state space, solve the CTMC, and report measures for .pepa and
   .pepanet models. *)

open Cmdliner

let is_net_file path explicit_net = explicit_net || Filename.check_suffix path ".pepanet"

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"MODEL" ~doc:"A .pepa or .pepanet file.")

let net_arg =
  Arg.(value & flag & info [ "net" ] ~doc:"Force PEPA net interpretation regardless of suffix.")

let method_arg = Cli_support.method_arg

let handle_errors f =
  try f () with
  | Choreographer.Workbench.Analysis_error msg ->
      Cli_support.set_run_status ("error: " ^ msg);
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Markov.Steady.Did_not_converge { method_used; iterations; residual } ->
      Cli_support.report_did_not_converge ~method_used ~iterations ~residual
  | Fluid.Rk45.Did_not_reach_steady { steps; t; dx_norm } ->
      Cli_support.report_did_not_reach_steady ~steps ~t ~dx_norm
  | Fluid.Rk45.Step_budget_exhausted { steps; t; error_estimate } ->
      Cli_support.report_step_budget_exhausted ~steps ~t ~error_estimate

let solve_cmd =
  let run jobs path net method_ aggregate fluid =
    handle_errors (fun () ->
        Cli_support.arm_ledger ~tool:"workbench solve" ~model:path
          ~options:
            [
              ("jobs", string_of_int jobs);
              ("method", Cli_support.method_string method_);
              ("aggregate", Markov.Lump.mode_to_string aggregate);
              ("fluid", Cli_support.fluid_string fluid);
              ("net", string_of_bool (is_net_file path net));
            ];
        (* All solve output goes through [Choreographer.Render], the
           rendering the daemon also ships — the service tests cmp the
           two byte for byte. *)
        if is_net_file path net then begin
          match fluid with
          | Some tolerances ->
              let analysis =
                Choreographer.Workbench.analyse_net_fluid_file ~tolerances path
              in
              print_string (Choreographer.Render.net_fluid_solve analysis);
              Cli_support.print_fluid_stats
                analysis.Choreographer.Workbench.net_fluid_stats
          | None ->
              let analysis =
                Choreographer.Workbench.analyse_net_file ?method_ ~aggregate ~jobs path
              in
              print_string (Choreographer.Render.net_solve analysis);
              Cli_support.print_solver_stats ()
        end
        else
          match fluid with
          | Some tolerances ->
              let analysis = Choreographer.Workbench.analyse_pepa_fluid_file ~tolerances path in
              print_string (Choreographer.Render.pepa_fluid_solve analysis);
              Cli_support.print_fluid_stats analysis.Choreographer.Workbench.fluid_stats
          | None ->
              let analysis =
                Choreographer.Workbench.analyse_pepa_file ?method_ ~aggregate ~jobs path
              in
              print_string (Choreographer.Render.pepa_solve analysis);
              Cli_support.print_solver_stats ())
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Steady-state solution and throughput of every action type.")
    Term.(
      const run $ Cli_support.telemetry_term $ file_arg $ net_arg $ method_arg
      $ Cli_support.aggregate_arg $ Cli_support.fluid_arg)

let statespace_cmd =
  let limit_arg =
    Arg.(value & opt int 200 & info [ "limit" ] ~docv:"N" ~doc:"Print at most N states.")
  in
  let run jobs path net limit aggregate =
    let symmetry = Markov.Lump.symmetry_enabled aggregate in
    handle_errors (fun () ->
        if is_net_file path net then begin
          let space = Pepanet.Net_statespace.of_file ~symmetry ~jobs path in
          Format.printf "%a@." Pepanet.Net_statespace.pp_summary space;
          for i = 0 to min (limit - 1) (Pepanet.Net_statespace.n_markings space - 1) do
            Printf.printf "M%-4d %s\n" i (Pepanet.Net_statespace.marking_label space i)
          done
        end
        else begin
          let space =
            Pepa.Statespace.of_string ~symmetry ~jobs
              (In_channel.with_open_bin path In_channel.input_all)
          in
          Format.printf "%a@." Pepa.Statespace.pp_summary space;
          for i = 0 to min (limit - 1) (Pepa.Statespace.n_states space - 1) do
            Printf.printf "S%-4d %s\n" i (Pepa.Statespace.state_label space i)
          done
        end)
  in
  Cmd.v
    (Cmd.info "statespace" ~doc:"Derive and print the reachable state space.")
    Term.(
      const run $ Cli_support.telemetry_term $ file_arg $ net_arg $ limit_arg
      $ Cli_support.aggregate_arg)

let check_cmd =
  (* Exploration picks the job count up from the process-wide default
     set by the shared setup term. *)
  let run _jobs path net =
    handle_errors (fun () ->
        if is_net_file path net then begin
          let compiled = Pepanet.Net_compile.of_file path in
          let space = Pepanet.Net_statespace.build compiled in
          Format.printf "%a@." Pepanet.Net_statespace.pp_summary space;
          List.iter (Printf.printf "warning: %s\n") (Pepanet.Net_compile.warnings compiled);
          List.iter
            (fun i -> Printf.printf "deadlock: %s\n" (Pepanet.Net_statespace.marking_label space i))
            (Pepanet.Net_statespace.deadlocks space)
        end
        else begin
          let model =
            Pepa.Parser.model_of_string (In_channel.with_open_bin path In_channel.input_all)
          in
          let env = Pepa.Env.of_model model in
          let space = Pepa.Statespace.build (Pepa.Compile.compile env) in
          Format.printf "%a@." Pepa.Analysis.pp_report space;
          List.iter (Printf.printf "warning: %s\n") (Pepa.Env.warnings env);
          List.iter
            (fun i -> Printf.printf "deadlock: %s\n" (Pepa.Statespace.state_label space i))
            (Pepa.Statespace.deadlocks space)
        end)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Static checks, deadlock search and model warnings.")
    Term.(const run $ Cli_support.telemetry_term $ file_arg $ net_arg)

let transient_cmd =
  let time_arg =
    Arg.(required & opt (some float) None & info [ "t"; "time" ] ~docv:"T" ~doc:"Time horizon.")
  in
  let run _jobs path net time =
    handle_errors (fun () ->
        if is_net_file path net then begin
          let space = Pepanet.Net_statespace.of_file path in
          let pi = Pepanet.Net_statespace.transient space ~time in
          Array.iteri
            (fun i p ->
              if p > 1e-9 then
                Printf.printf "%-50s %.6f\n" (Pepanet.Net_statespace.marking_label space i) p)
            pi
        end
        else begin
          let space =
            Pepa.Statespace.of_string (In_channel.with_open_bin path In_channel.input_all)
          in
          let pi = Pepa.Statespace.transient space ~time in
          Array.iteri
            (fun i p ->
              if p > 1e-9 then
                Printf.printf "%-50s %.6f\n" (Pepa.Statespace.state_label space i) p)
            pi
        end)
  in
  Cmd.v
    (Cmd.info "transient" ~doc:"Transient state probabilities at a time horizon.")
    Term.(const run $ Cli_support.telemetry_term $ file_arg $ net_arg $ time_arg)

let export_cmd =
  let basename_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"BASENAME"
          ~doc:"Basename for the .tra/.sta/.lab files.")
  in
  let run _jobs path net basename =
    handle_errors (fun () ->
        let chain, label_groups =
          if is_net_file path net then begin
            let space = Pepanet.Net_statespace.of_file path in
            let labels =
              List.init (Pepanet.Net_statespace.n_markings space) (fun i ->
                  (Pepanet.Net_statespace.marking_label space i, [ i ]))
            in
            (Pepanet.Net_statespace.ctmc space, labels)
          end
          else begin
            let space =
              Pepa.Statespace.of_string (In_channel.with_open_bin path In_channel.input_all)
            in
            let labels =
              List.init (Pepa.Statespace.n_states space) (fun i ->
                  (Pepa.Statespace.state_label space i, [ i ]))
            in
            (Pepa.Statespace.ctmc space, labels)
          end
        in
        let written = Markov.Prism.export ~labels:label_groups ~initial:0 ~basename chain in
        List.iter (Printf.printf "wrote %s\n") written)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export the derived CTMC in PRISM explicit-state format.")
    Term.(const run $ Cli_support.telemetry_term $ file_arg $ net_arg $ basename_arg)

let passage_cmd =
  let action_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "a"; "action" ] ~docv:"ACTION"
          ~doc:"Passage from the states enabling ACTION to the states reached by it.")
  in
  let times_arg =
    Arg.(
      value
      & opt (list float) [ 0.5; 1.0; 2.0; 4.0; 8.0 ]
      & info [ "t"; "times" ] ~docv:"T1,T2,..." ~doc:"Time points for the CDF.")
  in
  let report chain sources targets times action =
    if sources = [] then begin
      Printf.eprintf "error: no state enables %s\n" action;
      exit 1
    end;
    Printf.printf "completion probability: %.6f\n"
      (Markov.Passage.completion_probability chain ~sources ~targets);
    Printf.printf "mean passage time: %.6f\n" (Markov.Passage.mean chain ~sources ~targets);
    List.iter
      (fun (t, p) -> Printf.printf "F(%g) = %.6f\n" t p)
      (Markov.Passage.cdf_curve chain ~sources ~targets ~times)
  in
  let run _jobs path net times action =
    handle_errors (fun () ->
        if is_net_file path net then begin
          let space = Pepanet.Net_statespace.of_file path in
          let labelled tr =
            match tr.Pepanet.Net_statespace.label with
            | Pepanet.Net_semantics.Local a -> Pepa.Action.name a = Some action
            | Pepanet.Net_semantics.Fire { action = a; _ } -> a = action
          in
          let matching = List.filter labelled (Pepanet.Net_statespace.transitions space) in
          let sources =
            List.map (fun tr -> (tr.Pepanet.Net_statespace.src, 1.0)) matching
            |> List.sort_uniq compare
          in
          let targets =
            List.map (fun tr -> tr.Pepanet.Net_statespace.dst) matching
            |> List.sort_uniq compare
          in
          report (Pepanet.Net_statespace.ctmc space) sources targets times action
        end
        else begin
          let space =
            Pepa.Statespace.of_string (In_channel.with_open_bin path In_channel.input_all)
          in
          let chain = Pepa.Statespace.ctmc space in
          let sources =
            Pepa.Analysis.states_enabling space action |> List.map (fun s -> (s, 1.0))
          in
          let targets =
            List.filter_map
              (fun tr ->
                if Pepa.Action.equal tr.Pepa.Statespace.action (Pepa.Action.act action) then
                  Some tr.Pepa.Statespace.dst
                else None)
              (Pepa.Statespace.transitions space)
            |> List.sort_uniq compare
          in
          report chain sources targets times action
        end)
  in
  Cmd.v
    (Cmd.info "passage"
       ~doc:"First-passage-time analysis around an action type.")
    Term.(const run $ Cli_support.telemetry_term $ file_arg $ net_arg $ times_arg $ action_arg)

let graph_cmd =
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the dot graph here (default: stdout).")
  in
  let kind_arg =
    Arg.(
      value
      & opt (enum [ ("statespace", `Statespace); ("structure", `Structure) ]) `Statespace
      & info [ "k"; "kind" ] ~docv:"KIND"
          ~doc:"What to draw: the reachable statespace, or (for nets) the net structure.")
  in
  let run _jobs path net output kind =
    handle_errors (fun () ->
        let dot =
          if is_net_file path net then begin
            match kind with
            | `Structure -> Choreographer.Graphviz.net_structure (Pepanet.Net_parser.net_of_file path)
            | `Statespace -> Choreographer.Graphviz.net_statespace (Pepanet.Net_statespace.of_file path)
          end
          else
            Choreographer.Graphviz.pepa_statespace
              (Pepa.Statespace.of_string (In_channel.with_open_bin path In_channel.input_all))
        in
        match output with
        | Some file ->
            Out_channel.with_open_bin file (fun oc -> Out_channel.output_string oc dot);
            Printf.printf "wrote %s\n" file
        | None -> print_string dot)
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Render the state space (or net structure) as Graphviz dot.")
    Term.(const run $ Cli_support.telemetry_term $ file_arg $ net_arg $ output_arg $ kind_arg)

let query_cmd =
  let query_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "Measure expression, e.g. 'throughput(request)' or \
             'passage(request -> response).mean'.")
  in
  let run _jobs path net query_text =
    handle_errors (fun () ->
        try
          let context =
            if is_net_file path net then
              Choreographer.Query.context_of_net (Choreographer.Workbench.analyse_net_file path)
            else
              Choreographer.Query.context_of_pepa
                (Choreographer.Workbench.analyse_pepa_file path)
          in
          Printf.printf "%.10g\n" (Choreographer.Query.eval_string context query_text)
        with Choreographer.Query.Query_error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 1)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a measure expression against a solved model.")
    Term.(const run $ Cli_support.telemetry_term $ file_arg $ net_arg $ query_arg)

let () =
  let doc = "the PEPA Workbench for PEPA nets" in
  let info = Cmd.info "pepa-workbench" ~version:"1.0.0" ~doc in
  exit
    (Cli_support.eval_cli
       (Cmd.group info
          [ solve_cmd; statespace_cmd; check_cmd; transient_cmd; export_cmd; passage_cmd; graph_cmd; query_cmd ]))
