(* Emit the tandem-network benchmark family as PEPA source:

     dune exec examples/tandem_queues.exe -- [STATIONS] [CAPACITY]

   Defaults to 3 stations of capacity 46 — the 103,823-state instance
   the CI smoke test solves exactly.  Three stations at capacity 99
   give a million-state CTMC:

     dune exec examples/tandem_queues.exe -- 3 99 > tandem1m.pepa
     dune exec bin/workbench_main.exe -- solve tandem1m.pepa --method bicgstab *)

let () =
  let arg i default =
    if Array.length Sys.argv > i then
      match int_of_string_opt Sys.argv.(i) with
      | Some v -> v
      | None ->
          Printf.eprintf "usage: tandem_queues [STATIONS] [CAPACITY]\n";
          exit 2
    else default
  in
  let stations = arg 1 3 in
  let capacity = arg 2 46 in
  print_string (Scenarios.Tandem.source ~stations ~capacity)
