type t = {
  cards : int array;   (* field cardinalities, for range checks *)
  widths : int array;  (* bits per field *)
  size : int;          (* bytes per packed key *)
}

let bits_for card =
  (* Smallest w with 2^w >= card; 0 for singleton fields. *)
  let w = ref 0 in
  while 1 lsl !w < card do
    incr w
  done;
  !w

let of_cardinalities cards =
  Array.iter
    (fun c -> if c <= 0 then invalid_arg "Statekey.of_cardinalities: non-positive cardinality")
    cards;
  let widths = Array.map bits_for cards in
  let total_bits = Array.fold_left ( + ) 0 widths in
  { cards = Array.copy cards; widths; size = (total_bits + 7) / 8 }

let n_fields t = Array.length t.cards
let size t = t.size

(* Fields are laid out little-endian in bit order: field [i]'s low bit
   follows field [i-1]'s high bit.  A field can straddle byte
   boundaries, so reads and writes move at most 8 bits at a time. *)

let pack_into t v buf off =
  if Array.length v <> Array.length t.cards then
    invalid_arg "Statekey.pack_into: vector length mismatch";
  Bytes.fill buf off t.size '\000';
  let bit = ref 0 in
  for i = 0 to Array.length v - 1 do
    let w = t.widths.(i) in
    let x = v.(i) in
    if x < 0 || x >= t.cards.(i) then
      invalid_arg (Printf.sprintf "Statekey.pack_into: field %d value %d out of range" i x);
    if w > 0 then begin
      let b = ref !bit and rest = ref x and remaining = ref w in
      while !remaining > 0 do
        let byte = off + (!b lsr 3) in
        let shift = !b land 7 in
        let take = min !remaining (8 - shift) in
        let cur = Char.code (Bytes.unsafe_get buf byte) in
        let add = (!rest land ((1 lsl take) - 1)) lsl shift in
        Bytes.unsafe_set buf byte (Char.unsafe_chr (cur lor add));
        rest := !rest lsr take;
        b := !b + take;
        remaining := !remaining - take
      done;
      bit := !bit + w
    end
  done

let pack t v =
  let buf = Bytes.create t.size in
  pack_into t v buf 0;
  buf

let unpack_into t buf off v =
  if Array.length v <> Array.length t.cards then
    invalid_arg "Statekey.unpack_into: vector length mismatch";
  let bit = ref 0 in
  for i = 0 to Array.length v - 1 do
    let w = t.widths.(i) in
    if w = 0 then v.(i) <- 0
    else begin
      let b = ref !bit and acc = ref 0 and got = ref 0 in
      while !got < w do
        let byte = off + (!b lsr 3) in
        let shift = !b land 7 in
        let take = min (w - !got) (8 - shift) in
        let bits =
          (Char.code (Bytes.unsafe_get buf byte) lsr shift) land ((1 lsl take) - 1)
        in
        acc := !acc lor (bits lsl !got);
        got := !got + take;
        b := !b + take
      done;
      v.(i) <- !acc;
      bit := !bit + w
    end
  done

let unpack t buf =
  let v = Array.make (Array.length t.cards) 0 in
  unpack_into t buf 0 v;
  v

let hash b =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 16777619 land max_int
  done;
  !h

let equal = Bytes.equal

let blit_key t key arena i = Bytes.blit key 0 arena (i * t.size) t.size

let matches t arena i key =
  let off = i * t.size in
  let rec go k = k >= t.size || (Bytes.unsafe_get arena (off + k) = Bytes.unsafe_get key k && go (k + 1)) in
  go 0

let unpack_at t arena i =
  let v = Array.make (Array.length t.cards) 0 in
  unpack_into t arena (i * t.size) v;
  v
