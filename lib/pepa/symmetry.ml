(* Replica-group detection and state canonicalisation.

   A cooperation chain [m1 <S> m2 <S> ... <S> mk] (the compiler emits
   exactly this right-nested shape for [P[k]], with S empty) is
   associative and commutative over the one set S, so members with the
   same structural fingerprint may be permuted freely.  Each maximal
   set of identical members forms a group; the group records every
   member's leaves in traversal order, and canonicalisation sorts the
   members' leaf-state sub-vectors. *)

module String_set = Syntax.String_set

type group = {
  replicas : int array array;  (* replicas.(r) = leaf indices of replica r *)
  sub_len : int;
}

type t = {
  groups : group array;  (* innermost groups first *)
  orbits : int array array;  (* orbits.(leaf) = symmetric leaves, incl. self *)
}

let trivial = { groups = [||]; orbits = [||] }
let is_trivial t = Array.length t.groups = 0
let n_groups t = Array.length t.groups

let set_signature set = String.concat "," (String_set.elements set)

(* Structural fingerprint: equal strings iff the subtrees are
   isomorphic (same shape, same cooperation/hiding sets, same
   component at every leaf position). *)
let rec signature = function
  | Compile.Leaf { comp; _ } -> Printf.sprintf "L%d" comp
  | Compile.Coop (a, set, b) ->
      Printf.sprintf "C(%s|%s|%s)" (signature a) (set_signature set) (signature b)
  | Compile.Hide (a, set) -> Printf.sprintf "H(%s|%s)" (signature a) (set_signature set)

let rec leaves_of acc = function
  | Compile.Leaf { leaf; _ } -> leaf :: acc
  | Compile.Coop (a, _, b) -> leaves_of (leaves_of acc a) b
  | Compile.Hide (a, _) -> leaves_of acc a

let leaves_in_order s = Array.of_list (List.rev (leaves_of [] s))

let detect compiled =
  let groups = ref [] in
  (* Flatten a maximal cooperation chain over one set into its member
     subtrees (none of which is itself a Coop over the same set). *)
  let rec flatten set s acc =
    match s with
    | Compile.Coop (a, s2, b) when String_set.equal s2 set ->
        flatten set b (flatten set a acc)
    | member -> member :: acc
  in
  let rec walk s =
    match s with
    | Compile.Leaf _ -> ()
    | Compile.Hide (inner, _) -> walk inner
    | Compile.Coop (_, set, _) ->
        let members = List.rev (flatten set s []) in
        (* Innermost first: groups inside a member are canonicalised
           before the outer sort compares member sub-vectors. *)
        List.iter walk members;
        let by_sig = Hashtbl.create 8 in
        List.iter
          (fun member ->
            let key = signature member in
            let existing = Option.value ~default:[] (Hashtbl.find_opt by_sig key) in
            Hashtbl.replace by_sig key (member :: existing))
          members;
        Hashtbl.iter
          (fun _key rev_members ->
            match rev_members with
            | [] | [ _ ] -> ()
            | _ ->
                let replicas =
                  Array.of_list (List.rev_map leaves_in_order rev_members)
                in
                groups := { replicas; sub_len = Array.length replicas.(0) } :: !groups)
          by_sig
  in
  walk compiled.Compile.structure;
  let groups = Array.of_list (List.rev !groups) in
  if Array.length groups = 0 then trivial
  else begin
    (* A leaf's orbit under the generated permutation group is its
       connected component across the groups' positional orbits (nested
       replication chains them), computed by union-find. *)
    let n_leaves = Compile.n_leaves compiled in
    let parent = Array.init n_leaves Fun.id in
    let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
    let union a b = parent.(find a) <- find b in
    Array.iter
      (fun g ->
        for pos = 0 to g.sub_len - 1 do
          let first = g.replicas.(0).(pos) in
          Array.iter (fun leaves -> union leaves.(pos) first) g.replicas
        done)
      groups;
    let members = Hashtbl.create 16 in
    for leaf = n_leaves - 1 downto 0 do
      let root = find leaf in
      Hashtbl.replace members root
        (leaf :: Option.value ~default:[] (Hashtbl.find_opt members root))
    done;
    let orbits =
      Array.init n_leaves (fun leaf -> Array.of_list (Hashtbl.find members (find leaf)))
    in
    { groups; orbits }
  end

let compare_sub (vec : int array) (a : int array) (b : int array) =
  let n = Array.length a in
  let rec go i =
    if i >= n then 0
    else
      let c = compare vec.(a.(i)) vec.(b.(i)) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let canonicalise t vec =
  let changed = ref false in
  Array.iter
    (fun g ->
      (* Sort the replicas' current sub-vectors by sorting an index
         permutation, then write the values back through the fixed
         leaf layout. *)
      let k = Array.length g.replicas in
      let order = Array.init k Fun.id in
      Array.sort (fun a b -> compare_sub vec g.replicas.(a) g.replicas.(b)) order;
      let sorted = Array.init k (fun r -> Array.map (fun l -> vec.(l)) g.replicas.(order.(r))) in
      for r = 0 to k - 1 do
        let leaves = g.replicas.(r) in
        for p = 0 to g.sub_len - 1 do
          if vec.(leaves.(p)) <> sorted.(r).(p) then begin
            vec.(leaves.(p)) <- sorted.(r).(p);
            changed := true
          end
        done
      done)
    t.groups;
  !changed

let orbit t leaf =
  if is_trivial t || leaf >= Array.length t.orbits then [| leaf |] else t.orbits.(leaf)
