type transition = { src : int; action : Action.t; rate : float; dst : int }

(* Transitions live in flat columns (src/dst/rate/action-id) with the
   action types interned into a small table: the CTMC assembly, the
   throughput measures and the benchmark harness all run over arrays
   without touching a list.  The historical list-returning API survives
   as a thin compatibility layer that materialises (and caches) records
   on demand. *)
type t = {
  compiled : Compile.t;
  symmetry : Symmetry.t;  (* trivial unless built with ~symmetry:true *)
  states : int array array;
  tr_src : int array;
  tr_dst : int array;
  tr_rate : float array;
  tr_action : int array;  (* index into [actions] *)
  actions : Action.t array;  (* interned action table *)
  row_start : int array;  (* CSR over transitions grouped by src; length n_states + 1 *)
  mutable transition_cache : transition list option;
  mutable outgoing_cache : transition list array option;
  mutable chain : Markov.Ctmc.t option;
  mutable lump : Markov.Lump.t option;
}

exception Too_many_states of int
exception Passive_transition of { state : string; action : string }

(* Shared exploration metrics (the PEPA-net builder adds to the same
   counters, so a pipeline run reports one total per name). *)
let states_explored = Obs.Metrics.counter "states_explored"
let transitions_emitted = Obs.Metrics.counter "transitions_emitted"
let intern_collisions = Obs.Metrics.counter "intern_collisions"
let canonical_hits = Obs.Metrics.counter "statespace.canonical_hits"

(* Largest per-shard dedup-table occupancy of the most recent parallel
   build (the PEPA-net builder sets the same gauge). *)
let shard_states = Obs.Metrics.gauge "statespace.shard_states"

(* Discovered-but-unexpanded states, refreshed while the build runs so
   the background sampler can chart frontier occupancy over time (the
   PEPA-net builder shares the gauge). *)
let frontier_states = Obs.Metrics.gauge "statespace.frontier_states"

(* FNV-1a over the leaf-state vector, masked positive.  Computed exactly
   once per interned vector: the table stores each slot's hash, so
   probing and resizing compare integers, never rehash arrays. *)
let hash_vec (v : int array) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length v - 1 do
    h := (!h lxor v.(i)) * 16777619 land max_int
  done;
  !h

let vec_equal (a : int array) (b : int array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let build ?(max_states = 1_000_000) ?(symmetry = false) ?jobs compiled =
  Obs.Span.with_ "statespace.build" (fun span ->
  let obs_on = Obs.Config.enabled () in
  let progress_every = Obs.Config.progress_interval () in
  let collisions = ref 0 in
  (* Replica symmetry: every explored vector is canonicalised before
     interning, so an orbit of permutation-equivalent states collapses
     to one representative (counter abstraction).  Sound because the
     permutations are automorphisms of the labelled chain — the reduced
     chain is its exact ordinary lumping. *)
  let sym = if symmetry then Symmetry.detect compiled else Symmetry.trivial in
  let use_sym = not (Symmetry.is_trivial sym) in
  let hits = ref 0 in
  let canonical vec =
    if use_sym && Symmetry.canonicalise sym vec then incr hits;
    vec
  in
  (* Growable state store; BFS order doubles as the index order, so the
     work queue is just a cursor into it. *)
  let states = ref (Array.make 1024 [||]) in
  let n_states = ref 0 in
  (* Open-addressing intern table: [slots] holds state index + 1 (0 =
     empty), [hashes] the stored hash of that slot's vector. *)
  let capacity = ref 4096 in
  let slots = ref (Array.make !capacity 0) in
  let hashes = ref (Array.make !capacity 0) in
  let rehash () =
    let old_slots = !slots and old_hashes = !hashes in
    capacity := !capacity * 2;
    slots := Array.make !capacity 0;
    hashes := Array.make !capacity 0;
    let mask = !capacity - 1 in
    Array.iteri
      (fun k s ->
        if s <> 0 then begin
          let h = old_hashes.(k) in
          let pos = ref (h land mask) in
          while !slots.(!pos) <> 0 do
            pos := (!pos + 1) land mask
          done;
          !slots.(!pos) <- s;
          !hashes.(!pos) <- h
        end)
      old_slots
  in
  let intern vec =
    let h = hash_vec vec in
    let mask = !capacity - 1 in
    let pos = ref (h land mask) in
    let result = ref (-1) in
    while !result < 0 do
      let s = !slots.(!pos) in
      if s = 0 then begin
        if !n_states >= max_states then raise (Too_many_states max_states);
        let i = !n_states in
        if i >= Array.length !states then begin
          let bigger = Array.make (2 * Array.length !states) [||] in
          Array.blit !states 0 bigger 0 i;
          states := bigger
        end;
        !states.(i) <- vec;
        incr n_states;
        !slots.(!pos) <- i + 1;
        !hashes.(!pos) <- h;
        if 4 * !n_states > 3 * !capacity then rehash ();
        result := i
      end
      else if !hashes.(!pos) = h && vec_equal !states.(s - 1) vec then result := s - 1
      else begin
        incr collisions;
        pos := (!pos + 1) land mask
      end
    done;
    !result
  in
  (* Flat transition buffers, doubled on demand. *)
  let tr_cap = ref 4096 in
  let tr_src = ref (Array.make !tr_cap 0) in
  let tr_dst = ref (Array.make !tr_cap 0) in
  let tr_rate = ref (Array.make !tr_cap 0.0) in
  let tr_action = ref (Array.make !tr_cap 0) in
  let n_transitions = ref 0 in
  let push src dst rate action =
    if !n_transitions = !tr_cap then begin
      let grow_int a = let b = Array.make (2 * !tr_cap) 0 in Array.blit a 0 b 0 !tr_cap; b in
      let grow_float a = let b = Array.make (2 * !tr_cap) 0.0 in Array.blit a 0 b 0 !tr_cap; b in
      tr_src := grow_int !tr_src;
      tr_dst := grow_int !tr_dst;
      tr_action := grow_int !tr_action;
      tr_rate := grow_float !tr_rate;
      tr_cap := 2 * !tr_cap
    end;
    let k = !n_transitions in
    !tr_src.(k) <- src;
    !tr_dst.(k) <- dst;
    !tr_rate.(k) <- rate;
    !tr_action.(k) <- action;
    incr n_transitions
  in
  (* Action interning. *)
  let action_ids = Hashtbl.create 16 in
  let action_list = ref [] in
  let n_actions = ref 0 in
  let intern_action a =
    match Hashtbl.find_opt action_ids a with
    | Some id -> id
    | None ->
        let id = !n_actions in
        Hashtbl.add action_ids a id;
        action_list := a :: !action_list;
        incr n_actions;
        id
  in
  let pool = Par.pool ?jobs () in
  let explored_states, shard_occupancy =
    match pool with
    | None ->
        ignore (intern (canonical (Compile.initial_state compiled)));
        let next = ref 0 in
        while !next < !n_states do
          let src = !next in
          if obs_on then begin
            Obs.Metrics.set frontier_states (float_of_int (!n_states - src));
            if src > 0 && src mod progress_every = 0 then
              Obs.Log.progress ~stage:"statespace.build" ~count:src
                ~detail:
                  (Printf.sprintf "%d discovered, %d transitions" !n_states !n_transitions)
          end;
          let vec = !states.(src) in
          List.iter
            (fun move ->
              let rate =
                match move.Semantics.rate with
                | Rate.Active r -> r
                | Rate.Passive _ ->
                    raise
                      (Passive_transition
                         {
                           state = Compile.state_label compiled vec;
                           action = Action.to_string move.Semantics.action;
                         })
              in
              let dst = intern (canonical (Semantics.apply vec move.Semantics.deltas)) in
              push src dst rate (intern_action move.Semantics.action))
            (Semantics.moves compiled vec);
          incr next
        done;
        (Array.sub !states 0 !n_states, None)
    | Some p ->
        (* Frontier-parallel exploration: successor expansion and
           canonicalisation run on worker domains; the engine's merge
           step reproduces sequential first-occurrence numbering, so
           [emit] (transition push + action interning, on the
           coordinator) sees exactly the sequential stream. *)
        let hits_par = Atomic.make 0 in
        let expand vec =
          List.map
            (fun move ->
              let rate =
                match move.Semantics.rate with
                | Rate.Active r -> r
                | Rate.Passive _ ->
                    raise
                      (Passive_transition
                         {
                           state = Compile.state_label compiled vec;
                           action = Action.to_string move.Semantics.action;
                         })
              in
              let dst = Semantics.apply vec move.Semantics.deltas in
              if use_sym && Symmetry.canonicalise sym dst then Atomic.incr hits_par;
              (dst, (rate, move.Semantics.action)))
            (Semantics.moves compiled vec)
        in
        let emit ~src ~dst (rate, action) = push src dst rate (intern_action action) in
        let progress =
          if obs_on then (
            (* The callback fires once per BFS level on the coordinator;
               the next frontier is exactly the states discovered during
               the level just merged. *)
            let seen = ref 0 in
            Some
              (fun ~states ~level ->
                Obs.Metrics.set frontier_states (float_of_int (states - !seen));
                seen := states;
                if states >= progress_every then
                  Obs.Log.progress ~stage:"statespace.build" ~count:states
                    ~detail:
                      (Printf.sprintf "level %d, %d transitions" level !n_transitions)))
          else None
        in
        let result =
          try
            Par.Explore.explore ~pool:p ~hash:hash_vec ~equal:vec_equal ~expand ~emit
              ~max_states ?progress
              (canonical (Compile.initial_state compiled))
          with Par.Explore.Limit -> raise (Too_many_states max_states)
        in
        hits := !hits + Atomic.get hits_par;
        (result.Par.Explore.states, Some result.Par.Explore.shard_states)
  in
  let n = Array.length explored_states in
  let count = !n_transitions in
  let tr_src = Array.sub !tr_src 0 count in
  let tr_dst = Array.sub !tr_dst 0 count in
  let tr_rate = Array.sub !tr_rate 0 count in
  let tr_action = Array.sub !tr_action 0 count in
  (* Sources are emitted in increasing order (BFS pops states by index),
     so the columns are already grouped by src; record the boundaries. *)
  let row_start = Array.make (n + 1) 0 in
  Array.iter (fun s -> row_start.(s + 1) <- row_start.(s + 1) + 1) tr_src;
  for i = 1 to n do
    row_start.(i) <- row_start.(i) + row_start.(i - 1)
  done;
  if obs_on then begin
    Obs.Metrics.add states_explored n;
    Obs.Metrics.add transitions_emitted count;
    Obs.Metrics.add intern_collisions !collisions;
    Obs.Span.add_int span "states" n;
    Obs.Span.add_int span "transitions" count;
    Obs.Span.add_int span "intern_collisions" !collisions;
    Obs.Span.add_int span "jobs"
      (match pool with Some p -> Par.Pool.size p | None -> 1);
    (match shard_occupancy with
    | Some occ ->
        let biggest = Array.fold_left max 0 occ in
        Obs.Metrics.set shard_states (float_of_int biggest);
        Obs.Span.add_int span "shard_states_max" biggest
    | None -> ());
    if use_sym then begin
      Obs.Metrics.add canonical_hits !hits;
      Obs.Span.add_int span "symmetry_groups" (Symmetry.n_groups sym);
      Obs.Span.add_int span "canonical_hits" !hits
    end
  end;
  {
    compiled;
    symmetry = sym;
    states = explored_states;
    tr_src;
    tr_dst;
    tr_rate;
    tr_action;
    actions = Array.of_list (List.rev !action_list);
    row_start;
    transition_cache = None;
    outgoing_cache = None;
    chain = None;
    lump = None;
  })

let of_model ?max_states ?symmetry ?jobs model =
  build ?max_states ?symmetry ?jobs (Compile.of_model model)

let of_string ?max_states ?symmetry ?jobs src =
  build ?max_states ?symmetry ?jobs (Compile.of_string src)

let compiled t = t.compiled
let symmetry t = t.symmetry
let n_states t = Array.length t.states
let n_transitions t = Array.length t.tr_src
let state t i = Array.copy t.states.(i)
let state_label t i = Compile.state_label t.compiled t.states.(i)
let initial_index _ = 0

let transition_record t k =
  {
    src = t.tr_src.(k);
    action = t.actions.(t.tr_action.(k));
    rate = t.tr_rate.(k);
    dst = t.tr_dst.(k);
  }

let iter_transitions t f =
  for k = 0 to Array.length t.tr_src - 1 do
    f ~src:t.tr_src.(k) ~action:t.actions.(t.tr_action.(k)) ~rate:t.tr_rate.(k)
      ~dst:t.tr_dst.(k)
  done

let fold_transitions t f init =
  let acc = ref init in
  for k = 0 to Array.length t.tr_src - 1 do
    acc :=
      f !acc ~src:t.tr_src.(k) ~action:t.actions.(t.tr_action.(k)) ~rate:t.tr_rate.(k)
        ~dst:t.tr_dst.(k)
  done;
  !acc

let transitions t =
  match t.transition_cache with
  | Some l -> l
  | None ->
      let l = List.init (n_transitions t) (transition_record t) in
      t.transition_cache <- Some l;
      l

let transitions_from t i =
  match t.outgoing_cache with
  | Some rows -> rows.(i)
  | None ->
      let rows =
        Array.init (n_states t) (fun s ->
            List.init
              (t.row_start.(s + 1) - t.row_start.(s))
              (fun k -> transition_record t (t.row_start.(s) + k)))
      in
      t.outgoing_cache <- Some rows;
      rows.(i)

let deadlocks t =
  let result = ref [] in
  for i = n_states t - 1 downto 0 do
    if t.row_start.(i) = t.row_start.(i + 1) then result := i :: !result
  done;
  !result

let action_names t =
  List.sort_uniq String.compare
    (List.filter_map Action.name (Array.to_list t.actions))

let ctmc t =
  (* CSR assembly inside [Ctmc.of_arrays] picks up the process-wide
     [Par.jobs] default on its own. *)
  match t.chain with
  | Some c -> c
  | None ->
      let c = Markov.Ctmc.of_arrays ~n:(n_states t) ~src:t.tr_src ~dst:t.tr_dst ~rate:t.tr_rate in
      t.chain <- Some c;
      c

(* The lump partition's classes must keep every reported measure exact
   under uniform disaggregation.  Ordinary lumpability alone guarantees
   exact class sums, not exact per-state probabilities, so the
   refinement is seeded with a respect key restricting which states may
   ever share a class:

   - with replica symmetry, each state's orbit (its canonicalised leaf
     vector): orbit members have equal steady-state probability (the
     permutations are chain automorphisms), so spreading a class mass
     uniformly is exact per state;
   - otherwise, each state's per-leaf local-label vector: classes are
     then homogeneous in the indicator of every [local_state_probability]
     query, so those measures (and all fluxes) survive even though
     merged states may have unequal probabilities.

   On a space already built with [~symmetry:true] the stored vectors are
   themselves canonical, the orbit keys are distinct per state, and the
   lump pass degenerates to the identity partition — correctly so, since
   distinct representatives are distinguishable by some local measure. *)
let lump_respect t =
  let n = n_states t in
  let keys : (int array, int) Hashtbl.t = Hashtbl.create (2 * n) in
  let next = ref 0 in
  let intern_key v =
    match Hashtbl.find_opt keys v with
    | Some id -> id
    | None ->
        let id = !next in
        Hashtbl.add keys v id;
        incr next;
        id
  in
  let sym =
    if Symmetry.is_trivial t.symmetry then Symmetry.detect t.compiled else t.symmetry
  in
  if not (Symmetry.is_trivial sym) then
    Array.map
      (fun vec ->
        let c = Array.copy vec in
        ignore (Symmetry.canonicalise sym c);
        intern_key c)
      t.states
  else begin
    let codes = Hashtbl.create 64 in
    let n_codes = ref 0 in
    let code s =
      match Hashtbl.find_opt codes s with
      | Some c -> c
      | None ->
          let c = !n_codes in
          Hashtbl.add codes s c;
          incr n_codes;
          c
    in
    Array.map
      (fun vec ->
        intern_key
          (Array.mapi
             (fun leaf local -> code (Compile.local_label t.compiled ~leaf ~local))
             vec))
      t.states
  end

let lump_partition t =
  match t.lump with
  | Some part -> part
  | None ->
      (* Labels are the interned action ids, so the refinement never
         merges states with different per-action exit signatures and
         every throughput measure is exact on the uniformly
         disaggregated solution; the respect key keeps the per-state
         measures exact as well. *)
      let part =
        Markov.Lump.refine ~respect:(lump_respect t) ~n:(n_states t) ~src:t.tr_src
          ~dst:t.tr_dst ~rate:t.tr_rate ~label:t.tr_action ()
      in
      t.lump <- Some part;
      part

let steady_state ?method_ ?options ?(lump = false) ?jobs t =
  if not lump then Markov.Steady.solve ?method_ ?options ?jobs (ctmc t)
  else begin
    let part = lump_partition t in
    if part.Markov.Lump.n_classes >= n_states t then
      Markov.Steady.solve ?method_ ?options ?jobs (ctmc t)
    else begin
      let quotient =
        Markov.Lump.quotient_ctmc part ~src:t.tr_src ~dst:t.tr_dst ~rate:t.tr_rate
      in
      Markov.Lump.disaggregate part (Markov.Steady.solve ?method_ ?options ?jobs quotient)
    end
  end

let transient t ~time =
  let n = n_states t in
  let initial = Array.make n 0.0 in
  initial.(0) <- 1.0;
  Markov.Transient.probabilities (ctmc t) ~initial ~t:time

(* Per-action-id steady-state flux in one pass over the columns. *)
let action_flux t pi =
  let flux = Array.make (Array.length t.actions) 0.0 in
  for k = 0 to Array.length t.tr_src - 1 do
    let id = t.tr_action.(k) in
    flux.(id) <- flux.(id) +. (pi.(t.tr_src.(k)) *. t.tr_rate.(k))
  done;
  flux

let throughput t pi name =
  let flux = ref 0.0 in
  for k = 0 to Array.length t.tr_src - 1 do
    match t.actions.(t.tr_action.(k)) with
    | Action.Act n when n = name -> flux := !flux +. (pi.(t.tr_src.(k)) *. t.tr_rate.(k))
    | Action.Act _ | Action.Tau -> ()
  done;
  !flux

let throughputs t pi =
  (* One pass over the columns; each named action type has exactly one
     interned id, so no regrouping is needed afterwards. *)
  let flux = action_flux t pi in
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.filter_map
       (fun id ->
         match Action.name t.actions.(id) with
         | Some name -> Some (name, flux.(id))
         | None -> None)
       (List.init (Array.length t.actions) Fun.id))

let local_state_probability t pi ~leaf ~label =
  (* Under symmetry reduction a single leaf's column of the canonical
     vectors is not its true marginal (canonicalisation shuffles values
     across the orbit), but the orbit-count is permutation-invariant, so
     averaging over the leaf's orbit recovers the exact measure.  With
     trivial symmetry the orbit is the singleton [leaf] and this is the
     plain sum. *)
  let orbit = Symmetry.orbit t.symmetry leaf in
  let scale = 1.0 /. float_of_int (Array.length orbit) in
  let total = ref 0.0 in
  Array.iteri
    (fun i vec ->
      let hits = ref 0 in
      Array.iter
        (fun j -> if Compile.local_label t.compiled ~leaf:j ~local:vec.(j) = label then incr hits)
        orbit;
      if !hits > 0 then total := !total +. (pi.(i) *. float_of_int !hits *. scale))
    t.states;
  !total

let pp_summary fmt t =
  Format.fprintf fmt "%d states, %d transitions, %d deadlock state(s)" (n_states t)
    (n_transitions t)
    (List.length (deadlocks t))
