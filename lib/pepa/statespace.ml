type transition = { src : int; action : Action.t; rate : float; dst : int }

(* Transitions live in a compressed grouped stream with the action
   types interned into a small table: [row_start] delimits each source
   state's slice (the src column is its run-length encoding and is
   never stored), and each transition packs destination and action id
   into one word next to its rate — two words per transition where the
   seed layout spent four.  The CTMC assembles straight from the
   stream ([Ctmc.of_grouped]); the historical list-returning API
   survives as a thin compatibility layer that materialises (and
   caches) records on demand. *)
type t = {
  compiled : Compile.t;
  symmetry : Symmetry.t;  (* trivial unless built with ~symmetry:true *)
  codec : Statekey.t;
  n_states : int;
  packed : Bytes.t;  (* bit-packed state arena: state [i] at [i * Statekey.size codec] *)
  tr_pack : int array;  (* dst in the low bits, interned action id above *)
  tr_rate : float array;
  actions : Action.t array;  (* interned action table *)
  row_start : int array;  (* CSR over transitions grouped by src; length n_states + 1 *)
  mutable transition_cache : transition list option;
  mutable outgoing_cache : transition list array option;
  mutable chain : Markov.Ctmc.t option;
  mutable lump : Markov.Lump.t option;
}

(* Destination in the low 48 bits, action id in the bits above:
   comfortably inside a 63-bit int for any explorable space (the
   default cap is 10^6 states) and any realistic action alphabet (the
   14-bit budget is guarded at intern time). *)
let pack_dst_bits = 48
let pack_dst_mask = (1 lsl pack_dst_bits) - 1
let max_interned_actions = 1 lsl (62 - pack_dst_bits)
let pack ~dst ~action = (action lsl pack_dst_bits) lor dst
let tr_dst t k = t.tr_pack.(k) land pack_dst_mask
let tr_action_id t k = t.tr_pack.(k) lsr pack_dst_bits

exception Too_many_states of int
exception Passive_transition of { state : string; action : string }

(* Shared exploration metrics (the PEPA-net builder adds to the same
   counters, so a pipeline run reports one total per name). *)
let states_explored = Obs.Metrics.counter "states_explored"
let transitions_emitted = Obs.Metrics.counter "transitions_emitted"
let intern_collisions = Obs.Metrics.counter "intern_collisions"
let canonical_hits = Obs.Metrics.counter "statespace.canonical_hits"

(* Largest per-shard dedup-table occupancy of the most recent parallel
   build (the PEPA-net builder sets the same gauge). *)
let shard_states = Obs.Metrics.gauge "statespace.shard_states"

(* Discovered-but-unexpanded states, refreshed while the build runs so
   the background sampler can chart frontier occupancy over time (the
   PEPA-net builder shares the gauge). *)
let frontier_states = Obs.Metrics.gauge "statespace.frontier_states"

(* Compressed state storage (the PEPA-net builder sets the same gauges
   for its marking keys): bytes per bit-packed key and total arena
   footprint of the most recent build. *)
let packed_key_bytes = Obs.Metrics.gauge "statespace.packed_key_bytes"
let packed_arena_bytes = Obs.Metrics.gauge "statespace.packed_arena_bytes"

(* Every explored vector is bit-packed through the codec before it
   touches a table: the intern structures and the state store hold
   compact [Bytes.t] keys (a handful of bytes each) instead of boxed
   [int array]s (a header plus a word per leaf).  Hashing is FNV-1a
   over the key bytes, computed exactly once per interned key: the
   table stores each slot's hash, so probing and resizing compare
   integers, never rehash keys. *)
let codec_of compiled =
  Statekey.of_cardinalities
    (Array.map
       (fun comp -> Array.length compiled.Compile.components.(comp).Compile.states)
       compiled.Compile.leaf_component)

let build ?(max_states = 1_000_000) ?(symmetry = false) ?jobs compiled =
  Obs.Span.with_ "statespace.build" (fun span ->
  let obs_on = Obs.Config.enabled () in
  let progress_every = Obs.Config.progress_interval () in
  let collisions = ref 0 in
  (* Replica symmetry: every explored vector is canonicalised before
     interning, so an orbit of permutation-equivalent states collapses
     to one representative (counter abstraction).  Sound because the
     permutations are automorphisms of the labelled chain — the reduced
     chain is its exact ordinary lumping. *)
  let sym = if symmetry then Symmetry.detect compiled else Symmetry.trivial in
  let use_sym = not (Symmetry.is_trivial sym) in
  let hits = ref 0 in
  let canonical vec =
    if use_sym && Symmetry.canonicalise sym vec then incr hits;
    vec
  in
  let codec = codec_of compiled in
  let key_size = Statekey.size codec in
  (* Contiguous packed state store; BFS order doubles as the index
     order, so the work queue is just a cursor into it.  One heap block
     holds every interned state. *)
  let arena = ref (Bytes.create (1024 * (max key_size 1))) in
  let n_states = ref 0 in
  (* Scratch key the candidate vector is packed into before probing. *)
  let scratch = Bytes.create key_size in
  (* Open-addressing intern table: [slots] holds state index + 1 (0 =
     empty), [hashes] the stored hash of that slot's key. *)
  let capacity = ref 4096 in
  let slots = ref (Array.make !capacity 0) in
  let hashes = ref (Array.make !capacity 0) in
  let rehash () =
    let old_slots = !slots and old_hashes = !hashes in
    capacity := !capacity * 2;
    slots := Array.make !capacity 0;
    hashes := Array.make !capacity 0;
    let mask = !capacity - 1 in
    Array.iteri
      (fun k s ->
        if s <> 0 then begin
          let h = old_hashes.(k) in
          let pos = ref (h land mask) in
          while !slots.(!pos) <> 0 do
            pos := (!pos + 1) land mask
          done;
          !slots.(!pos) <- s;
          !hashes.(!pos) <- h
        end)
      old_slots
  in
  let intern vec =
    Statekey.pack_into codec vec scratch 0;
    let h = Statekey.hash scratch in
    let mask = !capacity - 1 in
    let pos = ref (h land mask) in
    let result = ref (-1) in
    while !result < 0 do
      let s = !slots.(!pos) in
      if s = 0 then begin
        if !n_states >= max_states then raise (Too_many_states max_states);
        let i = !n_states in
        if (i + 1) * key_size > Bytes.length !arena then begin
          let bigger = Bytes.create (2 * Bytes.length !arena) in
          Bytes.blit !arena 0 bigger 0 (i * key_size);
          arena := bigger
        end;
        Statekey.blit_key codec scratch !arena i;
        incr n_states;
        !slots.(!pos) <- i + 1;
        !hashes.(!pos) <- h;
        if 4 * !n_states > 3 * !capacity then rehash ();
        result := i
      end
      else if !hashes.(!pos) = h && Statekey.matches codec !arena (s - 1) scratch then
        result := s - 1
      else begin
        incr collisions;
        pos := (!pos + 1) land mask
      end
    done;
    !result
  in
  (* Compressed transition buffers, doubled on demand: one packed
     dst/action word and one rate per transition.  Sources arrive in
     nondecreasing order (BFS pops states by index), so the src column
     reduces to per-source counts recorded as the stream is emitted. *)
  let tr_cap = ref 4096 in
  let tr_pack = ref (Array.make !tr_cap 0) in
  let tr_rate = ref (Array.make !tr_cap 0.0) in
  let n_transitions = ref 0 in
  let rc_cap = ref 4096 in
  let row_count = ref (Array.make !rc_cap 0) in
  let push src dst rate action =
    if !n_transitions = !tr_cap then begin
      let grow_int a = let b = Array.make (2 * !tr_cap) 0 in Array.blit a 0 b 0 !tr_cap; b in
      let grow_float a = let b = Array.make (2 * !tr_cap) 0.0 in Array.blit a 0 b 0 !tr_cap; b in
      tr_pack := grow_int !tr_pack;
      tr_rate := grow_float !tr_rate;
      tr_cap := 2 * !tr_cap
    end;
    if src >= !rc_cap then begin
      let cap = ref (2 * !rc_cap) in
      while src >= !cap do
        cap := 2 * !cap
      done;
      let b = Array.make !cap 0 in
      Array.blit !row_count 0 b 0 !rc_cap;
      row_count := b;
      rc_cap := !cap
    end;
    !row_count.(src) <- !row_count.(src) + 1;
    let k = !n_transitions in
    !tr_pack.(k) <- pack ~dst ~action;
    !tr_rate.(k) <- rate;
    incr n_transitions
  in
  (* Action interning. *)
  let action_ids = Hashtbl.create 16 in
  let action_list = ref [] in
  let n_actions = ref 0 in
  let intern_action a =
    match Hashtbl.find_opt action_ids a with
    | Some id -> id
    | None ->
        if !n_actions >= max_interned_actions then
          invalid_arg "Statespace.build: action alphabet exceeds the packed budget";
        let id = !n_actions in
        Hashtbl.add action_ids a id;
        action_list := a :: !action_list;
        incr n_actions;
        id
  in
  let pool = Par.pool ?jobs () in
  let packed_states, n, shard_occupancy =
    match pool with
    | None ->
        ignore (intern (canonical (Compile.initial_state compiled)));
        let next = ref 0 in
        while !next < !n_states do
          let src = !next in
          if obs_on then begin
            Obs.Metrics.set frontier_states (float_of_int (!n_states - src));
            if src > 0 && src mod progress_every = 0 then
              Obs.Log.progress ~stage:"statespace.build" ~count:src
                ~detail:
                  (Printf.sprintf "%d discovered, %d transitions" !n_states !n_transitions)
          end;
          let vec = Statekey.unpack_at codec !arena src in
          List.iter
            (fun move ->
              let rate =
                match move.Semantics.rate with
                | Rate.Active r -> r
                | Rate.Passive _ ->
                    raise
                      (Passive_transition
                         {
                           state = Compile.state_label compiled vec;
                           action = Action.to_string move.Semantics.action;
                         })
              in
              let dst = intern (canonical (Semantics.apply vec move.Semantics.deltas)) in
              push src dst rate (intern_action move.Semantics.action))
            (Semantics.moves compiled vec);
          incr next
        done;
        (Bytes.sub !arena 0 (!n_states * key_size), !n_states, None)
    | Some p ->
        (* Frontier-parallel exploration: successor expansion and
           canonicalisation run on worker domains; the engine's merge
           step reproduces sequential first-occurrence numbering, so
           [emit] (transition push + action interning, on the
           coordinator) sees exactly the sequential stream.  The engine
           is instantiated at packed keys: its sharded dedup tables and
           frontiers hold compact [Bytes.t] keys, and vectors exist
           only transiently inside [expand]. *)
        let hits_par = Atomic.make 0 in
        let expand key =
          let vec = Statekey.unpack codec key in
          List.map
            (fun move ->
              let rate =
                match move.Semantics.rate with
                | Rate.Active r -> r
                | Rate.Passive _ ->
                    raise
                      (Passive_transition
                         {
                           state = Compile.state_label compiled vec;
                           action = Action.to_string move.Semantics.action;
                         })
              in
              let dst = Semantics.apply vec move.Semantics.deltas in
              if use_sym && Symmetry.canonicalise sym dst then Atomic.incr hits_par;
              (Statekey.pack codec dst, (rate, move.Semantics.action)))
            (Semantics.moves compiled vec)
        in
        let emit ~src ~dst (rate, action) = push src dst rate (intern_action action) in
        let progress =
          if obs_on then (
            (* The callback fires once per BFS level on the coordinator;
               the next frontier is exactly the states discovered during
               the level just merged. *)
            let seen = ref 0 in
            Some
              (fun ~states ~level ->
                Obs.Metrics.set frontier_states (float_of_int (states - !seen));
                seen := states;
                if states >= progress_every then
                  Obs.Log.progress ~stage:"statespace.build" ~count:states
                    ~detail:
                      (Printf.sprintf "level %d, %d transitions" level !n_transitions)))
          else None
        in
        let result =
          try
            Par.Explore.explore ~pool:p ~hash:Statekey.hash ~equal:Statekey.equal ~expand
              ~emit ~max_states ?progress
              (Statekey.pack codec (canonical (Compile.initial_state compiled)))
          with Par.Explore.Limit -> raise (Too_many_states max_states)
        in
        hits := !hits + Atomic.get hits_par;
        let keys = result.Par.Explore.states in
        let count = Array.length keys in
        let packed = Bytes.create (count * key_size) in
        Array.iteri (fun i k -> Statekey.blit_key codec k packed i) keys;
        (packed, count, Some result.Par.Explore.shard_states)
  in
  let count = !n_transitions in
  let tr_pack = Array.sub !tr_pack 0 count in
  let tr_rate = Array.sub !tr_rate 0 count in
  (* Sources were emitted in increasing order, so the per-source counts
     scan straight into the row boundaries (states past the counter's
     high-water mark emitted nothing). *)
  let row_start = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_start.(i + 1) <- row_start.(i) + (if i < !rc_cap then !row_count.(i) else 0)
  done;
  if obs_on then begin
    Obs.Metrics.add states_explored n;
    Obs.Metrics.add transitions_emitted count;
    Obs.Metrics.add intern_collisions !collisions;
    Obs.Metrics.set packed_key_bytes (float_of_int key_size);
    Obs.Metrics.set packed_arena_bytes (float_of_int (Bytes.length packed_states));
    Obs.Span.add_int span "states" n;
    Obs.Span.add_int span "transitions" count;
    Obs.Span.add_int span "intern_collisions" !collisions;
    Obs.Span.add_int span "packed_key_bytes" key_size;
    Obs.Span.add_int span "jobs"
      (match pool with Some p -> Par.Pool.size p | None -> 1);
    (match shard_occupancy with
    | Some occ ->
        let biggest = Array.fold_left max 0 occ in
        Obs.Metrics.set shard_states (float_of_int biggest);
        Obs.Span.add_int span "shard_states_max" biggest
    | None -> ());
    if use_sym then begin
      Obs.Metrics.add canonical_hits !hits;
      Obs.Span.add_int span "symmetry_groups" (Symmetry.n_groups sym);
      Obs.Span.add_int span "canonical_hits" !hits
    end
  end;
  {
    compiled;
    symmetry = sym;
    codec;
    n_states = n;
    packed = packed_states;
    tr_pack;
    tr_rate;
    actions = Array.of_list (List.rev !action_list);
    row_start;
    transition_cache = None;
    outgoing_cache = None;
    chain = None;
    lump = None;
  })

let of_model ?max_states ?symmetry ?jobs model =
  build ?max_states ?symmetry ?jobs (Compile.of_model model)

let of_string ?max_states ?symmetry ?jobs src =
  build ?max_states ?symmetry ?jobs (Compile.of_string src)

let compiled t = t.compiled
let symmetry t = t.symmetry
let n_states t = t.n_states
let n_transitions t = Array.length t.tr_pack

let state t i =
  if i < 0 || i >= t.n_states then invalid_arg "Statespace.state: index out of range";
  Statekey.unpack_at t.codec t.packed i

let state_label t i = Compile.state_label t.compiled (state t i)
let initial_index _ = 0

(* The source of transition [k] is implicit in [row_start]; record
   consumers all iterate by row, so it is threaded in rather than
   searched for. *)
let transition_record t ~src k =
  {
    src;
    action = t.actions.(tr_action_id t k);
    rate = t.tr_rate.(k);
    dst = tr_dst t k;
  }

let iter_transitions t f =
  for s = 0 to t.n_states - 1 do
    for k = t.row_start.(s) to t.row_start.(s + 1) - 1 do
      f ~src:s ~action:t.actions.(tr_action_id t k) ~rate:t.tr_rate.(k) ~dst:(tr_dst t k)
    done
  done

let fold_transitions t f init =
  let acc = ref init in
  for s = 0 to t.n_states - 1 do
    for k = t.row_start.(s) to t.row_start.(s + 1) - 1 do
      acc :=
        f !acc ~src:s ~action:t.actions.(tr_action_id t k) ~rate:t.tr_rate.(k)
          ~dst:(tr_dst t k)
    done
  done;
  !acc

let transitions t =
  match t.transition_cache with
  | Some l -> l
  | None ->
      let acc = ref [] in
      for s = n_states t - 1 downto 0 do
        for k = t.row_start.(s + 1) - 1 downto t.row_start.(s) do
          acc := transition_record t ~src:s k :: !acc
        done
      done;
      t.transition_cache <- Some !acc;
      !acc

let transitions_from t i =
  match t.outgoing_cache with
  | Some rows -> rows.(i)
  | None ->
      let rows =
        Array.init (n_states t) (fun s ->
            List.init
              (t.row_start.(s + 1) - t.row_start.(s))
              (fun k -> transition_record t ~src:s (t.row_start.(s) + k)))
      in
      t.outgoing_cache <- Some rows;
      rows.(i)

let deadlocks t =
  let result = ref [] in
  for i = n_states t - 1 downto 0 do
    if t.row_start.(i) = t.row_start.(i + 1) then result := i :: !result
  done;
  !result

let action_names t =
  List.sort_uniq String.compare
    (List.filter_map Action.name (Array.to_list t.actions))

let ctmc t =
  match t.chain with
  | Some c -> c
  | None ->
      (* The CSR assembles straight from the compressed stream: the
         grouped layout is exactly what [Ctmc.of_grouped] consumes, so
         no src/dst/rate coordinate arrays ever exist. *)
      let c =
        Markov.Ctmc.of_grouped ~n:(n_states t) ~row_start:t.row_start ~dst:(tr_dst t)
          ~rate:(fun k -> t.tr_rate.(k))
      in
      t.chain <- Some c;
      c

let release_derived t =
  t.transition_cache <- None;
  t.outgoing_cache <- None;
  t.chain <- None;
  t.lump <- None

(* The lump partition's classes must keep every reported measure exact
   under uniform disaggregation.  Ordinary lumpability alone guarantees
   exact class sums, not exact per-state probabilities, so the
   refinement is seeded with a respect key restricting which states may
   ever share a class:

   - with replica symmetry, each state's orbit (its canonicalised leaf
     vector): orbit members have equal steady-state probability (the
     permutations are chain automorphisms), so spreading a class mass
     uniformly is exact per state;
   - otherwise, each state's per-leaf local-label vector: classes are
     then homogeneous in the indicator of every [local_state_probability]
     query, so those measures (and all fluxes) survive even though
     merged states may have unequal probabilities.

   On a space already built with [~symmetry:true] the stored vectors are
   themselves canonical, the orbit keys are distinct per state, and the
   lump pass degenerates to the identity partition — correctly so, since
   distinct representatives are distinguishable by some local measure. *)
let lump_respect t =
  let n = n_states t in
  let keys : (int array, int) Hashtbl.t = Hashtbl.create (2 * n) in
  let next = ref 0 in
  let intern_key v =
    match Hashtbl.find_opt keys v with
    | Some id -> id
    | None ->
        let id = !next in
        Hashtbl.add keys v id;
        incr next;
        id
  in
  let sym =
    if Symmetry.is_trivial t.symmetry then Symmetry.detect t.compiled else t.symmetry
  in
  if not (Symmetry.is_trivial sym) then
    Array.init n (fun i ->
        let c = Statekey.unpack_at t.codec t.packed i in
        ignore (Symmetry.canonicalise sym c);
        intern_key c)
  else begin
    let codes = Hashtbl.create 64 in
    let n_codes = ref 0 in
    let code s =
      match Hashtbl.find_opt codes s with
      | Some c -> c
      | None ->
          let c = !n_codes in
          Hashtbl.add codes s c;
          incr n_codes;
          c
    in
    Array.init n (fun i ->
        let vec = Statekey.unpack_at t.codec t.packed i in
        intern_key
          (Array.mapi
             (fun leaf local -> code (Compile.local_label t.compiled ~leaf ~local))
             vec))
  end

(* The partition refinement still speaks flat coordinate columns;
   expanding the compressed stream here is transient and confined to
   aggregation requests, which target far smaller spaces than the raw
   solves the compression exists for. *)
let transition_columns t =
  let m = n_transitions t in
  let src = Array.make m 0 in
  let dst = Array.make m 0 in
  let label = Array.make m 0 in
  for s = 0 to n_states t - 1 do
    for k = t.row_start.(s) to t.row_start.(s + 1) - 1 do
      src.(k) <- s;
      dst.(k) <- tr_dst t k;
      label.(k) <- tr_action_id t k
    done
  done;
  (src, dst, label)

let lump_partition t =
  match t.lump with
  | Some part -> part
  | None ->
      (* Labels are the interned action ids, so the refinement never
         merges states with different per-action exit signatures and
         every throughput measure is exact on the uniformly
         disaggregated solution; the respect key keeps the per-state
         measures exact as well. *)
      let src, dst, label = transition_columns t in
      let part =
        Markov.Lump.refine ~respect:(lump_respect t) ~n:(n_states t) ~src ~dst
          ~rate:t.tr_rate ~label ()
      in
      t.lump <- Some part;
      part

let steady_state ?method_ ?options ?(lump = false) ?jobs t =
  if not lump then Markov.Steady.solve ?method_ ?options ?jobs (ctmc t)
  else begin
    let part = lump_partition t in
    if part.Markov.Lump.n_classes >= n_states t then
      Markov.Steady.solve ?method_ ?options ?jobs (ctmc t)
    else begin
      let src, dst, _ = transition_columns t in
      let quotient = Markov.Lump.quotient_ctmc part ~src ~dst ~rate:t.tr_rate in
      Markov.Lump.disaggregate part (Markov.Steady.solve ?method_ ?options ?jobs quotient)
    end
  end

let transient t ~time =
  let n = n_states t in
  let initial = Array.make n 0.0 in
  initial.(0) <- 1.0;
  Markov.Transient.probabilities (ctmc t) ~initial ~t:time

(* Per-action-id steady-state flux in one pass over the columns. *)
let action_flux t pi =
  let flux = Array.make (Array.length t.actions) 0.0 in
  for s = 0 to t.n_states - 1 do
    for k = t.row_start.(s) to t.row_start.(s + 1) - 1 do
      let id = tr_action_id t k in
      flux.(id) <- flux.(id) +. (pi.(s) *. t.tr_rate.(k))
    done
  done;
  flux

let throughput t pi name =
  let flux = ref 0.0 in
  for s = 0 to t.n_states - 1 do
    for k = t.row_start.(s) to t.row_start.(s + 1) - 1 do
      match t.actions.(tr_action_id t k) with
      | Action.Act n when n = name -> flux := !flux +. (pi.(s) *. t.tr_rate.(k))
      | Action.Act _ | Action.Tau -> ()
    done
  done;
  !flux

let throughputs t pi =
  (* One pass over the columns; each named action type has exactly one
     interned id, so no regrouping is needed afterwards. *)
  let flux = action_flux t pi in
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.filter_map
       (fun id ->
         match Action.name t.actions.(id) with
         | Some name -> Some (name, flux.(id))
         | None -> None)
       (List.init (Array.length t.actions) Fun.id))

let local_state_probability t pi ~leaf ~label =
  (* Under symmetry reduction a single leaf's column of the canonical
     vectors is not its true marginal (canonicalisation shuffles values
     across the orbit), but the orbit-count is permutation-invariant, so
     averaging over the leaf's orbit recovers the exact measure.  With
     trivial symmetry the orbit is the singleton [leaf] and this is the
     plain sum. *)
  let orbit = Symmetry.orbit t.symmetry leaf in
  let scale = 1.0 /. float_of_int (Array.length orbit) in
  let total = ref 0.0 in
  let key_size = Statekey.size t.codec in
  let vec = Array.make (Statekey.n_fields t.codec) 0 in
  for i = 0 to t.n_states - 1 do
    Statekey.unpack_into t.codec t.packed (i * key_size) vec;
    let hits = ref 0 in
    Array.iter
      (fun j -> if Compile.local_label t.compiled ~leaf:j ~local:vec.(j) = label then incr hits)
      orbit;
    if !hits > 0 then total := !total +. (pi.(i) *. float_of_int !hits *. scale)
  done;
  !total

let pp_summary fmt t =
  Format.fprintf fmt "%d states, %d transitions, %d deadlock state(s)" (n_states t)
    (n_transitions t)
    (List.length (deadlocks t))
