(** Bit-packed state keys: compressed storage for exploration.

    A global PEPA state is a vector of small bounded integers (each
    leaf's local-state index); a PEPA-net marking flattens to one too.
    Storing such vectors as boxed [int array]s costs a header plus a
    full word per field — two orders of magnitude more than the
    information content.  A codec built from the per-field
    cardinalities packs each vector into a fixed-width little-endian
    bit string held in [Bytes.t], so the intern tables and the state
    arena of the builders keep one compact key per state instead of a
    boxed vector.

    The packing is a bijection on valid vectors: [unpack] of [pack] is
    the identity, and two vectors pack equal iff they are equal — so
    [Bytes.equal] on keys is exactly vector equality and hashing the
    key bytes is a sound intern-table hash. *)

type t
(** A codec: field widths and the derived key size.  Immutable and
    shareable across domains. *)

val of_cardinalities : int array -> t
(** [of_cardinalities card] builds a codec for vectors [v] with
    [0 <= v.(i) < card.(i)].  Field [i] occupies [ceil (log2 card.(i))]
    bits; fields of cardinality 1 occupy none.  Raises
    [Invalid_argument] on a non-positive cardinality. *)

val n_fields : t -> int

val size : t -> int
(** Bytes per packed key (0 when every field has cardinality 1). *)

val pack : t -> int array -> Bytes.t
(** Pack a vector into a fresh key.  Raises [Invalid_argument] on a
    length mismatch or an out-of-range field. *)

val pack_into : t -> int array -> Bytes.t -> int -> unit
(** [pack_into c v buf off] packs into [buf] at byte offset [off]
    (clearing the destination bytes first), for scratch-key reuse and
    arena writes. *)

val unpack : t -> Bytes.t -> int array
(** Decode a whole key (offset 0) into a fresh vector. *)

val unpack_into : t -> Bytes.t -> int -> int array -> unit
(** [unpack_into c buf off v] decodes the key at byte offset [off]
    into the preallocated [v]. *)

val hash : Bytes.t -> int
(** FNV-1a over the key bytes, masked positive — the same scheme the
    builders previously applied to the boxed vectors. *)

val equal : Bytes.t -> Bytes.t -> bool
(** [Bytes.equal]. *)

(** {1 Arena access}

    The sequential builders store keys contiguously in one growable
    byte arena — state [i] lives at byte offset [i * size c] — so a
    million interned states cost one heap block. *)

val blit_key : t -> Bytes.t -> Bytes.t -> int -> unit
(** [blit_key c key arena i] stores [key] as arena entry [i]. *)

val matches : t -> Bytes.t -> int -> Bytes.t -> bool
(** [matches c arena i key]: does arena entry [i] equal [key]? *)

val unpack_at : t -> Bytes.t -> int -> int array
(** [unpack_at c arena i] decodes arena entry [i] into a fresh
    vector. *)
