(** Replica symmetry of compiled PEPA models: counter abstraction at
    exploration time.

    [P\[n\]] (and any hand-written cooperation chain over one set whose
    members are structurally identical) produces [n] interchangeable
    copies of the same behaviour: permuting the copies' local states
    yields a strongly equivalent global state.  {!detect} finds these
    replica groups in the compiled cooperation structure and
    {!canonicalise} maps every leaf-state vector to its
    lexicographically least permutation, so the state-space builder
    interns one representative per orbit — the choose-with-repetition
    counter abstraction that turns the [2^n] states of a replicated
    two-state process into [n + 1].

    Outgoing rates from a representative are those of every orbit
    member (the permutation is an automorphism of the labelled chain),
    so the reduced chain is the exact ordinary lumping of the full one
    and all action-flux measures are preserved.  Per-leaf measures are
    recovered by orbit averaging: symmetric leaves share one marginal
    distribution, exposed through {!orbit}. *)

type t

val detect : Compile.t -> t
(** Find the replica groups of the model's cooperation structure:
    members of a same-set cooperation chain with identical structure
    (components, cooperation and hiding sets).  Nested replication is
    detected innermost-first, so canonicalisation orders inner replicas
    before comparing outer ones. *)

val trivial : t
(** No groups: {!canonicalise} is the identity. *)

val is_trivial : t -> bool
(** [true] when the model has no replica group of two or more members
    (canonicalisation would never change a state). *)

val n_groups : t -> int

val canonicalise : t -> int array -> bool
(** Rewrite the leaf-state vector in place to the orbit representative:
    within each group, replica sub-vectors are sorted lexicographically.
    Returns [true] when the vector changed (a "canonical hit"). *)

val orbit : t -> int -> int array
(** The leaves symmetric to the given leaf (its position across all
    replicas of its group), including the leaf itself; a singleton for
    leaves outside every group.  Per-leaf measures on the reduced chain
    average over this orbit. *)
