(** Exhaustive state-space exploration and CTMC derivation.

    The derivation graph is built breadth-first from the initial state,
    treating every distinct leaf-state vector as a CTMC state, exactly as
    in the PEPA Workbench.  The resulting labelled transition system
    retains action labels so that action-type measures (throughput) can
    be computed after the steady-state solution.

    Internally transitions are stored as a compressed grouped stream
    with the action types interned into a table: the row-boundary array
    is the src column's run-length encoding (so no src column exists),
    and each transition packs destination and action id into a single
    word next to its rate — two words per transition.  The CTMC is
    assembled straight from the stream; the list-returning accessors
    below are a compatibility layer that materialises records on demand
    (cached, so repeated calls stay cheap).

    State vectors are bit-packed through {!Statekey} before they touch
    any table: the intern structures hold compact byte keys hashed
    exactly once, and the explored states live in one contiguous packed
    arena (a few bytes per state instead of a boxed [int array]), so
    exploration memory is dominated by the transition columns rather
    than the state store.  Accessors decode on demand. *)

type transition = { src : int; action : Action.t; rate : float; dst : int }

type t

exception Too_many_states of int
(** Raised when exploration exceeds the [max_states] bound. *)

exception Passive_transition of { state : string; action : string }
(** Raised when a passive activity survives to the top level of the
    model: its rate is unspecified, so no CTMC exists.  The offending
    state and action are reported. *)

val states_explored : Obs.Metrics.counter
(** Shared exploration counters: this builder and
    {!Pepanet.Net_statespace.build} add to the same process-global
    metrics, so a pipeline run reports one total per name.
    [intern_collisions] counts probes past an occupied slot in the
    open-addressing intern table. *)

val transitions_emitted : Obs.Metrics.counter
val intern_collisions : Obs.Metrics.counter

val canonical_hits : Obs.Metrics.counter
(** States rewritten to a previously seen orbit representative during a
    symmetry-reduced build (["statespace.canonical_hits"]). *)

val shard_states : Obs.Metrics.gauge
(** Largest per-shard dedup-table occupancy of the most recent parallel
    build (["statespace.shard_states"]); untouched by sequential
    builds.  Shared with {!Pepanet.Net_statespace.build}. *)

val frontier_states : Obs.Metrics.gauge
(** Discovered-but-unexpanded states of the build in progress
    (["statespace.frontier_states"]), refreshed per expansion
    (sequential) or per BFS level (parallel) so the background sampler
    can chart frontier occupancy over time.  Shared with
    {!Pepanet.Net_statespace.build}. *)

val packed_key_bytes : Obs.Metrics.gauge
(** Bytes per bit-packed state key of the most recent build
    (["statespace.packed_key_bytes"]).  Shared with
    {!Pepanet.Net_statespace.build}, which sets it for its marking
    keys. *)

val packed_arena_bytes : Obs.Metrics.gauge
(** Total packed state-arena footprint of the most recent build in
    bytes (["statespace.packed_arena_bytes"]).  Shared with
    {!Pepanet.Net_statespace.build}. *)

val build : ?max_states:int -> ?symmetry:bool -> ?jobs:int -> Compile.t -> t
(** Explore the full state space (default bound: 1_000_000 states).
    Emits a ["statespace.build"] tracing span, adds to the exploration
    counters, and reports progress every [Obs.Config.progress_interval]
    states when telemetry is enabled.

    With [~symmetry:true] every vector is canonicalised through
    {!Symmetry.canonicalise} before interning, so permutation-equivalent
    states of replicated components collapse to one representative.
    The reduced chain is the exact ordinary lumping of the full one:
    throughputs are unchanged and {!local_state_probability} averages
    over the leaf's orbit.  Models without replica groups explore
    identically (detection is a one-off structural pass).

    [jobs] overrides the process-wide [Par.jobs] default.  Above 1,
    exploration runs frontier-parallel on the domain pool: successor
    expansion and canonicalisation are sharded by state hash with
    per-shard dedup tables, and the merge step preserves sequential
    first-occurrence numbering — state indices, transition order,
    symmetry orbits and lump respect keys are identical to a [jobs = 1]
    build. *)

val of_model : ?max_states:int -> ?symmetry:bool -> ?jobs:int -> Syntax.model -> t
val of_string : ?max_states:int -> ?symmetry:bool -> ?jobs:int -> string -> t

val compiled : t -> Compile.t

val symmetry : t -> Symmetry.t
(** The replica symmetry used during the build ({!Symmetry.trivial}
    unless [~symmetry:true] found groups). *)

val n_states : t -> int

val n_transitions : t -> int
(** O(1): the count is a consequence of the column layout, not a list
    traversal. *)

val state : t -> int -> int array
val state_label : t -> int -> string
val initial_index : t -> int

val transitions : t -> transition list
(** All transitions as records, in exploration order (grouped by
    source).  Materialised from the compressed stream on first call and
    cached. *)

val transitions_from : t -> int -> transition list

val iter_transitions :
  t -> (src:int -> action:Action.t -> rate:float -> dst:int -> unit) -> unit
(** Iterate the compressed stream directly — no list, no record
    allocation. *)

val fold_transitions :
  t -> ('a -> src:int -> action:Action.t -> rate:float -> dst:int -> 'a) -> 'a -> 'a

val deadlocks : t -> int list
(** Indices of states with no outgoing transitions. *)

val action_names : t -> string list
(** Named action types occurring on reachable transitions, sorted.
    Read from the interned action table: O(#action types). *)

val ctmc : t -> Markov.Ctmc.t
(** The derived CTMC (transition rates between identical state pairs are
    summed; computed once and cached).  Assembled from the compressed
    stream via {!Markov.Ctmc.of_grouped} — no coordinate arrays are
    materialised. *)

val release_derived : t -> unit
(** Drop every cached derived structure — the CTMC (and its transposed
    generator), the lump partition, and the materialised transition
    record lists.  They are rebuilt on demand by the next accessor, so
    this only trades time for space: callers holding several large
    spaces at once (the benchmark harness between its sequential and
    parallel pipelines) use it to keep one pipeline's CSR matrices from
    inflating the other's peak. *)

val lump_partition : t -> Markov.Lump.t
(** Coarsest ordinary lumping of the derived chain that respects the
    per-action-type exit signature (computed once and cached).  Because
    classes never mix action signatures, throughput measures on the
    uniformly disaggregated lumped solution are exact. *)

val steady_state :
  ?method_:Markov.Steady.method_ ->
  ?options:Markov.Steady.options ->
  ?lump:bool ->
  ?jobs:int ->
  t ->
  float array
(** Steady-state distribution over the explored states.  With
    [~lump:true] the solver runs on the lumped quotient chain and the
    result is disaggregated uniformly within each class — same length,
    same throughputs, exact per-class probabilities.  Chains the
    refinement cannot compress solve directly. *)

val transient : t -> time:float -> float array
(** Transient distribution starting from the initial state. *)

val throughput : t -> float array -> string -> float
(** [throughput space pi action] is the steady-state throughput of the
    named action type: the expected number of completions per time
    unit.  One pass over the compressed stream. *)

val throughputs : t -> float array -> (string * float) list
(** Throughput of every reachable action type, sorted by name.  One
    pass over the compressed stream for all action types together (the seed
    implementation rescanned the transition list once per name). *)

val local_state_probability : t -> float array -> leaf:int -> label:string -> float
(** Probability that the given leaf component is in the local state with
    the given label (a component-state "utilisation" measure).  On a
    symmetry-reduced space this averages over the leaf's orbit —
    symmetric replicas share one marginal — so the value matches the
    unreduced model exactly. *)

val pp_summary : Format.formatter -> t -> unit
