type transition = { src : int; label : Net_semantics.label; rate : float; dst : int }

(* Same compressed stream layout as [Pepa.Statespace]: [row_start] is
   the src column's run-length encoding (no src column is stored), and
   each transition packs destination and interned label id into one
   word next to its rate.  The list-returning API is kept as a cached
   compatibility layer. *)
type t = {
  compiled : Net_compile.t;
  markings : Marking.t array;
  tr_pack : int array;  (* dst in the low bits, interned label id above *)
  tr_rate : float array;
  labels : Net_semantics.label array;  (* interned label table *)
  row_start : int array;  (* CSR over transitions grouped by src; length n_markings + 1 *)
  mutable transition_cache : transition list option;
  mutable outgoing_cache : transition list array option;
  mutable chain : Markov.Ctmc.t option;
  mutable lump : Markov.Lump.t option;
}

(* Same packing split as [Pepa.Statespace]: destination in the low 48
   bits, label id above, guarded at intern time. *)
let pack_dst_bits = 48
let pack_dst_mask = (1 lsl pack_dst_bits) - 1
let max_interned_labels = 1 lsl (62 - pack_dst_bits)
let pack ~dst ~label = (label lsl pack_dst_bits) lor dst
let tr_dst t k = t.tr_pack.(k) land pack_dst_mask
let tr_label_id t k = t.tr_pack.(k) lsr pack_dst_bits

exception Too_many_markings of int
exception Passive_firing of { marking : string; label : string }

let label_string = function
  | Net_semantics.Local action -> Pepa.Action.to_string action
  | Net_semantics.Fire { action; transition } -> Printf.sprintf "%s!%s" action transition

(* Interchangeable cells: plain cell leaves of the same token family
   that are members of one maximal same-set cooperation chain inside a
   place's context.  Cooperation over a single set is associative and
   commutative, so permuting the *contents* of such cells is an
   automorphism of the marking graph; tokens keep their identity and
   stay in the same place, so every token- and place-level measure is
   unchanged.  Sorting the contents picks one representative marking
   per orbit — and also merges the branch-per-vacant-cell alternatives
   a firing creates, whose rates [of_arrays] then sums. *)
let cell_groups compiled =
  let groups = ref [] in
  let rec flatten set s acc =
    match s with
    | Net_compile.Pcoop (a, s2, b) when Pepa.Syntax.String_set.equal s2 set ->
        flatten set b (flatten set a acc)
    | member -> member :: acc
  in
  let rec walk s =
    match s with
    | Net_compile.Pleaf _ -> ()
    | Net_compile.Pcoop (_, set, _) ->
        let members = List.rev (flatten set s []) in
        List.iter
          (function Net_compile.Pcoop _ as inner -> walk inner | Net_compile.Pleaf _ -> ())
          members;
        let by_family = Hashtbl.create 4 in
        List.iter
          (function
            | Net_compile.Pleaf (Net_compile.Lcell { cell; family }) ->
                Hashtbl.replace by_family family
                  (cell :: Option.value ~default:[] (Hashtbl.find_opt by_family family))
            | Net_compile.Pleaf (Net_compile.Lstatic _) | Net_compile.Pcoop _ -> ())
          members;
        Hashtbl.iter
          (fun _family rev_cells ->
            match rev_cells with
            | [] | [ _ ] -> ()
            | _ -> groups := Array.of_list (List.rev rev_cells) :: !groups)
          by_family
  in
  Array.iter (fun p -> walk p.Net_compile.structure) compiled.Net_compile.places;
  Array.of_list (List.rev !groups)

(* Sort each group's cell contents (with [Empty] ordering before any
   token); returns the input marking unchanged when already canonical. *)
let canonicalise groups marking =
  let cells = ref None in
  Array.iter
    (fun group ->
      let current = match !cells with Some c -> c | None -> marking.Marking.cells in
      let k = Array.length group in
      let sorted = ref true in
      for i = 0 to k - 2 do
        if compare current.(group.(i)) current.(group.(i + 1)) > 0 then sorted := false
      done;
      if not !sorted then begin
        let c =
          match !cells with
          | Some c -> c
          | None ->
              let c = Array.copy marking.Marking.cells in
              cells := Some c;
              c
        in
        let values = Array.map (fun cell -> c.(cell)) group in
        Array.sort compare values;
        Array.iteri (fun i cell -> c.(cell) <- values.(i)) group
      end)
    groups;
  match !cells with
  | None -> (marking, false)
  | Some c -> ({ marking with Marking.cells = c }, true)

(* Bit-packed marking keys: a marking flattens to a vector of bounded
   integers — each cell is [Empty] (0) or [1 + token * family_states +
   state], each static its local state — which {!Pepa.Statekey} packs
   into a few bytes.  The intern tables (and, under [--jobs], the
   exploration engine's sharded dedup tables and frontiers) hold these
   compact keys instead of boxed marking records; the decoded
   [markings] array survives for the measure layer, which reads
   individual markings constantly. *)
type marking_codec = {
  codec : Pepa.Statekey.t;
  cell_states : int array;  (* family local-state count per cell *)
  mc_cells : int;
  mc_statics : int;
}

let marking_codec compiled =
  let n_cells = Net_compile.n_cells compiled in
  let n_statics = compiled.Net_compile.n_statics in
  let n_tokens = Net_compile.n_tokens compiled in
  let cell_states =
    Array.map
      (fun family ->
        Array.length compiled.Net_compile.families.(family).Net_compile.component.Pepa.Compile.states)
      compiled.Net_compile.cell_family
  in
  let cards = Array.make (n_cells + n_statics) 1 in
  for cell = 0 to n_cells - 1 do
    cards.(cell) <- 1 + (n_tokens * cell_states.(cell))
  done;
  for s = 0 to n_statics - 1 do
    cards.(n_cells + s) <-
      Array.length compiled.Net_compile.static_components.(s).Pepa.Compile.states
  done;
  {
    codec = Pepa.Statekey.of_cardinalities cards;
    cell_states;
    mc_cells = n_cells;
    mc_statics = n_statics;
  }

let encode_into mc vec (marking : Marking.t) =
  Array.iteri
    (fun cell c ->
      vec.(cell) <-
        (match c with
        | Marking.Empty -> 0
        | Marking.Tok { token; state } -> 1 + (token * mc.cell_states.(cell)) + state))
    marking.Marking.cells;
  Array.iteri (fun s v -> vec.(mc.mc_cells + s) <- v) marking.Marking.statics;
  ()

let encode mc vec marking =
  encode_into mc vec marking;
  Pepa.Statekey.pack mc.codec vec

let decode mc key =
  let vec = Pepa.Statekey.unpack mc.codec key in
  let cells =
    Array.init mc.mc_cells (fun cell ->
        let v = vec.(cell) in
        if v = 0 then Marking.Empty
        else
          Marking.Tok
            { token = (v - 1) / mc.cell_states.(cell); state = (v - 1) mod mc.cell_states.(cell) })
  in
  let statics = Array.init mc.mc_statics (fun s -> vec.(mc.mc_cells + s)) in
  { Marking.cells; statics }

let build ?(max_markings = 1_000_000) ?(symmetry = false) ?jobs compiled =
  Obs.Span.with_ "net_statespace.build" (fun span ->
  let obs_on = Obs.Config.enabled () in
  let progress_every = Obs.Config.progress_interval () in
  let groups = if symmetry then cell_groups compiled else [||] in
  let hits = ref 0 in
  let canonical marking =
    if Array.length groups = 0 then marking
    else begin
      let marking, changed = canonicalise groups marking in
      if changed then incr hits;
      marking
    end
  in
  let mc = marking_codec compiled in
  let key_size = Pepa.Statekey.size mc.codec in
  let scratch_vec = Array.make (mc.mc_cells + mc.mc_statics) 0 in
  let scratch_key = Bytes.create key_size in
  let index : (Bytes.t, int) Hashtbl.t = Hashtbl.create 1024 in
  let markings = ref (Array.make 1024 (Marking.initial compiled)) in
  let n_markings = ref 0 in
  let intern marking =
    encode_into mc scratch_vec marking;
    Pepa.Statekey.pack_into mc.codec scratch_vec scratch_key 0;
    match Hashtbl.find_opt index scratch_key with
    | Some i -> i
    | None ->
        if !n_markings >= max_markings then raise (Too_many_markings max_markings);
        let i = !n_markings in
        if i >= Array.length !markings then begin
          let bigger = Array.make (2 * Array.length !markings) marking in
          Array.blit !markings 0 bigger 0 i;
          markings := bigger
        end;
        !markings.(i) <- marking;
        Hashtbl.add index (Bytes.copy scratch_key) i;
        incr n_markings;
        i
  in
  (* Compressed transition buffers, as in [Pepa.Statespace]: sources
     arrive in nondecreasing order, so the src column reduces to
     per-source counts recorded at emission. *)
  let tr_cap = ref 4096 in
  let tr_pack = ref (Array.make !tr_cap 0) in
  let tr_rate = ref (Array.make !tr_cap 0.0) in
  let n_transitions = ref 0 in
  let rc_cap = ref 4096 in
  let row_count = ref (Array.make !rc_cap 0) in
  let push src dst rate label =
    if !n_transitions = !tr_cap then begin
      let grow_int a = let b = Array.make (2 * !tr_cap) 0 in Array.blit a 0 b 0 !tr_cap; b in
      let grow_float a = let b = Array.make (2 * !tr_cap) 0.0 in Array.blit a 0 b 0 !tr_cap; b in
      tr_pack := grow_int !tr_pack;
      tr_rate := grow_float !tr_rate;
      tr_cap := 2 * !tr_cap
    end;
    if src >= !rc_cap then begin
      let cap = ref (2 * !rc_cap) in
      while src >= !cap do
        cap := 2 * !cap
      done;
      let b = Array.make !cap 0 in
      Array.blit !row_count 0 b 0 !rc_cap;
      row_count := b;
      rc_cap := !cap
    end;
    !row_count.(src) <- !row_count.(src) + 1;
    let k = !n_transitions in
    !tr_pack.(k) <- pack ~dst ~label;
    !tr_rate.(k) <- rate;
    incr n_transitions
  in
  let label_ids = Hashtbl.create 16 in
  let label_list = ref [] in
  let n_labels = ref 0 in
  let intern_label l =
    match Hashtbl.find_opt label_ids l with
    | Some id -> id
    | None ->
        if !n_labels >= max_interned_labels then
          invalid_arg "Net_statespace.build: label alphabet exceeds the packed budget";
        let id = !n_labels in
        Hashtbl.add label_ids l id;
        label_list := l :: !label_list;
        incr n_labels;
        id
  in
  let pool = Par.pool ?jobs () in
  let explored_markings, shard_occupancy =
    match pool with
    | None ->
        ignore (intern (canonical (Marking.initial compiled)));
        let next = ref 0 in
        while !next < !n_markings do
          let src = !next in
          if obs_on then begin
            Obs.Metrics.set Pepa.Statespace.frontier_states (float_of_int (!n_markings - src));
            if src > 0 && src mod progress_every = 0 then
              Obs.Log.progress ~stage:"net_statespace.build" ~count:src
                ~detail:
                  (Printf.sprintf "%d discovered, %d transitions" !n_markings !n_transitions)
          end;
          let marking = !markings.(src) in
          List.iter
            (fun move ->
              let rate =
                match move.Net_semantics.rate with
                | Pepa.Rate.Active r -> r
                | Pepa.Rate.Passive _ ->
                    raise
                      (Passive_firing
                         {
                           marking = Marking.label compiled marking;
                           label = label_string move.Net_semantics.label;
                         })
              in
              let dst = intern (canonical (Net_semantics.apply marking move.Net_semantics.updates)) in
              push src dst rate (intern_label move.Net_semantics.label))
            (Net_semantics.moves compiled marking);
          incr next
        done;
        (Array.sub !markings 0 !n_markings, None)
    | Some p ->
        (* Frontier-parallel exploration, same engine as the PEPA
           builder.  Firing and canonicalisation run on workers; the
           merge preserves sequential first-occurrence numbering, so
           the coordinator-side [emit] sees the sequential stream. *)
        let hits_par = Atomic.make 0 in
        let expand key =
          let marking = decode mc key in
          (* Worker-local scratch: [expand] runs concurrently on the
             pool, so the coordinator's scratch vector is off limits. *)
          let vec = Array.make (mc.mc_cells + mc.mc_statics) 0 in
          List.map
            (fun move ->
              let rate =
                match move.Net_semantics.rate with
                | Pepa.Rate.Active r -> r
                | Pepa.Rate.Passive _ ->
                    raise
                      (Passive_firing
                         {
                           marking = Marking.label compiled marking;
                           label = label_string move.Net_semantics.label;
                         })
              in
              let dst = Net_semantics.apply marking move.Net_semantics.updates in
              let dst =
                if Array.length groups = 0 then dst
                else begin
                  let dst, changed = canonicalise groups dst in
                  if changed then Atomic.incr hits_par;
                  dst
                end
              in
              (encode mc vec dst, (rate, move.Net_semantics.label)))
            (Net_semantics.moves compiled marking)
        in
        let emit ~src ~dst (rate, label) = push src dst rate (intern_label label) in
        let progress =
          if obs_on then (
            let seen = ref 0 in
            Some
              (fun ~states ~level ->
                Obs.Metrics.set Pepa.Statespace.frontier_states (float_of_int (states - !seen));
                seen := states;
                if states >= progress_every then
                  Obs.Log.progress ~stage:"net_statespace.build" ~count:states
                    ~detail:
                      (Printf.sprintf "level %d, %d transitions" level !n_transitions)))
          else None
        in
        let result =
          try
            Par.Explore.explore ~pool:p ~hash:Pepa.Statekey.hash ~equal:Pepa.Statekey.equal
              ~expand ~emit ~max_states:max_markings ?progress
              (encode mc scratch_vec (canonical (Marking.initial compiled)))
          with Par.Explore.Limit -> raise (Too_many_markings max_markings)
        in
        hits := !hits + Atomic.get hits_par;
        (Array.map (decode mc) result.Par.Explore.states, Some result.Par.Explore.shard_states)
  in
  let n = Array.length explored_markings in
  let count = !n_transitions in
  let tr_pack = Array.sub !tr_pack 0 count in
  let tr_rate = Array.sub !tr_rate 0 count in
  let row_start = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_start.(i + 1) <- row_start.(i) + (if i < !rc_cap then !row_count.(i) else 0)
  done;
  if obs_on then begin
    Obs.Metrics.add Pepa.Statespace.states_explored n;
    Obs.Metrics.add Pepa.Statespace.transitions_emitted count;
    Obs.Metrics.set Pepa.Statespace.packed_key_bytes (float_of_int key_size);
    Obs.Metrics.set Pepa.Statespace.packed_arena_bytes (float_of_int (n * key_size));
    Obs.Span.add_int span "markings" n;
    Obs.Span.add_int span "transitions" count;
    Obs.Span.add_int span "packed_key_bytes" key_size;
    Obs.Span.add_int span "jobs"
      (match pool with Some p -> Par.Pool.size p | None -> 1);
    (match shard_occupancy with
    | Some occ ->
        let biggest = Array.fold_left max 0 occ in
        Obs.Metrics.set Pepa.Statespace.shard_states (float_of_int biggest);
        Obs.Span.add_int span "shard_states_max" biggest
    | None -> ());
    if Array.length groups > 0 then begin
      Obs.Metrics.add Pepa.Statespace.canonical_hits !hits;
      Obs.Span.add_int span "symmetry_groups" (Array.length groups);
      Obs.Span.add_int span "canonical_hits" !hits
    end
  end;
  {
    compiled;
    markings = explored_markings;
    tr_pack;
    tr_rate;
    labels = Array.of_list (List.rev !label_list);
    row_start;
    transition_cache = None;
    outgoing_cache = None;
    chain = None;
    lump = None;
  })

let of_string ?max_markings ?symmetry ?jobs src =
  build ?max_markings ?symmetry ?jobs (Net_compile.of_string src)

let of_file ?max_markings ?symmetry ?jobs path =
  build ?max_markings ?symmetry ?jobs (Net_compile.of_file path)

let compiled t = t.compiled
let n_markings t = Array.length t.markings
let n_transitions t = Array.length t.tr_pack
let marking t i = t.markings.(i)
let marking_label t i = Marking.label t.compiled t.markings.(i)
let initial_index _ = 0

(* The source of transition [k] is implicit in [row_start]; record
   consumers all iterate by row, so it is threaded in. *)
let transition_record t ~src k =
  {
    src;
    label = t.labels.(tr_label_id t k);
    rate = t.tr_rate.(k);
    dst = tr_dst t k;
  }

let iter_transitions t f =
  for s = 0 to n_markings t - 1 do
    for k = t.row_start.(s) to t.row_start.(s + 1) - 1 do
      f ~src:s ~label:t.labels.(tr_label_id t k) ~rate:t.tr_rate.(k) ~dst:(tr_dst t k)
    done
  done

let transitions t =
  match t.transition_cache with
  | Some l -> l
  | None ->
      let acc = ref [] in
      for s = n_markings t - 1 downto 0 do
        for k = t.row_start.(s + 1) - 1 downto t.row_start.(s) do
          acc := transition_record t ~src:s k :: !acc
        done
      done;
      t.transition_cache <- Some !acc;
      !acc

let transitions_from t i =
  match t.outgoing_cache with
  | Some rows -> rows.(i)
  | None ->
      let rows =
        Array.init (n_markings t) (fun s ->
            List.init
              (t.row_start.(s + 1) - t.row_start.(s))
              (fun k -> transition_record t ~src:s (t.row_start.(s) + k)))
      in
      t.outgoing_cache <- Some rows;
      rows.(i)

let deadlocks t =
  let result = ref [] in
  for i = n_markings t - 1 downto 0 do
    if t.row_start.(i) = t.row_start.(i + 1) then result := i :: !result
  done;
  !result

let labels t = t.labels

let label_flux t pi =
  let flux = Array.make (Array.length t.labels) 0.0 in
  for s = 0 to n_markings t - 1 do
    for k = t.row_start.(s) to t.row_start.(s + 1) - 1 do
      let id = tr_label_id t k in
      flux.(id) <- flux.(id) +. (pi.(s) *. t.tr_rate.(k))
    done
  done;
  flux

let ctmc t =
  match t.chain with
  | Some c -> c
  | None ->
      let c =
        Markov.Ctmc.of_grouped ~n:(n_markings t) ~row_start:t.row_start ~dst:(tr_dst t)
          ~rate:(fun k -> t.tr_rate.(k))
      in
      t.chain <- Some c;
      c

let release_derived t =
  t.transition_cache <- None;
  t.outgoing_cache <- None;
  t.chain <- None;
  t.lump <- None

(* Net measures go all the way down to individual markings
   ([marking_probabilities], [Marking.label] in queries), so the only
   classes whose uniform disaggregation is exact for every reported
   measure are cell-permutation orbits: orbit members have equal
   probability (permuting interchangeable cell contents is a chain
   automorphism).  The respect key is therefore each marking's
   canonical form — on a space already built with [~symmetry:true] (or
   one with no interchangeable cells) the keys are distinct per marking
   and the lump pass degenerates to the identity partition. *)
let lump_respect t =
  let n = n_markings t in
  let groups = cell_groups t.compiled in
  let keys : (Marking.t, int) Hashtbl.t = Hashtbl.create (2 * n) in
  let next = ref 0 in
  Array.map
    (fun marking ->
      let canonical, _ = canonicalise groups marking in
      match Hashtbl.find_opt keys canonical with
      | Some id -> id
      | None ->
          let id = !next in
          Hashtbl.add keys canonical id;
          incr next;
          id)
    t.markings

(* The partition refinement still speaks flat coordinate columns;
   expanding the compressed stream here is transient and confined to
   aggregation requests. *)
let transition_columns t =
  let m = n_transitions t in
  let src = Array.make m 0 in
  let dst = Array.make m 0 in
  let label = Array.make m 0 in
  for s = 0 to n_markings t - 1 do
    for k = t.row_start.(s) to t.row_start.(s + 1) - 1 do
      src.(k) <- s;
      dst.(k) <- tr_dst t k;
      label.(k) <- tr_label_id t k
    done
  done;
  (src, dst, label)

let lump_partition t =
  match t.lump with
  | Some part -> part
  | None ->
      let src, dst, label = transition_columns t in
      let part =
        Markov.Lump.refine ~respect:(lump_respect t) ~n:(n_markings t) ~src ~dst
          ~rate:t.tr_rate ~label ()
      in
      t.lump <- Some part;
      part

let steady_state ?method_ ?options ?(lump = false) ?jobs t =
  if not lump then Markov.Steady.solve ?method_ ?options ?jobs (ctmc t)
  else begin
    let part = lump_partition t in
    if part.Markov.Lump.n_classes >= n_markings t then
      Markov.Steady.solve ?method_ ?options ?jobs (ctmc t)
    else begin
      let src, dst, _ = transition_columns t in
      let quotient = Markov.Lump.quotient_ctmc part ~src ~dst ~rate:t.tr_rate in
      Markov.Lump.disaggregate part (Markov.Steady.solve ?method_ ?options ?jobs quotient)
    end
  end

let transient t ~time =
  let n = n_markings t in
  let initial = Array.make n 0.0 in
  initial.(0) <- 1.0;
  Markov.Transient.probabilities (ctmc t) ~initial ~t:time

let action_names t =
  List.sort_uniq String.compare
    (List.filter_map
       (fun label ->
         match label with
         | Net_semantics.Local action -> Pepa.Action.name action
         | Net_semantics.Fire { action; _ } -> Some action)
       (Array.to_list t.labels))

let pp_summary fmt t =
  Format.fprintf fmt "%d markings, %d transitions, %d deadlock marking(s)" (n_markings t)
    (n_transitions t)
    (List.length (deadlocks t))
