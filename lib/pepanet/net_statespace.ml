type transition = { src : int; label : Net_semantics.label; rate : float; dst : int }

(* Same column layout as [Pepa.Statespace]: transitions in flat
   src/dst/rate/label-id arrays with the labels interned, the
   list-returning API kept as a cached compatibility layer. *)
type t = {
  compiled : Net_compile.t;
  markings : Marking.t array;
  tr_src : int array;
  tr_dst : int array;
  tr_rate : float array;
  tr_label : int array;  (* index into [labels] *)
  labels : Net_semantics.label array;  (* interned label table *)
  row_start : int array;  (* CSR over transitions grouped by src; length n_markings + 1 *)
  mutable transition_cache : transition list option;
  mutable outgoing_cache : transition list array option;
  mutable chain : Markov.Ctmc.t option;
}

exception Too_many_markings of int
exception Passive_firing of { marking : string; label : string }

let label_string = function
  | Net_semantics.Local action -> Pepa.Action.to_string action
  | Net_semantics.Fire { action; transition } -> Printf.sprintf "%s!%s" action transition

let build ?(max_markings = 1_000_000) compiled =
  Obs.Span.with_ "net_statespace.build" (fun span ->
  let obs_on = Obs.Config.enabled () in
  let progress_every = Obs.Config.progress_interval () in
  let index = Hashtbl.create 1024 in
  let markings = ref (Array.make 1024 (Marking.initial compiled)) in
  let n_markings = ref 0 in
  let intern marking =
    match Hashtbl.find_opt index marking with
    | Some i -> i
    | None ->
        if !n_markings >= max_markings then raise (Too_many_markings max_markings);
        let i = !n_markings in
        if i >= Array.length !markings then begin
          let bigger = Array.make (2 * Array.length !markings) marking in
          Array.blit !markings 0 bigger 0 i;
          markings := bigger
        end;
        !markings.(i) <- marking;
        Hashtbl.add index marking i;
        incr n_markings;
        i
  in
  let tr_cap = ref 4096 in
  let tr_src = ref (Array.make !tr_cap 0) in
  let tr_dst = ref (Array.make !tr_cap 0) in
  let tr_rate = ref (Array.make !tr_cap 0.0) in
  let tr_label = ref (Array.make !tr_cap 0) in
  let n_transitions = ref 0 in
  let push src dst rate label =
    if !n_transitions = !tr_cap then begin
      let grow_int a = let b = Array.make (2 * !tr_cap) 0 in Array.blit a 0 b 0 !tr_cap; b in
      let grow_float a = let b = Array.make (2 * !tr_cap) 0.0 in Array.blit a 0 b 0 !tr_cap; b in
      tr_src := grow_int !tr_src;
      tr_dst := grow_int !tr_dst;
      tr_label := grow_int !tr_label;
      tr_rate := grow_float !tr_rate;
      tr_cap := 2 * !tr_cap
    end;
    let k = !n_transitions in
    !tr_src.(k) <- src;
    !tr_dst.(k) <- dst;
    !tr_rate.(k) <- rate;
    !tr_label.(k) <- label;
    incr n_transitions
  in
  let label_ids = Hashtbl.create 16 in
  let label_list = ref [] in
  let n_labels = ref 0 in
  let intern_label l =
    match Hashtbl.find_opt label_ids l with
    | Some id -> id
    | None ->
        let id = !n_labels in
        Hashtbl.add label_ids l id;
        label_list := l :: !label_list;
        incr n_labels;
        id
  in
  ignore (intern (Marking.initial compiled));
  let next = ref 0 in
  while !next < !n_markings do
    let src = !next in
    if obs_on && src > 0 && src mod progress_every = 0 then
      Obs.Log.progress ~stage:"net_statespace.build" ~count:src
        ~detail:
          (Printf.sprintf "%d discovered, %d transitions" !n_markings !n_transitions);
    let marking = !markings.(src) in
    List.iter
      (fun move ->
        let rate =
          match move.Net_semantics.rate with
          | Pepa.Rate.Active r -> r
          | Pepa.Rate.Passive _ ->
              raise
                (Passive_firing
                   {
                     marking = Marking.label compiled marking;
                     label = label_string move.Net_semantics.label;
                   })
        in
        let dst = intern (Net_semantics.apply marking move.Net_semantics.updates) in
        push src dst rate (intern_label move.Net_semantics.label))
      (Net_semantics.moves compiled marking);
    incr next
  done;
  let n = !n_markings in
  let count = !n_transitions in
  let tr_src = Array.sub !tr_src 0 count in
  let tr_dst = Array.sub !tr_dst 0 count in
  let tr_rate = Array.sub !tr_rate 0 count in
  let tr_label = Array.sub !tr_label 0 count in
  let row_start = Array.make (n + 1) 0 in
  Array.iter (fun s -> row_start.(s + 1) <- row_start.(s + 1) + 1) tr_src;
  for i = 1 to n do
    row_start.(i) <- row_start.(i) + row_start.(i - 1)
  done;
  if obs_on then begin
    Obs.Metrics.add Pepa.Statespace.states_explored n;
    Obs.Metrics.add Pepa.Statespace.transitions_emitted count;
    Obs.Span.add_int span "markings" n;
    Obs.Span.add_int span "transitions" count
  end;
  {
    compiled;
    markings = Array.sub !markings 0 n;
    tr_src;
    tr_dst;
    tr_rate;
    tr_label;
    labels = Array.of_list (List.rev !label_list);
    row_start;
    transition_cache = None;
    outgoing_cache = None;
    chain = None;
  })

let of_string ?max_markings src = build ?max_markings (Net_compile.of_string src)
let of_file ?max_markings path = build ?max_markings (Net_compile.of_file path)

let compiled t = t.compiled
let n_markings t = Array.length t.markings
let n_transitions t = Array.length t.tr_src
let marking t i = t.markings.(i)
let marking_label t i = Marking.label t.compiled t.markings.(i)
let initial_index _ = 0

let transition_record t k =
  {
    src = t.tr_src.(k);
    label = t.labels.(t.tr_label.(k));
    rate = t.tr_rate.(k);
    dst = t.tr_dst.(k);
  }

let iter_transitions t f =
  for k = 0 to Array.length t.tr_src - 1 do
    f ~src:t.tr_src.(k) ~label:t.labels.(t.tr_label.(k)) ~rate:t.tr_rate.(k)
      ~dst:t.tr_dst.(k)
  done

let transitions t =
  match t.transition_cache with
  | Some l -> l
  | None ->
      let l = List.init (n_transitions t) (transition_record t) in
      t.transition_cache <- Some l;
      l

let transitions_from t i =
  match t.outgoing_cache with
  | Some rows -> rows.(i)
  | None ->
      let rows =
        Array.init (n_markings t) (fun s ->
            List.init
              (t.row_start.(s + 1) - t.row_start.(s))
              (fun k -> transition_record t (t.row_start.(s) + k)))
      in
      t.outgoing_cache <- Some rows;
      rows.(i)

let deadlocks t =
  let result = ref [] in
  for i = n_markings t - 1 downto 0 do
    if t.row_start.(i) = t.row_start.(i + 1) then result := i :: !result
  done;
  !result

let labels t = t.labels

let label_flux t pi =
  let flux = Array.make (Array.length t.labels) 0.0 in
  for k = 0 to Array.length t.tr_src - 1 do
    let id = t.tr_label.(k) in
    flux.(id) <- flux.(id) +. (pi.(t.tr_src.(k)) *. t.tr_rate.(k))
  done;
  flux

let ctmc t =
  match t.chain with
  | Some c -> c
  | None ->
      let c =
        Markov.Ctmc.of_arrays ~n:(n_markings t) ~src:t.tr_src ~dst:t.tr_dst ~rate:t.tr_rate
      in
      t.chain <- Some c;
      c

let steady_state ?method_ ?options t = Markov.Steady.solve ?method_ ?options (ctmc t)

let transient t ~time =
  let n = n_markings t in
  let initial = Array.make n 0.0 in
  initial.(0) <- 1.0;
  Markov.Transient.probabilities (ctmc t) ~initial ~t:time

let action_names t =
  List.sort_uniq String.compare
    (List.filter_map
       (fun label ->
         match label with
         | Net_semantics.Local action -> Pepa.Action.name action
         | Net_semantics.Fire { action; _ } -> Some action)
       (Array.to_list t.labels))

let pp_summary fmt t =
  Format.fprintf fmt "%d markings, %d transitions, %d deadlock marking(s)" (n_markings t)
    (n_transitions t)
    (List.length (deadlocks t))
