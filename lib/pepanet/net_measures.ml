(* All throughput-style measures select from [Net_statespace.label_flux]:
   one pass over the flat transition columns computes the flux of every
   interned label, and each query is then O(#labels) instead of a fresh
   scan of the whole transition list. *)

let label_matches_action name = function
  | Net_semantics.Local action -> Pepa.Action.name action = Some name
  | Net_semantics.Fire { action; _ } -> action = name

let throughput space pi name =
  let labels = Net_statespace.labels space in
  let flux = Net_statespace.label_flux space pi in
  let total = ref 0.0 in
  Array.iteri (fun id l -> if label_matches_action name l then total := !total +. flux.(id)) labels;
  !total

let throughputs space pi =
  let labels = Net_statespace.labels space in
  let flux = Net_statespace.label_flux space pi in
  let totals = Hashtbl.create 16 in
  Array.iteri
    (fun id l ->
      let name =
        match l with
        | Net_semantics.Local action -> Pepa.Action.name action
        | Net_semantics.Fire { action; _ } -> Some action
      in
      match name with
      | Some name ->
          let previous = Option.value ~default:0.0 (Hashtbl.find_opt totals name) in
          Hashtbl.replace totals name (previous +. flux.(id))
      | None -> ())
    labels;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun name total acc -> (name, total) :: acc) totals [])

let firing_throughput space pi transition_name =
  let labels = Net_statespace.labels space in
  let flux = Net_statespace.label_flux space pi in
  let total = ref 0.0 in
  Array.iteri
    (fun id l ->
      match l with
      | Net_semantics.Fire { transition; _ } when transition = transition_name ->
          total := !total +. flux.(id)
      | Net_semantics.Fire _ | Net_semantics.Local _ -> ())
    labels;
  !total

let token_location_probabilities space pi ~token =
  let compiled = Net_statespace.compiled space in
  let totals = Array.make (Array.length compiled.Net_compile.places) 0.0 in
  for i = 0 to Net_statespace.n_markings space - 1 do
    match Marking.token_place compiled (Net_statespace.marking space i) token with
    | Some place -> totals.(place) <- totals.(place) +. pi.(i)
    | None -> ()
  done;
  Array.to_list
    (Array.mapi (fun p total -> (Net_compile.place_name compiled p, total)) totals)

let expected_tokens_at space pi ~place =
  let compiled = Net_statespace.compiled space in
  let place_index = Net_compile.place_index compiled place in
  let total = ref 0.0 in
  for i = 0 to Net_statespace.n_markings space - 1 do
    let count =
      List.length (Marking.tokens_at compiled (Net_statespace.marking space i) place_index)
    in
    total := !total +. (pi.(i) *. float_of_int count)
  done;
  !total

let marking_probabilities space pi =
  List.init (Net_statespace.n_markings space) (fun i ->
      (Net_statespace.marking_label space i, pi.(i)))
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let token_state_probability space pi ~token ~state_label =
  let compiled = Net_statespace.compiled space in
  let family = Net_compile.family_of_token compiled token in
  let labels = family.Net_compile.component.Pepa.Compile.labels in
  let total = ref 0.0 in
  for i = 0 to Net_statespace.n_markings space - 1 do
    let m = Net_statespace.marking space i in
    match Marking.token_cell m token with
    | Some cell -> (
        match m.Marking.cells.(cell) with
        | Marking.Tok { state; _ } when labels.(state) = state_label ->
            total := !total +. pi.(i)
        | Marking.Tok _ | Marking.Empty -> ())
    | None -> ()
  done;
  !total
