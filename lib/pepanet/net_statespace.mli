(** Reachability graph of a PEPA net and its derived CTMC, treating each
    marking as a distinct state (as in the paper's Section 2.2).

    Transitions are stored as a compressed grouped stream (the
    row-boundary array encodes the src column; destination and interned
    label id share one word next to the rate — two words per
    transition); the list-returning accessors are a cached
    compatibility layer over it, and {!Net_measures} works straight off
    the stream through {!label_flux}. *)

type transition = {
  src : int;
  label : Net_semantics.label;
  rate : float;
  dst : int;
}

type t

exception Too_many_markings of int

exception Passive_firing of { marking : string; label : string }
(** A passive activity (local or firing) survived with no active
    participant to set its rate: the model is incomplete. *)

val build : ?max_markings:int -> ?symmetry:bool -> ?jobs:int -> Net_compile.t -> t
(** With [~symmetry:true], interchangeable cells — cell leaves of the
    same token family composed in one same-set cooperation chain of a
    place's context — have their contents sorted before each marking is
    interned, so markings differing only by a permutation of
    indistinguishable cells collapse to one representative.  Tokens keep
    their identity and place, so token- and place-level measures are
    exact; the reduction is the marking-graph analogue of
    {!Pepa.Statespace.build}'s replica symmetry and adds to the same
    ["statespace.canonical_hits"] counter.

    [jobs] behaves as in {!Pepa.Statespace.build}: above 1 the
    exploration runs frontier-parallel with hash-sharded dedup tables,
    and the resulting marking numbering and transition order are
    identical to the sequential build. *)

val of_string : ?max_markings:int -> ?symmetry:bool -> ?jobs:int -> string -> t
val of_file : ?max_markings:int -> ?symmetry:bool -> ?jobs:int -> string -> t

val compiled : t -> Net_compile.t
val n_markings : t -> int

val n_transitions : t -> int
(** O(1). *)

val marking : t -> int -> Marking.t
val marking_label : t -> int -> string
val initial_index : t -> int
val transitions : t -> transition list
val transitions_from : t -> int -> transition list

val iter_transitions :
  t -> (src:int -> label:Net_semantics.label -> rate:float -> dst:int -> unit) -> unit
(** Iterate the compressed stream directly — no list, no record
    allocation. *)

val deadlocks : t -> int list

val labels : t -> Net_semantics.label array
(** The interned label table.  Transition labels index into it; do not
    mutate. *)

val label_flux : t -> float array -> float array
(** [label_flux space pi] is the steady-state flux [sum pi(src) * rate]
    of every interned label, indexed like {!labels}.  One pass over the
    compressed stream; the measure functions select from it instead of
    rescanning the transitions per query. *)

val ctmc : t -> Markov.Ctmc.t

val release_derived : t -> unit
(** Drop the cached CTMC, lump partition and materialised record lists;
    rebuilt on demand — see {!Pepa.Statespace.release_derived}. *)

val lump_partition : t -> Markov.Lump.t
(** Coarsest ordinary lumping of the marking chain respecting the
    per-label exit signature (computed once and cached); see
    {!Pepa.Statespace.lump_partition}. *)

val steady_state :
  ?method_:Markov.Steady.method_ ->
  ?options:Markov.Steady.options ->
  ?lump:bool ->
  ?jobs:int ->
  t ->
  float array
(** Steady-state distribution over the markings; with [~lump:true] the
    solve runs on the lumped quotient and is disaggregated uniformly,
    preserving every label flux exactly. *)

val transient : t -> time:float -> float array

val action_names : t -> string list
(** All named action types on reachable transitions, local and firing,
    sorted.  Read from the interned label table. *)

val pp_summary : Format.formatter -> t -> unit
