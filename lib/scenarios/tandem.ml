let throughput_action = "depart"

(* Station [i] (1-based) is a counter over its queue length:

     S{i}_{j} =   (in_i,  rate).S{i}_{j+1}    when j < capacity
                + (out_i, rate).S{i}_{j-1}    when j > 0

   where [in_1] is the external arrival (active), [in_i] for i > 1 is
   the upstream hand-off (passive — the upstream server sets the pace),
   [out_i] for i < stations is the hand-off action [move{i}] shared
   with station i+1, and [out_stations] is [depart].  Service rates
   differ per station so no accidental lumping collapses the space. *)
let source ~stations ~capacity =
  if stations < 1 then invalid_arg "Tandem.source: stations must be >= 1";
  if capacity < 1 then invalid_arg "Tandem.source: capacity must be >= 1";
  let buf = Buffer.create (stations * capacity * 64) in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%% Tandem network: %d station(s) of capacity %d, %d states.\n" stations capacity
    (int_of_float (float_of_int (capacity + 1) ** float_of_int stations));
  add "arrive = 1.5;\n";
  for i = 1 to stations do
    add "mu%d = %g;\n" i (2.0 +. (0.25 *. float_of_int (i - 1)))
  done;
  let state i j = Printf.sprintf "S%d_%d" i j in
  let in_action i = if i = 1 then "arrive" else Printf.sprintf "move%d" (i - 1) in
  let out_action i = if i = stations then throughput_action else Printf.sprintf "move%d" i in
  for i = 1 to stations do
    let fill =
      (* Arrivals are active at station 1, passive hand-offs after. *)
      if i = 1 then "(arrive, arrive)"
      else Printf.sprintf "(%s, infty)" (in_action i)
    in
    let drain j = Printf.sprintf "(%s, mu%d).%s" (out_action i) i (state i (j - 1)) in
    for j = 0 to capacity do
      add "%s = " (state i j);
      if j < capacity then begin
        add "%s.%s" fill (state i (j + 1));
        if j > 0 then add " + %s" (drain j)
      end
      else add "%s" (drain j);
      add ";\n"
    done
  done;
  (* Right-nested cooperation on the hand-off actions. *)
  let rec chain i =
    if i = stations then state i 0
    else Printf.sprintf "%s <%s> (%s)" (state i 0) (out_action i) (chain (i + 1))
  in
  add "system %s;\n" (if stations = 1 then state 1 0 else chain 1);
  Buffer.contents buf

let n_states ~stations ~capacity =
  let rec go acc i = if i = 0 then acc else go (acc * (capacity + 1)) (i - 1) in
  go 1 stations
