(** A tandem queueing network: the large-state-space benchmark family.

    [stations] finite-capacity M/M/1/[capacity] queues in series.  Jobs
    arrive at station 1, are served in order, and a served job moves to
    the next station when that station has a free slot (service blocks
    while the downstream queue is full); jobs served at the last
    station depart.  Each station is one sequential PEPA component with
    [capacity + 1] derivative states (its queue length), adjacent
    stations cooperate on the hand-off action, so the model has exactly
    [(capacity + 1) ^ stations] reachable states and the chain is
    irreducible — a scalable family of exact solves with a closed-form
    state count, the shape the paper's design environment must handle
    when activity graphs are unrolled over many locations.

    Three stations at capacity 99 give a million-state CTMC;
    capacity 46 gives the 103,823-state instance the CI smoke test
    solves exactly. *)

val source : stations:int -> capacity:int -> string
(** The PEPA source text of the model.  Raises [Invalid_argument]
    unless [stations >= 1] and [capacity >= 1]. *)

val n_states : stations:int -> capacity:int -> int
(** [(capacity + 1) ^ stations] — the exact reachable state count. *)

val throughput_action : string
(** The action whose steady-state throughput the benchmarks report
    (["depart"], completions at the last station). *)
