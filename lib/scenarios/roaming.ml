let pepanet_source =
  {|
    probe_r = 4.0;
    log_r = 10.0;
    hop_r = 1.0;
    Agent = (probe, probe_r).Ready;
    Ready = (hop, hop_r).Agent;
    Monitor = (probe, infty).(log, log_r).Monitor;

    token Agent;

    place HostA = (Agent[Agent] <> Agent[Agent]) <probe> Monitor;
    place HostB = (Agent[_] <> Agent[_]) <probe> Monitor;
    place HostC = (Agent[_] <> Agent[_]) <probe> Monitor;

    trans hop_ab = (hop, hop_r) from HostA to HostB;
    trans hop_bc = (hop, hop_r) from HostB to HostC;
    trans hop_ca = (hop, hop_r) from HostC to HostA;
  |}

let pepa_source ~replicas =
  Printf.sprintf
    {|
      User = (connect, 1.0).Busy;
      Busy = (transmit, 4.0).Closing;
      Closing = (disconnect, 2.0).User;
      Free = (connect, 3.0).Held;
      Held = (disconnect, 3.0).Free;
      system (User[%d]) <connect, disconnect> (Free[%d]);
    |}
    replicas
    (max 1 (replicas / 2))

let space () = Pepanet.Net_statespace.of_string pepanet_source

let patrol_report () =
  let space = space () in
  let pi = Pepanet.Net_statespace.steady_state space in
  let throughputs = Pepanet.Net_measures.throughputs space pi in
  let locations = Pepanet.Net_measures.token_location_probabilities space pi ~token:0 in
  let occupancy =
    List.map
      (fun place -> (place, Pepanet.Net_measures.expected_tokens_at space pi ~place))
      [ "HostA"; "HostB"; "HostC" ]
  in
  (throughputs, locations, occupancy)

let time_to_reach ~place ~token =
  let space = space () in
  let compiled = Pepanet.Net_statespace.compiled space in
  let place_index = Pepanet.Net_compile.place_index compiled place in
  let targets =
    List.filter
      (fun i ->
        Pepanet.Marking.token_place compiled (Pepanet.Net_statespace.marking space i) token
        = Some place_index)
      (List.init (Pepanet.Net_statespace.n_markings space) Fun.id)
  in
  Markov.Passage.mean (Pepanet.Net_statespace.ctmc space)
    ~sources:[ (Pepanet.Net_statespace.initial_index space, 1.0) ]
    ~targets
