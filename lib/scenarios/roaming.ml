let pepanet_source =
  {|
    probe_r = 4.0;
    log_r = 10.0;
    hop_r = 1.0;
    monitor_r = 20.0;
    Agent = (probe, probe_r).Ready;
    Ready = (hop, hop_r).Agent;
    Monitor = (probe, monitor_r).(log, log_r).Monitor;

    token Agent;

    place HostA = (Agent[Agent] <> Agent[Agent]) <probe> Monitor;
    place HostB = (Agent[_] <> Agent[_]) <probe> Monitor;
    place HostC = (Agent[_] <> Agent[_]) <probe> Monitor;

    trans hop_ab = (hop, hop_r) from HostA to HostB;
    trans hop_bc = (hop, hop_r) from HostB to HostC;
    trans hop_ca = (hop, hop_r) from HostC to HostA;
  |}

(* The same patrol, scaled: n tokens (all starting at HostA) over n
   cells per host, with every capacity — the monitors' probe and log
   rates and the hop transitions' rates — growing linearly so the
   density dynamics stay fixed.  At [tokens = 2] the rates coincide
   with [pepanet_source]. *)
let pepanet_family ~tokens =
  if tokens < 1 then invalid_arg "Roaming.pepanet_family: tokens must be positive";
  let n = tokens in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "probe_r = 4.0;\n\
        log_r = %g;\n\
        hop_r = 1.0;\n\
        monitor_r = %g;\n\
        hop_cap = %g;\n\
        Agent = (probe, probe_r).Ready;\n\
        Ready = (hop, hop_r).Agent;\n\
        Monitor = (probe, monitor_r).(log, log_r).Monitor;\n\n\
        token Agent;\n\n"
       (5.0 *. float_of_int n)
       (10.0 *. float_of_int n)
       (0.5 *. float_of_int n));
  let cells fill =
    String.concat " <> "
      (List.init n (fun _ -> if fill then "Agent[Agent]" else "Agent[_]"))
  in
  Buffer.add_string buf
    (Printf.sprintf "place HostA = (%s) <probe> Monitor;\n" (cells true));
  Buffer.add_string buf
    (Printf.sprintf "place HostB = (%s) <probe> Monitor;\n" (cells false));
  Buffer.add_string buf
    (Printf.sprintf "place HostC = (%s) <probe> Monitor;\n" (cells false));
  Buffer.add_string buf
    "trans hop_ab = (hop, hop_cap) from HostA to HostB;\n\
     trans hop_bc = (hop, hop_cap) from HostB to HostC;\n\
     trans hop_ca = (hop, hop_cap) from HostC to HostA;\n";
  Buffer.contents buf

type lumped_family = {
  lumped_ctmc : Markov.Ctmc.t;
  lumped_initial : int;
  lumped_hop_throughput : float array -> float;
  lumped_probe_throughput : float array -> float;
  lumped_hop_jump : src:int -> dst:int -> bool;
}

(* The exact population chain of [pepanet_family ~tokens]: tokens of
   one family are interchangeable, so the marking chain lumps to
   counts (agents, readies) per host plus the three monitor bits.
   Rates follow the firing rule's aggregates — a transition flows at
   the min of its own rate and the candidate sum, a probe at the min
   of the agents' and the monitor's apparent rates — which is what
   the marking-level semantics sums to over an orbit of markings.
   Validated against the marking graph at small [tokens] by the test
   suite. *)
let lumped_family ~tokens =
  let n = tokens in
  let mon_cap = 10.0 *. float_of_int n in
  let log_r = 5.0 *. float_of_int n in
  let hop_cap = 0.5 *. float_of_int n in
  let index = Hashtbl.create 1024 in
  let n_states = ref 0 in
  let intern s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None ->
        let i = !n_states in
        incr n_states;
        Hashtbl.add index s i;
        i
  in
  let transitions = ref [] in
  let hop_jumps = Hashtbl.create 1024 in
  let states_rev = ref [] in
  let frontier = Queue.create () in
  let s0 = (n, 0, 0, 0, 0, 0, 0, 0, 0) in
  ignore (intern s0);
  states_rev := s0 :: !states_rev;
  Queue.add s0 frontier;
  while not (Queue.is_empty frontier) do
    let ((aA, rA, aB, rB, aC, rC, mA, mB, mC) as s) = Queue.pop frontier in
    let src = intern s in
    let add ?(hop = false) dst rate =
      let before = !n_states in
      let d = intern dst in
      if !n_states > before then begin
        states_rev := dst :: !states_rev;
        Queue.add dst frontier
      end;
      transitions := (src, d, rate) :: !transitions;
      if hop then Hashtbl.replace hop_jumps (src, d) ()
    in
    let probe a = Float.min (4.0 *. float_of_int a) mon_cap in
    if mA = 0 && aA > 0 then add (aA - 1, rA + 1, aB, rB, aC, rC, 1, mB, mC) (probe aA);
    if mB = 0 && aB > 0 then add (aA, rA, aB - 1, rB + 1, aC, rC, mA, 1, mC) (probe aB);
    if mC = 0 && aC > 0 then add (aA, rA, aB, rB, aC - 1, rC + 1, mA, mB, 1) (probe aC);
    if mA = 1 then add (aA, rA, aB, rB, aC, rC, 0, mB, mC) log_r;
    if mB = 1 then add (aA, rA, aB, rB, aC, rC, mA, 0, mC) log_r;
    if mC = 1 then add (aA, rA, aB, rB, aC, rC, mA, mB, 0) log_r;
    let hop r = Float.min hop_cap (float_of_int r) in
    if rA > 0 then add ~hop:true (aA, rA - 1, aB + 1, rB, aC, rC, mA, mB, mC) (hop rA);
    if rB > 0 then add ~hop:true (aA, rA, aB, rB - 1, aC + 1, rC, mA, mB, mC) (hop rB);
    if rC > 0 then add ~hop:true (aA + 1, rA, aB, rB, aC, rC - 1, mA, mB, mC) (hop rC)
  done;
  let states = Array.of_list (List.rev !states_rev) in
  let ctmc = Markov.Ctmc.of_transitions ~n:!n_states !transitions in
  let hop_throughput pi =
    let total = ref 0.0 in
    Array.iteri
      (fun i (_, rA, _, rB, _, rC, _, _, _) ->
        let h r = if r > 0 then Float.min hop_cap (float_of_int r) else 0.0 in
        total := !total +. (pi.(i) *. (h rA +. h rB +. h rC)))
      states;
    !total
  in
  let probe_throughput pi =
    let total = ref 0.0 in
    Array.iteri
      (fun i (aA, _, aB, _, aC, _, mA, mB, mC) ->
        let p m a =
          if m = 0 && a > 0 then Float.min (4.0 *. float_of_int a) mon_cap else 0.0
        in
        total := !total +. (pi.(i) *. (p mA aA +. p mB aB +. p mC aC)))
      states;
    !total
  in
  {
    lumped_ctmc = ctmc;
    lumped_initial = 0;
    lumped_hop_throughput = hop_throughput;
    lumped_probe_throughput = probe_throughput;
    lumped_hop_jump = (fun ~src ~dst -> Hashtbl.mem hop_jumps (src, dst));
  }

let pepa_source ~replicas =
  Printf.sprintf
    {|
      User = (connect, 1.0).Busy;
      Busy = (transmit, 4.0).Closing;
      Closing = (disconnect, 2.0).User;
      Free = (connect, 3.0).Held;
      Held = (disconnect, 3.0).Free;
      system (User[%d]) <connect, disconnect> (Free[%d]);
    |}
    replicas
    (max 1 (replicas / 2))

let space () = Pepanet.Net_statespace.of_string pepanet_source

let patrol_report () =
  let space = space () in
  let pi = Pepanet.Net_statespace.steady_state space in
  let throughputs = Pepanet.Net_measures.throughputs space pi in
  let locations = Pepanet.Net_measures.token_location_probabilities space pi ~token:0 in
  let occupancy =
    List.map
      (fun place -> (place, Pepanet.Net_measures.expected_tokens_at space pi ~place))
      [ "HostA"; "HostB"; "HostC" ]
  in
  (throughputs, locations, occupancy)

let time_to_reach ~place ~token =
  let space = space () in
  let compiled = Pepanet.Net_statespace.compiled space in
  let place_index = Pepanet.Net_compile.place_index compiled place in
  let targets =
    List.filter
      (fun i ->
        Pepanet.Marking.token_place compiled (Pepanet.Net_statespace.marking space i) token
        = Some place_index)
      (List.init (Pepanet.Net_statespace.n_markings space) Fun.id)
  in
  Markov.Passage.mean (Pepanet.Net_statespace.ctmc space)
    ~sources:[ (Pepanet.Net_statespace.initial_index space, 1.0) ]
    ~targets
