(** A mobile-agent scenario beyond the paper's worked examples, in the
    spirit of its motivation ("a mobile software agent moving from one
    network host to another"): two agents patrol a ring of three hosts,
    probing each host's monitor before hopping on.  Exercises the
    net features the smaller examples do not: several tokens of one
    family, places with two cells, and static components shared by both
    tokens. *)

val pepanet_source : string

val pepa_source : replicas:int -> string
(** A plain-PEPA roaming population for the fluid/exact/simulation
    three-way comparison: [replicas] users cycling idle → connected →
    closing against a pool of [replicas/2] base stations, cooperating
    on [connect] and [disconnect].  All rates active, so the model has
    a fluid interpretation; [transmit] is the users' autonomous
    payload action whose throughput the analyses compare. *)

val space : unit -> Pepanet.Net_statespace.t

val patrol_report :
  unit -> (string * float) list * (string * float) list * (string * float) list
(** [(throughputs, agent0 locations, expected tokens per host)]. *)

val time_to_reach : place:string -> token:int -> float
(** Mean first-passage time for the given agent from the initial marking
    to its first visit of the named host. *)
