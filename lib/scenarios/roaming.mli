(** A mobile-agent scenario beyond the paper's worked examples, in the
    spirit of its motivation ("a mobile software agent moving from one
    network host to another"): two agents patrol a ring of three hosts,
    probing each host's monitor before hopping on.  Exercises the
    net features the smaller examples do not: several tokens of one
    family, places with two cells, and static components shared by both
    tokens. *)

val pepanet_source : string

val pepanet_family : tokens:int -> string
(** The patrol scaled to [tokens] agents (all starting at HostA) over
    [tokens] cells per host.  Every capacity — the monitors' probe and
    log rates, the hop transitions' rates — grows linearly with
    [tokens] so the density dynamics stay fixed and the fluid
    approximation converges as [tokens] grows; at [tokens = 2] the
    rates coincide with {!pepanet_source}. *)

type lumped_family = {
  lumped_ctmc : Markov.Ctmc.t;
      (** the exact population chain: (agents, readies) per host plus
          the monitor bits *)
  lumped_initial : int;  (** index of the all-at-HostA state *)
  lumped_hop_throughput : float array -> float;
      (** total hop firing flux under a distribution *)
  lumped_probe_throughput : float array -> float;
  lumped_hop_jump : src:int -> dst:int -> bool;
      (** whether a jump is a hop firing, for counting rewards in
          simulation *)
}

val lumped_family : tokens:int -> lumped_family
(** The exact lumped chain of {!pepanet_family} — tokens of one family
    are interchangeable, so markings lump to population counts.
    States grow like [tokens^5] instead of the marking graph's
    [6^tokens]; the test suite validates the construction against the
    marking graph at small counts. *)

val pepa_source : replicas:int -> string
(** A plain-PEPA roaming population for the fluid/exact/simulation
    three-way comparison: [replicas] users cycling idle → connected →
    closing against a pool of [replicas/2] base stations, cooperating
    on [connect] and [disconnect].  All rates active, so the model has
    a fluid interpretation; [transmit] is the users' autonomous
    payload action whose throughput the analyses compare. *)

val space : unit -> Pepanet.Net_statespace.t

val patrol_report :
  unit -> (string * float) list * (string * float) list * (string * float) list
(** [(throughputs, agent0 locations, expected tokens per host)]. *)

val time_to_reach : place:string -> token:int -> float
(** Mean first-passage time for the given agent from the initial marking
    to its first visit of the named host. *)
