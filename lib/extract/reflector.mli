(** The Reflector: writing computed performance results back into the
    UML model, so that "the results are returned in the language in
    which they were submitted" (Figures 6 and 7 of the paper).

    Activity diagrams are annotated per action state with the
    steady-state [throughput] of the corresponding PEPA action type;
    state diagrams are annotated per state with its
    [steadyStateProbability]. *)

val throughput_tag : string
(** ["throughput"]. *)

val probability_tag : string
(** ["steadyStateProbability"]. *)

val solution_method_tag : string
(** ["solutionMethod"]: written next to every reflected measure when
    the results came from an approximate backend (e.g.
    ["fluid approximation"]), so a designer reading the returned
    diagram can tell approximate numbers from exact ones. *)

val reflect_activity :
  Ad_to_pepanet.extraction ->
  ?approximation:string ->
  throughputs:(string * float) list ->
  Uml.Activity.t ->
  Uml.Activity.t
(** Annotate every action state whose extracted action type has a
    computed throughput.  Values are printed with six significant
    digits, as the Workbench displayed them.  With [?approximation],
    each annotated node also carries a {!solution_method_tag} tagged
    value. *)

val reflect_statecharts :
  Sc_to_pepa.extraction ->
  ?approximation:string ->
  probabilities:(string * float) list ->
  Uml.Statechart.t list ->
  Uml.Statechart.t list
(** [probabilities] maps PEPA constants (local derivative names) to
    steady-state probabilities.  [?approximation] as in
    {!reflect_activity}. *)

val format_measure : float -> string
