let throughput_tag = "throughput"
let probability_tag = "steadyStateProbability"
let solution_method_tag = "solutionMethod"

let format_measure v = Printf.sprintf "%.6g" v

let method_value approximation = approximation ^ " approximation"

let reflect_activity (extraction : Ad_to_pepanet.extraction) ?approximation ~throughputs
    diagram =
  Obs.Span.with_ "reflect.activity" (fun span ->
      Obs.Span.add_int span "measures" (List.length throughputs);
      List.fold_left
        (fun diagram (node_id, action) ->
          match List.assoc_opt action throughputs with
          | Some value ->
              let diagram =
                Uml.Activity.annotate diagram ~node_id ~tag:throughput_tag
                  ~value:(format_measure value)
              in
              (match approximation with
              | Some a ->
                  Uml.Activity.annotate diagram ~node_id ~tag:solution_method_tag
                    ~value:(method_value a)
              | None -> diagram)
          | None -> diagram)
        diagram extraction.Ad_to_pepanet.action_of_node)

let reflect_statecharts (extraction : Sc_to_pepa.extraction) ?approximation ~probabilities
    charts =
  Obs.Span.with_ "reflect.statecharts" (fun span ->
      Obs.Span.add_int span "charts" (List.length charts);
      Obs.Span.add_int span "measures" (List.length probabilities);
      List.map
        (fun chart ->
          let chart_name = chart.Uml.Statechart.chart_name in
          match List.assoc_opt chart_name extraction.Sc_to_pepa.constant_of_state with
          | None -> chart
          | Some mapping ->
              List.fold_left
                (fun chart (state_id, constant) ->
                  match List.assoc_opt constant probabilities with
                  | Some value ->
                      let chart =
                        Uml.Statechart.annotate chart ~state_id ~tag:probability_tag
                          ~value:(format_measure value)
                      in
                      (match approximation with
                      | Some a ->
                          Uml.Statechart.annotate chart ~state_id ~tag:solution_method_tag
                            ~value:(method_value a)
                      | None -> chart)
                  | None -> chart)
                chart mapping)
        charts)
