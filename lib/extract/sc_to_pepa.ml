module S = Pepa.Syntax
module String_set = Pepa.Syntax.String_set

type extraction = {
  model : Pepa.Syntax.model;
  constant_of_state : (string * (string * string) list) list;
  chart_leaf : (string * int) list;
  shared_actions : string list;
}

exception Extraction_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Extraction_error msg)) fmt

let extract_untraced ?(rates = Uml.Rates_file.empty) charts =
  if charts = [] then fail "no state diagram to extract";
  List.iter Uml.Statechart.validate charts;
  let names = List.map (fun c -> c.Uml.Statechart.chart_name) charts in
  let duplicates = List.filter (fun n -> List.length (List.filter (( = ) n) names) > 1) names in
  if duplicates <> [] then fail "duplicate chart name %s" (List.hd duplicates);
  (* Action sharing: an action type is shared when it appears in more
     than one chart's alphabet. *)
  let alphabet_of chart =
    String_set.of_list (List.map Names.action_name (Uml.Statechart.alphabet chart))
  in
  let all_alphabets = List.map alphabet_of charts in
  let shared =
    let rec pairwise = function
      | [] -> String_set.empty
      | a :: rest ->
          List.fold_left
            (fun acc b -> String_set.union acc (String_set.inter a b))
            (pairwise rest) rest
    in
    pairwise all_alphabets
  in
  let consts = Names.Allocator.create Names.constant_name in
  let constant_of_state =
    List.map
      (fun chart ->
        ( chart.Uml.Statechart.chart_name,
          List.map
            (fun (s : Uml.Statechart.state) ->
              ( s.Uml.Statechart.state_id,
                Names.Allocator.get consts
                  (Printf.sprintf "%s_%s" chart.Uml.Statechart.chart_name
                     s.Uml.Statechart.state_name) ))
            chart.Uml.Statechart.states ))
      charts
  in
  let const_of chart_name state_id =
    match List.assoc_opt state_id (List.assoc chart_name constant_of_state) with
    | Some c -> c
    | None -> fail "chart %s: unknown state id %s" chart_name state_id
  in
  (* One definition per state: the choice over its outgoing transitions. *)
  let definitions =
    List.concat_map
      (fun chart ->
        let chart_name = chart.Uml.Statechart.chart_name in
        List.map
          (fun (s : Uml.Statechart.state) ->
            let outgoing =
              List.filter
                (fun (t : Uml.Statechart.transition) -> t.Uml.Statechart.source = s.Uml.Statechart.state_id)
                chart.Uml.Statechart.transitions
            in
            let branch (t : Uml.Statechart.transition) =
              let action = Names.action_name t.Uml.Statechart.trigger in
              let rate =
                match t.Uml.Statechart.rate with
                | Some r -> S.Rnum r
                | None -> (
                    match Uml.Rates_file.rate_opt rates action with
                    | Some r -> S.Rnum r
                    | None ->
                        if String_set.mem action shared then S.Rpassive 1.0
                        else S.Rnum (Uml.Rates_file.rate rates action))
              in
              S.Prefix
                (Pepa.Action.act action, rate, S.Var (const_of chart_name t.Uml.Statechart.target))
            in
            let body =
              match outgoing with
              | [] -> S.Stop
              | first :: rest ->
                  List.fold_left (fun acc t -> S.Choice (acc, branch t)) (branch first) rest
            in
            S.Proc_def (const_of chart_name s.Uml.Statechart.state_id, body))
          chart.Uml.Statechart.states)
      charts
  in
  (* System equation: left-fold cooperation, synchronising each new chart
     on the actions it shares with any chart already composed. *)
  let initial_const chart = const_of chart.Uml.Statechart.chart_name chart.Uml.Statechart.initial in
  let system, _ =
    List.fold_left
      (fun (system, covered) (chart, alphabet) ->
        match system with
        | None -> (Some (S.Var (initial_const chart)), alphabet)
        | Some sys ->
            let coop_set = String_set.inter covered alphabet in
            ( Some (S.Coop (sys, coop_set, S.Var (initial_const chart))),
              String_set.union covered alphabet ))
      (None, String_set.empty)
      (List.combine charts all_alphabets)
  in
  let system = Option.get system in
  let chart_leaf = List.mapi (fun i chart -> (chart.Uml.Statechart.chart_name, i)) charts in
  {
    model = { S.definitions; system };
    constant_of_state;
    chart_leaf;
    shared_actions = String_set.elements shared;
  }

let extract ?rates charts =
  Obs.Span.with_ "extract.statecharts" (fun span ->
      Obs.Span.add_int span "charts" (List.length charts);
      let extraction = extract_untraced ?rates charts in
      Obs.Span.add_int span "definitions"
        (List.length extraction.model.S.definitions);
      extraction)
