module A = Uml.Activity
module S = Pepa.Syntax
module String_set = Pepa.Syntax.String_set

type extraction = {
  net : Pepanet.Net.t;
  action_of_node : (string * string) list;
  token_of_object : (string * string) list;
  place_of_location : (string * string) list;
}

exception Extraction_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Extraction_error msg)) fmt

let action_rate rates action = Uml.Rates_file.rate rates action

let node_kind d id =
  match A.find_node d id with
  | Some n -> n.A.kind
  | None -> fail "dangling node reference %s" id

let action_name_of d id =
  match node_kind d id with
  | A.Action { name; _ } -> Names.action_name name
  | _ -> fail "node %s is not an action state" id

let is_move d id =
  match node_kind d id with A.Action { move; _ } -> move | _ -> false

(* Next relevant activities reachable from [id]'s control successors
   without passing another relevant activity; also reports whether a
   final node is reachable the same way. *)
let nexts d ~relevant ~from_successors_of:id =
  let visited = Hashtbl.create 16 in
  let found = ref [] in
  let reaches_final = ref false in
  let rec probe id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      match node_kind d id with
      | A.Action _ when relevant id -> if not (List.mem id !found) then found := id :: !found
      | A.Final -> reaches_final := true
      | A.Action _ | A.Decision | A.Fork | A.Join | A.Initial ->
          List.iter probe (A.successors d id)
    end
  in
  List.iter probe (A.successors d id);
  (List.rev !found, !reaches_final)

(* The location an object occupies around an activity: prefer the
   occurrence flowing out of it (the state after), falling back to the
   occurrence flowing in. *)
let object_location_at d ~obj ~activity =
  let pick direction =
    A.objects_of_activity d activity direction
    |> List.find_opt (fun o -> o.A.obj_name = obj)
  in
  match pick A.Out_of with
  | Some o -> o.A.atloc
  | None -> ( match pick A.Into with Some o -> o.A.atloc | None -> None)

let first_recorded_location d obj =
  match List.find_opt (fun o -> o.A.obj_name = obj) d.A.occurrences with
  | Some o -> o.A.atloc
  | None -> None

(* ------------------------------------------------------------------ *)
(* Behaviour construction (tokens and static components)                *)
(* ------------------------------------------------------------------ *)

(* Build the PEPA equations describing the walk over [relevant]
   activities: one constant per relevant activity plus a root constant.
   [on_final] supplies the continuation expression used where a final
   node is reachable. *)
let build_behaviour d ~relevant_ids ~root_name ~state_const ~rate_var ~on_final =
  let relevant id = List.mem id relevant_ids in
  let defs = ref [] in
  let define name body = defs := S.Proc_def (name, body) :: !defs in
  let continuation (targets, reaches_final) ~at =
    let parts =
      List.map (fun b -> S.Var (state_const b)) targets
      @ (if reaches_final then [ on_final ~at ] else [])
    in
    match parts with
    | [] -> S.Stop
    | first :: rest -> List.fold_left (fun acc p -> S.Choice (acc, p)) first rest
  in
  List.iter
    (fun a ->
      let action = action_name_of d a in
      let body =
        S.Prefix
          ( Pepa.Action.act action,
            S.Rvar (rate_var action),
            continuation (nexts d ~relevant ~from_successors_of:a) ~at:(Some a) )
      in
      define (state_const a) body)
    relevant_ids;
  let initial = (A.initial_node d).A.node_id in
  let start_targets, start_final = nexts d ~relevant ~from_successors_of:initial in
  if relevant_ids <> [] && start_targets = [] && not start_final then
    fail "no activity of %s is reachable from the initial node" root_name;
  define root_name (continuation (start_targets, start_final) ~at:None);
  List.rev !defs

(* Fork support (a Section 6 extension): each walk treats a fork like a
   decision, which is only sound when no single walked behaviour has
   activities on two parallel branches — those would wrongly become
   alternatives.  Reject that configuration explicitly. *)
let check_fork_branches d ~relevant ~subject =
  List.iter
    (fun (node : A.node) ->
      if node.A.kind = A.Fork then begin
        let branches_with_activity =
          List.filter
            (fun successor ->
              (* Anything relevant reachable down this branch? *)
              let visited = Hashtbl.create 16 in
              let rec probe id =
                if Hashtbl.mem visited id then false
                else begin
                  Hashtbl.add visited id ();
                  match node_kind d id with
                  | A.Action _ when relevant id -> true
                  | A.Final -> false
                  | A.Join -> false (* the fork's scope ends at a join *)
                  | A.Action _ | A.Decision | A.Fork | A.Initial ->
                      List.exists probe (A.successors d id)
                end
              in
              probe successor)
            (A.successors d node.A.node_id)
        in
        if List.length branches_with_activity > 1 then
          fail
            "%s has activities on %d parallel branches of fork %s; parallel behaviour \
             within one object is outside the supported activity-diagram subset"
            subject
            (List.length branches_with_activity)
            node.A.node_id
      end)
    d.A.nodes

(* ------------------------------------------------------------------ *)
(* Location tracking for object-less activities                        *)
(* ------------------------------------------------------------------ *)

let assign_static_locations d ~mobile ~pinned ~initial_location =
  let table = Hashtbl.create 16 in
  let rec walk id current =
    let current =
      if is_move d id then
        (* The location after a move is where its outgoing object flow
           points. *)
        match A.objects_of_activity d id A.Out_of with
        | o :: _ when o.A.atloc <> None -> o.A.atloc
        | _ -> current
      else current
    in
    match Hashtbl.find_opt table id with
    | Some recorded ->
        if mobile && recorded <> current && not (pinned id) then
          fail "activity %s is reached with conflicting locations" id
    | None ->
        Hashtbl.add table id current;
        List.iter (fun next -> walk next current) (A.successors d id)
  in
  walk (A.initial_node d).A.node_id initial_location;
  fun id -> Option.join (Hashtbl.find_opt table id)

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let extract_untraced ?(rates = Uml.Rates_file.empty) ?(restart = `Cycle) ?(interactions = []) d =
  A.validate d;
  let locations = A.locations d in
  let mobile = locations <> [] in
  let place_names = Names.Allocator.create Names.constant_name in
  let locations = if mobile then locations else [ "global" ] in
  let place_of_location = List.map (fun l -> (l, Names.Allocator.get place_names l)) locations in
  let place_of l =
    match List.assoc_opt l place_of_location with
    | Some p -> p
    | None -> fail "unknown location %s" l
  in
  let loc_of_object_at ~obj ~activity =
    if mobile then
      match object_location_at d ~obj ~activity with
      | Some l -> l
      | None -> fail "object %s has no atloc at activity %s of a mobile diagram" obj activity
    else "global"
  in
  let first_loc obj =
    if mobile then
      match first_recorded_location d obj with
      | Some l -> l
      | None -> fail "object %s has no recorded location in a mobile diagram" obj
    else "global"
  in
  let objects = A.object_names d in
  let relevant_of_object =
    List.map (fun obj -> (obj, A.actions_of_object d obj)) objects
  in
  List.iter
    (fun (obj, acts) -> if acts = [] then fail "object %s is associated with no activity" obj)
    relevant_of_object;
  (* Mangled action name per node (nodes sharing a UML name share the
     PEPA action type, as in Figure 1's two "close" boxes). *)
  let action_nodes = A.action_nodes d in
  let action_of_node =
    List.map (fun (n : A.node) -> (n.A.node_id, action_name_of d n.A.node_id)) action_nodes
  in
  (* Token definitions. *)
  let token_consts = Names.Allocator.create Names.constant_name in
  let token_of_object =
    List.map (fun obj -> (obj, Names.Allocator.get token_consts ("Tok_" ^ obj))) objects
  in
  let token_root obj = List.assoc obj token_of_object in
  let state_allocators =
    List.map
      (fun obj ->
        let alloc =
          Names.Allocator.create (fun node_id ->
              Names.constant_name
                (Printf.sprintf "%s_%s" (token_root obj) (action_name_of d node_id)))
        in
        (obj, alloc))
      objects
  in
  let state_const obj node_id = Names.Allocator.get (List.assoc obj state_allocators) node_id in
  (* Reset bookkeeping: per object, whether a local reset and/or return
     firings are needed. *)
  let return_transitions = ref [] in
  let used_actions = ref String_set.empty in
  let use_action a =
    used_actions := String_set.add a !used_actions;
    a
  in
  let token_defs =
    List.concat_map
      (fun obj ->
        let relevant_ids = List.assoc obj relevant_of_object in
        check_fork_branches d
          ~relevant:(fun id -> List.mem id relevant_ids)
          ~subject:(Printf.sprintf "object %s" obj);
        List.iter (fun id -> ignore (use_action (action_name_of d id))) relevant_ids;
        let on_final ~at =
          match restart with
          | `Absorb -> S.Stop
          | `Cycle ->
              let home = first_loc obj in
              let here =
                match at with
                | Some activity -> loc_of_object_at ~obj ~activity
                | None -> home
              in
              let action =
                if here = home then use_action (Names.action_name ("reset_" ^ obj))
                else begin
                  let action = use_action (Names.action_name ("return_" ^ obj)) in
                  let arc = (action, place_of here, place_of home) in
                  if not (List.mem arc !return_transitions) then
                    return_transitions := arc :: !return_transitions;
                  action
                end
              in
              S.Prefix (Pepa.Action.act action, S.Rvar (Names.rate_name action), S.Var (token_root obj))
        in
        build_behaviour d ~relevant_ids ~root_name:(token_root obj)
          ~state_const:(state_const obj)
          ~rate_var:(fun a -> Names.rate_name (use_action a))
          ~on_final)
      objects
  in
  (* Net transitions from <<move>> activities. *)
  let object_less =
    List.filter
      (fun (n : A.node) ->
        not (List.exists (fun (_, acts) -> List.mem n.A.node_id acts) relevant_of_object))
      action_nodes
  in
  let move_transitions =
    List.filter_map
      (fun (n : A.node) ->
        if not (is_move d n.A.node_id) then None
        else begin
          let id = n.A.node_id in
          if List.exists (fun (m : A.node) -> m.A.node_id = id) object_less then
            fail "<<move>> activity %s has no associated object flow" id;
          if not mobile then fail "<<move>> activity %s in a diagram without locations" id;
          let in_locs =
            A.objects_of_activity d id A.Into
            |> List.map (fun o ->
                   match o.A.atloc with
                   | Some l -> place_of l
                   | None -> fail "occurrence %s flowing into move %s has no atloc" o.A.occ_id id)
          in
          let out_locs =
            A.objects_of_activity d id A.Out_of
            |> List.map (fun o ->
                   match o.A.atloc with
                   | Some l -> place_of l
                   | None ->
                       fail "occurrence %s flowing out of move %s has no atloc" o.A.occ_id id)
          in
          if in_locs = [] then fail "<<move>> activity %s has no incoming object flow" id;
          if List.length in_locs <> List.length out_locs then
            fail "<<move>> activity %s has %d incoming but %d outgoing object flows" id
              (List.length in_locs) (List.length out_locs);
          let action = use_action (action_name_of d id) in
          Some
            {
              Pepanet.Net.transition_name = "t_" ^ action;
              firing_action = action;
              firing_rate = S.Rvar (Names.rate_name action);
              inputs = in_locs;
              outputs = out_locs;
              priority = 1;
            }
        end)
      action_nodes
  in
  let return_transition_records =
    List.rev !return_transitions
    |> List.map (fun (action, from_place, to_place) ->
           {
             Pepanet.Net.transition_name = Printf.sprintf "t_%s_%s" action from_place;
             firing_action = action;
             firing_rate = S.Rvar (Names.rate_name action);
             inputs = [ from_place ];
             outputs = [ to_place ];
             priority = 1;
           })
  in
  let firing_names =
    String_set.of_list
      (List.map (fun (t : Pepanet.Net.transition) -> t.Pepanet.Net.firing_action)
         (move_transitions @ return_transition_records))
  in
  (* Static components: object-less activities grouped by location. *)
  let static_loc =
    assign_static_locations d ~mobile
      ~pinned:(fun id -> A.annotation d ~node_id:id ~tag:"atloc" <> None)
      ~initial_location:
        (if mobile then
           match d.A.occurrences with
           | o :: _ -> o.A.atloc
           | [] -> None
         else Some "global")
  in
  (* An explicit atloc tag on an object-less action state pins its static
     component's location, overriding the walk (a Section 6 extension:
     "tags that define which action is performed by which static
     component could be introduced"). *)
  let static_location_of (n : A.node) =
    match A.annotation d ~node_id:n.A.node_id ~tag:"atloc" with
    | Some pinned ->
        if not (List.mem pinned locations) then
          fail "activity %s is pinned to unknown location %s" n.A.node_id pinned;
        Some pinned
    | None -> static_loc n.A.node_id
  in
  let static_groups =
    List.filter_map
      (fun location ->
        let ids =
          List.filter_map
            (fun (n : A.node) ->
              if static_location_of n = Some location then Some n.A.node_id else None)
            object_less
        in
        if ids = [] then None else Some (location, ids))
      locations
  in
  let static_roots =
    List.map (fun (location, _) -> (location, Names.constant_name ("St_" ^ location)))
      static_groups
  in
  let static_defs =
    List.concat_map
      (fun (location, ids) ->
        check_fork_branches d
          ~relevant:(fun id -> List.mem id ids)
          ~subject:(Printf.sprintf "the static component at %s" location);
        let root = List.assoc location static_roots in
        let alloc =
          Names.Allocator.create (fun node_id ->
              Names.constant_name (Printf.sprintf "%s_%s" root (action_name_of d node_id)))
        in
        List.iter (fun id -> ignore (use_action (action_name_of d id))) ids;
        build_behaviour d ~relevant_ids:ids ~root_name:root
          ~state_const:(Names.Allocator.get alloc)
          ~rate_var:(fun a -> Names.rate_name (use_action a))
          ~on_final:(fun ~at:_ -> S.Var root))
      static_groups
  in
  (* Places. *)
  let shared_actions_of obj =
    String_set.of_list
      (List.map (action_name_of d) (List.assoc obj relevant_of_object))
  in
  let places =
    List.map
      (fun location ->
        let place_name = place_of location in
        let residents =
          List.filter
            (fun obj ->
              List.exists
                (fun (o : A.occurrence) ->
                  o.A.obj_name = obj
                  && (if mobile then o.A.atloc = Some location else true))
                d.A.occurrences)
            objects
        in
        if residents = [] then
          fail "location %s is mentioned in atloc tags but hosts no object" location;
        let cell obj =
          let initial =
            if first_loc obj = location then Some (token_root obj) else None
          in
          Pepanet.Net.Cell { cell_type = token_root obj; initial_token = initial }
        in
        (* The cooperation set between a new cell and the cells already
           composed: per earlier object, the activities the two objects
           share, filtered through the interaction diagrams when any were
           supplied (a Section 6 extension). *)
        let pair_shared o1 o2 =
          String_set.inter (shared_actions_of o1) (shared_actions_of o2)
          |> String_set.filter (fun a -> Uml.Interaction.allows interactions ~action:a o1 o2)
          |> fun set -> String_set.diff set firing_names
        in
        let context, _earlier =
          List.fold_left
            (fun (ctx, earlier) obj ->
              match ctx with
              | None -> (Some (cell obj), [ obj ])
              | Some c ->
                  let coop_set =
                    List.fold_left
                      (fun acc other -> String_set.union acc (pair_shared other obj))
                      String_set.empty earlier
                  in
                  (Some (Pepanet.Net.Ctx_coop (c, coop_set, cell obj)), obj :: earlier))
            (None, []) residents
        in
        let context = Option.get context in
        let context =
          match List.assoc_opt location static_roots with
          | None -> context
          | Some root ->
              let static_actions =
                String_set.of_list
                  (List.concat_map
                     (fun (loc, ids) ->
                       if loc = location then List.map (action_name_of d) ids else [])
                     static_groups)
              in
              let token_actions =
                List.fold_left
                  (fun acc obj -> String_set.union acc (shared_actions_of obj))
                  String_set.empty residents
              in
              Pepanet.Net.Ctx_coop
                ( context,
                  String_set.diff (String_set.inter static_actions token_actions) firing_names,
                  Pepanet.Net.Static root )
        in
        { Pepanet.Net.place_name; context })
      locations
  in
  (* Rate parameter definitions for every used action. *)
  let rate_defs =
    String_set.elements !used_actions
    |> List.map (fun action ->
           S.Rate_def (Names.rate_name action, S.Rnum (action_rate rates action)))
  in
  let net =
    {
      Pepanet.Net.definitions = rate_defs @ token_defs @ static_defs;
      token_types = List.map snd token_of_object;
      places;
      transitions = move_transitions @ return_transition_records;
    }
  in
  { net; action_of_node; token_of_object; place_of_location }

let extract ?rates ?restart ?interactions d =
  Obs.Span.with_ "extract.activity" (fun span ->
      Obs.Span.add_str span "diagram" d.Uml.Activity.diagram_name;
      let extraction = extract_untraced ?rates ?restart ?interactions d in
      Obs.Span.add_int span "places" (List.length extraction.net.Pepanet.Net.places);
      Obs.Span.add_int span "transitions"
        (List.length extraction.net.Pepanet.Net.transitions);
      extraction)
