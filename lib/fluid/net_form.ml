(* The PEPA-net lowering onto the population-model IR.

   Coordinates: one block per (token family, place) pooling the
   family's cells there — tokens are counted by local derivative, not
   tracked by cell — plus one block per static component.  Each place's
   cooperation context becomes one tree of the IR forest (local
   activities flow per place, independently); net transitions become
   transfer rows that drain candidate firing derivatives of the input
   places and deposit the moved mass at the target derivative in the
   output places. *)

module String_set = Pepa.Syntax.String_set
module NC = Pepanet.Net_compile

exception Unsupported = Population.Unsupported

let fail fmt = Format.kasprintf (fun msg -> raise (Unsupported msg)) fmt

type t = {
  compiled : NC.t;
  form : Population.t;
  family_block : int array array;  (* .(place).(family): block id or -1 *)
  place_of_block : int array;
  family_of_block : int array;     (* family id, -1 for static blocks *)
}

let active_rate what rate =
  match rate with
  | Pepa.Rate.Active r -> r
  | Pepa.Rate.Passive _ ->
      fail
        "passive rate on %s: the fluid approximation requires active rates (replace infty \
         with a finite rate)"
        what

(* Intermediate per-place tree over block ids. *)
type btree = Bblock of int | Bcoop of btree * String_set.t * btree

let derive compiled =
  Obs.Span.with_ "fluid.derive_net" (fun span ->
      let n_places = Array.length compiled.NC.places in
      let n_families = Array.length compiled.NC.families in
      (* Priority preemption is discontinuous: a higher-priority
         transition with concession suppresses the rest outright, so a
         net mixing priorities has no deterministic limit. *)
      (match Array.to_list compiled.NC.transitions with
      | [] -> ()
      | first :: rest ->
          List.iter
            (fun tr ->
              if tr.NC.t_priority <> first.NC.t_priority then
                fail
                  "transitions %s and %s carry different priorities (%d vs %d): priority \
                   preemption has no fluid interpretation"
                  first.NC.t_name tr.NC.t_name first.NC.t_priority tr.NC.t_priority)
            rest);
      (* Interned named action types: token families, then statics,
         then firing labels. *)
      let action_ids = Hashtbl.create 16 in
      let action_rev = ref [] in
      let n_actions = ref 0 in
      let intern name =
        match Hashtbl.find_opt action_ids name with
        | Some id -> id
        | None ->
            let id = !n_actions in
            Hashtbl.add action_ids name id;
            action_rev := name :: !action_rev;
            incr n_actions;
            id
      in
      let intern_component (component : Pepa.Compile.component) =
        Array.iter
          (Array.iter (fun (action, _, _) ->
               match action with
               | Pepa.Action.Act name -> ignore (intern name)
               | Pepa.Action.Tau -> ()))
          component.Pepa.Compile.local_moves
      in
      Array.iter (fun family -> intern_component family.NC.component) compiled.NC.families;
      Array.iter intern_component compiled.NC.static_components;
      Array.iter (fun tr -> ignore (intern tr.NC.t_action)) compiled.NC.transitions;
      let actions = Array.of_list (List.rev !action_rev) in
      let n_actions = Array.length actions in
      let is_firing name = String_set.mem name compiled.NC.firing_actions in
      let m0 = Pepanet.Marking.initial compiled in
      (* Blocks: walk each place's context, pooling same-family cells
         of its parallel (empty-set) chains; statics are blocks of
         one. *)
      let family_block = Array.init n_places (fun _ -> Array.make n_families (-1)) in
      let blocks_rev = ref [] in
      let n_blocks = ref 0 in
      let add_block ~label ~(component : Pepa.Compile.component) ~family ~place ~init_local
          ~count =
        let id = !n_blocks in
        incr n_blocks;
        blocks_rev := (label, component, family, place, init_local, count) :: !blocks_rev;
        id
      in
      let family_initial family =
        Option.value ~default:0
          (List.assoc_opt family.NC.family_root family.NC.constant_states)
      in
      let add_family_block place family =
        if family_block.(place).(family) >= 0 then
          fail
            "cells of family %s appear in more than one cooperation position of place %s: \
             arriving tokens would have no unique pool"
            compiled.NC.families.(family).NC.family_root
            (NC.place_name compiled place);
        let f = compiled.NC.families.(family) in
        let id =
          add_block
            ~label:(Printf.sprintf "%s@%s" f.NC.family_root (NC.place_name compiled place))
            ~component:f.NC.component ~family ~place ~init_local:(family_initial f)
            ~count:0.0
        in
        family_block.(place).(family) <- id;
        id
      in
      let rec members acc s =
        match s with
        | NC.Pcoop (a, set, b) when String_set.is_empty set -> members (members acc a) b
        | other -> other :: acc
      in
      let build_place place =
        let rec build s =
          match s with
          | NC.Pleaf (NC.Lcell { cell = _; family }) ->
              Bblock (add_family_block place family)
          | NC.Pleaf (NC.Lstatic { static; component }) ->
              Bblock
                (add_block
                   ~label:
                     (Printf.sprintf "%s@%s" component.Pepa.Compile.root_label
                        (NC.place_name compiled place))
                   ~component ~family:(-1) ~place
                   ~init_local:m0.Pepanet.Marking.statics.(static) ~count:1.0)
          | NC.Pcoop (_, set, _) when String_set.is_empty set ->
              let ms = List.rev (members [] s) in
              (* Group the cell members by family; keep statics and
                 composite members apart, in order. *)
              let seen = Hashtbl.create 4 in
              let order = ref [] in
              List.iter
                (fun m ->
                  match m with
                  | NC.Pleaf (NC.Lcell { cell = _; family }) ->
                      if not (Hashtbl.mem seen family) then begin
                        Hashtbl.add seen family ();
                        order := `Fam family :: !order
                      end
                  | other -> order := `Tree other :: !order)
                ms;
              let parts =
                List.rev_map
                  (function
                    | `Fam family -> Bblock (add_family_block place family)
                    | `Tree sub -> build sub)
                  !order
              in
              (match parts with
              | [] -> fail "empty place context"
              | first :: rest ->
                  List.fold_left (fun acc p -> Bcoop (acc, String_set.empty, p)) first rest)
          | NC.Pcoop (a, set, b) -> Bcoop (build a, set, build b)
        in
        build compiled.NC.places.(place).NC.structure
      in
      let place_trees = Array.init n_places build_place in
      let raw_blocks = Array.of_list (List.rev !blocks_rev) in
      let n_blocks = Array.length raw_blocks in
      (* Initial token mass and initial local states per block. *)
      let counts = Array.map (fun (_, _, _, _, _, c) -> c) raw_blocks in
      let init_local = Array.map (fun (_, _, _, _, i, _) -> i) raw_blocks in
      let init_seen = Array.make n_blocks false in
      let offsets = Array.make n_blocks 0 in
      let dim = ref 0 in
      Array.iteri
        (fun b (_, (component : Pepa.Compile.component), _, _, _, _) ->
          offsets.(b) <- !dim;
          dim := !dim + Array.length component.Pepa.Compile.labels)
        raw_blocks;
      let dim = !dim in
      let x0 = Array.make dim 0.0 in
      Array.iteri
        (fun b (_, _, family, _, _, _) ->
          if family < 0 then x0.(offsets.(b) + init_local.(b)) <- 1.0)
        raw_blocks;
      Array.iter
        (fun token ->
          let place = compiled.NC.cell_place.(token.NC.initial_cell) in
          let b = family_block.(place).(token.NC.token_family) in
          counts.(b) <- counts.(b) +. 1.0;
          x0.(offsets.(b) + token.NC.initial_state) <-
            x0.(offsets.(b) + token.NC.initial_state) +. 1.0;
          if not init_seen.(b) then begin
            init_seen.(b) <- true;
            init_local.(b) <- token.NC.initial_state
          end)
        compiled.NC.tokens;
      (* Disambiguate duplicate labels (two statics of one behaviour in
         one place). *)
      let labels =
        let label_counts = Hashtbl.create 8 in
        Array.map
          (fun (label, _, _, _, _, _) ->
            let k = 1 + Option.value ~default:0 (Hashtbl.find_opt label_counts label) in
            Hashtbl.replace label_counts label k;
            if k = 1 then label else Printf.sprintf "%s#%d" label k)
          raw_blocks
      in
      let blocks =
        Array.mapi
          (fun b (_, (component : Pepa.Compile.component), _, _, _, _) ->
            {
              Population.b_label = labels.(b);
              b_count = counts.(b);
              b_offset = offsets.(b);
              b_n_local = Array.length component.Pepa.Compile.labels;
              b_labels = component.Pepa.Compile.labels;
              b_init_local = init_local.(b);
            })
          raw_blocks
      in
      (* Local activity rows: firing-typed activities of tokens only
         participate in net-level transfers, exactly as in the discrete
         semantics; everything else flows within the place. *)
      let moves =
        Array.mapi
          (fun b (_, (component : Pepa.Compile.component), family, _, _, _) ->
            let rows = ref [] in
            Array.iteri
              (fun local state_moves ->
                Array.iter
                  (fun (action, rate, target) ->
                    let keep, aid =
                      match action with
                      | Pepa.Action.Act name ->
                          if family >= 0 && is_firing name then (false, 0)
                          else (true, Hashtbl.find action_ids name)
                      | Pepa.Action.Tau -> (true, -1)
                    in
                    if keep then begin
                      let rate =
                        active_rate
                          (Printf.sprintf "action %s of %s"
                             (Pepa.Action.to_string action)
                             labels.(b))
                          rate
                      in
                      rows :=
                        { Population.m_local = local; m_aid = aid; m_rate = rate; m_target = target }
                        :: !rows
                    end)
                  state_moves)
              component.Pepa.Compile.local_moves;
            Array.of_list (List.rev !rows))
          raw_blocks
      in
      (* Flatten the per-place trees into one post-order forest. *)
      let nodes_rev = ref [] in
      let n_nodes = ref 0 in
      let block_node = Array.make n_blocks (-1) in
      let mask_of set =
        let m = Array.make n_actions false in
        String_set.iter
          (fun name ->
            match Hashtbl.find_opt action_ids name with
            | Some aid -> m.(aid) <- true
            | None -> ())
          set;
        m
      in
      let no_mask = Array.make n_actions false in
      let push node =
        let id = !n_nodes in
        incr n_nodes;
        nodes_rev := node :: !nodes_rev;
        id
      in
      let rec flatten = function
        | Bblock b ->
            let id = push { Population.kind = Population.Kblock b; mask = no_mask } in
            block_node.(b) <- id;
            id
        | Bcoop (l, set, r) ->
            let lid = flatten l in
            let rid = flatten r in
            push { Population.kind = Population.Kcoop (lid, rid); mask = mask_of set }
      in
      Array.iter (fun tree -> ignore (flatten tree)) place_trees;
      let nodes = Array.of_list (List.rev !nodes_rev) in
      (* Transfers: one per net transition.  Candidate rows are the
         firing-typed derivative moves of every family present at an
         input place; destinations advance the token to the firing
         target in each output place's pool. *)
      let transfers =
        Array.map
          (fun tr ->
            let cap =
              active_rate (Printf.sprintf "net transition %s" tr.NC.t_name) tr.NC.t_rate
            in
            let dst_offset output family =
              let b = family_block.(output).(family) in
              if b < 0 then
                fail
                  "transition %s moves a %s token to place %s, which has no cell of that \
                   family"
                  tr.NC.t_name
                  compiled.NC.families.(family).NC.family_root
                  (NC.place_name compiled output);
              offsets.(b)
            in
            let inputs =
              Array.map
                (fun place ->
                  let rows = ref [] in
                  for family = 0 to n_families - 1 do
                    let b = family_block.(place).(family) in
                    if b >= 0 then begin
                      let component = compiled.NC.families.(family).NC.component in
                      Array.iteri
                        (fun s state_moves ->
                          Array.iter
                            (fun (action, rate, target) ->
                              match action with
                              | Pepa.Action.Act name when name = tr.NC.t_action ->
                                  let r =
                                    active_rate
                                      (Printf.sprintf "firing %s of family %s" name
                                         compiled.NC.families.(family).NC.family_root)
                                      rate
                                  in
                                  let dsts =
                                    Array.map
                                      (fun o -> dst_offset o family + target)
                                      tr.NC.t_outputs
                                  in
                                  rows :=
                                    { Population.r_src = offsets.(b) + s; r_rate = r; r_dsts = dsts }
                                    :: !rows
                              | _ -> ())
                            state_moves)
                        component.Pepa.Compile.local_moves
                    end
                  done;
                  Array.of_list (List.rev !rows))
                tr.NC.t_inputs
            in
            { Population.t_label = tr.NC.t_name; t_aid = intern tr.NC.t_action; t_cap = cap; t_inputs = inputs })
          compiled.NC.transitions
      in
      let form =
        Population.make ~blocks ~actions ~moves ~nodes ~block_node ~transfers ~x0 ()
      in
      Obs.Span.add_int span "dim" (Population.dim form);
      Obs.Span.add_int span "blocks" n_blocks;
      Obs.Span.add_int span "transfers" (Array.length transfers);
      {
        compiled;
        form;
        family_block;
        place_of_block = Array.map (fun (_, _, _, place, _, _) -> place) raw_blocks;
        family_of_block = Array.map (fun (_, _, family, _, _, _) -> family) raw_blocks;
      })

let of_net net = derive (NC.compile net)
let of_string src = derive (NC.of_string src)
let of_file path = derive (NC.of_file path)

let compiled t = t.compiled
let form t = t.form
let dim t = Population.dim t.form
let n_flux_entries t = Population.n_flux_entries t.form
let initial t = Population.initial t.form
let derivative t x dx = Population.derivative t.form x dx
let blocks t = Population.blocks t.form

let block_index t ~label =
  let blocks = Population.blocks t.form in
  let found = ref (-1) in
  Array.iteri (fun b blk -> if blk.Population.b_label = label then found := b) blocks;
  if !found < 0 then raise Not_found;
  !found

let with_count t ~block ~count = { t with form = Population.with_count t.form ~block ~count }

let action_names t = Population.action_names t.form
let throughput t x name = Population.throughput t.form x name
let throughputs t x = Population.throughputs t.form x
let firing_throughput t x name = Population.transfer_throughput t.form x name

let expected_tokens_at t x ~place =
  let p = NC.place_index t.compiled place in
  let blocks = Population.blocks t.form in
  let total = ref 0.0 in
  Array.iteri
    (fun b blk ->
      if t.place_of_block.(b) = p && t.family_of_block.(b) >= 0 then
        for s = 0 to blk.Population.b_n_local - 1 do
          total := !total +. x.(blk.Population.b_offset + s)
        done)
    blocks;
  !total

let token_location_proportions t x ~family =
  let fi = ref (-1) in
  Array.iteri
    (fun i f -> if f.NC.family_root = family then fi := i)
    t.compiled.NC.families;
  if !fi < 0 then raise Not_found;
  let blocks = Population.blocks t.form in
  let mass_at p =
    match t.family_block.(p).(!fi) with
    | -1 -> 0.0
    | b ->
        let blk = blocks.(b) in
        let total = ref 0.0 in
        for s = 0 to blk.Population.b_n_local - 1 do
          total := !total +. x.(blk.Population.b_offset + s)
        done;
        !total
  in
  let masses = Array.init (Array.length t.compiled.NC.places) mass_at in
  let total = Array.fold_left ( +. ) 0.0 masses in
  let scale = if total > 0.0 then 1.0 /. total else 0.0 in
  Array.to_list
    (Array.mapi (fun p m -> (NC.place_name t.compiled p, m *. scale)) masses)

let place_populations t x = Population.populations t.form x

(* Per-block conditional distribution: normalise by the block's mass at
   [x], not its initial count — token blocks of initially-empty places
   acquire mass only through transfers. *)
let proportions t x =
  let blocks = Population.blocks t.form in
  List.concat
    (Array.to_list
       (Array.map
          (fun blk ->
            let total = ref 0.0 in
            for s = 0 to blk.Population.b_n_local - 1 do
              total := !total +. x.(blk.Population.b_offset + s)
            done;
            let scale = if !total > 1e-12 then 1.0 /. !total else 0.0 in
            List.init blk.Population.b_n_local (fun s ->
                ( Printf.sprintf "%s.%s" blk.Population.b_label blk.Population.b_labels.(s),
                  x.(blk.Population.b_offset + s) *. scale )))
          blocks))

let pp_summary fmt t = Population.pp_summary fmt t.form
