(* The population-model IR: coordinates grouped into blocks, a
   cooperation forest for the apparent-rate min/sum algebra, local flux
   rows at the blocks and capacity-bounded transfer rows between them.

   One derivative evaluation is allocation-free:

     bottom-up   apparent rate of every action type at every node
                 (blocks sum local-state contributions, shared
                 cooperation takes the min, independent composition
                 sums, hiding zeroes)
     top-down    flow assignment per tree (a cooperation passes its
                 bounded flow to both sides of a shared action and
                 splits independent flow proportionally; hiding
                 restores the inner subtree's autonomous flow) ending
                 in per-move fluxes at the blocks
     transfers   each transfer flows at the min of its capacity and
                 every input context's apparent rate, drains candidate
                 coordinates proportionally and deposits the mass
                 uniformly over its destinations. *)

exception Unsupported of string

type block = {
  b_label : string;
  b_count : float;
  b_offset : int;
  b_n_local : int;
  b_labels : string array;
  b_init_local : int;
}

type move = { m_local : int; m_aid : int; m_rate : float; m_target : int }

type nkind = Kblock of int | Kcoop of int * int | Khide of int

type node = { kind : nkind; mask : bool array }

type trow = { r_src : int; r_rate : float; r_dsts : int array }

type transfer = {
  t_label : string;
  t_aid : int;
  t_cap : float;
  t_inputs : trow array array;
}

type t = {
  blocks : block array;
  actions : string array;
  moves : move array array;
  contrib : float array array array;  (* contrib.(b).(s).(aid): summed rate *)
  nodes : node array;                 (* post-order forest *)
  trees : (int * int) array;          (* (first node, root node) per tree *)
  block_node : int array;
  transfers : transfer array;
  visible : bool array;               (* aid visible at some root / transfer *)
  dim : int;
  x0 : float array;
  (* evaluation scratch (node-major), reused across calls *)
  app : float array array;
  flow : float array array;
  tapp : float array array;           (* per transfer: apparent rate per input *)
}

let make ~blocks ~actions ~moves ~nodes ~block_node ?(transfers = [||]) ?x0 () =
  let n_actions = Array.length actions in
  let n_nodes = Array.length nodes in
  let dim =
    Array.fold_left (fun acc b -> max acc (b.b_offset + b.b_n_local)) 0 blocks
  in
  let contrib =
    Array.mapi
      (fun p b ->
        let table = Array.make_matrix b.b_n_local n_actions 0.0 in
        Array.iter
          (fun m ->
            if m.m_aid >= 0 then
              table.(m.m_local).(m.m_aid) <- table.(m.m_local).(m.m_aid) +. m.m_rate)
          moves.(p);
        table)
      blocks
  in
  (* Tree boundaries: post-order puts every subtree before its parent,
     so the roots (nodes no other node references) delimit contiguous
     ranges. *)
  let is_child = Array.make (max 1 n_nodes) false in
  Array.iter
    (fun nd ->
      match nd.kind with
      | Kblock _ -> ()
      | Kcoop (l, r) ->
          is_child.(l) <- true;
          is_child.(r) <- true
      | Khide c -> is_child.(c) <- true)
    nodes;
  let trees =
    let acc = ref [] and start = ref 0 in
    for id = 0 to n_nodes - 1 do
      if not is_child.(id) then begin
        acc := (!start, id) :: !acc;
        start := id + 1
      end
    done;
    Array.of_list (List.rev !acc)
  in
  (* Visibility of each action type at its tree root. *)
  let visible_at = Array.make n_nodes [||] in
  Array.iteri
    (fun id node ->
      visible_at.(id) <-
        (match node.kind with
        | Kblock p ->
            Array.init n_actions (fun a ->
                let rec any s =
                  s < blocks.(p).b_n_local && (contrib.(p).(s).(a) > 0.0 || any (s + 1))
                in
                any 0)
        | Kcoop (l, r) ->
            Array.init n_actions (fun a -> visible_at.(l).(a) || visible_at.(r).(a))
        | Khide c ->
            Array.init n_actions (fun a -> visible_at.(c).(a) && not (node.mask.(a)))))
    nodes;
  let visible =
    if n_nodes = 0 then Array.make n_actions false
    else if Array.length trees = 1 then visible_at.(snd trees.(0))
    else begin
      let v = Array.make n_actions false in
      Array.iter
        (fun (_, root) ->
          Array.iteri (fun a b -> if b then v.(a) <- true) visible_at.(root))
        trees;
      v
    end
  in
  Array.iter (fun tr -> visible.(tr.t_aid) <- true) transfers;
  let x0 =
    match x0 with
    | Some given ->
        if Array.length given <> dim then
          invalid_arg "Population.make: x0 dimension mismatch";
        Array.copy given
    | None ->
        let v = Array.make dim 0.0 in
        Array.iter (fun b -> v.(b.b_offset + b.b_init_local) <- b.b_count) blocks;
        v
  in
  let app = Array.map (fun _ -> Array.make n_actions 0.0) nodes in
  let flow = Array.map (fun _ -> Array.make n_actions 0.0) nodes in
  let tapp = Array.map (fun tr -> Array.make (Array.length tr.t_inputs) 0.0) transfers in
  {
    blocks;
    actions;
    moves;
    contrib;
    nodes;
    trees;
    block_node;
    transfers;
    visible;
    dim;
    x0;
    app;
    flow;
    tapp;
  }

let blocks t = t.blocks
let actions t = t.actions
let dim t = t.dim

let n_flux_entries t =
  Array.fold_left (fun acc m -> acc + Array.length m) 0 t.moves
  + Array.fold_left
      (fun acc tr -> Array.fold_left (fun acc rows -> acc + Array.length rows) acc tr.t_inputs)
      0 t.transfers

let initial t = Array.copy t.x0

let with_count t ~block ~count =
  if block < 0 || block >= Array.length t.blocks then
    invalid_arg "Population.with_count: block index out of range";
  if not (Float.is_finite count) || count < 0.0 then
    invalid_arg "Population.with_count: count must be finite and non-negative";
  let blocks = Array.copy t.blocks in
  blocks.(block) <- { blocks.(block) with b_count = count };
  let x0 = Array.make t.dim 0.0 in
  Array.iter (fun b -> x0.(b.b_offset + b.b_init_local) <- b.b_count) blocks;
  { t with blocks; x0 }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let pos x = if x > 0.0 then x else 0.0

(* Bottom-up pass: apparent rate of every action type at every node. *)
let fill_apparent t x =
  let n_actions = Array.length t.actions in
  Array.iteri
    (fun id node ->
      let out = t.app.(id) in
      match node.kind with
      | Kblock p ->
          let b = t.blocks.(p) in
          let table = t.contrib.(p) in
          for a = 0 to n_actions - 1 do
            let acc = ref 0.0 in
            for s = 0 to b.b_n_local - 1 do
              let c = table.(s).(a) in
              if c > 0.0 then acc := !acc +. (pos x.(b.b_offset + s) *. c)
            done;
            out.(a) <- !acc
          done
      | Kcoop (l, r) ->
          let al = t.app.(l) and ar = t.app.(r) in
          for a = 0 to n_actions - 1 do
            out.(a) <- (if node.mask.(a) then Float.min al.(a) ar.(a) else al.(a) +. ar.(a))
          done
      | Khide c ->
          let ac = t.app.(c) in
          for a = 0 to n_actions - 1 do
            out.(a) <- (if node.mask.(a) then 0.0 else ac.(a))
          done)
    t.nodes

(* Apparent rate of one transfer input context and the resulting
   bounded flow, straight off the candidate rows (transfer actions
   never appear in the cooperation forest). *)
let input_apparent x rows =
  let acc = ref 0.0 in
  Array.iter (fun r -> acc := !acc +. (pos x.(r.r_src) *. r.r_rate)) rows;
  !acc

let bounded_flow t x ti =
  let tr = t.transfers.(ti) in
  let apps = t.tapp.(ti) in
  let bounded = ref tr.t_cap in
  Array.iteri
    (fun i rows ->
      let app = input_apparent x rows in
      apps.(i) <- app;
      if app < !bounded then bounded := app)
    tr.t_inputs;
  !bounded

let derivative t x dx =
  Array.fill dx 0 t.dim 0.0;
  let n_nodes = Array.length t.nodes in
  if n_nodes > 0 then begin
    let n_actions = Array.length t.actions in
    fill_apparent t x;
    (* Top-down pass per tree: the root flows at its own apparent rate;
       shared cooperation passes the bounded flow to both sides,
       independent composition splits it proportionally, hiding
       restores the inner subtree's autonomous flow. *)
    Array.iter
      (fun (start, root) ->
        Array.blit t.app.(root) 0 t.flow.(root) 0 n_actions;
        for id = root downto start do
          let node = t.nodes.(id) in
          let fl = t.flow.(id) in
          match node.kind with
          | Kblock _ -> ()
          | Kcoop (l, r) ->
              let al = t.app.(l) and ar = t.app.(r) in
              for a = 0 to n_actions - 1 do
                if node.mask.(a) then begin
                  t.flow.(l).(a) <- fl.(a);
                  t.flow.(r).(a) <- fl.(a)
                end
                else begin
                  let denom = al.(a) +. ar.(a) in
                  if denom > 0.0 then begin
                    t.flow.(l).(a) <- fl.(a) *. al.(a) /. denom;
                    t.flow.(r).(a) <- fl.(a) *. ar.(a) /. denom
                  end
                  else begin
                    t.flow.(l).(a) <- 0.0;
                    t.flow.(r).(a) <- 0.0
                  end
                end
              done
          | Khide c ->
              let ac = t.app.(c) in
              for a = 0 to n_actions - 1 do
                t.flow.(c).(a) <- (if node.mask.(a) then ac.(a) else fl.(a))
              done
        done)
      t.trees;
    (* Per-move fluxes at the blocks. *)
    Array.iteri
      (fun p rows ->
        let b = t.blocks.(p) in
        let id = t.block_node.(p) in
        let fl = t.flow.(id) and ap = t.app.(id) in
        Array.iter
          (fun m ->
            let level = pos x.(b.b_offset + m.m_local) in
            let flux =
              if m.m_aid < 0 then level *. m.m_rate
              else begin
                let total = ap.(m.m_aid) in
                if total > 0.0 then fl.(m.m_aid) *. (level *. m.m_rate) /. total else 0.0
              end
            in
            if flux <> 0.0 then begin
              dx.(b.b_offset + m.m_local) <- dx.(b.b_offset + m.m_local) -. flux;
              dx.(b.b_offset + m.m_target) <- dx.(b.b_offset + m.m_target) +. flux
            end)
          rows)
      t.moves
  end;
  (* Transfer fluxes between blocks. *)
  Array.iteri
    (fun ti tr ->
      let f = bounded_flow t x ti in
      if f > 0.0 then begin
        let apps = t.tapp.(ti) in
        Array.iteri
          (fun i rows ->
            let app = apps.(i) in
            if app > 0.0 then
              Array.iter
                (fun r ->
                  let share = f *. (pos x.(r.r_src) *. r.r_rate) /. app in
                  if share <> 0.0 then begin
                    dx.(r.r_src) <- dx.(r.r_src) -. share;
                    let portion = share /. float_of_int (Array.length r.r_dsts) in
                    Array.iter (fun d -> dx.(d) <- dx.(d) +. portion) r.r_dsts
                  end)
                rows)
          tr.t_inputs
      end)
    t.transfers

(* ------------------------------------------------------------------ *)
(* Measures                                                            *)
(* ------------------------------------------------------------------ *)

(* Apparent rate of every action type over the tree roots. *)
let root_rates t x =
  let n_nodes = Array.length t.nodes in
  if n_nodes = 0 then Array.make (Array.length t.actions) 0.0
  else begin
    fill_apparent t x;
    let acc = Array.copy t.app.(snd t.trees.(0)) in
    for i = 1 to Array.length t.trees - 1 do
      let a = t.app.(snd t.trees.(i)) in
      Array.iteri (fun j v -> acc.(j) <- acc.(j) +. v) a
    done;
    acc
  end

let rates t x =
  let out = root_rates t x in
  Array.iteri
    (fun ti tr -> out.(tr.t_aid) <- out.(tr.t_aid) +. bounded_flow t x ti)
    t.transfers;
  out

let action_names t =
  let names = ref [] in
  Array.iteri (fun a name -> if t.visible.(a) then names := name :: !names) t.actions;
  List.sort String.compare !names

let throughput t x name =
  let rates = rates t x in
  let result = ref 0.0 in
  Array.iteri (fun a n -> if n = name && t.visible.(a) then result := rates.(a)) t.actions;
  !result

let throughputs t x =
  let rates = rates t x in
  let out = ref [] in
  Array.iteri (fun a name -> if t.visible.(a) then out := (name, rates.(a)) :: !out) t.actions;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !out

let transfer_flux t x ti =
  if ti < 0 || ti >= Array.length t.transfers then
    invalid_arg "Population.transfer_flux: transfer index out of range";
  bounded_flow t x ti

let transfer_throughput t x label =
  let acc = ref 0.0 in
  Array.iteri
    (fun ti tr -> if tr.t_label = label then acc := !acc +. bounded_flow t x ti)
    t.transfers;
  !acc

let n_transfers t = Array.length t.transfers
let transfer_label t ti = t.transfers.(ti).t_label

let populations t x =
  Array.to_list t.blocks
  |> List.concat_map (fun b ->
         List.init b.b_n_local (fun s ->
             (Printf.sprintf "%s.%s" b.b_label b.b_labels.(s), x.(b.b_offset + s))))

let proportions t x =
  Array.to_list t.blocks
  |> List.concat_map (fun b ->
         let scale = if b.b_count > 0.0 then 1.0 /. b.b_count else 0.0 in
         List.init b.b_n_local (fun s ->
             (Printf.sprintf "%s.%s" b.b_label b.b_labels.(s), x.(b.b_offset + s) *. scale)))

let pp_summary fmt t =
  Format.fprintf fmt
    "@[<v>population model: %d coordinates, %d blocks, %d flux rows, %d transfers@,"
    t.dim (Array.length t.blocks) (n_flux_entries t) (Array.length t.transfers);
  Array.iter
    (fun b ->
      Format.fprintf fmt "  %-24s %g initial mass over %d local states@," b.b_label b.b_count
        b.b_n_local)
    t.blocks;
  Format.fprintf fmt "@]"
