(** Adaptive explicit Runge–Kutta integration (Dormand–Prince 5(4))
    with steady-state detection, the solver behind the fluid-flow
    approximation.

    The stepper advances an autonomous-or-not ODE [x' = f(t, x)] with
    embedded 4th/5th-order error control and declares steady state as
    soon as the derivative norm falls below a tolerance scaled by the
    solution magnitude — the fluid analogue of the residual test the
    CTMC solvers run.  The first-same-as-last structure of the tableau
    means a steady-state check after every accepted step costs no
    extra derivative evaluation. *)

type tolerances = {
  rtol : float;  (** relative local-error tolerance (default [1e-8]) *)
  atol : float;  (** absolute local-error tolerance (default [1e-12]) *)
}

val default_tolerances : tolerances

type stats = {
  steps : int;            (** accepted steps *)
  rejected : int;         (** rejected trial steps *)
  evaluations : int;      (** right-hand-side evaluations *)
  t_end : float;          (** time reached *)
  dx_norm : float;        (** [||f(t_end, x)||_inf] of the returned state *)
  reached_steady : bool;
}

exception
  Did_not_reach_steady of { steps : int; t : float; dx_norm : float }
(** The time horizon was exhausted (or the step size collapsed) before
    the derivative norm fell below tolerance — the fluid counterpart
    of {!Markov.Steady.Did_not_converge}, and reported with the same
    exit convention by the command-line front ends. *)

exception
  Step_budget_exhausted of { steps : int; t : float; error_estimate : float }
(** The [max_steps] budget ran out before steady state: a stiff model
    grinding through tiny accepted steps, distinct from the horizon
    case above so front ends can hint at the remedy (relax the
    tolerances or raise the budget).  Carries the time reached and the
    last scaled local error estimate (close to 1 means the controller
    was step-limited by accuracy, far below 1 means it was
    stability-limited). *)

val integrate :
  ?tolerances:tolerances ->
  ?steady_tol:float ->
  ?t_max:float ->
  ?max_steps:int ->
  f:(t:float -> x:float array -> dx:float array -> unit) ->
  x0:float array ->
  unit ->
  float array * stats
(** Integrate from [x0] at time 0 until steady state: the first
    accepted step with [||f||_inf <= steady_tol * max 1 ||x||_inf]
    ends the run.  [steady_tol] defaults to [1e3 *. rtol]: error
    control can only track the trajectory down to a deviation of about
    [rtol * ||x||], so the derivative norm plateaus near that floor
    and a fixed threshold below it would never fire.  [f] writes the
    derivative into the array it is handed (no allocation per call).
    Small negative entries introduced by local truncation error are
    clamped to zero after each accepted step, keeping population
    vectors physical.

    Raises {!Did_not_reach_steady} after [t_max] (default [1e6]) time
    units, {!Step_budget_exhausted} after [max_steps] (default
    [2_000_000]) accepted steps, and [Invalid_argument] on
    non-positive tolerances.  Emits a
    ["fluid.integrate"] tracing span and sets the
    ["fluid.steps"]/["fluid.rejected_steps"] gauges when telemetry is
    enabled. *)
