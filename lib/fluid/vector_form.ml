(* The numerical vector form as a lowering onto the population-model
   IR ({!Population}).

   Derivation pools the leaves of parallel compositions by structural
   fingerprint (component index + initial state, the same leaf
   fingerprint the symmetry engine sorts on) into populations; the
   remaining cooperation/hiding skeleton is kept as a small tree whose
   leaves are populations instead of single sequential components.
   The tree, the activity-matrix rows and the initial vector are
   handed to {!Population.make}; evaluation, re-parameterisation and
   the throughput/proportion readout live there, shared with the PEPA
   net lowering ({!Net_form}). *)

module String_set = Pepa.Syntax.String_set

exception Unsupported = Population.Unsupported

let fail fmt = Format.kasprintf (fun msg -> raise (Unsupported msg)) fmt

type pop = {
  comp : int;
  count : float;
  offset : int;
  n_local : int;
  label : string;
  leaves : int array;
}

type t = {
  compiled : Pepa.Compile.t;
  form : Population.t;
  pops : pop array;
  leaf_pop : int array;
}

(* ------------------------------------------------------------------ *)
(* Derivation                                                          *)
(* ------------------------------------------------------------------ *)

type ftree =
  | Tpop of int
  | Tcoop of ftree * String_set.t * ftree
  | Thide of ftree * String_set.t

let derive compiled =
  Obs.Span.with_ "fluid.derive" (fun span ->
      let open Pepa.Compile in
      (* Interned named action types over every component. *)
      let action_ids = Hashtbl.create 16 in
      let action_rev = ref [] in
      let n_actions = ref 0 in
      let intern name =
        match Hashtbl.find_opt action_ids name with
        | Some id -> id
        | None ->
            let id = !n_actions in
            Hashtbl.add action_ids name id;
            action_rev := name :: !action_rev;
            incr n_actions;
            id
      in
      Array.iter
        (fun component ->
          Array.iter
            (Array.iter (fun (action, _, _) ->
                 match action with
                 | Pepa.Action.Act name -> ignore (intern name)
                 | Pepa.Action.Tau -> ()))
            component.local_moves)
        compiled.components;
      let actions = Array.of_list (List.rev !action_rev) in
      let n_actions = Array.length actions in
      (* Populations: pool the single-leaf members of each parallel
         composition by (component, initial state); everything else is
         a population of one. *)
      let pops_rev = ref [] in
      let n_pops = ref 0 in
      let n_leaves = Pepa.Compile.n_leaves compiled in
      let leaf_pop = Array.make n_leaves (-1) in
      let add_pop comp leaves =
        let p = !n_pops in
        incr n_pops;
        List.iter (fun leaf -> leaf_pop.(leaf) <- p) leaves;
        pops_rev := (comp, Array.of_list leaves) :: !pops_rev;
        Tpop p
      in
      (* Flatten a parallel composition (empty cooperation set) into
         its member subtrees.  The compiler emits [P[n]] as a
         right-nested chain, so the recursion is tail on the deep
         side. *)
      let rec members acc s =
        match s with
        | Coop (a, set, b) when String_set.is_empty set -> members (members acc a) b
        | other -> other :: acc
      in
      let rec build s =
        match s with
        | Leaf { leaf; comp } -> add_pop comp [ leaf ]
        | Hide (inner, set) -> Thide (build inner, set)
        | Coop (_, set, _) when String_set.is_empty set ->
            let ms = List.rev (members [] s) in
            (* Group the leaf members; keep composite members apart. *)
            let groups = Hashtbl.create 8 in
            let order = ref [] in
            List.iter
              (fun m ->
                match m with
                | Leaf { leaf; comp } ->
                    let key = (comp, compiled.initial.(leaf)) in
                    (match Hashtbl.find_opt groups key with
                    | Some leaves -> Hashtbl.replace groups key (leaf :: leaves)
                    | None ->
                        Hashtbl.add groups key [ leaf ];
                        order := `Group key :: !order)
                | composite -> order := `Tree composite :: !order)
              ms;
            let parts =
              List.rev_map
                (function
                  | `Group ((comp, _) as key) ->
                      add_pop comp (List.rev (Hashtbl.find groups key))
                  | `Tree composite -> build composite)
                !order
            in
            (match parts with
            | [] -> fail "empty parallel composition"
            | first :: rest ->
                List.fold_left (fun acc p -> Tcoop (acc, String_set.empty, p)) first rest)
        | Coop (a, set, b) -> Tcoop (build a, set, build b)
      in
      let tree = build compiled.structure in
      (* Lay the populations out in the vector and label them. *)
      let raw_pops = Array.of_list (List.rev !pops_rev) in
      let label_counts = Hashtbl.create 8 in
      Array.iter
        (fun (comp, _) ->
          let l = compiled.components.(comp).root_label in
          Hashtbl.replace label_counts l
            (1 + Option.value ~default:0 (Hashtbl.find_opt label_counts l)))
        raw_pops;
      let label_seen = Hashtbl.create 8 in
      let offset = ref 0 in
      let init_local = Array.make (Array.length raw_pops) 0 in
      let pops =
        Array.mapi
          (fun p (comp, leaves) ->
            let component = compiled.components.(comp) in
            let base = component.root_label in
            let label =
              if Hashtbl.find label_counts base = 1 then base
              else begin
                let k = 1 + Option.value ~default:0 (Hashtbl.find_opt label_seen base) in
                Hashtbl.replace label_seen base k;
                Printf.sprintf "%s@%d" base k
              end
            in
            let n_local = Array.length component.labels in
            let here = !offset in
            offset := here + n_local;
            init_local.(p) <- compiled.initial.(leaves.(0));
            {
              comp;
              count = float_of_int (Array.length leaves);
              offset = here;
              n_local;
              label;
              leaves;
            })
          raw_pops
      in
      (* Activity matrix rows.  Passive rates are rejected here: under
         min cooperation a passive side never throttles, so its
         population has no deterministic limit. *)
      let moves =
        Array.map
          (fun pop ->
            let component = compiled.components.(pop.comp) in
            let rows = ref [] in
            Array.iteri
              (fun local state_moves ->
                Array.iter
                  (fun (action, rate, target) ->
                    let aid =
                      match action with
                      | Pepa.Action.Act name -> Hashtbl.find action_ids name
                      | Pepa.Action.Tau -> -1
                    in
                    let rate =
                      match rate with
                      | Pepa.Rate.Active r -> r
                      | Pepa.Rate.Passive _ ->
                          fail
                            "passive rate on action %s of component %s: the fluid \
                             approximation requires active rates (replace infty with a \
                             finite rate)"
                            (Pepa.Action.to_string action)
                            component.root_label
                    in
                    rows :=
                      { Population.m_local = local; m_aid = aid; m_rate = rate; m_target = target }
                      :: !rows)
                  state_moves)
              component.local_moves;
            Array.of_list (List.rev !rows))
          pops
      in
      (* Flatten the tree to a post-order node array. *)
      let nodes_rev = ref [] in
      let n_nodes = ref 0 in
      let pop_node = Array.make (Array.length pops) (-1) in
      let mask_of set =
        let m = Array.make n_actions false in
        String_set.iter
          (fun name ->
            match Hashtbl.find_opt action_ids name with
            | Some aid -> m.(aid) <- true
            | None -> ())
          set;
        m
      in
      let no_mask = Array.make n_actions false in
      let push node =
        let id = !n_nodes in
        incr n_nodes;
        nodes_rev := node :: !nodes_rev;
        id
      in
      let rec flatten = function
        | Tpop p ->
            let id = push { Population.kind = Population.Kblock p; mask = no_mask } in
            pop_node.(p) <- id;
            id
        | Tcoop (l, set, r) ->
            let lid = flatten l in
            let rid = flatten r in
            push { Population.kind = Population.Kcoop (lid, rid); mask = mask_of set }
        | Thide (inner, set) ->
            let cid = flatten inner in
            push { Population.kind = Population.Khide cid; mask = mask_of set }
      in
      ignore (flatten tree);
      let nodes = Array.of_list (List.rev !nodes_rev) in
      let blocks =
        Array.mapi
          (fun p pop ->
            {
              Population.b_label = pop.label;
              b_count = pop.count;
              b_offset = pop.offset;
              b_n_local = pop.n_local;
              b_labels = compiled.components.(pop.comp).labels;
              b_init_local = init_local.(p);
            })
          pops
      in
      let form = Population.make ~blocks ~actions ~moves ~nodes ~block_node:pop_node () in
      Obs.Span.add_int span "dim" (Population.dim form);
      Obs.Span.add_int span "populations" (Array.length pops);
      Obs.Span.add_int span "actions" n_actions;
      { compiled; form; pops; leaf_pop })

let of_model model = derive (Pepa.Compile.of_model model)
let of_string src = of_model (Pepa.Parser.model_of_string src)

let compiled t = t.compiled
let pops t = t.pops
let dim t = Population.dim t.form
let n_flux_entries t = Population.n_flux_entries t.form
let initial t = Population.initial t.form

let with_count t ~pop ~count =
  if pop < 0 || pop >= Array.length t.pops then
    invalid_arg "Vector_form.with_count: population index out of range";
  if not (Float.is_finite count) || count < 0.0 then
    invalid_arg "Vector_form.with_count: replica count must be finite and non-negative";
  let pops = Array.copy t.pops in
  pops.(pop) <- { pops.(pop) with count };
  { t with pops; form = Population.with_count t.form ~block:pop ~count }

(* ------------------------------------------------------------------ *)
(* Evaluation and measures (delegated to the IR)                       *)
(* ------------------------------------------------------------------ *)

let derivative t x dx = Population.derivative t.form x dx
let action_names t = Population.action_names t.form
let throughput t x name = Population.throughput t.form x name
let throughputs t x = Population.throughputs t.form x
let populations t x = Population.populations t.form x
let proportions t x = Population.proportions t.form x

let leaf_pop t ~leaf =
  if leaf < 0 || leaf >= Array.length t.leaf_pop then
    invalid_arg "Vector_form.leaf_pop: leaf index out of range";
  t.leaf_pop.(leaf)

let leaf_proportions t x ~leaf =
  let pop = t.pops.(leaf_pop t ~leaf) in
  let labels = t.compiled.Pepa.Compile.components.(pop.comp).Pepa.Compile.labels in
  let scale = if pop.count > 0.0 then 1.0 /. pop.count else 0.0 in
  List.init pop.n_local (fun s -> (labels.(s), x.(pop.offset + s) *. scale))

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>numerical vector form: %d coordinates, %d populations, %d activities@,"
    (dim t) (Array.length t.pops) (n_flux_entries t);
  Array.iter
    (fun pop ->
      Format.fprintf fmt "  %-24s %g replicas over %d local states@," pop.label pop.count
        pop.n_local)
    t.pops;
  Format.fprintf fmt "@]"
