(* The numerical vector form and its fluid ODE system.

   Derivation pools the leaves of parallel compositions by structural
   fingerprint (component index + initial state, the same leaf
   fingerprint the symmetry engine sorts on) into populations; the
   remaining cooperation/hiding skeleton is kept as a small tree whose
   leaves are populations instead of single sequential components.
   The tree is flattened into a post-order node array so one derivative
   evaluation is two allocation-free passes:

     bottom-up   apparent rate of every action type at every node
                 (populations sum local-state contributions, shared
                 cooperation takes the min, independent composition
                 sums, hiding zeroes)
     top-down    flow assignment (a cooperation passes its bounded
                 flow to both sides of a shared action and splits
                 independent flow proportionally; hiding restores the
                 inner subtree's autonomous flow) ending in per-move
                 fluxes at the populations.  *)

module String_set = Pepa.Syntax.String_set

exception Unsupported of string

let fail fmt = Format.kasprintf (fun msg -> raise (Unsupported msg)) fmt

type pop = {
  comp : int;
  count : float;
  offset : int;
  n_local : int;
  label : string;
  leaves : int array;
}

(* One row of the activity matrix: in [local], the move fires action
   [aid] (-1 for tau) at rate [rate] towards [target]. *)
type move = { local : int; aid : int; rate : float; target : int }

type nkind = Kpop of int | Kcoop of int * int | Khide of int

type nnode = { kind : nkind; mask : bool array }

type t = {
  compiled : Pepa.Compile.t;
  pops : pop array;
  init_local : int array;            (* initial local state per pop *)
  actions : string array;            (* interned named action types *)
  moves : move array array;          (* activity matrix rows, per pop *)
  contrib : float array array array; (* contrib.(p).(s).(aid): summed rate *)
  nodes : nnode array;               (* post-order, root last *)
  pop_node : int array;              (* pop index -> node id *)
  visible : bool array;              (* aid visible at the root *)
  leaf_pop : int array;
  dim : int;
  x0 : float array;
  (* evaluation scratch (node-major), reused across calls *)
  app : float array array;
  flow : float array array;
}

(* ------------------------------------------------------------------ *)
(* Derivation                                                          *)
(* ------------------------------------------------------------------ *)

type ftree =
  | Tpop of int
  | Tcoop of ftree * String_set.t * ftree
  | Thide of ftree * String_set.t

let derive compiled =
  Obs.Span.with_ "fluid.derive" (fun span ->
      let open Pepa.Compile in
      (* Interned named action types over every component. *)
      let action_ids = Hashtbl.create 16 in
      let action_rev = ref [] in
      let n_actions = ref 0 in
      let intern name =
        match Hashtbl.find_opt action_ids name with
        | Some id -> id
        | None ->
            let id = !n_actions in
            Hashtbl.add action_ids name id;
            action_rev := name :: !action_rev;
            incr n_actions;
            id
      in
      Array.iter
        (fun component ->
          Array.iter
            (Array.iter (fun (action, _, _) ->
                 match action with
                 | Pepa.Action.Act name -> ignore (intern name)
                 | Pepa.Action.Tau -> ()))
            component.local_moves)
        compiled.components;
      let actions = Array.of_list (List.rev !action_rev) in
      let n_actions = Array.length actions in
      (* Populations: pool the single-leaf members of each parallel
         composition by (component, initial state); everything else is
         a population of one. *)
      let pops_rev = ref [] in
      let n_pops = ref 0 in
      let n_leaves = Pepa.Compile.n_leaves compiled in
      let leaf_pop = Array.make n_leaves (-1) in
      let add_pop comp leaves =
        let p = !n_pops in
        incr n_pops;
        List.iter (fun leaf -> leaf_pop.(leaf) <- p) leaves;
        pops_rev := (comp, Array.of_list leaves) :: !pops_rev;
        Tpop p
      in
      (* Flatten a parallel composition (empty cooperation set) into
         its member subtrees.  The compiler emits [P[n]] as a
         right-nested chain, so the recursion is tail on the deep
         side. *)
      let rec members acc s =
        match s with
        | Coop (a, set, b) when String_set.is_empty set -> members (members acc a) b
        | other -> other :: acc
      in
      let rec build s =
        match s with
        | Leaf { leaf; comp } -> add_pop comp [ leaf ]
        | Hide (inner, set) -> Thide (build inner, set)
        | Coop (_, set, _) when String_set.is_empty set ->
            let ms = List.rev (members [] s) in
            (* Group the leaf members; keep composite members apart. *)
            let groups = Hashtbl.create 8 in
            let order = ref [] in
            List.iter
              (fun m ->
                match m with
                | Leaf { leaf; comp } ->
                    let key = (comp, compiled.initial.(leaf)) in
                    (match Hashtbl.find_opt groups key with
                    | Some leaves -> Hashtbl.replace groups key (leaf :: leaves)
                    | None ->
                        Hashtbl.add groups key [ leaf ];
                        order := `Group key :: !order)
                | composite -> order := `Tree composite :: !order)
              ms;
            let parts =
              List.rev_map
                (function
                  | `Group ((comp, _) as key) ->
                      add_pop comp (List.rev (Hashtbl.find groups key))
                  | `Tree composite -> build composite)
                !order
            in
            (match parts with
            | [] -> fail "empty parallel composition"
            | first :: rest ->
                List.fold_left (fun acc p -> Tcoop (acc, String_set.empty, p)) first rest)
        | Coop (a, set, b) -> Tcoop (build a, set, build b)
      in
      let tree = build compiled.structure in
      (* Lay the populations out in the vector and label them. *)
      let raw_pops = Array.of_list (List.rev !pops_rev) in
      let label_counts = Hashtbl.create 8 in
      Array.iter
        (fun (comp, _) ->
          let l = compiled.components.(comp).root_label in
          Hashtbl.replace label_counts l
            (1 + Option.value ~default:0 (Hashtbl.find_opt label_counts l)))
        raw_pops;
      let label_seen = Hashtbl.create 8 in
      let offset = ref 0 in
      let init_local = Array.make (Array.length raw_pops) 0 in
      let pops =
        Array.mapi
          (fun p (comp, leaves) ->
            let component = compiled.components.(comp) in
            let base = component.root_label in
            let label =
              if Hashtbl.find label_counts base = 1 then base
              else begin
                let k = 1 + Option.value ~default:0 (Hashtbl.find_opt label_seen base) in
                Hashtbl.replace label_seen base k;
                Printf.sprintf "%s@%d" base k
              end
            in
            let n_local = Array.length component.labels in
            let here = !offset in
            offset := here + n_local;
            init_local.(p) <- compiled.initial.(leaves.(0));
            {
              comp;
              count = float_of_int (Array.length leaves);
              offset = here;
              n_local;
              label;
              leaves;
            })
          raw_pops
      in
      let dim = !offset in
      (* Activity matrix rows and per-(state, action) contributions.
         Passive rates are rejected here: under min cooperation a
         passive side never throttles, so its population has no
         deterministic limit. *)
      let moves =
        Array.map
          (fun pop ->
            let component = compiled.components.(pop.comp) in
            let rows = ref [] in
            Array.iteri
              (fun local state_moves ->
                Array.iter
                  (fun (action, rate, target) ->
                    let aid =
                      match action with
                      | Pepa.Action.Act name -> Hashtbl.find action_ids name
                      | Pepa.Action.Tau -> -1
                    in
                    let rate =
                      match rate with
                      | Pepa.Rate.Active r -> r
                      | Pepa.Rate.Passive _ ->
                          fail
                            "passive rate on action %s of component %s: the fluid \
                             approximation requires active rates (replace infty with a \
                             finite rate)"
                            (Pepa.Action.to_string action)
                            component.root_label
                    in
                    rows := { local; aid; rate; target } :: !rows)
                  state_moves)
              component.local_moves;
            Array.of_list (List.rev !rows))
          pops
      in
      let contrib =
        Array.mapi
          (fun p pop ->
            let table = Array.make_matrix pop.n_local n_actions 0.0 in
            Array.iter
              (fun m -> if m.aid >= 0 then table.(m.local).(m.aid) <- table.(m.local).(m.aid) +. m.rate)
              moves.(p);
            table)
          pops
      in
      (* Flatten the tree to a post-order node array. *)
      let nodes_rev = ref [] in
      let n_nodes = ref 0 in
      let pop_node = Array.make (Array.length pops) (-1) in
      let mask_of set =
        let m = Array.make n_actions false in
        String_set.iter
          (fun name ->
            match Hashtbl.find_opt action_ids name with
            | Some aid -> m.(aid) <- true
            | None -> ())
          set;
        m
      in
      let no_mask = Array.make n_actions false in
      let push node =
        let id = !n_nodes in
        incr n_nodes;
        nodes_rev := node :: !nodes_rev;
        id
      in
      let rec flatten = function
        | Tpop p ->
            let id = push { kind = Kpop p; mask = no_mask } in
            pop_node.(p) <- id;
            id
        | Tcoop (l, set, r) ->
            let lid = flatten l in
            let rid = flatten r in
            push { kind = Kcoop (lid, rid); mask = mask_of set }
        | Thide (inner, set) ->
            let cid = flatten inner in
            push { kind = Khide cid; mask = mask_of set }
      in
      ignore (flatten tree);
      let nodes = Array.of_list (List.rev !nodes_rev) in
      (* Visibility of each action type at the root. *)
      let visible_at = Array.make (Array.length nodes) [||] in
      Array.iteri
        (fun id node ->
          visible_at.(id) <-
            (match node.kind with
            | Kpop p ->
                Array.init n_actions (fun a ->
                    let rec any s =
                      s < pops.(p).n_local && (contrib.(p).(s).(a) > 0.0 || any (s + 1))
                    in
                    any 0)
            | Kcoop (l, r) ->
                Array.init n_actions (fun a -> visible_at.(l).(a) || visible_at.(r).(a))
            | Khide c ->
                Array.init n_actions (fun a -> visible_at.(c).(a) && not (node.mask.(a)))))
        nodes;
      let visible =
        if Array.length nodes = 0 then Array.make n_actions false
        else visible_at.(Array.length nodes - 1)
      in
      let x0 = Array.make dim 0.0 in
      Array.iteri
        (fun p pop -> x0.(pop.offset + init_local.(p)) <- pop.count)
        pops;
      let app = Array.map (fun _ -> Array.make n_actions 0.0) nodes in
      let flow = Array.map (fun _ -> Array.make n_actions 0.0) nodes in
      Obs.Span.add_int span "dim" dim;
      Obs.Span.add_int span "populations" (Array.length pops);
      Obs.Span.add_int span "actions" n_actions;
      {
        compiled;
        pops;
        init_local;
        actions;
        moves;
        contrib;
        nodes;
        pop_node;
        visible;
        leaf_pop;
        dim;
        x0;
        app;
        flow;
      })

let of_model model = derive (Pepa.Compile.of_model model)
let of_string src = of_model (Pepa.Parser.model_of_string src)

let compiled t = t.compiled
let pops t = t.pops
let dim t = t.dim
let n_flux_entries t = Array.fold_left (fun acc m -> acc + Array.length m) 0 t.moves
let initial t = Array.copy t.x0

let with_count t ~pop ~count =
  if pop < 0 || pop >= Array.length t.pops then
    invalid_arg "Vector_form.with_count: population index out of range";
  if not (Float.is_finite count) || count < 0.0 then
    invalid_arg "Vector_form.with_count: replica count must be finite and non-negative";
  let pops = Array.copy t.pops in
  pops.(pop) <- { pops.(pop) with count };
  let x0 = Array.make t.dim 0.0 in
  Array.iteri (fun p q -> x0.(q.offset + t.init_local.(p)) <- q.count) pops;
  { t with pops; x0 }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let pos x = if x > 0.0 then x else 0.0

(* Bottom-up pass: apparent rate of every action type at every node. *)
let fill_apparent t x =
  let n_actions = Array.length t.actions in
  Array.iteri
    (fun id node ->
      let out = t.app.(id) in
      match node.kind with
      | Kpop p ->
          let pop = t.pops.(p) in
          let table = t.contrib.(p) in
          for a = 0 to n_actions - 1 do
            let acc = ref 0.0 in
            for s = 0 to pop.n_local - 1 do
              let c = table.(s).(a) in
              if c > 0.0 then acc := !acc +. (pos x.(pop.offset + s) *. c)
            done;
            out.(a) <- !acc
          done
      | Kcoop (l, r) ->
          let al = t.app.(l) and ar = t.app.(r) in
          for a = 0 to n_actions - 1 do
            out.(a) <- (if node.mask.(a) then Float.min al.(a) ar.(a) else al.(a) +. ar.(a))
          done
      | Khide c ->
          let ac = t.app.(c) in
          for a = 0 to n_actions - 1 do
            out.(a) <- (if node.mask.(a) then 0.0 else ac.(a))
          done)
    t.nodes

let derivative t x dx =
  Array.fill dx 0 t.dim 0.0;
  let n_nodes = Array.length t.nodes in
  if n_nodes = 0 then ()
  else begin
    let n_actions = Array.length t.actions in
    fill_apparent t x;
    (* Top-down pass: the root flows at its own apparent rate; shared
       cooperation passes the bounded flow to both sides, independent
       composition splits it proportionally, hiding restores the inner
       subtree's autonomous flow. *)
    Array.blit t.app.(n_nodes - 1) 0 t.flow.(n_nodes - 1) 0 n_actions;
    for id = n_nodes - 1 downto 0 do
      let node = t.nodes.(id) in
      let fl = t.flow.(id) in
      match node.kind with
      | Kpop _ -> ()
      | Kcoop (l, r) ->
          let al = t.app.(l) and ar = t.app.(r) in
          for a = 0 to n_actions - 1 do
            if node.mask.(a) then begin
              t.flow.(l).(a) <- fl.(a);
              t.flow.(r).(a) <- fl.(a)
            end
            else begin
              let denom = al.(a) +. ar.(a) in
              if denom > 0.0 then begin
                t.flow.(l).(a) <- fl.(a) *. al.(a) /. denom;
                t.flow.(r).(a) <- fl.(a) *. ar.(a) /. denom
              end
              else begin
                t.flow.(l).(a) <- 0.0;
                t.flow.(r).(a) <- 0.0
              end
            end
          done
      | Khide c ->
          let ac = t.app.(c) in
          for a = 0 to n_actions - 1 do
            t.flow.(c).(a) <- (if node.mask.(a) then ac.(a) else fl.(a))
          done
    done;
    (* Per-move fluxes at the populations. *)
    Array.iteri
      (fun p rows ->
        let pop = t.pops.(p) in
        let id = t.pop_node.(p) in
        let fl = t.flow.(id) and ap = t.app.(id) in
        Array.iter
          (fun m ->
            let level = pos x.(pop.offset + m.local) in
            let flux =
              if m.aid < 0 then level *. m.rate
              else begin
                let total = ap.(m.aid) in
                if total > 0.0 then fl.(m.aid) *. (level *. m.rate) /. total else 0.0
              end
            in
            if flux <> 0.0 then begin
              dx.(pop.offset + m.local) <- dx.(pop.offset + m.local) -. flux;
              dx.(pop.offset + m.target) <- dx.(pop.offset + m.target) +. flux
            end)
          rows)
      t.moves
  end

(* ------------------------------------------------------------------ *)
(* Measures                                                            *)
(* ------------------------------------------------------------------ *)

let root_rates t x =
  let n_nodes = Array.length t.nodes in
  if n_nodes = 0 then [||]
  else begin
    fill_apparent t x;
    Array.copy t.app.(n_nodes - 1)
  end

let action_names t =
  let names = ref [] in
  Array.iteri (fun a name -> if t.visible.(a) then names := name :: !names) t.actions;
  List.sort String.compare !names

let throughput t x name =
  let rates = root_rates t x in
  let result = ref 0.0 in
  Array.iteri (fun a n -> if n = name && t.visible.(a) then result := rates.(a)) t.actions;
  !result

let throughputs t x =
  let rates = root_rates t x in
  let out = ref [] in
  Array.iteri (fun a name -> if t.visible.(a) then out := (name, rates.(a)) :: !out) t.actions;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !out

let populations t x =
  Array.to_list t.pops
  |> List.concat_map (fun pop ->
         let labels = t.compiled.Pepa.Compile.components.(pop.comp).Pepa.Compile.labels in
         List.init pop.n_local (fun s ->
             (Printf.sprintf "%s.%s" pop.label labels.(s), x.(pop.offset + s))))

let proportions t x =
  Array.to_list t.pops
  |> List.concat_map (fun pop ->
         let labels = t.compiled.Pepa.Compile.components.(pop.comp).Pepa.Compile.labels in
         let scale = if pop.count > 0.0 then 1.0 /. pop.count else 0.0 in
         List.init pop.n_local (fun s ->
             (Printf.sprintf "%s.%s" pop.label labels.(s), x.(pop.offset + s) *. scale)))

let leaf_pop t ~leaf =
  if leaf < 0 || leaf >= Array.length t.leaf_pop then
    invalid_arg "Vector_form.leaf_pop: leaf index out of range";
  t.leaf_pop.(leaf)

let leaf_proportions t x ~leaf =
  let pop = t.pops.(leaf_pop t ~leaf) in
  let labels = t.compiled.Pepa.Compile.components.(pop.comp).Pepa.Compile.labels in
  let scale = if pop.count > 0.0 then 1.0 /. pop.count else 0.0 in
  List.init pop.n_local (fun s -> (labels.(s), x.(pop.offset + s) *. scale))

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>numerical vector form: %d coordinates, %d populations, %d activities@,"
    t.dim (Array.length t.pops) (n_flux_entries t);
  Array.iter
    (fun pop ->
      Format.fprintf fmt "  %-24s %g replicas over %d local states@," pop.label pop.count
        pop.n_local)
    t.pops;
  Format.fprintf fmt "@]"
