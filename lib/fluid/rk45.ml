(* Dormand-Prince 5(4) with step-size control, FSAL, and steady-state
   detection on the derivative norm. *)

type tolerances = { rtol : float; atol : float }

let default_tolerances = { rtol = 1e-8; atol = 1e-12 }

type stats = {
  steps : int;
  rejected : int;
  evaluations : int;
  t_end : float;
  dx_norm : float;
  reached_steady : bool;
}

exception Did_not_reach_steady of { steps : int; t : float; dx_norm : float }

exception
  Step_budget_exhausted of { steps : int; t : float; error_estimate : float }

let steps_gauge = Obs.Metrics.gauge "fluid.steps"
let rejected_gauge = Obs.Metrics.gauge "fluid.rejected_steps"

(* Butcher tableau (Dormand & Prince 1980). *)
let c2 = 0.2
let c3 = 0.3
let c4 = 0.8
let c5 = 8.0 /. 9.0

let a21 = 0.2
let a31 = 3.0 /. 40.0
let a32 = 9.0 /. 40.0
let a41 = 44.0 /. 45.0
let a42 = -56.0 /. 15.0
let a43 = 32.0 /. 9.0
let a51 = 19372.0 /. 6561.0
let a52 = -25360.0 /. 2187.0
let a53 = 64448.0 /. 6561.0
let a54 = -212.0 /. 729.0
let a61 = 9017.0 /. 3168.0
let a62 = -355.0 /. 33.0
let a63 = 46732.0 /. 5247.0
let a64 = 49.0 /. 176.0
let a65 = -5103.0 /. 18656.0

(* 5th-order weights; the 6th stage lands on t + h, so these double as
   the a7* row (FSAL). *)
let b1 = 35.0 /. 384.0
let b3 = 500.0 /. 1113.0
let b4 = 125.0 /. 192.0
let b5 = -2187.0 /. 6784.0
let b6 = 11.0 /. 84.0

(* Embedded 4th-order weights. *)
let e1 = 5179.0 /. 57600.0
let e3 = 7571.0 /. 16695.0
let e4 = 393.0 /. 640.0
let e5 = -92097.0 /. 339200.0
let e6 = 187.0 /. 2100.0
let e7 = 1.0 /. 40.0

let inf_norm v =
  let m = ref 0.0 in
  Array.iter (fun x -> if Float.abs x > !m then m := Float.abs x) v;
  !m

let integrate ?(tolerances = default_tolerances) ?steady_tol ?(t_max = 1e6)
    ?(max_steps = 2_000_000) ~f ~x0 () =
  if not (tolerances.rtol > 0.0 && tolerances.atol > 0.0) then
    invalid_arg "Rk45.integrate: tolerances must be positive";
  (* Error control can only track the trajectory down to a deviation of
     about [rtol * ||x||], so the derivative norm plateaus near that
     floor; a steady threshold three decades above it fires reliably
     while staying far below any meaningful flow. *)
  let steady_tol =
    match steady_tol with Some s -> s | None -> 1e3 *. tolerances.rtol
  in
  if not (steady_tol > 0.0) then invalid_arg "Rk45.integrate: steady_tol must be positive";
  Obs.Span.with_
    ~attrs:
      [ ("rtol", Obs.Span.Float tolerances.rtol); ("atol", Obs.Span.Float tolerances.atol) ]
    "fluid.integrate"
    (fun span ->
      let n = Array.length x0 in
      let x = Array.copy x0 in
      let xt = Array.make n 0.0 in
      let xnew = Array.make n 0.0 in
      let k1 = Array.make n 0.0 in
      let k2 = Array.make n 0.0 in
      let k3 = Array.make n 0.0 in
      let k4 = Array.make n 0.0 in
      let k5 = Array.make n 0.0 in
      let k6 = Array.make n 0.0 in
      let k7 = Array.make n 0.0 in
      let evaluations = ref 0 in
      let eval t x dx =
        incr evaluations;
        f ~t ~x ~dx
      in
      let t = ref 0.0 in
      let steps = ref 0 in
      let rejected = ref 0 in
      let last_err = ref 0.0 in
      eval !t x k1;
      let steady dx = inf_norm dx <= steady_tol *. Float.max 1.0 (inf_norm x) in
      (* Initial step: a conservative fraction of the solution's own
         time scale. *)
      let h =
        ref
          (let d0 = Float.max (inf_norm x) 1.0 and d1 = inf_norm k1 in
           if d1 > 1e-12 then Float.min 0.1 (0.01 *. d0 /. d1) else 0.1)
      in
      let finished = ref (steady k1) in
      (* Stability cap.  Near the fixed point the local error vanishes,
         so pure error control grows h geometrically until the step
         leaves the method's stability region; the controller then
         equilibrates the solution at the tolerance floor instead of
         converging, and the steady test never fires.  Capping growth
         at the last rejected step size (relaxed gently on acceptance)
         keeps h hovering just below the stability boundary, where the
         deviation keeps contracting to machine precision. *)
      let h_cap = ref infinity in
      while (not !finished) && !t < t_max && !steps < max_steps do
        let h0 = !h in
        (* Six fresh stages; k1 is carried over (FSAL). *)
        for i = 0 to n - 1 do
          xt.(i) <- x.(i) +. (h0 *. a21 *. k1.(i))
        done;
        eval (!t +. (c2 *. h0)) xt k2;
        for i = 0 to n - 1 do
          xt.(i) <- x.(i) +. (h0 *. ((a31 *. k1.(i)) +. (a32 *. k2.(i))))
        done;
        eval (!t +. (c3 *. h0)) xt k3;
        for i = 0 to n - 1 do
          xt.(i) <-
            x.(i) +. (h0 *. ((a41 *. k1.(i)) +. (a42 *. k2.(i)) +. (a43 *. k3.(i))))
        done;
        eval (!t +. (c4 *. h0)) xt k4;
        for i = 0 to n - 1 do
          xt.(i) <-
            x.(i)
            +. (h0
               *. ((a51 *. k1.(i)) +. (a52 *. k2.(i)) +. (a53 *. k3.(i)) +. (a54 *. k4.(i))))
        done;
        eval (!t +. (c5 *. h0)) xt k5;
        for i = 0 to n - 1 do
          xt.(i) <-
            x.(i)
            +. (h0
               *. ((a61 *. k1.(i)) +. (a62 *. k2.(i)) +. (a63 *. k3.(i)) +. (a64 *. k4.(i))
                  +. (a65 *. k5.(i))))
        done;
        eval (!t +. h0) xt k6;
        for i = 0 to n - 1 do
          xnew.(i) <-
            x.(i)
            +. (h0
               *. ((b1 *. k1.(i)) +. (b3 *. k3.(i)) +. (b4 *. k4.(i)) +. (b5 *. k5.(i))
                  +. (b6 *. k6.(i))))
        done;
        eval (!t +. h0) xnew k7;
        (* Scaled RMS of the embedded 4th/5th-order difference. *)
        let err = ref 0.0 in
        for i = 0 to n - 1 do
          let y4 =
            x.(i)
            +. (h0
               *. ((e1 *. k1.(i)) +. (e3 *. k3.(i)) +. (e4 *. k4.(i)) +. (e5 *. k5.(i))
                  +. (e6 *. k6.(i)) +. (e7 *. k7.(i))))
          in
          let scale =
            tolerances.atol
            +. (tolerances.rtol *. Float.max (Float.abs x.(i)) (Float.abs xnew.(i)))
          in
          let d = (xnew.(i) -. y4) /. scale in
          err := !err +. (d *. d)
        done;
        let err = sqrt (!err /. float_of_int (max n 1)) in
        last_err := err;
        if err <= 1.0 then begin
          (* Accept: clamp truncation-noise negatives, reuse k7 as the
             next step's k1, and test for steady state for free. *)
          t := !t +. h0;
          incr steps;
          for i = 0 to n - 1 do
            x.(i) <- (if xnew.(i) > 0.0 then xnew.(i) else 0.0)
          done;
          Array.blit k7 0 k1 0 n;
          if steady k1 then finished := true;
          h_cap := !h_cap *. 1.3
        end
        else begin
          incr rejected;
          h_cap := h0
        end;
        let factor =
          if err <= 0.0 then 5.0
          else Float.min 5.0 (Float.max 0.2 (0.9 *. Float.exp (-0.2 *. Float.log err)))
        in
        h := Float.min (h0 *. factor) !h_cap;
        if !h < 1e-14 *. Float.max 1.0 !t then begin
          (* The controller collapsed the step: treat as divergence. *)
          raise (Did_not_reach_steady { steps = !steps; t = !t; dx_norm = inf_norm k1 })
        end
      done;
      let dx_norm = inf_norm k1 in
      Obs.Span.add_int span "steps" !steps;
      Obs.Span.add_int span "rejected" !rejected;
      Obs.Span.add_float span "t_end" !t;
      Obs.Span.add_bool span "reached_steady" !finished;
      Obs.Metrics.set steps_gauge (float_of_int !steps);
      Obs.Metrics.set rejected_gauge (float_of_int !rejected);
      if not !finished then
        if !steps >= max_steps then
          (* The step budget ran out, not the time horizon: a stiff
             model spinning through tiny accepted steps.  Report the
             reached time and the last local error estimate so the
             caller can decide between relaxing tolerances and giving
             up. *)
          raise
            (Step_budget_exhausted { steps = !steps; t = !t; error_estimate = !last_err })
        else raise (Did_not_reach_steady { steps = !steps; t = !t; dx_norm });
      ( x,
        {
          steps = !steps;
          rejected = !rejected;
          evaluations = !evaluations;
          t_end = !t;
          dx_norm;
          reached_steady = !finished;
        } ))
